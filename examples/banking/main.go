// Command banking exercises the transactional machinery on a classic
// OLTP-style workload: a unique index of account numbers, money transfers
// with savepoints and partial rollback, deadlock detection between
// conflicting transfers, and repeatable-read error reproducibility on the
// unique index (§8 and §10.2 of the paper).
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"sync"

	gistdb "repro"
	"repro/internal/btree"
)

func encodeBalance(b int64) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(b))
	return out
}

func decodeBalance(b []byte) int64 { return int64(binary.BigEndian.Uint64(b)) }

func main() {
	db, err := gistdb.Open(gistdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	accounts, err := db.CreateIndex("accounts", btree.Ops{})
	if err != nil {
		log.Fatal(err)
	}

	// Open accounts through the unique index: duplicate account numbers
	// are rejected, repeatably.
	rids := make(map[int64]gistdb.RID)
	tx, _ := db.Begin()
	for acct := int64(1); acct <= 4; acct++ {
		rid, err := accounts.InsertUnique(tx, btree.EncodeKey(acct), encodeBalance(1000))
		if err != nil {
			log.Fatal(err)
		}
		rids[acct] = rid
	}
	tx.Commit()
	fmt.Println("opened accounts 1-4 with balance 1000 each")

	dup, _ := db.Begin()
	_, err = accounts.InsertUnique(dup, btree.EncodeKey(2), encodeBalance(0))
	fmt.Printf("opening duplicate account 2: %v\n", err)
	_, err2 := accounts.InsertUnique(dup, btree.EncodeKey(2), encodeBalance(0))
	fmt.Printf("retry inside the same transaction (repeatable): %v\n", err2)
	if !errors.Is(err, gistdb.ErrDuplicate) || !errors.Is(err2, gistdb.ErrDuplicate) {
		log.Fatal("unique violation not repeatable")
	}
	dup.Abort()

	// A transfer with a savepoint: the second leg fails business
	// validation, the transfer rolls back to the savepoint, and a
	// different transfer completes in the same transaction.
	fmt.Println("\ntransfer with savepoint + partial rollback:")
	tx2, _ := db.Begin()
	if err := tx2.Savepoint("before-transfer"); err != nil {
		log.Fatal(err)
	}
	// Move account 1 -> re-keyed entry simulation: delete + reinsert
	// with updated balance records.
	if err := accounts.Delete(tx2, btree.EncodeKey(1), rids[1]); err != nil {
		log.Fatal(err)
	}
	if _, err := accounts.Insert(tx2, btree.EncodeKey(1), encodeBalance(400)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  debited account 1 by 600 ... but the credit leg fails validation")
	if err := tx2.RollbackTo("before-transfer"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  rolled back to savepoint; account 1 restored")
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}

	check, _ := db.Begin()
	hit, _ := accounts.Search(check, btree.EncodeRange(1, 1), gistdb.ReadCommitted)
	bal, _ := accounts.Fetch(hit[0].RID)
	fmt.Printf("  account 1 balance after rollback: %d\n", decodeBalance(bal))
	check.Commit()

	// Deadlock: two transfers locking the same two accounts in opposite
	// orders; the lock manager detects the cycle and one aborts.
	fmt.Println("\nconflicting transfers (deadlock detection):")
	var wg sync.WaitGroup
	outcome := make(chan string, 2)
	transfer := func(name string, first, second int64) {
		defer wg.Done()
		t, err := db.Begin()
		if err != nil {
			outcome <- name + ": " + err.Error()
			return
		}
		if err := t.LockRecord(rids[first]); err != nil {
			t.Abort()
			outcome <- fmt.Sprintf("%s: aborted locking acct %d (%v)", name, first, errors.Unwrap(err))
			return
		}
		// Ensure both goroutines hold their first lock before the
		// second acquisition closes the cycle.
		barrier.Done()
		barrier.Wait()
		if err := t.LockRecord(rids[second]); err != nil {
			t.Abort()
			outcome <- fmt.Sprintf("%s: deadlock victim on acct %d — aborted and would retry", name, second)
			return
		}
		t.Commit()
		outcome <- fmt.Sprintf("%s: committed", name)
	}
	barrier.Add(2)
	wg.Add(2)
	go transfer("transfer A (3->4)", 3, 4)
	go transfer("transfer B (4->3)", 4, 3)
	wg.Wait()
	close(outcome)
	for line := range outcome {
		fmt.Println("  " + line)
	}

	s := db.Stats()
	fmt.Printf("\nengine stats: %d commits, %d aborts, %d lock waits, %d deadlocks detected\n",
		s.Commits, s.Aborts, s.LockWaits, s.Deadlocks)
}

var barrier sync.WaitGroup
