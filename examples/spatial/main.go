// Command spatial demonstrates the engine on the workload class the paper
// was written for: a multidimensional access method (an R-tree) with full
// transactional isolation. It loads a set of city coordinates, runs window
// queries, and then demonstrates spatial phantom prevention: a repeatable-
// read window scan blocks a concurrent insert into its window — something
// key-range locking cannot express in two dimensions (§4 of the paper).
package main

import (
	"fmt"
	"log"
	"time"

	gistdb "repro"
	"repro/internal/rtree"
)

type city struct {
	name string
	x, y float64
}

var cities = []city{
	{"Berkeley", -122.27, 37.87},
	{"San Jose", -121.89, 37.34},
	{"San Francisco", -122.42, 37.77},
	{"Sacramento", -121.49, 38.58},
	{"Los Angeles", -118.24, 34.05},
	{"San Diego", -117.16, 32.72},
	{"Portland", -122.68, 45.52},
	{"Seattle", -122.33, 47.61},
	{"Las Vegas", -115.14, 36.17},
	{"Phoenix", -112.07, 33.45},
	{"Denver", -104.99, 39.74},
	{"Austin", -97.74, 30.27},
	{"Chicago", -87.63, 41.88},
	{"New York", -74.01, 40.71},
	{"Boston", -71.06, 42.36},
	{"Almaden", -121.81, 37.16},
}

func main() {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 4}) // tiny fanout: force a real tree
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("cities", rtree.Ops{})
	if err != nil {
		log.Fatal(err)
	}

	tx, _ := db.Begin()
	for _, c := range cities {
		if _, err := idx.Insert(tx, rtree.EncodePoint(c.x, c.y), []byte(c.name)); err != nil {
			log.Fatal(err)
		}
	}
	tx.Commit()
	rep, err := idx.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d cities into an R-tree GiST (height %d, %d nodes)\n",
		len(cities), rep.Height, rep.Nodes)

	// Window query: the Bay Area.
	bayArea := rtree.Rect{XMin: -123, YMin: 36.9, XMax: -121, YMax: 38.7}
	tx2, _ := db.Begin()
	hits, err := idx.Search(tx2, rtree.EncodeRect(bayArea), gistdb.ReadCommitted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cities in %v:\n", bayArea)
	for _, h := range hits {
		name, _ := idx.Fetch(h.RID)
		x, y := rtree.DecodePoint(h.Key)
		fmt.Printf("  %-14s (%.2f, %.2f)\n", name, x, y)
	}
	tx2.Commit()

	// Phantom prevention: a Degree 3 scan of the Pacific Northwest
	// window blocks an insert into that window until the scan's
	// transaction finishes.
	pnw := rtree.Rect{XMin: -125, YMin: 45, XMax: -120, YMax: 49}
	scanner, _ := db.Begin()
	before, _ := idx.Search(scanner, rtree.EncodeRect(pnw), gistdb.RepeatableRead)
	fmt.Printf("\nscanner holds window %v: %d cities\n", pnw, len(before))

	inserted := make(chan time.Duration, 1)
	insTx, _ := db.Begin()
	start := time.Now()
	go func() {
		// Tacoma lies inside the scanned window.
		if _, err := idx.Insert(insTx, rtree.EncodePoint(-122.44, 47.25), []byte("Tacoma")); err != nil {
			log.Fatal(err)
		}
		inserted <- time.Since(start)
	}()

	time.Sleep(150 * time.Millisecond)
	select {
	case <-inserted:
		log.Fatal("phantom insert was not blocked!")
	default:
		fmt.Println("concurrent insert of Tacoma into the window is blocked (predicate lock)")
	}
	scanner.Commit()
	blockedFor := <-inserted
	insTx.Commit()
	fmt.Printf("insert proceeded only after the scanner committed (blocked %v)\n",
		blockedFor.Round(time.Millisecond))

	tx3, _ := db.Begin()
	after, _ := idx.Search(tx3, rtree.EncodeRect(pnw), gistdb.ReadCommitted)
	tx3.Commit()
	fmt.Printf("window now holds %d cities\n", len(after))

	st := idx.TreeStats()
	fmt.Printf("\ntree stats: %d inserts, %d splits, %d predicate blocks, %d latched I/Os\n",
		st.Inserts, st.Splits, st.PredicateBlocks, st.LatchedIOs)
}
