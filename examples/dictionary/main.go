// Command dictionary demonstrates a third access method — a
// variable-length string B-tree — together with cursors whose positions
// savepoints record and restore (§10.2 of the paper). It indexes a small
// English dictionary, runs prefix queries through a cursor, and shows a
// partial rollback rewinding both the data and an open cursor.
package main

import (
	"fmt"
	"log"

	gistdb "repro"
	"repro/internal/strtree"
)

var entries = map[string]string{
	"serendipity": "finding something good without looking for it",
	"petrichor":   "the smell of earth after rain",
	"saudade":     "melancholic longing for something absent",
	"sonder":      "realizing each passerby has a life as vivid as your own",
	"selcouth":    "unfamiliar, rare, strange, yet marvellous",
	"sempiternal": "eternal and unchanging",
	"ephemeral":   "lasting a very short time",
	"limerence":   "the state of being infatuated",
	"luminous":    "full of or shedding light",
	"mellifluous": "sweet or musical; pleasant to hear",
	"meraki":      "doing something with soul, creativity, or love",
	"nefarious":   "wicked or criminal",
	"quixotic":    "exceedingly idealistic; unrealistic",
	"sibilant":    "making or characterized by a hissing sound",
	"solitude":    "the state of being alone",
	"sonorous":    "imposingly deep and full (of sound)",
}

func main() {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	dict, err := db.CreateIndex("dictionary", strtree.Ops{})
	if err != nil {
		log.Fatal(err)
	}

	tx, _ := db.Begin()
	for word, def := range entries {
		if _, err := dict.Insert(tx, strtree.EncodeKey([]byte(word)), []byte(def)); err != nil {
			log.Fatal(err)
		}
	}
	tx.Commit()
	rep, err := dict.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d words (string B-tree GiST: height %d, %d nodes)\n",
		rep.Entries, rep.Height, rep.Nodes)

	// Prefix query through an incremental cursor.
	tx2, _ := db.Begin()
	cur, err := dict.OpenCursor(tx2, strtree.Prefix([]byte("s")), gistdb.RepeatableRead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwords starting with 's' (cursor, first 3):")
	for i := 0; i < 3; i++ {
		r, ok, err := cur.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		def, _ := dict.Fetch(r.RID)
		fmt.Printf("  %-12s %s\n", strtree.DecodeKey(r.Key), def)
	}

	// Savepoint: the cursor position is recorded. A new word is added
	// inside the scanned prefix, then rolled back — the cursor resumes
	// exactly where it stood and never sees the phantom.
	if err := tx2.Savepoint("browsing"); err != nil {
		log.Fatal(err)
	}
	if _, err := dict.Insert(tx2, strtree.EncodeKey([]byte("squelch")), []byte("a soft sucking sound")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(inserted 'squelch' after a savepoint ... then rolled back)")
	if err := tx2.RollbackTo("browsing"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("cursor resumes from its recorded position:")
	count := 3
	for {
		r, ok, err := cur.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		word := string(strtree.DecodeKey(r.Key))
		if word == "squelch" {
			log.Fatal("rolled-back word visible!")
		}
		def, _ := dict.Fetch(r.RID)
		fmt.Printf("  %-12s %s\n", word, def)
		count++
	}
	cur.Close()
	tx2.Commit()
	fmt.Printf("total 's' words seen: %d\n", count)

	// Range query: everything between "m" and "p".
	tx3, _ := db.Begin()
	hits, err := dict.Search(tx3, strtree.EncodeRange([]byte("m"), []byte("p")), gistdb.ReadCommitted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwords in [m,p]: %d\n", len(hits))
	for _, h := range hits {
		fmt.Printf("  %s\n", strtree.DecodeKey(h.Key))
	}
	tx3.Commit()
}
