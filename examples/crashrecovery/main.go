// Command crashrecovery walks through the recovery protocol visibly: it
// builds a tree, crashes at a deliberately awkward moment (an uncommitted
// transaction in flight and dirty pages unflushed), restarts, and prints
// what analysis, redo and undo did — including the log record types of
// Table 1 of the paper observed in the write-ahead log.
package main

import (
	"fmt"
	"log"
	"sort"

	gistdb "repro"
	"repro/internal/btree"
)

func main() {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 4})
	if err != nil {
		log.Fatal(err)
	}
	idx, err := db.CreateIndex("data", btree.Ops{})
	if err != nil {
		log.Fatal(err)
	}

	// Committed work: 60 keys (the tiny fanout forces many splits, so
	// the log contains the full Table 1 repertoire).
	var rids []gistdb.RID
	for i := 0; i < 60; i++ {
		tx, _ := db.Begin()
		rid, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte(fmt.Sprintf("row-%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		tx.Commit()
		rids = append(rids, rid)
	}
	// Committed deletes + garbage collection (Mark-Leaf-Entry,
	// Garbage-Collection, Free-Page, Internal-Entry-Delete records).
	tx, _ := db.Begin()
	for i := 0; i < 8; i++ {
		if err := idx.Delete(tx, btree.EncodeKey(int64(i)), rids[i]); err != nil {
			log.Fatal(err)
		}
	}
	tx.Commit()
	gc, _ := db.Begin()
	if err := idx.GC(gc); err != nil {
		log.Fatal(err)
	}
	gc.Commit()

	// A checkpoint bounds restart work.
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// More committed work after the checkpoint...
	for i := 100; i < 120; i++ {
		tx, _ := db.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte("post-checkpoint")); err != nil {
			log.Fatal(err)
		}
		tx.Commit()
	}
	// ...and a loser: in flight at the crash.
	loser, _ := db.Begin()
	for i := 500; i < 505; i++ {
		if _, err := idx.Insert(loser, btree.EncodeKey(int64(i)), []byte("uncommitted")); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("state at crash:")
	fmt.Println("  committed keys: 8..59 and 100..119 (80 total)")
	fmt.Println("  loser transaction holds keys 500..504, not committed")

	db2, err := db.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n>>> crash: buffer pool and unflushed log lost; ARIES restart ran (analysis, redo, undo)")

	idx2, err := db2.OpenIndex("data", btree.Ops{})
	if err != nil {
		log.Fatal(err)
	}
	tx2, _ := db2.Begin()
	hits, err := idx2.Search(tx2, btree.EncodeRange(0, 1000), gistdb.ReadCommitted)
	if err != nil {
		log.Fatal(err)
	}
	tx2.Commit()
	var keys []int
	for _, h := range hits {
		keys = append(keys, int(btree.DecodeKey(h.Key)))
	}
	sort.Ints(keys)
	fmt.Printf("\nsurvived: %d keys\n", len(keys))
	fmt.Printf("  first: %v\n", keys[:5])
	fmt.Printf("  last:  %v\n", keys[len(keys)-5:])
	for _, k := range keys {
		if k >= 500 {
			log.Fatalf("loser key %d survived!", k)
		}
	}

	rep, err := idx2.Check()
	if err != nil {
		log.Fatalf("structural invariants violated after restart: %v", err)
	}
	fmt.Printf("\nstructural check after restart: OK (height=%d, nodes=%d, entries=%d, marked=%d)\n",
		rep.Height, rep.Nodes, rep.Entries, rep.Marked)

	// The recovered database is fully writable.
	tx3, _ := db2.Begin()
	if _, err := idx2.Insert(tx3, btree.EncodeKey(9999), []byte("post-recovery")); err != nil {
		log.Fatal(err)
	}
	tx3.Commit()
	fmt.Println("post-recovery insert committed: the engine is live")
	db2.Close()
}
