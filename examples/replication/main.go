// Command replication walks through WAL-shipping replication end to end: a
// primary serves its log over an in-process pipe to a streaming replica,
// which repeats history continuously and serves committed reads while the
// primary keeps writing. The run shows the apply lag converging at a
// quiesce point, the truncation clamp holding the log for the subscriber,
// and finally promote-on-failover: the primary dies mid-transaction, the
// replica drains, rolls the loser back, and comes up as a read-write
// primary that accepts new work.
package main

import (
	"fmt"
	"io"
	"log"
	"net"

	gistdb "repro"
	"repro/internal/btree"
)

func main() {
	primary, err := gistdb.Open(gistdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	idx, err := primary.CreateIndex("accounts", btree.Ops{})
	if err != nil {
		log.Fatal(err)
	}

	// The replica dials the primary's shipper; each dial gets a fresh
	// pipe (a TCP connection works identically — see Shipper.ServeListener).
	replica, err := gistdb.OpenReplica(gistdb.Options{}, func() (io.ReadWriteCloser, error) {
		c, srv := net.Pipe()
		go primary.Shipper().Serve(srv)
		return c, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Committed writes on the primary stream to the replica as they are
	// flushed: log shipping is crash recovery that never ends.
	for i := 0; i < 200; i++ {
		tx, _ := primary.Begin()
		if _, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte(fmt.Sprintf("balance-%d", i))); err != nil {
			log.Fatal(err)
		}
		tx.Commit()
	}

	// Quiesce: force the log durable and wait for the replica to apply
	// through the primary's flushed watermark.
	if err := primary.WAL().FlushAll(); err != nil {
		log.Fatal(err)
	}
	target := primary.WAL().FlushedLSN()
	if err := replica.WaitApplied(nil, target); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica applied through LSN %d (lag %d)\n", replica.AppliedLSN(), replica.Lag())

	// Reads on the replica see exactly the committed state.
	ridx, err := replica.OpenIndex("accounts", btree.Ops{})
	if err != nil {
		log.Fatal(err)
	}
	rtx, _ := replica.Begin()
	hits, err := ridx.Search(rtx, btree.EncodeRange(0, 1000), gistdb.ReadCommitted)
	if err != nil {
		log.Fatal(err)
	}
	rtx.Close()
	fmt.Printf("replica serves %d committed records\n", len(hits))

	// The shipper clamps log truncation at the slowest subscriber's ack:
	// a checkpoint cannot discard records the replica still needs.
	if err := primary.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after checkpoint the primary retains the log from LSN %d (truncation bound %d)\n",
		primary.WAL().Base()+1, primary.Shipper().TruncationBound())

	// Failover: a transaction is caught in flight when the primary dies.
	// Its writes ship (repeating history replays uncommitted work too),
	// but promotion rolls it back — exactly restart's loser undo.
	loser, _ := primary.Begin()
	if _, err := idx.Insert(loser, btree.EncodeKey(999), []byte("in-flight")); err != nil {
		log.Fatal(err)
	}
	if err := primary.WAL().FlushAll(); err != nil {
		log.Fatal(err)
	}
	if err := replica.WaitApplied(nil, primary.WAL().FlushedLSN()); err != nil {
		log.Fatal(err)
	}
	primary.Close() // the crash

	promoted, err := replica.Promote()
	if err != nil {
		log.Fatal(err)
	}
	defer promoted.Close()
	pidx, err := promoted.OpenIndex("accounts", btree.Ops{})
	if err != nil {
		log.Fatal(err)
	}
	ptx, _ := promoted.Begin()
	hits, err = pidx.Search(ptx, btree.EncodeRange(0, 1000), gistdb.ReadCommitted)
	if err != nil {
		log.Fatal(err)
	}
	ptx.Commit()
	fmt.Printf("promoted primary serves %d records (the in-flight insert rolled back)\n", len(hits))

	// The promoted primary is read-write: new transactions commit.
	wtx, _ := promoted.Begin()
	if _, err := pidx.Insert(wtx, btree.EncodeKey(500), []byte("post-failover")); err != nil {
		log.Fatal(err)
	}
	wtx.Commit()
	wtx2, _ := promoted.Begin()
	hits, err = pidx.Search(wtx2, btree.EncodeRange(0, 1000), gistdb.ReadCommitted)
	if err != nil {
		log.Fatal(err)
	}
	wtx2.Commit()
	fmt.Printf("post-failover write visible: %d records\n", len(hits))
}
