// Command quickstart shows the minimal end-to-end use of the engine: open
// an in-memory database, create a B-tree index, run transactions that
// insert, search, and delete, and survive a simulated crash.
package main

import (
	"fmt"
	"log"

	gistdb "repro"
	"repro/internal/btree"
)

func main() {
	db, err := gistdb.Open(gistdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	idx, err := db.CreateIndex("accounts", btree.Ops{})
	if err != nil {
		log.Fatal(err)
	}

	// Insert a few records transactionally.
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range []string{"alice", "bob", "carol", "dave", "erin"} {
		if _, err := idx.Insert(tx, btree.EncodeKey(int64(100+i)), []byte(name)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed 5 records")

	// Range search with repeatable-read isolation.
	tx2, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	hits, err := idx.Search(tx2, btree.EncodeRange(101, 103), gistdb.RepeatableRead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range [101,103] -> %d hits:\n", len(hits))
	for _, h := range hits {
		rec, err := idx.Fetch(h.RID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  key %d = %q (rid %v)\n", btree.DecodeKey(h.Key), rec, h.RID)
	}
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}

	// Delete one record; logical deletion keeps it physically present
	// (invisible) until garbage collection after commit.
	tx3, _ := db.Begin()
	one, _ := idx.Search(tx3, btree.EncodeRange(104, 104), gistdb.ReadCommitted)
	if err := idx.Delete(tx3, one[0].Key, one[0].RID); err != nil {
		log.Fatal(err)
	}
	tx3.Commit()
	fmt.Println("deleted key 104")

	// An uncommitted insert, then a crash: recovery rolls it back while
	// preserving everything committed.
	loser, _ := db.Begin()
	idx.Insert(loser, btree.EncodeKey(999), []byte("never committed"))

	db2, err := db.SimulateCrash()
	if err != nil {
		log.Fatal(err)
	}
	idx2, err := db2.OpenIndex("accounts", btree.Ops{})
	if err != nil {
		log.Fatal(err)
	}
	tx4, _ := db2.Begin()
	all, err := idx2.Search(tx4, btree.EncodeRange(0, 10000), gistdb.ReadCommitted)
	if err != nil {
		log.Fatal(err)
	}
	tx4.Commit()
	fmt.Printf("after crash + ARIES restart: %d records survive (4 expected: 100-103):\n", len(all))
	for _, h := range all {
		fmt.Printf("  key %d\n", btree.DecodeKey(h.Key))
	}

	rep, err := idx2.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("invariant check: height=%d nodes=%d live entries=%d\n", rep.Height, rep.Nodes, rep.Entries)
	db2.Close()
}
