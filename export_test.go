package gistdb

import "repro/internal/storage"

// Test-only hooks into the replica's engine parts, for byte-level
// convergence checks in replica_test.go.

// ReplicaMem exposes the replica's memory disk.
func ReplicaMem(r *ReplicaDB) *storage.MemDisk { return r.mem }

// ReplicaFlushPool writes the replica pool's dirty pages back to its disk so
// two replicas' disks can be compared byte-for-byte.
func ReplicaFlushPool(r *ReplicaDB) error { return r.pool.FlushAll() }
