package gistdb_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	gistdb "repro"
	"repro/internal/btree"
)

// TestSoakCrashRecoveryRounds is the torture test: rounds of concurrent
// mixed workload (inserts, deletes, scans, savepoints) with periodic
// checkpoints, each round ending in a crash and ARIES restart; after every
// restart the surviving content must exactly match the model of committed
// operations, and structural invariants must hold.
func TestSoakCrashRecoveryRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.CreateIndex("soak", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}

	var modelMu sync.Mutex
	model := make(map[int64]gistdb.RID) // committed live keys

	const rounds, workers, opsPerWorker = 5, 4, 80
	nextKey := int64(0)
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w, round int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*100 + w)))
				for i := 0; i < opsPerWorker; i++ {
					switch op := rng.Intn(10); {
					case op < 6: // committed insert
						modelMu.Lock()
						k := nextKey
						nextKey++
						modelMu.Unlock()
						tx, err := db.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						rid, err := idx.Insert(tx, btree.EncodeKey(k), []byte(fmt.Sprintf("r%d", k)))
						if err != nil {
							t.Errorf("insert %d: %v", k, err)
							tx.Abort()
							return
						}
						if err := tx.Commit(); err != nil {
							t.Error(err)
							return
						}
						modelMu.Lock()
						model[k] = rid
						modelMu.Unlock()

					case op < 8: // committed delete of a random live key
						modelMu.Lock()
						var victim int64 = -1
						var rid gistdb.RID
						for k, r := range model {
							victim, rid = k, r
							break
						}
						if victim >= 0 {
							delete(model, victim) // claim it
						}
						modelMu.Unlock()
						if victim < 0 {
							continue
						}
						tx, err := db.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						if err := idx.Delete(tx, btree.EncodeKey(victim), rid); err != nil {
							tx.Abort()
							modelMu.Lock()
							model[victim] = rid
							modelMu.Unlock()
							continue
						}
						if err := tx.Commit(); err != nil {
							t.Error(err)
							return
						}

					case op < 9: // aborted insert (with a savepoint dance)
						modelMu.Lock()
						k := nextKey
						nextKey++
						modelMu.Unlock()
						tx, err := db.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						idx.Insert(tx, btree.EncodeKey(k), []byte("loser"))
						tx.Savepoint("sp")
						idx.Insert(tx, btree.EncodeKey(k+1000000), []byte("deeper"))
						tx.RollbackTo("sp")
						tx.Abort()

					default: // scan
						tx, err := db.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						lo := rng.Int63n(1000)
						if _, err := idx.Search(tx, btree.EncodeRange(lo, lo+50), gistdb.ReadCommitted); err != nil {
							t.Errorf("scan: %v", err)
						}
						tx.Commit()
					}
				}
			}(w, round)
		}
		wg.Wait()

		// Occasionally checkpoint (truncates the log head), then GC.
		if round%2 == 1 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			gc, _ := db.Begin()
			if err := idx.GC(gc); err != nil {
				t.Fatal(err)
			}
			gc.Commit()
		}

		// An in-flight loser at the crash.
		loser, _ := db.Begin()
		idx.Insert(loser, btree.EncodeKey(9000000+int64(round)), []byte("in-flight"))
		db.WAL().FlushAll()

		// Crash and restart.
		db2, err := db.SimulateCrash()
		if err != nil {
			t.Fatalf("round %d: recovery: %v", round, err)
		}
		db = db2
		idx, err = db.OpenIndex("soak", btree.Ops{})
		if err != nil {
			t.Fatalf("round %d: reopen: %v", round, err)
		}

		// Verify: exactly the model's keys, structurally sound.
		rep, err := idx.Check()
		if err != nil {
			t.Fatalf("round %d: invariants: %v", round, err)
		}
		modelMu.Lock()
		want := len(model)
		modelMu.Unlock()
		if rep.Entries != want {
			t.Fatalf("round %d: %d entries, model %d", round, rep.Entries, want)
		}
		tx, _ := db.Begin()
		hits, err := idx.Search(tx, btree.EncodeRange(0, 1<<40), gistdb.ReadCommitted)
		tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		modelMu.Lock()
		for _, h := range hits {
			k := btree.DecodeKey(h.Key)
			if rid, ok := model[k]; !ok {
				t.Fatalf("round %d: unexpected key %d", round, k)
			} else if rid != h.RID {
				t.Fatalf("round %d: key %d rid %v, model %v", round, k, h.RID, rid)
			}
		}
		modelMu.Unlock()
		t.Logf("round %d: %d live keys verified after crash+restart", round, want)
	}
	db.Close()
}
