package gistdb_test

import (
	"context"
	"errors"
	"testing"
	"time"

	gistdb "repro"
	"repro/internal/btree"
)

// TestStatementCancelRollsBackStatementOnly pins the default CancelPolicy:
// a cancelled InsertCtx removes only that statement's effects — the heap
// record and any index entry — and the transaction stays active with its
// earlier statements intact.
func TestStatementCancelRollsBackStatementOnly(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.InsertCtx(context.Background(), tx, btree.EncodeKey(1), []byte("first")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.InsertCtx(ctx, tx, btree.EncodeKey(2), []byte("second")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled InsertCtx = %v, want context.Canceled", err)
	}
	// The transaction is still usable: more work, then commit.
	if _, err := idx.InsertCtx(context.Background(), tx, btree.EncodeKey(3), []byte("third")); err != nil {
		t.Fatalf("insert after statement cancel: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Commit()
	hits, err := idx.SearchCtx(context.Background(), tx2, btree.EncodeRange(0, 10), gistdb.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{}
	for _, h := range hits {
		got[btree.DecodeKey(h.Key)] = true
		if _, err := idx.FetchCtx(context.Background(), h.RID); err != nil {
			t.Errorf("fetch %v: %v", h.RID, err)
		}
	}
	if !got[1] || got[2] || !got[3] {
		t.Errorf("keys after commit = %v, want {1,3}", got)
	}
}

// TestCancelAbortPolicy pins CancelPolicy=CancelAbort: a cancelled
// statement aborts the whole transaction.
func TestCancelAbortPolicy(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8, CancelPolicy: gistdb.CancelAbort})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.InsertCtx(context.Background(), tx, btree.EncodeKey(1), []byte("first")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.InsertCtx(ctx, tx, btree.EncodeKey(2), []byte("second")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled InsertCtx = %v, want context.Canceled", err)
	}
	// The whole transaction died with the statement.
	if err := tx.Commit(); !errors.Is(err, gistdb.ErrNotActive) {
		t.Fatalf("commit after CancelAbort = %v, want ErrNotActive", err)
	}
	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Commit()
	hits, err := idx.Search(tx2, btree.EncodeRange(0, 10), gistdb.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("hits after aborted txn = %v, want none", hits)
	}
}

// TestCommitCtxFacade: an expired deadline before commit leaves the
// transaction active; a live context commits and the effects are visible.
func TestCommitCtxFacade(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateIndex("ints", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Insert(tx, btree.EncodeKey(7), []byte("r")); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := tx.CommitCtx(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CommitCtx(expired) = %v, want DeadlineExceeded", err)
	}
	if err := tx.CommitCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Commit()
	hits, err := idx.Search(tx2, btree.EncodeRange(7, 7), gistdb.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Errorf("hits = %v, want one", hits)
	}
}
