package baseline

import (
	"fmt"
	"runtime"

	"repro/internal/buffer"
	"repro/internal/latch"
	"repro/internal/page"
)

// The link protocol of the paper, stripped of transactions and logging so
// that experiment E8 compares protocols on equal terms: NSNs come from a
// tree-global atomic counter, splits stamp the original node and hand the
// old NSN and rightlink to the sibling, and traversals compensate for
// missed splits by chasing rightlinks. At most one node latch is held at a
// time (two during the short parent-update critical sections) and never
// across an I/O.

// searchLink is Figure 3 without locks or predicates.
func (ix *Index) searchLink(query []byte) ([]Result, error) {
	type stkEntry struct {
		pg  page.PageID
		nsn uint64
	}
	// Counter before root pointer: a root split bumps the counter while
	// holding rootMu, so a reader that got the old root memorized a value
	// below the split's NSN and will chase its rightlink.
	nsn := ix.counter.Load()
	stack := []stkEntry{{pg: ix.rootID(), nsn: nsn}}
	var out []Result
	for len(stack) > 0 {
		se := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f, err := ix.fetch(se.pg, 0)
		if err != nil {
			return nil, err
		}
		f.Latch.Acquire(latch.S)
		if uint64(f.Page.NSN()) > se.nsn {
			if rl := f.Page.Rightlink(); rl != page.InvalidPage {
				stack = append(stack, stkEntry{pg: rl, nsn: se.nsn})
				ix.Chases.Add(1)
			}
		}
		if f.Page.IsLeaf() {
			for i := 0; i < f.Page.NumSlots(); i++ {
				e, err := f.Page.Entry(i)
				if err != nil {
					continue
				}
				if ix.ops.Consistent(e.Pred, query) {
					out = append(out, Result{Key: append([]byte(nil), e.Pred...), RID: e.RID})
				}
			}
		} else {
			childNSN := ix.counter.Load()
			for i := 0; i < f.Page.NumSlots(); i++ {
				e, err := f.Page.Entry(i)
				if err != nil {
					continue
				}
				if ix.ops.Consistent(e.Pred, query) {
					stack = append(stack, stkEntry{pg: e.Child, nsn: childNSN})
				}
			}
		}
		f.Latch.Release(latch.S)
		ix.pool.Unpin(f, false, 0)
	}
	return out, nil
}

// insertLink is the insert of §6 without transactional machinery.
func (ix *Index) insertLink(key []byte, rid page.RID) error {
	leafF, stack, err := ix.locateLeafLink(key)
	if err != nil {
		return err
	}
	defer func() {
		for _, pe := range stack {
			ix.pool.Unpin(pe, false, 0)
		}
	}()

	entry := page.Entry{Pred: key, RID: rid}
	if ix.needsSplit(&leafF.Page, entry.EncodedLen(true)) {
		leafF, err = ix.splitLink(leafF, stack, key)
		if err != nil {
			leafF.Latch.Release(latch.X)
			ix.pool.Unpin(leafF, true, 0)
			return err
		}
	}
	if err := ix.propagateBPLink(leafF, ix.ops.Union(ix.computedBP(&leafF.Page), key), stack); err != nil {
		leafF.Latch.Release(latch.X)
		ix.pool.Unpin(leafF, true, 0)
		return err
	}
	_, err = leafF.Page.InsertEntry(entry)
	leafF.Latch.Release(latch.X)
	ix.pool.Unpin(leafF, true, 0)
	return err
}

// locateLeafLink descends on minimal penalty, compensating for splits with
// the memorized counter. Ancestor frames stay pinned (not latched) so the
// ascent performs no I/O under latches.
func (ix *Index) locateLeafLink(key []byte) (*buffer.Frame, []*buffer.Frame, error) {
	var stack []*buffer.Frame
	curNSN := ix.counter.Load()
	cur := ix.rootID()
	for {
		f, err := ix.fetch(cur, 0)
		if err != nil {
			return nil, stack, err
		}
		leaf := f.Page.IsLeaf()
		mode := latch.S
		if leaf {
			mode = latch.X
		}
		f.Latch.Acquire(mode)
		if uint64(f.Page.NSN()) > curNSN {
			best, err := ix.bestInChainLink(f, mode, curNSN, key)
			if err != nil {
				return nil, stack, err
			}
			f = best
		}
		if f.Page.IsLeaf() {
			return f, stack, nil
		}
		slot := ix.bestSlot(&f.Page, key)
		if slot < 0 {
			f.Latch.Release(mode)
			ix.pool.Unpin(f, false, 0)
			return nil, stack, errNoEntries
		}
		child := f.Page.MustEntry(slot).Child
		next := ix.counter.Load()
		f.Latch.Release(mode)
		stack = append(stack, f) // pinned
		cur, curNSN = child, next
	}
}

func (ix *Index) bestInChainLink(f *buffer.Frame, mode latch.Mode, memorized uint64, key []byte) (*buffer.Frame, error) {
	bestPg := f.ID()
	bestPen := ix.chainPenaltyLink(&f.Page, key)
	next := f.Page.Rightlink()
	stop := uint64(f.Page.NSN()) <= memorized
	f.Latch.Release(mode)
	ix.pool.Unpin(f, false, 0)
	for !stop && next != page.InvalidPage {
		g, err := ix.fetch(next, 0)
		if err != nil {
			return nil, err
		}
		g.Latch.Acquire(latch.S)
		ix.Chases.Add(1)
		if p := ix.chainPenaltyLink(&g.Page, key); p < bestPen {
			bestPen, bestPg = p, g.ID()
		}
		stop = uint64(g.Page.NSN()) <= memorized
		next = g.Page.Rightlink()
		g.Latch.Release(latch.S)
		ix.pool.Unpin(g, false, 0)
	}
	w, err := ix.fetch(bestPg, 0)
	if err != nil {
		return nil, err
	}
	w.Latch.Acquire(mode)
	return w, nil
}

func (ix *Index) chainPenaltyLink(p *page.Page, key []byte) float64 {
	bp := ix.computedBP(p)
	if bp == nil {
		return 0
	}
	return ix.ops.Penalty(bp, key)
}

// splitLink splits the X-latched node with NSN/rightlink semantics and
// installs the parent entries, returning the better target (X-latched).
func (ix *Index) splitLink(f *buffer.Frame, stack []*buffer.Frame, key []byte) (*buffer.Frame, error) {
	newF, err := ix.splitNodeLink(f, stack)
	if err != nil {
		return f, err
	}
	ix.Splits.Add(1)
	keep, drop := f, newF
	if ix.chainPenaltyLink(&newF.Page, key) < ix.chainPenaltyLink(&f.Page, key) {
		keep, drop = newF, f
	}
	drop.Latch.Release(latch.X)
	ix.pool.Unpin(drop, true, 0)
	return keep, nil
}

func (ix *Index) splitNodeLink(f *buffer.Frame, stack []*buffer.Frame) (*buffer.Frame, error) {
	// Resolve and latch the parent (or serialize the root change) BEFORE
	// incrementing the counter — the ordering that makes global-counter
	// memorization sound (see the main tree's splitNode).
	var (
		parentF  *buffer.Frame
		slot     int
		ownPin   bool
		isRoot   bool
		rootHeld bool
	)
	if len(stack) > 0 {
		var err error
		parentF, slot, ownPin, err = ix.ascendLink(stack, f.ID())
		if err != nil {
			return nil, err
		}
	}
	if parentF == nil {
		ix.rootMu.Lock()
		if ix.root == f.ID() {
			isRoot = true
			rootHeld = true
		} else {
			root := ix.root
			ix.rootMu.Unlock()
			var err error
			parentF, slot, ownPin, err = ix.findParentSlowLinkFrom(root, f.ID(), f.Page.Level())
			if err != nil {
				return nil, err
			}
			if parentF == nil {
				return nil, fmt.Errorf("baseline: parent of split node %d not found", f.ID())
			}
		}
	}
	releaseParent := func() {
		if rootHeld {
			ix.rootMu.Unlock()
			rootHeld = false
		}
		if parentF != nil {
			parentF.Latch.Release(latch.X)
			if ownPin {
				ix.pool.Unpin(parentF, true, 0)
			}
			parentF = nil
		}
	}

	leaf := f.Page.IsLeaf()
	n := f.Page.NumSlots()
	preds := make([][]byte, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		b, err := f.Page.SlotBytes(i)
		if err != nil {
			releaseParent()
			return nil, err
		}
		bodies[i] = append([]byte(nil), b...)
		e, err := page.DecodeEntry(bodies[i], leaf)
		if err != nil {
			releaseParent()
			return nil, err
		}
		preds[i] = e.Pred
	}
	stayIdx := ix.ops.PickSplit(preds)
	stay := make(map[int]bool, len(stayIdx))
	for _, i := range stayIdx {
		stay[i] = true
	}
	if len(stay) == 0 || len(stay) >= n {
		releaseParent()
		return nil, fmt.Errorf("baseline: PickSplit kept %d of %d", len(stay), n)
	}
	newF, err := ix.pool.NewPage(f.Page.Level())
	if err != nil {
		releaseParent()
		return nil, err
	}
	newF.Latch.Acquire(latch.X)
	releaseNew := func() {
		newF.Latch.Release(latch.X)
		ix.pool.Unpin(newF, true, 0)
	}
	// Sibling inherits old NSN and rightlink; original gets a fresh NSN.
	newF.Page.SetNSN(f.Page.NSN())
	newF.Page.SetRightlink(f.Page.Rightlink())
	f.Page.Reset()
	for i := 0; i < n; i++ {
		target := &f.Page
		if !stay[i] {
			target = &newF.Page
		}
		if _, err := target.InsertBytes(bodies[i]); err != nil {
			releaseNew()
			releaseParent()
			return nil, err
		}
	}
	f.Page.SetNSN(page.LSN(ix.counter.Add(1)))
	f.Page.SetRightlink(newF.ID())
	// Mark both images dirty at the split itself: callers may unpin
	// either side clean, and an eviction of a clean-before-split page
	// would silently revert the split on disk.
	ix.pool.MarkDirty(f, 0)
	ix.pool.MarkDirty(newF, 0)

	if isRoot {
		if err := ix.growRootLocked(f, newF); err != nil {
			releaseNew()
			releaseParent()
			return nil, err
		}
		releaseParent()
		return newF, nil
	}

	// Install the downlink under the already-held parent latch.
	origBP := ix.computedBP(&f.Page)
	if err := parentF.Page.ReplaceEntry(slot, page.Entry{Pred: origBP, Child: f.ID()}); err != nil {
		releaseNew()
		releaseParent()
		return nil, err
	}
	ix.pool.MarkDirty(parentF, 0)
	add := page.Entry{Pred: ix.computedBP(&newF.Page), Child: newF.ID()}
	if ix.needsSplit(&parentF.Page, add.EncodedLen(false)) {
		var up []*buffer.Frame
		if len(stack) > 0 {
			up = stack[:len(stack)-1]
		}
		parentSib, err := ix.splitNodeLink(parentF, up)
		if err != nil {
			releaseNew()
			releaseParent()
			return nil, err
		}
		ix.Splits.Add(1)
		target := parentF
		if parentF.Page.FindChild(f.ID()) < 0 {
			target = parentSib
		}
		_, err = target.Page.InsertEntry(add)
		ix.pool.MarkDirty(target, 0)
		if err == nil {
			// The recursive split tightened the grandparent's entry
			// before this entry existed; re-expand the ancestors.
			err = ix.propagateBPLink(target, ix.computedBP(&target.Page), up)
		}
		parentSib.Latch.Release(latch.X)
		ix.pool.Unpin(parentSib, true, 0)
		releaseParent()
		if err != nil {
			releaseNew()
			return nil, err
		}
		return newF, nil
	}
	if _, err := parentF.Page.InsertEntry(add); err != nil {
		releaseNew()
		releaseParent()
		return nil, err
	}
	ix.pool.MarkDirty(parentF, 0)
	releaseParent()
	return newF, nil
}

// growRootLocked grows the tree above the split pair; rootMu is held.
func (ix *Index) growRootLocked(f, newF *buffer.Frame) error {
	nf, err := ix.pool.NewPage(f.Page.Level() + 1)
	if err != nil {
		return err
	}
	if _, err := nf.Page.InsertEntry(page.Entry{Pred: ix.computedBP(&f.Page), Child: f.ID()}); err != nil {
		return err
	}
	if _, err := nf.Page.InsertEntry(page.Entry{Pred: ix.computedBP(&newF.Page), Child: newF.ID()}); err != nil {
		return err
	}
	ix.root = nf.ID()
	ix.pool.Unpin(nf, true, 0)
	return nil
}

// findParentSlowLink searches the whole tree for the node holding the
// parent entry of child, returning it X-latched. Needed only when a root
// split raced past an in-flight operation.
func (ix *Index) findParentSlowLinkFrom(root, child page.PageID, childLevel uint16) (*buffer.Frame, int, bool, error) {
	// Retry: the scan can miss a sibling created by a concurrent split
	// after its left neighbor was visited; the downlink exists, so a
	// fresh scan (from a fresh root) eventually sees it.
	for attempt := 0; attempt < 50; attempt++ {
		f, slot, ownPin, err := ix.findParentSlowLinkOnce(root, child, childLevel)
		if err != nil || f != nil {
			return f, slot, ownPin, err
		}
		runtime.Gosched()
		root = ix.rootID()
	}
	return nil, 0, false, nil
}

func (ix *Index) findParentSlowLinkOnce(root, child page.PageID, childLevel uint16) (*buffer.Frame, int, bool, error) {
	parentLevel := childLevel + 1
	frontier := []page.PageID{root}
	visited := map[page.PageID]bool{root: true, child: true}
	for len(frontier) > 0 {
		pg := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		f, err := ix.fetch(pg, 0)
		if err != nil {
			return nil, 0, false, err
		}
		lvl := f.Page.Level()
		switch {
		case lvl < parentLevel:
			// Possibly latched by this ascending operation itself:
			// never touch.
			ix.pool.Unpin(f, false, 0)
			continue
		case lvl == parentLevel:
			f.Latch.Acquire(latch.X)
			if s := f.Page.FindChild(child); s >= 0 {
				return f, s, true, nil
			}
			if rl := f.Page.Rightlink(); rl != page.InvalidPage && !visited[rl] {
				visited[rl] = true
				frontier = append(frontier, rl)
			}
			f.Latch.Release(latch.X)
		default:
			f.Latch.Acquire(latch.S)
			if rl := f.Page.Rightlink(); rl != page.InvalidPage && !visited[rl] {
				visited[rl] = true
				frontier = append(frontier, rl)
			}
			for i := 0; i < f.Page.NumSlots(); i++ {
				e, err := f.Page.Entry(i)
				if err != nil {
					continue
				}
				if !visited[e.Child] {
					visited[e.Child] = true
					frontier = append(frontier, e.Child)
				}
			}
			f.Latch.Release(latch.S)
		}
		ix.pool.Unpin(f, false, 0)
	}
	return nil, 0, false, nil
}

// ascendLink finds and X-latches the node holding the parent entry for
// child, using the pinned stack plus rightlink chasing.
func (ix *Index) ascendLink(stack []*buffer.Frame, child page.PageID) (*buffer.Frame, int, bool, error) {
	if len(stack) == 0 {
		return nil, 0, false, nil
	}
	f := stack[len(stack)-1]
	f.Latch.Acquire(latch.X)
	ownPin := false
	for {
		if s := f.Page.FindChild(child); s >= 0 {
			return f, s, ownPin, nil
		}
		next := f.Page.Rightlink()
		f.Latch.Release(latch.X)
		if ownPin {
			ix.pool.Unpin(f, false, 0)
		}
		if next == page.InvalidPage {
			return nil, 0, false, nil
		}
		g, err := ix.fetch(next, 0)
		if err != nil {
			return nil, 0, false, err
		}
		ix.Chases.Add(1)
		f = g
		ownPin = true
		f.Latch.Acquire(latch.X)
	}
}

// propagateBPLink expands ancestors' BPs bottom-up with per-level latching.
func (ix *Index) propagateBPLink(childF *buffer.Frame, newBP []byte, stack []*buffer.Frame) error {
	parentF, slot, ownPin, err := ix.ascendLink(stack, childF.ID())
	if err != nil {
		return err
	}
	if parentF == nil {
		// The stack is empty or stale: the child either is the root
		// (nothing to expand) or the tree has grown above it and its
		// parent must be found the slow way.
		root := ix.rootID()
		if root == childF.ID() {
			return nil
		}
		parentF, slot, ownPin, err = ix.findParentSlowLinkFrom(root, childF.ID(), childF.Page.Level())
		if err != nil {
			return err
		}
		if parentF == nil {
			return fmt.Errorf("baseline: parent of node %d not found for BP update", childF.ID())
		}
	}
	release := func() {
		parentF.Latch.Release(latch.X)
		if ownPin {
			ix.pool.Unpin(parentF, true, 0)
		}
	}
	oldPred := append([]byte(nil), parentF.Page.MustEntry(slot).Pred...)
	merged := ix.ops.Union(oldPred, newBP)
	if string(merged) == string(oldPred) {
		release()
		return nil
	}
	var up []*buffer.Frame
	if len(stack) > 0 {
		up = stack[:len(stack)-1]
	}
	if err := ix.propagateBPLink(parentF, merged, up); err != nil {
		release()
		return err
	}
	err = parentF.Page.ReplaceEntry(slot, page.Entry{Pred: merged, Child: childF.ID()})
	ix.pool.MarkDirty(parentF, 0)
	release()
	return err
}

// Verify walks the index (quiesced) and returns the number of live entries,
// for test cross-checks against a model.
func (ix *Index) Verify() (int, error) {
	return ix.countSubtree(ix.rootID(), map[page.PageID]bool{})
}

func (ix *Index) countSubtree(pg page.PageID, seen map[page.PageID]bool) (int, error) {
	if seen[pg] {
		return 0, fmt.Errorf("baseline: node %d reached twice", pg)
	}
	seen[pg] = true
	f, err := ix.fetch(pg, 0)
	if err != nil {
		return 0, err
	}
	defer ix.pool.Unpin(f, false, 0)
	if f.Page.IsLeaf() {
		return f.Page.NumSlots(), nil
	}
	total := 0
	for i := 0; i < f.Page.NumSlots(); i++ {
		e, err := f.Page.Entry(i)
		if err != nil {
			return 0, err
		}
		n, err := ix.countSubtree(e.Child, seen)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}
