package baseline

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func newIndex(t *testing.T, proto Protocol, poolSize int) *Index {
	t.Helper()
	pool := buffer.New(storage.NewMemDisk(), poolSize, nil)
	ix, err := New(pool, btree.Ops{}, proto, 8)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func allProtocols() []Protocol { return []Protocol{Coarse, Coupling, Link} }

func TestInsertSearchAllProtocols(t *testing.T) {
	for _, proto := range allProtocols() {
		t.Run(proto.String(), func(t *testing.T) {
			ix := newIndex(t, proto, 128)
			const n = 300
			for i := 0; i < n; i++ {
				k := int64((i * 7919) % n)
				if err := ix.Insert(btree.EncodeKey(k), page.RID{Page: 1, Slot: uint16(i)}); err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
			}
			if got, err := ix.Verify(); err != nil || got != n {
				t.Fatalf("Verify = %d, %v; want %d", got, err, n)
			}
			// Point queries.
			for k := int64(0); k < n; k++ {
				rs, err := ix.Search(btree.EncodeRange(k, k))
				if err != nil {
					t.Fatal(err)
				}
				if len(rs) != 1 || btree.DecodeKey(rs[0].Key) != k {
					t.Fatalf("key %d: %d results", k, len(rs))
				}
			}
			// Range query.
			rs, err := ix.Search(btree.EncodeRange(10, 19))
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != 10 {
				t.Fatalf("range: %d results, want 10", len(rs))
			}
			if ix.Splits.Load() == 0 {
				t.Error("no splits in a 300-key tree with fanout 8")
			}
		})
	}
}

func TestConcurrentMixAllProtocols(t *testing.T) {
	for _, proto := range allProtocols() {
		t.Run(proto.String(), func(t *testing.T) {
			ix := newIndex(t, proto, 256)
			const workers, per = 6, 100
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						k := int64(w*10000 + i)
						if err := ix.Insert(btree.EncodeKey(k), page.RID{Page: page.PageID(w + 1), Slot: uint16(i)}); err != nil {
							t.Errorf("insert: %v", err)
							return
						}
						if i%10 == 9 {
							rs, err := ix.Search(btree.EncodeRange(int64(w*10000), int64(w*10000+i)))
							if err != nil {
								t.Errorf("search: %v", err)
								return
							}
							if len(rs) != i+1 {
								t.Errorf("worker %d: %d results at step %d, want %d", w, len(rs), i, i+1)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if got, err := ix.Verify(); err != nil || got != workers*per {
				t.Fatalf("Verify = %d, %v; want %d", got, err, workers*per)
			}
		})
	}
}

func TestRTreeOpsAllProtocols(t *testing.T) {
	for _, proto := range allProtocols() {
		t.Run(proto.String(), func(t *testing.T) {
			pool := buffer.New(storage.NewMemDisk(), 128, nil)
			ix, err := New(pool, rtree.Ops{}, proto, 8)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				x := float64(i%20) * 10
				y := float64(i/20) * 10
				if err := ix.Insert(rtree.EncodePoint(x, y), page.RID{Page: 1, Slot: uint16(i)}); err != nil {
					t.Fatal(err)
				}
			}
			rs, err := ix.Search(rtree.EncodeRect(rtree.Rect{XMin: 0, YMin: 0, XMax: 45, YMax: 45}))
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != 25 { // 5x5 grid of points
				t.Fatalf("window: %d results, want 25", len(rs))
			}
		})
	}
}

func TestLatchedIOProfile(t *testing.T) {
	// The structural difference the paper claims: with a pool smaller
	// than the tree, coupling performs I/O under latches, link does not.
	const n = 2000
	load := func(proto Protocol) *Index {
		pool := buffer.New(storage.NewMemDisk(), 16, nil)
		ix, err := New(pool, btree.Ops{}, proto, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := ix.Insert(btree.EncodeKey(int64(i)), page.RID{Page: 1, Slot: uint16(i % 65535)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 200; i++ {
			if _, err := ix.Search(btree.EncodeRange(int64(i*10), int64(i*10+20))); err != nil {
				t.Fatal(err)
			}
		}
		return ix
	}
	coupled := load(Coupling)
	linked := load(Link)
	if coupled.LatchedIOs.Load() == 0 {
		t.Error("coupling performed no I/O under latches — pool not stressed?")
	}
	if linked.LatchedIOs.Load() != 0 {
		t.Errorf("link performed %d I/Os under latches, want 0", linked.LatchedIOs.Load())
	}
	t.Logf("latched I/Os: coupling=%d link=%d (latchless: %d vs %d)",
		coupled.LatchedIOs.Load(), linked.LatchedIOs.Load(),
		coupled.LatchlessIOs.Load(), linked.LatchlessIOs.Load())
}

func TestLinkSplitDetection(t *testing.T) {
	// Force rightlink chases: build with tiny fanout, then verify the
	// chase counter moved under concurrency.
	ix := newIndex(t, Link, 256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := int64(w*1000 + i)
				if err := ix.Insert(btree.EncodeKey(k), page.RID{Page: page.PageID(w + 1), Slot: uint16(i)}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, err := ix.Verify(); err != nil || got != 800 {
		t.Fatalf("Verify = %d, %v", got, err)
	}
	for w := 0; w < 4; w++ {
		rs, err := ix.Search(btree.EncodeRange(int64(w*1000), int64(w*1000+199)))
		if err != nil || len(rs) != 200 {
			t.Fatalf("worker %d range: %d, %v", w, len(rs), err)
		}
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{Coarse: "coarse", Coupling: "coupling", Link: "link"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestVerifyDetectsNothingOnFreshIndex(t *testing.T) {
	ix := newIndex(t, Link, 16)
	if n, err := ix.Verify(); err != nil || n != 0 {
		t.Errorf("fresh Verify = %d, %v", n, err)
	}
	_ = fmt.Sprintf("%v", ix.Protocol())
}

func TestLinkHotContentionSmallPool(t *testing.T) {
	// Heavy same-region contention with eviction pressure: exercises
	// chain re-selection (bestInChainLink) and, via racing root splits,
	// the slow parent search.
	pool := buffer.New(storage.NewMemDisk(), 96, nil)
	ix, err := New(pool, btree.Ops{}, Link, 4)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := int64(w*per + i)
				if err := ix.Insert(btree.EncodeKey(k), page.RID{Page: page.PageID(w + 1), Slot: uint16(i)}); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
				if i%5 == 4 {
					rs, err := ix.Search(btree.EncodeRange(k-4, k))
					if err != nil {
						t.Errorf("search: %v", err)
						return
					}
					if len(rs) < 1 {
						t.Errorf("read-your-writes failed at %d", k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got, err := ix.Verify(); err != nil || got != workers*per {
		t.Fatalf("Verify = %d, %v; want %d", got, err, workers*per)
	}
	// Every key findable.
	for k := int64(0); k < workers*per; k++ {
		rs, err := ix.Search(btree.EncodeRange(k, k))
		if err != nil || len(rs) != 1 {
			t.Fatalf("key %d: %d results, %v", k, len(rs), err)
		}
	}
	t.Logf("splits=%d chases=%d", ix.Splits.Load(), ix.Chases.Load())
}
