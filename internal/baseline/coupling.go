package baseline

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/latch"
	"repro/internal/page"
)

// estEntrySize over-approximates the on-page size of any entry this insert
// could force into a node (the new leaf entry, or a parent entry for a new
// sibling whose BP is at most a canonical union predicate).
func estEntrySize(key []byte) int {
	n := len(key) + 64
	if n < 96 {
		n = 96
	}
	return n
}

// insertCoupled is the subtree-locking insert: descend X-latch-coupled,
// retaining latches from the lowest "safe" node (one that cannot split)
// down to the leaf — the scope of any split propagation. Splits then run
// entirely within the retained, exclusively latched scope. Fetching each
// child happens with the parent latch held, so I/Os occur under latches —
// the structural cost the link protocol eliminates.
func (ix *Index) insertCoupled(key []byte, rid page.RID) error {
	type lvl struct {
		f    *buffer.Frame
		slot int // branch taken (internal nodes); -1 for the leaf
	}
	var path []lvl
	releasePrefix := func(keepFrom int) {
		for i := 0; i < keepFrom && i < len(path); i++ {
			path[i].f.Latch.Release(latch.X)
			ix.pool.Unpin(path[i].f, true, 0)
		}
		path = append(path[:0], path[keepFrom:]...)
	}
	releaseAll := func() { releasePrefix(len(path)) }
	defer func() { releaseAll() }()

	f, err := ix.latchRoot(latch.X, 0)
	if err != nil {
		return err
	}
	for {
		if !ix.needsSplit(&f.Page, estEntrySize(key)) {
			// Safe: splits below cannot reach above this node.
			releaseAll()
		}
		if f.Page.IsLeaf() {
			path = append(path, lvl{f: f, slot: -1})
			break
		}
		slot := ix.bestSlot(&f.Page, key)
		if slot < 0 {
			f.Latch.Release(latch.X)
			ix.pool.Unpin(f, false, 0)
			return errNoEntries
		}
		// Expand the branch BP now, under the held X latch.
		e := f.Page.MustEntry(slot)
		child := e.Child
		merged := ix.ops.Union(e.Pred, key)
		if err := f.Page.ReplaceEntry(slot, page.Entry{Pred: merged, Child: child}); err != nil {
			f.Latch.Release(latch.X)
			ix.pool.Unpin(f, false, 0)
			return err
		}
		path = append(path, lvl{f: f, slot: slot})
		cf, err := ix.fetch(child, len(path)) // coupled: parent latch held
		if err != nil {
			return err
		}
		cf.Latch.Acquire(latch.X)
		f = cf
	}

	// Insert at the leaf, splitting within the retained scope.
	leafF := path[len(path)-1].f
	entry := page.Entry{Pred: key, RID: rid}
	var movedBP []byte
	var movedID page.PageID
	if ix.needsSplit(&leafF.Page, entry.EncodedLen(true)) {
		sibBP, sibID, err := ix.splitPage(leafF)
		if err != nil {
			return err
		}
		target := leafF
		var tf *buffer.Frame
		if ix.ops.Penalty(sibBP, key) < ix.ops.Penalty(ix.computedBP(&leafF.Page), key) {
			tf, err = ix.fetch(sibID, len(path))
			if err != nil {
				return err
			}
			target = tf
		}
		if _, err := target.Page.InsertEntry(entry); err != nil {
			return err
		}
		if tf != nil {
			ix.pool.Unpin(tf, true, 0)
		}
		sf, err := ix.fetch(sibID, len(path))
		if err != nil {
			return err
		}
		movedBP, movedID = ix.computedBP(&sf.Page), sibID
		ix.pool.Unpin(sf, false, 0)
	} else {
		if _, err := leafF.Page.InsertEntry(entry); err != nil {
			return err
		}
	}

	// Propagate the split up through the retained scope.
	for i := len(path) - 2; movedID != page.InvalidPage; i-- {
		childF := path[i+1].f
		childID := childF.ID()
		if i < 0 {
			// The scope reached the root: grow the tree.
			if childID != ix.rootID() {
				return fmt.Errorf("baseline: split escaped retained scope at node %d", childID)
			}
			return ix.growRoot(childID, movedBP, movedID)
		}
		parent := path[i].f
		// Tighten the split child's entry and install the sibling.
		if s := parent.Page.FindChild(childID); s >= 0 {
			if err := parent.Page.ReplaceEntry(s, page.Entry{Pred: ix.computedBP(&childF.Page), Child: childID}); err != nil {
				return err
			}
		}
		add := page.Entry{Pred: movedBP, Child: movedID}
		if ix.needsSplit(&parent.Page, add.EncodedLen(false)) {
			_, sibID, err := ix.splitPage(parent)
			if err != nil {
				return err
			}
			target := parent
			var tf *buffer.Frame
			if parent.Page.FindChild(childID) < 0 {
				tf, err = ix.fetch(sibID, len(path))
				if err != nil {
					return err
				}
				target = tf
			}
			if _, err := target.Page.InsertEntry(add); err != nil {
				return err
			}
			if tf != nil {
				ix.pool.Unpin(tf, true, 0)
			}
			sf, err := ix.fetch(sibID, len(path))
			if err != nil {
				return err
			}
			movedBP, movedID = ix.computedBP(&sf.Page), sibID
			ix.pool.Unpin(sf, false, 0)
			continue
		}
		if _, err := parent.Page.InsertEntry(add); err != nil {
			return err
		}
		movedID = page.InvalidPage
	}
	return nil
}
