package baseline

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/storage"
)

func TestLinkSingleThreadSmallPool(t *testing.T) {
	pool := buffer.New(storage.NewMemDisk(), 32, nil)
	ix, err := New(pool, btree.Ops{}, Link, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 1200; k++ {
		if err := ix.Insert(btree.EncodeKey(k), page.RID{Page: 1, Slot: uint16(k % 60000)}); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		rs, err := ix.Search(btree.EncodeRange(k, k))
		if err != nil || len(rs) != 1 {
			t.Fatalf("read-your-write %d: %d, %v", k, len(rs), err)
		}
	}
	if got, err := ix.Verify(); err != nil || got != 1200 {
		t.Fatalf("Verify = %d, %v", got, err)
	}
}
