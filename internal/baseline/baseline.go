// Package baseline implements alternative concurrency-control protocols for
// the evaluation (experiment E8, validating the qualitative claim of §11
// and the [SC91]/[JS93] studies the paper cites): the paper's link protocol
// should dominate subtree-locking and coarse-grained protocols under
// concurrency, because it holds no latch during I/O and at most one node
// latch at a time.
//
// All three protocols share the same page format, buffer pool and extension
// methods, and omit transactions, logging and predicate locks alike, so the
// measured difference is purely the concurrency protocol:
//
//   - Coarse: one tree-wide reader/writer latch (the "lock the whole
//     index" strawman).
//   - Coupling: subtree latch-coupling in the style of Bayer/Schkolnick
//     [BS77]: searches hold a path of S latches while descending into each
//     consistent subtree; inserts X-latch-couple downward, retaining
//     latches on the scope of a possible split ("unsafe" full nodes).
//     Latches are held across I/Os by construction.
//   - Link: the paper's NSN/rightlink protocol with a tree-global atomic
//     counter, one latch at a time, never across an I/O.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/gist"
	"repro/internal/latch"
	"repro/internal/page"
)

// Protocol selects the concurrency-control scheme.
type Protocol int

// Protocols.
const (
	Coarse Protocol = iota
	Coupling
	Link
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case Coarse:
		return "coarse"
	case Coupling:
		return "coupling"
	default:
		return "link"
	}
}

// Result is one search hit.
type Result struct {
	Key []byte
	RID page.RID
}

// Index is a non-transactional GiST with a pluggable concurrency protocol.
type Index struct {
	pool       *buffer.Pool
	ops        gist.Ops
	proto      Protocol
	maxEntries int

	// Tree-wide latch (Coarse) and root bookkeeping. rootMu guards the
	// root pointer for all protocols.
	treeLatch latch.Latch
	rootMu    sync.Mutex
	root      page.PageID

	// Tree-global counter for the Link protocol.
	counter atomic.Uint64

	// Instrumentation.
	LatchedIOs   atomic.Int64 // buffer misses while ≥1 latch held
	LatchlessIOs atomic.Int64
	Splits       atomic.Int64
	Chases       atomic.Int64
}

// New creates an empty index. maxEntries bounds node fanout (0 = byte
// space only).
func New(pool *buffer.Pool, ops gist.Ops, proto Protocol, maxEntries int) (*Index, error) {
	f, err := pool.NewPage(0)
	if err != nil {
		return nil, err
	}
	ix := &Index{pool: pool, ops: ops, proto: proto, maxEntries: maxEntries, root: f.ID()}
	pool.Unpin(f, true, 0)
	return ix, nil
}

// Protocol returns the index's protocol.
func (ix *Index) Protocol() Protocol { return ix.proto }

func (ix *Index) rootID() page.PageID {
	ix.rootMu.Lock()
	defer ix.rootMu.Unlock()
	return ix.root
}

// latchRoot returns the current root latched in the given mode. Without
// rightlinks (the coupling protocol) a traversal from a stale root would
// silently miss the subtrees split off it, so the root identity is
// re-verified after the latch is held; a concurrent root split between the
// read and the acquisition restarts the attempt.
func (ix *Index) latchRoot(mode latch.Mode, latched int) (*buffer.Frame, error) {
	for {
		id := ix.rootID()
		f, err := ix.fetch(id, latched)
		if err != nil {
			return nil, err
		}
		f.Latch.Acquire(mode)
		if ix.rootID() == id {
			return f, nil
		}
		f.Latch.Release(mode)
		ix.pool.Unpin(f, false, 0)
	}
}

// fetch pins a page, attributing any miss to the current latch depth.
func (ix *Index) fetch(id page.PageID, latched int) (*buffer.Frame, error) {
	f, missed, err := ix.pool.FetchEx(id)
	if err != nil {
		return nil, err
	}
	if missed {
		if latched > 0 {
			ix.LatchedIOs.Add(1)
		} else {
			ix.LatchlessIOs.Add(1)
		}
	}
	return f, nil
}

func (ix *Index) needsSplit(p *page.Page, encLen int) bool {
	if ix.maxEntries > 0 && p.NumSlots() >= ix.maxEntries {
		return true
	}
	return p.FreeSpaceAfterCompaction() < encLen
}

func (ix *Index) computedBP(p *page.Page) []byte {
	var bp []byte
	for i := 0; i < p.NumSlots(); i++ {
		e, err := p.Entry(i)
		if err != nil {
			continue
		}
		bp = ix.ops.Union(bp, e.Pred)
	}
	return bp
}

// Search returns all entries consistent with query.
func (ix *Index) Search(query []byte) ([]Result, error) {
	switch ix.proto {
	case Coarse:
		ix.treeLatch.Acquire(latch.S)
		defer ix.treeLatch.Release(latch.S)
		var out []Result
		err := ix.searchUnlatched(ix.rootID(), query, &out)
		return out, err
	case Coupling:
		var out []Result
		f, err := ix.latchRoot(latch.S, 0)
		if err != nil {
			return nil, err
		}
		err = ix.searchCoupled(f, query, &out, 1)
		return out, err
	default:
		return ix.searchLink(query)
	}
}

// searchUnlatched descends without per-node latches (the coarse tree latch
// already excludes writers).
func (ix *Index) searchUnlatched(pg page.PageID, query []byte, out *[]Result) error {
	f, err := ix.fetch(pg, 1) // the tree latch counts as held
	if err != nil {
		return err
	}
	defer ix.pool.Unpin(f, false, 0)
	if f.Page.IsLeaf() {
		for i := 0; i < f.Page.NumSlots(); i++ {
			e, err := f.Page.Entry(i)
			if err != nil {
				continue
			}
			if ix.ops.Consistent(e.Pred, query) {
				*out = append(*out, Result{Key: append([]byte(nil), e.Pred...), RID: e.RID})
			}
		}
		return nil
	}
	for i := 0; i < f.Page.NumSlots(); i++ {
		e, err := f.Page.Entry(i)
		if err != nil {
			continue
		}
		if ix.ops.Consistent(e.Pred, query) {
			if err := ix.searchUnlatched(e.Child, query, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// searchCoupled holds the S latch on f while visiting each consistent
// child — the subtree-locking discipline. f arrives latched and pinned;
// both are released before return. depth counts latches currently held.
func (ix *Index) searchCoupled(f *buffer.Frame, query []byte, out *[]Result, depth int) error {
	defer func() {
		f.Latch.Release(latch.S)
		ix.pool.Unpin(f, false, 0)
	}()
	if f.Page.IsLeaf() {
		for i := 0; i < f.Page.NumSlots(); i++ {
			e, err := f.Page.Entry(i)
			if err != nil {
				continue
			}
			if ix.ops.Consistent(e.Pred, query) {
				*out = append(*out, Result{Key: append([]byte(nil), e.Pred...), RID: e.RID})
			}
		}
		return nil
	}
	for i := 0; i < f.Page.NumSlots(); i++ {
		e, err := f.Page.Entry(i)
		if err != nil {
			continue
		}
		if !ix.ops.Consistent(e.Pred, query) {
			continue
		}
		// Latch the child while still holding the parent: the I/O to
		// fetch the child happens with the parent latch held — the
		// structural cost of this protocol.
		cf, err := ix.fetch(e.Child, depth)
		if err != nil {
			return err
		}
		cf.Latch.Acquire(latch.S)
		if err := ix.searchCoupled(cf, query, out, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Insert adds (key, rid).
func (ix *Index) Insert(key []byte, rid page.RID) error {
	switch ix.proto {
	case Coarse:
		ix.treeLatch.Acquire(latch.X)
		defer ix.treeLatch.Release(latch.X)
		return ix.insertExclusive(key, rid)
	case Coupling:
		return ix.insertCoupled(key, rid)
	default:
		return ix.insertLink(key, rid)
	}
}

var errNoEntries = errors.New("baseline: internal node has no entries")

// insertExclusive runs under the coarse tree latch: plain recursive insert
// with splitting, no per-node latches.
func (ix *Index) insertExclusive(key []byte, rid page.RID) error {
	rootID := ix.rootID()
	moved, newChild, err := ix.insertRec(rootID, key, rid)
	if err != nil {
		return err
	}
	if moved != nil {
		return ix.growRoot(rootID, moved, newChild)
	}
	return nil
}

// insertRec inserts under pg; if pg split, it returns the new sibling's BP
// and id for the caller to install.
func (ix *Index) insertRec(pg page.PageID, key []byte, rid page.RID) ([]byte, page.PageID, error) {
	f, err := ix.fetch(pg, 1)
	if err != nil {
		return nil, 0, err
	}
	defer ix.pool.Unpin(f, true, 0)

	if f.Page.IsLeaf() {
		entry := page.Entry{Pred: key, RID: rid}
		if ix.needsSplit(&f.Page, entry.EncodedLen(true)) {
			sibBP, sibID, err := ix.splitPage(f)
			if err != nil {
				return nil, 0, err
			}
			// Place the key on the better half.
			target := f
			if ix.ops.Penalty(sibBP, key) < ix.ops.Penalty(ix.computedBP(&f.Page), key) {
				tf, err := ix.fetch(sibID, 1)
				if err != nil {
					return nil, 0, err
				}
				defer ix.pool.Unpin(tf, true, 0)
				target = tf
			}
			if _, err := target.Page.InsertEntry(entry); err != nil {
				return nil, 0, err
			}
			return ix.freshBP(sibID)
		}
		if _, err := f.Page.InsertEntry(entry); err != nil {
			return nil, 0, err
		}
		return nil, 0, nil
	}

	// Choose minimal-penalty branch.
	slot := ix.bestSlot(&f.Page, key)
	if slot < 0 {
		return nil, 0, errNoEntries
	}
	child := f.Page.MustEntry(slot).Child
	moved, newChild, err := ix.insertRec(child, key, rid)
	if err != nil {
		return nil, 0, err
	}
	// Expand the child's BP for the new key.
	e := f.Page.MustEntry(slot)
	merged := ix.ops.Union(e.Pred, key)
	if err := f.Page.ReplaceEntry(slot, page.Entry{Pred: merged, Child: child}); err != nil {
		return nil, 0, err
	}
	if moved == nil {
		return nil, 0, nil
	}
	// Install entry for the child's new sibling, splitting this node if
	// necessary. Recompute the original child's BP (entries moved away).
	cf, err := ix.fetch(child, 1)
	if err != nil {
		return nil, 0, err
	}
	childBP := ix.computedBP(&cf.Page)
	ix.pool.Unpin(cf, false, 0)
	if slot2 := f.Page.FindChild(child); slot2 >= 0 {
		f.Page.ReplaceEntry(slot2, page.Entry{Pred: childBP, Child: child})
	}
	add := page.Entry{Pred: moved, Child: newChild}
	if ix.needsSplit(&f.Page, add.EncodedLen(false)) {
		_, sibID, err := ix.splitPage(f)
		if err != nil {
			return nil, 0, err
		}
		// The child's entry may have moved to the sibling; install
		// next to it.
		target := f
		if f.Page.FindChild(child) < 0 {
			tf, err := ix.fetch(sibID, 1)
			if err != nil {
				return nil, 0, err
			}
			defer ix.pool.Unpin(tf, true, 0)
			target = tf
		}
		if _, err := target.Page.InsertEntry(add); err != nil {
			return nil, 0, err
		}
		return ix.freshBP(sibID)
	}
	if _, err := f.Page.InsertEntry(add); err != nil {
		return nil, 0, err
	}
	return nil, 0, nil
}

// freshBP returns the current computed BP of a page together with its id,
// in the shape insertRec reports a split with.
func (ix *Index) freshBP(pg page.PageID) ([]byte, page.PageID, error) {
	f, err := ix.fetch(pg, 1)
	if err != nil {
		return nil, 0, err
	}
	bp := ix.computedBP(&f.Page)
	ix.pool.Unpin(f, false, 0)
	return bp, pg, nil
}

// bestSlot returns the minimal-penalty entry index.
func (ix *Index) bestSlot(p *page.Page, key []byte) int {
	best, bestPenalty := -1, math.Inf(1)
	for i := 0; i < p.NumSlots(); i++ {
		e, err := p.Entry(i)
		if err != nil {
			continue
		}
		if pen := ix.ops.Penalty(e.Pred, key); pen < bestPenalty {
			bestPenalty, best = pen, i
		}
	}
	return best
}

// splitPage distributes f's entries to a new sibling (no rightlinks in the
// non-link protocols; the link protocol maintains them itself). Returns the
// sibling's BP and id.
func (ix *Index) splitPage(f *buffer.Frame) ([]byte, page.PageID, error) {
	leaf := f.Page.IsLeaf()
	n := f.Page.NumSlots()
	preds := make([][]byte, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		b, err := f.Page.SlotBytes(i)
		if err != nil {
			return nil, 0, err
		}
		bodies[i] = append([]byte(nil), b...)
		e, err := page.DecodeEntry(bodies[i], leaf)
		if err != nil {
			return nil, 0, err
		}
		preds[i] = e.Pred
	}
	stayIdx := ix.ops.PickSplit(preds)
	stay := make(map[int]bool, len(stayIdx))
	for _, i := range stayIdx {
		stay[i] = true
	}
	if len(stay) == 0 || len(stay) >= n {
		return nil, 0, fmt.Errorf("baseline: PickSplit kept %d of %d", len(stay), n)
	}
	sib, err := ix.pool.NewPage(f.Page.Level())
	if err != nil {
		return nil, 0, err
	}
	defer ix.pool.Unpin(sib, true, 0)
	f.Page.Reset()
	for i := 0; i < n; i++ {
		var target *page.Page
		if stay[i] {
			target = &f.Page
		} else {
			target = &sib.Page
		}
		if _, err := target.InsertBytes(bodies[i]); err != nil {
			return nil, 0, err
		}
	}
	ix.Splits.Add(1)
	return ix.computedBP(&sib.Page), sib.ID(), nil
}

// growRoot installs a new root above the old one after a root split.
func (ix *Index) growRoot(oldRoot page.PageID, sibBP []byte, sibID page.PageID) error {
	of, err := ix.fetch(oldRoot, 1)
	if err != nil {
		return err
	}
	oldBP := ix.computedBP(&of.Page)
	level := of.Page.Level()
	ix.pool.Unpin(of, false, 0)

	nf, err := ix.pool.NewPage(level + 1)
	if err != nil {
		return err
	}
	if _, err := nf.Page.InsertEntry(page.Entry{Pred: oldBP, Child: oldRoot}); err != nil {
		return err
	}
	if _, err := nf.Page.InsertEntry(page.Entry{Pred: sibBP, Child: sibID}); err != nil {
		return err
	}
	ix.rootMu.Lock()
	ix.root = nf.ID()
	ix.rootMu.Unlock()
	ix.pool.Unpin(nf, true, 0)
	return nil
}
