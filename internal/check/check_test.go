package check_test

import (
	"strings"
	"testing"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/check"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

type env struct {
	pool *buffer.Pool
	tm   *txn.Manager
	tree *gist.Tree
	heap *heap.File
	log  *wal.Log
}

func build(t *testing.T, n int) *env {
	t.Helper()
	d := storage.NewMemDisk()
	l := wal.NewMemLog()
	pool := buffer.New(d, 256, l)
	tm := txn.NewManager(l, lock.NewManager(), predicate.NewManager())
	h := heap.New(pool)
	h.RegisterUndo(tm)
	tree, err := gist.Create(pool, tm, gist.Config{Ops: btree.Ops{}, MaxEntries: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := &env{pool: pool, tm: tm, tree: tree, heap: h, log: l}
	for i := 0; i < n; i++ {
		tx, err := tm.Begin()
		if err != nil {
			t.Fatal(err)
		}
		rid, err := h.Insert(tx, []byte("r"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(tx, btree.EncodeKey(int64(i)), rid); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		tree.TxnFinished(tx.ID())
	}
	return e
}

func (e *env) checker() *check.Checker {
	return &check.Checker{Pool: e.pool, Ops: btree.Ops{}, Anchor: e.tree.Anchor(), MaxNSN: e.log.LastLSN()}
}

// corrupt applies fn to the page under an X latch and marks it dirty.
func (e *env) corrupt(t *testing.T, pg page.PageID, fn func(p *page.Page)) {
	t.Helper()
	f, err := e.pool.Fetch(pg)
	if err != nil {
		t.Fatal(err)
	}
	f.Latch.Acquire(latch.X)
	fn(&f.Page)
	f.Latch.Release(latch.X)
	e.pool.Unpin(f, true, e.log.LastLSN())
}

func TestHealthyTreeReport(t *testing.T) {
	e := build(t, 120)
	rep, err := e.checker().Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 120 || rep.Marked != 0 || rep.Orphans != 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Height < 3 || rep.Leaves < 10 {
		t.Errorf("unexpectedly shallow: %+v", rep)
	}
	if len(rep.LeafIDs) != rep.Leaves {
		t.Errorf("LeafIDs %d vs Leaves %d", len(rep.LeafIDs), rep.Leaves)
	}
	if len(rep.Live) != rep.Entries {
		t.Errorf("Live map %d vs Entries %d", len(rep.Live), rep.Entries)
	}
}

func TestDetectsBPViolation(t *testing.T) {
	e := build(t, 120)
	rep, err := e.checker().Check()
	if err != nil {
		t.Fatal(err)
	}
	// Narrow the root's first entry so its subtree escapes.
	e.corrupt(t, rep.Root, func(p *page.Page) {
		en := p.MustEntry(0)
		p.ReplaceEntry(0, page.Entry{Pred: btree.EncodeRange(-5, -1), Child: en.Child})
	})
	if _, err := e.checker().Check(); err == nil || !strings.Contains(err.Error(), "escapes parent BP") {
		t.Errorf("err = %v, want BP violation", err)
	}
}

func TestDetectsDuplicateRID(t *testing.T) {
	e := build(t, 50)
	rep, err := e.checker().Check()
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate a live entry's RID on another leaf... simplest: insert a
	// second live entry with an existing RID on the same leaf.
	leaf := rep.LeafIDs[0]
	e.corrupt(t, leaf, func(p *page.Page) {
		en := p.MustEntry(0)
		p.InsertEntry(page.Entry{Pred: en.Pred, RID: en.RID})
	})
	if _, err := e.checker().Check(); err == nil || !strings.Contains(err.Error(), "two leaf entries") {
		t.Errorf("err = %v, want duplicate RID", err)
	}
}

func TestDetectsNSNAboveCounter(t *testing.T) {
	e := build(t, 50)
	rep, _ := e.checker().Check()
	e.corrupt(t, rep.LeafIDs[0], func(p *page.Page) {
		p.SetNSN(1 << 40)
	})
	if _, err := e.checker().Check(); err == nil || !strings.Contains(err.Error(), "exceeds counter") {
		t.Errorf("err = %v, want NSN violation", err)
	}
}

func TestDetectsReachableDeallocated(t *testing.T) {
	e := build(t, 50)
	rep, _ := e.checker().Check()
	e.corrupt(t, rep.LeafIDs[1], func(p *page.Page) {
		p.SetFlags(p.Flags() | page.FlagDeallocated)
	})
	if _, err := e.checker().Check(); err == nil || !strings.Contains(err.Error(), "deallocated") {
		t.Errorf("err = %v, want deallocated violation", err)
	}
}

func TestDetectsLevelSkew(t *testing.T) {
	e := build(t, 120)
	rep, _ := e.checker().Check()
	// Point an interior entry at a leaf from two levels down by grafting
	// a leaf where an internal node is expected: corrupt the root's
	// first entry to point at a leaf if the tree is tall enough.
	if rep.Height < 3 {
		t.Skip("tree too shallow")
	}
	e.corrupt(t, rep.Root, func(p *page.Page) {
		en := p.MustEntry(0)
		p.ReplaceEntry(0, page.Entry{Pred: en.Pred, Child: rep.LeafIDs[0]})
	})
	_, err := e.checker().Check()
	if err == nil {
		t.Fatal("level skew undetected")
	}
	if !strings.Contains(err.Error(), "level") && !strings.Contains(err.Error(), "twice") {
		t.Errorf("err = %v", err)
	}
}

func TestDetectsCycleViaDoubleReach(t *testing.T) {
	e := build(t, 120)
	rep, _ := e.checker().Check()
	if rep.Height < 3 {
		t.Skip("tree too shallow")
	}
	// Make two root entries point at the same child.
	e.corrupt(t, rep.Root, func(p *page.Page) {
		e0 := p.MustEntry(0)
		e1 := p.MustEntry(1)
		p.ReplaceEntry(1, page.Entry{Pred: e1.Pred, Child: e0.Child})
	})
	if _, err := e.checker().Check(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("err = %v, want double-reach", err)
	}
}

func TestMarkedEntriesCounted(t *testing.T) {
	e := build(t, 30)
	rep, _ := e.checker().Check()
	// Logically delete a few entries without GC.
	tx, _ := e.tm.Begin()
	count := 0
	for rid, key := range rep.Live {
		if err := e.tree.Delete(tx, key, rid); err != nil {
			t.Fatal(err)
		}
		count++
		if count == 5 {
			break
		}
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())
	rep2, err := e.checker().Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Marked != 5 || rep2.Entries != 25 {
		t.Errorf("marked=%d entries=%d, want 5,25", rep2.Marked, rep2.Entries)
	}
}

func TestCorruptAnchorReported(t *testing.T) {
	e := build(t, 5)
	e.corrupt(t, e.tree.Anchor(), func(p *page.Page) {
		p.Reset() // destroy the root pointer slot
	})
	if _, err := e.checker().Check(); err == nil || !strings.Contains(err.Error(), "anchor") {
		t.Errorf("err = %v, want anchor corruption", err)
	}
}
