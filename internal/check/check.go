// Package check verifies structural invariants of a quiesced generalized
// search tree: bounding-predicate containment, level monotonicity, NSN
// sanity, rightlink reachability, and exact leaf-entry content. The tests
// and the benchmark harness run it after every scenario to prove that the
// concurrency protocol preserved the tree.
package check

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/gist"
	"repro/internal/latch"
	"repro/internal/page"
)

// Report summarizes a structurally valid tree.
type Report struct {
	Root    page.PageID
	Height  int // number of levels (1 = root is a leaf)
	Nodes   int
	Leaves  int
	Entries int // live (not delete-marked) leaf entries
	Marked  int // delete-marked leaf entries still present
	Orphans int // nodes reachable only via rightlinks (0 when quiesced)

	// Live maps RID to key for every live leaf entry.
	Live map[page.RID][]byte
	// LeafIDs lists every leaf page, left-to-right in visit order.
	LeafIDs []page.PageID
}

// Checker walks a tree through the buffer pool. The tree must be quiesced:
// no concurrent operations may run during the check.
type Checker struct {
	Pool   *buffer.Pool
	Ops    gist.Ops
	Anchor page.PageID
	// MaxNSN, if non-zero, is the current tree-global counter; every
	// node's NSN must be <= MaxNSN.
	MaxNSN page.LSN
}

// nodeImage is a latched snapshot of one node.
type nodeImage struct {
	id        page.PageID
	level     uint16
	nsn       page.LSN
	rightlink page.PageID
	flags     uint16
	entries   []page.Entry
}

func (c *Checker) snapshot(pg page.PageID) (*nodeImage, error) {
	f, err := c.Pool.Fetch(pg)
	if err != nil {
		return nil, fmt.Errorf("check: fetch %d: %w", pg, err)
	}
	f.Latch.Acquire(latch.S)
	img := &nodeImage{
		id:        f.Page.ID(),
		level:     f.Page.Level(),
		nsn:       f.Page.NSN(),
		rightlink: f.Page.Rightlink(),
		flags:     f.Page.Flags(),
	}
	for i := 0; i < f.Page.NumSlots(); i++ {
		e, err := f.Page.Entry(i)
		if err != nil {
			f.Latch.Release(latch.S)
			c.Pool.Unpin(f, false, 0)
			return nil, fmt.Errorf("check: node %d slot %d: %w", pg, i, err)
		}
		e.Pred = append([]byte(nil), e.Pred...)
		img.entries = append(img.entries, e)
	}
	f.Latch.Release(latch.S)
	c.Pool.Unpin(f, false, 0)
	return img, nil
}

// Check validates the tree and returns its report, or the first invariant
// violation found.
func (c *Checker) Check() (*Report, error) {
	rootID, err := c.readAnchor()
	if err != nil {
		return nil, err
	}
	rep := &Report{Root: rootID, Live: make(map[page.RID][]byte)}

	reachable := make(map[page.PageID]bool)
	rootLevel, err := c.walk(rootID, nil, reachable, rep)
	if err != nil {
		return nil, err
	}
	rep.Height = int(rootLevel) + 1

	// Rightlink closure: in a quiesced tree every node a rightlink
	// reaches must also be parent-reachable — unless the target was
	// deleted from the tree. Node deletion deliberately leaves the left
	// sibling's rightlink dangling: the link is only ever followed when
	// the left node's NSN exceeds an operation's memorized counter,
	// which cannot happen for operations starting after the deletion, so
	// a dangling link to a deallocated (or delete-flagged) page is
	// benign. A rightlink to a LIVE but parent-unreachable node is the
	// real corruption this counts.
	for pg := range reachable {
		img, err := c.snapshot(pg)
		if err != nil {
			return nil, err
		}
		rl := img.rightlink
		if rl == page.InvalidPage || reachable[rl] {
			continue
		}
		tgt, err := c.snapshot(rl)
		if err != nil {
			continue // deallocated: benign dangling link
		}
		if tgt.flags&page.FlagDeallocated != 0 {
			continue // unlinked, awaiting reuse: benign
		}
		rep.Orphans++
	}
	return rep, nil
}

func (c *Checker) readAnchor() (page.PageID, error) {
	f, err := c.Pool.Fetch(c.Anchor)
	if err != nil {
		return 0, fmt.Errorf("check: anchor: %w", err)
	}
	defer c.Pool.Unpin(f, false, 0)
	f.Latch.Acquire(latch.S)
	defer f.Latch.Release(latch.S)
	b, err := f.Page.SlotBytes(0)
	if err != nil || len(b) != 4 {
		return 0, fmt.Errorf("check: corrupt anchor: %v", err)
	}
	return page.PageID(binary.BigEndian.Uint32(b)), nil
}

// walk validates the subtree rooted at pg. parentPred is the bounding
// predicate stored for pg in its parent (nil for the root). It returns the
// node's level.
func (c *Checker) walk(pg page.PageID, parentPred []byte, reachable map[page.PageID]bool, rep *Report) (uint16, error) {
	if reachable[pg] {
		return 0, fmt.Errorf("check: node %d reached twice via parent entries", pg)
	}
	reachable[pg] = true

	img, err := c.snapshot(pg)
	if err != nil {
		return 0, err
	}
	rep.Nodes++
	if img.flags&page.FlagDeallocated != 0 {
		return 0, fmt.Errorf("check: node %d is reachable but deallocated", pg)
	}
	if c.MaxNSN != 0 && img.nsn > c.MaxNSN {
		return 0, fmt.Errorf("check: node %d NSN %d exceeds counter %d", pg, img.nsn, c.MaxNSN)
	}

	// Containment: the parent's stored predicate must cover every entry
	// of this node — unioning an entry into it must not grow it.
	if parentPred != nil {
		canon := c.Ops.Union(parentPred, parentPred)
		for i, e := range img.entries {
			if u := c.Ops.Union(canon, e.Pred); !bytes.Equal(u, canon) {
				return 0, fmt.Errorf("check: node %d entry %d escapes parent BP", pg, i)
			}
		}
	}

	if img.level == 0 {
		rep.Leaves++
		rep.LeafIDs = append(rep.LeafIDs, pg)
		for _, e := range img.entries {
			if e.Deleted {
				rep.Marked++
				continue
			}
			if prev, dup := rep.Live[e.RID]; dup {
				return 0, fmt.Errorf("check: RID %v appears on two leaf entries (%q, %q)", e.RID, prev, e.Pred)
			}
			rep.Live[e.RID] = e.Pred
			rep.Entries++
		}
		return 0, nil
	}

	for _, e := range img.entries {
		childLevel, err := c.walk(e.Child, e.Pred, reachable, rep)
		if err != nil {
			return 0, err
		}
		if childLevel != img.level-1 {
			return 0, fmt.Errorf("check: node %d at level %d has child %d at level %d",
				pg, img.level, e.Child, childLevel)
		}
	}
	return img.level, nil
}
