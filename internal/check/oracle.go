package check

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/page"
	"repro/internal/wal"
)

// OracleFromLog replays a survivor log and returns the exact set of live
// leaf entries (RID -> predicate) a correct restart must produce: for every
// committed transaction, its inserted entries, minus inserts compensated by
// savepoint rollback, minus entries whose delete-mark committed (with
// compensated delete-marks re-added). Records of uncommitted transactions
// contribute nothing — restart undoes them. In-order replay handles
// cross-transaction chains (T1 commits an insert, T2 commits its delete)
// for free.
//
// baseline supplies the entries already committed before the log's head
// truncation point (checkpointing discards their history); nil means the
// log is complete from LSN 1. The survivor records then mutate the
// baseline forward.
func OracleFromLog(l *wal.Log, baseline map[page.RID][]byte) map[page.RID][]byte {
	committed := make(map[page.TxnID]bool)
	l.Scan(1, func(r *wal.Record) bool {
		if r.Type == wal.RecCommit {
			committed[r.Txn] = true
		}
		return true
	})
	want := make(map[page.RID][]byte, len(baseline))
	for rid, pred := range baseline {
		want[rid] = append([]byte(nil), pred...)
	}
	l.Scan(1, func(r *wal.Record) bool {
		applyOracleRecord(want, committed, r)
		return true
	})
	return want
}

// applyOracleRecord folds one log record of a committed transaction into the
// oracle's RID → predicate map. Last-writer-wins set/delete semantics, so
// re-applying the same record sequence in the same order is idempotent.
func applyOracleRecord(want map[page.RID][]byte, committed map[page.TxnID]bool, r *wal.Record) {
	if !committed[r.Txn] {
		return
	}
	e, err := page.DecodeEntry(r.Body, true)
	if err != nil {
		return
	}
	switch r.Type {
	case wal.RecAddLeafEntry:
		want[e.RID] = append([]byte(nil), e.Pred...)
	case wal.RecAddLeafEntry | wal.ClrFlag:
		delete(want, e.RID)
	case wal.RecMarkLeafEntry:
		delete(want, e.RID)
	case wal.RecMarkLeafEntry | wal.ClrFlag:
		want[e.RID] = append([]byte(nil), e.Pred...)
	}
}

// FoldBaseline advances baseline in place across the log records below
// upTo, using commit information from the entire current log. The crash
// harness calls it immediately before truncating the head at upTo: the
// records about to be discarded are folded into the baseline, so a later
// OracleFromLog over the truncated (or untruncated, if the truncation never
// became durable) survivor log composes with the folded baseline to the
// same committed state.
//
// Correctness leans on the truncation bound's own invariant: upTo never
// passes the firstLSN of any transaction alive when the bound was computed,
// so every transaction with a record below upTo has already terminated and
// its commit/abort record is in the log this scan reads. The fold is also
// idempotent against re-replay: if the cut does not survive the crash,
// OracleFromLog re-applies the same records over the folded baseline with
// identical last-writer-wins results.
func FoldBaseline(l *wal.Log, baseline map[page.RID][]byte, upTo page.LSN) {
	committed := make(map[page.TxnID]bool)
	l.Scan(1, func(r *wal.Record) bool {
		if r.Type == wal.RecCommit {
			committed[r.Txn] = true
		}
		return true
	})
	l.Scan(1, func(r *wal.Record) bool {
		if r.LSN >= upTo {
			return false
		}
		applyOracleRecord(baseline, committed, r)
		return true
	})
}

// VerifyOracle compares the live entries of a structural report against the
// oracle, both directions: a committed entry that is missing or mutated is
// lost durability; an extra entry is a resurrected aborted/in-flight write.
// It returns every discrepancy, bounded, as one error.
func VerifyOracle(rep *Report, want map[page.RID][]byte) error {
	var bad []string
	for rid, pred := range want {
		got, ok := rep.Live[rid]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("committed entry %v (%q) lost", rid, pred))
		case !bytes.Equal(got, pred):
			bad = append(bad, fmt.Sprintf("entry %v predicate %q, want %q", rid, got, pred))
		}
	}
	for rid, pred := range rep.Live {
		if _, ok := want[rid]; !ok {
			bad = append(bad, fmt.Sprintf("uncommitted entry %v (%q) survived restart", rid, pred))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	total := len(bad)
	sort.Strings(bad)
	if total > 20 {
		bad = append(bad[:20], fmt.Sprintf("... and %d more", total-20))
	}
	return fmt.Errorf("oracle: %d violations:\n  %s", total, join(bad))
}

func join(ss []string) string {
	out := ss[0]
	for _, s := range ss[1:] {
		out += "\n  " + s
	}
	return out
}
