package check

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/page"
	"repro/internal/wal"
)

// OracleFromLog replays a survivor log and returns the exact set of live
// leaf entries (RID -> predicate) a correct restart must produce: for every
// committed transaction, its inserted entries, minus inserts compensated by
// savepoint rollback, minus entries whose delete-mark committed (with
// compensated delete-marks re-added). Records of uncommitted transactions
// contribute nothing — restart undoes them. In-order replay handles
// cross-transaction chains (T1 commits an insert, T2 commits its delete)
// for free.
//
// baseline supplies the entries already committed before the log's head
// truncation point (checkpointing discards their history); nil means the
// log is complete from LSN 1. The survivor records then mutate the
// baseline forward.
func OracleFromLog(l *wal.Log, baseline map[page.RID][]byte) map[page.RID][]byte {
	committed := make(map[page.TxnID]bool)
	l.Scan(1, func(r *wal.Record) bool {
		if r.Type == wal.RecCommit {
			committed[r.Txn] = true
		}
		return true
	})
	want := make(map[page.RID][]byte, len(baseline))
	for rid, pred := range baseline {
		want[rid] = append([]byte(nil), pred...)
	}
	l.Scan(1, func(r *wal.Record) bool {
		if !committed[r.Txn] {
			return true
		}
		e, err := page.DecodeEntry(r.Body, true)
		if err != nil {
			return true
		}
		switch r.Type {
		case wal.RecAddLeafEntry:
			want[e.RID] = append([]byte(nil), e.Pred...)
		case wal.RecAddLeafEntry | wal.ClrFlag:
			delete(want, e.RID)
		case wal.RecMarkLeafEntry:
			delete(want, e.RID)
		case wal.RecMarkLeafEntry | wal.ClrFlag:
			want[e.RID] = append([]byte(nil), e.Pred...)
		}
		return true
	})
	return want
}

// VerifyOracle compares the live entries of a structural report against the
// oracle, both directions: a committed entry that is missing or mutated is
// lost durability; an extra entry is a resurrected aborted/in-flight write.
// It returns every discrepancy, bounded, as one error.
func VerifyOracle(rep *Report, want map[page.RID][]byte) error {
	var bad []string
	for rid, pred := range want {
		got, ok := rep.Live[rid]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("committed entry %v (%q) lost", rid, pred))
		case !bytes.Equal(got, pred):
			bad = append(bad, fmt.Sprintf("entry %v predicate %q, want %q", rid, got, pred))
		}
	}
	for rid, pred := range rep.Live {
		if _, ok := want[rid]; !ok {
			bad = append(bad, fmt.Sprintf("uncommitted entry %v (%q) survived restart", rid, pred))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	total := len(bad)
	sort.Strings(bad)
	if total > 20 {
		bad = append(bad[:20], fmt.Sprintf("... and %d more", total-20))
	}
	return fmt.Errorf("oracle: %d violations:\n  %s", total, join(bad))
}

func join(ss []string) string {
	out := ss[0]
	for _, s := range ss[1:] {
		out += "\n  " + s
	}
	return out
}
