package storage

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/page"
)

// SlowDisk wraps a Manager and adds a fixed latency to every page read and
// write. The paper's concurrency protocol is specifically designed so that
// no node latch is held across an I/O; the throughput experiments (E8) use
// SlowDisk to make I/O cost visible so that protocols which do hold latches
// across I/O (the baselines) pay for it.
type SlowDisk struct {
	Manager
	// Latency is added to each ReadPage and WritePage call.
	Latency time.Duration
}

// NewSlowDisk wraps m with the given per-operation latency.
func NewSlowDisk(m Manager, latency time.Duration) *SlowDisk {
	return &SlowDisk{Manager: m, Latency: latency}
}

// ReadPage implements Manager.
func (s *SlowDisk) ReadPage(id page.PageID, buf []byte) error {
	time.Sleep(s.Latency)
	return s.Manager.ReadPage(id, buf)
}

// WritePage implements Manager.
func (s *SlowDisk) WritePage(id page.PageID, buf []byte) error {
	time.Sleep(s.Latency)
	return s.Manager.WritePage(id, buf)
}

// CrashDisk wraps a Manager and fails every operation once Crash has been
// called (or once a preset number of writes has completed), simulating a
// system crash for the recovery experiments (E6). Writes that completed
// before the crash remain durable in the underlying store.
type CrashDisk struct {
	Manager
	crashed atomic.Bool

	mu          sync.Mutex
	writesLeft  int // crash after this many more writes; <0 = disabled
	writesTotal int64
}

// NewCrashDisk wraps m. The disk operates normally until Crash or
// CrashAfterWrites triggers.
func NewCrashDisk(m Manager) *CrashDisk {
	return &CrashDisk{Manager: m, writesLeft: -1}
}

// Crash makes every subsequent operation fail with ErrCrashed.
func (c *CrashDisk) Crash() { c.crashed.Store(true) }

// Crashed reports whether the crash point has been reached.
func (c *CrashDisk) Crashed() bool { return c.crashed.Load() }

// CrashAfterWrites arms the disk to crash after n more successful page
// writes complete.
func (c *CrashDisk) CrashAfterWrites(n int) {
	c.mu.Lock()
	c.writesLeft = n
	c.mu.Unlock()
}

// WritesTotal returns the number of page writes that have completed.
func (c *CrashDisk) WritesTotal() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writesTotal
}

// ReadPage implements Manager.
func (c *CrashDisk) ReadPage(id page.PageID, buf []byte) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	return c.Manager.ReadPage(id, buf)
}

// WritePage implements Manager.
func (c *CrashDisk) WritePage(id page.PageID, buf []byte) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	err := c.Manager.WritePage(id, buf)
	if err == nil {
		c.mu.Lock()
		c.writesTotal++
		if c.writesLeft > 0 {
			c.writesLeft--
			if c.writesLeft == 0 {
				c.crashed.Store(true)
			}
		}
		c.mu.Unlock()
	}
	return err
}

// Allocate implements Manager.
func (c *CrashDisk) Allocate() (page.PageID, error) {
	if c.crashed.Load() {
		return 0, ErrCrashed
	}
	return c.Manager.Allocate()
}

// Deallocate implements Manager.
func (c *CrashDisk) Deallocate(id page.PageID) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	return c.Manager.Deallocate(id)
}

// Sync implements Manager.
func (c *CrashDisk) Sync() error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	return c.Manager.Sync()
}

// EnsureAllocated implements Manager.
func (c *CrashDisk) EnsureAllocated(id page.PageID) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	return c.Manager.EnsureAllocated(id)
}

// EnsureDeallocated implements Manager.
func (c *CrashDisk) EnsureDeallocated(id page.PageID) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	return c.Manager.EnsureDeallocated(id)
}
