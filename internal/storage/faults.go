package storage

import (
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/page"
)

// SlowDisk wraps a Manager and adds a fixed latency to every page read and
// write. The paper's concurrency protocol is specifically designed so that
// no node latch is held across an I/O; the throughput experiments (E8) use
// SlowDisk to make I/O cost visible so that protocols which do hold latches
// across I/O (the baselines) pay for it.
type SlowDisk struct {
	Manager
	// Latency is added to each ReadPage and WritePage call.
	Latency time.Duration
}

// NewSlowDisk wraps m with the given per-operation latency.
func NewSlowDisk(m Manager, latency time.Duration) *SlowDisk {
	return &SlowDisk{Manager: m, Latency: latency}
}

// ReadPage implements Manager.
func (s *SlowDisk) ReadPage(id page.PageID, buf []byte) error {
	time.Sleep(s.Latency)
	return s.Manager.ReadPage(id, buf)
}

// WritePage implements Manager.
func (s *SlowDisk) WritePage(id page.PageID, buf []byte) error {
	time.Sleep(s.Latency)
	return s.Manager.WritePage(id, buf)
}

// CrashDisk wraps a Manager and fails every operation once Crash has been
// called (or once a preset number of writes has completed), simulating a
// system crash for the recovery experiments (E6). Writes that completed
// before the crash remain durable in the underlying store.
type CrashDisk struct {
	Manager
	crashed atomic.Bool

	mu          sync.Mutex
	writesLeft  int // crash after this many more writes; <0 = disabled
	writesTotal int64
}

// NewCrashDisk wraps m. The disk operates normally until Crash or
// CrashAfterWrites triggers.
func NewCrashDisk(m Manager) *CrashDisk {
	return &CrashDisk{Manager: m, writesLeft: -1}
}

// Crash makes every subsequent operation fail with ErrCrashed.
func (c *CrashDisk) Crash() { c.crashed.Store(true) }

// Crashed reports whether the crash point has been reached.
func (c *CrashDisk) Crashed() bool { return c.crashed.Load() }

// CrashAfterWrites arms the disk to crash after n more successful page
// writes complete.
func (c *CrashDisk) CrashAfterWrites(n int) {
	c.mu.Lock()
	c.writesLeft = n
	c.mu.Unlock()
}

// WritesTotal returns the number of page writes that have completed.
func (c *CrashDisk) WritesTotal() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writesTotal
}

// ReadPage implements Manager.
func (c *CrashDisk) ReadPage(id page.PageID, buf []byte) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	return c.Manager.ReadPage(id, buf)
}

// WritePage implements Manager.
func (c *CrashDisk) WritePage(id page.PageID, buf []byte) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	err := c.Manager.WritePage(id, buf)
	if err == nil {
		c.mu.Lock()
		c.writesTotal++
		if c.writesLeft > 0 {
			c.writesLeft--
			if c.writesLeft == 0 {
				c.crashed.Store(true)
			}
		}
		c.mu.Unlock()
	}
	return err
}

// Allocate implements Manager.
func (c *CrashDisk) Allocate() (page.PageID, error) {
	if c.crashed.Load() {
		return 0, ErrCrashed
	}
	return c.Manager.Allocate()
}

// Deallocate implements Manager.
func (c *CrashDisk) Deallocate(id page.PageID) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	return c.Manager.Deallocate(id)
}

// Sync implements Manager.
func (c *CrashDisk) Sync() error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	return c.Manager.Sync()
}

// EnsureAllocated implements Manager.
func (c *CrashDisk) EnsureAllocated(id page.PageID) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	return c.Manager.EnsureAllocated(id)
}

// EnsureDeallocated implements Manager.
func (c *CrashDisk) EnsureDeallocated(id page.PageID) error {
	if c.crashed.Load() {
		return ErrCrashed
	}
	return c.Manager.EnsureDeallocated(id)
}

// CrashPoint is a byte-granular crash trigger shared by every CrashFile of
// one simulated machine. Arm gives it a budget of bytes that may still be
// written across all attached files (WAL, data file, double-write journal
// alike); the write that crosses the budget persists only its admitted
// prefix — a torn frame or torn page — and from that instant every I/O on
// every attached file fails with ErrCrashed. Bytes written before the crash
// stay durable, bytes after it never reach the files: exactly the failure
// model of the paper's recovery protocol, with the tear landing at an
// arbitrary byte offset chosen by the fuzzer's seed.
type CrashPoint struct {
	mu        sync.Mutex
	armed     bool
	remaining int64
	crashed   bool
	total     int64  // bytes admitted across all files, ever
	site      string // label of the file whose write hit the point
}

// NewCrashPoint returns an unarmed crash point: attached files behave
// normally (while counting bytes) until Arm or CrashNow.
func NewCrashPoint() *CrashPoint { return &CrashPoint{} }

// Arm sets the remaining byte budget. The write that would exceed it is
// torn; a budget of 0 tears the very next write at offset 0.
func (c *CrashPoint) Arm(budget int64) {
	c.mu.Lock()
	c.armed, c.remaining = true, budget
	c.mu.Unlock()
}

// CrashNow fails every subsequent operation immediately (no tear).
func (c *CrashPoint) CrashNow() {
	c.mu.Lock()
	if !c.crashed {
		c.crashed = true
		c.site = "explicit"
	}
	c.mu.Unlock()
}

// Crashed reports whether the crash point has fired.
func (c *CrashPoint) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// BytesWritten returns the bytes admitted to all attached files so far.
func (c *CrashPoint) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Site names the file whose write crossed the budget ("" if none yet).
func (c *CrashPoint) Site() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.site
}

// admit decides the fate of an n-byte write against site: how many bytes
// may persist, and whether the write succeeds.
func (c *CrashPoint) admit(n int, site string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, false
	}
	if !c.armed || int64(n) < c.remaining {
		if c.armed {
			c.remaining -= int64(n)
		}
		c.total += int64(n)
		return n, true
	}
	// This write crosses (or exactly exhausts) the budget: persist the
	// admitted prefix, then fail everything. remaining == n is the
	// "write completed but the ack was lost" boundary case.
	k := c.remaining
	c.crashed = true
	c.site = site
	c.total += k
	return int(k), false
}

// ok gates non-write operations: they work until the crash, then fail.
func (c *CrashPoint) ok() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.crashed
}

// CrashFile wraps an *os.File with a shared CrashPoint. It satisfies both
// the wal log-file contract (sequential Read/Write/Seek, Truncate, Sync,
// Stat, Close) and the storage BlockFile contract (ReadAt/WriteAt), so one
// crash point can tear the WAL, the page file, and the double-write journal
// of a single simulated machine coherently. After the crash every operation
// except Stat, Name and Close fails with ErrCrashed — in particular
// Truncate and Sync, so the WAL's failed-write salvage cannot silently
// repair the file post-mortem and its sticky ErrLogFailed engages instead.
type CrashFile struct {
	f    *os.File
	cp   *CrashPoint
	site string
}

// NewCrashFile attaches f to cp under the given site label.
func NewCrashFile(f *os.File, cp *CrashPoint, site string) *CrashFile {
	return &CrashFile{f: f, cp: cp, site: site}
}

// Write implements io.Writer with torn-prefix semantics.
func (c *CrashFile) Write(p []byte) (int, error) {
	k, ok := c.cp.admit(len(p), c.site)
	var n int
	var err error
	if k > 0 {
		n, err = c.f.Write(p[:k])
		if err != nil {
			return n, err
		}
	}
	if !ok {
		return n, ErrCrashed
	}
	return n, nil
}

// WriteAt implements io.WriterAt with torn-prefix semantics.
func (c *CrashFile) WriteAt(p []byte, off int64) (int, error) {
	k, ok := c.cp.admit(len(p), c.site)
	var n int
	var err error
	if k > 0 {
		n, err = c.f.WriteAt(p[:k], off)
		if err != nil {
			return n, err
		}
	}
	if !ok {
		return n, ErrCrashed
	}
	return n, nil
}

// Read implements io.Reader.
func (c *CrashFile) Read(p []byte) (int, error) {
	if !c.cp.ok() {
		return 0, ErrCrashed
	}
	return c.f.Read(p)
}

// ReadAt implements io.ReaderAt.
func (c *CrashFile) ReadAt(p []byte, off int64) (int, error) {
	if !c.cp.ok() {
		return 0, ErrCrashed
	}
	return c.f.ReadAt(p, off)
}

// Seek implements io.Seeker.
func (c *CrashFile) Seek(offset int64, whence int) (int64, error) {
	if !c.cp.ok() {
		return 0, ErrCrashed
	}
	return c.f.Seek(offset, whence)
}

// Truncate fails after the crash so no post-mortem salvage can run.
func (c *CrashFile) Truncate(size int64) error {
	if !c.cp.ok() {
		return ErrCrashed
	}
	return c.f.Truncate(size)
}

// Sync fails after the crash.
func (c *CrashFile) Sync() error {
	if !c.cp.ok() {
		return ErrCrashed
	}
	return c.f.Sync()
}

// Stat always works (harness bookkeeping).
func (c *CrashFile) Stat() (os.FileInfo, error) { return c.f.Stat() }

// Name always works.
func (c *CrashFile) Name() string { return c.f.Name() }

// Close always closes the underlying descriptor so a crashed world can be
// abandoned without leaking files.
func (c *CrashFile) Close() error { return c.f.Close() }

var _ io.ReadWriteSeeker = (*CrashFile)(nil)
var _ BlockFile = (*CrashFile)(nil)
