package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/page"
	"repro/internal/stats"
)

// BlockFile is the file abstraction under FileDisk, split out so the crash
// harness can inject torn-write faults beneath the page store.
type BlockFile interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Stat() (os.FileInfo, error)
	Close() error
	Name() string
}

// FileDisk is a page store backed by an operating-system file plus a small
// double-write journal.
//
// Layout: page id N lives at byte offset N*page.Size. Offset 0 (page id 0,
// which is page.InvalidPage) holds the store's metadata block: the next
// never-used page id and the free list. The free list is persisted in the
// metadata block on Sync/Close; allocation state is therefore crash-safe
// only in combination with the Get-Page/Free-Page log records written by
// the tree layer, exactly as in the paper's recovery protocol.
//
// Torn page writes: the pageLSN lives in the first bytes of the page
// header, so a write torn mid-page leaves a new LSN stitched onto old
// content — restart redo would trust the LSN and skip the page, shipping
// the corruption. WAL rules cannot repair this (the paper assumes atomic
// page writes), so every page write goes through a double-write journal
// first: the full image is journaled (sequence-numbered and checksummed),
// then written home. On open the journal is replayed — for each page the
// highest-sequence intact frame is rewritten home, which is a no-op if the
// home write completed and heals the tear if it did not. The metadata
// block takes the same route.
type FileDisk struct {
	mu   sync.Mutex
	f    BlockFile
	next page.PageID
	free []page.PageID
	live map[page.PageID]bool

	// Double-write journal state. dwMu orders journal appends; the
	// sequence number totally orders frames so replay can pick the
	// newest image per page.
	dw    BlockFile
	dwMu  sync.Mutex
	dwSeq uint64

	reg    *stats.Registry
	reads  *stats.Counter
	writes *stats.Counter
}

const fileMagic = 0x47695354 // "GiST"

// Double-write journal format: dwSlots fixed-size frames, used round-robin
// by sequence number. Frame: magic u32, seq u64, page id u32, crc u32 (over
// seq|id|payload), payload page.Size.
const (
	dwMagic     = 0x47445721 // "GDW!"
	dwSlots     = 128
	dwHdrSize   = 4 + 8 + 4 + 4
	dwFrameSize = dwHdrSize + page.Size
)

// OpenFileDisk opens or creates a file-backed page store at path, with its
// double-write journal in a sibling file at path+".dw".
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	dw, err := os.OpenFile(path+".dw", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: open %s: %w", path+".dw", err)
	}
	d, err := OpenFileDiskFiles(f, dw)
	if err != nil {
		f.Close()
		dw.Close()
		return nil, err
	}
	return d, nil
}

// OpenFileDiskFiles builds a page store over already-open files; the crash
// harness calls it with fault-injecting BlockFiles. dw may be nil to run
// without torn-write protection.
func OpenFileDiskFiles(f, dw BlockFile) (*FileDisk, error) {
	d := &FileDisk{f: f, dw: dw, next: 1, live: make(map[page.PageID]bool)}
	d.reg = stats.NewRegistry()
	d.reads = d.reg.Counter("disk.reads")
	d.writes = d.reg.Counter("disk.writes")
	if dw != nil {
		if err := d.replayDoublewrite(); err != nil {
			return nil, err
		}
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() >= page.Size {
		if err := d.loadMeta(); err != nil {
			return nil, err
		}
	} else if err := d.storeMeta(); err != nil {
		return nil, err
	}
	return d, nil
}

// replayDoublewrite scans the journal and heals torn home writes. For every
// page with at least one intact frame, the highest-sequence image is a
// candidate — but it is NOT unconditionally rewritten: the ring reuses slots,
// so a page's truly newest frame can be evicted by later traffic, leaving a
// stale older frame whose blind replay would regress a perfectly good home
// image past committed, flushed updates. A completed home write never needs
// healing, so a frame is restored only when the home image is behind it:
//
//   - the frame carrying the journal's globally highest sequence number is
//     always restored — if any home write was torn it is the final write of
//     the crash, its journal frame necessarily completed just before it and
//     nothing overwrote that frame afterwards (the torn home's own LSN bytes
//     may themselves be torn garbage, so no header comparison is trusted);
//   - any other page frame is restored only if its pageLSN is at or above
//     the home image's pageLSN (equal means home is the same write, torn or
//     complete; above means the home write never happened) — homes other
//     than the final write completed, so their headers are intact;
//   - the metadata block has no pageLSN and is restored only as the global
//     newest; a stale metadata home is instead healed by the recovery
//     layer's allocation replay over the retained log.
//
// Torn journal frames fail their checksum and are skipped — their home
// write never started, so the old home image is intact.
func (d *FileDisk) replayDoublewrite() error {
	st, err := d.dw.Stat()
	if err != nil {
		return err
	}
	type best struct {
		seq     uint64
		payload []byte
	}
	newest := make(map[page.PageID]best)
	var maxSeq uint64
	maxSeqPage := page.InvalidPage
	seen := false
	frame := make([]byte, dwFrameSize)
	for slot := int64(0); (slot+1)*dwFrameSize <= st.Size(); slot++ {
		if _, err := d.dw.ReadAt(frame, slot*dwFrameSize); err != nil {
			return fmt.Errorf("storage: read dw slot %d: %w", slot, err)
		}
		if binary.BigEndian.Uint32(frame) != dwMagic {
			continue
		}
		seq := binary.BigEndian.Uint64(frame[4:])
		id := page.PageID(binary.BigEndian.Uint32(frame[12:]))
		crc := binary.BigEndian.Uint32(frame[16:])
		if crc32.ChecksumIEEE(frame[4:16])^crc32.ChecksumIEEE(frame[dwHdrSize:]) != crc {
			continue
		}
		if seq >= maxSeq || !seen {
			maxSeq, maxSeqPage, seen = seq, id, true
		}
		if b, ok := newest[id]; !ok || seq > b.seq {
			newest[id] = best{seq: seq, payload: append([]byte(nil), frame[dwHdrSize:]...)}
		}
	}
	home := make([]byte, page.Size)
	for id, b := range newest {
		restore := id == maxSeqPage
		if !restore && id != page.InvalidPage {
			homeLSN := uint64(0)
			if n, err := d.f.ReadAt(home, int64(id)*page.Size); err == nil || n >= 12 {
				homeLSN = binary.BigEndian.Uint64(home[4:12])
			}
			restore = binary.BigEndian.Uint64(b.payload[4:12]) >= homeLSN
		}
		if !restore {
			continue
		}
		if _, err := d.f.WriteAt(b.payload, int64(id)*page.Size); err != nil {
			return fmt.Errorf("storage: dw replay of page %d: %w", id, err)
		}
	}
	d.dwSeq = maxSeq + 1
	return nil
}

// writeThrough journals the image (if the journal is enabled), then writes
// it home. The journal write completes before the home write starts, so at
// most one of the two can be torn by a crash and replay always has an
// intact copy of the newest image.
func (d *FileDisk) writeThrough(id page.PageID, buf []byte) error {
	if d.dw != nil {
		d.dwMu.Lock()
		seq := d.dwSeq
		d.dwSeq++
		frame := make([]byte, dwFrameSize)
		binary.BigEndian.PutUint32(frame, dwMagic)
		binary.BigEndian.PutUint64(frame[4:], seq)
		binary.BigEndian.PutUint32(frame[12:], uint32(id))
		copy(frame[dwHdrSize:], buf[:page.Size])
		crc := crc32.ChecksumIEEE(frame[4:16]) ^ crc32.ChecksumIEEE(frame[dwHdrSize:])
		binary.BigEndian.PutUint32(frame[16:], crc)
		_, err := d.dw.WriteAt(frame, int64(seq%dwSlots)*dwFrameSize)
		d.dwMu.Unlock()
		if err != nil {
			return fmt.Errorf("storage: dw journal page %d: %w", id, err)
		}
	}
	if _, err := d.f.WriteAt(buf[:page.Size], int64(id)*page.Size); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Metadata block layout: magic u32, next u32, nfree u32, free ids u32 each.
func (d *FileDisk) loadMeta() error {
	buf := make([]byte, page.Size)
	if _, err := d.f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read meta: %w", err)
	}
	if binary.BigEndian.Uint32(buf) != fileMagic {
		return fmt.Errorf("storage: bad magic in %s", d.f.Name())
	}
	d.next = page.PageID(binary.BigEndian.Uint32(buf[4:]))
	nfree := int(binary.BigEndian.Uint32(buf[8:]))
	d.free = d.free[:0]
	freeSet := make(map[page.PageID]bool, nfree)
	for i := 0; i < nfree; i++ {
		id := page.PageID(binary.BigEndian.Uint32(buf[12+4*i:]))
		d.free = append(d.free, id)
		freeSet[id] = true
	}
	for id := page.PageID(1); id < d.next; id++ {
		if !freeSet[id] {
			d.live[id] = true
		}
	}
	return nil
}

func (d *FileDisk) storeMeta() error {
	buf := make([]byte, page.Size)
	binary.BigEndian.PutUint32(buf, fileMagic)
	binary.BigEndian.PutUint32(buf[4:], uint32(d.next))
	maxFree := (page.Size - 12) / 4
	n := len(d.free)
	if n > maxFree {
		n = maxFree // overflow ids are simply leaked until recovery GC
	}
	binary.BigEndian.PutUint32(buf[8:], uint32(n))
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint32(buf[12+4*i:], uint32(d.free[i]))
	}
	if err := d.writeThrough(page.InvalidPage, buf); err != nil {
		return fmt.Errorf("storage: write meta: %w", err)
	}
	return nil
}

// Allocate implements Manager.
func (d *FileDisk) Allocate() (page.PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var id page.PageID
	if n := len(d.free); n > 0 {
		id = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		id = d.next
		d.next++
	}
	d.live[id] = true
	// Extend the file with a zero page so reads of fresh pages succeed.
	// No journaling: a torn zero-extend is indistinguishable from a short
	// file, which ReadPage tolerates (see the zero-fill there).
	zero := make([]byte, page.Size)
	if _, err := d.f.WriteAt(zero, int64(id)*page.Size); err != nil {
		return 0, fmt.Errorf("storage: extend: %w", err)
	}
	return id, nil
}

// Deallocate implements Manager.
func (d *FileDisk) Deallocate(id page.PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.live[id] {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	delete(d.live, id)
	d.free = append(d.free, id)
	return nil
}

// ReadPage implements Manager. A read past EOF or cut short by it returns
// zeroes for the missing suffix: a crash can tear the zero-extension of a
// fresh page, leaving the file short of the page the log proves allocated.
func (d *FileDisk) ReadPage(id page.PageID, buf []byte) error {
	d.mu.Lock()
	live := d.live[id]
	d.mu.Unlock()
	d.reads.Inc()
	if !live {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	n, err := d.f.ReadAt(buf[:page.Size], int64(id)*page.Size)
	if err == io.EOF && n < page.Size {
		for i := n; i < page.Size; i++ {
			buf[i] = 0
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Manager.
func (d *FileDisk) WritePage(id page.PageID, buf []byte) error {
	d.mu.Lock()
	live := d.live[id]
	d.mu.Unlock()
	d.writes.Inc()
	if !live {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	return d.writeThrough(id, buf)
}

// NumAllocated implements Manager.
func (d *FileDisk) NumAllocated() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.live)
}

// Stats returns cumulative read and write counts, read through the stats
// registry.
func (d *FileDisk) Stats() (reads, writes int64) {
	return d.reads.Load(), d.writes.Load()
}

// Metrics exposes the store's counter registry.
func (d *FileDisk) Metrics() *stats.Registry { return d.reg }

// Sync implements Manager: persists the allocation metadata and fsyncs.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.storeMeta(); err != nil {
		return err
	}
	if d.dw != nil {
		if err := d.dw.Sync(); err != nil {
			return err
		}
	}
	return d.f.Sync()
}

// Close implements Manager.
func (d *FileDisk) Close() error {
	err := d.Sync()
	if d.dw != nil {
		if cerr := d.dw.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// EnsureAllocated implements Manager.
func (d *FileDisk) EnsureAllocated(id page.PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.live[id] {
		return nil
	}
	d.live[id] = true
	for i, f := range d.free {
		if f == id {
			d.free = append(d.free[:i], d.free[i+1:]...)
			break
		}
	}
	if id >= d.next {
		// Extend the file only if it does not already cover the page:
		// content flushed before a crash may be beyond the stale
		// metadata watermark and must not be zeroed (restart redo
		// decides, via the pageLSN, what applies on top of it).
		st, err := d.f.Stat()
		if err != nil {
			return err
		}
		if st.Size() < int64(id+1)*page.Size {
			zero := make([]byte, page.Size)
			if _, err := d.f.WriteAt(zero, int64(id)*page.Size); err != nil {
				return fmt.Errorf("storage: extend: %w", err)
			}
		}
		d.next = id + 1
	}
	return nil
}

// EnsureDeallocated implements Manager.
func (d *FileDisk) EnsureDeallocated(id page.PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.live[id] {
		return nil
	}
	delete(d.live, id)
	d.free = append(d.free, id)
	return nil
}
