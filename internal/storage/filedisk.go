package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/page"
	"repro/internal/stats"
)

// FileDisk is a page store backed by a single operating-system file.
//
// Layout: page id N lives at byte offset N*page.Size. Offset 0 (page id 0,
// which is page.InvalidPage) holds the store's metadata block: the next
// never-used page id and the free list. The free list is persisted in the
// metadata block on Sync/Close; allocation state is therefore crash-safe
// only in combination with the Get-Page/Free-Page log records written by
// the tree layer, exactly as in the paper's recovery protocol.
type FileDisk struct {
	mu   sync.Mutex
	f    *os.File
	next page.PageID
	free []page.PageID
	live map[page.PageID]bool

	reg    *stats.Registry
	reads  *stats.Counter
	writes *stats.Counter
}

const fileMagic = 0x47695354 // "GiST"

// OpenFileDisk opens or creates a file-backed page store at path.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	d := &FileDisk{f: f, next: 1, live: make(map[page.PageID]bool)}
	d.reg = stats.NewRegistry()
	d.reads = d.reg.Counter("disk.reads")
	d.writes = d.reg.Counter("disk.writes")
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() >= page.Size {
		if err := d.loadMeta(); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := d.storeMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// Metadata block layout: magic u32, next u32, nfree u32, free ids u32 each.
func (d *FileDisk) loadMeta() error {
	buf := make([]byte, page.Size)
	if _, err := d.f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read meta: %w", err)
	}
	if binary.BigEndian.Uint32(buf) != fileMagic {
		return fmt.Errorf("storage: bad magic in %s", d.f.Name())
	}
	d.next = page.PageID(binary.BigEndian.Uint32(buf[4:]))
	nfree := int(binary.BigEndian.Uint32(buf[8:]))
	d.free = d.free[:0]
	freeSet := make(map[page.PageID]bool, nfree)
	for i := 0; i < nfree; i++ {
		id := page.PageID(binary.BigEndian.Uint32(buf[12+4*i:]))
		d.free = append(d.free, id)
		freeSet[id] = true
	}
	for id := page.PageID(1); id < d.next; id++ {
		if !freeSet[id] {
			d.live[id] = true
		}
	}
	return nil
}

func (d *FileDisk) storeMeta() error {
	buf := make([]byte, page.Size)
	binary.BigEndian.PutUint32(buf, fileMagic)
	binary.BigEndian.PutUint32(buf[4:], uint32(d.next))
	maxFree := (page.Size - 12) / 4
	n := len(d.free)
	if n > maxFree {
		n = maxFree // overflow ids are simply leaked until recovery GC
	}
	binary.BigEndian.PutUint32(buf[8:], uint32(n))
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint32(buf[12+4*i:], uint32(d.free[i]))
	}
	if _, err := d.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("storage: write meta: %w", err)
	}
	return nil
}

// Allocate implements Manager.
func (d *FileDisk) Allocate() (page.PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var id page.PageID
	if n := len(d.free); n > 0 {
		id = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		id = d.next
		d.next++
	}
	d.live[id] = true
	// Extend the file with a zero page so reads of fresh pages succeed.
	zero := make([]byte, page.Size)
	if _, err := d.f.WriteAt(zero, int64(id)*page.Size); err != nil {
		return 0, fmt.Errorf("storage: extend: %w", err)
	}
	return id, nil
}

// Deallocate implements Manager.
func (d *FileDisk) Deallocate(id page.PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.live[id] {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	delete(d.live, id)
	d.free = append(d.free, id)
	return nil
}

// ReadPage implements Manager.
func (d *FileDisk) ReadPage(id page.PageID, buf []byte) error {
	d.mu.Lock()
	live := d.live[id]
	d.mu.Unlock()
	d.reads.Inc()
	if !live {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	if _, err := d.f.ReadAt(buf[:page.Size], int64(id)*page.Size); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Manager.
func (d *FileDisk) WritePage(id page.PageID, buf []byte) error {
	d.mu.Lock()
	live := d.live[id]
	d.mu.Unlock()
	d.writes.Inc()
	if !live {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	if _, err := d.f.WriteAt(buf[:page.Size], int64(id)*page.Size); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// NumAllocated implements Manager.
func (d *FileDisk) NumAllocated() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.live)
}

// Stats returns cumulative read and write counts, read through the stats
// registry.
func (d *FileDisk) Stats() (reads, writes int64) {
	return d.reads.Load(), d.writes.Load()
}

// Metrics exposes the store's counter registry.
func (d *FileDisk) Metrics() *stats.Registry { return d.reg }

// Sync implements Manager: persists the allocation metadata and fsyncs.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.storeMeta(); err != nil {
		return err
	}
	return d.f.Sync()
}

// Close implements Manager.
func (d *FileDisk) Close() error {
	if err := d.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

// EnsureAllocated implements Manager.
func (d *FileDisk) EnsureAllocated(id page.PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.live[id] {
		return nil
	}
	d.live[id] = true
	for i, f := range d.free {
		if f == id {
			d.free = append(d.free[:i], d.free[i+1:]...)
			break
		}
	}
	if id >= d.next {
		// Extend the file only if it does not already cover the page:
		// content flushed before a crash may be beyond the stale
		// metadata watermark and must not be zeroed (restart redo
		// decides, via the pageLSN, what applies on top of it).
		st, err := d.f.Stat()
		if err != nil {
			return err
		}
		if st.Size() < int64(id+1)*page.Size {
			zero := make([]byte, page.Size)
			if _, err := d.f.WriteAt(zero, int64(id)*page.Size); err != nil {
				return fmt.Errorf("storage: extend: %w", err)
			}
		}
		d.next = id + 1
	}
	return nil
}

// EnsureDeallocated implements Manager.
func (d *FileDisk) EnsureDeallocated(id page.PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.live[id] {
		return nil
	}
	delete(d.live, id)
	d.free = append(d.free, id)
	return nil
}
