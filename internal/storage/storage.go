// Package storage provides page stores ("disk managers") beneath the buffer
// pool: a file-backed store, an in-memory store, and wrappers that inject
// simulated I/O latency and crash faults for the recovery experiments.
//
// Page allocation and deallocation are exposed here as raw operations; the
// tree layer makes them recoverable by writing Get-Page / Free-Page log
// records (Table 1 of the paper) around them.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/page"
	"repro/internal/stats"
)

// ErrNoSuchPage is returned when reading a page that was never allocated.
var ErrNoSuchPage = errors.New("storage: no such page")

// ErrCrashed is returned by a CrashDisk after its crash point is reached.
var ErrCrashed = errors.New("storage: simulated crash")

// Manager is the interface between the buffer pool and a page store.
//
// Read and Write transfer exactly page.Size bytes. Allocate returns a fresh
// page id (ids are never zero). Deallocate returns a page to the free pool;
// the id may later be handed out again by Allocate.
type Manager interface {
	ReadPage(id page.PageID, buf []byte) error
	WritePage(id page.PageID, buf []byte) error
	Allocate() (page.PageID, error)
	Deallocate(id page.PageID) error
	// NumAllocated returns the number of live pages (allocated and not
	// yet deallocated).
	NumAllocated() int
	// EnsureAllocated forces the allocation state of a specific page id,
	// used by restart redo of Get-Page records (Table 1: "mark page as
	// unavailable"). Idempotent.
	EnsureAllocated(id page.PageID) error
	// EnsureDeallocated forces a page to the free state, used by restart
	// redo of Free-Page records. Idempotent.
	EnsureDeallocated(id page.PageID) error
	// Sync makes all completed writes durable.
	Sync() error
	Close() error
}

// MetricsOf returns the stats registry of the concrete store underneath m,
// unwrapping the fault-injection wrappers (SlowDisk, CrashDisk), or nil for
// an unknown implementation.
func MetricsOf(m Manager) *stats.Registry {
	for {
		switch d := m.(type) {
		case *MemDisk:
			return d.reg
		case *FileDisk:
			return d.reg
		case *SlowDisk:
			m = d.Manager
		case *CrashDisk:
			m = d.Manager
		default:
			return nil
		}
	}
}

// MemDisk is an in-memory page store. It is safe for concurrent use.
type MemDisk struct {
	mu    sync.Mutex
	pages map[page.PageID][]byte
	free  []page.PageID
	next  page.PageID

	reg    *stats.Registry
	reads  *stats.Counter
	writes *stats.Counter
}

// NewMemDisk returns an empty in-memory page store.
func NewMemDisk() *MemDisk {
	m := &MemDisk{pages: make(map[page.PageID][]byte), next: 1}
	m.reg = stats.NewRegistry()
	m.reads = m.reg.Counter("disk.reads")
	m.writes = m.reg.Counter("disk.writes")
	return m
}

// Metrics exposes the store's counter registry.
func (m *MemDisk) Metrics() *stats.Registry { return m.reg }

// Allocate implements Manager.
func (m *MemDisk) Allocate() (page.PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var id page.PageID
	if n := len(m.free); n > 0 {
		id = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		id = m.next
		m.next++
	}
	m.pages[id] = make([]byte, page.Size)
	return id, nil
}

// Deallocate implements Manager.
func (m *MemDisk) Deallocate(id page.PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pages[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	delete(m.pages, id)
	m.free = append(m.free, id)
	return nil
}

// ReadPage implements Manager.
func (m *MemDisk) ReadPage(id page.PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	src, ok := m.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	m.reads.Inc()
	copy(buf, src)
	return nil
}

// WritePage implements Manager.
func (m *MemDisk) WritePage(id page.PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dst, ok := m.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	m.writes.Inc()
	copy(dst, buf)
	return nil
}

// NumAllocated implements Manager.
func (m *MemDisk) NumAllocated() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pages)
}

// Stats returns cumulative read and write counts, read through the stats
// registry.
func (m *MemDisk) Stats() (reads, writes int64) {
	return m.reads.Load(), m.writes.Load()
}

// Sync implements Manager; a no-op for memory.
func (m *MemDisk) Sync() error { return nil }

// Close implements Manager.
func (m *MemDisk) Close() error { return nil }

// Snapshot returns a deep copy of the store, used to simulate the durable
// state that survives a crash (the buffer pool contents do not).
func (m *MemDisk) Snapshot() *MemDisk {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &MemDisk{pages: make(map[page.PageID][]byte, len(m.pages)), next: m.next}
	s.reg = stats.NewRegistry()
	s.reads = s.reg.Counter("disk.reads")
	s.writes = s.reg.Counter("disk.writes")
	s.free = append(s.free, m.free...)
	for id, b := range m.pages {
		cp := make([]byte, page.Size)
		copy(cp, b)
		s.pages[id] = cp
	}
	return s
}

// PageIDs returns the ids of all live pages in ascending order, for tests
// and benchmarks that digest the durable state (e.g. comparing the recovered
// images of a serial vs a parallel restart byte for byte).
func (m *MemDisk) PageIDs() []page.PageID {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]page.PageID, 0, len(m.pages))
	for id := range m.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EnsureAllocated implements Manager.
func (m *MemDisk) EnsureAllocated(id page.PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pages[id]; ok {
		return nil
	}
	m.pages[id] = make([]byte, page.Size)
	for i, f := range m.free {
		if f == id {
			m.free = append(m.free[:i], m.free[i+1:]...)
			break
		}
	}
	if id >= m.next {
		m.next = id + 1
	}
	return nil
}

// EnsureDeallocated implements Manager.
func (m *MemDisk) EnsureDeallocated(id page.PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pages[id]; !ok {
		return nil
	}
	delete(m.pages, id)
	m.free = append(m.free, id)
	return nil
}
