package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/page"
)

func openCrashDisk(t *testing.T, dir string, cp *CrashPoint) (*FileDisk, string) {
	t.Helper()
	path := filepath.Join(dir, "pages.db")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := os.OpenFile(path+".dw", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenFileDiskFiles(NewCrashFile(f, cp, "pages"), NewCrashFile(dw, cp, "dw"))
	if err != nil {
		t.Fatal(err)
	}
	return d, path
}

func fill(b byte) []byte {
	buf := make([]byte, page.Size)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// A home-page write torn mid-page must be healed from the double-write
// journal on reopen: the page reads back as the complete new image, never
// a stitch of new prefix and old tail.
func TestDoublewriteHealsTornPageWrite(t *testing.T) {
	cp := NewCrashPoint()
	d, path := openCrashDisk(t, t.TempDir(), cp)
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(id, fill(0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// The next WritePage journals a full frame, then tears the home
	// write 1000 bytes in.
	cp.Arm(dwFrameSize + 1000)
	err = d.WritePage(id, fill(0xBB))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write returned %v, want ErrCrashed", err)
	}
	if cp.Site() != "pages" {
		t.Fatalf("tear landed on %q, want the home file", cp.Site())
	}
	d.f.Close()
	d.dw.Close()

	// The home image really is torn before replay.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	home := raw[int64(id)*page.Size:][:page.Size]
	if home[0] != 0xBB || home[page.Size-1] != 0xAA {
		t.Fatalf("expected a torn home image, got %x..%x", home[0], home[page.Size-1])
	}

	nd, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	buf := make([]byte, page.Size)
	if err := nd.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fill(0xBB)) {
		t.Error("torn page not healed to the journaled image")
	}
}

// A journal write torn mid-frame fails its checksum at replay and is
// skipped; the home image (never touched) keeps the previous version.
func TestDoublewriteTornJournalKeepsOldImage(t *testing.T) {
	cp := NewCrashPoint()
	d, path := openCrashDisk(t, t.TempDir(), cp)
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WritePage(id, fill(0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	cp.Arm(500) // tears inside the journal frame of the next write
	if err := d.WritePage(id, fill(0xBB)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn journal write returned %v, want ErrCrashed", err)
	}
	if cp.Site() != "dw" {
		t.Fatalf("tear landed on %q, want the journal", cp.Site())
	}
	d.f.Close()
	d.dw.Close()

	nd, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	buf := make([]byte, page.Size)
	if err := nd.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fill(0xAA)) {
		t.Error("old image lost despite the home write never starting")
	}
}

// After the crash point fires, every subsequent operation on every
// attached file fails — reads, syncs, truncates — so nothing can silently
// repair the simulated machine post-mortem.
func TestCrashPointFreezesAllFiles(t *testing.T) {
	cp := NewCrashPoint()
	d, _ := openCrashDisk(t, t.TempDir(), cp)
	defer func() {
		d.f.Close()
		d.dw.Close()
	}()
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	cp.CrashNow()
	buf := make([]byte, page.Size)
	if err := d.ReadPage(id, buf); !errors.Is(err, ErrCrashed) {
		t.Errorf("read after crash: %v", err)
	}
	if err := d.WritePage(id, buf); !errors.Is(err, ErrCrashed) {
		t.Errorf("write after crash: %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrCrashed) {
		t.Errorf("sync after crash: %v", err)
	}
	cf := d.f.(*CrashFile)
	if err := cf.Truncate(0); !errors.Is(err, ErrCrashed) {
		t.Errorf("truncate after crash: %v", err)
	}
	if _, err := cf.Stat(); err != nil {
		t.Errorf("stat must keep working: %v", err)
	}
}
