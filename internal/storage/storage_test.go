package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/page"
)

// managers returns fresh instances of every Manager implementation for
// table-driven tests.
func managers(t *testing.T) map[string]Manager {
	t.Helper()
	fd, err := OpenFileDisk(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fd.Close() })
	return map[string]Manager{
		"mem":  NewMemDisk(),
		"file": fd,
	}
}

func TestAllocateReadWrite(t *testing.T) {
	for name, m := range managers(t) {
		t.Run(name, func(t *testing.T) {
			id, err := m.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id == page.InvalidPage {
				t.Fatal("allocated the invalid page id")
			}
			out := make([]byte, page.Size)
			for i := range out {
				out[i] = byte(i)
			}
			if err := m.WritePage(id, out); err != nil {
				t.Fatal(err)
			}
			in := make([]byte, page.Size)
			if err := m.ReadPage(id, in); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(in, out) {
				t.Error("read back different bytes")
			}
			if m.NumAllocated() != 1 {
				t.Errorf("NumAllocated = %d", m.NumAllocated())
			}
		})
	}
}

func TestFreshPageIsZero(t *testing.T) {
	for name, m := range managers(t) {
		t.Run(name, func(t *testing.T) {
			id, err := m.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, page.Size)
			buf[0] = 0xFF
			if err := m.ReadPage(id, buf); err != nil {
				t.Fatal(err)
			}
			for i, b := range buf {
				if b != 0 {
					t.Fatalf("fresh page byte %d = %d", i, b)
				}
			}
		})
	}
}

func TestDeallocateAndReuse(t *testing.T) {
	for name, m := range managers(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := m.Allocate()
			b, _ := m.Allocate()
			if err := m.Deallocate(a); err != nil {
				t.Fatal(err)
			}
			if m.NumAllocated() != 1 {
				t.Errorf("NumAllocated = %d, want 1", m.NumAllocated())
			}
			buf := make([]byte, page.Size)
			if err := m.ReadPage(a, buf); !errors.Is(err, ErrNoSuchPage) {
				t.Errorf("read freed page: err = %v", err)
			}
			if err := m.Deallocate(a); !errors.Is(err, ErrNoSuchPage) {
				t.Errorf("double free: err = %v", err)
			}
			c, _ := m.Allocate()
			if c != a {
				t.Errorf("reuse: got %d, want freed id %d", c, a)
			}
			_ = b
		})
	}
}

func TestReadUnallocated(t *testing.T) {
	for name, m := range managers(t) {
		t.Run(name, func(t *testing.T) {
			buf := make([]byte, page.Size)
			if err := m.ReadPage(12345, buf); !errors.Is(err, ErrNoSuchPage) {
				t.Errorf("err = %v, want ErrNoSuchPage", err)
			}
			if err := m.WritePage(12345, buf); !errors.Is(err, ErrNoSuchPage) {
				t.Errorf("write: err = %v, want ErrNoSuchPage", err)
			}
		})
	}
}

func TestFileDiskPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.Allocate()
	b, _ := d.Allocate()
	c, _ := d.Allocate()
	content := make([]byte, page.Size)
	copy(content, "persisted content")
	if err := d.WritePage(b, content); err != nil {
		t.Fatal(err)
	}
	if err := d.Deallocate(c); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumAllocated() != 2 {
		t.Errorf("NumAllocated after reopen = %d, want 2", d2.NumAllocated())
	}
	buf := make([]byte, page.Size)
	if err := d2.ReadPage(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, content) {
		t.Error("content lost across reopen")
	}
	// Freed id should be reused before extending.
	id, _ := d2.Allocate()
	if id != c {
		t.Errorf("reuse after reopen: got %d, want %d", id, c)
	}
	_ = a
}

func TestFileDiskBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Corrupting only the home meta block is healed by double-write
	// replay on the next open.
	f, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	f.f.WriteAt([]byte{0, 0, 0, 0}, 0)
	f.f.Close()
	f.dw.Close()
	healed, err := OpenFileDisk(path)
	if err != nil {
		t.Fatalf("dw replay should heal a torn meta block: %v", err)
	}
	healed.Close()
	// With the journal gone too, the corruption is fatal.
	g, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	g.f.WriteAt([]byte{0, 0, 0, 0}, 0)
	g.f.Close()
	g.dw.Close()
	if err := os.Remove(path + ".dw"); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDisk(path); err == nil {
		t.Error("open with bad magic should fail")
	}
}

func TestMemDiskSnapshot(t *testing.T) {
	m := NewMemDisk()
	id, _ := m.Allocate()
	buf := make([]byte, page.Size)
	copy(buf, "before")
	m.WritePage(id, buf)

	snap := m.Snapshot()

	copy(buf, "after!")
	m.WritePage(id, buf)

	got := make([]byte, page.Size)
	if err := snap.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:6]) != "before" {
		t.Errorf("snapshot sees %q", got[:6])
	}
	// Snapshot allocates independently.
	a1, _ := m.Allocate()
	a2, _ := snap.Snapshot().Allocate()
	if a1 != a2 {
		t.Errorf("snapshot next id diverged: %d vs %d", a1, a2)
	}
}

func TestSlowDiskAddsLatency(t *testing.T) {
	m := NewMemDisk()
	id, _ := m.Allocate()
	s := NewSlowDisk(m, 5*time.Millisecond)
	buf := make([]byte, page.Size)
	start := time.Now()
	if err := s.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("two ops took %v, want >= 10ms", d)
	}
}

func TestCrashDiskManual(t *testing.T) {
	m := NewMemDisk()
	id, _ := m.Allocate()
	c := NewCrashDisk(m)
	buf := make([]byte, page.Size)
	if err := c.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	if !c.Crashed() {
		t.Error("Crashed() = false after Crash()")
	}
	if err := c.ReadPage(id, buf); !errors.Is(err, ErrCrashed) {
		t.Errorf("read after crash: %v", err)
	}
	if err := c.WritePage(id, buf); !errors.Is(err, ErrCrashed) {
		t.Errorf("write after crash: %v", err)
	}
	if _, err := c.Allocate(); !errors.Is(err, ErrCrashed) {
		t.Errorf("allocate after crash: %v", err)
	}
	if err := c.Deallocate(id); !errors.Is(err, ErrCrashed) {
		t.Errorf("deallocate after crash: %v", err)
	}
	if err := c.Sync(); !errors.Is(err, ErrCrashed) {
		t.Errorf("sync after crash: %v", err)
	}
}

func TestCrashDiskAfterWrites(t *testing.T) {
	m := NewMemDisk()
	id, _ := m.Allocate()
	c := NewCrashDisk(m)
	c.CrashAfterWrites(3)
	buf := make([]byte, page.Size)
	for i := 0; i < 3; i++ {
		if err := c.WritePage(id, buf); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if !c.Crashed() {
		t.Fatal("should have crashed after 3 writes")
	}
	if err := c.WritePage(id, buf); !errors.Is(err, ErrCrashed) {
		t.Errorf("4th write: %v", err)
	}
	if c.WritesTotal() != 3 {
		t.Errorf("WritesTotal = %d, want 3", c.WritesTotal())
	}
}

// Property: for any interleaving of allocate/write/deallocate, the set of
// live pages in a MemDisk matches a model map, and content round-trips.
func TestQuickMemDiskModel(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewMemDisk()
		model := make(map[page.PageID]byte)
		var ids []page.PageID
		for i, op := range ops {
			switch {
			case op%4 < 2 || len(ids) == 0: // allocate + write marker
				id, err := m.Allocate()
				if err != nil {
					return false
				}
				b := make([]byte, page.Size)
				b[0] = byte(i)
				if err := m.WritePage(id, b); err != nil {
					return false
				}
				model[id] = byte(i)
				ids = append(ids, id)
			case op%4 == 2: // overwrite
				id := ids[int(op)%len(ids)]
				b := make([]byte, page.Size)
				b[0] = op
				if err := m.WritePage(id, b); err != nil {
					return false
				}
				model[id] = op
			default: // deallocate
				j := int(op) % len(ids)
				id := ids[j]
				if err := m.Deallocate(id); err != nil {
					return false
				}
				delete(model, id)
				ids = append(ids[:j], ids[j+1:]...)
			}
		}
		if m.NumAllocated() != len(model) {
			return false
		}
		buf := make([]byte, page.Size)
		for id, marker := range model {
			if err := m.ReadPage(id, buf); err != nil || buf[0] != marker {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMemDiskStats(t *testing.T) {
	m := NewMemDisk()
	id, _ := m.Allocate()
	buf := make([]byte, page.Size)
	m.WritePage(id, buf)
	m.ReadPage(id, buf)
	m.ReadPage(id, buf)
	r, w := m.Stats()
	if r != 2 || w != 1 {
		t.Errorf("stats = %d reads %d writes, want 2,1", r, w)
	}
}

func TestEnsureAllocatedDeallocated(t *testing.T) {
	for name, m := range managers(t) {
		t.Run(name, func(t *testing.T) {
			// Adopt a never-allocated id.
			if err := m.EnsureAllocated(7); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, page.Size)
			if err := m.ReadPage(7, buf); err != nil {
				t.Fatalf("read adopted: %v", err)
			}
			// Idempotent; does not clobber content.
			buf[0] = 0xEE
			if err := m.WritePage(7, buf); err != nil {
				t.Fatal(err)
			}
			if err := m.EnsureAllocated(7); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, page.Size)
			m.ReadPage(7, got)
			if got[0] != 0xEE {
				t.Error("EnsureAllocated clobbered content")
			}
			// Force free, idempotently.
			if err := m.EnsureDeallocated(7); err != nil {
				t.Fatal(err)
			}
			if err := m.EnsureDeallocated(7); err != nil {
				t.Fatal(err)
			}
			if err := m.ReadPage(7, got); !errors.Is(err, ErrNoSuchPage) {
				t.Errorf("read freed: %v", err)
			}
			// Freed id is reusable and EnsureAllocated removes it from
			// the free list without double-allocation.
			if err := m.EnsureAllocated(7); err != nil {
				t.Fatal(err)
			}
			id, err := m.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id == 7 {
				t.Error("Allocate handed out an ensured-allocated id")
			}
		})
	}
}

func TestCrashDiskEnsureOps(t *testing.T) {
	m := NewMemDisk()
	c := NewCrashDisk(m)
	if err := c.EnsureAllocated(3); err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureDeallocated(3); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	if err := c.EnsureAllocated(4); !errors.Is(err, ErrCrashed) {
		t.Errorf("EnsureAllocated after crash: %v", err)
	}
	if err := c.EnsureDeallocated(4); !errors.Is(err, ErrCrashed) {
		t.Errorf("EnsureDeallocated after crash: %v", err)
	}
}

func TestFileDiskStatsAndEnsureBeyondEOF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	id, _ := d.Allocate()
	buf := make([]byte, page.Size)
	d.WritePage(id, buf)
	d.ReadPage(id, buf)
	if r, w := d.Stats(); r != 1 || w != 1 {
		t.Errorf("stats = %d,%d", r, w)
	}
	// Adopt an id beyond EOF: the file must be extended with zeros.
	if err := d.EnsureAllocated(50); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(50, buf); err != nil {
		t.Fatalf("read far page: %v", err)
	}
	// Re-adopt an id already covered by the file: content preserved.
	content := make([]byte, page.Size)
	copy(content, "precious")
	d.WritePage(50, content)
	d.EnsureDeallocated(50)
	if err := d.EnsureAllocated(50); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, page.Size)
	d.ReadPage(50, got)
	if string(got[:8]) != "precious" {
		t.Error("EnsureAllocated zeroed surviving content")
	}
}
