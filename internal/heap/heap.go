// Package heap implements the heap file holding the data records that the
// index's RIDs point at. The paper treats data records as "stored elsewhere
// in the database"; this package is that elsewhere, so that the repository
// is a complete, recoverable system: heap updates are write-ahead logged,
// undone on rollback, and redone at restart alongside the index.
//
// Records never move: a RID (page, slot) is stable for the record's
// lifetime because deletion kills the slot in place rather than compacting
// the directory. That stability is what lets the tree use RIDs as lock
// names and as leaf-entry payloads.
package heap

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/latch"
	"repro/internal/page"
	"repro/internal/txn"
	"repro/internal/wal"
)

// ErrNoRecord is returned when reading a RID whose slot is dead or absent.
var ErrNoRecord = errors.New("heap: no record at RID")

// File is a heap file: an unordered collection of variable-length records
// on pages drawn from the shared buffer pool.
type File struct {
	pool *buffer.Pool

	mu    sync.Mutex
	pages []page.PageID // pages owned by this heap, for insert placement

	// pending holds slots killed by transactions that have not finished
	// yet. Such a slot must not be resurrected for a new record: until the
	// deleter's commit is durable its rollback — at runtime or as a restart
	// loser — restores the old record into the slot, and a reuse in the
	// meantime would leave two leaf entries claiming one RID. Entries are
	// cleared by TxnFinished; a missed notification only delays reuse.
	pending map[page.RID]page.TxnID
}

// New creates an empty heap file over pool.
func New(pool *buffer.Pool) *File {
	return &File{pool: pool, pending: make(map[page.RID]page.TxnID)}
}

// TxnFinished releases the slots whose deletes were pinned by tx; its commit
// or abort is complete, so they are free for reuse.
func (h *File) TxnFinished(id page.TxnID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for rid, owner := range h.pending {
		if owner == id {
			delete(h.pending, rid)
		}
	}
}

// RegisterUndo installs the heap's runtime rollback handlers on the
// transaction manager.
func (h *File) RegisterUndo(tm *txn.Manager) {
	tm.RegisterUndo(wal.RecHeapInsert, h.undoInsert)
	tm.RegisterUndo(wal.RecHeapDelete, h.undoDelete)
}

// NotePage adds a page to the insert-placement list (used after restart to
// re-adopt surviving heap pages discovered in the log).
func (h *File) NotePage(id page.PageID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.pages {
		if p == id {
			return
		}
	}
	h.pages = append(h.pages, id)
}

// Pages returns the pages currently used for insert placement.
func (h *File) Pages() []page.PageID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]page.PageID(nil), h.pages...)
}

// Insert stores rec and returns its RID. The insert is logged in tx's
// backchain so that rollback removes it.
func (h *File) Insert(tx *txn.Txn, rec []byte) (page.RID, error) {
	return h.InsertCtx(nil, tx, rec)
}

// InsertCtx is Insert honoring ctx while waiting for the record's page to
// become available in the buffer pool. A nil ctx never cancels. The page
// allocation NTA, once begun, runs to completion regardless of ctx.
func (h *File) InsertCtx(ctx context.Context, tx *txn.Txn, rec []byte) (page.RID, error) {
	if len(rec) == 0 {
		return page.RID{}, errors.New("heap: empty record")
	}
	// Try existing pages, newest first (they are most likely to have
	// room); allocate a fresh page when none fits.
	h.mu.Lock()
	candidates := append([]page.PageID(nil), h.pages...)
	h.mu.Unlock()
	for i := len(candidates) - 1; i >= 0; i-- {
		rid, err := h.tryInsert(ctx, tx, candidates[i], rec)
		if err == nil {
			return rid, nil
		}
		if !errors.Is(err, page.ErrPageFull) {
			return page.RID{}, err
		}
	}
	f, err := h.pool.NewPage(0)
	if err != nil {
		return page.RID{}, err
	}
	f.Page.SetFlags(page.FlagHeap)
	id := f.ID()
	// Page allocation is a structure modification: make it permanent
	// immediately via a nested top action so a later rollback of tx does
	// not try to undo updates by other transactions sharing the page.
	if err := tx.BeginNTA(); err != nil {
		h.pool.Discard(f)
		return page.RID{}, err
	}
	lsn := tx.Log(&wal.Record{Type: wal.RecGetPage, Pg: id, Level: 0})
	f.Page.SetLSN(lsn)
	tx.EndNTA()
	h.pool.Unpin(f, true, lsn)
	h.mu.Lock()
	h.pages = append(h.pages, id)
	h.mu.Unlock()
	return h.tryInsert(ctx, tx, id, rec)
}

// tryInsert attempts the insert on one page.
func (h *File) tryInsert(ctx context.Context, tx *txn.Txn, id page.PageID, rec []byte) (page.RID, error) {
	f, err := h.pool.FetchCtx(ctx, id)
	if err != nil {
		return page.RID{}, err
	}
	f.Latch.Acquire(latch.X)
	// A slot with a pending delete may be reused only by the deleter
	// itself: backward undo then kills the reuse before restoring the old
	// record, so the order stays reversible.
	reusable := func(slot int) bool {
		h.mu.Lock()
		owner, pend := h.pending[page.RID{Page: id, Slot: uint16(slot)}]
		h.mu.Unlock()
		return !pend || owner == tx.ID()
	}
	var slot int
	if dead := f.Page.FindDeadSlot(); dead >= 0 && reusable(dead) && f.Page.FreeSpaceAfterCompaction()+4 >= len(rec) {
		if err := f.Page.ResurrectSlot(dead, rec); err != nil {
			f.Latch.Release(latch.X)
			h.pool.Unpin(f, false, 0)
			return page.RID{}, err
		}
		slot = dead
	} else {
		slot, err = f.Page.InsertBytes(rec)
		if err != nil {
			f.Latch.Release(latch.X)
			h.pool.Unpin(f, false, 0)
			return page.RID{}, err
		}
	}
	rid := page.RID{Page: id, Slot: uint16(slot)}
	lsn := tx.Log(&wal.Record{Type: wal.RecHeapInsert, Pg: id, RID: rid, Body: rec})
	f.Page.SetLSN(lsn)
	f.Latch.Release(latch.X)
	h.pool.Unpin(f, true, lsn)
	return rid, nil
}

// Read returns a copy of the record at rid.
func (h *File) Read(rid page.RID) ([]byte, error) {
	return h.ReadCtx(nil, rid)
}

// ReadCtx is Read honoring ctx while waiting for the page frame.
func (h *File) ReadCtx(ctx context.Context, rid page.RID) ([]byte, error) {
	f, err := h.pool.FetchCtx(ctx, rid.Page)
	if err != nil {
		return nil, err
	}
	f.Latch.Acquire(latch.S)
	b, err := f.Page.SlotBytes(int(rid.Slot))
	var out []byte
	if err == nil {
		out = append([]byte(nil), b...)
	}
	f.Latch.Release(latch.S)
	h.pool.Unpin(f, false, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoRecord, rid)
	}
	return out, nil
}

// Delete removes the record at rid, logged for rollback.
func (h *File) Delete(tx *txn.Txn, rid page.RID) error {
	return h.DeleteCtx(nil, tx, rid)
}

// DeleteCtx is Delete honoring ctx while waiting for the page frame. Once
// the frame is latched the kill-and-log step is not interruptible (it is a
// single logged page update; rollback undoes it).
func (h *File) DeleteCtx(ctx context.Context, tx *txn.Txn, rid page.RID) error {
	f, err := h.pool.FetchCtx(ctx, rid.Page)
	if err != nil {
		return err
	}
	f.Latch.Acquire(latch.X)
	b, err := f.Page.SlotBytes(int(rid.Slot))
	if err != nil {
		f.Latch.Release(latch.X)
		h.pool.Unpin(f, false, 0)
		return fmt.Errorf("%w: %v", ErrNoRecord, rid)
	}
	old := append([]byte(nil), b...)
	if err := f.Page.KillSlot(int(rid.Slot)); err != nil {
		f.Latch.Release(latch.X)
		h.pool.Unpin(f, false, 0)
		return err
	}
	lsn := tx.Log(&wal.Record{Type: wal.RecHeapDelete, Pg: rid.Page, RID: rid, Body: old})
	f.Page.SetLSN(lsn)
	f.Latch.Release(latch.X)
	h.pool.Unpin(f, true, lsn)
	h.mu.Lock()
	h.pending[rid] = tx.ID()
	h.mu.Unlock()
	return nil
}

// undoInsert rolls back a Heap-Insert by killing the slot again and writes
// the CLR carrying the compensation's redo information.
func (h *File) undoInsert(r *wal.Record, tx *txn.Txn) error {
	f, err := h.pool.Fetch(r.RID.Page)
	if err != nil {
		return err
	}
	f.Latch.Acquire(latch.X)
	if !f.Page.SlotDead(int(r.RID.Slot)) {
		if err := f.Page.KillSlot(int(r.RID.Slot)); err != nil {
			f.Latch.Release(latch.X)
			h.pool.Unpin(f, false, 0)
			return err
		}
	}
	lsn := tx.LogCLR(&wal.Record{Type: wal.RecHeapInsert, Pg: r.RID.Page, RID: r.RID}, r.PrevLSN)
	f.Page.SetLSN(lsn)
	f.Latch.Release(latch.X)
	h.pool.Unpin(f, true, lsn)
	return nil
}

// undoDelete rolls back a Heap-Delete by restoring the old record bytes.
func (h *File) undoDelete(r *wal.Record, tx *txn.Txn) error {
	f, err := h.pool.Fetch(r.RID.Page)
	if err != nil {
		return err
	}
	f.Latch.Acquire(latch.X)
	if f.Page.SlotDead(int(r.RID.Slot)) {
		if err := f.Page.ResurrectSlot(int(r.RID.Slot), r.Body); err != nil {
			f.Latch.Release(latch.X)
			h.pool.Unpin(f, false, 0)
			return err
		}
	}
	lsn := tx.LogCLR(&wal.Record{Type: wal.RecHeapDelete, Pg: r.RID.Page, RID: r.RID, Body: r.Body}, r.PrevLSN)
	f.Page.SetLSN(lsn)
	f.Latch.Release(latch.X)
	h.pool.Unpin(f, true, lsn)
	return nil
}

// Redo applies a heap log record (or heap CLR) to the page during restart
// redo. The caller has already checked pageLSN < r.LSN; Redo sets the
// pageLSN.
func Redo(r *wal.Record, p *page.Page) error {
	switch {
	case r.Type == wal.RecHeapInsert:
		if err := p.EnsureSlot(int(r.RID.Slot), r.Body); err != nil {
			return err
		}
	case r.Type == wal.RecHeapDelete:
		if !p.SlotDead(int(r.RID.Slot)) && int(r.RID.Slot) < p.NumSlots() {
			if err := p.KillSlot(int(r.RID.Slot)); err != nil {
				return err
			}
		}
	case r.Type == wal.RecHeapInsert|wal.ClrFlag:
		// Compensation of an insert: the slot dies.
		if !p.SlotDead(int(r.RID.Slot)) && int(r.RID.Slot) < p.NumSlots() {
			if err := p.KillSlot(int(r.RID.Slot)); err != nil {
				return err
			}
		}
	case r.Type == wal.RecHeapDelete|wal.ClrFlag:
		// Compensation of a delete: the record returns.
		if err := p.EnsureSlot(int(r.RID.Slot), r.Body); err != nil {
			return err
		}
	default:
		return fmt.Errorf("heap: Redo of unexpected record %v", r.Type)
	}
	p.SetLSN(r.LSN)
	return nil
}
