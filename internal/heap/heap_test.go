package heap

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

type env struct {
	disk *storage.MemDisk
	pool *buffer.Pool
	log  *wal.Log
	tm   *txn.Manager
	heap *File
}

func newEnv(t *testing.T) *env {
	t.Helper()
	d := storage.NewMemDisk()
	l := wal.NewMemLog()
	p := buffer.New(d, 64, l)
	tm := txn.NewManager(l, lock.NewManager(), predicate.NewManager())
	h := New(p)
	h.RegisterUndo(tm)
	return &env{disk: d, pool: p, log: l, tm: tm, heap: h}
}

func TestInsertReadRoundTrip(t *testing.T) {
	e := newEnv(t)
	tx, _ := e.tm.Begin()
	rid, err := e.heap.Insert(tx, []byte("record one"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.heap.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "record one" {
		t.Errorf("read = %q", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Still readable after commit.
	if got, err := e.heap.Read(rid); err != nil || string(got) != "record one" {
		t.Errorf("after commit: %q %v", got, err)
	}
}

func TestInsertEmptyRejected(t *testing.T) {
	e := newEnv(t)
	tx, _ := e.tm.Begin()
	defer tx.Commit()
	if _, err := e.heap.Insert(tx, nil); err == nil {
		t.Error("empty record accepted")
	}
}

func TestDeleteThenReadFails(t *testing.T) {
	e := newEnv(t)
	tx, _ := e.tm.Begin()
	rid, _ := e.heap.Insert(tx, []byte("doomed"))
	if err := e.heap.Delete(tx, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := e.heap.Read(rid); !errors.Is(err, ErrNoRecord) {
		t.Errorf("read deleted: %v", err)
	}
	if err := e.heap.Delete(tx, rid); !errors.Is(err, ErrNoRecord) {
		t.Errorf("double delete: %v", err)
	}
	tx.Commit()
}

func TestAbortRemovesInsert(t *testing.T) {
	e := newEnv(t)
	tx, _ := e.tm.Begin()
	rid, _ := e.heap.Insert(tx, []byte("phantom"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.heap.Read(rid); !errors.Is(err, ErrNoRecord) {
		t.Errorf("aborted insert visible: %v", err)
	}
}

func TestAbortRestoresDelete(t *testing.T) {
	e := newEnv(t)
	tx1, _ := e.tm.Begin()
	rid, _ := e.heap.Insert(tx1, []byte("survivor"))
	tx1.Commit()

	tx2, _ := e.tm.Begin()
	if err := e.heap.Delete(tx2, rid); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	got, err := e.heap.Read(rid)
	if err != nil || string(got) != "survivor" {
		t.Errorf("after rollback: %q %v", got, err)
	}
}

func TestRIDStableAcrossDeleteAndReuse(t *testing.T) {
	e := newEnv(t)
	tx, _ := e.tm.Begin()
	a, _ := e.heap.Insert(tx, []byte("aaaa"))
	b, _ := e.heap.Insert(tx, []byte("bbbb"))
	if err := e.heap.Delete(tx, a); err != nil {
		t.Fatal(err)
	}
	// New insert reuses the dead slot; b is untouched.
	c, _ := e.heap.Insert(tx, []byte("cccc"))
	if c != a {
		t.Errorf("dead slot not reused: c=%v a=%v", c, a)
	}
	got, err := e.heap.Read(b)
	if err != nil || string(got) != "bbbb" {
		t.Errorf("b = %q %v", got, err)
	}
	tx.Commit()
}

func TestInsertSpillsToNewPages(t *testing.T) {
	e := newEnv(t)
	tx, _ := e.tm.Begin()
	rec := make([]byte, 1024)
	rids := make([]page.RID, 0, 64)
	for i := 0; i < 64; i++ {
		rec[0] = byte(i)
		rid, err := e.heap.Insert(tx, rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if len(e.heap.Pages()) < 2 {
		t.Errorf("expected multiple heap pages, got %d", len(e.heap.Pages()))
	}
	for i, rid := range rids {
		got, err := e.heap.Read(rid)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("record %d: %v %v", i, got[0], err)
		}
	}
	tx.Commit()
}

func TestSavepointRollbackHeap(t *testing.T) {
	e := newEnv(t)
	tx, _ := e.tm.Begin()
	keep, _ := e.heap.Insert(tx, []byte("keep"))
	tx.Savepoint("sp")
	drop, _ := e.heap.Insert(tx, []byte("drop"))
	if err := tx.RollbackTo("sp"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.heap.Read(drop); !errors.Is(err, ErrNoRecord) {
		t.Errorf("post-savepoint insert visible: %v", err)
	}
	if got, err := e.heap.Read(keep); err != nil || string(got) != "keep" {
		t.Errorf("pre-savepoint insert lost: %q %v", got, err)
	}
	tx.Commit()
}

func TestRedoReplaysInsertAndDelete(t *testing.T) {
	// Exercise the page-oriented redo functions directly on a stale page
	// image, as restart would.
	e := newEnv(t)
	tx, _ := e.tm.Begin()
	rid, _ := e.heap.Insert(tx, []byte("redo me"))
	tx.Commit()

	stale := page.New(rid.Page, 0)
	stale.SetFlags(page.FlagHeap)
	var insRec *wal.Record
	e.log.Scan(1, func(r *wal.Record) bool {
		if r.Type == wal.RecHeapInsert {
			insRec = r
		}
		return true
	})
	if insRec == nil {
		t.Fatal("no Heap-Insert record logged")
	}
	if err := Redo(insRec, stale); err != nil {
		t.Fatal(err)
	}
	if stale.LSN() != insRec.LSN {
		t.Errorf("pageLSN = %d, want %d", stale.LSN(), insRec.LSN)
	}
	b, err := stale.SlotBytes(int(rid.Slot))
	if err != nil || !bytes.Equal(b, []byte("redo me")) {
		t.Errorf("redo content %q %v", b, err)
	}

	// Redo of a delete kills the slot.
	del := &wal.Record{Type: wal.RecHeapDelete, RID: rid, Body: []byte("redo me")}
	del.LSN = insRec.LSN + 1
	if err := Redo(del, stale); err != nil {
		t.Fatal(err)
	}
	if !stale.SlotDead(int(rid.Slot)) {
		t.Error("slot alive after delete redo")
	}
	// CLR of the delete brings it back.
	clr := &wal.Record{Type: wal.RecHeapDelete | wal.ClrFlag, RID: rid, Body: []byte("redo me")}
	clr.LSN = del.LSN + 1
	if err := Redo(clr, stale); err != nil {
		t.Fatal(err)
	}
	if b, err := stale.SlotBytes(int(rid.Slot)); err != nil || string(b) != "redo me" {
		t.Errorf("after delete-CLR redo: %q %v", b, err)
	}
	// CLR of an insert kills it again.
	iclr := &wal.Record{Type: wal.RecHeapInsert | wal.ClrFlag, RID: rid}
	iclr.LSN = clr.LSN + 1
	if err := Redo(iclr, stale); err != nil {
		t.Fatal(err)
	}
	if !stale.SlotDead(int(rid.Slot)) {
		t.Error("slot alive after insert-CLR redo")
	}
	// Unknown type rejected.
	if err := Redo(&wal.Record{Type: wal.RecSplit}, stale); err == nil {
		t.Error("Redo accepted a non-heap record")
	}
}

func TestConcurrentInsertsDistinctRIDs(t *testing.T) {
	e := newEnv(t)
	const workers, per = 8, 50
	var mu sync.Mutex
	seen := make(map[page.RID]string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx, err := e.tm.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				rec := []byte(fmt.Sprintf("w%d-i%d", w, i))
				rid, err := e.heap.Insert(tx, rec)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, dup := seen[rid]; dup {
					t.Errorf("RID %v given to both %q and %q", rid, prev, rec)
				}
				seen[rid] = string(rec)
				mu.Unlock()
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	for rid, want := range seen {
		got, err := e.heap.Read(rid)
		if err != nil || string(got) != want {
			t.Errorf("rid %v = %q %v, want %q", rid, got, err, want)
		}
	}
}

func TestNotePageIdempotent(t *testing.T) {
	e := newEnv(t)
	e.heap.NotePage(5)
	e.heap.NotePage(5)
	if got := e.heap.Pages(); len(got) != 1 || got[0] != 5 {
		t.Errorf("pages = %v", got)
	}
}
