package shards

import (
	"runtime"
	"testing"
)

func TestCountIsPowerOfTwoInRange(t *testing.T) {
	n := Count(0)
	if n < minShards || n > maxShards {
		t.Errorf("Count(0) = %d, outside [%d, %d]", n, minShards, maxShards)
	}
	if n&(n-1) != 0 {
		t.Errorf("Count(0) = %d, not a power of two", n)
	}
	if want := ceilPow2(2 * runtime.GOMAXPROCS(0)); n != want && want >= minShards && want <= maxShards {
		t.Errorf("Count(0) = %d, want %d for GOMAXPROCS=%d", n, want, runtime.GOMAXPROCS(0))
	}
}

func TestCountRespectsLimit(t *testing.T) {
	for _, limit := range []int{1, 2, 3, 8, 100} {
		n := Count(limit)
		if n > limit {
			t.Errorf("Count(%d) = %d exceeds limit", limit, n)
		}
		if n&(n-1) != 0 {
			t.Errorf("Count(%d) = %d, not a power of two", limit, n)
		}
		if n < 1 {
			t.Errorf("Count(%d) = %d", limit, n)
		}
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 16: 16, 17: 32}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
