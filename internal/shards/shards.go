// Package shards picks partition counts for the engine's hash-sharded
// managers (buffer-pool page table, lock stripes, predicate attachment
// shards, WAL staging buffers). The count is derived from GOMAXPROCS at
// construction time rather than hard-coded, so a 64-way box gets enough
// stripes to keep unrelated operations from colliding while a small
// container does not pay for empty partitions.
package shards

import "runtime"

// Floor and ceiling for Count. The floor keeps cross-shard code paths
// (frame stealing, two-stripe lock ops, split replication) exercised even
// on single-CPU machines; the ceiling bounds per-manager footprint.
const (
	minShards = 4
	maxShards = 64
)

// Count returns the partition count for a sharded manager: the smallest
// power of two at or above twice GOMAXPROCS (2x over-provisioning keeps
// collision probability low when goroutines outnumber CPUs), clamped to
// [4, 64] and additionally to limit when limit > 0.
func Count(limit int) int {
	n := ceilPow2(2 * runtime.GOMAXPROCS(0))
	if n < minShards {
		n = minShards
	}
	if n > maxShards {
		n = maxShards
	}
	if limit > 0 && n > limit {
		n = ceilPow2(limit)
		if n > limit {
			n >>= 1
		}
		if n < 1 {
			n = 1
		}
	}
	return n
}

// Workers returns the fan-out for CPU-bound restart phases (parallel redo
// queue drain, concurrent loser undo): GOMAXPROCS clamped to [1, 64]. Unlike
// Count it is not rounded up to a power of two and has no floor above one —
// workers execute rather than hash-partition, so extra goroutines beyond the
// CPU count buy nothing, and a single-CPU box should stay serial.
func Workers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	return n
}

// ceilPow2 returns the smallest power of two >= v (v <= 1 gives 1).
func ceilPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}
