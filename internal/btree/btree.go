// Package btree specializes the generalized search tree to a B-tree, the
// canonical example of [HNP95]: keys are signed 64-bit integers, bounding
// predicates are closed intervals, and queries are intervals too (a point
// lookup is the degenerate interval [k,k]).
//
// Encodings are canonical so that the tree's byte-equality comparison of
// predicates is sound:
//
//	key:      8 bytes — the value, order-preserving (sign bit flipped)
//	interval: 16 bytes — lo then hi, same order-preserving encoding
//
// The two are distinguished by length, which lets a single Consistent
// implementation serve leaf keys and internal BPs uniformly.
package btree

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// EncodeKey encodes an int64 key so that bytes.Compare on encodings matches
// numeric order.
func EncodeKey(k int64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(k)^(1<<63))
	return b
}

// DecodeKey reverses EncodeKey.
func DecodeKey(b []byte) int64 {
	return int64(binary.BigEndian.Uint64(b) ^ (1 << 63))
}

// EncodeRange encodes the closed interval [lo, hi].
func EncodeRange(lo, hi int64) []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint64(b, uint64(lo)^(1<<63))
	binary.BigEndian.PutUint64(b[8:], uint64(hi)^(1<<63))
	return b
}

// DecodeRange reverses EncodeRange.
func DecodeRange(b []byte) (lo, hi int64) {
	return int64(binary.BigEndian.Uint64(b) ^ (1 << 63)),
		int64(binary.BigEndian.Uint64(b[8:]) ^ (1 << 63))
}

// asRange interprets either encoding as an interval.
func asRange(b []byte) (lo, hi int64) {
	switch len(b) {
	case 8:
		k := DecodeKey(b)
		return k, k
	case 16:
		return DecodeRange(b)
	default:
		panic(fmt.Sprintf("btree: bad predicate length %d", len(b)))
	}
}

// Ops implements gist.Ops for integer B-trees.
type Ops struct{}

// Consistent reports interval intersection.
func (Ops) Consistent(pred, query []byte) bool {
	plo, phi := asRange(pred)
	qlo, qhi := asRange(query)
	return plo <= qhi && qlo <= phi
}

// Union returns the smallest interval covering both inputs, in canonical
// 16-byte form.
func (Ops) Union(a, b []byte) []byte {
	if a == nil {
		lo, hi := asRange(b)
		return EncodeRange(lo, hi)
	}
	if b == nil {
		lo, hi := asRange(a)
		return EncodeRange(lo, hi)
	}
	alo, ahi := asRange(a)
	blo, bhi := asRange(b)
	if blo < alo {
		alo = blo
	}
	if bhi > ahi {
		ahi = bhi
	}
	return EncodeRange(alo, ahi)
}

// Penalty is the interval growth needed to accommodate the key: zero when
// contained, else the distance to the nearer boundary. Saturating
// arithmetic keeps extreme values ordered without overflow.
func (Ops) Penalty(bp, key []byte) float64 {
	lo, hi := asRange(bp)
	k, _ := asRange(key)
	switch {
	case k < lo:
		return float64(lo) - float64(k)
	case k > hi:
		return float64(k) - float64(hi)
	default:
		return 0
	}
}

// PickSplit sorts the predicates by lower bound and keeps the lower half on
// the original node — the classic ordered B-tree split, expressed in GiST
// terms.
func (Ops) PickSplit(preds [][]byte) []int {
	idx := make([]int, len(preds))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		alo, ahi := asRange(preds[idx[a]])
		blo, bhi := asRange(preds[idx[b]])
		if alo != blo {
			return alo < blo
		}
		return ahi < bhi
	})
	return idx[:(len(idx)+1)/2]
}

// KeyQuery returns the point query [k, k] for an encoded key.
func (Ops) KeyQuery(key []byte) []byte {
	k := DecodeKey(key)
	return EncodeRange(k, k)
}
