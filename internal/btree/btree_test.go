package btree

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyRoundTripAndOrder(t *testing.T) {
	values := []int64{math.MinInt64, -1e12, -1, 0, 1, 42, 1e12, math.MaxInt64}
	var prev []byte
	for _, v := range values {
		enc := EncodeKey(v)
		if DecodeKey(enc) != v {
			t.Errorf("round trip %d", v)
		}
		if prev != nil && bytes.Compare(prev, enc) >= 0 {
			t.Errorf("encoding order broken at %d", v)
		}
		prev = enc
	}
}

func TestQuickKeyOrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := EncodeKey(a), EncodeKey(b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeRoundTrip(t *testing.T) {
	lo, hi := DecodeRange(EncodeRange(-5, 99))
	if lo != -5 || hi != 99 {
		t.Errorf("got [%d,%d]", lo, hi)
	}
}

func TestConsistent(t *testing.T) {
	var ops Ops
	r := EncodeRange(10, 20)
	cases := []struct {
		query []byte
		want  bool
	}{
		{EncodeRange(0, 9), false},
		{EncodeRange(0, 10), true},
		{EncodeRange(15, 16), true},
		{EncodeRange(20, 30), true},
		{EncodeRange(21, 30), false},
		{EncodeKey(10), true},
		{EncodeKey(9), false},
		{EncodeKey(21), false},
	}
	for _, c := range cases {
		if got := ops.Consistent(r, c.query); got != c.want {
			t.Errorf("Consistent([10,20], %v) = %v, want %v", c.query, got, c.want)
		}
	}
	// Key as predicate (leaf entry) against range query.
	if !ops.Consistent(EncodeKey(5), EncodeRange(0, 10)) {
		t.Error("key 5 should match [0,10]")
	}
	if ops.Consistent(EncodeKey(11), EncodeRange(0, 10)) {
		t.Error("key 11 should not match [0,10]")
	}
}

func TestConsistentPanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad predicate length")
		}
	}()
	Ops{}.Consistent([]byte{1, 2, 3}, EncodeKey(1))
}

func TestUnion(t *testing.T) {
	var ops Ops
	u := ops.Union(EncodeKey(5), EncodeKey(10))
	lo, hi := DecodeRange(u)
	if lo != 5 || hi != 10 {
		t.Errorf("union = [%d,%d]", lo, hi)
	}
	u = ops.Union(nil, EncodeKey(7))
	lo, hi = DecodeRange(u)
	if lo != 7 || hi != 7 {
		t.Errorf("union(nil, 7) = [%d,%d]", lo, hi)
	}
	u = ops.Union(EncodeRange(0, 3), nil)
	lo, hi = DecodeRange(u)
	if lo != 0 || hi != 3 {
		t.Errorf("union(range, nil) = [%d,%d]", lo, hi)
	}
	// Canonical: unioning with a contained value changes nothing.
	a := ops.Union(EncodeRange(0, 10), EncodeKey(5))
	if !bytes.Equal(a, EncodeRange(0, 10)) {
		t.Error("union not canonical for contained key")
	}
}

func TestQuickUnionCovers(t *testing.T) {
	var ops Ops
	f := func(a, b int64) bool {
		u := ops.Union(EncodeKey(a), EncodeKey(b))
		return ops.Consistent(u, EncodeKey(a)) && ops.Consistent(u, EncodeKey(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPenalty(t *testing.T) {
	var ops Ops
	bp := EncodeRange(10, 20)
	if p := ops.Penalty(bp, EncodeKey(15)); p != 0 {
		t.Errorf("contained penalty = %v", p)
	}
	if p := ops.Penalty(bp, EncodeKey(5)); p != 5 {
		t.Errorf("below penalty = %v", p)
	}
	if p := ops.Penalty(bp, EncodeKey(26)); p != 6 {
		t.Errorf("above penalty = %v", p)
	}
}

func TestPickSplitOrdersAndBalances(t *testing.T) {
	var ops Ops
	keys := []int64{50, 10, 40, 20, 30, 60, 5}
	preds := make([][]byte, len(keys))
	for i, k := range keys {
		preds[i] = EncodeKey(k)
	}
	stay := ops.PickSplit(preds)
	if len(stay) != 4 {
		t.Fatalf("stay = %d entries, want 4", len(stay))
	}
	var stayKeys, movedKeys []int64
	staySet := make(map[int]bool)
	for _, i := range stay {
		staySet[i] = true
		stayKeys = append(stayKeys, keys[i])
	}
	for i, k := range keys {
		if !staySet[i] {
			movedKeys = append(movedKeys, k)
		}
	}
	sort.Slice(stayKeys, func(a, b int) bool { return stayKeys[a] < stayKeys[b] })
	sort.Slice(movedKeys, func(a, b int) bool { return movedKeys[a] < movedKeys[b] })
	if stayKeys[len(stayKeys)-1] >= movedKeys[0] {
		t.Errorf("split not ordered: stay max %d >= moved min %d", stayKeys[len(stayKeys)-1], movedKeys[0])
	}
}

func TestKeyQuery(t *testing.T) {
	q := Ops{}.KeyQuery(EncodeKey(33))
	lo, hi := DecodeRange(q)
	if lo != 33 || hi != 33 {
		t.Errorf("KeyQuery = [%d,%d]", lo, hi)
	}
}
