package page

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// TxnID identifies a transaction. It is defined here (rather than in the
// transaction manager) because logically deleted leaf entries carry the
// deleting transaction's id on the page, so the page format depends on it.
type TxnID uint64

// InvalidTxn is the zero TxnID, never assigned to a real transaction.
const InvalidTxn TxnID = 0

// Entry flag bits stored in the first byte of an encoded entry.
const (
	// entryDeleted marks a leaf entry as logically deleted (§7 of the
	// paper): the entry stays physically present so that repeatable-read
	// scans block on the deleting transaction, and is physically removed
	// only by garbage collection after that transaction commits.
	entryDeleted byte = 1 << iota
)

// Entry is the decoded form of an index entry.
//
// On an internal node an entry is a (bounding predicate, child pointer)
// pair. On a leaf it is a (key, RID) pair, optionally marked deleted with
// the deleting transaction recorded. Pred holds the predicate or key bytes;
// their interpretation belongs entirely to the access-method extension.
type Entry struct {
	// Pred is the bounding predicate (internal node) or key (leaf).
	Pred []byte
	// Child is the child page pointer; valid only on internal nodes.
	Child PageID
	// RID is the data record identifier; valid only on leaves.
	RID RID
	// Deleted marks a logically deleted leaf entry.
	Deleted bool
	// Deleter is the transaction that performed the logical delete;
	// garbage collection may remove the entry once Deleter has committed.
	Deleter TxnID
}

// Encoded entry layout:
//
//	internal: [1 flags][2 predLen][pred][4 child]
//	leaf:     [1 flags][2 predLen][pred][4 ridPage][2 ridSlot][8 deleter]
//
// Leaves always reserve the deleter field so that marking an entry deleted
// is an in-place update (no page reorganization inside the critical
// section that logs Mark-Leaf-Entry).
const (
	internalOverhead = 1 + 2 + 4
	leafOverhead     = 1 + 2 + 4 + 2 + 8
)

// ErrCorruptEntry is returned when an entry body cannot be decoded.
var ErrCorruptEntry = errors.New("page: corrupt entry encoding")

// EncodedLen returns the number of bytes the entry occupies on a page of a
// node at the given level (0 = leaf).
func (e *Entry) EncodedLen(leaf bool) int {
	if leaf {
		return leafOverhead + len(e.Pred)
	}
	return internalOverhead + len(e.Pred)
}

// Encode serializes the entry for a leaf or internal node.
func (e *Entry) Encode(leaf bool) []byte {
	out := make([]byte, e.EncodedLen(leaf))
	var flags byte
	if e.Deleted {
		flags |= entryDeleted
	}
	out[0] = flags
	binary.BigEndian.PutUint16(out[1:], uint16(len(e.Pred)))
	copy(out[3:], e.Pred)
	p := 3 + len(e.Pred)
	if leaf {
		binary.BigEndian.PutUint32(out[p:], uint32(e.RID.Page))
		binary.BigEndian.PutUint16(out[p+4:], e.RID.Slot)
		binary.BigEndian.PutUint64(out[p+6:], uint64(e.Deleter))
	} else {
		binary.BigEndian.PutUint32(out[p:], uint32(e.Child))
	}
	return out
}

// DecodeEntry parses an encoded entry body. The Pred slice aliases b.
func DecodeEntry(b []byte, leaf bool) (Entry, error) {
	var e Entry
	if len(b) < 3 {
		return e, ErrCorruptEntry
	}
	flags := b[0]
	plen := int(binary.BigEndian.Uint16(b[1:]))
	want := internalOverhead + plen
	if leaf {
		want = leafOverhead + plen
	}
	if len(b) != want {
		return e, fmt.Errorf("%w: body %d bytes, want %d", ErrCorruptEntry, len(b), want)
	}
	e.Pred = b[3 : 3+plen]
	p := 3 + plen
	if leaf {
		e.RID.Page = PageID(binary.BigEndian.Uint32(b[p:]))
		e.RID.Slot = binary.BigEndian.Uint16(b[p+4:])
		e.Deleter = TxnID(binary.BigEndian.Uint64(b[p+6:]))
		e.Deleted = flags&entryDeleted != 0
	} else {
		e.Child = PageID(binary.BigEndian.Uint32(b[p:]))
	}
	return e, nil
}

// InsertEntry encodes e appropriately for p's level and inserts it,
// returning the slot index.
func (p *Page) InsertEntry(e Entry) (int, error) {
	return p.InsertBytes(e.Encode(p.IsLeaf()))
}

// Entry decodes the entry at slot i. The Pred field aliases page memory and
// must be copied if retained across page modifications.
func (p *Page) Entry(i int) (Entry, error) {
	b, err := p.SlotBytes(i)
	if err != nil {
		return Entry{}, err
	}
	return DecodeEntry(b, p.IsLeaf())
}

// MustEntry is Entry but panics on error; for use where the slot index was
// just validated.
func (p *Page) MustEntry(i int) Entry {
	e, err := p.Entry(i)
	if err != nil {
		panic(fmt.Sprintf("page %d slot %d: %v", p.ID(), i, err))
	}
	return e
}

// ReplaceEntry overwrites the entry at slot i.
func (p *Page) ReplaceEntry(i int, e Entry) error {
	return p.ReplaceBytes(i, e.Encode(p.IsLeaf()))
}

// MarkDeleted flags the leaf entry at slot i as logically deleted by txn.
// The update is in place (the encoded length does not change).
func (p *Page) MarkDeleted(i int, txn TxnID) error {
	if !p.IsLeaf() {
		return errors.New("page: MarkDeleted on internal node")
	}
	b, err := p.SlotBytes(i)
	if err != nil {
		return err
	}
	b[0] |= entryDeleted
	plen := int(binary.BigEndian.Uint16(b[1:]))
	binary.BigEndian.PutUint64(b[3+plen+6:], uint64(txn))
	return nil
}

// UnmarkDeleted clears the logical-delete flag on the leaf entry at slot i
// (the undo action of Mark-Leaf-Entry in Table 1).
func (p *Page) UnmarkDeleted(i int) error {
	if !p.IsLeaf() {
		return errors.New("page: UnmarkDeleted on internal node")
	}
	b, err := p.SlotBytes(i)
	if err != nil {
		return err
	}
	b[0] &^= entryDeleted
	plen := int(binary.BigEndian.Uint16(b[1:]))
	binary.BigEndian.PutUint64(b[3+plen+6:], 0)
	return nil
}

// Entries decodes every live entry on the page, in slot order.
func (p *Page) Entries() []Entry {
	out := make([]Entry, 0, p.NumSlots())
	leaf := p.IsLeaf()
	for i := 0; i < p.NumSlots(); i++ {
		b, err := p.SlotBytes(i)
		if err != nil {
			continue
		}
		e, err := DecodeEntry(b, leaf)
		if err != nil {
			continue
		}
		out = append(out, e)
	}
	return out
}

// FindChild returns the slot index of the internal entry pointing at child,
// or -1 if the page holds no such entry (which tells an ascending insert
// operation that the parent has split and it must move right; §6).
func (p *Page) FindChild(child PageID) int {
	for i := 0; i < p.NumSlots(); i++ {
		e, err := p.Entry(i)
		if err != nil {
			continue
		}
		if e.Child == child {
			return i
		}
	}
	return -1
}

// FindEntry returns the slot of the leaf entry matching rid, key bytes and
// deletion state, or -1. RID alone is not a unique identifier while
// logically deleted entries await garbage collection: the heap may have
// reused the record slot, so a marked old entry and a live new entry can
// carry the same RID (the live entries still partition the RID space).
func (p *Page) FindEntry(rid RID, pred []byte, deleted bool) int {
	for i := 0; i < p.NumSlots(); i++ {
		e, err := p.Entry(i)
		if err != nil {
			continue
		}
		if e.RID == rid && e.Deleted == deleted && bytes.Equal(e.Pred, pred) {
			return i
		}
	}
	return -1
}

// FindRID returns the slot index of the first leaf entry with the given
// RID, or -1 if absent. Prefer FindEntry where logically deleted entries
// may coexist with a reused RID.
func (p *Page) FindRID(rid RID) int {
	for i := 0; i < p.NumSlots(); i++ {
		e, err := p.Entry(i)
		if err != nil {
			continue
		}
		if e.RID == rid {
			return i
		}
	}
	return -1
}
