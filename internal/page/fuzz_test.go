package page

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzInsertReplaceDelete drives the slotted-page primitives with an
// arbitrary op stream, mirroring every mutation in a plain Go model and
// checking full equivalence plus structural invariants after each op. Ops
// are 3 bytes each: opcode, slot selector, size selector.
func FuzzInsertReplaceDelete(f *testing.F) {
	// Seeds: fill-then-churn, delete-heavy, kill/compact interleavings, and
	// an oversized insert.
	f.Add([]byte{0, 0, 10, 0, 0, 40, 1, 0, 80, 2, 0, 0, 3, 0, 0})
	f.Add([]byte{0, 0, 120, 0, 1, 120, 4, 0, 0, 0, 2, 60, 3, 0, 0, 1, 1, 5})
	f.Add(bytes.Repeat([]byte{0, 0, 150}, 80)) // drive the page to full
	f.Add([]byte{0, 0, 255, 0, 0, 1, 2, 0, 0, 2, 0, 0})
	f.Add([]byte{0, 0, 30, 4, 0, 0, 1, 0, 30, 2, 0, 0, 0, 0, 30})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := New(1, 0)
		// model mirrors the slot directory: one element per slot, nil for a
		// dead (killed) slot.
		var model [][]byte
		fill := byte(0)
		for len(data) >= 3 {
			op, slotSel, sizeSel := data[0]%5, data[1], data[2]
			data = data[3:]
			fill++
			n := int(sizeSel)%150 + 1
			if sizeSel == 255 {
				n = Size // can never fit: must yield ErrTooLarge
			}
			body := bytes.Repeat([]byte{fill}, n)
			switch op {
			case 0: // insert
				slot, err := p.InsertBytes(body)
				switch {
				case err == nil:
					if slot != len(model) {
						t.Fatalf("insert returned slot %d, want %d", slot, len(model))
					}
					model = append(model, body)
				case errors.Is(err, ErrTooLarge):
					if n+slotSize <= Size-HeaderSize {
						t.Fatalf("spurious ErrTooLarge for %d bytes", n)
					}
				case errors.Is(err, ErrPageFull):
					// The page may be genuinely full; the model stays put.
				default:
					t.Fatalf("insert: %v", err)
				}
			case 1: // replace
				if len(model) == 0 {
					if err := p.ReplaceBytes(0, body); !errors.Is(err, ErrBadSlot) {
						t.Fatalf("replace on empty page: %v", err)
					}
					continue
				}
				i := int(slotSel) % len(model)
				err := p.ReplaceBytes(i, body)
				switch {
				case model[i] == nil:
					if !errors.Is(err, ErrBadSlot) {
						t.Fatalf("replace of dead slot %d: %v", i, err)
					}
				case err == nil:
					model[i] = body
				case errors.Is(err, ErrPageFull):
				default:
					t.Fatalf("replace: %v", err)
				}
			case 2: // delete (shifts the directory)
				if len(model) == 0 {
					if err := p.DeleteSlot(0); !errors.Is(err, ErrBadSlot) {
						t.Fatalf("delete on empty page: %v", err)
					}
					continue
				}
				i := int(slotSel) % len(model)
				if err := p.DeleteSlot(i); err != nil {
					t.Fatalf("delete slot %d: %v", i, err)
				}
				model = append(model[:i], model[i+1:]...)
			case 3: // compact
				p.Compact()
			case 4: // kill (dead slot, index stays stable)
				if len(model) == 0 {
					continue
				}
				i := int(slotSel) % len(model)
				err := p.KillSlot(i)
				if model[i] == nil {
					if !errors.Is(err, ErrBadSlot) {
						t.Fatalf("double kill of slot %d: %v", i, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("kill slot %d: %v", i, err)
				}
				model[i] = nil
			}
			checkPageMatchesModel(t, p, model)
		}
	})
}

// checkPageMatchesModel asserts full page/model equivalence and the layout
// invariants every mutation must preserve.
func checkPageMatchesModel(t *testing.T, p *Page, model [][]byte) {
	t.Helper()
	if p.NumSlots() != len(model) {
		t.Fatalf("NumSlots = %d, model has %d", p.NumSlots(), len(model))
	}
	live := 0
	for i, want := range model {
		got, err := p.SlotBytes(i)
		if want == nil {
			if !errors.Is(err, ErrBadSlot) {
				t.Fatalf("dead slot %d readable: %q, %v", i, got, err)
			}
			if !p.SlotDead(i) {
				t.Fatalf("slot %d should be dead", i)
			}
			continue
		}
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("slot %d = %q, want %q", i, got, want)
		}
		live += len(want)
	}
	// Live bytes plus header and directory can never exceed the page.
	if used := HeaderSize + len(model)*slotSize + live; used > Size {
		t.Fatalf("accounting overflow: %d bytes used on a %d-byte page", used, Size)
	}
	if free := p.FreeSpace(); free < 0 || free > Size-HeaderSize {
		t.Fatalf("FreeSpace = %d out of range", free)
	}
	// The identity header fields survive every mutation.
	if p.ID() != 1 || p.Level() != 0 {
		t.Fatalf("header clobbered: id=%d level=%d", p.ID(), p.Level())
	}
}
