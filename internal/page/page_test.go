package page

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInitHeader(t *testing.T) {
	p := New(7, 3)
	if p.ID() != 7 {
		t.Errorf("ID = %d, want 7", p.ID())
	}
	if p.Level() != 3 {
		t.Errorf("Level = %d, want 3", p.Level())
	}
	if p.IsLeaf() {
		t.Error("IsLeaf = true for level 3")
	}
	if p.NSN() != 0 || p.LSN() != 0 {
		t.Errorf("fresh page NSN=%d LSN=%d, want 0,0", p.NSN(), p.LSN())
	}
	if p.Rightlink() != InvalidPage {
		t.Errorf("Rightlink = %d, want InvalidPage", p.Rightlink())
	}
	if p.NumSlots() != 0 {
		t.Errorf("NumSlots = %d, want 0", p.NumSlots())
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	p := New(42, 0)
	p.SetLSN(123456789)
	p.SetNSN(987654321)
	p.SetRightlink(99)
	p.SetFlags(FlagHeap)
	if p.LSN() != 123456789 {
		t.Errorf("LSN = %d", p.LSN())
	}
	if p.NSN() != 987654321 {
		t.Errorf("NSN = %d", p.NSN())
	}
	if p.Rightlink() != 99 {
		t.Errorf("Rightlink = %d", p.Rightlink())
	}
	if p.Flags() != FlagHeap {
		t.Errorf("Flags = %d", p.Flags())
	}
	if !p.IsLeaf() {
		t.Error("level-0 page should be leaf")
	}
}

func TestInsertAndReadBytes(t *testing.T) {
	p := New(1, 0)
	bodies := [][]byte{[]byte("alpha"), []byte("b"), []byte("gamma-gamma")}
	for i, b := range bodies {
		slot, err := p.InsertBytes(b)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if slot != i {
			t.Errorf("slot = %d, want %d", slot, i)
		}
	}
	for i, want := range bodies {
		got, err := p.SlotBytes(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("slot %d = %q, want %q", i, got, want)
		}
	}
}

func TestInsertUntilFull(t *testing.T) {
	p := New(1, 0)
	body := make([]byte, 100)
	n := 0
	for {
		_, err := p.InsertBytes(body)
		if err == ErrPageFull {
			break
		}
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		n++
		if n > Size {
			t.Fatal("inserted more entries than a page can hold")
		}
	}
	// Each entry consumes 100 body + 4 slot bytes.
	want := (Size - HeaderSize) / 104
	if n < want-1 || n > want {
		t.Errorf("fit %d entries, expected about %d", n, want)
	}
}

func TestTooLarge(t *testing.T) {
	p := New(1, 0)
	if _, err := p.InsertBytes(make([]byte, Size)); err != ErrTooLarge {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestDeleteSlotShifts(t *testing.T) {
	p := New(1, 0)
	for i := 0; i < 5; i++ {
		if _, err := p.InsertBytes([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.DeleteSlot(1); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 4 {
		t.Fatalf("NumSlots = %d, want 4", p.NumSlots())
	}
	want := []byte{'a', 'c', 'd', 'e'}
	for i, w := range want {
		b, err := p.SlotBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		if b[0] != w {
			t.Errorf("slot %d = %c, want %c", i, b[0], w)
		}
	}
}

func TestDeleteBadSlot(t *testing.T) {
	p := New(1, 0)
	if err := p.DeleteSlot(0); err != ErrBadSlot {
		t.Errorf("err = %v, want ErrBadSlot", err)
	}
	if err := p.DeleteSlot(-1); err != ErrBadSlot {
		t.Errorf("err = %v, want ErrBadSlot", err)
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	p := New(1, 0)
	body := make([]byte, 500)
	var slots []int
	for {
		s, err := p.InsertBytes(body)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	free0 := p.FreeSpace()
	// Delete every other entry.
	removed := 0
	for i := len(slots) - 1; i >= 0; i -= 2 {
		if err := p.DeleteSlot(i); err != nil {
			t.Fatal(err)
		}
		removed++
	}
	if p.FreeSpaceAfterCompaction() <= free0 {
		t.Error("deleting entries did not increase compactable space")
	}
	p.Compact()
	if p.FreeSpace() < removed*500 {
		t.Errorf("after compaction free=%d, want >= %d", p.FreeSpace(), removed*500)
	}
	// Survivors intact.
	for i := 0; i < p.NumSlots(); i++ {
		b, err := p.SlotBytes(i)
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		if len(b) != 500 {
			t.Errorf("slot %d length %d", i, len(b))
		}
	}
}

func TestReplaceBytesSameSize(t *testing.T) {
	p := New(1, 0)
	s, err := p.InsertBytes([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReplaceBytes(s, []byte("world")); err != nil {
		t.Fatal(err)
	}
	b, _ := p.SlotBytes(s)
	if string(b) != "world" {
		t.Errorf("got %q", b)
	}
}

func TestReplaceBytesGrow(t *testing.T) {
	p := New(1, 0)
	s0, _ := p.InsertBytes([]byte("aa"))
	s1, _ := p.InsertBytes([]byte("bb"))
	if err := p.ReplaceBytes(s0, []byte("a-much-longer-body")); err != nil {
		t.Fatal(err)
	}
	b0, _ := p.SlotBytes(s0)
	b1, _ := p.SlotBytes(s1)
	if string(b0) != "a-much-longer-body" || string(b1) != "bb" {
		t.Errorf("got %q, %q", b0, b1)
	}
}

func TestReplaceBytesGrowRequiresCompaction(t *testing.T) {
	p := New(1, 0)
	// Fill the page nearly full with two big entries, delete one, then
	// grow the other into the reclaimed space.
	big := make([]byte, (Size-HeaderSize)/2-16)
	s0, err := p.InsertBytes(big)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.InsertBytes(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DeleteSlot(s1); err != nil {
		t.Fatal(err)
	}
	grown := make([]byte, len(big)+200)
	for i := range grown {
		grown[i] = 0xAB
	}
	if err := p.ReplaceBytes(s0, grown); err != nil {
		t.Fatalf("grow with compaction: %v", err)
	}
	b, _ := p.SlotBytes(s0)
	if !bytes.Equal(b, grown) {
		t.Error("grown body corrupted")
	}
}

func TestReplaceTooBig(t *testing.T) {
	p := New(1, 0)
	s, _ := p.InsertBytes([]byte("x"))
	if err := p.ReplaceBytes(s, make([]byte, Size)); err != ErrPageFull {
		t.Errorf("err = %v, want ErrPageFull", err)
	}
}

func TestEntryEncodeDecodeLeaf(t *testing.T) {
	e := Entry{
		Pred:    []byte("key-17"),
		RID:     RID{Page: 9, Slot: 3},
		Deleted: true,
		Deleter: 77,
	}
	enc := e.Encode(true)
	got, err := DecodeEntry(enc, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pred, e.Pred) || got.RID != e.RID || !got.Deleted || got.Deleter != 77 {
		t.Errorf("round trip = %+v, want %+v", got, e)
	}
}

func TestEntryEncodeDecodeInternal(t *testing.T) {
	e := Entry{Pred: []byte{1, 2, 3, 4}, Child: 55}
	enc := e.Encode(false)
	got, err := DecodeEntry(enc, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pred, e.Pred) || got.Child != 55 {
		t.Errorf("round trip = %+v, want %+v", got, e)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := DecodeEntry([]byte{1}, true); err == nil {
		t.Error("short body: want error")
	}
	e := Entry{Pred: []byte("k")}
	enc := e.Encode(true)
	if _, err := DecodeEntry(enc, false); err == nil {
		t.Error("leaf body decoded as internal: want error")
	}
	if _, err := DecodeEntry(enc[:len(enc)-1], true); err == nil {
		t.Error("truncated body: want error")
	}
}

func TestMarkUnmarkDeleted(t *testing.T) {
	p := New(1, 0)
	e := Entry{Pred: []byte("k1"), RID: RID{Page: 2, Slot: 0}}
	s, err := p.InsertEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MarkDeleted(s, 42); err != nil {
		t.Fatal(err)
	}
	got := p.MustEntry(s)
	if !got.Deleted || got.Deleter != 42 {
		t.Errorf("after mark: %+v", got)
	}
	if err := p.UnmarkDeleted(s); err != nil {
		t.Fatal(err)
	}
	got = p.MustEntry(s)
	if got.Deleted || got.Deleter != 0 {
		t.Errorf("after unmark: %+v", got)
	}
}

func TestMarkDeletedOnInternalFails(t *testing.T) {
	p := New(1, 1)
	s, _ := p.InsertEntry(Entry{Pred: []byte("k"), Child: 2})
	if err := p.MarkDeleted(s, 1); err == nil {
		t.Error("MarkDeleted on internal node should fail")
	}
	if err := p.UnmarkDeleted(s); err == nil {
		t.Error("UnmarkDeleted on internal node should fail")
	}
}

func TestFindChildAndRID(t *testing.T) {
	internal := New(1, 1)
	for i := 0; i < 5; i++ {
		if _, err := internal.InsertEntry(Entry{Pred: []byte{byte(i)}, Child: PageID(10 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := internal.FindChild(12); got != 2 {
		t.Errorf("FindChild(12) = %d, want 2", got)
	}
	if got := internal.FindChild(99); got != -1 {
		t.Errorf("FindChild(99) = %d, want -1", got)
	}

	leaf := New(2, 0)
	for i := 0; i < 5; i++ {
		if _, err := leaf.InsertEntry(Entry{Pred: []byte{byte(i)}, RID: RID{Page: 100, Slot: uint16(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := leaf.FindRID(RID{Page: 100, Slot: 3}); got != 3 {
		t.Errorf("FindRID = %d, want 3", got)
	}
	if got := leaf.FindRID(RID{Page: 1, Slot: 1}); got != -1 {
		t.Errorf("FindRID missing = %d, want -1", got)
	}
}

func TestCopyFromAndClone(t *testing.T) {
	p := New(3, 0)
	if _, err := p.InsertBytes([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	q := &Page{}
	if err := q.CopyFrom(p.Bytes()); err != nil {
		t.Fatal(err)
	}
	if q.ID() != 3 || q.NumSlots() != 1 {
		t.Errorf("CopyFrom: id=%d slots=%d", q.ID(), q.NumSlots())
	}
	if err := q.CopyFrom([]byte("short")); err == nil {
		t.Error("CopyFrom with wrong size should fail")
	}
	c := p.Clone()
	if _, err := p.InsertBytes([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if c.NumSlots() != 1 {
		t.Error("Clone shares state with original")
	}
}

func TestResetPreservesIdentity(t *testing.T) {
	p := New(5, 2)
	p.SetNSN(11)
	p.SetRightlink(6)
	p.SetLSN(22)
	if _, err := p.InsertEntry(Entry{Pred: []byte("x"), Child: 9}); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if p.NumSlots() != 0 {
		t.Error("Reset kept slots")
	}
	if p.ID() != 5 || p.Level() != 2 || p.NSN() != 11 || p.Rightlink() != 6 || p.LSN() != 22 {
		t.Error("Reset damaged header identity")
	}
	if p.FreeSpace() != Size-HeaderSize-slotSize {
		t.Errorf("FreeSpace after reset = %d", p.FreeSpace())
	}
}

func TestRIDCompare(t *testing.T) {
	cases := []struct {
		a, b RID
		want int
	}{
		{RID{1, 1}, RID{1, 1}, 0},
		{RID{1, 1}, RID{1, 2}, -1},
		{RID{1, 2}, RID{1, 1}, 1},
		{RID{1, 9}, RID{2, 0}, -1},
		{RID{3, 0}, RID{2, 9}, 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if !(RID{}).IsZero() {
		t.Error("zero RID should be IsZero")
	}
	if (RID{Page: 1}).IsZero() {
		t.Error("non-zero RID reported IsZero")
	}
}

// Property: any sequence of inserts and deletes never corrupts surviving
// entries, and compaction preserves content exactly.
func TestQuickInsertDeleteCompact(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(1, 0)
		var live [][]byte
		for _, op := range ops {
			switch {
			case op%3 != 0 || len(live) == 0: // insert
				body := make([]byte, 1+rng.Intn(64))
				rng.Read(body)
				if _, err := p.InsertBytes(body); err != nil {
					if err != ErrPageFull {
						return false
					}
					continue
				}
				live = append(live, body)
			default: // delete a random slot
				i := rng.Intn(len(live))
				if err := p.DeleteSlot(i); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if op%7 == 0 {
				p.Compact()
			}
			if p.NumSlots() != len(live) {
				return false
			}
		}
		for i, want := range live {
			got, err := p.SlotBytes(i)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: entry encode/decode round-trips for both node kinds.
func TestQuickEntryRoundTrip(t *testing.T) {
	f := func(pred []byte, child uint32, ridPage uint32, ridSlot uint16, deleted bool, deleter uint64) bool {
		if len(pred) > 4096 {
			pred = pred[:4096]
		}
		leafE := Entry{Pred: pred, RID: RID{PageID(ridPage), ridSlot}, Deleted: deleted, Deleter: TxnID(deleter)}
		got, err := DecodeEntry(leafE.Encode(true), true)
		if err != nil || !bytes.Equal(got.Pred, pred) || got.RID != leafE.RID ||
			got.Deleted != deleted || got.Deleter != TxnID(deleter) {
			return false
		}
		intE := Entry{Pred: pred, Child: PageID(child)}
		got, err = DecodeEntry(intE.Encode(false), false)
		return err == nil && bytes.Equal(got.Pred, pred) && got.Child == PageID(child)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	p := New(8, 1)
	if s := p.String(); s == "" {
		t.Error("empty page String")
	}
	r := RID{Page: 4, Slot: 2}
	if r.String() != "(4,2)" {
		t.Errorf("RID String = %q", r.String())
	}
	_ = fmt.Sprintf("%v", p)
}

func TestKillResurrectSlot(t *testing.T) {
	p := New(1, 0)
	s0, _ := p.InsertBytes([]byte("one"))
	s1, _ := p.InsertBytes([]byte("two"))
	if p.SlotDead(s0) || p.FindDeadSlot() != -1 {
		t.Fatal("fresh slots reported dead")
	}
	if err := p.KillSlot(s0); err != nil {
		t.Fatal(err)
	}
	if !p.SlotDead(s0) || p.SlotDead(s1) {
		t.Error("dead state wrong")
	}
	if p.FindDeadSlot() != s0 {
		t.Errorf("FindDeadSlot = %d", p.FindDeadSlot())
	}
	if _, err := p.SlotBytes(s0); err != ErrBadSlot {
		t.Errorf("read dead slot: %v", err)
	}
	if err := p.KillSlot(s0); err != ErrBadSlot {
		t.Errorf("double kill: %v", err)
	}
	if err := p.KillSlot(99); err != ErrBadSlot {
		t.Errorf("kill oob: %v", err)
	}
	// Slot numbering stays stable.
	if b, _ := p.SlotBytes(s1); string(b) != "two" {
		t.Errorf("slot %d = %q", s1, b)
	}
	if err := p.ResurrectSlot(s0, []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	if b, _ := p.SlotBytes(s0); string(b) != "reborn" {
		t.Errorf("resurrected = %q", b)
	}
	if err := p.ResurrectSlot(s0, []byte("again")); err != ErrBadSlot {
		t.Errorf("resurrect live slot: %v", err)
	}
	if err := p.ResurrectSlot(-1, nil); err != ErrBadSlot {
		t.Errorf("resurrect oob: %v", err)
	}
}

func TestResurrectWithCompaction(t *testing.T) {
	p := New(1, 0)
	big := make([]byte, (Size-HeaderSize)/2-16)
	s0, _ := p.InsertBytes(big)
	s1, _ := p.InsertBytes(big)
	p.KillSlot(s0)
	// Space exists only via compaction of the killed body.
	if err := p.ResurrectSlot(s0, make([]byte, len(big)-8)); err != nil {
		t.Fatalf("resurrect with compaction: %v", err)
	}
	if b, _ := p.SlotBytes(s1); len(b) != len(big) {
		t.Error("survivor corrupted")
	}
	// Too big even after compaction.
	p2 := New(2, 0)
	a, _ := p2.InsertBytes([]byte("x"))
	p2.KillSlot(a)
	if err := p2.ResurrectSlot(a, make([]byte, Size)); err != ErrPageFull {
		t.Errorf("oversized resurrect: %v", err)
	}
}

func TestEnsureSlotPadsAndReplaces(t *testing.T) {
	p := New(1, 0)
	if err := p.EnsureSlot(3, []byte("at-three")); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 4 {
		t.Fatalf("NumSlots = %d", p.NumSlots())
	}
	for i := 0; i < 3; i++ {
		if !p.SlotDead(i) {
			t.Errorf("padding slot %d alive", i)
		}
	}
	if b, _ := p.SlotBytes(3); string(b) != "at-three" {
		t.Errorf("slot 3 = %q", b)
	}
	// Replace in place.
	if err := p.EnsureSlot(3, []byte("replaced!")); err != nil {
		t.Fatal(err)
	}
	if b, _ := p.SlotBytes(3); string(b) != "replaced!" {
		t.Errorf("slot 3 = %q", b)
	}
	if err := p.EnsureSlot(-1, nil); err != ErrBadSlot {
		t.Errorf("negative: %v", err)
	}
}

// A redo replaying full history onto a near-full page must compact before
// growing the slot directory, exactly as the original InsertBytes did: fill
// a page, kill enough slots to leave garbage but no contiguous gap, then
// EnsureSlot one past the directory end.
func TestEnsureSlotCompactsForDirectoryGrowth(t *testing.T) {
	p := New(1, 0)
	body := make([]byte, 32)
	n := 0
	for {
		if _, err := p.InsertBytes(body); err != nil {
			break
		}
		n++
	}
	// Kill three mid-page slots: 96 bytes of garbage appear, but the gap
	// between the directory and freeEnd stays under one slot entry per
	// padding slot needed below — only compaction can make room.
	for _, i := range []int{n / 2, n/2 + 1, n/2 + 2} {
		if err := p.KillSlot(i); err != nil {
			t.Fatal(err)
		}
	}
	if p.FreeSpace() >= len(body) {
		t.Fatalf("page not near-full: free=%d", p.FreeSpace())
	}
	// Growing the directory by 9 slots (36 bytes) plus the 32-byte body
	// exceeds any leftover gap; it fits only after garbage reclaim.
	target := n + 8
	if err := p.EnsureSlot(target, body); err != nil {
		t.Fatalf("EnsureSlot past directory on garbage-bearing page: %v", err)
	}
	if p.NumSlots() != target+1 {
		t.Fatalf("NumSlots = %d, want %d", p.NumSlots(), target+1)
	}
	if !p.SlotDead(n / 2) {
		t.Error("killed slot resurrected by compaction")
	}
	if b, err := p.SlotBytes(target); err != nil || len(b) != len(body) {
		t.Errorf("slot %d = %d bytes, err %v", target, len(b), err)
	}
	// A page with no garbage at all must still refuse.
	q := New(2, 0)
	for {
		if _, err := q.InsertBytes(body); err != nil {
			break
		}
	}
	if err := q.EnsureSlot(q.NumSlots()+4, body); err != ErrPageFull {
		t.Errorf("full page without garbage: %v", err)
	}
}

func TestReplaceEntryAndEntries(t *testing.T) {
	p := New(1, 0)
	for i := 0; i < 4; i++ {
		if _, err := p.InsertEntry(Entry{Pred: []byte{byte(i)}, RID: RID{Page: 1, Slot: uint16(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.ReplaceEntry(2, Entry{Pred: []byte{99, 99}, RID: RID{Page: 1, Slot: 2}}); err != nil {
		t.Fatal(err)
	}
	es := p.Entries()
	if len(es) != 4 {
		t.Fatalf("Entries = %d", len(es))
	}
	if len(es[2].Pred) != 2 || es[2].Pred[0] != 99 {
		t.Errorf("entry 2 = %+v", es[2])
	}
}

func TestFindEntryStates(t *testing.T) {
	p := New(1, 0)
	rid := RID{Page: 7, Slot: 3}
	s, _ := p.InsertEntry(Entry{Pred: []byte("k"), RID: rid})
	if got := p.FindEntry(rid, []byte("k"), false); got != s {
		t.Errorf("live FindEntry = %d", got)
	}
	if got := p.FindEntry(rid, []byte("k"), true); got != -1 {
		t.Errorf("deleted FindEntry on live = %d", got)
	}
	if got := p.FindEntry(rid, []byte("other"), false); got != -1 {
		t.Errorf("wrong key = %d", got)
	}
	p.MarkDeleted(s, 9)
	if got := p.FindEntry(rid, []byte("k"), true); got != s {
		t.Errorf("marked FindEntry = %d", got)
	}
	// A live re-insert with the same (reused) RID coexists.
	s2, _ := p.InsertEntry(Entry{Pred: []byte("k2"), RID: rid})
	if got := p.FindEntry(rid, []byte("k2"), false); got != s2 {
		t.Errorf("reused-RID live = %d", got)
	}
	if got := p.FindEntry(rid, []byte("k"), true); got != s {
		t.Errorf("reused-RID marked = %d", got)
	}
}

func TestSetLevel(t *testing.T) {
	p := New(1, 0)
	p.SetLevel(3)
	if p.Level() != 3 || p.IsLeaf() {
		t.Errorf("level = %d", p.Level())
	}
}

// checkSlotBounds fails the test if any live slot points outside the page or
// into the slot directory — the corruption ResurrectSlot could cause on a
// packed page before the unclamped-gap guard.
func checkSlotBounds(t *testing.T, p *Page) {
	t.Helper()
	dirEnd := HeaderSize + p.NumSlots()*slotSize
	for i := 0; i < p.NumSlots(); i++ {
		off, length := p.slot(i)
		if length == 0 {
			continue
		}
		if int(off) < dirEnd || int(off)+int(length) > Size {
			t.Fatalf("slot %d: body [%d,%d) escapes [dirEnd=%d, %d)",
				i, off, int(off)+int(length), dirEnd, Size)
		}
	}
}

// packPage fills a fresh heap-style page with 1-byte bodies until InsertBytes
// reports full, leaving a directory-to-freeEnd gap smaller than slotSize.
func packPage(t *testing.T) *Page {
	t.Helper()
	p := New(9, 0)
	for {
		if _, err := p.InsertBytes([]byte{0xEE}); err != nil {
			if err != ErrPageFull {
				t.Fatalf("InsertBytes: %v", err)
			}
			break
		}
	}
	gap := int(p.u16(offFreeEnd)) - HeaderSize - p.NumSlots()*slotSize
	if gap < 0 || gap >= slotSize {
		t.Fatalf("packed page gap = %d, want 0..%d", gap, slotSize-1)
	}
	return p
}

// Regression: on a packed page (gap between slot directory and bodies smaller
// than slotSize) FreeSpace() floors at zero, and ResurrectSlot used to take
// that as "slotSize bytes available", writing a small body over the tail of
// the slot directory. The heap triggers exactly this with 1-byte records whose
// insert was rolled back (dead slot) on a full page.
func TestResurrectSlotPackedPageNoDirectoryOverwrite(t *testing.T) {
	p := packPage(t)
	gap := int(p.u16(offFreeEnd)) - HeaderSize - p.NumSlots()*slotSize

	// One dead slot, garbage = 1 byte.
	if err := p.KillSlot(0); err != nil {
		t.Fatalf("KillSlot: %v", err)
	}

	// Body needs compaction (gap < len <= gap+garbage): must succeed via
	// Compact, not by overwriting the directory.
	body := bytes.Repeat([]byte{0x77}, gap+1)
	if err := p.ResurrectSlot(0, body); err != nil {
		t.Fatalf("ResurrectSlot(len=%d): %v", len(body), err)
	}
	checkSlotBounds(t, p)
	got, err := p.SlotBytes(0)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("SlotBytes(0) = %x, %v; want %x", got, err, body)
	}
	// Every other body must have survived the compaction.
	for i := 1; i < p.NumSlots(); i++ {
		b, err := p.SlotBytes(i)
		if err != nil || len(b) != 1 || b[0] != 0xEE {
			t.Fatalf("slot %d = %x, %v after compact", i, b, err)
		}
	}
	p.Compact() // must not panic on a sane directory
}

// Regression companion: when even compaction cannot make room
// (len > gap+garbage), ResurrectSlot must refuse instead of corrupting.
func TestResurrectSlotPackedPageRefusesOversized(t *testing.T) {
	p := packPage(t)
	gap := int(p.u16(offFreeEnd)) - HeaderSize - p.NumSlots()*slotSize
	if err := p.KillSlot(0); err != nil {
		t.Fatalf("KillSlot: %v", err)
	}
	body := bytes.Repeat([]byte{0x77}, gap+2) // garbage is only 1 byte
	if err := p.ResurrectSlot(0, body); err != ErrPageFull {
		t.Fatalf("ResurrectSlot(len=%d) = %v, want ErrPageFull", len(body), err)
	}
	checkSlotBounds(t, p)
}

// TestInsertTightDirectoryNoCorruption is the regression test for a slot
// directory overwrite: with tiny bodies the directory can grow to within
// slotSize of freeEnd, making the true free space negative. FreeSpace()
// floors at zero, so a compaction-gated insert that trusted it would
// overstate the post-compaction room and write the new body over the tail
// of the directory, corrupting a slot's length field (discovered as a
// Compact panic under heap churn). Drive a seeded insert/kill/resurrect
// churn of 4-byte bodies and verify every surviving slot stays readable.
func TestInsertTightDirectoryNoCorruption(t *testing.T) {
	p := New(1, 0)
	rng := rand.New(rand.NewSource(7))
	body := []byte("soak")
	live := map[int][]byte{}
	for i := 0; i < 50_000; i++ {
		if rng.Intn(10) < 3 && len(live) > 0 {
			for s := range live {
				if err := p.KillSlot(s); err != nil {
					t.Fatalf("op %d: kill %d: %v", i, s, err)
				}
				delete(live, s)
				break
			}
			continue
		}
		if dead := p.FindDeadSlot(); dead >= 0 {
			if err := p.ResurrectSlot(dead, body); err != nil {
				if err != ErrPageFull {
					t.Fatalf("op %d: resurrect: %v", i, err)
				}
				continue
			}
			live[dead] = body
			continue
		}
		slot, err := p.InsertBytes(body)
		if err != nil {
			if err != ErrPageFull {
				t.Fatalf("op %d: insert: %v", i, err)
			}
			continue
		}
		live[slot] = body
	}
	sum := 0
	for s, want := range live {
		got, err := p.SlotBytes(s)
		if err != nil {
			t.Fatalf("slot %d unreadable: %v", s, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("slot %d = %q, want %q", s, got, want)
		}
		sum += len(got)
	}
	if sum > Size {
		t.Fatalf("live bodies sum to %d bytes on a %d-byte page", sum, Size)
	}
	p.Compact() // must not panic and must keep everything readable
	for s, want := range live {
		if got, _ := p.SlotBytes(s); !bytes.Equal(got, want) {
			t.Fatalf("after compact, slot %d = %q, want %q", s, got, want)
		}
	}
}
