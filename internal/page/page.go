// Package page implements the slotted on-page storage format used by every
// node of the generalized search tree and by the heap file.
//
// The layout follows the structure required by the GiST concurrency protocol
// of Kornacker, Mohan and Hellerstein (SIGMOD 1997): in addition to the usual
// page header fields (page id, page LSN, slot bookkeeping) every page carries
// a node sequence number (NSN) and a rightlink pointer. The NSN is assigned
// from the tree-global counter during a node split and lets a traversing
// operation detect splits it has missed; the rightlink chains a node to the
// sibling that was split off it.
//
// A page is a fixed-size byte array. All multi-byte integers are encoded
// big-endian. The header occupies the first HeaderSize bytes; the slot
// directory grows upward from the header while entry bodies grow downward
// from the end of the page:
//
//	+------------------+-----------------+---......---+------------------+
//	| header (40 B)    | slot directory→ |   free     | ←entry bodies    |
//	+------------------+-----------------+---......---+------------------+
//
// Each slot is 4 bytes: a 2-byte offset and a 2-byte length. Slots are never
// reordered once created within a single insert/delete cycle; physical
// removal compacts the directory.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the size in bytes of every page in the system.
const Size = 8192

// PageID identifies a page within a page store. The zero value is never a
// valid allocated page; it is reserved so that zeroed structures are safely
// invalid.
type PageID uint32

// InvalidPage is the PageID used to mean "no page" (for example, the
// rightlink of a node that has never been split).
const InvalidPage PageID = 0

// LSN is a log sequence number. LSNs are strictly monotonically increasing
// across the log. Per §10.1 of the paper the same counter that generates
// LSNs also generates node sequence numbers, so NSN is an alias of LSN.
type LSN uint64

// NSN is a node sequence number, drawn from the same monotonic source as
// LSNs (§10.1).
type NSN = LSN

// MaxLSN is an LSN strictly greater than any LSN the log will ever hand
// out: the "flush everything" / "no upper bound" sentinel. It is far below
// the uint64 overflow line so arithmetic like MaxLSN+1 stays ordered.
const MaxLSN LSN = 1 << 62

// RID identifies a data record in the heap: a heap page and a slot on it.
type RID struct {
	Page PageID
	Slot uint16
}

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// IsZero reports whether r is the zero RID.
func (r RID) IsZero() bool { return r.Page == InvalidPage && r.Slot == 0 }

// Compare orders RIDs by (page, slot). It returns -1, 0 or +1.
func (r RID) Compare(o RID) int {
	switch {
	case r.Page < o.Page:
		return -1
	case r.Page > o.Page:
		return 1
	case r.Slot < o.Slot:
		return -1
	case r.Slot > o.Slot:
		return 1
	}
	return 0
}

// Header field offsets within a page.
const (
	offPageID    = 0  // uint32
	offLSN       = 4  // uint64
	offNSN       = 12 // uint64
	offRightlink = 20 // uint32
	offLevel     = 24 // uint16; 0 means leaf
	offNumSlots  = 26 // uint16
	offFreeEnd   = 28 // uint16: offset of the byte after free space
	offFlags     = 30 // uint16
	offGarbage   = 32 // uint16: bytes reclaimable by compaction

	// HeaderSize is the number of bytes reserved for the page header.
	// A few bytes are left spare for forward compatibility.
	HeaderSize = 40
)

// Page flags.
const (
	// FlagDeallocated marks a page that has been freed (Free-Page log
	// record, Table 1) and is awaiting reuse.
	FlagDeallocated uint16 = 1 << iota
	// FlagHeap marks a heap (data) page rather than an index node.
	FlagHeap
)

const slotSize = 4

// Errors returned by page operations.
var (
	// ErrPageFull is returned when an entry does not fit even after
	// compaction; the caller must split the node.
	ErrPageFull = errors.New("page: not enough free space")
	// ErrBadSlot is returned for out-of-range or dead slot indices.
	ErrBadSlot = errors.New("page: invalid slot")
	// ErrTooLarge is returned when an entry could never fit on an empty
	// page.
	ErrTooLarge = errors.New("page: entry larger than page capacity")
)

// Page is a fixed-size disk page. The zero value is not usable; call Init
// (for a fresh page) or wrap bytes read from a DiskManager.
type Page struct {
	buf [Size]byte
}

// New allocates a Page initialized as an index node with the given identity
// and level (level 0 is a leaf).
func New(id PageID, level uint16) *Page {
	p := &Page{}
	p.Init(id, level)
	return p
}

// Init formats p as an empty node. Any previous content is destroyed.
func (p *Page) Init(id PageID, level uint16) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.setU32(offPageID, uint32(id))
	p.setU16(offLevel, level)
	p.setU16(offNumSlots, 0)
	p.setU16(offFreeEnd, Size)
	p.setU32(offRightlink, uint32(InvalidPage))
}

// Bytes returns the raw page image. The returned slice aliases the page;
// callers must not retain it across modifications.
func (p *Page) Bytes() []byte { return p.buf[:] }

// UsedBounds returns the extent of the page's used regions: front is the
// end of the slot directory, tail the start of the entry bodies. Bytes in
// [front, tail) are free space and hold no live data on a consistent page
// (every slot offset points at or past freeEnd). Both values are clamped
// to [HeaderSize, Size] so they are safe to use as copy bounds even when
// the header was read mid-mutation and is torn.
func (p *Page) UsedBounds() (front, tail int) {
	front = HeaderSize + int(p.u16(offNumSlots))*slotSize
	if front > Size {
		front = Size
	}
	tail = int(p.u16(offFreeEnd))
	if tail < front {
		tail = front // nonsense header: copy the whole remainder
	}
	if tail > Size {
		tail = Size
	}
	return front, tail
}

// CopyFrom replaces the entire page image with the contents of b, which must
// be exactly Size bytes.
func (p *Page) CopyFrom(b []byte) error {
	if len(b) != Size {
		return fmt.Errorf("page: CopyFrom with %d bytes, want %d", len(b), Size)
	}
	copy(p.buf[:], b)
	return nil
}

// Clone returns a deep copy of the page.
func (p *Page) Clone() *Page {
	q := &Page{}
	q.buf = p.buf
	return q
}

func (p *Page) setU16(off int, v uint16) { binary.BigEndian.PutUint16(p.buf[off:], v) }
func (p *Page) setU32(off int, v uint32) { binary.BigEndian.PutUint32(p.buf[off:], v) }
func (p *Page) setU64(off int, v uint64) { binary.BigEndian.PutUint64(p.buf[off:], v) }
func (p *Page) u16(off int) uint16       { return binary.BigEndian.Uint16(p.buf[off:]) }
func (p *Page) u32(off int) uint32       { return binary.BigEndian.Uint32(p.buf[off:]) }
func (p *Page) u64(off int) uint64       { return binary.BigEndian.Uint64(p.buf[off:]) }

// ID returns the page's own identifier.
func (p *Page) ID() PageID { return PageID(p.u32(offPageID)) }

// LSN returns the page LSN: the LSN of the last log record that modified
// this page (the WAL repeat-history test compares against it during redo).
func (p *Page) LSN() LSN { return LSN(p.u64(offLSN)) }

// SetLSN records the LSN of the latest update to the page.
func (p *Page) SetLSN(l LSN) { p.setU64(offLSN, uint64(l)) }

// NSN returns the node sequence number, set when the node was last split.
func (p *Page) NSN() NSN { return NSN(p.u64(offNSN)) }

// SetNSN updates the node sequence number.
func (p *Page) SetNSN(n NSN) { p.setU64(offNSN, uint64(n)) }

// Rightlink returns the pointer to the right sibling split off this node,
// or InvalidPage if the node has never been split (or is the rightmost of
// its split chain).
func (p *Page) Rightlink() PageID { return PageID(p.u32(offRightlink)) }

// SetRightlink updates the rightlink pointer.
func (p *Page) SetRightlink(id PageID) { p.setU32(offRightlink, uint32(id)) }

// Level returns the node's height above the leaves; 0 means leaf.
func (p *Page) Level() uint16 { return p.u16(offLevel) }

// SetLevel changes the node's level (used when a root split lifts the root).
func (p *Page) SetLevel(l uint16) { p.setU16(offLevel, l) }

// IsLeaf reports whether the node is a leaf.
func (p *Page) IsLeaf() bool { return p.Level() == 0 }

// Flags returns the page flag bits.
func (p *Page) Flags() uint16 { return p.u16(offFlags) }

// SetFlags replaces the page flag bits.
func (p *Page) SetFlags(f uint16) { p.setU16(offFlags, f) }

// NumSlots returns the number of slots in the directory, including dead
// (zero-length) slots.
func (p *Page) NumSlots() int { return int(p.u16(offNumSlots)) }

func (p *Page) slotOff(i int) int { return HeaderSize + i*slotSize }

func (p *Page) slot(i int) (off, length uint16) {
	so := p.slotOff(i)
	return p.u16(so), p.u16(so + 2)
}

func (p *Page) setSlot(i int, off, length uint16) {
	so := p.slotOff(i)
	p.setU16(so, off)
	p.setU16(so+2, length)
}

// FreeSpace returns the number of bytes available for a new entry body plus
// its slot, before compaction.
func (p *Page) FreeSpace() int {
	freeStart := HeaderSize + p.NumSlots()*slotSize
	freeEnd := int(p.u16(offFreeEnd))
	n := freeEnd - freeStart - slotSize
	if n < 0 {
		return 0
	}
	return n
}

// FreeSpaceAfterCompaction returns the bytes that would be available for a
// new entry body plus slot if the page were compacted first.
func (p *Page) FreeSpaceAfterCompaction() int {
	return p.FreeSpace() + int(p.u16(offGarbage))
}

// InsertBytes adds an entry body to the page and returns its slot index.
// It compacts the page if needed. ErrPageFull is returned when the entry
// does not fit; ErrTooLarge when it could never fit.
func (p *Page) InsertBytes(body []byte) (int, error) {
	if len(body)+slotSize > Size-HeaderSize {
		return 0, ErrTooLarge
	}
	// The free computation must be unclamped: FreeSpace() floors at zero,
	// which on a page whose directory has grown within slotSize of freeEnd
	// (tiny bodies, many slots) would overstate the post-compaction room and
	// let the copy below overwrite the tail of the slot directory — the same
	// hazard ResurrectSlot guards against.
	free := int(p.u16(offFreeEnd)) - HeaderSize - p.NumSlots()*slotSize - slotSize
	if free < len(body) {
		if free+int(p.u16(offGarbage)) < len(body) {
			return 0, ErrPageFull
		}
		p.Compact()
	}
	n := p.NumSlots()
	freeEnd := int(p.u16(offFreeEnd))
	off := freeEnd - len(body)
	copy(p.buf[off:freeEnd], body)
	p.setSlot(n, uint16(off), uint16(len(body)))
	p.setU16(offFreeEnd, uint16(off))
	p.setU16(offNumSlots, uint16(n+1))
	return n, nil
}

// SlotBytes returns the body stored at slot i. The slice aliases the page.
func (p *Page) SlotBytes(i int) ([]byte, error) {
	if i < 0 || i >= p.NumSlots() {
		return nil, ErrBadSlot
	}
	off, length := p.slot(i)
	if length == 0 {
		return nil, ErrBadSlot
	}
	return p.buf[off : off+length], nil
}

// ReplaceBytes overwrites the body at slot i with body. If the new body is
// the same length the update is done in place; otherwise the old space is
// garbage and fresh space is claimed (compacting if necessary).
func (p *Page) ReplaceBytes(i int, body []byte) error {
	if i < 0 || i >= p.NumSlots() {
		return ErrBadSlot
	}
	off, length := p.slot(i)
	if length == 0 {
		return ErrBadSlot
	}
	if int(length) == len(body) {
		copy(p.buf[off:int(off)+len(body)], body)
		return nil
	}
	// Different size: release old space, allocate new. avail is unclamped
	// (see InsertBytes): the existing slot is reused, so only the raw gap
	// between the directory and freeEnd matters.
	needed := len(body)
	avail := int(p.u16(offFreeEnd)) - HeaderSize - p.NumSlots()*slotSize
	garbage := int(p.u16(offGarbage)) + int(length)
	if avail < needed {
		if avail+garbage < needed {
			return ErrPageFull
		}
		// Mark old body garbage so compaction reclaims it.
		p.setSlot(i, 0, 0)
		p.setU16(offGarbage, uint16(garbage))
		p.Compact()
	} else {
		p.setSlot(i, 0, 0)
		p.setU16(offGarbage, uint16(garbage))
	}
	freeEnd := int(p.u16(offFreeEnd))
	noff := freeEnd - len(body)
	copy(p.buf[noff:freeEnd], body)
	p.setSlot(i, uint16(noff), uint16(len(body)))
	p.setU16(offFreeEnd, uint16(noff))
	return nil
}

// DeleteSlot removes slot i physically, shifting subsequent slots down so
// slot indices above i decrease by one. The body space becomes garbage.
func (p *Page) DeleteSlot(i int) error {
	n := p.NumSlots()
	if i < 0 || i >= n {
		return ErrBadSlot
	}
	_, length := p.slot(i)
	p.setU16(offGarbage, p.u16(offGarbage)+length)
	// Shift the slot directory.
	copy(p.buf[p.slotOff(i):p.slotOff(n-1)], p.buf[p.slotOff(i+1):p.slotOff(n)])
	p.setU16(offNumSlots, uint16(n-1))
	return nil
}

// Compact rewrites all live entry bodies contiguously at the end of the
// page, reclaiming garbage left by deletions and replacements.
func (p *Page) Compact() {
	n := p.NumSlots()
	var scratch [Size]byte
	writeEnd := Size
	// Copy bodies into scratch back-to-front in slot order so relative
	// layout is deterministic.
	type reloc struct {
		slot int
		off  uint16
		len  uint16
	}
	relocs := make([]reloc, 0, n)
	for i := 0; i < n; i++ {
		off, length := p.slot(i)
		if length == 0 {
			continue
		}
		writeEnd -= int(length)
		copy(scratch[writeEnd:], p.buf[off:off+length])
		relocs = append(relocs, reloc{i, uint16(writeEnd), length})
	}
	copy(p.buf[writeEnd:], scratch[writeEnd:])
	for _, r := range relocs {
		p.setSlot(r.slot, r.off, r.len)
	}
	p.setU16(offFreeEnd, uint16(writeEnd))
	p.setU16(offGarbage, 0)
}

// Reset clears all slots while preserving the page identity, level, LSN,
// NSN and rightlink. Used when redistributing entries during a split.
func (p *Page) Reset() {
	p.setU16(offNumSlots, 0)
	p.setU16(offFreeEnd, Size)
	p.setU16(offGarbage, 0)
}

// String summarizes the page for debugging.
func (p *Page) String() string {
	return fmt.Sprintf("page %d level=%d slots=%d lsn=%d nsn=%d right=%d free=%d",
		p.ID(), p.Level(), p.NumSlots(), p.LSN(), p.NSN(), p.Rightlink(), p.FreeSpace())
}

// KillSlot marks slot i dead (zero length) while keeping the slot index
// stable, unlike DeleteSlot which shifts the directory. Heap pages use dead
// slots so that RIDs remain valid identifiers forever.
func (p *Page) KillSlot(i int) error {
	if i < 0 || i >= p.NumSlots() {
		return ErrBadSlot
	}
	_, length := p.slot(i)
	if length == 0 {
		return ErrBadSlot
	}
	p.setU16(offGarbage, p.u16(offGarbage)+length)
	p.setSlot(i, 0, 0)
	return nil
}

// SlotDead reports whether slot i exists but holds no body.
func (p *Page) SlotDead(i int) bool {
	if i < 0 || i >= p.NumSlots() {
		return false
	}
	_, length := p.slot(i)
	return length == 0
}

// FindDeadSlot returns the index of a dead slot, or -1 if none exists.
func (p *Page) FindDeadSlot() int {
	for i := 0; i < p.NumSlots(); i++ {
		if _, length := p.slot(i); length == 0 {
			return i
		}
	}
	return -1
}

// ResurrectSlot stores body into the dead slot i.
func (p *Page) ResurrectSlot(i int, body []byte) error {
	if i < 0 || i >= p.NumSlots() || !p.SlotDead(i) {
		return ErrBadSlot
	}
	// The slot already exists, so only the gap between the directory and
	// freeEnd must hold the body. The gap is computed unclamped: FreeSpace()
	// floors at zero, which on a page packed with tiny bodies (gap < slotSize)
	// would overstate the room and let the copy below overwrite the tail of
	// the slot directory.
	gap := int(p.u16(offFreeEnd)) - HeaderSize - p.NumSlots()*slotSize
	if gap < len(body) {
		if gap+int(p.u16(offGarbage)) < len(body) {
			return ErrPageFull
		}
		p.Compact()
	}
	freeEnd := int(p.u16(offFreeEnd))
	off := freeEnd - len(body)
	copy(p.buf[off:freeEnd], body)
	p.setSlot(i, uint16(off), uint16(len(body)))
	p.setU16(offFreeEnd, uint16(off))
	return nil
}

// EnsureSlot places body at exactly slot i, creating dead padding slots as
// needed and replacing any existing body. Used by page-oriented redo, which
// must reproduce the exact slot assignment recorded in the log.
func (p *Page) EnsureSlot(i int, body []byte) error {
	if i < 0 {
		return ErrBadSlot
	}
	for p.NumSlots() <= i {
		n := p.NumSlots()
		if HeaderSize+(n+1)*slotSize > int(p.u16(offFreeEnd)) {
			// The directory can still grow if compaction reclaims garbage:
			// the original insert that created this slot may itself have
			// compacted. Compact preserves slot indices (dead slots stay
			// dead in place), so it is safe mid-redo.
			if p.u16(offGarbage) == 0 {
				return ErrPageFull
			}
			p.Compact()
			if HeaderSize+(n+1)*slotSize > int(p.u16(offFreeEnd)) {
				return ErrPageFull
			}
		}
		p.setSlot(n, 0, 0)
		p.setU16(offNumSlots, uint16(n+1))
	}
	if !p.SlotDead(i) {
		if err := p.KillSlot(i); err != nil {
			return err
		}
	}
	return p.ResurrectSlot(i, body)
}
