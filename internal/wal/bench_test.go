package wal

import (
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/page"
)

// benchRecord builds a representative mid-size record (a leaf insert with a
// small key/value body) so the benchmarks exercise real encoding cost.
func benchRecord(txn page.TxnID) *Record {
	return &Record{
		Type: RecAddLeafEntry,
		Txn:  txn,
		Pg:   42,
		Body: []byte("benchmark-key:benchmark-value-payload"),
	}
}

// BenchmarkWALAppend measures raw append throughput on an in-memory log:
// LSN assignment plus record publication, no durability. Run with
// -cpu 1,4,16 to see how appends scale when goroutines contend for LSNs.
func BenchmarkWALAppend(b *testing.B) {
	l := NewMemLog()
	var txns atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		id := page.TxnID(txns.Add(1))
		for pb.Next() {
			l.Append(benchRecord(id))
		}
	})
}

// BenchmarkWALAppendFile measures append throughput on a file-backed log
// (encoding + CRC framing on every append) without any explicit flush; the
// cost of staging bytes for the group flush is included, fsyncs are not.
func BenchmarkWALAppendFile(b *testing.B) {
	l, err := OpenFileLog(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	var txns atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		id := page.TxnID(txns.Add(1))
		for pb.Next() {
			l.Append(benchRecord(id))
		}
	})
	b.StopTimer()
	appends, syncs := l.Stats()
	b.ReportMetric(float64(appends), "appends")
	b.ReportMetric(float64(syncs), "fsyncs")
}

// BenchmarkWALCommit measures the commit force path on a file-backed log:
// every iteration appends a commit record and forces it durable. Under
// parallelism group commit should amortize fsyncs across committers; the
// fsyncs-per-commit metric makes the batching visible.
func BenchmarkWALCommit(b *testing.B) {
	l, err := OpenFileLog(filepath.Join(b.TempDir(), "commit.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	var txns atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		id := page.TxnID(txns.Add(1))
		for pb.Next() {
			lsn := l.Append(benchRecord(id))
			if err := l.FlushTo(lsn); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	appends, syncs := l.Stats()
	if appends > 0 {
		b.ReportMetric(float64(syncs)/float64(appends), "fsyncs/commit")
	}
}

// BenchmarkWALLastLSN measures the traversal-side counter read (the NSN
// source of §10.1) while one goroutine appends continuously — the reader
// hot path that every tree descent pays.
func BenchmarkWALLastLSN(b *testing.B) {
	l := NewMemLog()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				l.Append(benchRecord(1))
			}
		}
	}()
	defer close(stop)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var sink page.LSN
		for pb.Next() {
			sink = l.LastLSN()
		}
		_ = sink
	})
}
