package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/page"
	"repro/internal/storage"
)

// openCrashLog opens a file log whose main file and truncation journal are
// both wired to one crash point, so a single byte budget can tear any phase
// of the crash-atomic truncation protocol.
func openCrashLog(t *testing.T, dir string, cp *storage.CrashPoint) (*Log, string) {
	t.Helper()
	path := filepath.Join(dir, "wal.log")
	lf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := os.OpenFile(path+TruncSuffix, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		lf.Close()
		t.Fatal(err)
	}
	l, err := OpenFileLogHandles(storage.NewCrashFile(lf, cp, "wal"), storage.NewCrashFile(tf, cp, "walt"))
	if err != nil {
		lf.Close()
		tf.Close()
		t.Fatal(err)
	}
	return l, path
}

// TestTruncationCrashSweep crashes DiscardBefore at every byte offset of its
// I/O footprint — the intent append and force, the journal staging write,
// the main-file truncate-and-rewrite, the journal invalidation — and after
// each crash reopens the log for real and demands the protocol's contract:
//
//  1. the reopen itself never fails (a torn journal is discarded, a valid
//     one is replayed to completion);
//  2. the head is in one of exactly two states — untouched, or at the
//     requested bound — never somewhere in between;
//  3. every record at or above the surviving head is intact, in particular
//     everything at or above the bound, which recovery may still need;
//  4. the reopened log accepts and persists new appends.
func TestTruncationCrashSweep(t *testing.T) {
	const nRecs = 40
	const bound = page.LSN(25)

	// Dry run: measure the byte footprint of the truncation itself so the
	// sweep covers every phase with margin on both sides.
	dry := storage.NewCrashPoint()
	l, _ := openCrashLog(t, t.TempDir(), dry)
	for i := 0; i < nRecs; i++ {
		l.Append(&Record{Type: RecBegin, Txn: page.TxnID(i + 1)})
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	before := dry.BytesWritten()
	if _, err := l.DiscardBefore(bound); err != nil {
		t.Fatal(err)
	}
	span := dry.BytesWritten() - before
	l.Close()
	if span < 200 {
		t.Fatalf("truncation footprint implausibly small: %d bytes", span)
	}

	for budget := int64(0); budget <= span+32; budget += 3 {
		cp := storage.NewCrashPoint()
		dir := t.TempDir()
		l, path := openCrashLog(t, dir, cp)
		for i := 0; i < nRecs; i++ {
			l.Append(&Record{Type: RecBegin, Txn: page.TxnID(i + 1)})
		}
		if err := l.FlushAll(); err != nil {
			t.Fatal(err)
		}
		cp.Arm(budget)
		_, terr := l.DiscardBefore(bound) // may fail: that's the point
		l.Close()                         // ignore errors; flusher must stop

		l2, err := OpenFileLog(path)
		if err != nil {
			t.Fatalf("budget %d (site %q, truncErr %v): reopen failed: %v",
				budget, cp.Site(), terr, err)
		}
		base := l2.Base()
		if base != 0 && base != bound-1 {
			t.Fatalf("budget %d (site %q): base %d is neither 0 nor %d — partial truncation survived",
				budget, cp.Site(), base, bound-1)
		}
		last := l2.LastLSN()
		if last < nRecs {
			t.Fatalf("budget %d (site %q): flushed records lost, LastLSN %d < %d",
				budget, cp.Site(), last, nRecs)
		}
		for lsn := base + 1; lsn <= page.LSN(nRecs); lsn++ {
			r, err := l2.Get(lsn)
			if err != nil {
				t.Fatalf("budget %d (site %q): Get(%d): %v", budget, cp.Site(), lsn, err)
			}
			if r.Txn != page.TxnID(lsn) {
				t.Fatalf("budget %d (site %q): record %d corrupted: Txn %d",
					budget, cp.Site(), lsn, r.Txn)
			}
		}
		// If the intent record survived it must be well-formed; if the cut
		// was applied the intent is necessarily above it and durable.
		if last > nRecs {
			r, err := l2.Get(page.LSN(nRecs + 1))
			if err != nil || r.Type != RecTruncate || r.NSN != bound {
				t.Fatalf("budget %d (site %q): intent record mangled: %v %v",
					budget, cp.Site(), r, err)
			}
		} else if base == bound-1 {
			t.Fatalf("budget %d (site %q): head cut without a durable intent record",
				budget, cp.Site())
		}
		// The reopened log must be fully writable again.
		nl := l2.Append(&Record{Type: RecCommit, Txn: 999})
		if err := l2.FlushAll(); err != nil {
			t.Fatalf("budget %d: append after recovery: %v", budget, err)
		}
		if r, err := l2.Get(nl); err != nil || r.Txn != 999 {
			t.Fatalf("budget %d: post-recovery append unreadable: %v %v", budget, r, err)
		}
		l2.Close()
	}
}
