package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/page"
)

func TestTailFromStopsAtDurabilityFrontier(t *testing.T) {
	l := NewMemLog()
	for i := 0; i < 20; i++ {
		l.Append(&Record{Type: RecBegin, Txn: 1})
	}
	if err := l.FlushTo(12); err != nil {
		t.Fatal(err)
	}
	recs, err := l.TailFrom(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 {
		t.Fatalf("TailFrom returned %d records, want 12 (the flushed prefix)", len(recs))
	}
	for i, r := range recs {
		if r.LSN != page.LSN(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
	// Past the frontier: empty, not the unflushed tail.
	recs, err = l.TailFrom(13, 0)
	if err != nil || len(recs) != 0 {
		t.Fatalf("TailFrom past flushed = %d records, %v; want 0, nil", len(recs), err)
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	recs, _ = l.TailFrom(13, 4) // max caps the batch
	if len(recs) != 4 || recs[0].LSN != 13 {
		t.Fatalf("TailFrom(13, max 4) = %d records starting %d", len(recs), recs[0].LSN)
	}
}

func TestTailFromTruncatedHead(t *testing.T) {
	l := NewMemLog()
	for i := 0; i < 20; i++ {
		l.Append(&Record{Type: RecBegin, Txn: 1})
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.DiscardBefore(11); err != nil {
		t.Fatal(err)
	}
	if _, err := l.TailFrom(5, 0); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("TailFrom into the discarded prefix: %v, want ErrTailTruncated", err)
	}
	recs, err := l.TailFrom(11, 0)
	if err != nil || len(recs) != 10 {
		t.Fatalf("TailFrom at the retained head = %d records, %v", len(recs), err)
	}
}

func TestAppendShippedContiguity(t *testing.T) {
	l := NewReplicaLog(0)
	for i := 1; i <= 3; i++ {
		if err := l.AppendShipped(&Record{LSN: page.LSN(i), Type: RecBegin, Txn: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendShipped(&Record{LSN: 5, Type: RecBegin, Txn: 1}); err == nil {
		t.Fatal("gap (LSN 5 after 3) accepted")
	}
	if err := l.AppendShipped(&Record{LSN: 3, Type: RecBegin, Txn: 1}); err == nil {
		t.Fatal("replay (LSN 3 again) accepted")
	}
	if err := l.AppendShipped(&Record{LSN: 4, Type: RecCheckpoint}); err != nil {
		t.Fatal(err)
	}
	// All three watermarks track the shipped tail; the checkpoint record
	// registers as the master checkpoint like a locally-logged one would.
	if got := l.LastLSN(); got != 4 {
		t.Fatalf("LastLSN = %d, want 4", got)
	}
	if got := l.FlushedLSN(); got != 4 {
		t.Fatalf("FlushedLSN = %d, want 4 (shipped records are durable upstream)", got)
	}
	if got := l.MasterCheckpoint(); got != 4 {
		t.Fatalf("MasterCheckpoint = %d, want 4", got)
	}
}

func TestRebaseShipped(t *testing.T) {
	l := NewReplicaLog(0)
	if err := l.RebaseShipped(100); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendShipped(&Record{LSN: 100, Type: RecBegin, Txn: 1}); err == nil {
		t.Fatal("record at the base LSN accepted; the base itself is pre-history")
	}
	if err := l.AppendShipped(&Record{LSN: 101, Type: RecBegin, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.RebaseShipped(200); err == nil {
		t.Fatal("rebase of a non-empty log accepted")
	}
}

func TestWatchFlushedWakes(t *testing.T) {
	l := NewMemLog()
	ch := l.WatchFlushed()
	defer l.UnwatchFlushed(ch)
	l.Append(&Record{Type: RecBegin, Txn: 1})
	go l.FlushAll()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("no wakeup after a flushed-watermark advance")
	}
}

// TestSnapshotScanRacesAppenders runs SnapshotScan concurrently with
// appenders crossing the seal boundary (run under -race): every scan must
// observe a contiguous, ascending LSN prefix — no torn index, no gap where
// a record was visible before its predecessor sealed.
func TestSnapshotScanRacesAppenders(t *testing.T) {
	l := NewMemLog()
	const (
		appenders = 4
		perApp    = 400
	)
	var wg sync.WaitGroup
	var done atomic.Bool
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perApp; i++ {
				l.Append(&Record{Type: RecAddLeafEntry, Txn: page.TxnID(id + 1), Pg: page.PageID(i%7 + 1)})
			}
		}(a)
	}
	go func() {
		wg.Wait()
		done.Store(true)
	}()
	for !done.Load() {
		prev := page.LSN(0)
		l.SnapshotScan(1, func(r *Record) bool {
			if prev != 0 && r.LSN != prev+1 {
				t.Errorf("scan gap: %d follows %d", r.LSN, prev)
				return false
			}
			prev = r.LSN
			return true
		})
	}
	if total := l.LastLSN(); total != appenders*perApp {
		t.Fatalf("LastLSN = %d, want %d", total, appenders*perApp)
	}
	// The final scan sees everything.
	n := 0
	l.SnapshotScan(1, func(*Record) bool { n++; return true })
	if n != appenders*perApp {
		t.Fatalf("final scan visited %d records, want %d", n, appenders*perApp)
	}
}

// TestTailFromRacesFlush hammers TailFrom while appenders and FlushTo race:
// no returned record may ever carry an LSN above the frontier TailFrom was
// bounded by, and batches must stay contiguous.
func TestTailFromRacesFlush(t *testing.T) {
	l := NewMemLog()
	const total = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			lsn := l.Append(&Record{Type: RecBegin, Txn: 1})
			if i%17 == 0 {
				if err := l.FlushTo(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}
		if err := l.FlushAll(); err != nil {
			t.Error(err)
		}
	}()
	from := page.LSN(1)
	for from <= total {
		recs, err := l.TailFrom(from, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.LSN != from {
				t.Fatalf("batch gap: got %d, want %d", r.LSN, from)
			}
			from++
		}
	}
	wg.Wait()
}
