package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/page"
)

// faultFile wraps an *os.File so tests can inject write, sync, and truncate
// failures into the flush path. The flags are atomics because the flusher
// goroutine exercises them concurrently with the test body.
type faultFile struct {
	*os.File
	failWrite    atomic.Bool
	partialWrite atomic.Bool // write half the bytes, then fail
	failSync     atomic.Bool
	failTruncate atomic.Bool
}

var errInjected = errors.New("injected fault")

func (f *faultFile) Write(p []byte) (int, error) {
	if f.partialWrite.Load() {
		f.partialWrite.Store(false)
		n, _ := f.File.Write(p[:len(p)/2])
		return n, fmt.Errorf("short: %w", errInjected)
	}
	if f.failWrite.Load() {
		return 0, errInjected
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if f.failSync.Load() {
		return errInjected
	}
	return f.File.Sync()
}

func (f *faultFile) Truncate(n int64) error {
	if f.failTruncate.Load() {
		return errInjected
	}
	return f.File.Truncate(n)
}

func openFaultLog(t *testing.T) (*Log, *faultFile, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fault.log")
	osf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff := &faultFile{File: osf}
	l, err := openFileLog(ff, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l, ff, path
}

// TestFlushToWriteErrorRestages covers the FlushTo error path that used to
// lose records: a failed batch write must keep the drained frames flushable
// (re-staged), never advance the durable watermark past them, and let a
// later flush deliver them to disk exactly once.
func TestFlushToWriteErrorRestages(t *testing.T) {
	l, ff, path := openFaultLog(t)
	lsn1 := l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Append(&Record{Type: RecAddLeafEntry, Txn: 1, Pg: 7, Body: []byte("k")})

	ff.failWrite.Store(true)
	if err := l.FlushTo(lsn1); err == nil {
		t.Fatal("FlushTo succeeded through a failing disk")
	}
	if got := l.FlushedLSN(); got != 0 {
		t.Fatalf("FlushedLSN = %d after failed write, want 0", got)
	}

	// The write error is transient (re-staged, not sticky): healing the
	// disk must let the same records reach it.
	ff.failWrite.Store(false)
	lsn3 := l.Append(&Record{Type: RecCommit, Txn: 1})
	if err := l.FlushTo(lsn3); err != nil {
		t.Fatalf("FlushTo after heal: %v", err)
	}
	if got := l.FlushedLSN(); got != lsn3 {
		t.Fatalf("FlushedLSN = %d, want %d", got, lsn3)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 3 {
		t.Fatalf("recovered LastLSN = %d, want 3 (no record lost or duplicated)", l2.LastLSN())
	}
	for lsn := page.LSN(1); lsn <= 3; lsn++ {
		if _, err := l2.Get(lsn); err != nil {
			t.Errorf("record %d lost across failed write: %v", lsn, err)
		}
	}
}

// TestFlushToPartialWriteTruncated: a short write leaves a torn suffix on
// disk; the retry must not duplicate the partial bytes.
func TestFlushToPartialWriteTruncated(t *testing.T) {
	l, ff, path := openFaultLog(t)
	l.Append(&Record{Type: RecBegin, Txn: 1})
	lsn2 := l.Append(&Record{Type: RecAddLeafEntry, Txn: 1, Pg: 3, Body: []byte("payload")})

	ff.partialWrite.Store(true)
	if err := l.FlushTo(lsn2); err == nil {
		t.Fatal("FlushTo succeeded through a short write")
	}
	if err := l.FlushTo(lsn2); err != nil {
		t.Fatalf("retry after short write: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 2 {
		t.Fatalf("recovered LastLSN = %d, want 2", l2.LastLSN())
	}
	r, err := l2.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Body) != "payload" {
		t.Errorf("record 2 body = %q", r.Body)
	}
}

// TestFlushToSyncErrorFailsPermanently: after a failed fsync the kernel's
// dirty state is unknowable, so the log must refuse all further durability
// claims with the sticky ErrLogFailed.
func TestFlushToSyncErrorFailsPermanently(t *testing.T) {
	l, ff, _ := openFaultLog(t)
	lsn := l.Append(&Record{Type: RecBegin, Txn: 1})

	ff.failSync.Store(true)
	if err := l.FlushTo(lsn); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("FlushTo after fsync failure = %v, want ErrLogFailed", err)
	}

	// Healing the disk must NOT resurrect the log: durability already
	// claimed to callers can no longer be trusted.
	ff.failSync.Store(false)
	lsn2 := l.Append(&Record{Type: RecCommit, Txn: 1})
	if err := l.FlushTo(lsn2); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("FlushTo after heal = %v, want sticky ErrLogFailed", err)
	}
	if got := l.FlushedLSN(); got != 0 {
		t.Errorf("FlushedLSN = %d advanced past a failed fsync", got)
	}
}

// TestFlushToTruncateErrorFailsPermanently: if the cleanup truncate after a
// failed write also fails, a torn suffix may remain on disk ahead of the
// re-staged frames, so the log must fail permanently rather than risk
// writing duplicates after the tear.
func TestFlushToTruncateErrorFailsPermanently(t *testing.T) {
	l, ff, _ := openFaultLog(t)
	lsn := l.Append(&Record{Type: RecBegin, Txn: 1})
	ff.partialWrite.Store(true)
	ff.failTruncate.Store(true)
	if err := l.FlushTo(lsn); err == nil {
		t.Fatal("FlushTo succeeded through failing write+truncate")
	}
	ff.failTruncate.Store(false)
	if err := l.FlushTo(lsn); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("FlushTo = %v, want sticky ErrLogFailed", err)
	}
}

// TestTornTailMidBatchConcurrentAppenders models a crash that tears the
// tail of a batch written while many appenders were staging concurrently:
// recovery must keep exactly the contiguous prefix of whole records and
// accept new appends after it.
func TestTornTailMidBatchConcurrentAppenders(t *testing.T) {
	const goroutines, each = 8, 100
	path := filepath.Join(t.TempDir(), "torn.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id page.TxnID) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsn := l.Append(&Record{Type: RecAddLeafEntry, Txn: id, Pg: 11, Body: []byte("concurrent-batch-payload")})
				if i%25 == 0 {
					if err := l.FlushTo(lsn); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(page.TxnID(g + 1))
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail at several mid-record offsets and recover each time.
	for _, cut := range []int64{3, 9, 17} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, st.Size()-cut); err != nil {
			t.Fatal(err)
		}
		l2, err := OpenFileLog(path)
		if err != nil {
			t.Fatalf("recovery after %d-byte tear: %v", cut, err)
		}
		last := l2.LastLSN()
		if last == 0 || last >= goroutines*each {
			t.Fatalf("recovered LastLSN = %d after tear, want a proper prefix of %d", last, goroutines*each)
		}
		// The prefix must be contiguous and fully readable.
		n := 0
		l2.Scan(1, func(r *Record) bool {
			n++
			return true
		})
		if page.LSN(n) != last {
			t.Fatalf("scan saw %d records, want %d", n, last)
		}
		// And the log must keep working past the recovered prefix.
		if lsn := l2.Append(&Record{Type: RecEnd, Txn: 1}); lsn != last+1 {
			t.Fatalf("append after recovery got LSN %d, want %d", lsn, last+1)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashSimNothingPastFlushedSurvives asserts the crash-simulation
// contract on the in-memory log while appenders are still running: the
// surviving log holds exactly the records at or below the flushed
// watermark the moment the "crash" hit — nothing later leaks through.
func TestCrashSimNothingPastFlushedSurvives(t *testing.T) {
	l := NewMemLog()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id page.TxnID) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lsn := l.Append(&Record{Type: RecAddLeafEntry, Txn: id, Pg: 1})
				if i%50 == 0 {
					l.FlushTo(lsn)
				}
			}
		}(page.TxnID(g + 1))
	}
	for i := 0; i < 20; i++ {
		l.FlushTo(l.LastLSN())
		flushedBefore := l.FlushedLSN()
		s := l.SurvivingLog()
		flushedAfter := l.FlushedLSN()
		last := s.LastLSN()
		if last < flushedBefore || last > flushedAfter {
			t.Fatalf("survivor LastLSN = %d, want within flushed range [%d, %d]", last, flushedBefore, flushedAfter)
		}
		if s.FlushedLSN() != last {
			t.Fatalf("survivor FlushedLSN = %d, want %d", s.FlushedLSN(), last)
		}
		if _, err := s.Get(last + 1); err == nil {
			t.Fatalf("record %d past the flushed watermark survived the crash", last+1)
		}
		if last > 0 {
			if _, err := s.Get(last); err != nil {
				t.Fatalf("flushed record %d did not survive: %v", last, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestNSNVisibilityInvariant exercises the §10.1 contract the pipeline must
// preserve: a split stamps its node's NSN with the LSN Append returned, so
// any traversal that first observes a stamped NSN and then reads LastLSN
// must see LastLSN >= NSN — even while the split's record is still being
// staged. A violation would make traversals skip rightlink chases and miss
// entries moved by concurrent splits.
func TestNSNVisibilityInvariant(t *testing.T) {
	l := NewMemLog()
	var nodeNSN atomic.Uint64 // the NSN field of a simulated tree node
	stop := make(chan struct{})
	var splitters, readers sync.WaitGroup

	// Splitters: append a Split record, then stamp the node — the order
	// the real split code uses.
	for g := 0; g < 2; g++ {
		splitters.Add(1)
		go func(id page.TxnID) {
			defer splitters.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lsn := l.Append(&Record{Type: RecSplit, Txn: id, Pg: 2})
				nodeNSN.Store(uint64(lsn))
			}
		}(page.TxnID(g + 1))
	}

	// Traversals: read the node's NSN first, the global counter second.
	var violations atomic.Int64
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200000; i++ {
				nsn := page.LSN(nodeNSN.Load())
				if l.LastLSN() < nsn {
					violations.Add(1)
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	splitters.Wait()

	if n := violations.Load(); n != 0 {
		t.Fatalf("NSN visibility violated %d times: LastLSN read below an observable NSN", n)
	}
}
