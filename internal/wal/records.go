// Package wal implements the write-ahead log: record types for every entry
// of Table 1 of the paper plus transaction control records and ARIES-style
// compensation log records (CLRs), a log manager with group flush, and the
// tree-global counter (the last LSN) that doubles as the node-sequence-
// number source (§10.1).
package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/page"
)

// RecType identifies a log record type. The high bit marks a compensation
// log record (CLR) written while undoing a record of the base type: CLRs
// are redo-only and carry an UndoNext pointer that makes rollback skip the
// already-undone portion.
type RecType uint8

// ClrFlag marks a record as a CLR for its base type.
const ClrFlag RecType = 0x80

// Log record types. The middle block mirrors Table 1 of the paper.
const (
	RecInvalid RecType = iota
	// Transaction control.
	RecBegin
	RecCommit
	RecAbort
	RecEnd
	// RecDummyCLR closes a nested top action (an atomic structure
	// modification, §9.1): its UndoNext points at the record preceding
	// the action, so rollback never undoes a completed SMO.
	RecDummyCLR
	RecCheckpoint

	// Table 1 record types.
	RecParentEntryUpdate   // redo-only: BP expansion propagated to a parent entry
	RecSplit               // node split (written during recursive split)
	RecGarbageCollection   // redo-only: physical removal of committed deleted entries
	RecInternalEntryAdd    // install parent entry for a new node
	RecInternalEntryUpdate // adjust original node's parent entry after split
	RecInternalEntryDelete // remove parent entry during node deletion
	RecAddLeafEntry        // key insertion (logical undo)
	RecMarkLeafEntry       // logical deletion (logical undo)
	RecGetPage             // page allocation
	RecFreePage            // page deallocation
	RecRootChange          // root pointer update in the anchor page (root split)

	// Heap (data page) records, so that the data records the RIDs point
	// at are recoverable alongside the index.
	RecHeapInsert
	RecHeapDelete

	// RecTruncate is the head-truncation intent record: NSN carries the
	// first LSN the log intends to retain. It is written and forced durable
	// before DiscardBefore rewrites the file, making the cut a logged
	// operation; Txn is zero so analysis, redo, and undo all ignore it.
	RecTruncate

	numRecTypes
)

var recTypeNames = map[RecType]string{
	RecBegin:               "Begin",
	RecCommit:              "Commit",
	RecAbort:               "Abort",
	RecEnd:                 "End",
	RecDummyCLR:            "DummyCLR",
	RecCheckpoint:          "Checkpoint",
	RecParentEntryUpdate:   "Parent-Entry-Update",
	RecSplit:               "Split",
	RecGarbageCollection:   "Garbage-Collection",
	RecInternalEntryAdd:    "Internal-Entry-Add",
	RecInternalEntryUpdate: "Internal-Entry-Update",
	RecInternalEntryDelete: "Internal-Entry-Delete",
	RecAddLeafEntry:        "Add-Leaf-Entry",
	RecMarkLeafEntry:       "Mark-Leaf-Entry",
	RecGetPage:             "Get-Page",
	RecFreePage:            "Free-Page",
	RecRootChange:          "Root-Change",
	RecHeapInsert:          "Heap-Insert",
	RecHeapDelete:          "Heap-Delete",
	RecTruncate:            "Truncate",
}

// Base returns the type with the CLR flag stripped.
func (t RecType) Base() RecType { return t &^ ClrFlag }

// IsCLR reports whether the record is a compensation record.
func (t RecType) IsCLR() bool { return t&ClrFlag != 0 }

// String implements fmt.Stringer.
func (t RecType) String() string {
	name, ok := recTypeNames[t.Base()]
	if !ok {
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
	if t.IsCLR() {
		return "CLR(" + name + ")"
	}
	return name
}

// Record is a log record. Payload fields are used according to Type; unused
// fields are zero.
type Record struct {
	LSN      page.LSN
	Type     RecType
	Txn      page.TxnID
	PrevLSN  page.LSN // previous record of the same transaction (backchain)
	UndoNext page.LSN // CLRs and dummy CLRs: next record to undo

	// Pages touched. Pg is the primary page; Pg2 the secondary (the new
	// page of a split, or the parent during BP propagation).
	Pg  page.PageID
	Pg2 page.PageID

	// NSN-related state captured for redo/undo and for logical undo
	// rightlink chasing.
	NSN      page.LSN
	OldNSN   page.LSN
	OldRight page.PageID

	// Level of the page being allocated or split.
	Level uint16

	// Entry bodies. Body is the primary encoded entry (or heap record);
	// OldBody the prior value for undo; Moved the set of entry bodies
	// redistributed by a split or removed by garbage collection.
	Body    []byte
	OldBody []byte
	Moved   [][]byte

	// RID for heap records.
	RID page.RID

	// Checkpoint payload.
	ATT []TxnState
	DPT []DirtyPage
}

// TxnState is one active-transaction-table entry in a checkpoint.
type TxnState struct {
	ID       page.TxnID
	LastLSN  page.LSN
	UndoNext page.LSN
}

// DirtyPage is one dirty-page-table entry in a checkpoint.
type DirtyPage struct {
	ID     page.PageID
	RecLSN page.LSN
}

// String renders the record compactly for traces and the log-dump tool.
func (r *Record) String() string {
	return fmt.Sprintf("%d %s txn=%d prev=%d undoNext=%d pg=%d pg2=%d",
		r.LSN, r.Type, r.Txn, r.PrevLSN, r.UndoNext, r.Pg, r.Pg2)
}

// Binary encoding. All integers big-endian. Byte slices are length-prefixed
// with u32; slice-of-slices with a u32 count.

func putBytes(b *bytes.Buffer, p []byte) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(p)))
	b.Write(n[:])
	b.Write(p)
}

func putByteSlices(b *bytes.Buffer, ps [][]byte) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(ps)))
	b.Write(n[:])
	for _, p := range ps {
		putBytes(b, p)
	}
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[r.off:r.off+n])
	r.off += n
	return v
}

func (r *reader) byteSlices() [][]byte {
	n := int(r.u32())
	if r.err != nil || n > len(r.b) {
		r.fail()
		return nil
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.bytes())
		if r.err != nil {
			return nil
		}
	}
	return out
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wal: truncated record at offset %d of %d", r.off, len(r.b))
	}
}

// encodePayload serializes everything after the common header.
func (r *Record) encodePayload(b *bytes.Buffer) {
	var scratch [8]byte
	u32 := func(v uint32) { binary.BigEndian.PutUint32(scratch[:4], v); b.Write(scratch[:4]) }
	u64 := func(v uint64) { binary.BigEndian.PutUint64(scratch[:], v); b.Write(scratch[:8]) }
	u16 := func(v uint16) { binary.BigEndian.PutUint16(scratch[:2], v); b.Write(scratch[:2]) }

	u32(uint32(r.Pg))
	u32(uint32(r.Pg2))
	u64(uint64(r.NSN))
	u64(uint64(r.OldNSN))
	u32(uint32(r.OldRight))
	u16(r.Level)
	u32(uint32(r.RID.Page))
	u16(r.RID.Slot)
	putBytes(b, r.Body)
	putBytes(b, r.OldBody)
	putByteSlices(b, r.Moved)
	u32(uint32(len(r.ATT)))
	for _, ts := range r.ATT {
		u64(uint64(ts.ID))
		u64(uint64(ts.LastLSN))
		u64(uint64(ts.UndoNext))
	}
	u32(uint32(len(r.DPT)))
	for _, dp := range r.DPT {
		u32(uint32(dp.ID))
		u64(uint64(dp.RecLSN))
	}
}

func (r *Record) decodePayload(rd *reader) error {
	r.Pg = page.PageID(rd.u32())
	r.Pg2 = page.PageID(rd.u32())
	r.NSN = page.LSN(rd.u64())
	r.OldNSN = page.LSN(rd.u64())
	r.OldRight = page.PageID(rd.u32())
	r.Level = rd.u16()
	r.RID.Page = page.PageID(rd.u32())
	r.RID.Slot = rd.u16()
	r.Body = rd.bytes()
	r.OldBody = rd.bytes()
	r.Moved = rd.byteSlices()
	natt := int(rd.u32())
	if rd.err == nil && natt >= 0 && natt < 1<<20 {
		r.ATT = make([]TxnState, natt)
		for i := range r.ATT {
			r.ATT[i].ID = page.TxnID(rd.u64())
			r.ATT[i].LastLSN = page.LSN(rd.u64())
			r.ATT[i].UndoNext = page.LSN(rd.u64())
		}
	}
	ndpt := int(rd.u32())
	if rd.err == nil && ndpt >= 0 && ndpt < 1<<20 {
		r.DPT = make([]DirtyPage, ndpt)
		for i := range r.DPT {
			r.DPT[i].ID = page.PageID(rd.u32())
			r.DPT[i].RecLSN = page.LSN(rd.u64())
		}
	}
	// Normalize empties so that round trips compare equal.
	if len(r.Body) == 0 {
		r.Body = nil
	}
	if len(r.OldBody) == 0 {
		r.OldBody = nil
	}
	if len(r.Moved) == 0 {
		r.Moved = nil
	}
	if len(r.ATT) == 0 {
		r.ATT = nil
	}
	if len(r.DPT) == 0 {
		r.DPT = nil
	}
	return rd.err
}

// Encode serializes the full record (header + payload), without framing.
func (r *Record) Encode() []byte {
	var b bytes.Buffer
	var scratch [8]byte
	b.WriteByte(byte(r.Type))
	binary.BigEndian.PutUint64(scratch[:], uint64(r.LSN))
	b.Write(scratch[:])
	binary.BigEndian.PutUint64(scratch[:], uint64(r.Txn))
	b.Write(scratch[:])
	binary.BigEndian.PutUint64(scratch[:], uint64(r.PrevLSN))
	b.Write(scratch[:])
	binary.BigEndian.PutUint64(scratch[:], uint64(r.UndoNext))
	b.Write(scratch[:])
	r.encodePayload(&b)
	return b.Bytes()
}

// DecodeRecord parses an encoded record.
func DecodeRecord(b []byte) (*Record, error) {
	rd := &reader{b: b}
	r := &Record{}
	r.Type = RecType(rd.u8())
	r.LSN = page.LSN(rd.u64())
	r.Txn = page.TxnID(rd.u64())
	r.PrevLSN = page.LSN(rd.u64())
	r.UndoNext = page.LSN(rd.u64())
	if err := r.decodePayload(rd); err != nil {
		return nil, err
	}
	if r.Type.Base() == RecInvalid || r.Type.Base() >= numRecTypes {
		return nil, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	return r, nil
}
