package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/page"
)

func TestAppendAssignsSequentialLSNs(t *testing.T) {
	l := NewMemLog()
	for i := 1; i <= 5; i++ {
		lsn := l.Append(&Record{Type: RecBegin, Txn: page.TxnID(i)})
		if lsn != page.LSN(i) {
			t.Errorf("append %d: LSN = %d", i, lsn)
		}
	}
	if l.LastLSN() != 5 {
		t.Errorf("LastLSN = %d", l.LastLSN())
	}
}

func TestGetAndScan(t *testing.T) {
	l := NewMemLog()
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Append(&Record{Type: RecCommit, Txn: 1})
	l.Append(&Record{Type: RecEnd, Txn: 1})

	r, err := l.Get(2)
	if err != nil || r.Type != RecCommit {
		t.Errorf("Get(2) = %v, %v", r, err)
	}
	if _, err := l.Get(0); err == nil {
		t.Error("Get(0) should fail")
	}
	if _, err := l.Get(4); err == nil {
		t.Error("Get past end should fail")
	}

	var seen []RecType
	l.Scan(2, func(r *Record) bool {
		seen = append(seen, r.Type)
		return true
	})
	if len(seen) != 2 || seen[0] != RecCommit || seen[1] != RecEnd {
		t.Errorf("Scan from 2: %v", seen)
	}

	count := 0
	l.Scan(1, func(r *Record) bool { count++; return false })
	if count != 1 {
		t.Errorf("early-stop scan visited %d", count)
	}
}

func TestRecordEncodeDecodeAllFields(t *testing.T) {
	r := &Record{
		Type:     RecSplit,
		Txn:      7,
		PrevLSN:  5,
		UndoNext: 3,
		Pg:       10,
		Pg2:      11,
		NSN:      99,
		OldNSN:   88,
		OldRight: 12,
		Level:    2,
		Body:     []byte("body"),
		OldBody:  []byte("old"),
		Moved:    [][]byte{[]byte("m1"), []byte("m2"), {}},
		RID:      page.RID{Page: 3, Slot: 9},
		ATT:      []TxnState{{ID: 1, LastLSN: 2, UndoNext: 3}},
		DPT:      []DirtyPage{{ID: 4, RecLSN: 5}},
	}
	r.LSN = 42
	got, err := DecodeRecord(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, r)
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	if _, err := DecodeRecord(nil); err == nil {
		t.Error("decode nil should fail")
	}
	r := &Record{Type: RecBegin, Txn: 1}
	enc := r.Encode()
	if _, err := DecodeRecord(enc[:10]); err == nil {
		t.Error("decode truncated should fail")
	}
	bad := append([]byte{}, enc...)
	bad[0] = 0 // RecInvalid
	if _, err := DecodeRecord(bad); err == nil {
		t.Error("decode invalid type should fail")
	}
	bad[0] = byte(numRecTypes)
	if _, err := DecodeRecord(bad); err == nil {
		t.Error("decode out-of-range type should fail")
	}
}

func TestClrFlag(t *testing.T) {
	tp := RecAddLeafEntry | ClrFlag
	if !tp.IsCLR() {
		t.Error("IsCLR false")
	}
	if tp.Base() != RecAddLeafEntry {
		t.Error("Base mismatch")
	}
	if tp.String() != "CLR(Add-Leaf-Entry)" {
		t.Errorf("String = %q", tp.String())
	}
	if RecSplit.String() != "Split" {
		t.Errorf("String = %q", RecSplit.String())
	}
}

func TestFlushWatermarkMemLog(t *testing.T) {
	l := NewMemLog()
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Append(&Record{Type: RecCommit, Txn: 1})
	if l.FlushedLSN() != 0 {
		t.Errorf("FlushedLSN = %d before flush", l.FlushedLSN())
	}
	if err := l.FlushTo(1); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() != 1 {
		t.Errorf("FlushedLSN = %d, want 1", l.FlushedLSN())
	}
	// Flushing past the end clamps.
	if err := l.FlushTo(100); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() != 2 {
		t.Errorf("FlushedLSN = %d, want 2", l.FlushedLSN())
	}
}

func TestSurvivingLogModelsCrash(t *testing.T) {
	l := NewMemLog()
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Append(&Record{Type: RecAddLeafEntry, Txn: 1, Pg: 5})
	l.FlushTo(2)
	l.Append(&Record{Type: RecCommit, Txn: 1}) // never flushed

	s := l.SurvivingLog()
	if s.LastLSN() != 2 {
		t.Errorf("survivor LastLSN = %d, want 2", s.LastLSN())
	}
	if _, err := s.Get(3); err == nil {
		t.Error("unflushed record survived crash")
	}
	// Survivor keeps appending where the flushed prefix ended.
	if lsn := s.Append(&Record{Type: RecAbort, Txn: 1}); lsn != 3 {
		t.Errorf("survivor next LSN = %d, want 3", lsn)
	}
}

func TestFileLogPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: RecBegin, Txn: 9})
	l.Append(&Record{Type: RecAddLeafEntry, Txn: 9, Pg: 2, Body: []byte("k")})
	l.Append(&Record{Type: RecCommit, Txn: 9})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 3 {
		t.Fatalf("reopened LastLSN = %d, want 3", l2.LastLSN())
	}
	r, err := l2.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Type != RecAddLeafEntry || r.Txn != 9 || r.Pg != 2 || string(r.Body) != "k" {
		t.Errorf("record 2 = %+v", r)
	}
	// Appends continue after the recovered prefix.
	if lsn := l2.Append(&Record{Type: RecEnd, Txn: 9}); lsn != 4 {
		t.Errorf("next LSN = %d, want 4", lsn)
	}
	if err := l2.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestFileLogTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Append(&Record{Type: RecCommit, Txn: 1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file by appending a torn frame.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 50, 1, 2, 3, 4, 9, 9}) // claims 50 bytes, has 2
	f.Close()

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 2 {
		t.Errorf("LastLSN = %d after torn tail, want 2", l2.LastLSN())
	}
	// The torn bytes must be gone so a new append round-trips.
	l2.Append(&Record{Type: RecAbort, Txn: 1})
	l2.FlushAll()
	l3, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.LastLSN() != 3 {
		t.Errorf("LastLSN = %d after re-append, want 3", l3.LastLSN())
	}
}

func TestFileLogBadCRCDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Append(&Record{Type: RecCommit, Txn: 1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the last record's body.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastLSN() != 1 {
		t.Errorf("LastLSN = %d after CRC corruption, want 1", l2.LastLSN())
	}
}

func TestCheckpointTracking(t *testing.T) {
	l := NewMemLog()
	l.Append(&Record{Type: RecBegin, Txn: 1})
	ck := l.Append(&Record{Type: RecCheckpoint, ATT: []TxnState{{ID: 1, LastLSN: 1}}})
	l.Append(&Record{Type: RecCommit, Txn: 1})
	if l.MasterCheckpoint() != ck {
		t.Errorf("MasterCheckpoint = %d, want %d", l.MasterCheckpoint(), ck)
	}
	l.FlushAll()
	s := l.SurvivingLog()
	if s.MasterCheckpoint() != ck {
		t.Errorf("survivor MasterCheckpoint = %d, want %d", s.MasterCheckpoint(), ck)
	}
}

func TestConcurrentAppendersGetDistinctLSNs(t *testing.T) {
	l := NewMemLog()
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	lsns := make(chan page.LSN, goroutines*per)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsns <- l.Append(&Record{Type: RecBegin, Txn: page.TxnID(g)})
			}
		}(g)
	}
	wg.Wait()
	close(lsns)
	seen := make(map[page.LSN]bool)
	for lsn := range lsns {
		if seen[lsn] {
			t.Fatalf("duplicate LSN %d", lsn)
		}
		seen[lsn] = true
	}
	if len(seen) != goroutines*per {
		t.Errorf("got %d distinct LSNs", len(seen))
	}
	if l.LastLSN() != goroutines*per {
		t.Errorf("LastLSN = %d", l.LastLSN())
	}
}

// Property: Encode/Decode round-trips arbitrary records.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(typ uint8, txn, prev, undoNext uint64, pg, pg2 uint32, body, oldBody []byte, lsn uint64) bool {
		base := RecType(typ%uint8(numRecTypes-1)) + 1
		r := &Record{
			LSN:      page.LSN(lsn),
			Type:     base,
			Txn:      page.TxnID(txn),
			PrevLSN:  page.LSN(prev),
			UndoNext: page.LSN(undoNext),
			Pg:       page.PageID(pg),
			Pg2:      page.PageID(pg2),
		}
		if len(body) > 0 {
			r.Body = body
		}
		if len(oldBody) > 0 {
			r.OldBody = oldBody
		}
		got, err := DecodeRecord(r.Encode())
		if err != nil {
			return false
		}
		return got.Type == r.Type && got.Txn == r.Txn && got.LSN == r.LSN &&
			got.PrevLSN == r.PrevLSN && got.UndoNext == r.UndoNext &&
			got.Pg == r.Pg && got.Pg2 == r.Pg2 &&
			bytes.Equal(got.Body, r.Body) && bytes.Equal(got.OldBody, r.OldBody)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsCounters(t *testing.T) {
	l := NewMemLog()
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Append(&Record{Type: RecBegin, Txn: 2})
	l.FlushAll()
	appends, syncs := l.Stats()
	if appends != 2 || syncs != 1 {
		t.Errorf("stats = %d appends %d syncs", appends, syncs)
	}
}

func TestDiscardBeforeMemLog(t *testing.T) {
	l := NewMemLog()
	for i := 0; i < 10; i++ {
		l.Append(&Record{Type: RecBegin, Txn: page.TxnID(i + 1)})
	}
	l.FlushAll()
	if _, err := l.DiscardBefore(6); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 5 {
		t.Errorf("Base = %d, want 5", l.Base())
	}
	if _, err := l.Get(5); err == nil {
		t.Error("discarded record still readable")
	}
	if r, err := l.Get(6); err != nil || r.Txn != 6 {
		t.Errorf("Get(6) = %v, %v", r, err)
	}
	// LSN numbering continues.
	if lsn := l.Append(&Record{Type: RecCommit, Txn: 6}); lsn != 11 {
		t.Errorf("next LSN = %d, want 11", lsn)
	}
	var seen int
	l.Scan(1, func(r *Record) bool { seen++; return true })
	if seen != 6 {
		t.Errorf("Scan visited %d records, want 6", seen)
	}
	// Idempotent and clamped by flush watermark.
	if _, err := l.DiscardBefore(3); err != nil {
		t.Fatal(err)
	}
	if _, err := l.DiscardBefore(100); err != nil {
		t.Fatal(err)
	}
	if l.Base() > l.FlushedLSN() {
		t.Errorf("Base %d beyond flushed %d", l.Base(), l.FlushedLSN())
	}
}

func TestDiscardBeforeFileLogPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		l.Append(&Record{Type: RecBegin, Txn: page.TxnID(i + 1)})
	}
	l.FlushAll()
	discarded, err := l.DiscardBefore(15)
	if err != nil {
		t.Fatal(err)
	}
	if discarded <= 0 {
		t.Errorf("discarded = %d bytes, want > 0", discarded)
	}
	l.Append(&Record{Type: RecCommit, Txn: 20}) // LSN 22: 21 is the truncation intent
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Base() != 14 {
		t.Errorf("reopened Base = %d, want 14", l2.Base())
	}
	if l2.LastLSN() != 22 {
		t.Errorf("reopened LastLSN = %d, want 22", l2.LastLSN())
	}
	if r, err := l2.Get(21); err != nil || r.Type != RecTruncate || r.NSN != 15 {
		t.Errorf("intent record Get(21) = %v, %v, want Truncate NSN=15", r, err)
	}
	if r, err := l2.Get(15); err != nil || r.Txn != 15 {
		t.Errorf("Get(15) = %v, %v", r, err)
	}
	if _, err := l2.Get(14); err == nil {
		t.Error("pre-truncation record resurrected")
	}
}

func TestGroupCommitConcurrentFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const committers = 16
	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				lsn := l.Append(&Record{Type: RecCommit, Txn: page.TxnID(c + 1)})
				if err := l.FlushTo(lsn); err != nil {
					t.Error(err)
					return
				}
				if l.FlushedLSN() < lsn {
					t.Errorf("flushed %d < committed %d", l.FlushedLSN(), lsn)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	appends, syncs := l.Stats()
	if appends != committers*20 {
		t.Errorf("appends = %d", appends)
	}
	// Group commit: syncs should be well below one per commit under
	// contention. (Not asserted strictly — timing dependent — but the
	// durability invariant above is.)
	t.Logf("group commit: %d appends, %d syncs", appends, syncs)
}
