package wal

import (
	"bytes"
	"testing"

	"repro/internal/page"
)

// FuzzRecordDecode feeds arbitrary bytes to the log-record codec.
// DecodeRecord must never panic — torn tails and bit-flipped records reach
// it through crash recovery and the replication stream — and anything it
// accepts must re-encode to a stable fixpoint (decode(encode(r)) == r).
func FuzzRecordDecode(f *testing.F) {
	seeds := []*Record{
		{Type: RecBegin, LSN: 1, Txn: 7},
		{Type: RecCommit, LSN: 2, Txn: 7, PrevLSN: 1},
		{
			Type: RecAddLeafEntry, LSN: 3, Txn: 7, PrevLSN: 2,
			Pg: 4, Body: []byte("key-body"),
			RID: page.RID{Page: 9, Slot: 2},
		},
		{
			Type: RecMarkLeafEntry | ClrFlag, LSN: 4, Txn: 7,
			UndoNext: 1, Pg: 4, OldBody: []byte("old"),
		},
		{
			Type: RecSplit, LSN: 5, Txn: 8, Pg: 4, Pg2: 11,
			NSN: 5, OldNSN: 2, OldRight: 6, Level: 1,
			Moved: [][]byte{[]byte("a"), []byte("bb"), nil},
		},
		{
			Type: RecCheckpoint, LSN: 6,
			ATT: []TxnState{{ID: 7, LastLSN: 4, UndoNext: 1}},
			DPT: []DirtyPage{{ID: 4, RecLSN: 3}, {ID: 11, RecLSN: 5}},
		},
		{Type: RecTruncate, LSN: 7, NSN: 3},
	}
	for _, r := range seeds {
		f.Add(r.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(seeds[2].Encode()[:10]) // torn mid-header
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err != nil {
			return // rejected garbage: the only requirement is no panic
		}
		enc := r.Encode()
		r2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode(encode(r)) failed: %v\nrecord: %v", err, r)
		}
		if enc2 := r2.Encode(); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not a fixpoint:\n first: %x\nsecond: %x", enc, enc2)
		}
	})
}
