package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/page"
	"repro/internal/stats"
)

// ErrNoSuchLSN is returned by Get for an LSN outside the log.
var ErrNoSuchLSN = errors.New("wal: no such LSN")

// Log is the log manager. It assigns LSNs (1, 2, 3, ...), keeps every
// record in memory for fast access, and optionally persists records to a
// file with CRC framing. FlushTo provides the WAL rule for the buffer pool.
//
// The last assigned LSN is the tree-global counter of the GiST concurrency
// protocol: a node split's NSN is the LSN of its Split record, so the
// counter is incremented by the split implicitly and is recoverable without
// extra log records (§10.1).
type Log struct {
	mu       sync.Mutex
	base     page.LSN  // LSNs 1..base have been discarded (head truncation)
	records  []*Record // records[i] has LSN base+i+1
	flushed  page.LSN  // highest LSN durable in the file
	file     *os.File // nil for a purely in-memory log
	pending  []byte   // encoded-but-unflushed suffix
	masterCk page.LSN // LSN of the most recent checkpoint record

	reg     *stats.Registry
	appends *stats.Counter
	syncs   *stats.Counter // physical flushes (group commit metric)

	// Group commit: a flush in progress covers all appends before it;
	// concurrent committers wait for the in-flight flush instead of
	// issuing their own sync.
	flushing  bool
	flushCond *sync.Cond
}

// NewMemLog returns an in-memory log (no durability; crash simulation uses
// SurvivingLog to model what a file would have retained).
func NewMemLog() *Log {
	l := &Log{}
	l.flushCond = sync.NewCond(&l.mu)
	l.initStats()
	return l
}

// initStats wires the log's counters into its registry; every constructor
// path (NewMemLog, OpenFileLog, SurvivingLog, TruncatedCopy) runs it.
func (l *Log) initStats() {
	l.reg = stats.NewRegistry()
	l.appends = l.reg.Counter("wal.appends")
	l.syncs = l.reg.Counter("wal.syncs")
}

// Metrics exposes the log's counter registry.
func (l *Log) Metrics() *stats.Registry { return l.reg }

// fileHeader is the 8-byte magic prefix of a log file.
var fileHeader = []byte("GiSTWAL1")

// OpenFileLog opens or creates a durable log at path, scanning any existing
// records to rebuild the in-memory index. A trailing torn record (bad CRC
// or truncation) ends the scan; everything before it is kept.
func OpenFileLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{file: f}
	l.flushCond = sync.NewCond(&l.mu)
	l.initStats()
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(fileHeader); err != nil {
			f.Close()
			return nil, err
		}
		return l, nil
	}
	if err := l.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// scan reads all valid records from the file into memory.
func (l *Log) scan() error {
	if _, err := l.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	hdr := make([]byte, len(fileHeader))
	if _, err := io.ReadFull(l.file, hdr); err != nil {
		return fmt.Errorf("wal: header: %w", err)
	}
	if string(hdr) != string(fileHeader) {
		return fmt.Errorf("wal: bad log file header")
	}
	offset := int64(len(fileHeader))
	var frame [8]byte
	for {
		if _, err := io.ReadFull(l.file, frame[:]); err != nil {
			break // clean EOF or torn tail
		}
		n := binary.BigEndian.Uint32(frame[:4])
		crc := binary.BigEndian.Uint32(frame[4:])
		if n > 1<<26 {
			break
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(l.file, body); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body) != crc {
			break
		}
		r, err := DecodeRecord(body)
		if err != nil {
			break
		}
		if len(l.records) == 0 {
			// The file may start past LSN 1 after head truncation.
			l.base = r.LSN - 1
		} else if r.LSN != l.base+page.LSN(len(l.records)+1) {
			return fmt.Errorf("wal: LSN gap: record %d at position %d", r.LSN, len(l.records)+1)
		}
		l.records = append(l.records, r)
		if r.Type == RecCheckpoint {
			l.masterCk = r.LSN
		}
		offset += 8 + int64(n)
	}
	// Truncate any torn tail so future appends start clean.
	if err := l.file.Truncate(offset); err != nil {
		return err
	}
	if _, err := l.file.Seek(offset, io.SeekStart); err != nil {
		return err
	}
	l.flushed = l.base + page.LSN(len(l.records))
	return nil
}

// Append assigns the next LSN to r and adds it to the log. The record
// becomes durable only after a FlushTo covering its LSN.
func (l *Log) Append(r *Record) page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.base + page.LSN(len(l.records)+1)
	l.records = append(l.records, r)
	l.appends.Inc()
	if r.Type == RecCheckpoint {
		l.masterCk = r.LSN
	}
	if l.file != nil {
		body := r.Encode()
		var frame [8]byte
		binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
		binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
		l.pending = append(l.pending, frame[:]...)
		l.pending = append(l.pending, body...)
	}
	return r.LSN
}

// LastLSN returns the highest assigned LSN — the tree-global counter value
// read by traversing operations.
func (l *Log) LastLSN() page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + page.LSN(len(l.records))
}

// FlushedLSN returns the highest durable LSN.
func (l *Log) FlushedLSN() page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// FlushTo makes the log durable up to at least lsn. It implements
// buffer.LogFlusher. For an in-memory log it only advances the flushed
// watermark (used by crash simulation to decide which records survive).
func (l *Log) FlushTo(lsn page.LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if max := l.base + page.LSN(len(l.records)); lsn > max {
		lsn = max
	}
	for {
		if lsn <= l.flushed {
			return nil
		}
		if !l.flushing {
			break
		}
		// Group commit: an in-flight flush will cover every record
		// appended before it started; wait and re-check rather than
		// queueing another sync.
		l.flushCond.Wait()
	}
	if l.file != nil {
		// Group flush: everything pending goes out in one write.
		l.flushing = true
		buf := l.pending
		l.pending = nil
		covers := l.base + page.LSN(len(l.records))
		l.mu.Unlock()
		_, werr := l.file.Write(buf)
		if werr == nil {
			werr = l.file.Sync()
		}
		l.mu.Lock()
		l.flushing = false
		l.flushCond.Broadcast()
		if werr != nil {
			return fmt.Errorf("wal: flush: %w", werr)
		}
		if covers > l.flushed {
			l.flushed = covers
		}
	} else {
		l.flushed = lsn
	}
	l.syncs.Inc()
	return nil
}

// FlushAll forces the entire log durable.
func (l *Log) FlushAll() error { return l.FlushTo(page.LSN(1 << 62)) }

// Get returns the record with the given LSN.
func (l *Log) Get(lsn page.LSN) (*Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn <= l.base || lsn > l.base+page.LSN(len(l.records)) {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchLSN, lsn)
	}
	return l.records[lsn-l.base-1], nil
}

// Scan calls fn for every record with LSN >= from, in LSN order, stopping
// early if fn returns false.
func (l *Log) Scan(from page.LSN, fn func(*Record) bool) {
	if from < 1 {
		from = 1
	}
	for {
		l.mu.Lock()
		if from <= l.base {
			from = l.base + 1
		}
		if from > l.base+page.LSN(len(l.records)) {
			l.mu.Unlock()
			return
		}
		r := l.records[from-l.base-1]
		l.mu.Unlock()
		if !fn(r) {
			return
		}
		from++
	}
}

// MasterCheckpoint returns the LSN of the latest checkpoint record, or 0.
func (l *Log) MasterCheckpoint() page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.masterCk
}

// Stats returns the number of appends and physical flushes, read through
// the stats registry.
func (l *Log) Stats() (appends, syncs int64) {
	return l.appends.Load(), l.syncs.Load()
}

// TruncatedCopy returns a new in-memory log holding only records with
// LSN <= lsn, regardless of flush state. The recovery experiments use it to
// place a crash point after any chosen record.
func (l *Log) TruncatedCopy(lsn page.LSN) *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	if max := l.base + page.LSN(len(l.records)); lsn > max {
		lsn = max
	}
	if lsn < l.base {
		lsn = l.base
	}
	s := NewMemLog()
	s.base = l.base
	s.records = append(s.records, l.records[:lsn-l.base]...)
	s.flushed = lsn
	for _, r := range s.records {
		if r.Type == RecCheckpoint {
			s.masterCk = r.LSN
		}
	}
	return s
}

// DiscardBefore drops all records with LSN < lsn — head truncation after a
// checkpoint has made everything before the redo point unnecessary for
// restart. Only durable, sub-checkpoint prefixes may be discarded; the
// caller (recovery.Checkpoint) guarantees that. For a file-backed log the
// surviving suffix is rewritten to the file.
func (l *Log) DiscardBefore(lsn page.LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn <= l.base+1 {
		return nil
	}
	if lsn > l.flushed+1 {
		lsn = l.flushed + 1
	}
	n := int(lsn - 1 - l.base) // records to drop
	if n <= 0 {
		return nil
	}
	if n > len(l.records) {
		n = len(l.records)
	}
	l.records = append([]*Record(nil), l.records[n:]...)
	l.base += page.LSN(n)
	if l.file != nil {
		// Rewrite the file with the surviving suffix.
		if err := l.file.Truncate(int64(len(fileHeader))); err != nil {
			return err
		}
		if _, err := l.file.Seek(int64(len(fileHeader)), io.SeekStart); err != nil {
			return err
		}
		var out []byte
		for _, r := range l.records {
			if r.LSN > l.flushed {
				break
			}
			body := r.Encode()
			var frame [8]byte
			binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
			binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
			out = append(out, frame[:]...)
			out = append(out, body...)
		}
		if _, err := l.file.Write(out); err != nil {
			return err
		}
		if err := l.file.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Base returns the truncation point: LSNs at or below it are discarded.
func (l *Log) Base() page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// SurvivingLog models a crash of an in-memory log: it returns a new Log
// holding only the records that had been flushed. For a file log, reopening
// the file achieves the same.
func (l *Log) SurvivingLog() *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := NewMemLog()
	s.base = l.base
	s.records = append(s.records, l.records[:l.flushed-l.base]...)
	s.flushed = l.flushed
	for _, r := range s.records {
		if r.Type == RecCheckpoint {
			s.masterCk = r.LSN
		}
	}
	return s
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	if err := l.FlushAll(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file != nil {
		return l.file.Close()
	}
	return nil
}
