package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/page"
	"repro/internal/shards"
	"repro/internal/stats"
)

// ErrNoSuchLSN is returned by Get for an LSN outside the log.
var ErrNoSuchLSN = errors.New("wal: no such LSN")

// ErrLogFailed wraps the first unrecoverable I/O error; once set, every
// durability request fails with it (the log refuses to advance the flushed
// watermark past bytes whose fate on disk is unknown).
var ErrLogFailed = errors.New("wal: log failed")

// File is the slice of *os.File the log uses, split out so the failure
// tests and the crash-point harness can inject write and fsync faults.
type File interface {
	io.ReadWriteSeeker
	io.Closer
	Truncate(int64) error
	Sync() error
	Stat() (os.FileInfo, error)
}

// Log is the log manager, organized as an append pipeline:
//
//	reserve (atomic fetch-add)  →  encode + CRC (no lock)  →
//	stage (per-shard buffer)    →  seal (ordered drain)    →
//	flush (dedicated goroutine, one fsync per batch)
//
// An appender reserves its LSN with a single atomic add — so LastLSN and
// FlushedLSN, the traversal hot path, are lock-free loads — encodes and
// checksums the record body outside any lock, and parks the finished frame
// in a staging shard. A short ordered drain (the only serialized step, a
// few pointer moves per record) seals staged records into the in-memory
// index and their frames into the pending batch in strict LSN order.
// Committers do not write or sync the file themselves: FlushTo parks the
// caller on a commit queue and a dedicated flusher goroutine drains the
// batch with one write+fsync, releasing every waiter the batch covered
// (group commit).
//
// The last assigned LSN is the tree-global counter of the GiST concurrency
// protocol: a node split's NSN is the LSN of its Split record, so the
// counter is incremented by the split implicitly and is recoverable without
// extra log records (§10.1). The pipeline preserves the §10.1 visibility
// invariant by construction: the reservation advances the counter before
// Append returns, and a split can stamp its NSN on a node only after Append
// has returned that LSN — so any NSN a traversal can observe on a reachable
// node is ≤ every subsequent LastLSN read, even while the record itself is
// still being encoded or staged.
type Log struct {
	// Hot-path watermarks, all lock-free loads.
	next    atomic.Uint64 // last reserved LSN (LastLSN)
	sealed  atomic.Uint64 // every record at or below it is published in order
	flushed atomic.Uint64 // highest durable LSN (FlushedLSN)

	// stage is the lock-free staging ring between reservation and seal:
	// slot lsn&mask holds the record reserved at lsn until the ordered
	// drain consumes it. Appenders publish with one atomic store; no lock.
	stage     []stageSlot
	stageMask uint64

	// mu guards the sealed state: the in-memory record index, the pending
	// frame batch, head truncation, and the sticky failure. The critical
	// sections move pointers only; encoding and I/O happen outside.
	mu           sync.Mutex
	base         page.LSN  // LSNs 1..base have been discarded (head truncation)
	records      []*Record // records[i] has LSN base+i+1; contiguous (sealed prefix)
	pending      []byte    // sealed, encoded frames not yet handed to a flush
	pendingCount int64     // records in pending
	masterCk     page.LSN  // LSN of the most recent checkpoint record
	failed       error     // sticky: set when the file can no longer be trusted

	// File state. ioMu serializes batch cuts and all file I/O so batches
	// reach the file in LSN order no matter which path runs them; it is
	// always taken before mu, never while holding it. goodOffset is the
	// file length known written (touched only under ioMu). truncFile is the
	// head-truncation sidecar journal: DiscardBefore stages the surviving
	// suffix there (write+sync) before rewriting the main file, so a crash
	// at any byte of the rewrite is repaired idempotently at the next open.
	file       File
	truncFile  File
	ioMu       sync.Mutex
	goodOffset int64

	// appended counts bytes appended over the log's lifetime (frame bytes
	// for file logs, an encoding-size estimate for in-memory logs); the
	// maintenance checkpointer uses the delta since its last checkpoint as
	// its byte trigger.
	appended atomic.Int64

	// Commit queue and flusher goroutine (file-backed logs only).
	qmu       sync.Mutex
	waiters   []*flushWaiter
	flusherOn bool
	kick      chan struct{}
	stop      chan struct{}
	flusherWG sync.WaitGroup

	// Flushed-watermark watchers (log shipping): every advance of the
	// flushed watermark pokes each registered channel (non-blocking; the
	// channels are buffered depth 1, so a slow watcher coalesces pokes).
	watchMu  sync.Mutex
	watchers map[chan struct{}]struct{}

	reg          *stats.Registry
	appends      *stats.Counter // LSN reservations
	syncs        *stats.Counter // physical flushes (group commit metric)
	stageStalls  *stats.Counter // appends that could not publish immediately
	batchRecords *stats.Counter // records flushed, cumulative (÷ syncs = batch size)
	batchBytes   *stats.Counter // bytes flushed, cumulative
	fsyncNanos   *stats.Counter // time spent in fsync, cumulative
	groupWaits   *stats.Counter // committers parked on the commit queue
	coalesced    *stats.Counter // commit records published with their force request
	fsyncHist    *stats.Histogram // per-fsync latency distribution
}

// stageSlot is one ring slot of the reservation→seal handoff buffer. seq
// holds the LSN whose record the slot carries (0 = free); the atomic store
// of seq publishes rec/frame to the drain (release/acquire pairing).
type stageSlot struct {
	seq   atomic.Uint64
	rec   *Record
	frame []byte // pre-encoded, CRC-framed bytes (nil for in-memory logs)
	_     [24]byte
}

// flushWaiter is one parked committer: released (once) when the flushed
// watermark passes lsn or the log fails.
type flushWaiter struct {
	lsn page.LSN
	ch  chan error
}

// flushBacklog is the pending-batch size that triggers a write-behind
// flush even with no committer waiting, bounding batch latency and memory.
const flushBacklog = 256 << 10

// drainEvery is the append-count stride between designated seal attempts:
// the appender whose LSN is a multiple of drainEvery tries (without
// blocking) to drain the staging ring. Small enough that the sealed prefix
// lags the reserved watermark by well under a ring, large enough that the
// drain mutex stays cold on the append hot path.
const drainEvery = 64

// NewMemLog returns an in-memory log (no durability; crash simulation uses
// SurvivingLog to model what a file would have retained).
func NewMemLog() *Log {
	l := &Log{}
	l.init()
	return l
}

// init wires the staging ring and the stats registry; every constructor
// path (NewMemLog, OpenFileLog, SurvivingLog, TruncatedCopy) runs it.
func (l *Log) init() {
	// The ring is sized from GOMAXPROCS like the other sharded managers:
	// enough slack that appenders lap the drain only under extreme skew.
	n := 256 * shards.Count(0)
	l.stage = make([]stageSlot, n)
	l.stageMask = uint64(n - 1)
	l.reg = stats.NewRegistry()
	l.appends = l.reg.Counter("wal.appends")
	l.syncs = l.reg.Counter("wal.syncs")
	l.stageStalls = l.reg.Counter("wal.stage_stalls")
	l.batchRecords = l.reg.Counter("wal.batch_records")
	l.batchBytes = l.reg.Counter("wal.batch_bytes")
	l.fsyncNanos = l.reg.Counter("wal.fsync_nanos")
	l.fsyncHist = l.reg.Histogram("wal.fsync")
	l.groupWaits = l.reg.Counter("wal.group_waits")
	l.coalesced = l.reg.Counter("wal.commit_coalesced")
	l.reg.Gauge("wal.stage_slots", func() int64 { return int64(n) })
	l.reg.Gauge("wal.last_lsn", func() int64 { return int64(l.next.Load()) })
	l.reg.Gauge("wal.flushed_lsn", func() int64 { return int64(l.flushed.Load()) })
	l.reg.Gauge("wal.appended_bytes", func() int64 { return l.appended.Load() })
}

// setWatermarks initializes all three watermarks to lsn (construction only).
func (l *Log) setWatermarks(lsn page.LSN) {
	l.next.Store(uint64(lsn))
	l.sealed.Store(uint64(lsn))
	l.flushed.Store(uint64(lsn))
}

// Metrics exposes the log's counter registry.
func (l *Log) Metrics() *stats.Registry { return l.reg }

// fileHeader is the 8-byte magic prefix of a log file.
var fileHeader = []byte("GiSTWAL1")

// truncHeader is the magic prefix of the head-truncation sidecar journal.
var truncHeader = []byte("GiSTTRN1")

// TruncSuffix is appended to a log path to name its truncation journal.
const TruncSuffix = ".trunc"

// OpenFileLog opens or creates a durable log at path, scanning any existing
// records to rebuild the in-memory index, and starts the group-commit
// flusher. A trailing torn record (bad CRC or truncation) ends the scan;
// everything before it is kept. The head-truncation sidecar journal lives
// at path+TruncSuffix; a complete journal left by a crash mid-truncation is
// re-applied before the scan.
func OpenFileLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	tf, err := os.OpenFile(path+TruncSuffix, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: open %s: %w", path+TruncSuffix, err)
	}
	l, err := openFileLog(f, tf)
	if err != nil {
		f.Close()
		tf.Close()
		return nil, err
	}
	return l, nil
}

// OpenFileLogHandle builds a file-backed log over an already-open handle,
// without a truncation journal: DiscardBefore falls back to the direct
// (non-crash-atomic) rewrite. The failure tests use it; production paths
// and the crash harness pass a journal via OpenFileLogHandles.
func OpenFileLogHandle(f File) (*Log, error) { return openFileLog(f, nil) }

// OpenFileLogHandles builds a file-backed log over already-open handles for
// the log file and its truncation sidecar journal. The crash harness calls
// it with fault-injecting Files; the caller keeps ownership of the handles
// if the open fails.
func OpenFileLogHandles(f, trunc File) (*Log, error) { return openFileLog(f, trunc) }

// openFileLog builds a file-backed log over already-open files; the
// failure tests call it with fault-injecting Files.
func openFileLog(f, trunc File) (*Log, error) {
	l := &Log{file: f, truncFile: trunc}
	l.init()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		// Fresh log: any sidecar content is a stale leftover, never a
		// journal for this (empty) file.
		if err := l.invalidateTruncJournal(); err != nil {
			return nil, err
		}
		if _, err := f.Write(fileHeader); err != nil {
			return nil, err
		}
		l.goodOffset = int64(len(fileHeader))
	} else {
		if err := l.recoverTruncation(); err != nil {
			return nil, err
		}
		if err := l.scan(); err != nil {
			return nil, err
		}
	}
	l.startFlusher()
	return l, nil
}

// invalidateTruncJournal empties the sidecar journal (truncate + sync),
// marking any in-progress truncation as either never-started or complete.
func (l *Log) invalidateTruncJournal() error {
	if l.truncFile == nil {
		return nil
	}
	st, err := l.truncFile.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		return nil
	}
	if err := l.truncFile.Truncate(0); err != nil {
		return err
	}
	return l.truncFile.Sync()
}

// recoverTruncation inspects the sidecar journal at open. A complete,
// CRC-valid journal means a truncation had durably staged its surviving
// suffix but may have died mid-rewrite of the main file; the rewrite is
// re-applied (idempotently — the journal holds the exact bytes the file
// should contain after the header) and the journal invalidated. A torn or
// garbled journal means the crash hit the journal write itself, before the
// main file was touched; it is simply discarded.
func (l *Log) recoverTruncation() error {
	if l.truncFile == nil {
		return nil
	}
	st, err := l.truncFile.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		return nil
	}
	hdrLen := int64(len(truncHeader)) + 8
	if st.Size() < hdrLen {
		return l.invalidateTruncJournal()
	}
	if _, err := l.truncFile.Seek(0, io.SeekStart); err != nil {
		return err
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(l.truncFile, hdr); err != nil {
		return l.invalidateTruncJournal()
	}
	if string(hdr[:len(truncHeader)]) != string(truncHeader) {
		return l.invalidateTruncJournal()
	}
	n := binary.BigEndian.Uint32(hdr[len(truncHeader):])
	crc := binary.BigEndian.Uint32(hdr[len(truncHeader)+4:])
	if int64(n) != st.Size()-hdrLen {
		return l.invalidateTruncJournal() // torn journal write
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(l.truncFile, payload); err != nil {
		return l.invalidateTruncJournal()
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return l.invalidateTruncJournal()
	}
	// Valid journal: replay the rewrite. The write-order invariant (the
	// journal is invalidated before any append reaches the file) guarantees
	// no durable record past the journaled suffix exists, so restoring the
	// suffix cannot lose log tail.
	if err := l.file.Truncate(int64(len(fileHeader))); err != nil {
		return err
	}
	if _, err := l.file.Seek(int64(len(fileHeader)), io.SeekStart); err != nil {
		return err
	}
	if _, err := l.file.Write(payload); err != nil {
		return err
	}
	if err := l.file.Sync(); err != nil {
		return err
	}
	return l.invalidateTruncJournal()
}

// startFlusher launches the dedicated group-commit goroutine.
func (l *Log) startFlusher() {
	l.kick = make(chan struct{}, 1)
	l.stop = make(chan struct{})
	l.flusherOn = true
	l.flusherWG.Add(1)
	go l.runFlusher()
}

// scan reads all valid records from the file into memory.
func (l *Log) scan() error {
	if _, err := l.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	hdr := make([]byte, len(fileHeader))
	if _, err := io.ReadFull(l.file, hdr); err != nil {
		return fmt.Errorf("wal: header: %w", err)
	}
	if string(hdr) != string(fileHeader) {
		return fmt.Errorf("wal: bad log file header")
	}
	offset := int64(len(fileHeader))
	var frame [8]byte
	for {
		if _, err := io.ReadFull(l.file, frame[:]); err != nil {
			break // clean EOF or torn tail
		}
		n := binary.BigEndian.Uint32(frame[:4])
		crc := binary.BigEndian.Uint32(frame[4:])
		if n > 1<<26 {
			break
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(l.file, body); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body) != crc {
			break
		}
		r, err := DecodeRecord(body)
		if err != nil {
			break
		}
		if len(l.records) == 0 {
			// The file may start past LSN 1 after head truncation.
			l.base = r.LSN - 1
		} else if r.LSN != l.base+page.LSN(len(l.records)+1) {
			return fmt.Errorf("wal: LSN gap: record %d at position %d", r.LSN, len(l.records)+1)
		}
		l.records = append(l.records, r)
		if r.Type == RecCheckpoint {
			l.masterCk = r.LSN
		}
		offset += 8 + int64(n)
	}
	// Truncate any torn tail so future appends start clean.
	if err := l.file.Truncate(offset); err != nil {
		return err
	}
	if _, err := l.file.Seek(offset, io.SeekStart); err != nil {
		return err
	}
	l.goodOffset = offset
	l.setWatermarks(l.base + page.LSN(len(l.records)))
	return nil
}

// slotOf maps an LSN to its staging ring slot.
func (l *Log) slotOf(lsn page.LSN) *stageSlot {
	return &l.stage[uint64(lsn)&l.stageMask]
}

// Append assigns the next LSN to r and adds it to the log. The record
// becomes durable only after a FlushTo covering its LSN.
//
// The LSN is reserved with one atomic add — the only cross-appender
// serialization on the hot path — then the record is encoded, checksummed,
// and published into its ring slot without taking any lock. The ordered
// drain that seals records into the index runs amortized: once per
// half-ring of appends, or whenever a reader or committer needs the sealed
// prefix.
func (l *Log) Append(r *Record) page.LSN {
	lsn := page.LSN(l.next.Add(1))
	r.LSN = lsn
	var frame []byte
	if l.file != nil {
		body := r.Encode()
		frame = make([]byte, 8+len(body))
		binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
		binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
		copy(frame[8:], body)
		l.appended.Add(int64(len(frame)))
	} else {
		l.appended.Add(recSizeEstimate(r))
	}
	s := l.slotOf(lsn)
	// The slot may be claimed only once the occupant from one ring lap ago
	// (lsn - ringSize) has been sealed — an empty-looking slot is not
	// enough, because that occupant may be reserved but not yet published,
	// and publishing under it would wedge the ordered drain forever. Drain
	// in-line until sealed catches up; the lowest unpublished LSN never
	// waits (everything below it is published and drainable), so this
	// always makes progress.
	ring := uint64(len(l.stage))
	if uint64(lsn) > l.sealed.Load()+ring {
		l.stageStalls.Inc()
		for spins := 0; ; spins++ {
			l.mu.Lock()
			l.drainLocked()
			l.mu.Unlock()
			if uint64(lsn) <= l.sealed.Load()+ring {
				break
			}
			// The drain is blocked behind a reserved-but-unpublished LSN
			// whose goroutine needs CPU to publish; yield, then back off to
			// a sleep so a herd of full-ring appenders does not starve it.
			if spins < 8 {
				runtime.Gosched()
			} else {
				time.Sleep(10 * time.Microsecond)
			}
		}
	}
	s.rec, s.frame = r, frame
	s.seq.Store(uint64(lsn)) // publish (release): drain reads rec/frame after seq
	l.appends.Inc()

	// Amortized seal: one designated appender per drainEvery LSNs seals for
	// everyone, so the drain mutex sees a trickle of acquirers rather than a
	// thundering herd. TryLock — if a drain is already running it will pick
	// this record up; if the designated drainer loses the race entirely, the
	// next designee (at most drainEvery LSNs later) or any waitSealed caller
	// picks up the slack.
	if uint64(lsn)%drainEvery == 0 && l.mu.TryLock() {
		l.drainLocked()
		backlog := len(l.pending)
		l.mu.Unlock()
		if backlog >= flushBacklog {
			l.kickFlusher()
		}
	}
	return lsn
}

// drainLocked seals staged records into the in-memory index (and their
// frames into the pending batch) in strict LSN order, stopping at the first
// gap — a reserved LSN whose appender has not yet published it. l.mu held.
func (l *Log) drainLocked() {
	advanced := false
	for {
		lsn := l.base + page.LSN(len(l.records)) + 1
		if uint64(lsn) > l.next.Load() {
			break
		}
		s := l.slotOf(lsn)
		if s.seq.Load() != uint64(lsn) {
			break // gap: the reserving appender has not published yet
		}
		l.records = append(l.records, s.rec)
		if s.rec.Type == RecCheckpoint {
			l.masterCk = lsn
		}
		if l.file != nil {
			l.pending = append(l.pending, s.frame...)
			l.pendingCount++
		}
		s.rec, s.frame = nil, nil
		s.seq.Store(0) // free the slot for the appender one lap ahead
		advanced = true
	}
	if advanced {
		l.sealed.Store(uint64(l.base + page.LSN(len(l.records))))
	}
}

// waitSealed blocks until every record at or below lsn is sealed. The
// unsealed window is the handful of instructions between a reservation and
// its staging (nothing in between can block), so this spins rather than
// sleeping on a condition variable.
func (l *Log) waitSealed(lsn page.LSN) {
	if max := page.LSN(l.next.Load()); lsn > max {
		lsn = max
	}
	for spins := 0; page.LSN(l.sealed.Load()) < lsn; spins++ {
		l.mu.Lock()
		l.drainLocked()
		l.mu.Unlock()
		if page.LSN(l.sealed.Load()) >= lsn {
			return
		}
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// LastLSN returns the highest assigned LSN — the tree-global counter value
// read by traversing operations. It is a single atomic load; the counter
// already covers every LSN any reachable node can carry as its NSN (§10.1).
func (l *Log) LastLSN() page.LSN {
	return page.LSN(l.next.Load())
}

// FlushedLSN returns the highest durable LSN (lock-free).
func (l *Log) FlushedLSN() page.LSN {
	return page.LSN(l.flushed.Load())
}

// AppendedBytes returns the cumulative bytes appended to the log (framed
// bytes for file logs, an estimate for in-memory logs). The maintenance
// checkpointer triggers on the delta since its last checkpoint.
func (l *Log) AppendedBytes() int64 { return l.appended.Load() }

// recSizeEstimate approximates the framed size of a record without encoding
// it, for in-memory byte accounting: the fixed header/payload scalars plus
// the variable byte fields.
func recSizeEstimate(r *Record) int64 {
	n := 8 + 33 + 36 // frame + common header + fixed payload scalars
	n += 4 + len(r.Body)
	n += 4 + len(r.OldBody)
	n += 4
	for _, m := range r.Moved {
		n += 4 + len(m)
	}
	n += 4 + 24*len(r.ATT)
	n += 4 + 12*len(r.DPT)
	return int64(n)
}

// FlushTo makes the log durable up to at least lsn. It implements
// buffer.LogFlusher. For an in-memory log it only advances the flushed
// watermark (used by crash simulation to decide which records survive).
// For a file-backed log the caller parks on the commit queue; the flusher
// goroutine batches every parked committer into one write+fsync.
func (l *Log) FlushTo(lsn page.LSN) error {
	if max := page.LSN(l.next.Load()); lsn > max {
		lsn = max
	}
	if page.LSN(l.flushed.Load()) >= lsn {
		return nil
	}
	if l.file == nil {
		l.waitSealed(lsn)
		l.mu.Lock()
		if page.LSN(l.flushed.Load()) < lsn {
			l.flushed.Store(uint64(lsn))
			l.syncs.Inc()
		}
		l.mu.Unlock()
		l.notifyFlushed()
		return nil
	}
	l.mu.Lock()
	failed := l.failed
	l.mu.Unlock()
	if failed != nil {
		return failed
	}
	w := &flushWaiter{lsn: lsn, ch: make(chan error, 1)}
	l.qmu.Lock()
	if !l.flusherOn {
		// Flusher already stopped (Close in progress): flush inline.
		l.qmu.Unlock()
		return l.flushDirect(lsn)
	}
	l.waiters = append(l.waiters, w)
	l.qmu.Unlock()
	l.groupWaits.Inc()
	l.kickFlusher()
	return <-w.ch
}

// AppendCommit appends r and registers its force request as one publish:
// the record is staged and a flush waiter covering its LSN is parked on the
// commit queue in the same call, instead of Append followed by a separate
// FlushTo that re-derives what Append just knew (the target LSN, the
// sticky-failure state, the watermark clamp). The returned channel carries
// the durability outcome exactly once; it is buffered, so a caller that
// stops listening (deadline) leaks nothing and the flusher never blocks.
//
// Callers that need a cancellable commit park select on the channel: the
// record's fate after the deadline is decided by FlushedLSN, never by
// un-appending (a published commit record cannot be withdrawn).
func (l *Log) AppendCommit(r *Record) (page.LSN, <-chan error) {
	ch := make(chan error, 1)
	if l.file == nil {
		lsn := l.Append(r)
		ch <- l.FlushTo(lsn)
		return lsn, ch
	}
	l.mu.Lock()
	failed := l.failed
	l.mu.Unlock()
	if failed != nil {
		lsn := l.Append(r)
		ch <- failed
		return lsn, ch
	}
	lsn := l.Append(r)
	l.coalesced.Inc()
	w := &flushWaiter{lsn: lsn, ch: ch}
	l.qmu.Lock()
	if !l.flusherOn {
		// Flusher already stopped (Close in progress): flush inline.
		l.qmu.Unlock()
		ch <- l.flushDirect(lsn)
		return lsn, ch
	}
	l.waiters = append(l.waiters, w)
	l.qmu.Unlock()
	l.groupWaits.Inc()
	l.kickFlusher()
	return lsn, ch
}

// kickFlusher nudges the flusher goroutine without blocking.
func (l *Log) kickFlusher() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// takeWaiters empties the commit queue.
func (l *Log) takeWaiters() []*flushWaiter {
	l.qmu.Lock()
	ws := l.waiters
	l.waiters = nil
	l.qmu.Unlock()
	return ws
}

// runFlusher is the dedicated group-commit goroutine: woken by committers
// (or a large pending backlog), it settles the queue with as few fsyncs as
// the arrival pattern allows — every committer parked while a batch was
// being written is covered by the next one.
func (l *Log) runFlusher() {
	defer l.flusherWG.Done()
	for {
		select {
		case <-l.stop:
			l.settle(l.takeWaiters())
			return
		case <-l.kick:
			l.settle(nil)
		}
	}
}

// settle flushes until every parked committer's target is durable (or the
// log fails), answering each one. Committers arriving mid-settle join the
// next batch.
func (l *Log) settle(ws []*flushWaiter) {
	spins := 0
	for {
		ws = append(ws, l.takeWaiters()...)
		if len(ws) == 0 {
			l.mu.Lock()
			backlog := len(l.pending)
			l.mu.Unlock()
			if backlog == 0 {
				return
			}
		}
		covers, err := l.flushBatch()
		if err != nil {
			for _, w := range ws {
				w.ch <- err
			}
			return
		}
		n := 0
		for _, w := range ws {
			if w.lsn <= covers {
				w.ch <- nil
			} else {
				ws[n] = w
				n++
			}
		}
		if n < len(ws) {
			spins = 0
		}
		ws = ws[:n]
		if len(ws) == 0 {
			continue // re-check queue and backlog, then exit
		}
		// An unsatisfied waiter means some lower LSN is still being
		// staged by its appender — a window of a few instructions.
		spins++
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// flushDirect is the synchronous fallback used when no flusher goroutine
// runs (after Close has stopped it): loop batches until lsn is durable.
func (l *Log) flushDirect(lsn page.LSN) error {
	if max := page.LSN(l.next.Load()); lsn > max {
		lsn = max
	}
	for {
		covers, err := l.flushBatch()
		if err != nil {
			return err
		}
		if covers >= lsn {
			return nil
		}
		runtime.Gosched()
	}
}

// flushBatch cuts the pending batch and writes it durably with one
// write+fsync, returning the watermark the log is durable through. ioMu
// serializes concurrent batches so frames reach the file in LSN order.
//
// On a failed write the file is truncated back to its known-good length
// and the batch is re-staged at the head of pending, so the frames remain
// flushable and the flushed watermark never passes bytes that are not on
// disk. If the truncate also fails — or fsync fails, leaving durability
// unknowable — the log fails permanently.
func (l *Log) flushBatch() (page.LSN, error) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()

	l.mu.Lock()
	l.drainLocked()
	buf, count := l.pending, l.pendingCount
	l.pending, l.pendingCount = nil, 0
	covers := page.LSN(l.sealed.Load())
	err := l.failed
	l.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if len(buf) == 0 {
		if covers > page.LSN(l.flushed.Load()) {
			// Sealed records with no pending bytes cannot happen for a
			// file log; guard anyway rather than advance dishonestly.
			covers = page.LSN(l.flushed.Load())
		}
		return page.LSN(l.flushed.Load()), nil
	}

	if _, werr := l.file.Write(buf); werr != nil {
		werr = fmt.Errorf("wal: flush write: %w", werr)
		// A short write may have left a torn suffix; cut it off before
		// re-staging, or the retry would duplicate the partial bytes.
		if terr := l.truncateToGood(); terr != nil {
			l.failPermanently(fmt.Errorf("%v; %w", werr, terr))
			return 0, l.failedErr()
		}
		l.mu.Lock()
		restaged := make([]byte, 0, len(buf)+len(l.pending))
		restaged = append(restaged, buf...)
		restaged = append(restaged, l.pending...)
		l.pending = restaged
		l.pendingCount += count
		l.mu.Unlock()
		return 0, werr
	}
	start := time.Now()
	if serr := l.file.Sync(); serr != nil {
		// fsync failure leaves the kernel's dirty state unknowable;
		// retrying cannot re-establish durability claims.
		l.failPermanently(fmt.Errorf("wal: fsync: %w", serr))
		return 0, l.failedErr()
	}
	elapsed := time.Since(start).Nanoseconds()
	l.fsyncNanos.Add(elapsed)
	l.fsyncHist.Observe(elapsed)
	l.goodOffset += int64(len(buf))
	l.flushed.Store(uint64(covers))
	l.notifyFlushed()
	l.syncs.Inc()
	l.batchRecords.Add(count)
	l.batchBytes.Add(int64(len(buf)))
	return covers, nil
}

// truncateToGood cuts the file back to the bytes known fully written.
// Caller holds ioMu.
func (l *Log) truncateToGood() error {
	if err := l.file.Truncate(l.goodOffset); err != nil {
		return fmt.Errorf("wal: truncate after failed write: %w", err)
	}
	if _, err := l.file.Seek(l.goodOffset, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek after failed write: %w", err)
	}
	return nil
}

// failPermanently records the first unrecoverable error; all later
// durability requests return it.
func (l *Log) failPermanently(err error) {
	l.mu.Lock()
	if l.failed == nil {
		l.failed = fmt.Errorf("%w: %v", ErrLogFailed, err)
	}
	l.mu.Unlock()
}

func (l *Log) failedErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// FlushAll forces the entire log durable.
func (l *Log) FlushAll() error { return l.FlushTo(page.MaxLSN) }

// Get returns the record with the given LSN, waiting out the short window
// in which a concurrent appender has reserved but not yet staged it.
func (l *Log) Get(lsn page.LSN) (*Record, error) {
	if lsn == 0 || uint64(lsn) > l.next.Load() {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchLSN, lsn)
	}
	l.waitSealed(lsn)
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn <= l.base || lsn > l.base+page.LSN(len(l.records)) {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchLSN, lsn)
	}
	return l.records[lsn-l.base-1], nil
}

// Scan calls fn for every record with LSN >= from, in LSN order, stopping
// early if fn returns false.
func (l *Log) Scan(from page.LSN, fn func(*Record) bool) {
	if from < 1 {
		from = 1
	}
	for {
		if uint64(from) > l.next.Load() {
			return
		}
		l.waitSealed(from)
		l.mu.Lock()
		if from <= l.base {
			from = l.base + 1
		}
		if from > l.base+page.LSN(len(l.records)) {
			l.mu.Unlock()
			return
		}
		r := l.records[from-l.base-1]
		l.mu.Unlock()
		if !fn(r) {
			return
		}
		from++
	}
}

// SnapshotScan calls fn for every record with LSN >= from, in LSN order,
// stopping early if fn returns false. Unlike Scan it seals and snapshots the
// whole index once up front and then iterates without touching l.mu or
// waitSealed per record — the batched mode restart uses for its single
// forward pass, where recovery owns the log exclusively and scanning a
// million records one lock acquisition at a time is pure overhead.
//
// The snapshot covers every LSN assigned before the call; records appended
// concurrently are simply not visited. The caller must ensure no concurrent
// DiscardBefore (which rewrites the index in place) — true during restart,
// where the maintenance daemons are not yet running.
func (l *Log) SnapshotScan(from page.LSN, fn func(*Record) bool) {
	l.waitSealed(page.LSN(l.next.Load()))
	l.mu.Lock()
	l.drainLocked()
	base, records := l.base, l.records
	l.mu.Unlock()
	if from < base+1 {
		from = base + 1
	}
	for i := int(from - base - 1); i < len(records); i++ {
		if !fn(records[i]) {
			return
		}
	}
}

// MasterCheckpoint returns the LSN of the latest checkpoint record, or 0.
func (l *Log) MasterCheckpoint() page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	return l.masterCk
}

// Stats returns the number of appends and physical flushes, read through
// the stats registry.
func (l *Log) Stats() (appends, syncs int64) {
	return l.appends.Load(), l.syncs.Load()
}

// TruncatedCopy returns a new in-memory log holding only records with
// LSN <= lsn, regardless of flush state. The recovery experiments use it to
// place a crash point after any chosen record.
func (l *Log) TruncatedCopy(lsn page.LSN) *Log {
	l.waitSealed(lsn)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	if max := l.base + page.LSN(len(l.records)); lsn > max {
		lsn = max
	}
	if lsn < l.base {
		lsn = l.base
	}
	return l.memCopyLocked(lsn)
}

// memCopyLocked builds an in-memory log over the prefix of records with
// LSN <= upTo, all marked durable. l.mu held.
func (l *Log) memCopyLocked(upTo page.LSN) *Log {
	s := NewMemLog()
	s.base = l.base
	s.records = append(s.records, l.records[:upTo-l.base]...)
	s.setWatermarks(upTo)
	for _, r := range s.records {
		if r.Type == RecCheckpoint {
			s.masterCk = r.LSN
		}
	}
	return s
}

// DiscardBefore drops all records with LSN < lsn — head truncation after a
// checkpoint has made everything before the redo point unnecessary for
// restart. Only durable prefixes may be discarded, and never past the
// master checkpoint record: the cut is clamped to both the flushed
// watermark and MasterCheckpoint, so analysis can always read its anchor.
// It returns the number of bytes the cut removed from the log.
//
// For a file-backed log with a truncation journal the cut is a logged,
// crash-atomic operation:
//
//  1. a RecTruncate intent record carrying the target LSN is appended and
//     forced durable (ordinary append path, no locks held);
//  2. under ioMu the surviving durable suffix is staged in the sidecar
//     journal (magic + length + CRC + the exact post-header file image)
//     and synced;
//  3. the main file is truncated to its header and rewritten with the
//     staged suffix, then synced;
//  4. the journal is invalidated (truncate + sync).
//
// ioMu is held from step 2 through 4, so no append reaches the file while
// a valid journal exists; a crash anywhere in step 3 is repaired at the
// next open by replaying the journal, and a crash in step 2 leaves a torn
// journal that the open discards with the main file untouched. A non-crash
// I/O error after step 2 has begun mutating shared state fails the log
// permanently, keeping the journal valid for the next open to replay.
func (l *Log) DiscardBefore(lsn page.LSN) (int64, error) {
	l.mu.Lock()
	base, ck, failed := l.base, l.masterCk, l.failed
	l.mu.Unlock()
	if failed != nil {
		return 0, failed
	}
	// Master-checkpoint ordering: the checkpoint record (and the chain it
	// anchors) must stay readable after the cut.
	if ck != 0 && lsn > ck {
		lsn = ck
	}
	if lsn <= base+1 {
		return 0, nil
	}
	if l.file != nil {
		// Logged truncation intent. Forced durable before any file surgery
		// so the cut is externally ordered after everything it retains.
		intent := l.Append(&Record{Type: RecTruncate, NSN: lsn})
		if err := l.FlushTo(intent); err != nil {
			return 0, err
		}
	}

	// ioMu first (the fixed order) so no flush batch lands mid-rewrite.
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	if lsn <= l.base+1 {
		return 0, nil
	}
	if flushed := page.LSN(l.flushed.Load()); lsn > flushed+1 {
		lsn = flushed + 1
	}
	n := int(lsn - 1 - l.base) // records to drop
	if n <= 0 {
		return 0, nil
	}
	if n > len(l.records) {
		n = len(l.records)
	}

	if l.file == nil {
		var discarded int64
		for _, r := range l.records[:n] {
			discarded += recSizeEstimate(r)
		}
		l.records = append([]*Record(nil), l.records[n:]...)
		l.base += page.LSN(n)
		return discarded, nil
	}

	// Encode the surviving durable suffix. Frames still pending stay
	// pending; the next batch appends them after this rewrite in LSN order
	// (both orderings hold ioMu).
	flushed := page.LSN(l.flushed.Load())
	var out []byte
	for _, r := range l.records[n:] {
		if r.LSN > flushed {
			break
		}
		body := r.Encode()
		var frame [8]byte
		binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
		binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
		out = append(out, frame[:]...)
		out = append(out, body...)
	}

	if l.truncFile != nil {
		// Stage the suffix in the journal before touching anything. An
		// error here is clean: nothing — in memory or on disk — changed.
		if err := l.writeTruncJournalLocked(out); err != nil {
			return 0, err
		}
	}

	l.records = append([]*Record(nil), l.records[n:]...)
	l.base += page.LSN(n)

	fail := func(err error) (int64, error) {
		if l.failed == nil {
			l.failed = fmt.Errorf("%w: %v", ErrLogFailed, err)
		}
		return 0, l.failed
	}
	if err := l.file.Truncate(int64(len(fileHeader))); err != nil {
		return fail(fmt.Errorf("wal: truncate head: %v", err))
	}
	if _, err := l.file.Seek(int64(len(fileHeader)), io.SeekStart); err != nil {
		return fail(fmt.Errorf("wal: seek head: %v", err))
	}
	if _, err := l.file.Write(out); err != nil {
		return fail(fmt.Errorf("wal: rewrite suffix: %v", err))
	}
	if err := l.file.Sync(); err != nil {
		return fail(fmt.Errorf("wal: sync suffix: %v", err))
	}
	if l.truncFile != nil {
		// The journal must not outlive the rewrite: a stale-but-valid
		// journal would be replayed over future appends at the next open.
		// If it cannot be invalidated, the log must stop appending.
		if err := l.truncFile.Truncate(0); err != nil {
			return fail(fmt.Errorf("wal: invalidate truncation journal: %v", err))
		}
		if err := l.truncFile.Sync(); err != nil {
			return fail(fmt.Errorf("wal: sync truncation journal: %v", err))
		}
	}
	discarded := l.goodOffset - (int64(len(fileHeader)) + int64(len(out)))
	if discarded < 0 {
		discarded = 0
	}
	l.goodOffset = int64(len(fileHeader)) + int64(len(out))
	return discarded, nil
}

// writeTruncJournalLocked stages the post-header file image in the sidecar
// journal: truncate, write magic + u32 length + u32 CRC + payload as one
// write, sync. Caller holds ioMu and mu.
func (l *Log) writeTruncJournalLocked(payload []byte) error {
	if err := l.truncFile.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset truncation journal: %w", err)
	}
	if _, err := l.truncFile.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek truncation journal: %w", err)
	}
	buf := make([]byte, len(truncHeader)+8+len(payload))
	copy(buf, truncHeader)
	binary.BigEndian.PutUint32(buf[len(truncHeader):], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[len(truncHeader)+4:], crc32.ChecksumIEEE(payload))
	copy(buf[len(truncHeader)+8:], payload)
	if _, err := l.truncFile.Write(buf); err != nil {
		return fmt.Errorf("wal: write truncation journal: %w", err)
	}
	if err := l.truncFile.Sync(); err != nil {
		return fmt.Errorf("wal: sync truncation journal: %w", err)
	}
	return nil
}

// Base returns the truncation point: LSNs at or below it are discarded.
func (l *Log) Base() page.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// SurvivingLog models a crash of an in-memory log: it returns a new Log
// holding only the records that had been flushed. For a file log, reopening
// the file achieves the same. Reserved or sealed records past the flushed
// watermark do not survive — exactly the §10.1 recovery story, where the
// counter restarts from the last durable LSN.
func (l *Log) SurvivingLog() *Log {
	flushed := page.LSN(l.flushed.Load())
	l.waitSealed(flushed)
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.memCopyLocked(flushed)
}

// Close flushes and closes the log, stopping the flusher goroutine.
func (l *Log) Close() error {
	ferr := l.FlushAll()
	l.qmu.Lock()
	if l.flusherOn {
		l.flusherOn = false
		close(l.stop)
		l.qmu.Unlock()
		l.flusherWG.Wait()
	} else {
		l.qmu.Unlock()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.truncFile != nil {
		if cerr := l.truncFile.Close(); ferr == nil {
			ferr = cerr
		}
	}
	if l.file != nil {
		if cerr := l.file.Close(); ferr == nil {
			return cerr
		}
	}
	return ferr
}
