package wal

import (
	"reflect"
	"testing"

	"repro/internal/page"
)

// collect gathers the LSNs a scan visits.
func collectLSNs(scan func(page.LSN, func(*Record) bool), from page.LSN) []page.LSN {
	var out []page.LSN
	scan(from, func(r *Record) bool {
		out = append(out, r.LSN)
		return true
	})
	return out
}

func TestSnapshotScanMatchesScan(t *testing.T) {
	l := NewMemLog()
	for i := 1; i <= 40; i++ {
		l.Append(&Record{Type: RecAddLeafEntry, Txn: page.TxnID(i%3 + 1), Pg: page.PageID(i % 7)})
	}
	for _, from := range []page.LSN{0, 1, 2, 17, 40, 41, 100} {
		want := collectLSNs(l.Scan, from)
		got := collectLSNs(l.SnapshotScan, from)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("from %d: SnapshotScan visited %v, Scan visited %v", from, got, want)
		}
	}
}

func TestSnapshotScanEarlyStop(t *testing.T) {
	l := NewMemLog()
	for i := 0; i < 10; i++ {
		l.Append(&Record{Type: RecBegin, Txn: 1})
	}
	n := 0
	l.SnapshotScan(1, func(r *Record) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Errorf("visited %d records after early stop, want 4", n)
	}
}

func TestSnapshotScanClampsToDiscardedHead(t *testing.T) {
	l := NewMemLog()
	for i := 0; i < 20; i++ {
		l.Append(&Record{Type: RecBegin, Txn: 1})
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.DiscardBefore(11); err != nil {
		t.Fatal(err)
	}
	got := collectLSNs(l.SnapshotScan, 1)
	want := collectLSNs(l.Scan, 1)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("after discard: SnapshotScan visited %v, Scan visited %v", got, want)
	}
	if len(got) == 0 || got[0] != 11 {
		t.Errorf("first visited LSN = %v, want 11", got)
	}
}
