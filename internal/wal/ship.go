// Log shipping support: the tail read path a replication shipper uses to
// stream the durable log prefix, flushed-watermark watchers that wake the
// shipper without polling, and the replica-side log that reconstructs the
// primary's record sequence verbatim (AppendShipped).
//
// The contract throughout is the durability frontier: FlushedLSN is the
// highest LSN the primary may ever ship. Records above it exist in memory
// but could still be lost to a crash; a replica that applied them would be
// ahead of every state the primary can restart into, and failover would
// diverge. TailFrom therefore never returns past the flushed watermark.
package wal

import (
	"errors"
	"fmt"

	"repro/internal/page"
)

// ErrTailTruncated is returned by TailFrom when the requested start LSN has
// been discarded by head truncation: the subscriber is too far behind the
// retained log and must full-resync (or be rebuilt).
var ErrTailTruncated = errors.New("wal: tail start truncated from log head")

// TailFrom returns up to max sealed, durable records starting at LSN from,
// in LSN order. It is the shipper's read path: the upper bound is
// FlushedLSN (the durability frontier — records past it are never shipped),
// and the lower bound is the retained head. An empty result means the
// caller has fully caught up to the flushed watermark; ErrTailTruncated
// means from predates Base()+1 and the gap is unrecoverable from this log.
//
// The returned records are the log's own sealed records: immutable once
// published, safe to read and re-encode without copying.
func (l *Log) TailFrom(from page.LSN, max int) ([]*Record, error) {
	if from == 0 {
		from = 1
	}
	hi := page.LSN(l.flushed.Load())
	l.mu.Lock()
	defer l.mu.Unlock()
	if from <= l.base {
		return nil, fmt.Errorf("%w: from %d, head %d", ErrTailTruncated, from, l.base+1)
	}
	if from > hi {
		return nil, nil
	}
	lo := int(from - l.base - 1)
	n := int(hi-l.base) - lo
	if n <= 0 {
		return nil, nil
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]*Record, n)
	copy(out, l.records[lo:lo+n])
	return out, nil
}

// WatchFlushed registers a wakeup channel: every advance of the flushed
// watermark sends one (coalescing, non-blocking) token. The caller owns the
// channel until UnwatchFlushed; a token means "re-check FlushedLSN", not
// "exactly one new record".
func (l *Log) WatchFlushed() chan struct{} {
	ch := make(chan struct{}, 1)
	l.watchMu.Lock()
	if l.watchers == nil {
		l.watchers = make(map[chan struct{}]struct{})
	}
	l.watchers[ch] = struct{}{}
	l.watchMu.Unlock()
	return ch
}

// UnwatchFlushed removes a channel registered by WatchFlushed.
func (l *Log) UnwatchFlushed(ch chan struct{}) {
	l.watchMu.Lock()
	delete(l.watchers, ch)
	l.watchMu.Unlock()
}

// notifyFlushed pokes every watcher after a flushed-watermark advance.
func (l *Log) notifyFlushed() {
	l.watchMu.Lock()
	for ch := range l.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	l.watchMu.Unlock()
}

// NewReplicaLog builds an empty in-memory log whose head starts after base:
// the next shipped record must carry LSN base+1. A fresh replica uses base
// 0 (the full stream from LSN 1); a snapshot-seeded replica uses the
// snapshot's base LSN.
func NewReplicaLog(base page.LSN) *Log {
	l := NewMemLog()
	l.base = base
	l.setWatermarks(base)
	return l
}

// RebaseShipped re-bases an empty replica log to a snapshot's base LSN:
// the next shipped record must carry base+1. Only an untouched in-memory
// log may be re-based — a log that already holds records has a history a
// new base would orphan.
func (l *Log) RebaseShipped(base page.LSN) error {
	if l.file != nil {
		return errors.New("wal: RebaseShipped requires an in-memory log")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.records) != 0 || l.next.Load() != uint64(l.base) {
		return fmt.Errorf("wal: RebaseShipped on non-empty log (base %d, last %d)", l.base, l.next.Load())
	}
	l.base = base
	l.next.Store(uint64(base))
	l.sealed.Store(uint64(base))
	l.flushed.Store(uint64(base))
	return nil
}

// AppendShipped appends a record received from a primary, preserving the
// primary's LSN. It is the replica-side dual of Append: no reservation (the
// primary already assigned the LSN), no staging ring, and the record is
// immediately sealed and "flushed" (it was durable on the primary before it
// was shipped — that is the TailFrom contract). Records must arrive in
// exactly contiguous LSN order; a gap or replay is a protocol error the
// caller turns into a resync.
//
// AppendShipped must not race Append: a replica log is append-only from the
// stream until Promote drains the stream, after which normal Append resumes
// from the shipped prefix.
func (l *Log) AppendShipped(r *Record) error {
	if l.file != nil {
		return errors.New("wal: AppendShipped requires an in-memory log")
	}
	l.mu.Lock()
	want := l.base + page.LSN(len(l.records)) + 1
	if r.LSN != want {
		l.mu.Unlock()
		return fmt.Errorf("wal: shipped record LSN %d, want %d", r.LSN, want)
	}
	l.records = append(l.records, r)
	if r.Type == RecCheckpoint {
		l.masterCk = r.LSN
	}
	l.next.Store(uint64(r.LSN))
	l.sealed.Store(uint64(r.LSN))
	l.flushed.Store(uint64(r.LSN))
	l.mu.Unlock()
	l.appended.Add(recSizeEstimate(r))
	l.appends.Inc()
	return nil
}
