package lock

import (
	"errors"
	"testing"
	"time"

	"repro/internal/page"
)

// findNameInOtherStripe returns a record-lock name that hashes to a
// different stripe than base (the striped table must still detect cycles
// whose edges span stripes).
func findNameInOtherStripe(t *testing.T, m *Manager, base Name) Name {
	t.Helper()
	for k := base.Key + 1; k < base.Key+100000; k++ {
		n := Name{Space: base.Space, Key: k}
		if m.stripeOf(n) != m.stripeOf(base) {
			return n
		}
	}
	t.Fatal("no name found in a different stripe")
	return Name{}
}

// TestDeadlockAcrossStripes builds a two-transaction cycle whose two lock
// names live in different stripes. The stripe-by-stripe snapshot of the
// detector must still assemble the full waits-for graph and pick a victim.
func TestDeadlockAcrossStripes(t *testing.T) {
	m := NewManager()
	a := Name{Space: SpaceRecord, Key: 1}
	b := findNameInOtherStripe(t, m, a)

	if err := m.Lock(1, a, X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, b, X); err != nil {
		t.Fatal(err)
	}

	type res struct {
		txn page.TxnID
		err error
	}
	ch := make(chan res, 2)
	go func() { ch <- res{1, m.Lock(1, b, X)} }()
	go func() { ch <- res{2, m.Lock(2, a, X)} }()

	timeout := time.After(10 * time.Second)

	// The first request to finish must be a deadlock victim: the survivor
	// can only proceed once the victim's locks are released below.
	select {
	case r := <-ch:
		if !errors.Is(r.err, ErrDeadlock) {
			t.Fatalf("first completion: txn %d got %v, want ErrDeadlock", r.txn, r.err)
		}
		m.ReleaseAll(r.txn)
	case <-timeout:
		t.Fatal("cross-stripe deadlock never detected")
	}

	// The second either was also picked as a victim (both detections can
	// race to the same stable cycle) or is granted after the release.
	select {
	case r := <-ch:
		if r.err != nil && !errors.Is(r.err, ErrDeadlock) {
			t.Fatalf("second completion: txn %d got %v", r.txn, r.err)
		}
		m.ReleaseAll(r.txn)
	case <-timeout:
		t.Fatal("surviving request never completed")
	}

	if _, _, dl := m.Stats(); dl < 1 {
		t.Errorf("deadlocks counter = %d, want >= 1", dl)
	}

	// The table must be fully drained: both names grantable again.
	if err := m.Lock(3, a, X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(3, b, X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

// TestCopyHoldersAcrossStripes replicates signaling locks between two names
// in different stripes, exercising the two-stripe index-order path.
func TestCopyHoldersAcrossStripes(t *testing.T) {
	m := NewManager()
	src := ForNode(1)
	dst := findNameInOtherStripe(t, m, src)

	if err := m.Lock(7, src, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(8, src, S); err != nil {
		t.Fatal(err)
	}
	m.CopyHolders(src, dst)
	for _, txn := range []page.TxnID{7, 8} {
		if mode, ok := m.Holding(txn, dst); !ok || mode != S {
			t.Errorf("txn %d on dst: mode %v held %v, want S held", txn, mode, ok)
		}
	}
	// And the reverse direction (opposite stripe ordering).
	m.CopyHolders(dst, src)
	m.ReleaseAll(7)
	m.ReleaseAll(8)
	if hs := m.Holders(dst); len(hs) != 0 {
		t.Errorf("dst holders after release = %v", hs)
	}
}
