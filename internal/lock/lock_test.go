package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/page"
	"repro/internal/shards"
)

func TestGrantAndReentrancy(t *testing.T) {
	m := NewManager()
	n := ForRID(page.RID{Page: 1, Slot: 1})
	if err := m.Lock(1, n, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, n, S); err != nil {
		t.Fatal("re-entrant S failed:", err)
	}
	if err := m.Lock(2, n, S); err != nil {
		t.Fatal("concurrent S failed:", err)
	}
	if mode, ok := m.Holding(1, n); !ok || mode != S {
		t.Errorf("Holding = %v %v", mode, ok)
	}
	if got := len(m.Holders(n)); got != 2 {
		t.Errorf("holders = %d", got)
	}
}

func TestXExcludesS(t *testing.T) {
	m := NewManager()
	n := ForNode(5)
	if err := m.Lock(1, n, X); err != nil {
		t.Fatal(err)
	}
	// X covers a later S request by the same txn.
	if err := m.Lock(1, n, S); err != nil {
		t.Fatal(err)
	}
	granted := make(chan error, 1)
	go func() { granted <- m.Lock(2, n, S) }()
	select {
	case err := <-granted:
		t.Fatalf("S granted while X held: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	m.Unlock(1, n)
	if err := <-granted; err != nil {
		t.Fatal(err)
	}
}

func TestFIFONoStarvation(t *testing.T) {
	// S held; X waits; a later S must queue behind the X, not jump it.
	m := NewManager()
	n := ForRID(page.RID{Page: 2, Slot: 2})
	if err := m.Lock(1, n, S); err != nil {
		t.Fatal(err)
	}
	var order []page.TxnID
	var mu sync.Mutex
	record := func(id page.TxnID) {
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := m.Lock(2, n, X); err != nil {
			t.Error(err)
			return
		}
		record(2)
		time.Sleep(10 * time.Millisecond)
		m.Unlock(2, n)
	}()
	time.Sleep(20 * time.Millisecond) // let txn 2 enqueue first
	go func() {
		defer wg.Done()
		if err := m.Lock(3, n, S); err != nil {
			t.Error(err)
			return
		}
		record(3)
		m.Unlock(3, n)
	}()
	time.Sleep(20 * time.Millisecond)
	m.Unlock(1, n)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Errorf("grant order = %v, want [2 3]", order)
	}
}

func TestUpgrade(t *testing.T) {
	m := NewManager()
	n := ForRID(page.RID{Page: 3, Slot: 0})
	if err := m.Lock(1, n, S); err != nil {
		t.Fatal(err)
	}
	// Sole holder upgrades instantly.
	if err := m.Lock(1, n, X); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.Holding(1, n); mode != X {
		t.Errorf("mode after upgrade = %v", mode)
	}
	m.Unlock(1, n)

	// Upgrade must wait for other S holders to leave.
	m.Lock(1, n, S)
	m.Lock(2, n, S)
	done := make(chan error, 1)
	go func() { done <- m.Lock(1, n, X) }()
	select {
	case err := <-done:
		t.Fatalf("upgrade granted with another S holder: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	m.Unlock(2, n)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	a, b := ForRID(page.RID{Page: 1, Slot: 0}), ForRID(page.RID{Page: 2, Slot: 0})
	if err := m.Lock(1, a, X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, b, X); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(1, b, X) }() // txn 1 waits on txn 2
	time.Sleep(30 * time.Millisecond)
	// txn 2 requesting a closes the cycle and must be refused.
	err := m.Lock(2, a, X)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// Victim releases; txn 1 proceeds.
	m.ReleaseAll(2)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if _, _, dl := m.Stats(); dl != 1 {
		t.Errorf("deadlocks = %d, want 1", dl)
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two S holders both upgrading is the classic unresolvable case: the
	// second upgrader must get ErrDeadlock.
	m := NewManager()
	n := ForRID(page.RID{Page: 9, Slot: 9})
	m.Lock(1, n, S)
	m.Lock(2, n, S)
	first := make(chan error, 1)
	go func() { first <- m.Lock(1, n, X) }()
	time.Sleep(30 * time.Millisecond)
	if err := m.Lock(2, n, X); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second upgrade: %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
}

func TestTryLock(t *testing.T) {
	m := NewManager()
	n := ForNode(7)
	if !m.TryLock(1, n, S) {
		t.Fatal("TryLock S on free name failed")
	}
	if m.TryLock(2, n, X) {
		t.Fatal("TryLock X succeeded over S holder")
	}
	if !m.TryLock(2, n, S) {
		t.Fatal("TryLock S alongside S failed")
	}
	// Upgrade attempt via TryLock fails with other holder present.
	if m.TryLock(1, n, X) {
		t.Fatal("TryLock upgrade succeeded with two holders")
	}
	m.Unlock(2, n)
	if !m.TryLock(1, n, X) {
		t.Fatal("TryLock upgrade failed as sole holder")
	}
}

func TestReleaseAll(t *testing.T) {
	m := NewManager()
	names := []Name{ForNode(1), ForNode(2), ForRID(page.RID{Page: 1, Slot: 1})}
	for _, n := range names {
		if err := m.Lock(5, n, X); err != nil {
			t.Fatal(err)
		}
	}
	m.ReleaseAll(5)
	for _, n := range names {
		if _, held := m.Holding(5, n); held {
			t.Errorf("still holding %v after ReleaseAll", n)
		}
	}
	// Idempotent.
	m.ReleaseAll(5)
}

func TestCopyHoldersReplicatesSignalingLocks(t *testing.T) {
	m := NewManager()
	orig, sibling := ForNode(10), ForNode(11)
	m.Lock(1, orig, S)
	m.Lock(2, orig, S)
	m.CopyHolders(orig, sibling)
	holders := m.Holders(sibling)
	if len(holders) != 2 {
		t.Fatalf("sibling holders = %v", holders)
	}
	// Node deletion probe: X on sibling must fail while signaling locks
	// exist and succeed after they drain.
	if m.TryLock(9, sibling, X) {
		t.Fatal("X acquired despite replicated signaling locks")
	}
	m.Unlock(1, sibling)
	m.Unlock(2, sibling)
	if !m.TryLock(9, sibling, X) {
		t.Fatal("X refused after signaling locks drained")
	}
}

func TestCopyHoldersEmptySource(t *testing.T) {
	m := NewManager()
	m.CopyHolders(ForNode(1), ForNode(2)) // no-op, no panic
	if len(m.Holders(ForNode(2))) != 0 {
		t.Error("phantom holders created")
	}
}

func TestBlockOnTransactionLock(t *testing.T) {
	// The predicate-blocking idiom of §10.3: owner holds X on its own
	// ID; a blocker requests S and is released when the owner finishes.
	m := NewManager()
	owner := page.TxnID(42)
	if err := m.Lock(owner, ForTxn(owner), X); err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan error, 1)
	go func() {
		err := m.Lock(77, ForTxn(owner), S)
		if err == nil {
			m.Unlock(77, ForTxn(owner))
		}
		unblocked <- err
	}()
	select {
	case <-unblocked:
		t.Fatal("blocker ran before owner finished")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(owner) // commit
	if err := <-unblocked; err != nil {
		t.Fatal(err)
	}
}

func TestAbortWaiter(t *testing.T) {
	m := NewManager()
	n := ForNode(3)
	m.Lock(1, n, X)
	errc := make(chan error, 1)
	go func() { errc <- m.Lock(2, n, X) }()
	time.Sleep(20 * time.Millisecond)
	kill := errors.New("killed")
	m.AbortWaiter(2, kill)
	if err := <-errc; !errors.Is(err, kill) {
		t.Fatalf("err = %v, want killed", err)
	}
	// Lock still held by 1 and releasable.
	m.Unlock(1, n)
	if !m.TryLock(3, n, X) {
		t.Fatal("lock not free after abort")
	}
}

func TestConcurrentStress(t *testing.T) {
	// Many transactions locking random names in a fixed global order
	// (so no deadlock is possible); everything must be granted and the
	// protected counters must be exact.
	m := NewManager()
	const txns, names, iters = 8, 4, 200
	counters := make([]int, names)
	var wg sync.WaitGroup
	for ti := 0; ti < txns; ti++ {
		wg.Add(1)
		go func(id page.TxnID) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := ForNode(page.PageID(i % names))
				if err := m.Lock(id, n, X); err != nil {
					t.Error(err)
					return
				}
				counters[i%names]++
				m.Unlock(id, n)
			}
		}(page.TxnID(ti + 1))
	}
	wg.Wait()
	for i, c := range counters {
		if c != txns*iters/names {
			t.Errorf("counter %d = %d, want %d", i, c, txns*iters/names)
		}
	}
}

func TestNameStrings(t *testing.T) {
	if s := ForRID(page.RID{Page: 1, Slot: 2}).String(); s != "rec:1.2" {
		t.Errorf("rid name = %q", s)
	}
	if s := ForNode(3).String(); s != "node:3" {
		t.Errorf("node name = %q", s)
	}
	if s := ForTxn(4).String(); s != "txn:4" {
		t.Errorf("txn name = %q", s)
	}
	if S.String() != "S" || X.String() != "X" {
		t.Error("mode strings")
	}
}

// TestDetectGraceSkipsBrieflyHeldConflicts verifies the deadlock-detection
// back-off: a conflict released within the grace window is granted without
// ever paying a waits-for-graph pass, and the skip is counted.
func TestDetectGraceSkipsBrieflyHeldConflicts(t *testing.T) {
	old := detectGrace
	detectGrace = time.Second // wide window: scheduling noise cannot expire it
	defer func() { detectGrace = old }()
	m := NewManager()
	n := ForRID(page.RID{Page: 1, Slot: 1})
	if err := m.Lock(1, n, X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(2, n, X) }()
	// Wait until txn 2 is enqueued, then release well inside the grace
	// window so it is granted before the detector would run.
	for m.Metrics().Snapshot()["lock.waits"] == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	m.Unlock(1, n)
	if err := <-done; err != nil {
		t.Fatalf("briefly-blocked lock failed: %v", err)
	}
	snap := m.Metrics().Snapshot()
	if got := snap["lock.detect_skips"]; got != 1 {
		t.Errorf("lock.detect_skips = %d, want 1", got)
	}
	if got := snap["lock.waits"]; got != 1 {
		t.Errorf("lock.waits = %d, want 1", got)
	}
}

// TestStripesGaugeMatchesAdaptiveCount verifies the stripe count is the
// GOMAXPROCS-derived value from package shards, not a hard-coded constant.
func TestStripesGaugeMatchesAdaptiveCount(t *testing.T) {
	m := NewManager()
	want := int64(shards.Count(0))
	if got := m.Metrics().Snapshot()["lock.stripes"]; got != want {
		t.Errorf("lock.stripes gauge = %d, want %d", got, want)
	}
}
