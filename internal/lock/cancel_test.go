package lock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/page"
)

// TestCancelRemovesWaiter pins the basic cancellation contract: a waiter
// whose context fires leaves the queue with nothing behind — no orphan
// queue entry, no held lock — and the name remains fully usable.
func TestCancelRemovesWaiter(t *testing.T) {
	m := NewManager()
	n := ForRID(page.RID{Page: 1, Slot: 1})
	if err := m.Lock(1, n, X); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- m.LockCtx(ctx, 2, n, X) }()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("LockCtx = %v, want context.Canceled", err)
	}
	if _, held := m.Holding(2, n); held {
		t.Error("cancelled waiter holds the lock")
	}
	reg := m.Metrics()
	if got := reg.Value("lock.queue_waiters"); got != 0 {
		t.Errorf("queue_waiters = %d after cancel, want 0", got)
	}
	if got := reg.Value("lock.cancels"); got != 1 {
		t.Errorf("cancels = %d, want 1", got)
	}
	if got := reg.Value("lock.wait_nanos"); got <= 0 {
		t.Errorf("wait_nanos = %d, want > 0", got)
	}
	// The holder's unlock must not wedge on the departed waiter, and a
	// fresh locker gets straight through.
	m.Unlock(1, n)
	if err := m.Lock(3, n, X); err != nil {
		t.Fatal(err)
	}
}

// TestCancelGrantRace races cancellation against a simultaneous grant, many
// times. Exactly one side must win: nil means the lock is held (the grant
// stood), context.Canceled means it is not. Either way the queue must be
// empty and the name immediately reusable.
func TestCancelGrantRace(t *testing.T) {
	m := NewManager()
	n := ForNode(7)
	for i := 0; i < 400; i++ {
		holder := page.TxnID(i*3 + 1)
		waiter := page.TxnID(i*3 + 2)
		probe := page.TxnID(i*3 + 3)
		if err := m.Lock(holder, n, X); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() { errc <- m.LockCtx(ctx, waiter, n, X) }()
		if i%2 == 0 {
			time.Sleep(time.Millisecond) // some iterations: parked before the race
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); m.Unlock(holder, n) }()
		go func() { defer wg.Done(); cancel() }()
		wg.Wait()
		err := <-errc
		_, held := m.Holding(waiter, n)
		switch {
		case err == nil:
			if !held {
				t.Fatalf("iter %d: grant reported but lock not held", i)
			}
			m.Unlock(waiter, n)
		case errors.Is(err, context.Canceled):
			if held {
				t.Fatalf("iter %d: cancellation reported but lock held", i)
			}
		default:
			t.Fatalf("iter %d: unexpected error %v", i, err)
		}
		if got := m.Metrics().Value("lock.queue_waiters"); got != 0 {
			t.Fatalf("iter %d: queue_waiters = %d, want 0", i, got)
		}
		if err := m.Lock(probe, n, X); err != nil {
			t.Fatalf("iter %d: probe lock: %v", i, err)
		}
		m.Unlock(probe, n)
	}
}

// TestCancelPromotesLaterWaiter pins the mid-queue departure path: when a
// queued X waiter is cancelled, a compatible S waiter queued behind it must
// be granted immediately rather than waiting for the holder to unlock.
func TestCancelPromotesLaterWaiter(t *testing.T) {
	m := NewManager()
	n := ForNode(9)
	if err := m.Lock(1, n, S); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	xerr := make(chan error, 1)
	go func() { xerr <- m.LockCtx(ctx, 2, n, X) }()
	time.Sleep(20 * time.Millisecond) // X parked behind the held S
	serr := make(chan error, 1)
	go func() { serr <- m.Lock(3, n, S) }()
	time.Sleep(20 * time.Millisecond) // S queued behind the X (FIFO)
	cancel()
	if err := <-xerr; !errors.Is(err, context.Canceled) {
		t.Fatalf("X waiter = %v, want context.Canceled", err)
	}
	select {
	case err := <-serr:
		if err != nil {
			t.Fatalf("S waiter = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("S waiter not promoted after the X ahead of it was cancelled")
	}
	m.Unlock(1, n)
	m.Unlock(3, n)
}
