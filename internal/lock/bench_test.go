package lock

import (
	"sync/atomic"
	"testing"

	"repro/internal/page"
)

// BenchmarkLockAcquireReleaseParallel measures the uncontended grant/release
// fast path across goroutines: every goroutine locks names disjoint from all
// other goroutines', so the only possible contention is on the manager's own
// synchronization (run with -cpu 1,4,16 to see scaling).
func BenchmarkLockAcquireReleaseParallel(b *testing.B) {
	m := NewManager()
	var gid atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		id := uint64(gid.Add(1))
		txn := page.TxnID(id)
		i := uint64(0)
		for pb.Next() {
			n := Name{Space: SpaceNode, Key: id<<20 | i%1024}
			if err := m.Lock(txn, n, X); err != nil {
				b.Error(err)
				return
			}
			m.Unlock(txn, n)
			i++
		}
	})
}
