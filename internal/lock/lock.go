// Package lock implements the transaction lock manager used by the hybrid
// isolation mechanism of the paper: two-phase S/X locks on data records,
// transaction-ID locks used to block "on a predicate" by blocking on the
// predicate's owner transaction (§10.3), and signaling locks on tree nodes
// that protect node deletion via the drain technique (§7.2).
//
// Unlike latches (package latch), locks live in a hash table keyed by a
// logical name, are held to a transaction discipline, and participate in
// deadlock detection: when a request would block, the manager searches the
// waits-for graph for a cycle and, if the requester is part of one, denies
// the request with ErrDeadlock so the caller can abort and retry.
//
// The lock table is hash-partitioned by Name into stripes, each with its
// own mutex, so the grant/release fast path on unrelated names never
// serializes on a manager-wide lock. Per-transaction held-lock sets are
// striped separately by transaction id; the locking discipline is always
// name-stripe before held-stripe, and never two name-stripes at once
// except in CopyHolders, which orders them by stripe index. Deadlock
// detection is the deliberate exception: it is a slow path that runs under
// a single detector mutex and snapshots waits-for edges stripe by stripe —
// detection is occasional and may serialize; the fast path must not.
package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/page"
	"repro/internal/shards"
	"repro/internal/stats"
)

// Mode is a lock mode.
type Mode int

// Lock modes. X conflicts with everything; S conflicts with X only.
const (
	S Mode = iota
	X
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

func compatible(a, b Mode) bool { return a == S && b == S }

// covers reports whether holding mode a satisfies a request for mode b.
func covers(a, b Mode) bool { return a == X || b == S }

// Space is a lock namespace; names from different spaces never collide.
type Space uint8

// Lock namespaces.
const (
	// SpaceRecord locks data records by RID (two-phase data record
	// locking, §4.3).
	SpaceRecord Space = iota
	// SpaceNode holds signaling locks on tree nodes (§7.2). These are
	// ordinary S locks as far as the manager is concerned.
	SpaceNode
	// SpaceTxn holds each transaction's self lock: a transaction takes
	// an X lock on its own ID at start; another operation blocks "on
	// that transaction" (e.g., on its predicate) by requesting S (§10.3).
	SpaceTxn
)

// Name is a lock name.
type Name struct {
	Space Space
	Key   uint64
}

// String implements fmt.Stringer.
func (n Name) String() string {
	switch n.Space {
	case SpaceRecord:
		return fmt.Sprintf("rec:%d.%d", n.Key>>16, n.Key&0xFFFF)
	case SpaceNode:
		return fmt.Sprintf("node:%d", n.Key)
	default:
		return fmt.Sprintf("txn:%d", n.Key)
	}
}

// ForRID returns the lock name of a data record.
func ForRID(r page.RID) Name {
	return Name{Space: SpaceRecord, Key: uint64(r.Page)<<16 | uint64(r.Slot)}
}

// ForNode returns the signaling-lock name of a tree node.
func ForNode(id page.PageID) Name { return Name{Space: SpaceNode, Key: uint64(id)} }

// ForTxn returns the self-lock name of a transaction.
func ForTxn(id page.TxnID) Name { return Name{Space: SpaceTxn, Key: uint64(id)} }

// ErrDeadlock is returned to the requester chosen as deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock detected")

type waiter struct {
	txn     page.TxnID
	mode    Mode
	upgrade bool
	done    chan error
}

type lockList struct {
	granted map[page.TxnID]Mode
	queue   []*waiter
}

// detectGrace is how long a blocked request waits to be granted before it
// pays for a full waits-for-graph detection pass. Most conflicts are
// released within microseconds (a latch-length record lock, a signaling
// lock during a short drain), so the stripe-by-stripe snapshot would be
// pure overhead for them; a real deadlock is stable and loses only the
// grace period. Requests granted within the grace are counted in
// lock.detect_skips. A variable so tests can widen or collapse the window.
var detectGrace = time.Millisecond

// stripe is one partition of the lock table.
type stripe struct {
	mu        sync.Mutex
	table     map[Name]*lockList
	contended *stats.Counter
}

func (st *stripe) lock() {
	if st.mu.TryLock() {
		return
	}
	st.contended.Add(1)
	st.mu.Lock()
}

func (st *stripe) list(n Name) *lockList {
	ll, ok := st.table[n]
	if !ok {
		ll = &lockList{granted: make(map[page.TxnID]Mode)}
		st.table[n] = ll
	}
	return ll
}

// nameOfLocked finds the name of a list within the stripe (reverse lookup;
// lists are few and short-lived so the linear scan is acceptable).
func (st *stripe) nameOfLocked(target *lockList) Name {
	for n, ll := range st.table {
		if ll == target {
			return n
		}
	}
	return Name{}
}

// heldStripe is one partition of the per-transaction held-lock sets.
type heldStripe struct {
	mu   sync.Mutex
	held map[page.TxnID]map[Name]Mode
}

// Manager is the lock manager. The zero value is not usable; call NewManager.
type Manager struct {
	stripes     []stripe
	heldStripes []heldStripe

	// detectorMu serializes deadlock detection (slow path only).
	detectorMu sync.Mutex

	reg          *stats.Registry
	acquisitions *stats.Counter
	waits        *stats.Counter
	deadlocks    *stats.Counter
	contended    *stats.Counter
	detectSkips  *stats.Counter
	cancels      *stats.Counter
	waitNanos    *stats.Counter
	waitHist     *stats.Histogram

	// txnWaits accumulates per-transaction blocked nanoseconds
	// (page.TxnID → *atomic.Int64) so an operation can attribute lock-wait
	// time to itself by delta. Touched only on the block slow path and at
	// transaction end, never on an uncontended grant.
	txnWaits sync.Map
}

// NewManager returns an empty lock manager. The stripe count adapts to
// GOMAXPROCS (see package shards) and is surfaced by the lock.stripes gauge.
func NewManager() *Manager {
	m := &Manager{reg: stats.NewRegistry()}
	n := shards.Count(0)
	m.stripes = make([]stripe, n)
	m.heldStripes = make([]heldStripe, n)
	m.acquisitions = m.reg.Counter("lock.acquisitions")
	m.waits = m.reg.Counter("lock.waits")
	m.deadlocks = m.reg.Counter("lock.deadlocks")
	m.contended = m.reg.Counter("lock.stripe_contention")
	m.detectSkips = m.reg.Counter("lock.detect_skips")
	m.cancels = m.reg.Counter("lock.cancels")
	m.waitNanos = m.reg.Counter("lock.wait_nanos")
	m.waitHist = m.reg.Histogram("lock.wait")
	m.reg.Gauge("lock.stripes", func() int64 { return int64(len(m.stripes)) })
	m.reg.Gauge("lock.queue_waiters", func() int64 {
		var total int64
		for i := range m.stripes {
			st := &m.stripes[i]
			st.lock()
			for _, ll := range st.table {
				total += int64(len(ll.queue))
			}
			st.mu.Unlock()
		}
		return total
	})
	for i := range m.stripes {
		m.stripes[i].table = make(map[Name]*lockList)
		m.stripes[i].contended = m.contended
	}
	for i := range m.heldStripes {
		m.heldStripes[i].held = make(map[page.TxnID]map[Name]Mode)
	}
	return m
}

// Metrics exposes the manager's counter registry.
func (m *Manager) Metrics() *stats.Registry { return m.reg }

func (m *Manager) stripeOf(n Name) *stripe {
	h := (n.Key + uint64(n.Space)<<56 + 1) * 0x9E3779B97F4A7C15
	return &m.stripes[(h>>32)%uint64(len(m.stripes))]
}

func (m *Manager) heldStripeOf(txn page.TxnID) *heldStripe {
	h := (uint64(txn) + 1) * 0x9E3779B97F4A7C15
	return &m.heldStripes[(h>>32)%uint64(len(m.heldStripes))]
}

// noteHeld records that txn holds n in mode. Callers may hold n's stripe
// lock (the order is always name-stripe, then held-stripe).
func (m *Manager) noteHeld(txn page.TxnID, n Name, mode Mode) {
	hs := m.heldStripeOf(txn)
	hs.mu.Lock()
	hm, ok := hs.held[txn]
	if !ok {
		hm = make(map[Name]Mode)
		hs.held[txn] = hm
	}
	hm[n] = mode
	hs.mu.Unlock()
}

// dropHeld removes n from txn's held set.
func (m *Manager) dropHeld(txn page.TxnID, n Name) {
	hs := m.heldStripeOf(txn)
	hs.mu.Lock()
	if hm := hs.held[txn]; hm != nil {
		delete(hm, n)
		if len(hm) == 0 {
			delete(hs.held, txn)
		}
	}
	hs.mu.Unlock()
}

// canGrantLocked reports whether txn's request for mode conflicts with no
// other granted holder of the list.
func canGrantLocked(ll *lockList, txn page.TxnID, mode Mode) bool {
	for holder, hmode := range ll.granted {
		if holder == txn {
			continue
		}
		if !compatible(mode, hmode) {
			return false
		}
	}
	return true
}

// Lock acquires the named lock in the given mode for txn, blocking until
// granted. It is re-entrant (a holder of X implicitly holds S) and handles
// S→X upgrade. If granting would complete a waits-for cycle, the request
// fails immediately with ErrDeadlock.
func (m *Manager) Lock(txn page.TxnID, n Name, mode Mode) error {
	return m.LockCtx(context.Background(), txn, n, mode)
}

// LockCtx is Lock with a cancellable wait: if ctx is done while the request
// is queued, the waiter removes itself from the queue (and thereby from the
// waits-for graph) and returns ctx.Err(). A request that can be granted
// immediately is granted regardless of ctx — cancellation is only honored
// at the blocking point; callers check ctx at their own safe points.
func (m *Manager) LockCtx(ctx context.Context, txn page.TxnID, n Name, mode Mode) error {
	st := m.stripeOf(n)
	st.lock()
	ll := st.list(n)

	if cur, ok := ll.granted[txn]; ok {
		if covers(cur, mode) {
			st.mu.Unlock()
			return nil
		}
		// S→X upgrade.
		if canGrantLocked(ll, txn, X) {
			ll.granted[txn] = X
			m.noteHeld(txn, n, X)
			m.acquisitions.Inc()
			st.mu.Unlock()
			return nil
		}
		w := &waiter{txn: txn, mode: X, upgrade: true, done: make(chan error, 1)}
		// Upgrades queue ahead of ordinary waiters (after other
		// upgrades) to avoid an obvious livelock.
		i := 0
		for i < len(ll.queue) && ll.queue[i].upgrade {
			i++
		}
		ll.queue = append(ll.queue, nil)
		copy(ll.queue[i+1:], ll.queue[i:])
		ll.queue[i] = w
		return m.block(ctx, st, ll, w, n)
	}

	// Fresh request: strict FIFO — grant only if compatible with the
	// granted group and nothing waits ahead.
	if len(ll.queue) == 0 && canGrantLocked(ll, txn, mode) {
		ll.granted[txn] = mode
		m.noteHeld(txn, n, mode)
		m.acquisitions.Inc()
		st.mu.Unlock()
		return nil
	}
	w := &waiter{txn: txn, mode: mode, done: make(chan error, 1)}
	ll.queue = append(ll.queue, w)
	return m.block(ctx, st, ll, w, n)
}

// block finishes a Lock call whose waiter has been enqueued. The stripe
// mutex is held on entry and released before the deadlock check and the
// wait itself, so detection never blocks the grant/release fast path on
// other stripes.
//
// A short grace wait runs before the first (and only) detection pass:
// briefly-held conflicts resolve within it and never pay the
// stripe-by-stripe waits-for snapshot. A genuine deadlock is stable, so
// delaying its detection by the grace period costs latency, not
// correctness.
func (m *Manager) block(ctx context.Context, st *stripe, ll *lockList, w *waiter, n Name) error {
	m.waits.Inc()
	st.mu.Unlock()
	start := time.Now()
	defer func() {
		waited := time.Since(start).Nanoseconds()
		m.waitNanos.Add(waited)
		m.waitHist.Observe(waited)
		m.addTxnWait(w.txn, waited)
	}()
	grace := time.NewTimer(detectGrace)
	select {
	case err := <-w.done:
		grace.Stop()
		m.detectSkips.Inc()
		return err
	case <-ctx.Done():
		grace.Stop()
		return m.cancelWaiter(st, ll, w, n, ctx.Err())
	case <-grace.C:
	}
	if m.detectDeadlock(w.txn) {
		st.lock()
		removed := removeWaiterLocked(ll, w)
		st.mu.Unlock()
		if removed {
			m.deadlocks.Inc()
			return fmt.Errorf("%w (txn %d on %s)", ErrDeadlock, w.txn, n)
		}
		// The waiter was granted (or aborted) while detection ran;
		// the buffered channel already carries the outcome.
	}
	select {
	case err := <-w.done:
		return err
	case <-ctx.Done():
		return m.cancelWaiter(st, ll, w, n, ctx.Err())
	}
}

// cancelWaiter withdraws a queued waiter whose context fired. If the waiter
// is still queued it is removed — its departure may unblock compatible
// waiters behind it, and an empty list is reclaimed — and the cancellation
// cause is returned. If the grant (or an external abort) raced ahead, the
// buffered channel already carries the authoritative outcome and the grant
// stands: the caller observes its next safe point instead.
func (m *Manager) cancelWaiter(st *stripe, ll *lockList, w *waiter, n Name, cause error) error {
	st.lock()
	removed := removeWaiterLocked(ll, w)
	if removed {
		m.promoteLocked(st, ll)
		if len(ll.granted) == 0 && len(ll.queue) == 0 {
			delete(st.table, n)
		}
	}
	st.mu.Unlock()
	if removed {
		m.cancels.Inc()
		return cause
	}
	return <-w.done
}

// removeWaiterLocked removes w from the queue, reporting whether it was
// still enqueued.
func removeWaiterLocked(ll *lockList, w *waiter) bool {
	for i, q := range ll.queue {
		if q == w {
			ll.queue = append(ll.queue[:i], ll.queue[i+1:]...)
			return true
		}
	}
	return false
}

// TryLock attempts to acquire without waiting and reports success. Used by
// node deletion to probe for signaling locks ("checks for signaling locks
// by trying to acquire an X-mode lock", §7.2).
func (m *Manager) TryLock(txn page.TxnID, n Name, mode Mode) bool {
	st := m.stripeOf(n)
	st.lock()
	defer st.mu.Unlock()
	ll := st.list(n)
	if cur, ok := ll.granted[txn]; ok {
		if covers(cur, mode) {
			return true
		}
		if canGrantLocked(ll, txn, X) {
			ll.granted[txn] = X
			m.noteHeld(txn, n, X)
			m.acquisitions.Inc()
			return true
		}
		return false
	}
	if len(ll.queue) == 0 && canGrantLocked(ll, txn, mode) {
		ll.granted[txn] = mode
		m.noteHeld(txn, n, mode)
		m.acquisitions.Inc()
		return true
	}
	return false
}

// Unlock releases txn's hold on n and grants any now-compatible waiters.
func (m *Manager) Unlock(txn page.TxnID, n Name) {
	st := m.stripeOf(n)
	st.lock()
	m.releaseLocked(st, txn, n)
	st.mu.Unlock()
}

func (m *Manager) releaseLocked(st *stripe, txn page.TxnID, n Name) {
	ll, ok := st.table[n]
	if !ok {
		return
	}
	if _, held := ll.granted[txn]; !held {
		return
	}
	delete(ll.granted, txn)
	m.dropHeld(txn, n)
	m.promoteLocked(st, ll)
	if len(ll.granted) == 0 && len(ll.queue) == 0 {
		delete(st.table, n)
	}
}

// promoteLocked grants queued waiters in FIFO order while compatible.
func (m *Manager) promoteLocked(st *stripe, ll *lockList) {
	for len(ll.queue) > 0 {
		w := ll.queue[0]
		if w.upgrade {
			if !canGrantLocked(ll, w.txn, X) {
				return
			}
			ll.granted[w.txn] = X
		} else {
			if !canGrantLocked(ll, w.txn, w.mode) {
				return
			}
			ll.granted[w.txn] = w.mode
		}
		m.noteHeld(w.txn, st.nameOfLocked(ll), ll.granted[w.txn])
		m.acquisitions.Inc()
		ll.queue = ll.queue[1:]
		w.done <- nil
	}
}

// addTxnWait folds blocked nanoseconds into txn's wait accumulator. Runs on
// the block slow path only.
func (m *Manager) addTxnWait(txn page.TxnID, nanos int64) {
	if !stats.Enabled {
		return
	}
	v, ok := m.txnWaits.Load(txn)
	if !ok {
		v, _ = m.txnWaits.LoadOrStore(txn, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(nanos)
}

// TxnWaitNanos returns the cumulative nanoseconds txn has spent blocked in
// the manager so far. Operations read it at entry and exit and attribute the
// delta to themselves.
func (m *Manager) TxnWaitNanos(txn page.TxnID) int64 {
	if v, ok := m.txnWaits.Load(txn); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// ReleaseAll releases every lock held by txn (transaction end, 2PL).
func (m *Manager) ReleaseAll(txn page.TxnID) {
	m.txnWaits.Delete(txn)
	hs := m.heldStripeOf(txn)
	hs.mu.Lock()
	names := make([]Name, 0, len(hs.held[txn]))
	for n := range hs.held[txn] {
		names = append(names, n)
	}
	hs.mu.Unlock()
	for _, n := range names {
		m.Unlock(txn, n)
	}
}

// Holding returns the mode txn holds on n, and whether it holds it at all.
func (m *Manager) Holding(txn page.TxnID, n Name) (Mode, bool) {
	st := m.stripeOf(n)
	st.lock()
	defer st.mu.Unlock()
	ll, ok := st.table[n]
	if !ok {
		return 0, false
	}
	mode, ok := ll.granted[txn]
	return mode, ok
}

// Holders returns the transactions currently granted the named lock.
func (m *Manager) Holders(n Name) []page.TxnID {
	st := m.stripeOf(n)
	st.lock()
	defer st.mu.Unlock()
	ll, ok := st.table[n]
	if !ok {
		return nil
	}
	out := make([]page.TxnID, 0, len(ll.granted))
	for t := range ll.granted {
		out = append(out, t)
	}
	return out
}

// CopyHolders grants every current holder of src the same mode on dst, as
// required when a node split must replicate the signaling locks of the
// original node onto the new sibling (§7.2, §10.3). Holders that would
// conflict on dst are skipped (cannot happen for the all-S signaling use).
// The two stripes involved are locked in index order, the fixed discipline
// for every two-stripe operation.
func (m *Manager) CopyHolders(src, dst Name) {
	ss, ds := m.stripeOf(src), m.stripeOf(dst)
	first, second := ss, ds
	if stripeIndex(m, ds) < stripeIndex(m, ss) {
		first, second = ds, ss
	}
	first.lock()
	if second != first {
		second.lock()
	}
	defer func() {
		if second != first {
			second.mu.Unlock()
		}
		first.mu.Unlock()
	}()

	sl, ok := ss.table[src]
	if !ok {
		return
	}
	dl := ds.list(dst)
	for txn, mode := range sl.granted {
		if cur, held := dl.granted[txn]; held && covers(cur, mode) {
			continue
		}
		if !canGrantLocked(dl, txn, mode) {
			continue
		}
		dl.granted[txn] = mode
		m.noteHeld(txn, dst, mode)
	}
	if len(dl.granted) == 0 && len(dl.queue) == 0 {
		delete(ds.table, dst)
	}
}

func stripeIndex(m *Manager, st *stripe) int {
	for i := range m.stripes {
		if &m.stripes[i] == st {
			return i
		}
	}
	return 0
}

// detectDeadlock reports whether start is on a cycle of the waits-for
// graph. An enqueued waiter waits for every granted holder it conflicts
// with and for every earlier queued waiter it conflicts with (FIFO order is
// a real dependency). Detection serializes on its own mutex and snapshots
// the stripes one at a time; a cycle whose members are all blocked is
// stable and is therefore seen by the last transaction to block.
func (m *Manager) detectDeadlock(start page.TxnID) bool {
	m.detectorMu.Lock()
	defer m.detectorMu.Unlock()
	adj := make(map[page.TxnID][]page.TxnID)
	for i := range m.stripes {
		st := &m.stripes[i]
		st.lock()
		for _, ll := range st.table {
			for i, w := range ll.queue {
				for holder, hmode := range ll.granted {
					if holder != w.txn && !compatible(w.mode, hmode) {
						adj[w.txn] = append(adj[w.txn], holder)
					}
				}
				for j := 0; j < i; j++ {
					ahead := ll.queue[j]
					if ahead.txn != w.txn && !compatible(w.mode, ahead.mode) {
						adj[w.txn] = append(adj[w.txn], ahead.txn)
					}
				}
			}
		}
		st.mu.Unlock()
	}
	// DFS from start looking for a path back to start.
	seen := make(map[page.TxnID]bool)
	var dfs func(t page.TxnID) bool
	dfs = func(t page.TxnID) bool {
		for _, next := range adj[t] {
			if next == start {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// AbortWaiter cancels any pending request by txn, failing it with the
// provided error. Used when a transaction is being killed externally.
func (m *Manager) AbortWaiter(txn page.TxnID, err error) {
	for i := range m.stripes {
		st := &m.stripes[i]
		st.lock()
		for _, ll := range st.table {
			for i := 0; i < len(ll.queue); i++ {
				if ll.queue[i].txn == txn {
					w := ll.queue[i]
					ll.queue = append(ll.queue[:i], ll.queue[i+1:]...)
					w.done <- err
					i--
				}
			}
			m.promoteLocked(st, ll)
		}
		st.mu.Unlock()
	}
}

// Stats returns cumulative counters: total grants, requests that waited,
// and deadlocks detected (read through the stats registry).
func (m *Manager) Stats() (acquisitions, waits, deadlocks int64) {
	return m.acquisitions.Load(), m.waits.Load(), m.deadlocks.Load()
}
