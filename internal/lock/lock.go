// Package lock implements the transaction lock manager used by the hybrid
// isolation mechanism of the paper: two-phase S/X locks on data records,
// transaction-ID locks used to block "on a predicate" by blocking on the
// predicate's owner transaction (§10.3), and signaling locks on tree nodes
// that protect node deletion via the drain technique (§7.2).
//
// Unlike latches (package latch), locks live in a hash table keyed by a
// logical name, are held to a transaction discipline, and participate in
// deadlock detection: when a request would block, the manager searches the
// waits-for graph for a cycle and, if the requester is part of one, denies
// the request with ErrDeadlock so the caller can abort and retry.
package lock

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/page"
)

// Mode is a lock mode.
type Mode int

// Lock modes. X conflicts with everything; S conflicts with X only.
const (
	S Mode = iota
	X
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

func compatible(a, b Mode) bool { return a == S && b == S }

// covers reports whether holding mode a satisfies a request for mode b.
func covers(a, b Mode) bool { return a == X || b == S }

// Space is a lock namespace; names from different spaces never collide.
type Space uint8

// Lock namespaces.
const (
	// SpaceRecord locks data records by RID (two-phase data record
	// locking, §4.3).
	SpaceRecord Space = iota
	// SpaceNode holds signaling locks on tree nodes (§7.2). These are
	// ordinary S locks as far as the manager is concerned.
	SpaceNode
	// SpaceTxn holds each transaction's self lock: a transaction takes
	// an X lock on its own ID at start; another operation blocks "on
	// that transaction" (e.g., on its predicate) by requesting S (§10.3).
	SpaceTxn
)

// Name is a lock name.
type Name struct {
	Space Space
	Key   uint64
}

// String implements fmt.Stringer.
func (n Name) String() string {
	switch n.Space {
	case SpaceRecord:
		return fmt.Sprintf("rec:%d.%d", n.Key>>16, n.Key&0xFFFF)
	case SpaceNode:
		return fmt.Sprintf("node:%d", n.Key)
	default:
		return fmt.Sprintf("txn:%d", n.Key)
	}
}

// ForRID returns the lock name of a data record.
func ForRID(r page.RID) Name {
	return Name{Space: SpaceRecord, Key: uint64(r.Page)<<16 | uint64(r.Slot)}
}

// ForNode returns the signaling-lock name of a tree node.
func ForNode(id page.PageID) Name { return Name{Space: SpaceNode, Key: uint64(id)} }

// ForTxn returns the self-lock name of a transaction.
func ForTxn(id page.TxnID) Name { return Name{Space: SpaceTxn, Key: uint64(id)} }

// ErrDeadlock is returned to the requester chosen as deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock detected")

type waiter struct {
	txn     page.TxnID
	mode    Mode
	upgrade bool
	done    chan error
}

type lockList struct {
	granted map[page.TxnID]Mode
	queue   []*waiter
}

// Manager is the lock manager. The zero value is not usable; call NewManager.
type Manager struct {
	mu    sync.Mutex
	table map[Name]*lockList
	held  map[page.TxnID]map[Name]Mode

	acquisitions int64
	waits        int64
	deadlocks    int64
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		table: make(map[Name]*lockList),
		held:  make(map[page.TxnID]map[Name]Mode),
	}
}

func (m *Manager) list(n Name) *lockList {
	ll, ok := m.table[n]
	if !ok {
		ll = &lockList{granted: make(map[page.TxnID]Mode)}
		m.table[n] = ll
	}
	return ll
}

func (m *Manager) noteHeld(txn page.TxnID, n Name, mode Mode) {
	hm, ok := m.held[txn]
	if !ok {
		hm = make(map[Name]Mode)
		m.held[txn] = hm
	}
	hm[n] = mode
}

// canGrantLocked reports whether txn's request for mode conflicts with no
// other granted holder of the list.
func canGrantLocked(ll *lockList, txn page.TxnID, mode Mode) bool {
	for holder, hmode := range ll.granted {
		if holder == txn {
			continue
		}
		if !compatible(mode, hmode) {
			return false
		}
	}
	return true
}

// Lock acquires the named lock in the given mode for txn, blocking until
// granted. It is re-entrant (a holder of X implicitly holds S) and handles
// S→X upgrade. If granting would complete a waits-for cycle, the request
// fails immediately with ErrDeadlock.
func (m *Manager) Lock(txn page.TxnID, n Name, mode Mode) error {
	m.mu.Lock()
	ll := m.list(n)

	if cur, ok := ll.granted[txn]; ok {
		if covers(cur, mode) {
			m.mu.Unlock()
			return nil
		}
		// S→X upgrade.
		if canGrantLocked(ll, txn, X) {
			ll.granted[txn] = X
			m.noteHeld(txn, n, X)
			m.acquisitions++
			m.mu.Unlock()
			return nil
		}
		w := &waiter{txn: txn, mode: X, upgrade: true, done: make(chan error, 1)}
		// Upgrades queue ahead of ordinary waiters (after other
		// upgrades) to avoid an obvious livelock.
		i := 0
		for i < len(ll.queue) && ll.queue[i].upgrade {
			i++
		}
		ll.queue = append(ll.queue, nil)
		copy(ll.queue[i+1:], ll.queue[i:])
		ll.queue[i] = w
		return m.blockLocked(ll, w, n)
	}

	// Fresh request: strict FIFO — grant only if compatible with the
	// granted group and nothing waits ahead.
	if len(ll.queue) == 0 && canGrantLocked(ll, txn, mode) {
		ll.granted[txn] = mode
		m.noteHeld(txn, n, mode)
		m.acquisitions++
		m.mu.Unlock()
		return nil
	}
	w := &waiter{txn: txn, mode: mode, done: make(chan error, 1)}
	ll.queue = append(ll.queue, w)
	return m.blockLocked(ll, w, n)
}

// blockLocked finishes a Lock call whose waiter has been enqueued. The
// manager mutex is held on entry and released before blocking.
func (m *Manager) blockLocked(ll *lockList, w *waiter, n Name) error {
	m.waits++
	if m.wouldDeadlockLocked(w.txn) {
		m.deadlocks++
		m.removeWaiterLocked(ll, w)
		m.mu.Unlock()
		return fmt.Errorf("%w (txn %d on %s)", ErrDeadlock, w.txn, n)
	}
	m.mu.Unlock()
	return <-w.done
}

func (m *Manager) removeWaiterLocked(ll *lockList, w *waiter) {
	for i, q := range ll.queue {
		if q == w {
			ll.queue = append(ll.queue[:i], ll.queue[i+1:]...)
			return
		}
	}
}

// TryLock attempts to acquire without waiting and reports success. Used by
// node deletion to probe for signaling locks ("checks for signaling locks
// by trying to acquire an X-mode lock", §7.2).
func (m *Manager) TryLock(txn page.TxnID, n Name, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ll := m.list(n)
	if cur, ok := ll.granted[txn]; ok {
		if covers(cur, mode) {
			return true
		}
		if canGrantLocked(ll, txn, X) {
			ll.granted[txn] = X
			m.noteHeld(txn, n, X)
			m.acquisitions++
			return true
		}
		return false
	}
	if len(ll.queue) == 0 && canGrantLocked(ll, txn, mode) {
		ll.granted[txn] = mode
		m.noteHeld(txn, n, mode)
		m.acquisitions++
		return true
	}
	return false
}

// Unlock releases txn's hold on n and grants any now-compatible waiters.
func (m *Manager) Unlock(txn page.TxnID, n Name) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(txn, n)
}

func (m *Manager) releaseLocked(txn page.TxnID, n Name) {
	ll, ok := m.table[n]
	if !ok {
		return
	}
	if _, held := ll.granted[txn]; !held {
		return
	}
	delete(ll.granted, txn)
	if hm := m.held[txn]; hm != nil {
		delete(hm, n)
		if len(hm) == 0 {
			delete(m.held, txn)
		}
	}
	m.promoteLocked(ll)
	if len(ll.granted) == 0 && len(ll.queue) == 0 {
		delete(m.table, n)
	}
}

// promoteLocked grants queued waiters in FIFO order while compatible.
func (m *Manager) promoteLocked(ll *lockList) {
	for len(ll.queue) > 0 {
		w := ll.queue[0]
		if w.upgrade {
			if !canGrantLocked(ll, w.txn, X) {
				return
			}
			ll.granted[w.txn] = X
		} else {
			if !canGrantLocked(ll, w.txn, w.mode) {
				return
			}
			ll.granted[w.txn] = w.mode
		}
		m.noteHeld(w.txn, m.nameOfLocked(ll), ll.granted[w.txn])
		m.acquisitions++
		ll.queue = ll.queue[1:]
		w.done <- nil
	}
}

// nameOfLocked finds the name of a list (reverse lookup; lists are few and
// short-lived so the linear scan is acceptable and keeps the struct small).
func (m *Manager) nameOfLocked(target *lockList) Name {
	for n, ll := range m.table {
		if ll == target {
			return n
		}
	}
	return Name{}
}

// ReleaseAll releases every lock held by txn (transaction end, 2PL).
func (m *Manager) ReleaseAll(txn page.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	hm := m.held[txn]
	names := make([]Name, 0, len(hm))
	for n := range hm {
		names = append(names, n)
	}
	for _, n := range names {
		m.releaseLocked(txn, n)
	}
}

// Holding returns the mode txn holds on n, and whether it holds it at all.
func (m *Manager) Holding(txn page.TxnID, n Name) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ll, ok := m.table[n]
	if !ok {
		return 0, false
	}
	mode, ok := ll.granted[txn]
	return mode, ok
}

// Holders returns the transactions currently granted the named lock.
func (m *Manager) Holders(n Name) []page.TxnID {
	m.mu.Lock()
	defer m.mu.Unlock()
	ll, ok := m.table[n]
	if !ok {
		return nil
	}
	out := make([]page.TxnID, 0, len(ll.granted))
	for t := range ll.granted {
		out = append(out, t)
	}
	return out
}

// CopyHolders grants every current holder of src the same mode on dst, as
// required when a node split must replicate the signaling locks of the
// original node onto the new sibling (§7.2, §10.3). Holders that would
// conflict on dst are skipped (cannot happen for the all-S signaling use).
func (m *Manager) CopyHolders(src, dst Name) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sl, ok := m.table[src]
	if !ok {
		return
	}
	dl := m.list(dst)
	for txn, mode := range sl.granted {
		if cur, held := dl.granted[txn]; held && covers(cur, mode) {
			continue
		}
		if !canGrantLocked(dl, txn, mode) {
			continue
		}
		dl.granted[txn] = mode
		m.noteHeld(txn, dst, mode)
	}
	if len(dl.granted) == 0 && len(dl.queue) == 0 {
		delete(m.table, dst)
	}
}

// wouldDeadlockLocked reports whether start is on a cycle of the waits-for
// graph. An enqueued waiter waits for every granted holder it conflicts
// with and for every earlier queued waiter it conflicts with (FIFO order is
// a real dependency).
func (m *Manager) wouldDeadlockLocked(start page.TxnID) bool {
	adj := make(map[page.TxnID][]page.TxnID)
	for _, ll := range m.table {
		for i, w := range ll.queue {
			for holder, hmode := range ll.granted {
				if holder != w.txn && !compatible(w.mode, hmode) {
					adj[w.txn] = append(adj[w.txn], holder)
				}
			}
			for j := 0; j < i; j++ {
				ahead := ll.queue[j]
				if ahead.txn != w.txn && !compatible(w.mode, ahead.mode) {
					adj[w.txn] = append(adj[w.txn], ahead.txn)
				}
			}
		}
	}
	// DFS from start looking for a path back to start.
	seen := make(map[page.TxnID]bool)
	var dfs func(t page.TxnID) bool
	dfs = func(t page.TxnID) bool {
		for _, next := range adj[t] {
			if next == start {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// AbortWaiter cancels any pending request by txn, failing it with the
// provided error. Used when a transaction is being killed externally.
func (m *Manager) AbortWaiter(txn page.TxnID, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ll := range m.table {
		for i := 0; i < len(ll.queue); i++ {
			if ll.queue[i].txn == txn {
				w := ll.queue[i]
				ll.queue = append(ll.queue[:i], ll.queue[i+1:]...)
				w.done <- err
				i--
			}
		}
		m.promoteLocked(ll)
	}
}

// Stats returns cumulative counters: total grants, requests that waited,
// and deadlocks detected.
func (m *Manager) Stats() (acquisitions, waits, deadlocks int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acquisitions, m.waits, m.deadlocks
}
