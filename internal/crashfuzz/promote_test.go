package crashfuzz

import (
	"fmt"
	"sync"
	"testing"
)

// promoteCorpus is the fixed failover seed corpus: every seed kills the
// primary at a distinct torn write with a live replica attached and promotes
// it; every fifth seed runs the quiesced zero-lag failover, whose promotion
// must preserve every acknowledged outcome exactly.
const promoteCorpus = 120

// TestPromoteFuzz replays the failover corpus and demands zero invariant,
// oracle, or divergence violations on the promoted replica.
func TestPromoteFuzz(t *testing.T) {
	calib, err := Calibrate(0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	n := int64(promoteCorpus)
	if testing.Short() {
		n = 15
	}
	var mu sync.Mutex
	sites := make(map[string]int)
	lagged, zero, losers := 0, 0, 0

	t.Run("seeds", func(t *testing.T) {
		for seed := int64(1); seed <= n; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
				t.Parallel()
				res, err := PromoteSeed(seed, t.TempDir(), calib)
				if err != nil {
					t.Fatal(err)
				}
				mu.Lock()
				sites[res.CrashSite]++
				if res.LostSuffix > 0 {
					lagged++
				}
				if res.Budget < 0 {
					zero++
				}
				losers += res.PromoteLosers
				mu.Unlock()
			})
		}
	})

	// Coverage: the corpus must kill the primary across several write
	// sites, produce both lagged and zero-lag failovers, and promote
	// through a non-empty surviving ATT at least once.
	t.Logf("kill sites: %v", sites)
	t.Logf("lagged failovers: %d, quiesced: %d, losers undone: %d", lagged, zero, losers)
	if testing.Short() {
		return
	}
	if zero == 0 {
		t.Error("corpus never ran a quiesced zero-lag failover")
	}
	if lagged == 0 {
		t.Error("corpus never lost a durable suffix to failover lag")
	}
	if losers == 0 {
		t.Error("no promotion ever undid a surviving in-flight transaction")
	}
}
