package crashfuzz

import (
	"fmt"
	"sync"
	"testing"
)

// corpusSize is the fixed seed corpus; every seed is one full crash cycle
// (distinct byte-offset crash point, torn WAL frames and torn data pages
// alike), and every third seed additionally tears the first restart
// mid-recovery. CI runs the full corpus; -short keeps local iteration fast.
const corpusSize = 210

// TestCrashFuzz replays the fixed seed corpus and demands zero invariant,
// oracle, or model violations. On failure the seed's repro line is in the
// error text.
func TestCrashFuzz(t *testing.T) {
	calib, err := Calibrate(0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if calib < 100_000 {
		t.Fatalf("calibration implausibly small: %d bytes", calib)
	}

	n := int64(corpusSize)
	if testing.Short() {
		n = 24
	}
	var mu sync.Mutex
	sites := make(map[string]int)
	tails := make(map[string]int)
	second := 0

	t.Run("seeds", func(t *testing.T) {
		for seed := int64(1); seed <= n; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
				t.Parallel()
				res, err := RunSeed(seed, t.TempDir(), calib)
				if err != nil {
					t.Fatalf("%v\nrepro: %s", err, res.Repro())
				}
				mu.Lock()
				sites[res.CrashSite]++
				tails[res.TailType]++
				if res.SecondCrash {
					second++
				}
				mu.Unlock()
			})
		}
	})

	// Coverage: the corpus must actually tear both the WAL and data pages
	// (directly or via the double-write journal), land crashes on several
	// distinct tail record types, and fire some mid-recovery crashes.
	t.Logf("crash sites: %v", sites)
	t.Logf("survivor tail types: %v", tails)
	t.Logf("mid-recovery crashes: %d", second)
	if testing.Short() {
		return
	}
	if sites["wal"] == 0 {
		t.Error("corpus never tore a WAL write")
	}
	if sites["walt"] == 0 && tails["Truncate"] == 0 {
		t.Error("corpus never exercised the crash-atomic truncation path")
	}
	if sites["pages"]+sites["dw"] == 0 {
		t.Error("corpus never tore a data-page or journal write")
	}
	if second == 0 {
		t.Error("corpus never crashed mid-recovery")
	}
	if len(tails) < 3 {
		t.Errorf("crash points cover only %d tail record types", len(tails))
	}
}
