// Promote mode: the same seeded crash harness pointed at failover instead
// of restart. One run builds the usual file-backed primary, attaches a live
// streaming replica (internal/repl over an in-memory pipe) BEFORE any data
// exists — so the replica's log is the complete history from LSN 1 — drives
// the standard concurrent workload while the replica continuously repeats
// history, then kills the primary at an arbitrary torn write and promotes
// the replica. Validation is against the replica's own shipped log: a
// promoted replica must be exactly the database some crash-restart of the
// primary would have produced at the replica's applied LSN — structurally
// sound, byte-identical to the survivor log over the shipped prefix, every
// committed-per-prefix entry present exactly once, every loser undone — and
// it must accept new durable work. Commits that land in (appliedLSN,
// flushedLSN] are legitimately lost by failover and asserted nothing about;
// a run with Budget < 0 instead quiesces, lets the replica catch up fully,
// and demands that zero-lag promotion preserves every acknowledged outcome.
package crashfuzz

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/check"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/maintenance"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/recovery"
	"repro/internal/repl"
	"repro/internal/shards"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// replica is the hand-assembled replica-side engine the promote fuzz
// drives: the same parts OpenReplica wires, minus the facade.
type replica struct {
	log   *wal.Log
	disk  *storage.MemDisk
	pool  *buffer.Pool
	locks *lock.Manager
	preds *predicate.Manager
	tm    *txn.Manager
	heap  *heap.File
	recv  *repl.Receiver
	tree  *gist.Tree // opened at promotion
}

func newReplica(dial func() (io.ReadWriteCloser, error)) *replica {
	r := &replica{
		log:   wal.NewReplicaLog(0),
		disk:  storage.NewMemDisk(),
		locks: lock.NewManager(),
		preds: predicate.NewManager(),
	}
	r.pool = buffer.New(r.disk, recoveryPool, r.log)
	r.tm = txn.NewManager(r.log, r.locks, r.preds)
	r.heap = heap.New(r.pool)
	r.heap.RegisterUndo(r.tm)
	r.recv = repl.NewReceiver(repl.ReceiverDeps{
		Log: r.log, Pool: r.pool, Disk: r.disk, TM: r.tm,
		Workers: shards.Workers(),
	}, dial)
	return r
}

func promoteRepro(cfg Config) string {
	return fmt.Sprintf("crashfuzz promote seed %d (budget %d)", cfg.Seed, cfg.Budget)
}

// RunPromote executes one kill-primary-promote-replica cycle; a non-nil
// error is an invariant, oracle, or divergence violation (or a harness
// failure).
func RunPromote(cfg Config) (*Result, error) {
	res := &Result{Seed: cfg.Seed, Budget: cfg.Budget}
	tcfg := gist.Config{MaxEntries: maxEntries, Ops: btree.Ops{}, OptimisticReads: true}

	cp := storage.NewCrashPoint()
	m, err := openMachine(cfg.Dir, cp, workloadPool)
	if err != nil {
		return res, err
	}
	tree, err := gist.Create(m.pool, m.tm, tcfg)
	if err != nil {
		return res, err
	}
	m.tree = tree
	anchor := tree.Anchor()

	ship := repl.NewShipper(repl.PrimaryDeps{Log: m.log, Pool: m.pool, Disk: m.disk, TM: m.tm})
	// The maintenance truncator honors the shipper's clamp exactly as the
	// facade wires it: mid-workload head truncation advances only as far as
	// the replica has acked, so the stream can never hit a truncated hole.
	m.maint = maintenance.New(maintenance.Deps{
		Log:       m.log,
		TM:        m.tm,
		Pool:      m.pool,
		Disk:      m.disk,
		Trees:     func() []*gist.Tree { return []*gist.Tree{m.tree} },
		ReplBound: ship.TruncationBound,
	}, maintenance.Options{
		Manual:          true,
		FlushBatch:      8,
		GCDeadThreshold: 1,
		GCBurstLeaves:   4,
	})

	var dead atomic.Bool
	rep := newReplica(func() (io.ReadWriteCloser, error) {
		if dead.Load() {
			return nil, errors.New("crashfuzz: primary dead")
		}
		c, srv := net.Pipe()
		go ship.Serve(srv)
		return c, nil
	})
	rep.recv.Start()

	mdl := &model{live: make(map[int64]page.RID), maybe: make(map[int64]bool)}
	if err := promoteSetup(m, mdl, ship, rep.recv); err != nil {
		return res, fmt.Errorf("promote setup: %w [%s]", err, promoteRepro(cfg))
	}
	baseline := make(map[page.RID][]byte, len(mdl.live))
	for k, rid := range mdl.live {
		baseline[rid] = btree.EncodeKey(k)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	writers := 1 + rng.Intn(4)
	opsPerWriter := 16 + rng.Intn(12)
	if cfg.Budget >= 0 {
		cp.Arm(cfg.Budget)
	}

	var bugMu sync.Mutex
	var bugs []string
	bug := func(format string, a ...any) {
		bugMu.Lock()
		bugs = append(bugs, fmt.Sprintf(format, a...))
		bugMu.Unlock()
	}
	firstBug := func() error {
		bugMu.Lock()
		defer bugMu.Unlock()
		if len(bugs) == 0 {
			return nil
		}
		return fmt.Errorf("%s [%s]", bugs[0], promoteRepro(cfg))
	}

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			runWriter(m, mdl, cp, cfg.Seed, gid, writers, opsPerWriter, baseline, bug)
		}(g)
	}
	wg.Wait()

	zeroLag := cfg.Budget < 0
	if zeroLag {
		// Quiesced failover: flush everything and let the replica catch up
		// completely before the kill. Promotion must then preserve every
		// acknowledged outcome — the model is asserted in full.
		if err := m.log.FlushAll(); err != nil {
			return res, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := rep.recv.WaitApplied(ctx, m.log.FlushedLSN())
		cancel()
		if err != nil {
			return res, fmt.Errorf("catch-up before quiesced kill: %w [%s]", err, promoteRepro(cfg))
		}
	} else if !cp.Crashed() {
		// Workload finished under budget: the kill lands here instead.
		cp.CrashNow()
	}
	res.CrashSite = cp.Site()

	// Kill the primary: stop shipping first (sessions read the primary's
	// in-memory log state), then abandon the machine. Everything volatile
	// is gone; only the torn files and the replica survive.
	dead.Store(true)
	ship.Close()
	flushedAtKill := m.log.FlushedLSN()
	m.abandon()
	if err := firstBug(); err != nil {
		return res, err
	}

	rep.recv.Stop()
	if err := rep.recv.Err(); err != nil {
		return res, fmt.Errorf("replica stream died with terminal error: %v [%s]", err, promoteRepro(cfg))
	}
	applied := rep.recv.AppliedLSN()
	res.LostSuffix = int64(flushedAtKill) - int64(applied)
	if res.LostSuffix < 0 {
		return res, fmt.Errorf("replica applied %d past the primary's durable frontier %d [%s]",
			applied, flushedAtKill, promoteRepro(cfg))
	}
	if zeroLag && res.LostSuffix != 0 {
		return res, fmt.Errorf("quiesced failover still lost %d LSNs [%s]", res.LostSuffix, promoteRepro(cfg))
	}
	if last := rep.log.LastLSN(); last != applied {
		return res, fmt.Errorf("replica log ends at %d but applied %d [%s]", last, applied, promoteRepro(cfg))
	}
	if last, err := rep.log.Get(applied); err == nil {
		res.TailType = last.Type.String()
	}

	// Divergence check against the survivor: the replica's log must be a
	// byte-identical prefix of what actually became durable on the primary.
	// (The survivor's head may be truncated — compare over the overlap.)
	if err := comparePrefix(cfg, rep.log, applied); err != nil {
		return res, err
	}

	// Failover: undo the surviving ATT through the registered handlers and
	// open the tree read-write.
	losers, err := rep.recv.Promote(func() error {
		gist.RegisterRecoveryHandlers(rep.tm, rep.pool)
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("promote: %v [%s]", err, promoteRepro(cfg))
	}
	res.PromoteLosers = losers
	rep.tree, err = gist.Open(rep.pool, rep.tm, tcfg, anchor)
	if err != nil {
		return res, fmt.Errorf("open tree after promote: %v [%s]", err, promoteRepro(cfg))
	}

	if err := validatePromoted(rep, mdl, zeroLag, tcfg, anchor, res); err != nil {
		return res, fmt.Errorf("after promote: %v [%s]", err, promoteRepro(cfg))
	}

	// The promoted replica accepts new work.
	if err := promotedNewWork(rep, cfg.Seed); err != nil {
		return res, fmt.Errorf("new work after promote: %v [%s]", err, promoteRepro(cfg))
	}
	if _, err := (&check.Checker{Pool: rep.pool, Ops: tcfg.Ops, Anchor: anchor, MaxNSN: rep.log.LastLSN()}).Check(); err != nil {
		return res, fmt.Errorf("after post-promote work: %v [%s]", err, promoteRepro(cfg))
	}
	return res, nil
}

// promoteSetup commits the baseline with the replica already streaming,
// waits for it to catch up, and checkpoints under the shipper's clamp — the
// primary's log head never advances past what the replica has acked, so the
// replica's log stays a complete history from LSN 1.
func promoteSetup(m *machine, mdl *model, ship *repl.Shipper, recv *repl.Receiver) error {
	for i := 0; i < setupKeys; i += 4 {
		tx, err := m.tm.Begin()
		if err != nil {
			return err
		}
		for j := i; j < i+4; j++ {
			rid, err := insertKV(m, tx, int64(j))
			if err != nil {
				return err
			}
			mdl.live[int64(j)] = rid
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		m.txnFinished(tx.ID())
	}
	if err := m.log.FlushAll(); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := recv.WaitApplied(ctx, m.log.FlushedLSN()); err != nil {
		return err
	}
	if _, err := recovery.CheckpointBounded(m.tm, m.pool, m.disk, ship.TruncationBound()); err != nil {
		return err
	}
	return m.disk.Sync()
}

// comparePrefix reopens the survivor's files and checks that every record
// the replica applied is byte-identical to the survivor log's copy. The
// replica must never hold a record the primary's durable log does not.
func comparePrefix(cfg Config, rlog *wal.Log, applied page.LSN) error {
	m2, err := openMachine(cfg.Dir, storage.NewCrashPoint(), recoveryPool)
	if err != nil {
		return fmt.Errorf("reopen survivor: %v [%s]", err, promoteRepro(cfg))
	}
	defer m2.abandon()
	if last := m2.log.LastLSN(); applied > last {
		return fmt.Errorf("replica applied %d but survivor log ends at %d [%s]", applied, last, promoteRepro(cfg))
	}
	for lsn := m2.log.Base() + 1; lsn <= applied; lsn++ {
		a, err := rlog.Get(lsn)
		if err != nil {
			return fmt.Errorf("replica log missing LSN %d: %v [%s]", lsn, err, promoteRepro(cfg))
		}
		b, err := m2.log.Get(lsn)
		if err != nil {
			return fmt.Errorf("survivor log missing LSN %d: %v [%s]", lsn, err, promoteRepro(cfg))
		}
		if !bytes.Equal(a.Encode(), b.Encode()) {
			return fmt.Errorf("log divergence at LSN %d: replica %v vs survivor %v [%s]", lsn, a, b, promoteRepro(cfg))
		}
	}
	return nil
}

// validatePromoted holds the promoted replica to restart's standard against
// its own log: structural invariants, exact tree/oracle agreement, and
// access-path/heap agreement. With zeroLag the in-process model is asserted
// in full — no acknowledged commit may be lost, no dead key resurrected;
// under lag those commits are legitimately lost and only prefix-consistency
// is demanded.
func validatePromoted(rep *replica, mdl *model, zeroLag bool, tcfg gist.Config, anchor page.PageID, res *Result) error {
	// The replica log is complete from LSN 1: no baseline fold needed.
	oracle := check.OracleFromLog(rep.log, nil)
	res.Oracle = len(oracle)

	chk := &check.Checker{Pool: rep.pool, Ops: tcfg.Ops, Anchor: anchor, MaxNSN: rep.log.LastLSN()}
	r, err := chk.Check()
	if err != nil {
		return err
	}
	if r.Orphans != 0 {
		return fmt.Errorf("%d orphan nodes", r.Orphans)
	}
	if err := check.VerifyOracle(r, oracle); err != nil {
		return err
	}

	if zeroLag {
		mdl.mu.Lock()
		for k, rid := range mdl.live {
			if mdl.maybe[k] {
				continue
			}
			pred, ok := oracle[rid]
			if !ok || btree.DecodeKey(pred) != k {
				mdl.mu.Unlock()
				return fmt.Errorf("acknowledged commit of key %d (%v) lost by zero-lag failover", k, rid)
			}
		}
		for _, p := range mdl.gone {
			if mdl.maybe[p.key] {
				continue
			}
			if pred, ok := oracle[p.rid]; ok && btree.DecodeKey(pred) == p.key {
				mdl.mu.Unlock()
				return fmt.Errorf("dead key %d (%v) resurrected by zero-lag failover", p.key, p.rid)
			}
		}
		mdl.mu.Unlock()
	}

	tx, err := rep.tm.Begin()
	if err != nil {
		return err
	}
	defer func() {
		tx.Commit()
		rep.tree.TxnFinished(tx.ID())
		rep.heap.TxnFinished(tx.ID())
	}()
	rs, err := rep.tree.Search(tx, btree.EncodeRange(0, 1<<46), gist.ReadCommitted)
	if err != nil {
		return fmt.Errorf("search: %w", err)
	}
	if len(rs) != len(oracle) {
		return fmt.Errorf("search found %d entries, oracle has %d", len(rs), len(oracle))
	}
	for _, e := range rs {
		pred, ok := oracle[e.RID]
		if !ok || btree.DecodeKey(pred) != btree.DecodeKey(e.Key) {
			return fmt.Errorf("search surfaced %v/%d not in oracle", e.RID, btree.DecodeKey(e.Key))
		}
		rec, err := rep.heap.Read(e.RID)
		if err != nil {
			return fmt.Errorf("heap record %v: %w", e.RID, err)
		}
		if want := fmt.Sprintf("rec-%d", btree.DecodeKey(e.Key)); string(rec) != want {
			return fmt.Errorf("heap record %v = %q, want %q", e.RID, rec, want)
		}
	}
	return nil
}

// promotedNewWork commits a fresh key on the promoted replica and reads it
// back — the failed-over engine is a working primary.
func promotedNewWork(rep *replica, seed int64) error {
	tx, err := rep.tm.Begin()
	if err != nil {
		return err
	}
	k := newWorkKeyLow + seed
	rid, err := rep.heap.Insert(tx, []byte(fmt.Sprintf("rec-%d", k)))
	if err != nil {
		return err
	}
	if err := rep.tree.Insert(tx, btree.EncodeKey(k), rid); err != nil {
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	rep.tree.TxnFinished(tx.ID())
	rep.heap.TxnFinished(tx.ID())

	tx2, err := rep.tm.Begin()
	if err != nil {
		return err
	}
	defer func() {
		tx2.Commit()
		rep.tree.TxnFinished(tx2.ID())
		rep.heap.TxnFinished(tx2.ID())
	}()
	rs, err := rep.tree.Search(tx2, btree.EncodeRange(k, k), gist.ReadCommitted)
	if err != nil {
		return err
	}
	if len(rs) != 1 {
		return fmt.Errorf("inserted key found %d times", len(rs))
	}
	return nil
}

// PromoteSeed derives a failover scenario deterministically from seed: the
// kill lands anywhere in the workload's byte range, and every fifth seed
// runs the quiesced zero-lag failover (full model assertion) instead.
func PromoteSeed(seed int64, dir string, calib int64) (*Result, error) {
	if calib < 1 {
		calib = 1
	}
	cfg := Config{Seed: seed, Dir: dir, Budget: -1}
	if seed%5 != 0 {
		rng := rand.New(rand.NewSource(seed ^ 0x1e3779b97f4a7c15))
		cfg.Budget = rng.Int63n(calib + calib/4 + 1)
	}
	return RunPromote(cfg)
}
