// Package crashfuzz is a deterministic, seeded crash-point harness for the
// full recovery stack. One run builds a file-backed database (file WAL +
// its truncation journal + file page store with its double-write journal,
// all beneath one shared storage.CrashPoint), drives a mixed concurrent
// workload — inserts, deletes, splits, GC and node deletion, savepoints
// with partial rollback, deliberate aborts, and a mid-workload maintenance
// burst (fuzzy checkpoint plus crash-atomic log head truncation through the
// sidecar journal) — and kills the machine at an arbitrary byte offset of
// an arbitrary write: the admitted prefix of that write persists (a torn
// WAL frame, a torn page, or a torn truncation rewrite), everything after
// fails.
// The survivor files are reopened, ARIES restart runs (optionally torn by a
// second crash mid-recovery, then restarted again), and the result is
// validated three ways: structural invariants (internal/check), the
// committed-transaction oracle replayed from the survivor log
// (check.OracleFromLog — every committed entry present exactly once, every
// aborted or in-flight entry absent), and restart idempotence (one more
// restart must find zero losers and converge to the same state). The
// harness also cross-checks its own in-process model: every commit that was
// acknowledged before the crash must survive, every clean abort must not.
package crashfuzz

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"regexp"
	"strconv"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/check"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/maintenance"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/recovery"
	"repro/internal/shards"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

const (
	setupKeys     = 32 // committed before the crash point is armed
	workloadPool  = 48 // small pool: evictions write torn-page candidates
	recoveryPool  = 64
	maxEntries    = 4 // low fanout: plenty of splits and node deletions
	newWorkKeyLow = int64(1) << 45
)

// Config selects one crash scenario.
type Config struct {
	Seed int64
	Dir  string // working directory for wal.log, pages.db, pages.db.dw
	// Budget is the number of bytes (across WAL, page file and journal)
	// the workload may write after setup before the crossing write is
	// torn. Negative runs the workload to completion with no crash and
	// reports TotalBytes (calibration).
	Budget int64
	// RecoveryBudget, if positive, arms a second crash with this byte
	// budget during the first restart; the harness then restarts again
	// from whatever the torn recovery left behind.
	RecoveryBudget int64
}

// Result describes what one scenario did.
type Result struct {
	Seed           int64
	Budget         int64
	RecoveryBudget int64
	TotalBytes     int64  // calibration only: post-setup bytes of a crash-free run
	CrashSite      string // "wal", "walt", "pages", "dw", "explicit" (ran past the budget)
	TailType       string // type of the last record in the survivor log
	SecondCrash    bool   // the mid-recovery crash point actually fired
	Restarts       int
	Oracle         int // committed live entries per the survivor log
	Stats          *recovery.Stats
	PromoteLosers  int   // promote mode: loser transactions undone at failover
	LostSuffix     int64 // promote mode: durable primary LSNs the replica never applied
}

// Repro is the command line that replays this scenario.
func (r *Result) Repro() string {
	return fmt.Sprintf("gistbench -exp crashfuzz -seed %d (budget %d, recovery budget %d)",
		r.Seed, r.Budget, r.RecoveryBudget)
}

// machine is one incarnation of the database: everything volatile is lost
// when it is abandoned; only its three files survive into the next one.
type machine struct {
	cp    *storage.CrashPoint
	log   *wal.Log
	disk  *storage.FileDisk
	pool  *buffer.Pool
	locks *lock.Manager
	preds *predicate.Manager
	tm    *txn.Manager
	heap  *heap.File
	tree  *gist.Tree
	maint *maintenance.Manager
}

func openMachine(dir string, cp *storage.CrashPoint, poolPages int) (*machine, error) {
	lf, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	tf, err := os.OpenFile(filepath.Join(dir, "wal.log"+wal.TruncSuffix), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		lf.Close()
		return nil, err
	}
	l, err := wal.OpenFileLogHandles(
		storage.NewCrashFile(lf, cp, "wal"),
		storage.NewCrashFile(tf, cp, "walt"))
	if err != nil {
		lf.Close()
		tf.Close()
		return nil, fmt.Errorf("crashfuzz: reopen wal: %w", err)
	}
	df, err := os.OpenFile(filepath.Join(dir, "pages.db"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		l.Close()
		return nil, err
	}
	wf, err := os.OpenFile(filepath.Join(dir, "pages.db.dw"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		l.Close()
		df.Close()
		return nil, err
	}
	disk, err := storage.OpenFileDiskFiles(
		storage.NewCrashFile(df, cp, "pages"),
		storage.NewCrashFile(wf, cp, "dw"))
	if err != nil {
		l.Close()
		df.Close()
		wf.Close()
		return nil, fmt.Errorf("crashfuzz: reopen disk: %w", err)
	}
	m := &machine{
		cp:    cp,
		log:   l,
		disk:  disk,
		locks: lock.NewManager(),
		preds: predicate.NewManager(),
	}
	m.pool = buffer.New(disk, poolPages, l)
	m.tm = txn.NewManager(l, m.locks, m.preds)
	m.heap = heap.New(m.pool)
	m.heap.RegisterUndo(m.tm)
	return m, nil
}

// abandon drops a (possibly crashed) machine: volatile state is discarded,
// file handles are closed. Close errors are part of the crash and ignored.
func (m *machine) abandon() {
	m.log.Close()
	m.disk.Close()
}

// txnFinished tells every component holding per-transaction state that the
// transaction is complete.
func (m *machine) txnFinished(id page.TxnID) {
	m.tree.TxnFinished(id)
	m.heap.TxnFinished(id)
}

func (m *machine) recover(anchor page.PageID, cfg gist.Config) (*recovery.Stats, error) {
	// Restart runs with the full parallel fan-out so every fuzzed crash
	// exercises the multi-worker redo drain and concurrent loser undo.
	rec := &recovery.Recovery{
		Log: m.log, Pool: m.pool, Disk: m.disk, TM: m.tm,
		Workers: shards.Workers(),
	}
	return rec.Run(func() error {
		t, err := gist.Open(m.pool, m.tm, cfg, anchor)
		if err != nil {
			return err
		}
		m.tree = t
		return nil
	})
}

type pair struct {
	key int64
	rid page.RID
}

// model is the harness's in-process view of acknowledged outcomes: live
// holds inserts whose commit was acknowledged (minus acknowledged committed
// deletes); gone holds (key, rid) pairs proven dead before the crash —
// committed deletes and cleanly aborted inserts. maybe holds keys touched by
// a transaction whose Commit call failed: the commit record may still have
// become durable (a group-commit batch can flush it before the crash error
// surfaces), so recovery legitimately decides either way and the model
// asserts nothing about them.
type model struct {
	mu    sync.Mutex
	live  map[int64]page.RID
	gone  []pair
	maybe map[int64]bool
}

// Run executes one full crash cycle and returns its result; a non-nil
// error is an invariant, oracle, or model violation (or a harness failure).
func Run(cfg Config) (*Result, error) {
	res := &Result{Seed: cfg.Seed, Budget: cfg.Budget, RecoveryBudget: cfg.RecoveryBudget}
	// Optimistic reads on: the fuzz workload's concurrent searches run the
	// version-validated path against splits, GC, and crash-restart cycles.
	tcfg := gist.Config{MaxEntries: maxEntries, Ops: btree.Ops{}, OptimisticReads: true}

	cp := storage.NewCrashPoint()
	m, err := openMachine(cfg.Dir, cp, workloadPool)
	if err != nil {
		return res, err
	}
	tree, err := gist.Create(m.pool, m.tm, tcfg)
	if err != nil {
		return res, err
	}
	m.tree = tree
	anchor := tree.Anchor()
	// Manual maintenance manager: writer 0 drives its ticks mid-workload so
	// the crash point can land inside the checkpoint, the flush storm, the
	// GC burst, or the crash-atomic head truncation itself. Aggressive
	// thresholds so a short workload actually exercises every path.
	m.maint = maintenance.New(maintenance.Deps{
		Log:   m.log,
		TM:    m.tm,
		Pool:  m.pool,
		Disk:  m.disk,
		Trees: func() []*gist.Tree { return []*gist.Tree{m.tree} },
	}, maintenance.Options{
		Manual:          true,
		FlushBatch:      8,
		GCDeadThreshold: 1,
		GCBurstLeaves:   4,
	})

	mdl := &model{live: make(map[int64]page.RID), maybe: make(map[int64]bool)}
	if err := setup(m, mdl); err != nil {
		return res, fmt.Errorf("crashfuzz setup: %w", err)
	}
	// The setup checkpoint truncated the log head, so the survivor log
	// alone cannot prove the baseline committed; snapshot it for the
	// oracle. Nothing but setup has run, so the model is exact here.
	baseline := make(map[page.RID][]byte, len(mdl.live))
	for k, rid := range mdl.live {
		baseline[rid] = btree.EncodeKey(k)
	}
	setupBytes := cp.BytesWritten()

	rng := rand.New(rand.NewSource(cfg.Seed))
	writers := 1 + rng.Intn(4)
	opsPerWriter := 16 + rng.Intn(12)
	if cfg.Budget >= 0 {
		cp.Arm(cfg.Budget)
	}

	var bugMu sync.Mutex
	var bugs []string
	bug := func(format string, a ...any) {
		bugMu.Lock()
		bugs = append(bugs, fmt.Sprintf(format, a...))
		bugMu.Unlock()
	}
	firstBug := func() error {
		bugMu.Lock()
		defer bugMu.Unlock()
		if len(bugs) == 0 {
			return nil
		}
		return fmt.Errorf("%s [%s]", bugs[0], res.Repro())
	}

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			runWriter(m, mdl, cp, cfg.Seed, gid, writers, opsPerWriter, baseline, bug)
		}(g)
	}
	wg.Wait()

	if cfg.Budget < 0 {
		// Calibration: clean shutdown, report how many bytes the
		// workload writes so budgets can be drawn across that range.
		if err := m.pool.FlushAll(); err != nil {
			return res, err
		}
		res.TotalBytes = cp.BytesWritten() - setupBytes
		m.abandon()
		return res, firstBug()
	}

	// If the workload finished under budget, the crash lands at the very
	// end instead: nothing else may touch the files from here.
	if !cp.Crashed() {
		cp.CrashNow()
	}
	res.CrashSite = cp.Site()
	m.abandon()
	if err := firstBug(); err != nil {
		return res, err
	}

	// Restart 1, optionally torn mid-recovery by a second crash point.
	cp2 := storage.NewCrashPoint()
	m2, err := openMachine(cfg.Dir, cp2, recoveryPool)
	if err != nil {
		return res, fmt.Errorf("%v [%s]", err, res.Repro())
	}
	if last, err := m2.log.Get(m2.log.LastLSN()); err == nil {
		res.TailType = last.Type.String()
	}
	if cfg.RecoveryBudget > 0 {
		cp2.Arm(cfg.RecoveryBudget)
	}
	st, rerr := m2.recover(anchor, tcfg)
	res.Restarts++
	res.SecondCrash = cp2.Crashed()
	final := m2
	switch {
	case cfg.RecoveryBudget > 0:
		if rerr != nil && !cp2.Crashed() {
			trace := pageTrace(m2.log, rerr)
			if m := regexp.MustCompile(`pg=(\d+)`).FindStringSubmatch(rerr.Error()); m != nil {
				pg, _ := strconv.Atoi(m[1])
				trace += pageImage(m2, page.PageID(pg))
			}
			m2.abandon()
			return res, fmt.Errorf("restart failed without its crash point firing: %v [%s]%s", rerr, res.Repro(), trace)
		}
		// Whether or not the second crash fired, restart once more on
		// an unarmed machine; CLR-protected undo and idempotent redo
		// must converge.
		m2.abandon()
		m3, err := openMachine(cfg.Dir, storage.NewCrashPoint(), recoveryPool)
		if err != nil {
			return res, fmt.Errorf("%v [%s]", err, res.Repro())
		}
		st, rerr = m3.recover(anchor, tcfg)
		res.Restarts++
		if rerr != nil {
			m3.abandon()
			return res, fmt.Errorf("restart after mid-recovery crash failed: %v [%s]", rerr, res.Repro())
		}
		final = m3
	case rerr != nil:
		trace := pageTrace(m2.log, rerr)
		if m := regexp.MustCompile(`pg=(\d+)`).FindStringSubmatch(rerr.Error()); m != nil {
			pg, _ := strconv.Atoi(m[1])
			trace += pageImage(m2, page.PageID(pg))
		}
		m2.abandon()
		return res, fmt.Errorf("restart failed: %v [%s]%s", rerr, res.Repro(), trace)
	}
	res.Stats = st

	if err := validate(final, mdl, baseline, tcfg, anchor, res); err != nil {
		trace := pageTrace(final.log, err)
		if m := regexp.MustCompile(`node (\d+)`).FindStringSubmatch(err.Error()); m != nil {
			pg, _ := strconv.Atoi(m[1])
			trace += pageImage(final, page.PageID(pg))
		}
		final.abandon()
		return res, fmt.Errorf("after restart: %v [%s]%s", err, res.Repro(), trace)
	}

	// Idempotence: restart once more from the recovered (and flushed)
	// state. It must find zero losers and reach the identical oracle.
	final.abandon()
	m4, err := openMachine(cfg.Dir, storage.NewCrashPoint(), recoveryPool)
	if err != nil {
		return res, fmt.Errorf("%v [%s]", err, res.Repro())
	}
	st4, err := m4.recover(anchor, tcfg)
	res.Restarts++
	if err != nil {
		m4.abandon()
		return res, fmt.Errorf("idempotence restart failed: %v [%s]", err, res.Repro())
	}
	if st4.Losers != 0 {
		m4.abandon()
		return res, fmt.Errorf("idempotence restart found %d losers, want 0 [%s]", st4.Losers, res.Repro())
	}
	if err := validate(m4, mdl, baseline, tcfg, anchor, res); err != nil {
		m4.abandon()
		return res, fmt.Errorf("after idempotence restart: %v [%s]", err, res.Repro())
	}

	// The recovered engine accepts new work, durably.
	if err := newWork(m4, cfg.Seed); err != nil {
		m4.abandon()
		return res, fmt.Errorf("new work after recovery: %v [%s]", err, res.Repro())
	}
	if err := m4.pool.FlushAll(); err != nil {
		return res, err
	}
	if err := m4.log.Close(); err != nil {
		return res, err
	}
	if err := m4.disk.Close(); err != nil {
		return res, err
	}
	return res, nil
}

// setup commits the pre-crash baseline and checkpoints it: the checkpoint's
// DiscardBefore truncates the log head, so every scenario also recovers
// from a truncated log whose checkpointed DPT may reference recLSNs at or
// below the cut (the RedoLSN clamp path). Everything here is durable before
// the crash point is armed.
func setup(m *machine, mdl *model) error {
	for i := 0; i < setupKeys; i += 4 {
		tx, err := m.tm.Begin()
		if err != nil {
			return err
		}
		for j := i; j < i+4; j++ {
			rid, err := insertKV(m, tx, int64(j))
			if err != nil {
				return err
			}
			mdl.live[int64(j)] = rid
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		m.txnFinished(tx.ID())
	}
	if _, err := recovery.Checkpoint(m.tm, m.pool, m.disk); err != nil {
		return err
	}
	if m.log.Base() == 0 {
		return errors.New("setup checkpoint did not truncate the log head")
	}
	return m.disk.Sync()
}

func insertKV(m *machine, tx *txn.Txn, k int64) (page.RID, error) {
	return insertKVCtx(nil, m, tx, k)
}

func insertKVCtx(ctx context.Context, m *machine, tx *txn.Txn, k int64) (page.RID, error) {
	rid, err := m.heap.InsertCtx(ctx, tx, []byte(fmt.Sprintf("rec-%d", k)))
	if err != nil {
		return page.RID{}, err
	}
	if err := m.tree.InsertCtx(ctx, tx, btree.EncodeKey(k), rid); err != nil {
		return page.RID{}, err
	}
	return rid, nil
}

// runWriter is one concurrent committer: a seeded op stream of inserts,
// deletes of its own keys, savepoint dances, searches, deliberate aborts,
// GC passes, and (writer 0) a mid-workload maintenance burst — write-behind
// flush, fuzzy checkpoint, crash-atomic log head truncation, and a paced GC
// tick, all through the maintenance manager's manual hooks. Failures after
// the crash point fires are expected; failures before it are reported as
// bugs. Locks of transactions that cannot finish cleanly are force-released
// so peers never hang on a zombie.
func runWriter(m *machine, mdl *model, cp *storage.CrashPoint, seed int64, gid, writers, ops int, baseline map[page.RID][]byte, bug func(string, ...any)) {
	wrng := rand.New(rand.NewSource(seed*1315423911 + int64(gid+1)))
	nextKey := int64(gid+1) * 1_000_000

	benign := func(err error) bool {
		return cp.Crashed() ||
			errors.Is(err, lock.ErrDeadlock) ||
			errors.Is(err, buffer.ErrPoolExhausted) ||
			errors.Is(err, storage.ErrCrashed) ||
			errors.Is(err, wal.ErrLogFailed) ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded)
	}
	// opCtx rains statement cancellation over the workload: roughly a
	// quarter of ops run under a context with a random, frequently
	// already-expired deadline, so cancellations land on every safe point —
	// lock waits, frame waits, node-visit boundaries. A cancelled statement
	// goes through the ordinary fail path (abort + logical undo), which the
	// post-crash oracle then holds to the same standard as any other abort.
	opCtx := func() (context.Context, context.CancelFunc) {
		if wrng.Intn(4) != 0 {
			return nil, func() {}
		}
		d := time.Duration(wrng.Intn(400)) * time.Microsecond
		return context.WithDeadline(context.Background(), time.Now().Add(d))
	}
	forceRelease := func(tx *txn.Txn) {
		m.locks.ReleaseAll(tx.ID())
		m.preds.ReleaseTxn(tx.ID())
	}
	// fail abandons a transaction after an op error: abort if possible,
	// force-release if not, and classify the original error.
	fail := func(tx *txn.Txn, err error) {
		if aerr := tx.Abort(); aerr != nil {
			forceRelease(tx)
		}
		m.txnFinished(tx.ID())
		if !benign(err) {
			bug("writer %d: %v", gid, err)
		}
	}

	// This writer's share of the committed baseline is its delete fodder.
	var mine []pair
	mdl.mu.Lock()
	for k, rid := range mdl.live {
		if k < setupKeys && int(k)%writers == gid {
			mine = append(mine, pair{k, rid})
		}
	}
	mdl.mu.Unlock()
	sort.Slice(mine, func(i, j int) bool { return mine[i].key < mine[j].key })

	for i := 0; i < ops; i++ {
		if cp.Crashed() {
			return
		}
		if gid == 0 && i == ops/2 {
			// Mid-workload maintenance burst through the manual tick
			// hooks: trickle-flush the oldest dirty frames, force a fuzzy
			// checkpoint, and advance the log head through the
			// crash-atomic truncation protocol (intent record + sidecar
			// journal, crash site "walt") — the crash point stays armed
			// throughout, so any byte of the rewrite can tear. The
			// records about to be discarded are folded into the oracle
			// baseline first; FoldBaseline is idempotent against the cut
			// not becoming durable.
			if _, err := m.maint.TickFlush(); err != nil && !benign(err) {
				bug("writer 0 maintenance flush: %v", err)
			}
			if _, err := m.maint.TickCheckpoint(true); err != nil {
				if !benign(err) {
					bug("writer 0 maintenance checkpoint: %v", err)
				}
			} else if bound := m.maint.TruncationBound(); bound > m.log.Base()+1 {
				check.FoldBaseline(m.log, baseline, bound)
				if _, err := m.maint.TruncateTo(bound); err != nil && !benign(err) {
					bug("writer 0 maintenance truncate: %v", err)
				}
			}
			if _, err := m.maint.TickGC(); err != nil && !benign(err) {
				bug("writer 0 maintenance gc: %v", err)
			}
		}

		kind := wrng.Intn(10)
		tx, err := m.tm.Begin()
		if err != nil {
			if !benign(err) {
				bug("writer %d begin: %v", gid, err)
			}
			return
		}
		var added []pair
		var deleted *pair
		ok := true
		switch {
		case kind == 5 && len(mine) > 0: // delete one of my committed keys
			idx := wrng.Intn(len(mine))
			p := mine[idx]
			ctx, cancel := opCtx()
			err := m.tree.DeleteCtx(ctx, tx, btree.EncodeKey(p.key), p.rid)
			cancel()
			if err != nil {
				ok = false
				fail(tx, err)
			} else {
				deleted = &p
				mine = append(mine[:idx], mine[idx+1:]...)
			}
		case kind == 6: // savepoint with partial rollback: k2 must vanish
			k1, k2 := nextKey, nextKey+1
			nextKey += 2
			rid1, err := insertKV(m, tx, k1)
			if err == nil {
				if _, err = tx.Savepoint("sp"); err == nil {
					if _, ierr := insertKV(m, tx, k2); ierr != nil {
						err = ierr
					} else {
						err = tx.RollbackTo("sp")
					}
				}
			}
			if err != nil {
				ok = false
				fail(tx, err)
			} else {
				added = append(added, pair{k1, rid1})
			}
		case kind == 7: // read-committed search
			ctx, cancel := opCtx()
			_, err := m.tree.SearchCtx(ctx, tx, btree.EncodeRange(0, 1<<41), gist.ReadCommitted)
			cancel()
			if err != nil {
				ok = false
				fail(tx, err)
			}
		case kind == 8: // deliberate abort: the key must stay dead
			k := nextKey
			nextKey++
			rid, err := insertKV(m, tx, k)
			if err != nil {
				ok = false
				fail(tx, err)
			} else {
				aerr := tx.Abort()
				if aerr != nil {
					forceRelease(tx)
				}
				m.txnFinished(tx.ID())
				if aerr == nil {
					mdl.mu.Lock()
					mdl.gone = append(mdl.gone, pair{k, rid})
					mdl.mu.Unlock()
				} else if !benign(aerr) {
					bug("writer %d abort: %v", gid, aerr)
				}
			}
			continue
		case kind == 9: // garbage collection incl. node deletion
			if err := m.tree.GCAll(tx); err != nil {
				ok = false
				fail(tx, err)
			}
		default: // insert 1..3 fresh keys
			n := 1 + wrng.Intn(3)
			for j := 0; j < n && ok; j++ {
				k := nextKey
				nextKey++
				ctx, cancel := opCtx()
				rid, err := insertKVCtx(ctx, m, tx, k)
				cancel()
				if err != nil {
					ok = false
					fail(tx, err)
				} else {
					added = append(added, pair{k, rid})
				}
			}
		}
		if !ok {
			continue
		}
		if err := tx.Commit(); err != nil {
			// A failed commit leaves the transaction in state Committed
			// with its locks held and its fate (the commit record's
			// durability) unknown — recovery decides. Free the locks so
			// peers don't hang on a zombie, and mark every key the
			// transaction touched indeterminate.
			forceRelease(tx)
			m.txnFinished(tx.ID())
			mdl.mu.Lock()
			for _, p := range added {
				mdl.maybe[p.key] = true
			}
			if deleted != nil {
				mdl.maybe[deleted.key] = true
			}
			mdl.mu.Unlock()
			if !benign(err) {
				bug("writer %d commit: %v", gid, err)
			}
			continue
		}
		m.txnFinished(tx.ID())
		mdl.mu.Lock()
		for _, p := range added {
			mdl.live[p.key] = p.rid
			delete(mdl.maybe, p.key)
		}
		if deleted != nil {
			delete(mdl.live, deleted.key)
			delete(mdl.maybe, deleted.key)
			mdl.gone = append(mdl.gone, *deleted)
		}
		mdl.mu.Unlock()
		mine = append(mine, added...)
	}
}

// validate checks a recovered machine from four angles: structural
// invariants, exact agreement between the live tree and the log oracle,
// the in-process model of acknowledged outcomes, and access-path/heap
// agreement for every surviving entry.
func validate(m *machine, mdl *model, baseline map[page.RID][]byte, tcfg gist.Config, anchor page.PageID, res *Result) error {
	oracle := check.OracleFromLog(m.log, baseline)
	res.Oracle = len(oracle)

	chk := &check.Checker{Pool: m.pool, Ops: tcfg.Ops, Anchor: anchor, MaxNSN: m.log.LastLSN()}
	rep, err := chk.Check()
	if err != nil {
		return err
	}
	if rep.Orphans != 0 {
		return fmt.Errorf("%d orphan nodes", rep.Orphans)
	}
	if err := check.VerifyOracle(rep, oracle); err != nil {
		return err
	}

	mdl.mu.Lock()
	defer mdl.mu.Unlock()
	for k, rid := range mdl.live {
		if mdl.maybe[k] {
			continue // an unacknowledged commit raced the crash on this key
		}
		pred, ok := oracle[rid]
		if !ok || btree.DecodeKey(pred) != k {
			return fmt.Errorf("acknowledged commit of key %d (%v) lost", k, rid)
		}
	}
	for _, p := range mdl.gone {
		if mdl.maybe[p.key] {
			continue
		}
		if pred, ok := oracle[p.rid]; ok && btree.DecodeKey(pred) == p.key {
			return fmt.Errorf("dead key %d (%v) resurrected", p.key, p.rid)
		}
	}

	// Access path agreement: a full scan through the tree must surface
	// exactly the oracle's entries, each with a readable heap record.
	tx, err := m.tm.Begin()
	if err != nil {
		return err
	}
	defer func() {
		tx.Commit()
		m.txnFinished(tx.ID())
	}()
	rs, err := m.tree.Search(tx, btree.EncodeRange(0, 1<<46), gist.ReadCommitted)
	if err != nil {
		return fmt.Errorf("search: %w", err)
	}
	if len(rs) != len(oracle) {
		return fmt.Errorf("search found %d entries, oracle has %d", len(rs), len(oracle))
	}
	for _, r := range rs {
		pred, ok := oracle[r.RID]
		if !ok || btree.DecodeKey(pred) != btree.DecodeKey(r.Key) {
			return fmt.Errorf("search surfaced %v/%d not in oracle", r.RID, btree.DecodeKey(r.Key))
		}
		rec, err := m.heap.Read(r.RID)
		if err != nil {
			return fmt.Errorf("heap record %v: %w", r.RID, err)
		}
		if want := fmt.Sprintf("rec-%d", btree.DecodeKey(r.Key)); string(rec) != want {
			return fmt.Errorf("heap record %v = %q, want %q", r.RID, rec, want)
		}
	}
	return nil
}

// ridTrace is a temporary diagnostic: when a validation error names a RID,
// dump every log record touching it.
// pageTrace is a temporary diagnostic: given a violation error naming a
// page ("pg=N", "node N", or a RID "(p,s)"), dump every log record that
// touches the page — directly, via its RID, or via a body entry whose
// child pointer is the page (a parent installing/widening its downlink).
func pageTrace(l *wal.Log, verr error) string {
	var pg int
	if m := regexp.MustCompile(`node (\d+)`).FindStringSubmatch(verr.Error()); m != nil {
		pg, _ = strconv.Atoi(m[1])
	} else if m := regexp.MustCompile(`pg=(\d+)`).FindStringSubmatch(verr.Error()); m != nil {
		pg, _ = strconv.Atoi(m[1])
	} else if m := regexp.MustCompile(`\((\d+),(\d+)\)`).FindStringSubmatch(verr.Error()); m != nil {
		pg, _ = strconv.Atoi(m[1])
	} else {
		return ""
	}
	id := page.PageID(pg)
	committed := map[page.TxnID]bool{}
	l.Scan(1, func(r *wal.Record) bool {
		if r.Type == wal.RecCommit {
			committed[r.Txn] = true
		}
		return true
	})
	decode := func(b []byte) string {
		if len(b) == 0 {
			return ""
		}
		if e, err := page.DecodeEntry(b, true); err == nil {
			lo, hi := btree.DecodeRange(e.Pred)
			return fmt.Sprintf(" leaf[%d,%d rid=%v del=%v]", lo, hi, e.RID, e.Deleted)
		}
		if e, err := page.DecodeEntry(b, false); err == nil {
			lo, hi := btree.DecodeRange(e.Pred)
			return fmt.Sprintf(" int[%d,%d child=%d]", lo, hi, e.Child)
		}
		return fmt.Sprintf(" body(%d bytes)", len(b))
	}
	childOf := func(b []byte) page.PageID {
		if e, err := page.DecodeEntry(b, false); err == nil {
			return e.Child
		}
		return page.InvalidPage
	}
	out := fmt.Sprintf("\nTRACE for page %d (base=%d last=%d):", pg, l.Base(), l.LastLSN())
	l.Scan(1, func(r *wal.Record) bool {
		hit := r.Pg == id || r.Pg2 == id || r.RID.Page == id ||
			childOf(r.Body) == id || childOf(r.OldBody) == id
		if hit {
			out += fmt.Sprintf("\n  lsn=%d txn=%d(c=%v) %v pg=%d pg2=%d rid=%v prev=%d undoNext=%d%s%s",
				r.LSN, r.Txn, committed[r.Txn], r.Type, r.Pg, r.Pg2, r.RID, r.PrevLSN, r.UndoNext,
				decode(r.Body), decode(r.OldBody))
		}
		return true
	})
	return out
}

// pageImage dumps a page's recovered in-memory state (temporary diagnostic).
func pageImage(m *machine, id page.PageID) string {
	f, err := m.pool.Fetch(id)
	if err != nil {
		return fmt.Sprintf("\nIMAGE pg=%d: fetch: %v", id, err)
	}
	p := f.Page
	out := fmt.Sprintf("\nIMAGE pg=%d lsn=%d nsn=%d right=%d level=%d slots=%d free=%d flags=%#x:",
		id, p.LSN(), p.NSN(), p.Rightlink(), p.Level(), p.NumSlots(), p.FreeSpace(), p.Flags())
	for i := 0; i < p.NumSlots(); i++ {
		b, err := p.SlotBytes(i)
		if err != nil {
			out += fmt.Sprintf("\n  slot %d: dead", i)
			continue
		}
		if e, derr := page.DecodeEntry(b, p.IsLeaf()); derr == nil {
			lo, hi := btree.DecodeRange(e.Pred)
			out += fmt.Sprintf("\n  slot %d: [%d,%d] child=%d rid=%v del=%v", i, lo, hi, e.Child, e.RID, e.Deleted)
		} else {
			out += fmt.Sprintf("\n  slot %d: %d bytes", i, len(b))
		}
	}
	m.pool.Unpin(f, false, 0)
	return out
}

func newWork(m *machine, seed int64) error {
	tx, err := m.tm.Begin()
	if err != nil {
		return err
	}
	k := newWorkKeyLow + seed
	if _, err := insertKV(m, tx, k); err != nil {
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	m.txnFinished(tx.ID())
	tx2, err := m.tm.Begin()
	if err != nil {
		return err
	}
	defer func() {
		tx2.Commit()
		m.txnFinished(tx2.ID())
	}()
	rs, err := m.tree.Search(tx2, btree.EncodeRange(k, k), gist.ReadCommitted)
	if err != nil {
		return err
	}
	if len(rs) != 1 {
		return fmt.Errorf("inserted key found %d times", len(rs))
	}
	return nil
}

// Calibrate runs the workload for seed crash-free and returns how many
// bytes it writes after setup; crash budgets are drawn across that range.
func Calibrate(seed int64, dir string) (int64, error) {
	r, err := Run(Config{Seed: seed, Dir: dir, Budget: -1})
	if err != nil {
		return 0, err
	}
	return r.TotalBytes, nil
}

// RunSeed derives a scenario deterministically from seed (given a
// calibrated byte total) and runs it: the crash budget lands anywhere in
// [0, ~1.25*calib) — including past the end, which exercises crash-at-end —
// and every third seed arms a second crash during recovery.
func RunSeed(seed int64, dir string, calib int64) (*Result, error) {
	if calib < 1 {
		calib = 1
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5851f42d4c957f2d))
	cfg := Config{
		Seed:   seed,
		Dir:    dir,
		Budget: rng.Int63n(calib + calib/4 + 1),
	}
	if seed%3 == 0 {
		cfg.RecoveryBudget = 1 + rng.Int63n(48<<10)
	}
	return Run(cfg)
}
