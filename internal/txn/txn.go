// Package txn implements the transaction manager: transaction lifecycle
// (begin, commit, abort), the per-transaction log backchain, rollback by
// walking that chain and dispatching undo actions through a registry,
// savepoints with partial rollback (§10.2 of the paper), and nested top
// actions (the individually committed atomic units of work that carry the
// tree's structure modifications, §9.1).
//
// The manager owns no tree or heap semantics. Subsystems register UndoFuncs
// for their record types; an UndoFunc performs the logical or physical undo
// and writes the compensation log record (CLR) through the transaction so
// that rollback is itself recoverable.
package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/stats"
	"repro/internal/wal"
)

// State is a transaction's lifecycle state.
type State int

// Transaction states.
const (
	Active State = iota
	Committed
	Aborted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	default:
		return "aborted"
	}
}

// Errors returned by transaction operations.
var (
	ErrNotActive    = errors.New("txn: transaction not active")
	ErrNoSavepoint  = errors.New("txn: no such savepoint")
	ErrNoUndoer     = errors.New("txn: no undo handler registered for record type")
	ErrNestedAction = errors.New("txn: nested top action already open")

	// ErrCommitPending is returned by CommitCtx when the context fired
	// after the commit record was published but before its durability was
	// confirmed. The record cannot be withdrawn, so the transaction is NOT
	// rolled back: the commit completes in the background as soon as the
	// group-commit flusher covers it, releasing locks then. The handle is
	// no longer usable.
	ErrCommitPending = errors.New("txn: commit pending durability")
)

// UndoFunc undoes the effects of one log record during rollback. It must
// write a CLR (via tx.LogCLR) describing the compensation so that a crash
// during rollback does not repeat the undo.
type UndoFunc func(r *wal.Record, tx *Txn) error

// Savepoint marks a rollback target within a transaction (§10.2).
type Savepoint struct {
	Name string
	// LSN is the transaction's last log record at establishment; partial
	// rollback undoes records after it.
	LSN page.LSN
}

// Manager creates and tracks transactions.
type Manager struct {
	log   *wal.Log
	locks *lock.Manager
	preds *predicate.Manager

	mu       sync.Mutex
	active   map[page.TxnID]*Txn
	nextID   atomic.Uint64
	roNextID atomic.Uint64
	undoers  map[wal.RecType]UndoFunc

	reg          *stats.Registry
	commits      *stats.Counter
	aborts       *stats.Counter
	commitForces *stats.Counter
	flushHist    *stats.Histogram
}

// NewManager creates a transaction manager over the given log, lock manager
// and predicate manager.
func NewManager(log *wal.Log, locks *lock.Manager, preds *predicate.Manager) *Manager {
	m := &Manager{
		log:     log,
		locks:   locks,
		preds:   preds,
		active:  make(map[page.TxnID]*Txn),
		undoers: make(map[wal.RecType]UndoFunc),
		reg:     stats.NewRegistry(),
	}
	m.commits = m.reg.Counter("txn.commits")
	m.aborts = m.reg.Counter("txn.aborts")
	// Paired with wal.syncs: commit_forces / syncs is the group-commit
	// batching factor the E15 experiment tracks.
	m.commitForces = m.reg.Counter("txn.commit_forces")
	// Append→durable latency seen by committers: the group-commit park in
	// CommitCtx, from AppendCommit's publish to the flusher covering it.
	m.flushHist = m.reg.Histogram("txn.commit_flush")
	m.reg.Gauge("txn.active", func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return int64(len(m.active))
	})
	return m
}

// Metrics exposes the manager's counter registry.
func (m *Manager) Metrics() *stats.Registry { return m.reg }

// RegisterUndo installs the undo handler for a record type. Subsystems call
// this once at initialization.
func (m *Manager) RegisterUndo(t wal.RecType, f UndoFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.undoers[t] = f
}

// Undoer returns the registered undo handler for a base record type.
func (m *Manager) Undoer(t wal.RecType) (UndoFunc, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.undoers[t.Base()]
	return f, ok
}

// Log exposes the underlying log (recovery and the NSN counter read it).
func (m *Manager) Log() *wal.Log { return m.log }

// Locks exposes the lock manager.
func (m *Manager) Locks() *lock.Manager { return m.locks }

// Predicates exposes the predicate manager.
func (m *Manager) Predicates() *predicate.Manager { return m.preds }

// Begin starts a new transaction: assigns an ID, writes the Begin record,
// and takes the X lock on the transaction's own ID that others use to block
// "on the transaction" (§10.3).
func (m *Manager) Begin() (*Txn, error) {
	id := page.TxnID(m.nextID.Add(1))
	return m.beginWithID(id)
}

// ReadOnlyIDBase offsets read-only transaction ids into their own space,
// disjoint from logged transactions: a replica serving reads off shipped
// history must never collide with an id the primary's log attributes to a
// writer.
const ReadOnlyIDBase = page.TxnID(1) << 62

// BeginReadOnly starts a transaction that never logs: no Begin record, no
// Commit/End, ids drawn from ReadOnlyIDBase up. It takes locks and attaches
// predicates like any transaction (isolation against local writers), but
// calling Log on it panics — it is the read service of a replica, whose log
// only the replication stream may append to. Read-only transactions are
// excluded from checkpoints (nothing to recover) and from
// MinActiveFirstLSN (firstLSN stays 0).
func (m *Manager) BeginReadOnly() (*Txn, error) {
	id := ReadOnlyIDBase + page.TxnID(m.roNextID.Add(1))
	tx := &Txn{id: id, mgr: m, state: Active, readOnly: true}
	if err := m.locks.Lock(id, lock.ForTxn(id), lock.X); err != nil {
		return nil, fmt.Errorf("txn: self lock: %w", err)
	}
	m.mu.Lock()
	m.active[id] = tx
	m.mu.Unlock()
	return tx, nil
}

// AdvanceTxnID raises the id counter to at least id, so transactions begun
// from here on get ids strictly greater. Promotion calls it with the
// highest id observed in the shipped history; ordinary restart gets the
// same guarantee through AdoptLoser.
func (m *Manager) AdvanceTxnID(id page.TxnID) {
	for {
		cur := m.nextID.Load()
		if cur >= uint64(id) || m.nextID.CompareAndSwap(cur, uint64(id)) {
			return
		}
	}
}

// beginWithID is shared with recovery, which must re-instantiate loser
// transactions under their original IDs.
func (m *Manager) beginWithID(id page.TxnID) (*Txn, error) {
	tx := &Txn{id: id, mgr: m, state: Active}
	if err := m.locks.Lock(id, lock.ForTxn(id), lock.X); err != nil {
		return nil, fmt.Errorf("txn: self lock: %w", err)
	}
	tx.lastLSN = m.log.Append(&wal.Record{Type: wal.RecBegin, Txn: id})
	tx.firstLSN = tx.lastLSN
	m.mu.Lock()
	m.active[id] = tx
	m.mu.Unlock()
	return tx, nil
}

// AdoptLoser recreates a transaction handle for a loser transaction found
// during restart analysis; used only by the recovery package.
func (m *Manager) AdoptLoser(id page.TxnID, lastLSN page.LSN) (*Txn, error) {
	if cur := m.nextID.Load(); cur < uint64(id) {
		m.nextID.Store(uint64(id))
	}
	tx := &Txn{id: id, mgr: m, state: Active, lastLSN: lastLSN}
	if err := m.locks.Lock(id, lock.ForTxn(id), lock.X); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.active[id] = tx
	m.mu.Unlock()
	return tx, nil
}

// IsActive reports whether the transaction with the given id is still
// live. Garbage collection uses it to decide whether a logically deleted
// entry's deleter has terminated: a marked entry whose deleter is inactive
// must have committed, because an aborted deleter unmarks its entries
// during rollback (§7.1).
func (m *Manager) IsActive(id page.TxnID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.active[id]
	return ok
}

// MinActiveFirstLSN returns the smallest first-LSN among live transactions,
// or 0 when none are active. The log may not be truncated at or past this
// point: rollback needs every loser's backchain down to its Begin record.
func (m *Manager) MinActiveFirstLSN() page.LSN {
	m.mu.Lock()
	defer m.mu.Unlock()
	var min page.LSN
	for _, tx := range m.active {
		tx.mu.Lock()
		f := tx.firstLSN
		tx.mu.Unlock()
		if f != 0 && (min == 0 || f < min) {
			min = f
		}
	}
	return min
}

// ActiveTxns returns a snapshot of the live transactions (for checkpoints).
func (m *Manager) ActiveTxns() []*Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Txn, 0, len(m.active))
	for _, tx := range m.active {
		out = append(out, tx)
	}
	return out
}

// Checkpoint writes a checkpoint record carrying the active transaction
// table and the dirty page table, then flushes the log. The dirty page
// table is passed as a function, not a value: it must be gathered AFTER
// the snapshot anchor below is taken. A table gathered before the anchor
// can miss a page whose first dirtying record slips in between — that
// record's LSN lands at or below PrevLSN, restart analysis never scans it,
// and redo starts past it, silently losing the update.
func (m *Manager) Checkpoint(dpt func() map[page.PageID]page.LSN) (page.LSN, error) {
	r := &wal.Record{Type: wal.RecCheckpoint}
	// Anchor the fuzzy snapshot before gathering it: every record reserved
	// from here on has a larger LSN than PrevLSN, so restart analysis can
	// scan from min(PrevLSN+1, ATT last LSNs) and observe every record the
	// snapshot raced with — a transaction that reserved its Commit LSN just
	// below the checkpoint's, a page whose first dirtying was in flight, a
	// transaction that began after the table was read. Without the anchor
	// such records sit below the scan start and a committed transaction can
	// be undone as a loser.
	r.PrevLSN = m.log.LastLSN()
	for _, tx := range m.ActiveTxns() {
		if tx.readOnly {
			continue // nothing logged, nothing to recover
		}
		r.ATT = append(r.ATT, wal.TxnState{ID: tx.ID(), LastLSN: tx.LastLSN()})
	}
	for id, rec := range dpt() {
		r.DPT = append(r.DPT, wal.DirtyPage{ID: id, RecLSN: rec})
	}
	lsn := m.log.Append(r)
	return lsn, m.log.FlushTo(lsn)
}

// Stats returns the numbers of committed and aborted transactions, read
// through the stats registry.
func (m *Manager) Stats() (commits, aborts int64) {
	return m.commits.Load(), m.aborts.Load()
}

func (m *Manager) finish(tx *Txn) {
	m.mu.Lock()
	delete(m.active, tx.id)
	m.mu.Unlock()
}

// Txn is a single transaction. Methods are safe for use by the single
// goroutine driving the transaction; a transaction is not meant to be
// shared across goroutines (sessions are, by the outer layer).
type Txn struct {
	id  page.TxnID
	mgr *Manager

	readOnly bool // never logs; see Manager.BeginReadOnly

	mu         sync.Mutex
	state      State
	lastLSN    page.LSN
	firstLSN   page.LSN
	savepoints []Savepoint
	ntaStart   page.LSN // lastLSN when the open NTA began, 0 if none
	ntaOpen    bool

	// vals lets subsystems (the tree layer) stash per-transaction state,
	// such as the set of signaling locks pinned by savepoints.
	vals map[any]any

	// durableHook, when set, runs after a commit that went pending
	// (ErrCommitPending) finally becomes durable and finishCommit has
	// released the transaction's locks. The synchronous commit paths never
	// invoke it — the caller handles those inline.
	durableHook func()

	// flushWait is the nanoseconds CommitCtx spent parked on the
	// group-commit flush (atomic: the background completion of a pending
	// commit writes it concurrently with the facade reading it).
	flushWait atomic.Int64
}

// FlushWait returns the nanoseconds the commit spent waiting for its commit
// record to become durable (0 before commit, for read-only transactions, and
// in the statsoff build).
func (tx *Txn) FlushWait() int64 { return tx.flushWait.Load() }

// Wrote reports whether the transaction has logged anything beyond its
// Begin record. Search-only transactions stay false, which lets
// instrumentation skip commit tracing on the read path.
func (tx *Txn) Wrote() bool {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.lastLSN != tx.firstLSN
}

// ID returns the transaction id.
func (tx *Txn) ID() page.TxnID { return tx.id }

// SetDurableHook installs f to run after a commit that returned
// ErrCommitPending completes in the background. Synchronous commit outcomes
// never call f.
func (tx *Txn) SetDurableHook(f func()) {
	tx.mu.Lock()
	tx.durableHook = f
	tx.mu.Unlock()
}

// State returns the lifecycle state.
func (tx *Txn) State() State {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.state
}

// LastLSN returns the transaction's most recent log record.
func (tx *Txn) LastLSN() page.LSN {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.lastLSN
}

// Manager returns the owning transaction manager.
func (tx *Txn) Manager() *Manager { return tx.mgr }

// SetValue stashes subsystem state on the transaction.
func (tx *Txn) SetValue(key, val any) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.vals == nil {
		tx.vals = make(map[any]any)
	}
	tx.vals[key] = val
}

// Value retrieves state stashed with SetValue.
func (tx *Txn) Value(key any) any {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.vals[key]
}

// Log appends r to the log as part of this transaction's backchain and
// returns its LSN.
func (tx *Txn) Log(r *wal.Record) page.LSN {
	if tx.readOnly {
		panic(fmt.Sprintf("txn %d: Log on a read-only transaction", tx.id))
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	r.Txn = tx.id
	r.PrevLSN = tx.lastLSN
	lsn := tx.mgr.log.Append(r)
	tx.lastLSN = lsn
	return lsn
}

// LogCLR appends a compensation record during undo. UndoNext must point at
// the PrevLSN of the record being undone so that a crash mid-rollback
// resumes exactly where it left off.
func (tx *Txn) LogCLR(r *wal.Record, undoNext page.LSN) page.LSN {
	r.Type |= wal.ClrFlag
	r.UndoNext = undoNext
	return tx.Log(r)
}

// Lock acquires a lock on behalf of the transaction (two-phase: held to
// end of transaction unless explicitly released by the tree protocol, as
// signaling locks are).
func (tx *Txn) Lock(n lock.Name, m lock.Mode) error {
	return tx.LockCtx(context.Background(), n, m)
}

// LockCtx is Lock with a cancellable wait (see lock.Manager.LockCtx): if
// ctx fires while the request is queued the waiter withdraws and ctx.Err()
// is returned; locks the transaction already holds are untouched.
func (tx *Txn) LockCtx(ctx context.Context, n lock.Name, m lock.Mode) error {
	if tx.State() != Active {
		return ErrNotActive
	}
	return tx.mgr.locks.LockCtx(ctx, tx.id, n, m)
}

// BeginNTA opens a nested top action: a sequence of log records that will
// be made permanent regardless of the transaction's fate. Only one may be
// open at a time per transaction; the tree's structure modifications are
// strictly nested within operations so this suffices.
func (tx *Txn) BeginNTA() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.state != Active {
		return ErrNotActive
	}
	if tx.ntaOpen {
		return ErrNestedAction
	}
	tx.ntaOpen = true
	tx.ntaStart = tx.lastLSN
	return nil
}

// EndNTA closes the open nested top action by writing the dummy CLR whose
// UndoNext jumps over the action's records (§9.1): once written, rollback
// and restart undo both skip the structure modification.
func (tx *Txn) EndNTA() page.LSN {
	tx.mu.Lock()
	start := tx.ntaStart
	tx.ntaOpen = false
	tx.ntaStart = 0
	tx.mu.Unlock()
	r := &wal.Record{Type: wal.RecDummyCLR}
	return tx.LogCLR(r, start)
}

// InNTA reports whether a nested top action is currently open.
// Cancellation-aware layers use it to suppress cancellation inside an NTA:
// a structure modification, once begun, must run to completion — failing it
// mid-way and then writing the dummy CLR would make undo skip a half-done
// modification.
func (tx *Txn) InNTA() bool {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.ntaOpen
}

// AbandonNTA closes the NTA bookkeeping without writing the dummy CLR,
// used when the action failed before writing any records.
func (tx *Txn) AbandonNTA() {
	tx.mu.Lock()
	tx.ntaOpen = false
	tx.ntaStart = 0
	tx.mu.Unlock()
}

// Savepoint establishes a named savepoint and returns it.
func (tx *Txn) Savepoint(name string) (Savepoint, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.state != Active {
		return Savepoint{}, ErrNotActive
	}
	sp := Savepoint{Name: name, LSN: tx.lastLSN}
	tx.savepoints = append(tx.savepoints, sp)
	return sp, nil
}

// Savepoints returns the transaction's savepoints, oldest first.
func (tx *Txn) Savepoints() []Savepoint {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return append([]Savepoint(nil), tx.savepoints...)
}

// RollbackTo undoes all of the transaction's updates after the named
// savepoint. The transaction remains active; savepoints established after
// the target are discarded.
func (tx *Txn) RollbackTo(name string) error {
	tx.mu.Lock()
	if tx.state != Active {
		tx.mu.Unlock()
		return ErrNotActive
	}
	idx := -1
	for i := len(tx.savepoints) - 1; i >= 0; i-- {
		if tx.savepoints[i].Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		tx.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSavepoint, name)
	}
	target := tx.savepoints[idx].LSN
	tx.savepoints = tx.savepoints[:idx+1]
	tx.mu.Unlock()
	return tx.undoTo(target)
}

// RollbackToLSN undoes all of the transaction's updates after the given
// LSN, the anonymous-savepoint form of RollbackTo used for statement-level
// cancellation: the facade snapshots LastLSN before a statement and rolls
// back to it when the statement's context fires, leaving the transaction
// active with every earlier update intact. Savepoints established after the
// target are discarded.
func (tx *Txn) RollbackToLSN(stop page.LSN) error {
	tx.mu.Lock()
	if tx.state != Active {
		tx.mu.Unlock()
		return ErrNotActive
	}
	for len(tx.savepoints) > 0 && tx.savepoints[len(tx.savepoints)-1].LSN > stop {
		tx.savepoints = tx.savepoints[:len(tx.savepoints)-1]
	}
	tx.mu.Unlock()
	return tx.undoTo(stop)
}

// undoTo walks the backchain undoing records until lastLSN's chain position
// reaches stop (exclusive).
func (tx *Txn) undoTo(stop page.LSN) error {
	cur := tx.LastLSN()
	for cur > stop {
		r, err := tx.mgr.log.Get(cur)
		if err != nil {
			return fmt.Errorf("txn %d undo: %w", tx.id, err)
		}
		if r.Type.IsCLR() || r.Type == wal.RecDummyCLR {
			cur = r.UndoNext
			continue
		}
		switch r.Type {
		case wal.RecBegin, wal.RecAbort, wal.RecCheckpoint:
			cur = r.PrevLSN
			continue
		}
		undo, ok := tx.mgr.Undoer(r.Type)
		if !ok {
			return fmt.Errorf("%w: %v (lsn %d)", ErrNoUndoer, r.Type, r.LSN)
		}
		if err := undo(r, tx); err != nil {
			return fmt.Errorf("txn %d undo %v at %d: %w", tx.id, r.Type, r.LSN, err)
		}
		cur = r.PrevLSN
	}
	return nil
}

// Commit ends the transaction successfully: forces the Commit record to
// disk (durability), releases predicates and locks, and writes End.
func (tx *Txn) Commit() error {
	return tx.CommitCtx(context.Background())
}

// CommitCtx is Commit with a deadline on the group-commit park. Before the
// commit record is published a done context returns ctx.Err() with the
// transaction untouched (still active, abortable). Once the record is
// published its fate is decided by durability alone: if the flusher covered
// it by the time the deadline is noticed the commit is reported as
// committed — never rolled back — and if not, ErrCommitPending is returned
// and the commit completes in the background when durability lands.
func (tx *Txn) CommitCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tx.mu.Lock()
	if tx.state != Active {
		tx.mu.Unlock()
		return ErrNotActive
	}
	tx.state = Committed
	// Logged nothing beyond Begin: the flush-wait timing below is skipped
	// for such transactions, keeping the read path free of clock reads.
	wrote := tx.lastLSN != tx.firstLSN
	tx.mu.Unlock()

	if tx.readOnly {
		// Nothing logged, nothing to force: release and retire.
		tx.release()
		tx.mgr.finish(tx)
		tx.mgr.commits.Inc()
		return nil
	}

	// The commit force point: the commit record and its force request are
	// one publish (wal.AppendCommit), parking this committer on the WAL's
	// group-commit queue so concurrent committers share fsyncs instead of
	// each paying one.
	lsn, forced := tx.logCommit()
	tx.mgr.commitForces.Inc()
	var waitStart time.Time
	if stats.Enabled && wrote {
		waitStart = time.Now()
	}
	noteFlushWait := func() {
		if stats.Enabled && wrote {
			w := time.Since(waitStart).Nanoseconds()
			tx.flushWait.Store(w)
			tx.mgr.flushHist.Observe(w)
		}
	}
	select {
	case err := <-forced:
		noteFlushWait()
		if err != nil {
			return fmt.Errorf("txn %d commit force: %w", tx.id, err)
		}
	case <-ctx.Done():
		if tx.mgr.log.FlushedLSN() < lsn {
			go func() {
				if err := <-forced; err == nil {
					noteFlushWait()
					tx.finishCommit()
					tx.mu.Lock()
					h := tx.durableHook
					tx.mu.Unlock()
					if h != nil {
						h()
					}
				}
				// On log failure the engine is failing wholesale; the
				// transaction's locks die with the process.
			}()
			return fmt.Errorf("%w (txn %d): %v", ErrCommitPending, tx.id, ctx.Err())
		}
		// Durable before the deadline was noticed: committed.
		noteFlushWait()
	}
	tx.finishCommit()
	return nil
}

// logCommit publishes the commit record and its flush waiter as one ring
// publish, maintaining the backchain like Log.
func (tx *Txn) logCommit() (page.LSN, <-chan error) {
	r := &wal.Record{Type: wal.RecCommit}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	r.Txn = tx.id
	r.PrevLSN = tx.lastLSN
	lsn, ch := tx.mgr.log.AppendCommit(r)
	tx.lastLSN = lsn
	return lsn, ch
}

// finishCommit is the post-durability half of commit: release predicates
// and locks, write End, retire the transaction.
func (tx *Txn) finishCommit() {
	tx.release()
	tx.Log(&wal.Record{Type: wal.RecEnd})
	tx.mgr.finish(tx)
	tx.mgr.commits.Inc()
}

// Abort rolls the transaction back completely and releases its resources.
func (tx *Txn) Abort() error {
	tx.mu.Lock()
	if tx.state != Active {
		tx.mu.Unlock()
		return ErrNotActive
	}
	tx.mu.Unlock()

	if tx.readOnly {
		tx.mu.Lock()
		tx.state = Aborted
		tx.mu.Unlock()
		tx.release()
		tx.mgr.finish(tx)
		tx.mgr.aborts.Inc()
		return nil
	}

	tx.Log(&wal.Record{Type: wal.RecAbort})
	if err := tx.undoTo(0); err != nil {
		return err
	}
	tx.mu.Lock()
	tx.state = Aborted
	tx.mu.Unlock()
	tx.release()
	tx.Log(&wal.Record{Type: wal.RecEnd})
	tx.mgr.finish(tx)
	tx.mgr.aborts.Inc()
	return nil
}

// release drops predicates and all locks (including the self lock, which
// unblocks anyone waiting on this transaction's predicates).
func (tx *Txn) release() {
	tx.mgr.preds.ReleaseTxn(tx.id)
	tx.mgr.locks.ReleaseAll(tx.id)
}
