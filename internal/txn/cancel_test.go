package txn

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/wal"
)

// TestCommitCtxPrePublishCancel: a context already done when CommitCtx is
// called leaves the transaction untouched — still active, still able to
// commit or abort.
func TestCommitCtxPrePublishCancel(t *testing.T) {
	m := newMgr()
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tx.CommitCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CommitCtx = %v, want context.Canceled", err)
	}
	if tx.State() != Active {
		t.Fatalf("state after pre-publish cancel = %v, want Active", tx.State())
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after cancelled CommitCtx: %v", err)
	}
}

// TestCommitCtxDurable: an open context commits exactly like Commit.
func TestCommitCtxDurable(t *testing.T) {
	m := newMgr()
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Committed {
		t.Fatalf("state = %v", tx.State())
	}
	if got := len(m.ActiveTxns()); got != 0 {
		t.Fatalf("active after commit = %d", got)
	}
}

// stallFile wraps the WAL file, blocking one Sync until released, so a
// commit's group-commit park can be held open deterministically.
type stallFile struct {
	*os.File
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func (f *stallFile) Sync() error {
	if f.armed.CompareAndSwap(true, false) {
		close(f.entered)
		<-f.release
	}
	return f.File.Sync()
}

// TestCommitCtxPending holds the log force open past the deadline: CommitCtx
// must return ErrCommitPending — the commit record is published and cannot
// be withdrawn — and when durability lands the commit completes in the
// background, releasing the transaction's locks and firing the durable hook.
func TestCommitCtxPending(t *testing.T) {
	dir := t.TempDir()
	fh, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	sf := &stallFile{File: fh, entered: make(chan struct{}), release: make(chan struct{})}
	l, err := wal.OpenFileLogHandle(sf)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	m := NewManager(l, lock.NewManager(), predicate.NewManager())
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	n := lock.ForRID(page.RID{Page: 9, Slot: 9})
	if err := tx.Lock(n, lock.X); err != nil {
		t.Fatal(err)
	}

	var hookMu sync.Mutex
	hookRan := false
	tx.SetDurableHook(func() {
		hookMu.Lock()
		hookRan = true
		hookMu.Unlock()
	})

	sf.armed.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tx.CommitCtx(ctx) }()
	<-sf.entered // the force fsync is in flight and stalled
	cancel()
	err = <-done
	if !errors.Is(err, ErrCommitPending) {
		t.Fatalf("CommitCtx = %v, want ErrCommitPending", err)
	}
	// Pending means not rolled back: the state is Committed and the locks
	// are still held (release happens only at durability).
	if tx.State() != Committed {
		t.Fatalf("state = %v, want Committed", tx.State())
	}

	close(sf.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(m.ActiveTxns()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background commit completion never retired the transaction")
		}
		time.Sleep(time.Millisecond)
	}
	// Locks released by the background finishCommit.
	if _, held := m.Locks().Holding(tx.ID(), n); held {
		t.Error("lock still held after background durability")
	}
	hookDeadline := time.Now().Add(5 * time.Second)
	for {
		hookMu.Lock()
		ran := hookRan
		hookMu.Unlock()
		if ran {
			break
		}
		if time.Now().After(hookDeadline) {
			t.Fatal("durable hook never ran")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRollbackToLSNStatement pins statement-level undo: updates logged
// after a recorded LSN are undone, earlier ones survive, and the
// transaction stays active.
func TestRollbackToLSNStatement(t *testing.T) {
	m := newMgr()
	undone := registerRecordingUndo(m)
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	keep := tx.Log(&wal.Record{Type: wal.RecHeapInsert, Pg: 3, RID: page.RID{Page: 3, Slot: 0}, Body: []byte("keep")})
	mark := tx.LastLSN()
	drop1 := tx.Log(&wal.Record{Type: wal.RecHeapInsert, Pg: 3, RID: page.RID{Page: 3, Slot: 1}, Body: []byte("drop1")})
	drop2 := tx.Log(&wal.Record{Type: wal.RecHeapInsert, Pg: 3, RID: page.RID{Page: 3, Slot: 2}, Body: []byte("drop2")})
	if err := tx.RollbackToLSN(mark); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Active {
		t.Fatalf("state = %v, want Active", tx.State())
	}
	if len(*undone) != 2 || (*undone)[0] != drop2 || (*undone)[1] != drop1 {
		t.Fatalf("undone = %v, want [%d %d]", *undone, drop2, drop1)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = keep
}
