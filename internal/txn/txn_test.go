package txn

import (
	"errors"
	"testing"

	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/wal"
)

func newMgr() *Manager {
	return NewManager(wal.NewMemLog(), lock.NewManager(), predicate.NewManager())
}

// registerRecordingUndo installs an undoer for Heap-Insert that records the
// undone LSNs and writes a proper CLR.
func registerRecordingUndo(m *Manager) *[]page.LSN {
	var undone []page.LSN
	m.RegisterUndo(wal.RecHeapInsert, func(r *wal.Record, tx *Txn) error {
		undone = append(undone, r.LSN)
		tx.LogCLR(&wal.Record{Type: wal.RecHeapInsert, RID: r.RID}, r.PrevLSN)
		return nil
	})
	return &undone
}

func TestBeginCommitLifecycle(t *testing.T) {
	m := newMgr()
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tx.State() != Active {
		t.Errorf("state = %v", tx.State())
	}
	if got := len(m.ActiveTxns()); got != 1 {
		t.Errorf("active = %d", got)
	}
	// Self lock held.
	if _, held := m.Locks().Holding(tx.ID(), lock.ForTxn(tx.ID())); !held {
		t.Error("self lock not held")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Committed {
		t.Errorf("state = %v", tx.State())
	}
	if got := len(m.ActiveTxns()); got != 0 {
		t.Errorf("active after commit = %d", got)
	}
	if _, held := m.Locks().Holding(tx.ID(), lock.ForTxn(tx.ID())); held {
		t.Error("self lock survived commit")
	}
	// Log shape: Begin, Commit, End.
	var types []wal.RecType
	m.Log().Scan(1, func(r *wal.Record) bool { types = append(types, r.Type); return true })
	want := []wal.RecType{wal.RecBegin, wal.RecCommit, wal.RecEnd}
	if len(types) != 3 || types[0] != want[0] || types[1] != want[1] || types[2] != want[2] {
		t.Errorf("log = %v", types)
	}
	if c, a := m.Stats(); c != 1 || a != 0 {
		t.Errorf("stats = %d commits %d aborts", c, a)
	}
}

func TestCommitForcesLog(t *testing.T) {
	m := newMgr()
	tx, _ := m.Begin()
	tx.Log(&wal.Record{Type: wal.RecHeapInsert, RID: page.RID{Page: 1, Slot: 0}})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Everything up to the Commit record must be durable.
	if m.Log().FlushedLSN() < 3 {
		t.Errorf("flushed = %d, want >= 3", m.Log().FlushedLSN())
	}
}

func TestDoubleCommitAndAbortFail(t *testing.T) {
	m := newMgr()
	tx, _ := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrNotActive) {
		t.Errorf("abort after commit: %v", err)
	}
}

func TestAbortUndoesBackchainInReverse(t *testing.T) {
	m := newMgr()
	undone := registerRecordingUndo(m)
	tx, _ := m.Begin()
	l1 := tx.Log(&wal.Record{Type: wal.RecHeapInsert, RID: page.RID{Page: 1, Slot: 0}})
	l2 := tx.Log(&wal.Record{Type: wal.RecHeapInsert, RID: page.RID{Page: 1, Slot: 1}})
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Aborted {
		t.Errorf("state = %v", tx.State())
	}
	if len(*undone) != 2 || (*undone)[0] != l2 || (*undone)[1] != l1 {
		t.Errorf("undone = %v, want [%d %d]", *undone, l2, l1)
	}
	// CLRs present and chained.
	var clrs int
	m.Log().Scan(1, func(r *wal.Record) bool {
		if r.Type.IsCLR() {
			clrs++
		}
		return true
	})
	if clrs != 2 {
		t.Errorf("CLRs = %d, want 2", clrs)
	}
	if c, a := m.Stats(); c != 0 || a != 1 {
		t.Errorf("stats = %d commits %d aborts", c, a)
	}
}

func TestUndoWithoutHandlerFails(t *testing.T) {
	m := newMgr()
	tx, _ := m.Begin()
	tx.Log(&wal.Record{Type: wal.RecHeapDelete})
	if err := tx.Abort(); !errors.Is(err, ErrNoUndoer) {
		t.Errorf("err = %v, want ErrNoUndoer", err)
	}
}

func TestNTASkippedOnAbort(t *testing.T) {
	m := newMgr()
	undone := registerRecordingUndo(m)
	tx, _ := m.Begin()
	outside := tx.Log(&wal.Record{Type: wal.RecHeapInsert, RID: page.RID{Page: 1, Slot: 0}})
	// Structure modification inside an NTA: must never be undone.
	if err := tx.BeginNTA(); err != nil {
		t.Fatal(err)
	}
	tx.Log(&wal.Record{Type: wal.RecSplit, Pg: 3, Pg2: 4})
	tx.Log(&wal.Record{Type: wal.RecInternalEntryAdd, Pg: 2})
	tx.EndNTA()
	after := tx.Log(&wal.Record{Type: wal.RecHeapInsert, RID: page.RID{Page: 1, Slot: 1}})

	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if len(*undone) != 2 || (*undone)[0] != after || (*undone)[1] != outside {
		t.Errorf("undone = %v, want only the records outside the NTA", *undone)
	}
}

func TestNestedNTARejected(t *testing.T) {
	m := newMgr()
	tx, _ := m.Begin()
	if err := tx.BeginNTA(); err != nil {
		t.Fatal(err)
	}
	if err := tx.BeginNTA(); !errors.Is(err, ErrNestedAction) {
		t.Errorf("nested NTA: %v", err)
	}
	tx.AbandonNTA()
	if err := tx.BeginNTA(); err != nil {
		t.Errorf("NTA after abandon: %v", err)
	}
	tx.EndNTA()
	tx.Commit()
}

func TestSavepointPartialRollback(t *testing.T) {
	m := newMgr()
	undone := registerRecordingUndo(m)
	tx, _ := m.Begin()
	l1 := tx.Log(&wal.Record{Type: wal.RecHeapInsert, RID: page.RID{Page: 1, Slot: 0}})
	if _, err := tx.Savepoint("sp1"); err != nil {
		t.Fatal(err)
	}
	l2 := tx.Log(&wal.Record{Type: wal.RecHeapInsert, RID: page.RID{Page: 1, Slot: 1}})
	l3 := tx.Log(&wal.Record{Type: wal.RecHeapInsert, RID: page.RID{Page: 1, Slot: 2}})

	if err := tx.RollbackTo("sp1"); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Active {
		t.Error("txn not active after partial rollback")
	}
	if len(*undone) != 2 || (*undone)[0] != l3 || (*undone)[1] != l2 {
		t.Errorf("undone = %v, want [%d %d]", *undone, l3, l2)
	}
	// Rolling back again to the same savepoint undoes nothing new (the
	// CLR chain skips the already-undone suffix).
	if err := tx.RollbackTo("sp1"); err != nil {
		t.Fatal(err)
	}
	if len(*undone) != 2 {
		t.Errorf("re-rollback undid more: %v", *undone)
	}
	// Full abort then undoes only l1.
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if len(*undone) != 3 || (*undone)[2] != l1 {
		t.Errorf("after abort undone = %v", *undone)
	}
}

func TestSavepointUnknownName(t *testing.T) {
	m := newMgr()
	tx, _ := m.Begin()
	if err := tx.RollbackTo("nope"); !errors.Is(err, ErrNoSavepoint) {
		t.Errorf("err = %v", err)
	}
	tx.Commit()
}

func TestSavepointDiscardsLaterSavepoints(t *testing.T) {
	m := newMgr()
	registerRecordingUndo(m)
	tx, _ := m.Begin()
	tx.Savepoint("a")
	tx.Log(&wal.Record{Type: wal.RecHeapInsert})
	tx.Savepoint("b")
	if err := tx.RollbackTo("a"); err != nil {
		t.Fatal(err)
	}
	if err := tx.RollbackTo("b"); !errors.Is(err, ErrNoSavepoint) {
		t.Errorf("rollback to discarded savepoint: %v", err)
	}
	sps := tx.Savepoints()
	if len(sps) != 1 || sps[0].Name != "a" {
		t.Errorf("savepoints = %v", sps)
	}
	tx.Commit()
}

func TestCommitReleasesPredicatesAndUnblocksWaiters(t *testing.T) {
	m := newMgr()
	tx, _ := m.Begin()
	p := m.Predicates().New(tx.ID(), predicate.Search, []byte("q"))
	m.Predicates().Attach(p, 7, nil)

	// A second transaction blocks on tx's self lock (the "block on
	// predicate owner" idiom).
	tx2, _ := m.Begin()
	unblocked := make(chan error, 1)
	go func() { unblocked <- tx2.Lock(lock.ForTxn(tx.ID()), lock.S) }()

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-unblocked; err != nil {
		t.Fatal(err)
	}
	if got := m.Predicates().AttachedTo(7); len(got) != 0 {
		t.Errorf("predicates survived commit: %v", got)
	}
	tx2.Commit()
}

func TestAdoptLoser(t *testing.T) {
	m := newMgr()
	tx, err := m.AdoptLoser(42, 17)
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID() != 42 || tx.LastLSN() != 17 {
		t.Errorf("adopted = id %d last %d", tx.ID(), tx.LastLSN())
	}
	// Fresh transactions get IDs above the adopted one.
	tx2, _ := m.Begin()
	if tx2.ID() <= 42 {
		t.Errorf("new txn id %d not above adopted 42", tx2.ID())
	}
}

func TestTxnValues(t *testing.T) {
	m := newMgr()
	tx, _ := m.Begin()
	type key struct{}
	if tx.Value(key{}) != nil {
		t.Error("unset value non-nil")
	}
	tx.SetValue(key{}, 99)
	if tx.Value(key{}) != 99 {
		t.Error("value lost")
	}
	tx.Commit()
}

func TestCheckpointRecordsATTAndDPT(t *testing.T) {
	m := newMgr()
	tx, _ := m.Begin()
	tx.Log(&wal.Record{Type: wal.RecHeapInsert})
	lsn, err := m.Checkpoint(func() map[page.PageID]page.LSN {
		return map[page.PageID]page.LSN{5: 2}
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Log().Get(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ATT) != 1 || r.ATT[0].ID != tx.ID() || r.ATT[0].LastLSN != tx.LastLSN() {
		t.Errorf("ATT = %v", r.ATT)
	}
	if len(r.DPT) != 1 || r.DPT[0].ID != 5 || r.DPT[0].RecLSN != 2 {
		t.Errorf("DPT = %v", r.DPT)
	}
	if m.Log().MasterCheckpoint() != lsn {
		t.Error("master checkpoint not updated")
	}
	tx.Commit()
}

func TestStateString(t *testing.T) {
	if Active.String() != "active" || Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Error("state strings")
	}
}
