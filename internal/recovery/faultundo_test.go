package recovery_test

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/predicate"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// failFile wraps the WAL's backing file; once armed, fsync fails,
// simulating the log device dying mid-recovery. The log treats a failed
// write as transient (the batch is re-staged for retry) but a failed
// fsync as fatal — the kernel's dirty state is unknowable afterwards —
// so fsync is the fault that must trip the sticky ErrLogFailed.
type failFile struct {
	*os.File
	fail atomic.Bool
}

var errInjected = errors.New("injected log-device failure")

func (f *failFile) Sync() error {
	if f.fail.Load() {
		return errInjected
	}
	return f.File.Sync()
}

// TestCrashDuringUndoStickyLogFailure covers a crash during recovery
// itself: the WAL device dies while restart undo is writing CLRs. The
// sticky ErrLogFailed must surface from Recovery.Run, the log must stay
// poisoned even after the device "heals" (no silent resumption on a
// possibly-torn tail), and a third start from the durable prefix must
// converge: committed keys present exactly once, the loser fully gone,
// structural invariants intact.
func TestCrashDuringUndoStickyLogFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")

	openLog := func() (*wal.Log, *failFile) {
		t.Helper()
		osf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		ff := &failFile{File: osf}
		l, err := wal.OpenFileLogHandle(ff)
		if err != nil {
			t.Fatal(err)
		}
		return l, ff
	}

	newWorldOn := func(l *wal.Log, disk *storage.MemDisk) *world {
		w := &world{
			t:     t,
			disk:  disk,
			log:   l,
			locks: lock.NewManager(),
			preds: predicate.NewManager(),
			cfg:   gist.Config{MaxEntries: 4, Ops: btree.Ops{}},
		}
		w.pool = buffer.New(w.disk, 512, l)
		w.tm = txn.NewManager(l, w.locks, w.preds)
		w.heap = heap.New(w.pool)
		w.heap.RegisterUndo(w.tm)
		return w
	}

	// Phase 1: a committed prefix plus an in-flight loser, all durable.
	disk := storage.NewMemDisk()
	l1, _ := openLog()
	w := newWorldOn(l1, disk)
	tree, err := gist.Create(w.pool, w.tm, w.cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.tree = tree
	w.anchor = tree.Anchor()
	anchor := w.anchor
	for i := 0; i < 10; i++ {
		w.put(int64(i))
	}
	loser, _ := w.tm.Begin()
	for i := 100; i < 110; i++ {
		w.putIn(loser, int64(i))
	}
	if err := l1.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart with the log device armed to fail. Analysis and
	// redo only read; the first log write is undo's CLR chain for the
	// loser (or the end-of-restart checkpoint), and it must not succeed
	// silently.
	l2, ff2 := openLog()
	w2 := newWorldOn(l2, disk)
	w2.anchor = anchor
	ff2.fail.Store(true)
	rec := &recovery.Recovery{Log: l2, Pool: w2.pool, Disk: w2.disk, TM: w2.tm}
	_, rerr := rec.Run(func() error {
		tr, err := gist.Open(w2.pool, w2.tm, w2.cfg, w2.anchor)
		if err != nil {
			return err
		}
		w2.tree = tr
		return nil
	})
	if rerr == nil {
		t.Fatal("recovery succeeded through a dead log device")
	}
	if !errors.Is(rerr, wal.ErrLogFailed) && !errors.Is(rerr, errInjected) {
		t.Fatalf("recovery error = %v, want ErrLogFailed or the injected fault", rerr)
	}
	// The failure is sticky: healing the device must not let the log
	// resume on top of a possibly-torn tail.
	ff2.fail.Store(false)
	l2.Append(&wal.Record{Type: wal.RecBegin, Txn: 9999})
	if err := l2.FlushAll(); !errors.Is(err, wal.ErrLogFailed) {
		t.Fatalf("flush after heal = %v, want sticky ErrLogFailed", err)
	}

	// Phase 3: a fresh start from the durable prefix converges.
	l3, _ := openLog()
	w3 := newWorldOn(l3, disk)
	w3.anchor = anchor
	rec3 := &recovery.Recovery{Log: l3, Pool: w3.pool, Disk: w3.disk, TM: w3.tm}
	if _, err := rec3.Run(func() error {
		tr, err := gist.Open(w3.pool, w3.tm, w3.cfg, w3.anchor)
		if err != nil {
			return err
		}
		w3.tree = tr
		return nil
	}); err != nil {
		t.Fatalf("restart from durable prefix: %v", err)
	}
	got := w3.keys(0, 1000)
	if len(got) != 10 {
		t.Fatalf("keys after convergence = %v, want exactly 0..9", got)
	}
	for i, k := range got {
		if k != int64(i) {
			t.Fatalf("keys after convergence = %v, want exactly 0..9", got)
		}
	}
	w3.checkTree()
}
