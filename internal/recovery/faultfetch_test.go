package recovery_test

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/wal"
)

var errReadFault = errors.New("injected read fault")

// readFaultDisk fails exactly the Nth ReadPage of one target page and
// passes everything else through, so a fault can be aimed at a specific
// fetch of a specific redo step.
type readFaultDisk struct {
	storage.Manager
	target page.PageID
	failOn int32
	reads  atomic.Int32
}

func (d *readFaultDisk) ReadPage(id page.PageID, buf []byte) error {
	if id == d.target && d.reads.Add(1) == d.failOn {
		return errReadFault
	}
	return d.Manager.ReadPage(id, buf)
}

// TestRedoFreePageFetchErrorFailsRestart pins the Free-Page redo bugfix:
// the old code discarded every Pool.Fetch error on the Free-Page path
// (`if f, err := r.Pool.Fetch(...); err == nil { ... }`), so a real I/O
// failure silently skipped the deallocation stamp and restart reported
// success over a page image it never saw. Only storage.ErrNoSuchPage (the
// page legitimately gone from the allocation state) may be skipped; any
// other fetch error must fail the restart.
//
// The log is arranged so the Free-Page redo performs a real disk read: the
// target page is allocated (read #1 at its Get-Page redo), evicted from a
// tiny pool by filler allocations, freed (read #2 — the injected fault),
// and reallocated by a later transaction, which keeps the allocation-replay
// end state allocated so the Free-Page redo genuinely fetches.
func TestRedoFreePageFetchErrorFailsRestart(t *testing.T) {
	buildLog := func() *wal.Log {
		l := wal.NewMemLog()
		const target = page.PageID(1)
		commit := func(txn page.TxnID) {
			l.Append(&wal.Record{Type: wal.RecCommit, Txn: txn})
			l.Append(&wal.Record{Type: wal.RecEnd, Txn: txn})
		}
		// T1 allocates the target page.
		l.Append(&wal.Record{Type: wal.RecGetPage, Txn: 1, Pg: target})
		commit(1)
		// T2 floods the 8-frame pool so the target's frame is evicted
		// (written back) before its Free-Page record comes up for redo.
		for i := 0; i < 32; i++ {
			l.Append(&wal.Record{Type: wal.RecGetPage, Txn: 2, Pg: target + 1 + page.PageID(i)})
		}
		commit(2)
		// T3 frees the target: redo of this record is the fetch under test.
		l.Append(&wal.Record{Type: wal.RecFreePage, Txn: 3, Pg: target})
		commit(3)
		// T4 reallocates it.
		l.Append(&wal.Record{Type: wal.RecGetPage, Txn: 4, Pg: target})
		commit(4)
		if err := l.FlushAll(); err != nil {
			t.Fatal(err)
		}
		return l
	}

	l := buildLog()
	disk := &readFaultDisk{Manager: storage.NewMemDisk(), target: 1, failOn: 2}
	pool := buffer.New(disk, 8, l)
	rec := &recovery.Recovery{Log: l, Pool: pool, Disk: disk, Workers: 1}
	_, err := rec.Run(nil)
	if err == nil {
		t.Fatal("restart succeeded over an injected Free-Page fetch I/O error")
	}
	if !errors.Is(err, errReadFault) {
		t.Fatalf("restart failed with %v, want the injected read fault", err)
	}
	if !strings.Contains(err.Error(), "recovery: redo") {
		t.Errorf("error %q lacks the redo phase context", err)
	}
	if got := disk.reads.Load(); got != 2 {
		t.Fatalf("target page read %d times, want 2 (the second read is the faulted Free-Page fetch)", got)
	}

	// Control: the identical restart with no fault armed succeeds, so the
	// failure above is exactly the propagated fetch error.
	l2 := buildLog()
	mem := storage.NewMemDisk()
	pool2 := buffer.New(mem, 8, l2)
	rec2 := &recovery.Recovery{Log: l2, Pool: pool2, Disk: mem, Workers: 1}
	if _, err := rec2.Run(nil); err != nil {
		t.Fatalf("control restart without fault failed: %v", err)
	}
}
