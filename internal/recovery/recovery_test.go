package recovery_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/check"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// world is a complete database instance whose crash produces a successor
// world recovered from the survivor log and the durable disk image.
type world struct {
	t      *testing.T
	disk   *storage.MemDisk
	log    *wal.Log
	pool   *buffer.Pool
	locks  *lock.Manager
	preds  *predicate.Manager
	tm     *txn.Manager
	heap   *heap.File
	tree   *gist.Tree
	anchor page.PageID
	cfg    gist.Config
}

func newWorld(t *testing.T, cfg gist.Config) *world {
	t.Helper()
	if cfg.Ops == nil {
		cfg.Ops = btree.Ops{}
	}
	w := &world{
		t:     t,
		disk:  storage.NewMemDisk(),
		log:   wal.NewMemLog(),
		locks: lock.NewManager(),
		preds: predicate.NewManager(),
		cfg:   cfg,
	}
	w.pool = buffer.New(w.disk, 512, w.log)
	w.tm = txn.NewManager(w.log, w.locks, w.preds)
	w.heap = heap.New(w.pool)
	w.heap.RegisterUndo(w.tm)
	tree, err := gist.Create(w.pool, w.tm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.tree = tree
	w.anchor = tree.Anchor()
	return w
}

// crashAndRecover simulates a crash losing the buffer pool and all
// unflushed log records (or, if truncLSN > 0, everything after that LSN),
// then runs ARIES restart and returns the recovered world.
func (w *world) crashAndRecover(truncLSN page.LSN) (*world, *recovery.Stats) {
	w.t.Helper()
	var survLog *wal.Log
	if truncLSN == 0 {
		survLog = w.log.SurvivingLog()
	} else {
		survLog = w.log.TruncatedCopy(truncLSN)
	}
	nw := &world{
		t:      w.t,
		disk:   w.disk.Snapshot(),
		log:    survLog,
		locks:  lock.NewManager(),
		preds:  predicate.NewManager(),
		anchor: w.anchor,
		cfg:    w.cfg,
	}
	nw.pool = buffer.New(nw.disk, 512, survLog)
	nw.tm = txn.NewManager(survLog, nw.locks, nw.preds)
	nw.heap = heap.New(nw.pool)
	nw.heap.RegisterUndo(nw.tm)

	rec := &recovery.Recovery{Log: survLog, Pool: nw.pool, Disk: nw.disk, TM: nw.tm}
	stats, err := rec.Run(func() error {
		tree, err := gist.Open(nw.pool, nw.tm, nw.cfg, nw.anchor)
		if err != nil {
			return err
		}
		nw.tree = tree
		return nil
	})
	if err != nil {
		w.t.Fatalf("recovery failed: %v", err)
	}
	return nw, stats
}

func (w *world) put(k int64) page.RID {
	w.t.Helper()
	tx, err := w.tm.Begin()
	if err != nil {
		w.t.Fatal(err)
	}
	rid := w.putIn(tx, k)
	if err := tx.Commit(); err != nil {
		w.t.Fatal(err)
	}
	w.tree.TxnFinished(tx.ID())
	return rid
}

func (w *world) putIn(tx *txn.Txn, k int64) page.RID {
	w.t.Helper()
	rid, err := w.heap.Insert(tx, []byte(fmt.Sprintf("rec-%d", k)))
	if err != nil {
		w.t.Fatal(err)
	}
	if err := w.tree.Insert(tx, btree.EncodeKey(k), rid); err != nil {
		w.t.Fatalf("insert %d: %v", k, err)
	}
	return rid
}

func (w *world) keys(lo, hi int64) []int64 {
	w.t.Helper()
	tx, err := w.tm.Begin()
	if err != nil {
		w.t.Fatal(err)
	}
	defer func() {
		tx.Commit()
		w.tree.TxnFinished(tx.ID())
	}()
	rs, err := w.tree.Search(tx, btree.EncodeRange(lo, hi), gist.ReadCommitted)
	if err != nil {
		w.t.Fatalf("search: %v", err)
	}
	out := make([]int64, 0, len(rs))
	for _, r := range rs {
		out = append(out, btree.DecodeKey(r.Key))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (w *world) checkTree() *check.Report {
	w.t.Helper()
	c := &check.Checker{Pool: w.pool, Ops: w.cfg.Ops, Anchor: w.anchor, MaxNSN: w.log.LastLSN()}
	rep, err := c.Check()
	if err != nil {
		w.t.Fatalf("invariant check after recovery: %v", err)
	}
	return rep
}

func TestRecoverCommittedInsertsNoFlush(t *testing.T) {
	w := newWorld(t, gist.Config{MaxEntries: 6})
	for i := 0; i < 100; i++ {
		w.put(int64(i))
	}
	// Nothing explicitly flushed: commits forced the log, the pages are
	// volatile. Crash and recover.
	nw, stats := w.crashAndRecover(0)
	if stats.Redone == 0 {
		t.Error("nothing redone despite volatile pages")
	}
	got := nw.keys(0, 200)
	if len(got) != 100 {
		t.Fatalf("recovered %d keys, want 100", len(got))
	}
	for i, k := range got {
		if k != int64(i) {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
	rep := nw.checkTree()
	if rep.Entries != 100 {
		t.Errorf("checker entries = %d", rep.Entries)
	}
	// Heap records intact too.
	tx, _ := nw.tm.Begin()
	rs, err := nw.tree.Search(tx, btree.EncodeRange(0, 200), gist.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		rec, err := nw.heap.Read(r.RID)
		if err != nil {
			t.Fatalf("heap record %v: %v", r.RID, err)
		}
		want := fmt.Sprintf("rec-%d", btree.DecodeKey(r.Key))
		if string(rec) != want {
			t.Fatalf("heap record = %q, want %q", rec, want)
		}
	}
	tx.Commit()
}

func TestRecoverLoserRolledBack(t *testing.T) {
	w := newWorld(t, gist.Config{MaxEntries: 6})
	for i := 0; i < 20; i++ {
		w.put(int64(i))
	}
	// A transaction inserts but never commits; its records reach the log
	// (force them explicitly, as a concurrent commit's group flush would).
	loser, _ := w.tm.Begin()
	w.putIn(loser, 500)
	w.putIn(loser, 501)
	w.log.FlushAll()

	nw, stats := w.crashAndRecover(0)
	if stats.Losers != 1 || stats.Undone != 1 {
		t.Errorf("losers=%d undone=%d, want 1,1", stats.Losers, stats.Undone)
	}
	if got := nw.keys(500, 600); len(got) != 0 {
		t.Errorf("loser keys visible after recovery: %v", got)
	}
	if got := nw.keys(0, 100); len(got) != 20 {
		t.Errorf("committed keys = %d, want 20", len(got))
	}
	nw.checkTree()
}

func TestRecoverLoserDeleteUnmarked(t *testing.T) {
	w := newWorld(t, gist.Config{})
	rid := w.put(7)
	loser, _ := w.tm.Begin()
	if err := w.tree.Delete(loser, btree.EncodeKey(7), rid); err != nil {
		t.Fatal(err)
	}
	w.log.FlushAll()

	nw, _ := w.crashAndRecover(0)
	if got := nw.keys(7, 7); len(got) != 1 {
		t.Errorf("key 7 not restored: %v", got)
	}
	rep := nw.checkTree()
	if rep.Marked != 0 {
		t.Errorf("marked = %d after loser delete rollback", rep.Marked)
	}
}

func TestRecoverCommittedDeleteStaysDeleted(t *testing.T) {
	w := newWorld(t, gist.Config{})
	rid := w.put(7)
	w.put(8)
	tx, _ := w.tm.Begin()
	if err := w.tree.Delete(tx, btree.EncodeKey(7), rid); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	nw, _ := w.crashAndRecover(0)
	if got := nw.keys(0, 100); len(got) != 1 || got[0] != 8 {
		t.Errorf("keys after recovery = %v, want [8]", got)
	}
	rep := nw.checkTree()
	if rep.Marked != 1 {
		t.Errorf("marked = %d, want 1 (logical delete persisted)", rep.Marked)
	}
}

func TestRecoverInterruptedSplitSMO(t *testing.T) {
	// Crash with only a prefix of a split NTA in the log: the loser's
	// rollback must reverse the partial structure modification.
	w := newWorld(t, gist.Config{MaxEntries: 4})
	for i := 0; i < 4; i++ {
		w.put(int64(i * 10))
	}
	// This insert splits the root leaf.
	tx, _ := w.tm.Begin()
	w.putIn(tx, 5)

	// Find the Split record and cut the log right after it (inside the
	// NTA: Get-Page and Split survive; the parent installation and the
	// dummy CLR do not).
	var splitLSN page.LSN
	w.log.Scan(1, func(r *wal.Record) bool {
		if r.Type == wal.RecSplit {
			splitLSN = r.LSN
		}
		return true
	})
	if splitLSN == 0 {
		t.Fatal("setup: no split occurred")
	}

	nw, stats := w.crashAndRecover(splitLSN)
	if stats.Losers != 1 {
		t.Fatalf("losers = %d, want 1", stats.Losers)
	}
	got := nw.keys(0, 100)
	if len(got) != 4 {
		t.Fatalf("keys = %v, want the 4 committed ones", got)
	}
	rep := nw.checkTree()
	if rep.Entries != 4 {
		t.Errorf("entries = %d", rep.Entries)
	}
	if rep.Orphans != 0 {
		t.Errorf("orphans = %d after SMO rollback", rep.Orphans)
	}
	// The tree remains fully usable.
	nw.put(999)
	if got := nw.keys(999, 999); len(got) != 1 {
		t.Error("insert after recovery failed")
	}
}

func TestRecoverWithEvictionsAndPartialFlush(t *testing.T) {
	// A tiny pool forces constant evictions, so the disk holds a mix of
	// old and new page versions at the crash; redo must reconcile them.
	w := newWorld(t, gist.Config{MaxEntries: 6})
	if err := w.pool.FlushAll(); err != nil { // hand the tree to a new pool
		t.Fatal(err)
	}
	small := buffer.New(w.disk, 8, w.log)
	w.pool = small
	tm := txn.NewManager(w.log, w.locks, w.preds)
	w.tm = tm
	w.heap = heap.New(small)
	w.heap.RegisterUndo(tm)
	tree, err := gist.Open(small, tm, w.cfg, w.anchor)
	if err != nil {
		t.Fatal(err)
	}
	w.tree = tree

	for i := 0; i < 200; i++ {
		w.put(int64(i))
	}
	nw, _ := w.crashAndRecover(0)
	got := nw.keys(0, 1000)
	if len(got) != 200 {
		t.Fatalf("recovered %d keys, want 200", len(got))
	}
	nw.checkTree()
}

func TestRecoverAfterCheckpoint(t *testing.T) {
	w := newWorld(t, gist.Config{MaxEntries: 6})
	for i := 0; i < 50; i++ {
		w.put(int64(i))
	}
	if _, err := recovery.Checkpoint(w.tm, w.pool, w.disk); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 80; i++ {
		w.put(int64(i))
	}
	nw, stats := w.crashAndRecover(0)
	if got := nw.keys(0, 100); len(got) != 80 {
		t.Fatalf("keys = %d, want 80", len(got))
	}
	// The checkpoint should have bounded the redo work: everything
	// before it was flushed.
	if stats.RedoSkipped == 0 && stats.Redone > 200 {
		t.Logf("redo stats: redone=%d skipped=%d (informational)", stats.Redone, stats.RedoSkipped)
	}
	nw.checkTree()
}

func TestRecoveryIsIdempotent(t *testing.T) {
	// Crash during recovery: recover, crash again immediately (losing
	// nothing new since recovery flushed), recover again.
	w := newWorld(t, gist.Config{MaxEntries: 6})
	for i := 0; i < 30; i++ {
		w.put(int64(i))
	}
	loser, _ := w.tm.Begin()
	w.putIn(loser, 400)
	w.log.FlushAll()

	nw1, _ := w.crashAndRecover(0)
	nw2, stats2 := nw1.crashAndRecover(0)
	if stats2.Losers != 0 {
		t.Errorf("second restart found %d losers, want 0", stats2.Losers)
	}
	if got := nw2.keys(0, 1000); len(got) != 30 {
		t.Fatalf("keys = %d, want 30", len(got))
	}
	nw2.checkTree()
}

func TestRecoverCrashDuringUndo(t *testing.T) {
	// First crash leaves a loser; recovery begins, but a second crash
	// interrupts it after some CLRs were written. The CLR chain must let
	// the third restart finish the rollback without repeating undo work.
	w := newWorld(t, gist.Config{MaxEntries: 4})
	for i := 0; i < 10; i++ {
		w.put(int64(i))
	}
	loser, _ := w.tm.Begin()
	for i := 100; i < 110; i++ {
		w.putIn(loser, int64(i))
	}
	w.log.FlushAll()

	// First restart, fully.
	nw1, _ := w.crashAndRecover(0)
	// Simulate the mid-undo crash by cutting the recovered log two
	// records before its end (dropping the tail of the CLR chain).
	cut := nw1.log.LastLSN() - 2
	nw2, _ := nw1.crashAndRecover(cut)
	if got := nw2.keys(0, 1000); len(got) != 10 {
		t.Fatalf("keys = %d, want 10 committed", len(got))
	}
	nw2.checkTree()
}

// TestTable1Matrix is experiment E6: for every log record type the paper
// lists in Table 1, crash immediately after the first record of that type
// becomes durable, recover, and verify both structural invariants and
// transactional correctness (committed effects present, losers absent).
func TestTable1Matrix(t *testing.T) {
	types := []wal.RecType{
		wal.RecParentEntryUpdate,
		wal.RecSplit,
		wal.RecGarbageCollection,
		wal.RecInternalEntryAdd,
		wal.RecInternalEntryUpdate,
		wal.RecInternalEntryDelete,
		wal.RecAddLeafEntry,
		wal.RecMarkLeafEntry,
		wal.RecGetPage,
		wal.RecFreePage,
		wal.RecRootChange,
	}
	// Build a workload that generates every record type: inserts with
	// splits (Split, Internal-Entry-*, Get-Page, Parent-Entry-Update,
	// Root-Change), logical deletes (Mark-Leaf-Entry), GC + node deletion
	// (Garbage-Collection, Free-Page, Internal-Entry-Delete).
	build := func() *world {
		w := newWorld(t, gist.Config{MaxEntries: 4})
		rids := make(map[int64]page.RID)
		for i := 0; i < 40; i++ {
			rids[int64(i)] = w.put(int64(i))
		}
		tx, _ := w.tm.Begin()
		for i := 0; i < 8; i++ {
			if err := w.tree.Delete(tx, btree.EncodeKey(int64(i)), rids[int64(i)]); err != nil {
				t.Fatal(err)
			}
		}
		tx.Commit()
		w.tree.TxnFinished(tx.ID())
		gcTx, _ := w.tm.Begin()
		if err := w.tree.GCAll(gcTx); err != nil {
			t.Fatal(err)
		}
		gcTx.Commit()
		w.tree.TxnFinished(gcTx.ID())
		return w
	}

	ref := build()
	present := make(map[wal.RecType][]page.LSN)
	ref.log.Scan(1, func(r *wal.Record) bool {
		present[r.Type] = append(present[r.Type], r.LSN)
		return true
	})
	for _, typ := range types {
		if len(present[typ]) == 0 {
			t.Fatalf("workload never produced %v; matrix incomplete", typ)
		}
	}

	for _, typ := range types {
		typ := typ
		t.Run(typ.String(), func(t *testing.T) {
			w := build()
			// Cut after the first occurrence following tree
			// creation (cutting inside creation itself would
			// just mean the tree never existed).
			var createEnd, cut page.LSN
			w.log.Scan(1, func(r *wal.Record) bool {
				if createEnd == 0 {
					if r.Type == wal.RecEnd {
						createEnd = r.LSN
					}
					return true
				}
				if r.Type == typ {
					cut = r.LSN
					return false
				}
				return true
			})
			if cut == 0 {
				t.Fatalf("no %v record", typ)
			}
			nw, _ := w.crashAndRecover(cut)
			rep := nw.checkTree()
			if rep.Orphans != 0 {
				t.Errorf("orphans = %d", rep.Orphans)
			}
			// Transactional correctness: keys of committed txns in
			// the survivor log present, losers' absent.
			committed := make(map[page.TxnID]bool)
			inserted := make(map[page.TxnID][]int64)
			deleted := make(map[page.TxnID][]int64)
			nw.log.Scan(1, func(r *wal.Record) bool {
				switch r.Type {
				case wal.RecCommit:
					committed[r.Txn] = true
				case wal.RecAddLeafEntry:
					if e, err := page.DecodeEntry(r.Body, true); err == nil {
						inserted[r.Txn] = append(inserted[r.Txn], btree.DecodeKey(e.Pred))
					}
				case wal.RecMarkLeafEntry:
					if e, err := page.DecodeEntry(r.Body, true); err == nil {
						deleted[r.Txn] = append(deleted[r.Txn], btree.DecodeKey(e.Pred))
					}
				}
				return true
			})
			got := make(map[int64]bool)
			for _, k := range nw.keys(-1000, 1000) {
				got[k] = true
			}
			want := make(map[int64]bool)
			for txid, keys := range inserted {
				if committed[txid] {
					for _, k := range keys {
						want[k] = true
					}
				}
			}
			for txid, keys := range deleted {
				if committed[txid] {
					for _, k := range keys {
						delete(want, k)
					}
				}
			}
			for k := range want {
				if !got[k] {
					t.Errorf("committed key %d lost (crash after first %v)", k, typ)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("unexpected key %d present (crash after first %v)", k, typ)
				}
			}
			// The recovered tree accepts new work.
			nw.put(7777)
			if got := nw.keys(7777, 7777); len(got) != 1 {
				t.Error("recovered tree rejected an insert")
			}
			nw.checkTree()
		})
	}
}

// TestFuzzedCrashPoints cuts the log at many random LSNs of a rich
// workload (inserts, splits, deletes, GC, node deletions, savepoints) and
// verifies after every restart that (a) structural invariants hold, (b)
// the live keys are exactly those the survivor log proves committed, and
// (c) the engine accepts new work. This subsumes the Table 1 matrix with
// arbitrary intra-SMO crash points.
func TestFuzzedCrashPoints(t *testing.T) {
	build := func() *world {
		w := newWorld(t, gist.Config{MaxEntries: 4})
		rids := make(map[int64]page.RID)
		for i := 0; i < 30; i++ {
			rids[int64(i)] = w.put(int64(i))
		}
		// A savepoint transaction with partial rollback.
		tx, _ := w.tm.Begin()
		w.putIn(tx, 200)
		tx.Savepoint("sp")
		w.putIn(tx, 201)
		tx.RollbackTo("sp")
		tx.Commit()
		w.tree.TxnFinished(tx.ID())
		// Deletes + GC (garbage collection, node deletion records).
		tx2, _ := w.tm.Begin()
		for i := 0; i < 10; i++ {
			if err := w.tree.Delete(tx2, btree.EncodeKey(int64(i)), rids[int64(i)]); err != nil {
				t.Fatal(err)
			}
		}
		tx2.Commit()
		w.tree.TxnFinished(tx2.ID())
		gc, _ := w.tm.Begin()
		if err := w.tree.GCAll(gc); err != nil {
			t.Fatal(err)
		}
		gc.Commit()
		w.tree.TxnFinished(gc.ID())
		// An in-flight loser at the end.
		loser, _ := w.tm.Begin()
		w.putIn(loser, 500)
		w.log.FlushAll()
		return w
	}

	ref := build()
	total := int(ref.log.LastLSN())
	rng := rand.New(rand.NewSource(99))
	cuts := map[page.LSN]bool{page.LSN(total): true} // always test the full log
	for len(cuts) < 40 {
		cuts[page.LSN(1+rng.Intn(total))] = true
	}
	for cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("lsn%d", cut), func(t *testing.T) {
			w := build()
			nw, _ := w.crashAndRecover(cut)
			rep := nw.checkTree()
			if rep.Orphans != 0 {
				t.Fatalf("orphans after cut at %d", cut)
			}
			// Expected keys per the survivor log.
			committed := make(map[page.TxnID]bool)
			inserted := make(map[page.TxnID][]int64)
			deleted := make(map[page.TxnID][]int64)
			undone := make(map[page.LSN]bool) // CLR'd inserts within winners
			nw.log.Scan(1, func(r *wal.Record) bool {
				switch {
				case r.Type == wal.RecCommit:
					committed[r.Txn] = true
				case r.Type == wal.RecAddLeafEntry:
					if e, err := page.DecodeEntry(r.Body, true); err == nil {
						inserted[r.Txn] = append(inserted[r.Txn], btree.DecodeKey(e.Pred))
					}
				case r.Type == wal.RecAddLeafEntry|wal.ClrFlag:
					// A compensated insert (savepoint rollback):
					// remove one instance of the key.
					if e, err := page.DecodeEntry(r.Body, true); err == nil {
						k := btree.DecodeKey(e.Pred)
						ks := inserted[r.Txn]
						for i := len(ks) - 1; i >= 0; i-- {
							if ks[i] == k {
								inserted[r.Txn] = append(ks[:i], ks[i+1:]...)
								break
							}
						}
					}
				case r.Type == wal.RecMarkLeafEntry:
					if e, err := page.DecodeEntry(r.Body, true); err == nil {
						deleted[r.Txn] = append(deleted[r.Txn], btree.DecodeKey(e.Pred))
					}
				case r.Type == wal.RecMarkLeafEntry|wal.ClrFlag:
					if e, err := page.DecodeEntry(r.Body, true); err == nil {
						k := btree.DecodeKey(e.Pred)
						ks := deleted[r.Txn]
						for i := len(ks) - 1; i >= 0; i-- {
							if ks[i] == k {
								deleted[r.Txn] = append(ks[:i], ks[i+1:]...)
								break
							}
						}
					}
				}
				return true
			})
			_ = undone
			want := make(map[int64]bool)
			for txid, keys := range inserted {
				if committed[txid] {
					for _, k := range keys {
						want[k] = true
					}
				}
			}
			for txid, keys := range deleted {
				if committed[txid] {
					for _, k := range keys {
						delete(want, k)
					}
				}
			}
			got := make(map[int64]bool)
			for _, k := range nw.keys(-1000, 10000) {
				got[k] = true
			}
			for k := range want {
				if !got[k] {
					t.Errorf("cut %d: committed key %d lost", cut, k)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("cut %d: unexpected key %d", cut, k)
				}
			}
			nw.put(9999)
			if len(nw.keys(9999, 9999)) != 1 {
				t.Error("recovered engine rejected an insert")
			}
		})
	}
}

func TestRecoverFromTruncatedLog(t *testing.T) {
	// A checkpoint truncates the log head; a crash after further work
	// must recover correctly from the shortened log.
	w := newWorld(t, gist.Config{MaxEntries: 6})
	for i := 0; i < 40; i++ {
		w.put(int64(i))
	}
	if _, err := recovery.Checkpoint(w.tm, w.pool, w.disk); err != nil {
		t.Fatal(err)
	}
	if w.log.Base() == 0 {
		t.Fatal("checkpoint did not truncate the log head")
	}
	for i := 40; i < 60; i++ {
		w.put(int64(i))
	}
	loser, _ := w.tm.Begin()
	w.putIn(loser, 900)
	w.log.FlushAll()

	nw, stats := w.crashAndRecover(0)
	if got := nw.keys(0, 1000); len(got) != 60 {
		t.Fatalf("keys = %d, want 60", len(got))
	}
	if stats.Losers != 1 {
		t.Errorf("losers = %d", stats.Losers)
	}
	nw.checkTree()
}

func TestCheckpointRespectsActiveTxnBound(t *testing.T) {
	// A long-running transaction's backchain must survive checkpoints:
	// truncation may not pass its first LSN, or its rollback would fail.
	w := newWorld(t, gist.Config{MaxEntries: 6})
	longTx, _ := w.tm.Begin()
	w.putIn(longTx, 500) // early record in the long transaction
	for i := 0; i < 30; i++ {
		w.put(int64(i))
	}
	if _, err := recovery.Checkpoint(w.tm, w.pool, w.disk); err != nil {
		t.Fatal(err)
	}
	// The long transaction can still roll back completely.
	if err := longTx.Abort(); err != nil {
		t.Fatalf("abort after checkpoint: %v", err)
	}
	w.tree.TxnFinished(longTx.ID())
	if got := w.keys(500, 500); len(got) != 0 {
		t.Error("rolled-back key visible")
	}
	if got := w.keys(0, 100); len(got) != 30 {
		t.Errorf("keys = %d", len(got))
	}
}

// TestRedoStatsAllDurableExact asserts exact restart redo stats end to
// end: after a checkpoint (which flushes everything and truncates the log
// head) plus fully-flushed follow-up work, redo must apply nothing —
// Redone == 0 exactly, with every scanned page-touching record counted
// as skipped. The checkpoint's logged DPT carries GC-era recLSNs below
// the truncated head, so the run also exercises the explicit RedoLSN
// head clamp; the old Redone accounting and the unclamped scan both
// break the exact zero. (Without a checkpoint bound, nonzero Redone
// would be correct here: redo resurrects GC-freed pages and replays
// their history.)
func TestRedoStatsAllDurableExact(t *testing.T) {
	w := newWorld(t, gist.Config{MaxEntries: 4})
	rids := make(map[int64]page.RID)
	for i := 0; i < 40; i++ {
		rids[int64(i)] = w.put(int64(i))
	}
	tx, _ := w.tm.Begin()
	for i := 0; i < 8; i++ {
		if err := w.tree.Delete(tx, btree.EncodeKey(int64(i)), rids[int64(i)]); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	w.tree.TxnFinished(tx.ID())
	gcTx, _ := w.tm.Begin()
	if err := w.tree.GCAll(gcTx); err != nil {
		t.Fatal(err)
	}
	gcTx.Commit()
	w.tree.TxnFinished(gcTx.ID())
	if _, err := recovery.Checkpoint(w.tm, w.pool, w.disk); err != nil {
		t.Fatal(err)
	}
	// Durable post-checkpoint work so the redo scan is guaranteed to
	// visit page-touching records and classify them as skipped.
	for i := 40; i < 45; i++ {
		w.put(int64(i))
	}

	if err := w.log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := w.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	nw, stats := w.crashAndRecover(0)
	if stats.Redone != 0 {
		t.Errorf("Redone = %d, want exactly 0: every effect was durable", stats.Redone)
	}
	if stats.RedoSkipped == 0 {
		t.Error("RedoSkipped = 0: the durable records were not classified as skipped")
	}
	if got := nw.keys(0, 100); len(got) != 37 {
		t.Fatalf("keys = %d, want 37", len(got))
	}
	nw.checkTree()
}
