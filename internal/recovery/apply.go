package recovery

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Applier is restart's redo machinery run as a long-lived loop: the engine
// of a streaming replica. Where Recovery performs one bounded pass over a
// survived log, an Applier accepts the log incrementally — batch after
// batch of shipped records, already appended to the replica's own log — and
// repeats history on the replica's buffer pool exactly as restart redo
// would: allocation replay inline, per-page queues drained on Workers
// goroutines, pageLSN-gated so re-application after a reconnect replay is
// idempotent. Between batches the pool holds a state identical to what a
// restart over the received log prefix would produce, which is what makes
// read service and promotion sound.
//
// The Applier also carries analysis forward continuously: the in-flight
// transaction table (losers) and the transaction-id high-water mark are
// maintained per record, so Promote never rescans the shipped log — the
// surviving ATT is already in hand.
//
// ApplyBatch is not reentrant; callers serialize it (the replication
// receiver applies under its reader/writer gate).
type Applier struct {
	r *Recovery

	losers  map[page.TxnID]page.LSN
	maxTxn  uint64        // high-water of transaction ids seen in the stream
	applied atomic.Uint64 // LSN through which history has been repeated
}

// NewApplier builds an applier over a replica's log, pool, disk, and
// transaction manager. workers is the redo fan-out (0 = GOMAXPROCS-derived,
// 1 = serial global-LSN order, the determinism gate).
func NewApplier(log *wal.Log, pool *buffer.Pool, disk storage.Manager, tm *txn.Manager, workers int) *Applier {
	ap := &Applier{
		r:      &Recovery{Log: log, Pool: pool, Disk: disk, TM: tm, Workers: workers},
		losers: make(map[page.TxnID]page.LSN),
	}
	ap.r.initMetrics()
	return ap
}

// Metrics exposes the applier's recovery-counter registry (redo volume,
// queue shape, the recovery.redo_drain per-batch latency histogram), for
// merging into a replica's engine-wide snapshot.
func (ap *Applier) Metrics() *stats.Registry { return ap.r.Metrics() }

// ApplyBatch repeats history for one contiguous batch of records, which the
// caller has already appended to the replica log (AppendShipped). It fuses
// the restart scan's per-record work — allocation replay, ATT maintenance,
// redo routing — and then drains the batch's per-page queues.
func (ap *Applier) ApplyBatch(recs []*wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	plan := &redoPlan{
		byPage:  make(map[page.PageID][]*wal.Record),
		dealloc: make(map[page.PageID]bool),
	}
	for _, rec := range recs {
		// Allocation replay happens inside the redo drain (redoOnPage runs
		// the Table 1 side effects from each record's primary page, in
		// per-page LSN order). Restart replays allocation inline during its
		// scan only because its queues are trimmed at the redo point; the
		// applier never trims — every record in the batch drains.
		if rec.Txn != 0 {
			if uint64(rec.Txn) > ap.maxTxn {
				ap.maxTxn = uint64(rec.Txn)
			}
			switch rec.Type {
			case wal.RecEnd, wal.RecCommit:
				delete(ap.losers, rec.Txn)
			default:
				ap.losers[rec.Txn] = rec.LSN
			}
		}
		if pgs := touchedPages(rec); len(pgs) > 0 {
			plan.flat = append(plan.flat, rec)
			for _, pg := range pgs {
				if _, ok := plan.byPage[pg]; !ok {
					plan.order = append(plan.order, pg)
				}
				plan.byPage[pg] = append(plan.byPage[pg], rec)
			}
			switch base, clr := rec.Type.Base(), rec.Type.IsCLR(); {
			case base == wal.RecFreePage && !clr, base == wal.RecGetPage && clr:
				plan.dealloc[rec.Pg] = true
			}
		}
	}
	a := &Analysis{RedoLSN: recs[0].LSN, DPT: map[page.PageID]page.LSN{}}
	var st Stats
	var t0 time.Time
	if stats.Enabled {
		t0 = time.Now()
	}
	if err := ap.r.redo(a, plan, &st, ap.r.workers()); err != nil {
		return fmt.Errorf("apply: %w", err)
	}
	if stats.Enabled {
		drain := time.Since(t0).Nanoseconds()
		ap.r.redoNanos.Add(drain)
		ap.r.redoDrainHist.Observe(drain)
	}
	ap.r.redone.Add(int64(st.Redone))
	ap.r.redoSkipped.Add(int64(st.RedoSkipped))
	ap.applied.Store(uint64(recs[len(recs)-1].LSN))
	return nil
}

// AppliedLSN is the LSN through which history has been repeated (lock-free;
// the apply-lag gauge reads it concurrently with ApplyBatch).
func (ap *Applier) AppliedLSN() page.LSN { return page.LSN(ap.applied.Load()) }

// SetApplied seeds the applied watermark (snapshot bootstrap: the snapshot
// base is "applied" by construction).
func (ap *Applier) SetApplied(lsn page.LSN) { ap.applied.Store(uint64(lsn)) }

// Losers returns a copy of the in-flight transaction table as of the last
// applied batch: the surviving ATT that promotion must undo.
func (ap *Applier) Losers() map[page.TxnID]page.LSN {
	out := make(map[page.TxnID]page.LSN, len(ap.losers))
	for id, lsn := range ap.losers {
		out[id] = lsn
	}
	return out
}

// MaxTxnID is the highest transaction id observed in the stream. Promotion
// advances the new primary's id counter past it so fresh transactions never
// reuse an id whose locks/records the shipped history already attributes to
// someone else.
func (ap *Applier) MaxTxnID() page.TxnID { return page.TxnID(ap.maxTxn) }

// UndoLosers is promotion's undo pass: abort every transaction that was
// in flight at the end of the stream, through the undo handlers registered
// on the transaction manager, writing CLRs to the (now read-write) replica
// log. It mirrors Recovery.Run's undo phase — same deterministic descending
// lastLSN order, same fan-out — and returns the number undone.
func (ap *Applier) UndoLosers() (int, error) {
	a := &Analysis{Losers: ap.losers}
	var st Stats
	if err := ap.r.undo(a, &st, ap.r.workers()); err != nil {
		return st.Undone, err
	}
	ap.losers = make(map[page.TxnID]page.LSN)
	return st.Undone, nil
}

// Pool and Disk expose the applier's dependencies for the promotion
// assembly path.
func (ap *Applier) Pool() *buffer.Pool    { return ap.r.Pool }
func (ap *Applier) Disk() storage.Manager { return ap.r.Disk }
