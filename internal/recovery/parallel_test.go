package recovery_test

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/check"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// survivor is the durable state at a crash — the starting point both sides
// of an equivalence pair restart from. Every restart clones it, so one
// survivor can be restarted any number of times.
type survivor struct {
	t      *testing.T
	log    *wal.Log
	disk   *storage.MemDisk
	anchor page.PageID
	cfg    gist.Config
}

func (w *world) survivorAt(truncLSN page.LSN) *survivor {
	w.t.Helper()
	var survLog *wal.Log
	if truncLSN == 0 {
		survLog = w.log.SurvivingLog()
	} else {
		survLog = w.log.TruncatedCopy(truncLSN)
	}
	return &survivor{t: w.t, log: survLog, disk: w.disk.Snapshot(), anchor: w.anchor, cfg: w.cfg}
}

// restart recovers a clone of the survivor with the given worker fan-out.
func (s *survivor) restart(workers int) (*world, *recovery.Stats) {
	s.t.Helper()
	log := s.log.TruncatedCopy(s.log.LastLSN())
	nw := &world{
		t:      s.t,
		disk:   s.disk.Snapshot(),
		log:    log,
		locks:  lock.NewManager(),
		preds:  predicate.NewManager(),
		anchor: s.anchor,
		cfg:    s.cfg,
	}
	nw.pool = buffer.New(nw.disk, 512, log)
	nw.tm = txn.NewManager(log, nw.locks, nw.preds)
	nw.heap = heap.New(nw.pool)
	nw.heap.RegisterUndo(nw.tm)
	rec := &recovery.Recovery{Log: log, Pool: nw.pool, Disk: nw.disk, TM: nw.tm, Workers: workers}
	stats, err := rec.Run(func() error {
		tree, err := gist.Open(nw.pool, nw.tm, nw.cfg, nw.anchor)
		if err != nil {
			return err
		}
		nw.tree = tree
		return nil
	})
	if err != nil {
		s.t.Fatalf("recovery (workers=%d) failed: %v", workers, err)
	}
	return nw, stats
}

// diskDigest hashes the full durable state: every live page id and image,
// in id order. Run ends with a Pool.FlushAll, so after a restart the disk
// is the complete recovered state.
func diskDigest(t *testing.T, d *storage.MemDisk) string {
	t.Helper()
	h := sha256.New()
	buf := make([]byte, page.Size)
	for _, id := range d.PageIDs() {
		if err := d.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%d:", id)
		h.Write(buf)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// logTrace flattens the log into a comparable record sequence (also
// exercising the batched snapshot scan the restart path uses).
func logTrace(l *wal.Log) []string {
	var out []string
	l.SnapshotScan(1, func(r *wal.Record) bool {
		out = append(out, fmt.Sprintf("%d:%v:t%d:p%d:p%d:prev%d", r.LSN, r.Type, r.Txn, r.Pg, r.Pg2, r.PrevLSN))
		return true
	})
	return out
}

// verifyAgainstOracle checks the recovered world against the survivor-log
// committed-data oracle and the structural invariants.
func verifyAgainstOracle(t *testing.T, nw *world) {
	t.Helper()
	rep := nw.checkTree()
	if rep.Orphans != 0 {
		t.Fatalf("%d orphan nodes after recovery", rep.Orphans)
	}
	if err := check.VerifyOracle(rep, check.OracleFromLog(nw.log, nil)); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// buildSequential drives a seeded sequential workload: committed inserts
// and deletes, savepoint partial rollbacks, GC sweeps, and (for odd seeds)
// one in-flight loser at the end. Transactions never overlap, so any log
// cut leaves at most one loser — exactly the regime in which serial and
// parallel restart must agree byte for byte (a single loser's CLR chain
// admits only one LSN order even when undo is fanned out).
func buildSequential(t *testing.T, seed int64) *world {
	rng := rand.New(rand.NewSource(seed))
	w := newWorld(t, gist.Config{MaxEntries: 4 + rng.Intn(3)})
	var live []int64
	rids := make(map[int64]page.RID)
	next := int64(0)
	for i, n := 0, 18+rng.Intn(18); i < n; i++ {
		switch op := rng.Intn(10); {
		case op < 6: // committed insert batch
			tx, _ := w.tm.Begin()
			for j := 1 + rng.Intn(3); j > 0; j-- {
				rids[next] = w.putIn(tx, next)
				live = append(live, next)
				next++
			}
			tx.Commit()
			w.tree.TxnFinished(tx.ID())
		case op < 8 && len(live) > 2: // committed delete of the oldest keys
			tx, _ := w.tm.Begin()
			for j := 1 + rng.Intn(2); j > 0 && len(live) > 0; j-- {
				k := live[0]
				live = live[1:]
				if err := w.tree.Delete(tx, btree.EncodeKey(k), rids[k]); err != nil {
					t.Fatal(err)
				}
			}
			tx.Commit()
			w.tree.TxnFinished(tx.ID())
		case op < 9: // savepoint with partial rollback
			tx, _ := w.tm.Begin()
			rids[next] = w.putIn(tx, next)
			live = append(live, next)
			next++
			tx.Savepoint("sp")
			w.putIn(tx, next+1000)
			tx.RollbackTo("sp")
			tx.Commit()
			w.tree.TxnFinished(tx.ID())
		default: // GC sweep
			gc, _ := w.tm.Begin()
			if err := w.tree.GCAll(gc); err != nil {
				t.Fatal(err)
			}
			gc.Commit()
			w.tree.TxnFinished(gc.ID())
		}
	}
	if seed%2 == 1 { // an in-flight loser at the crash
		loser, _ := w.tm.Begin()
		for j := 0; j <= int(seed%3); j++ {
			w.putIn(loser, 5000+int64(j))
		}
	}
	w.log.FlushAll()
	return w
}

// TestParallelSerialEquivalence restarts a corpus of seeded crash states
// with RecoveryWorkers=1 and =8 and asserts the two produce identical page
// images, identical stats, identical post-recovery logs, and both satisfy
// the survivor-log oracle.
func TestParallelSerialEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		w := buildSequential(t, seed)
		total := int(w.log.LastLSN())
		rng := rand.New(rand.NewSource(seed * 7777))
		cuts := map[page.LSN]bool{page.LSN(total): true}
		for len(cuts) < 6 {
			cuts[page.LSN(1+rng.Intn(total))] = true
		}
		for cut := range cuts {
			cut := cut
			t.Run(fmt.Sprintf("seed%d/lsn%d", seed, cut), func(t *testing.T) {
				s := w.survivorAt(cut)
				serial, sst := s.restart(1)
				par, pst := s.restart(8)
				if *sst != *pst {
					t.Errorf("stats diverge: serial %+v, parallel %+v", sst, pst)
				}
				sd, pd := diskDigest(t, serial.disk), diskDigest(t, par.disk)
				if sd != pd {
					t.Errorf("recovered page images diverge (serial %s, parallel %s)", sd[:12], pd[:12])
				}
				if st, pt := logTrace(serial.log), logTrace(par.log); !reflect.DeepEqual(st, pt) {
					t.Errorf("post-recovery logs diverge: serial %d records, parallel %d", len(st), len(pt))
				}
				if sk, pk := serial.keys(0, 10000), par.keys(0, 10000); !reflect.DeepEqual(sk, pk) {
					t.Errorf("live keys diverge: serial %v, parallel %v", sk, pk)
				}
				verifyAgainstOracle(t, serial)
				verifyAgainstOracle(t, par)
			})
		}
	}
}

// buildMultiLoser leaves k concurrently active transactions in flight at
// the crash, each with interleaved inserts, on top of a committed base.
func buildMultiLoser(t *testing.T, k int) *world {
	w := newWorld(t, gist.Config{MaxEntries: 4})
	for i := 0; i < 20; i++ {
		w.put(int64(i))
	}
	txs := make([]*txn.Txn, k)
	for i := range txs {
		tx, err := w.tm.Begin()
		if err != nil {
			t.Fatal(err)
		}
		txs[i] = tx
	}
	for round := 0; round < 3; round++ {
		for i, tx := range txs {
			w.putIn(tx, 1000+int64(i)*100+int64(round))
		}
	}
	w.log.FlushAll()
	return w
}

// TestParallelUndoMultiLoserEquivalence crashes with several losers in
// flight and restarts serially and in parallel. With more than one loser
// the CLR interleaving (hence the exact log/image bytes) legitimately
// differs across fan-outs, but everything observable must agree: stats,
// live keys, structural invariants, and the committed-data oracle.
func TestParallelUndoMultiLoserEquivalence(t *testing.T) {
	const k = 6
	w := buildMultiLoser(t, k)
	s := w.survivorAt(0)
	serial, sst := s.restart(1)
	par, pst := s.restart(8)
	if *sst != *pst {
		t.Errorf("stats diverge: serial %+v, parallel %+v", sst, pst)
	}
	if sst.Losers != k || sst.Undone != k {
		t.Errorf("stats = %+v, want %d losers undone", sst, k)
	}
	if sk, pk := serial.keys(0, 10000), par.keys(0, 10000); !reflect.DeepEqual(sk, pk) {
		t.Errorf("live keys diverge: serial %v, parallel %v", sk, pk)
	}
	verifyAgainstOracle(t, serial)
	verifyAgainstOracle(t, par)
}

// TestRepeatedRestartDeterminism pins the undo-ordering bugfix: two
// restarts from the same survivor files must produce identical logs,
// images, and stats. The old code iterated the loser map in Go's
// randomized order, so with eight losers virtually every pair of restarts
// interleaved their CLRs differently and crashfuzz repros changed run to
// run. Workers=1 is the determinism gate the repro workflow uses.
func TestRepeatedRestartDeterminism(t *testing.T) {
	w := buildMultiLoser(t, 8)
	s := w.survivorAt(0)
	first, fst := s.restart(1)
	trace := logTrace(first.log)
	digest := diskDigest(t, first.disk)
	for i := 0; i < 3; i++ {
		nw, st := s.restart(1)
		if *st != *fst {
			t.Fatalf("restart %d: stats %+v, want %+v", i, st, fst)
		}
		if got := logTrace(nw.log); !reflect.DeepEqual(got, trace) {
			t.Fatalf("restart %d: post-recovery log differs from the first restart", i)
		}
		if got := diskDigest(t, nw.disk); got != digest {
			t.Fatalf("restart %d: recovered page images differ from the first restart", i)
		}
	}
}
