// Package recovery implements ARIES-style restart (§9 of the paper):
// analysis over the log from the last checkpoint, page-oriented redo that
// repeats history, and undo of loser transactions with logical undo for
// leaf-entry operations and compensation log records throughout.
//
// Structure modifications that completed before the crash are protected by
// their dummy CLRs and are never undone; one that was interrupted mid-
// flight is rolled back page-oriented through the same undo handlers used
// at runtime. Per §9.2, the logical undo of leaf operations performs no
// structure modifications of its own.
package recovery

import (
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/latch"
	"repro/internal/page"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Recovery drives a restart over an existing (survived) log and disk with a
// fresh buffer pool and transaction manager.
type Recovery struct {
	Log  *wal.Log
	Pool *buffer.Pool
	Disk storage.Manager
	TM   *txn.Manager
}

// Analysis is the outcome of the analysis pass.
type Analysis struct {
	// Losers maps each in-flight transaction to its last log record.
	Losers map[page.TxnID]page.LSN
	// DPT is the reconstructed dirty page table (page -> recLSN).
	DPT map[page.PageID]page.LSN
	// RedoLSN is where the redo pass starts.
	RedoLSN page.LSN
}

// Stats reports what a restart did.
type Stats struct {
	Analyzed    int
	Redone      int
	RedoSkipped int
	Losers      int
	Undone      int
}

// Run performs the full restart. register is called between redo and undo:
// it must open the trees (which installs their undo handlers on the
// transaction manager) and may return them for the caller's use.
func (r *Recovery) Run(register func() error) (*Stats, error) {
	a, n, err := r.Analyze()
	if err != nil {
		return &Stats{}, fmt.Errorf("recovery: analysis: %w", err)
	}
	st := &Stats{Analyzed: n, Losers: len(a.Losers)}
	if err := r.replayAllocation(); err != nil {
		return st, fmt.Errorf("recovery: allocation replay: %w", err)
	}
	if err := r.Redo(a, st); err != nil {
		return st, fmt.Errorf("recovery: redo: %w", err)
	}
	if register != nil {
		if err := register(); err != nil {
			return st, fmt.Errorf("recovery: register: %w", err)
		}
	}
	if err := r.Undo(a, st); err != nil {
		return st, fmt.Errorf("recovery: undo: %w", err)
	}
	if err := r.Log.FlushAll(); err != nil {
		return st, err
	}
	if err := r.Pool.FlushAll(); err != nil {
		return st, err
	}
	return st, nil
}

// Analyze scans forward from the last checkpoint, rebuilding the active
// transaction table and the dirty page table.
func (r *Recovery) Analyze() (*Analysis, int, error) {
	a := &Analysis{
		Losers: make(map[page.TxnID]page.LSN),
		DPT:    make(map[page.PageID]page.LSN),
	}
	start := page.LSN(1)
	if ck := r.Log.MasterCheckpoint(); ck != 0 {
		start = ck
		rec, err := r.Log.Get(ck)
		switch {
		case err == nil:
			// The checkpoint is fuzzy: with the pipelined log, records
			// can be reserved below the checkpoint's own LSN yet land
			// after its snapshot was gathered — a Commit squeezing in
			// under the checkpoint, a page's first dirtying still in
			// flight. Scanning only from the checkpoint record would
			// miss them and undo committed transactions, so the scan
			// starts at the snapshot anchor (PrevLSN, the reservation
			// head when the snapshot began) and at or below every
			// snapshot transaction's last LSN — a stale table read can
			// trail its transaction's true last record by at most one,
			// so scanning from the stale value re-observes it.
			if rec.PrevLSN != 0 && rec.PrevLSN+1 < start {
				start = rec.PrevLSN + 1
			}
			for _, ts := range rec.ATT {
				a.Losers[ts.ID] = ts.LastLSN
				if ts.LastLSN != 0 && ts.LastLSN < start {
					start = ts.LastLSN
				}
			}
			for _, dp := range rec.DPT {
				a.DPT[dp.ID] = dp.RecLSN
			}
		case r.Log.Base() == 0:
			// The checkpoint record is unreadable but the full log
			// is still here: rebuild the ATT and DPT by scanning
			// from LSN 1 instead of silently starting empty (which
			// would miss losers whose last record predates the
			// checkpoint).
			start = 1
		default:
			// The head before the checkpoint is truncated; without
			// the checkpoint's ATT/DPT the restart cannot be
			// trusted. Fail loudly rather than lose losers.
			return nil, 0, fmt.Errorf("checkpoint record %d unreadable past truncated head (base %d): %w",
				ck, r.Log.Base(), err)
		}
	}
	n := 0
	r.Log.Scan(start, func(rec *wal.Record) bool {
		n++
		if rec.Txn != 0 {
			switch rec.Type {
			case wal.RecEnd:
				delete(a.Losers, rec.Txn)
			case wal.RecCommit:
				// Committed but End not yet durable: the
				// transaction wins; nothing to undo.
				delete(a.Losers, rec.Txn)
			default:
				a.Losers[rec.Txn] = rec.LSN
			}
		}
		for _, pg := range touchedPages(rec) {
			if _, ok := a.DPT[pg]; !ok {
				a.DPT[pg] = rec.LSN
			}
		}
		return true
	})
	a.RedoLSN = page.LSN(1)
	if len(a.DPT) > 0 {
		min := page.LSN(1 << 62)
		for _, l := range a.DPT {
			if l != 0 && l < min {
				min = l
			}
		}
		if min != 1<<62 {
			a.RedoLSN = min
		}
	} else if ck := r.Log.MasterCheckpoint(); ck != 0 {
		a.RedoLSN = ck
	}
	// Clamp to the log head: the checkpoint's DPT is logged before the
	// checkpoint's own FlushAll, so its recLSNs may predate the
	// DiscardBefore truncation point. Those pages were flushed before the
	// head was cut, so redo from just past the head is sufficient — and
	// scanning from below the head must not be left to Scan's silent
	// clamp.
	if base := r.Log.Base(); a.RedoLSN <= base {
		a.RedoLSN = base + 1
	}
	return a, n, nil
}

// replayAllocation rebuilds the disk's allocation state from the whole
// retained log, before redo. The allocation metadata is durable only as of
// the last completed Sync, while individual page images flush continuously
// under WAL protection: a page allocated after that Sync can have a durable
// image (and durable references to it) yet be missing from the metadata.
// Redo's page-LSN skip logic cannot heal that — it never fetches a page all
// of whose records predate the redo point — so allocation is replayed from
// the log directly. The log head is only ever truncated after a completed
// Sync, so everything the metadata does not cover is still in the log, and
// replaying the overlap in LSN order is idempotent.
func (r *Recovery) replayAllocation() error {
	var rerr error
	r.Log.Scan(1, func(rec *wal.Record) bool {
		alloc := false
		switch rec.Type.Base() {
		case wal.RecGetPage:
			alloc = !rec.Type.IsCLR()
		case wal.RecFreePage:
			alloc = rec.Type.IsCLR()
		default:
			return true
		}
		if alloc {
			rerr = r.Disk.EnsureAllocated(rec.Pg)
		} else {
			rerr = r.Disk.EnsureDeallocated(rec.Pg)
		}
		return rerr == nil
	})
	return rerr
}

// touchedPages lists the pages whose images a record's redo modifies.
func touchedPages(rec *wal.Record) []page.PageID {
	base := rec.Type.Base()
	switch base {
	case wal.RecSplit:
		if rec.Type.IsCLR() {
			return []page.PageID{rec.Pg}
		}
		return []page.PageID{rec.Pg, rec.Pg2}
	case wal.RecParentEntryUpdate, wal.RecInternalEntryAdd, wal.RecInternalEntryUpdate,
		wal.RecInternalEntryDelete, wal.RecAddLeafEntry, wal.RecMarkLeafEntry,
		wal.RecGarbageCollection, wal.RecGetPage, wal.RecFreePage, wal.RecRootChange,
		wal.RecHeapInsert, wal.RecHeapDelete:
		return []page.PageID{rec.Pg}
	default:
		return nil
	}
}

// Redo repeats history from the redo point: every page-modifying record is
// re-applied to pages whose pageLSN predates it.
func (r *Recovery) Redo(a *Analysis, st *Stats) error {
	var rerr error
	r.Log.Scan(a.RedoLSN, func(rec *wal.Record) bool {
		if err := r.redoRecord(rec, st); err != nil {
			rerr = fmt.Errorf("redo of %v: %w", rec, err)
			return false
		}
		return true
	})
	return rerr
}

func (r *Recovery) redoRecord(rec *wal.Record, st *Stats) error {
	base := rec.Type.Base()
	pages := touchedPages(rec)
	if len(pages) == 0 {
		return nil
	}

	// Allocation-state redo first (Table 1: Get-Page marks the page
	// unavailable for allocation, Free-Page marks it available).
	if base == wal.RecGetPage && !rec.Type.IsCLR() {
		if err := r.Disk.EnsureAllocated(rec.Pg); err != nil {
			return err
		}
	}
	if base == wal.RecFreePage && !rec.Type.IsCLR() {
		// Apply the content flag if the page still exists, then free.
		// Count the record as redone only if it changed something: the
		// flag was stamped, or the allocation state transitioned.
		applied := false
		if f, err := r.Pool.Fetch(rec.Pg); err == nil {
			f.Latch.Acquire(latch.X)
			if f.Page.LSN() < rec.LSN {
				f.Page.SetFlags(f.Page.Flags() | page.FlagDeallocated)
				f.Page.SetLSN(rec.LSN)
				applied = true
			}
			f.Latch.Release(latch.X)
			r.Pool.Unpin(f, applied, rec.LSN)
		}
		switch err := r.Pool.Deallocate(rec.Pg); {
		case err == nil:
			applied = true
		case !errors.Is(err, storage.ErrNoSuchPage):
			return err
		}
		if applied {
			st.Redone++
		} else {
			st.RedoSkipped++
		}
		return nil
	}
	if base == wal.RecGetPage && rec.Type.IsCLR() {
		// Compensated allocation: the page goes back to the free pool.
		switch err := r.Pool.Deallocate(rec.Pg); {
		case err == nil:
			st.Redone++
		case errors.Is(err, storage.ErrNoSuchPage):
			st.RedoSkipped++
		default:
			return err
		}
		return nil
	}
	if base == wal.RecFreePage && rec.Type.IsCLR() {
		if err := r.Disk.EnsureAllocated(rec.Pg); err != nil {
			return err
		}
	}

	for _, pg := range pages {
		f, err := r.Pool.Fetch(pg)
		if errors.Is(err, storage.ErrNoSuchPage) {
			// Allocation state lagged the log (meta not synced at
			// crash); adopt the page and redo onto a fresh image.
			if aerr := r.Disk.EnsureAllocated(pg); aerr != nil {
				return aerr
			}
			f, err = r.Pool.Fetch(pg)
		}
		if err != nil {
			return err
		}
		f.Latch.Acquire(latch.X)
		if f.Page.LSN() >= rec.LSN {
			f.Latch.Release(latch.X)
			r.Pool.Unpin(f, false, 0)
			st.RedoSkipped++
			continue
		}
		switch base {
		case wal.RecHeapInsert, wal.RecHeapDelete:
			err = heap.Redo(rec, &f.Page)
		default:
			err = redoTreeOnPage(rec, &f.Page, pg)
		}
		f.Latch.Release(latch.X)
		r.Pool.Unpin(f, err == nil, rec.LSN)
		if err != nil {
			return err
		}
		st.Redone++
	}
	return nil
}

// redoTreeOnPage applies a tree record to one of its pages. For a Split the
// same record is applied separately to each side; gist.Redo dispatches on
// the page id.
func redoTreeOnPage(rec *wal.Record, p *page.Page, pg page.PageID) error {
	if !gist.TouchesPage(rec, pg) {
		return nil
	}
	return gist.Redo(rec, p, pg)
}

// Undo rolls back every loser transaction through the registered undo
// handlers, exactly as a runtime abort would, writing CLRs so that a crash
// during restart resumes correctly.
func (r *Recovery) Undo(a *Analysis, st *Stats) error {
	for id, lastLSN := range a.Losers {
		tx, err := r.TM.AdoptLoser(id, lastLSN)
		if err != nil {
			return err
		}
		if err := tx.Abort(); err != nil {
			return fmt.Errorf("loser %d: %w", id, err)
		}
		st.Undone++
	}
	return nil
}

// Checkpoint takes a fuzzy checkpoint: it logs the ATT and DPT, flushes the
// log, flushes all dirty pages, syncs the disk, and truncates the log head
// up to the earliest point a restart could still need — the minimum of the
// checkpoint itself and the first LSN of any live transaction (whose
// backchain rollback must be able to walk).
func Checkpoint(tm *txn.Manager, pool *buffer.Pool, disk storage.Manager) (page.LSN, error) {
	lsn, err := tm.Checkpoint(pool.DirtyPages)
	if err != nil {
		return 0, err
	}
	if err := pool.FlushAll(); err != nil {
		return 0, err
	}
	if err := disk.Sync(); err != nil {
		return 0, err
	}
	bound := lsn
	if m := tm.MinActiveFirstLSN(); m != 0 && m < bound {
		bound = m
	}
	if _, err := tm.Log().DiscardBefore(bound); err != nil {
		return 0, err
	}
	return lsn, nil
}
