// Package recovery implements ARIES-style restart (§9 of the paper):
// analysis over the log from the last checkpoint, page-oriented redo that
// repeats history, and undo of loser transactions with logical undo for
// leaf-entry operations and compensation log records throughout.
//
// Structure modifications that completed before the crash are protected by
// their dummy CLRs and are never undone; one that was interrupted mid-
// flight is rolled back page-oriented through the same undo handlers used
// at runtime. Per §9.2, the logical undo of leaf operations performs no
// structure modifications of its own.
//
// Restart is parallel: a single forward scan (batched, lock-free via
// wal.Log.SnapshotScan) fuses analysis and allocation replay while routing
// every page-modifying record into a per-page redo queue; the queues drain
// on Workers goroutines (redo is page-independent, so per-queue LSN order is
// the only order that matters), with a DPT-driven prefetcher warming the
// pool ahead of the drain; losers are undone concurrently after sorting by
// descending lastLSN. Workers=1 reproduces the serial restart exactly —
// record at a time in global LSN order — which is the determinism gate the
// crashfuzz repro workflow and the equivalence tests rely on.
package recovery

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/latch"
	"repro/internal/page"
	"repro/internal/shards"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Recovery drives a restart over an existing (survived) log and disk with a
// fresh buffer pool and transaction manager.
type Recovery struct {
	Log  *wal.Log
	Pool *buffer.Pool
	Disk storage.Manager
	TM   *txn.Manager

	// Workers is the fan-out of the redo drain and the loser undo. Zero
	// means shards.Workers() (GOMAXPROCS, clamped); 1 forces the serial
	// single-goroutine order.
	Workers int

	metricsOnce sync.Once
	reg         *stats.Registry
	workersUsed atomic.Int64

	restarts                               *stats.Counter
	scanNanos, redoNanos, undoNanos        *stats.Counter
	analyzed, redone, redoSkipped          *stats.Counter
	losers, undone                         *stats.Counter
	prefetchHits, prefetchMisses           *stats.Counter
	queuePages, queueMaxDepth, workerPages *stats.Counter
	redoDrainHist                          *stats.Histogram
}

// Analysis is the outcome of the analysis pass.
type Analysis struct {
	// Losers maps each in-flight transaction to its last log record.
	Losers map[page.TxnID]page.LSN
	// DPT is the reconstructed dirty page table (page -> recLSN).
	DPT map[page.PageID]page.LSN
	// RedoLSN is where the redo pass starts.
	RedoLSN page.LSN
}

// Stats reports what a restart did.
type Stats struct {
	Analyzed    int
	Redone      int
	RedoSkipped int
	Losers      int
	Undone      int
}

// redoPlan is the page-partitioned redo work gathered by the forward scan.
type redoPlan struct {
	// flat holds every page-modifying record in LSN order (the serial
	// drain order; also the source the queues were split from).
	flat []*wal.Record
	// order is the first-touch order of pages, the deterministic basis for
	// worker assignment.
	order  []page.PageID
	byPage map[page.PageID][]*wal.Record
	// dealloc marks pages whose queue returns them to the free pool
	// (Free-Page, or a compensated Get-Page); the prefetcher must not
	// touch those — its transient pin could collide with the drain's
	// Pool.Deallocate.
	dealloc map[page.PageID]bool
}

func (r *Recovery) initMetrics() {
	r.metricsOnce.Do(func() {
		reg := stats.NewRegistry()
		r.restarts = reg.Counter("recovery.restarts")
		r.scanNanos = reg.Counter("recovery.scan_nanos")
		r.redoNanos = reg.Counter("recovery.redo_nanos")
		r.undoNanos = reg.Counter("recovery.undo_nanos")
		r.analyzed = reg.Counter("recovery.analyzed")
		r.redone = reg.Counter("recovery.redone")
		r.redoSkipped = reg.Counter("recovery.redo_skipped")
		r.losers = reg.Counter("recovery.losers")
		r.undone = reg.Counter("recovery.undone")
		r.prefetchHits = reg.Counter("recovery.prefetch_hits")
		r.prefetchMisses = reg.Counter("recovery.prefetch_misses")
		r.queuePages = reg.Counter("recovery.redo_queue_pages")
		r.queueMaxDepth = reg.Counter("recovery.redo_queue_max_depth")
		r.workerPages = reg.Counter("recovery.worker_pages_max")
		// One observation per redo-queue drain: the whole pass at restart,
		// one batch on a streaming replica.
		r.redoDrainHist = reg.Histogram("recovery.redo_drain")
		reg.Gauge("recovery.workers", func() int64 { return r.workersUsed.Load() })
		r.reg = reg
	})
}

// Metrics exposes the restart's counter registry (scan/redo/undo phase
// nanos, queue shape, prefetch effectiveness), for merging into the
// engine-wide registry.
func (r *Recovery) Metrics() *stats.Registry {
	r.initMetrics()
	return r.reg
}

// workers resolves the configured fan-out.
func (r *Recovery) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return shards.Workers()
}

// Run performs the full restart. register is called between redo and undo:
// it must open the trees (which installs their undo handlers on the
// transaction manager) and may return them for the caller's use.
func (r *Recovery) Run(register func() error) (*Stats, error) {
	r.initMetrics()
	r.restarts.Inc()
	workers := r.workers()
	r.workersUsed.Store(int64(workers))

	t0 := time.Now()
	a, n, plan, err := r.scan()
	r.scanNanos.Add(time.Since(t0).Nanoseconds())
	if err != nil {
		return &Stats{}, fmt.Errorf("recovery: %w", err)
	}
	st := &Stats{Analyzed: n, Losers: len(a.Losers)}
	r.analyzed.Add(int64(n))
	r.losers.Add(int64(len(a.Losers)))

	t0 = time.Now()
	err = r.redo(a, plan, st, workers)
	redoElapsed := time.Since(t0).Nanoseconds()
	r.redoNanos.Add(redoElapsed)
	r.redoDrainHist.Observe(redoElapsed)
	r.redone.Add(int64(st.Redone))
	r.redoSkipped.Add(int64(st.RedoSkipped))
	if err != nil {
		return st, fmt.Errorf("recovery: redo: %w", err)
	}

	if register != nil {
		if err := register(); err != nil {
			return st, fmt.Errorf("recovery: register: %w", err)
		}
	}

	t0 = time.Now()
	err = r.undo(a, st, workers)
	r.undoNanos.Add(time.Since(t0).Nanoseconds())
	r.undone.Add(int64(st.Undone))
	if err != nil {
		return st, fmt.Errorf("recovery: undo: %w", err)
	}

	if err := r.Log.FlushAll(); err != nil {
		return st, fmt.Errorf("recovery: final log flush: %w", err)
	}
	if err := r.Pool.FlushAll(); err != nil {
		return st, fmt.Errorf("recovery: final page flush: %w", err)
	}
	return st, nil
}

// scan is the single forward pass over the retained log. It fuses what used
// to be three scans: allocation replay (every record — the allocation
// metadata is durable only as of the last completed Sync, while page images
// flush continuously under WAL protection, so the disk's allocation state is
// rebuilt from the log directly; the head is only truncated after a
// completed Sync, so everything the metadata does not cover is still here,
// and replaying the overlap in LSN order is idempotent), ATT/DPT analysis
// (records from the checkpoint-derived start), and redo-queue routing (every
// page-modifying record, partitioned by touchedPages).
func (r *Recovery) scan() (*Analysis, int, *redoPlan, error) {
	a := &Analysis{
		Losers: make(map[page.TxnID]page.LSN),
		DPT:    make(map[page.PageID]page.LSN),
	}
	start := page.LSN(1)
	if ck := r.Log.MasterCheckpoint(); ck != 0 {
		start = ck
		rec, err := r.Log.Get(ck)
		switch {
		case err == nil:
			// The checkpoint is fuzzy: with the pipelined log, records
			// can be reserved below the checkpoint's own LSN yet land
			// after its snapshot was gathered — a Commit squeezing in
			// under the checkpoint, a page's first dirtying still in
			// flight. Scanning only from the checkpoint record would
			// miss them and undo committed transactions, so the scan
			// starts at the snapshot anchor (PrevLSN, the reservation
			// head when the snapshot began) and at or below every
			// snapshot transaction's last LSN — a stale table read can
			// trail its transaction's true last record by at most one,
			// so scanning from the stale value re-observes it.
			if rec.PrevLSN != 0 && rec.PrevLSN+1 < start {
				start = rec.PrevLSN + 1
			}
			for _, ts := range rec.ATT {
				a.Losers[ts.ID] = ts.LastLSN
				if ts.LastLSN != 0 && ts.LastLSN < start {
					start = ts.LastLSN
				}
			}
			for _, dp := range rec.DPT {
				a.DPT[dp.ID] = dp.RecLSN
			}
		case r.Log.Base() == 0:
			// The checkpoint record is unreadable but the full log
			// is still here: rebuild the ATT and DPT by scanning
			// from LSN 1 instead of silently starting empty (which
			// would miss losers whose last record predates the
			// checkpoint).
			start = 1
		default:
			// The head before the checkpoint is truncated; without
			// the checkpoint's ATT/DPT the restart cannot be
			// trusted. Fail loudly rather than lose losers.
			return nil, 0, nil, fmt.Errorf("analysis: checkpoint record %d unreadable past truncated head (base %d): %w",
				ck, r.Log.Base(), err)
		}
	}
	plan := &redoPlan{
		byPage:  make(map[page.PageID][]*wal.Record),
		dealloc: make(map[page.PageID]bool),
	}
	n := 0
	var aerr error
	r.Log.SnapshotScan(r.Log.Base()+1, func(rec *wal.Record) bool {
		// Allocation-state replay, over the whole retained log.
		switch rec.Type.Base() {
		case wal.RecGetPage:
			if rec.Type.IsCLR() {
				aerr = r.Disk.EnsureDeallocated(rec.Pg)
			} else {
				aerr = r.Disk.EnsureAllocated(rec.Pg)
			}
		case wal.RecFreePage:
			if rec.Type.IsCLR() {
				aerr = r.Disk.EnsureAllocated(rec.Pg)
			} else {
				aerr = r.Disk.EnsureDeallocated(rec.Pg)
			}
		}
		if aerr != nil {
			return false
		}
		pgs := touchedPages(rec)
		// ATT/DPT analysis from the checkpoint-derived start. (The
		// snapshot scan begins at the log head; records below start
		// only contribute allocation state and redo queueing.)
		if rec.LSN >= start {
			n++
			if rec.Txn != 0 {
				switch rec.Type {
				case wal.RecEnd:
					delete(a.Losers, rec.Txn)
				case wal.RecCommit:
					// Committed but End not yet durable: the
					// transaction wins; nothing to undo.
					delete(a.Losers, rec.Txn)
				default:
					a.Losers[rec.Txn] = rec.LSN
				}
			}
			for _, pg := range pgs {
				if _, ok := a.DPT[pg]; !ok {
					a.DPT[pg] = rec.LSN
				}
			}
		}
		// Redo routing: per-page queues in LSN order. Records below the
		// redo point (known only once the scan completes) are trimmed at
		// drain time.
		if len(pgs) > 0 {
			plan.flat = append(plan.flat, rec)
			for _, pg := range pgs {
				if _, ok := plan.byPage[pg]; !ok {
					plan.order = append(plan.order, pg)
				}
				plan.byPage[pg] = append(plan.byPage[pg], rec)
			}
			switch base, clr := rec.Type.Base(), rec.Type.IsCLR(); {
			case base == wal.RecFreePage && !clr, base == wal.RecGetPage && clr:
				plan.dealloc[rec.Pg] = true
			}
		}
		return true
	})
	if aerr != nil {
		return nil, n, nil, fmt.Errorf("allocation replay: %w", aerr)
	}
	a.RedoLSN = page.LSN(1)
	if len(a.DPT) > 0 {
		min := page.MaxLSN
		for _, l := range a.DPT {
			if l != 0 && l < min {
				min = l
			}
		}
		if min != page.MaxLSN {
			a.RedoLSN = min
		}
	} else if ck := r.Log.MasterCheckpoint(); ck != 0 {
		a.RedoLSN = ck
	}
	// Clamp to the log head: the checkpoint's DPT is logged before the
	// checkpoint's own FlushAll, so its recLSNs may predate the
	// DiscardBefore truncation point. Those pages were flushed before the
	// head was cut, so redo from just past the head is sufficient.
	if base := r.Log.Base(); a.RedoLSN <= base {
		a.RedoLSN = base + 1
	}
	return a, n, plan, nil
}

// touchedPages lists the pages whose images a record's redo modifies.
func touchedPages(rec *wal.Record) []page.PageID {
	base := rec.Type.Base()
	switch base {
	case wal.RecSplit:
		if rec.Type.IsCLR() {
			return []page.PageID{rec.Pg}
		}
		return []page.PageID{rec.Pg, rec.Pg2}
	case wal.RecParentEntryUpdate, wal.RecInternalEntryAdd, wal.RecInternalEntryUpdate,
		wal.RecInternalEntryDelete, wal.RecAddLeafEntry, wal.RecMarkLeafEntry,
		wal.RecGarbageCollection, wal.RecGetPage, wal.RecFreePage, wal.RecRootChange,
		wal.RecHeapInsert, wal.RecHeapDelete:
		return []page.PageID{rec.Pg}
	default:
		return nil
	}
}

// redo repeats history from the redo point. Redo is page-independent — a
// record applies to a page iff the pageLSN predates it, regardless of what
// happened to other pages in between — so with workers > 1 the per-page
// queues drain concurrently, each queue in LSN order. workers <= 1 replays
// the flat record sequence in global LSN order, byte-identical to the
// historical serial restart.
func (r *Recovery) redo(a *Analysis, plan *redoPlan, st *Stats, workers int) error {
	if workers <= 1 {
		for _, rec := range plan.flat {
			if rec.LSN < a.RedoLSN {
				continue
			}
			if err := r.redoRecord(rec, st); err != nil {
				return fmt.Errorf("redo of %v: %w", rec, err)
			}
		}
		return nil
	}

	// Trim each queue to the redo point and drop the emptied ones.
	type queue struct {
		pg   page.PageID
		recs []*wal.Record
	}
	queues := make([]queue, 0, len(plan.order))
	maxDepth := 0
	for _, pg := range plan.order {
		recs := plan.byPage[pg]
		i := 0
		for i < len(recs) && recs[i].LSN < a.RedoLSN {
			i++
		}
		if i == len(recs) {
			continue
		}
		queues = append(queues, queue{pg, recs[i:]})
		if d := len(recs) - i; d > maxDepth {
			maxDepth = d
		}
	}
	r.queuePages.Store(int64(len(queues)))
	r.queueMaxDepth.Store(int64(maxDepth))
	if len(queues) == 0 {
		return nil
	}
	if workers > len(queues) {
		workers = len(queues)
	}

	// DPT-driven prefetch: warm the pool with the dirty pages the drain is
	// about to fetch, on the same fan-out, skipping pages whose queue
	// deallocates them. Misses are harmless — the drain re-fetches and
	// reports errors properly.
	prefetch := make([]page.PageID, 0, len(queues))
	for _, q := range queues {
		if _, ok := a.DPT[q.pg]; ok && !plan.dealloc[q.pg] {
			prefetch = append(prefetch, q.pg)
		}
	}
	var pwg sync.WaitGroup
	var pidx atomic.Int64
	for w := 0; w < workers && w < len(prefetch); w++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for {
				i := int(pidx.Add(1)) - 1
				if i >= len(prefetch) {
					return
				}
				if f, err := r.Pool.Fetch(prefetch[i]); err == nil {
					r.Pool.Unpin(f, false, 0)
					r.prefetchHits.Inc()
				} else {
					r.prefetchMisses.Inc()
				}
			}
		}()
	}
	defer pwg.Wait()

	// Deterministic round-robin assignment over the first-touch order:
	// queue i belongs to worker i%workers. Per-worker stats merge into
	// order-independent totals.
	var wg sync.WaitGroup
	errs := make([]error, workers)
	partial := make([]Stats, workers)
	pages := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queues); i += workers {
				q := queues[i]
				for _, rec := range q.recs {
					if err := r.redoOnPage(rec, q.pg, &partial[w]); err != nil {
						errs[w] = fmt.Errorf("redo of %v on page %d: %w", rec, q.pg, err)
						return
					}
				}
				pages[w]++
			}
		}(w)
	}
	wg.Wait()
	var maxPages int64
	for w := range partial {
		st.Redone += partial[w].Redone
		st.RedoSkipped += partial[w].RedoSkipped
		if pages[w] > maxPages {
			maxPages = pages[w]
		}
	}
	r.workerPages.Store(maxPages)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// redoRecord applies one record to every page it touches, in touched-page
// order — the serial drain unit, identical to one step of the historical
// single-goroutine restart.
func (r *Recovery) redoRecord(rec *wal.Record, st *Stats) error {
	for _, pg := range touchedPages(rec) {
		if err := r.redoOnPage(rec, pg, st); err != nil {
			return err
		}
	}
	return nil
}

// redoOnPage applies one record to one of its pages. For a Split the record
// sits in both sides' queues and is applied to each independently
// (gist.Redo dispatches on the page id); the allocation-state side effects
// (Table 1: Get-Page marks the page unavailable for allocation, Free-Page
// marks it available) run only from the record's primary page so they
// happen exactly once.
func (r *Recovery) redoOnPage(rec *wal.Record, pg page.PageID, st *Stats) error {
	base := rec.Type.Base()
	clr := rec.Type.IsCLR()
	if pg == rec.Pg {
		if base == wal.RecGetPage && !clr {
			if err := r.Disk.EnsureAllocated(rec.Pg); err != nil {
				return err
			}
		}
		if base == wal.RecFreePage && !clr {
			// Apply the content flag if the page still exists, then free.
			// Count the record as redone only if it changed something: the
			// flag was stamped, or the allocation state transitioned.
			applied := false
			f, err := r.Pool.Fetch(rec.Pg)
			switch {
			case err == nil:
				f.Latch.Acquire(latch.X)
				if f.Page.LSN() < rec.LSN {
					f.Page.SetFlags(f.Page.Flags() | page.FlagDeallocated)
					f.Page.SetLSN(rec.LSN)
					applied = true
				}
				f.Latch.Release(latch.X)
				r.Pool.Unpin(f, applied, rec.LSN)
			case errors.Is(err, storage.ErrNoSuchPage):
				// Already gone from the allocation state; nothing to
				// stamp.
			default:
				// A real I/O or pool failure: fail the restart rather
				// than free a page whose image was never stamped.
				return fmt.Errorf("free-page fetch: %w", err)
			}
			switch err := r.deallocate(rec.Pg); {
			case err == nil:
				applied = true
			case !errors.Is(err, storage.ErrNoSuchPage):
				return err
			}
			if applied {
				st.Redone++
			} else {
				st.RedoSkipped++
			}
			return nil
		}
		if base == wal.RecGetPage && clr {
			// Compensated allocation: the page goes back to the free pool.
			switch err := r.deallocate(rec.Pg); {
			case err == nil:
				st.Redone++
			case errors.Is(err, storage.ErrNoSuchPage):
				st.RedoSkipped++
			default:
				return err
			}
			return nil
		}
		if base == wal.RecFreePage && clr {
			if err := r.Disk.EnsureAllocated(rec.Pg); err != nil {
				return err
			}
		}
	}

	f, err := r.Pool.Fetch(pg)
	if errors.Is(err, storage.ErrNoSuchPage) {
		// Allocation state lagged the log (meta not synced at
		// crash); adopt the page and redo onto a fresh image.
		if aerr := r.Disk.EnsureAllocated(pg); aerr != nil {
			return aerr
		}
		f, err = r.Pool.Fetch(pg)
	}
	if err != nil {
		return err
	}
	f.Latch.Acquire(latch.X)
	if f.Page.LSN() >= rec.LSN {
		f.Latch.Release(latch.X)
		r.Pool.Unpin(f, false, 0)
		st.RedoSkipped++
		return nil
	}
	switch base {
	case wal.RecHeapInsert, wal.RecHeapDelete:
		err = heap.Redo(rec, &f.Page)
	default:
		err = redoTreeOnPage(rec, &f.Page, pg)
	}
	f.Latch.Release(latch.X)
	r.Pool.Unpin(f, err == nil, rec.LSN)
	if err != nil {
		return err
	}
	st.Redone++
	return nil
}

// deallocate returns a page to the free pool, waiting out the transient
// window in which a concurrent eviction write-back holds the frame pinned
// around its I/O (possible only under parallel redo — the page's own queue
// holds no pin here, and the prefetcher skips deallocating pages). A pin
// that never drains still surfaces as the underlying error.
func (r *Recovery) deallocate(pg page.PageID) error {
	for spins := 0; ; spins++ {
		err := r.Pool.Deallocate(pg)
		if err == nil || !errors.Is(err, buffer.ErrPinned) || spins > 1<<20 {
			return err
		}
		runtime.Gosched()
	}
}

// redoTreeOnPage applies a tree record to one of its pages. For a Split the
// same record is applied separately to each side; gist.Redo dispatches on
// the page id.
func redoTreeOnPage(rec *wal.Record, p *page.Page, pg page.PageID) error {
	if !gist.TouchesPage(rec, pg) {
		return nil
	}
	return gist.Redo(rec, p, pg)
}

// undo rolls back every loser transaction through the registered undo
// handlers, exactly as a runtime abort would, writing CLRs so that a crash
// during restart resumes correctly. Losers are sorted by descending lastLSN
// (ties by id) so the undo order — and with workers > 1 the worker
// assignment — is identical on every restart from the same survivor state;
// the historical map iteration made crashfuzz repros differ run to run.
// Each loser's backchain is independent and the undo handlers run through
// the runtime latch/lock stack, so the aborts themselves can proceed
// concurrently; adoption stays serial (in sorted order) because it advances
// the manager's transaction-id high-water mark with a plain load/store.
func (r *Recovery) undo(a *Analysis, st *Stats, workers int) error {
	if len(a.Losers) == 0 {
		return nil
	}
	type loser struct {
		id      page.TxnID
		lastLSN page.LSN
	}
	losers := make([]loser, 0, len(a.Losers))
	for id, lastLSN := range a.Losers {
		losers = append(losers, loser{id, lastLSN})
	}
	sort.Slice(losers, func(i, j int) bool {
		if losers[i].lastLSN != losers[j].lastLSN {
			return losers[i].lastLSN > losers[j].lastLSN
		}
		return losers[i].id > losers[j].id
	})
	txs := make([]*txn.Txn, len(losers))
	for i, lo := range losers {
		tx, err := r.TM.AdoptLoser(lo.id, lo.lastLSN)
		if err != nil {
			return err
		}
		txs[i] = tx
	}
	if workers <= 1 || len(losers) == 1 {
		for i, tx := range txs {
			if err := tx.Abort(); err != nil {
				return fmt.Errorf("loser %d: %w", losers[i].id, err)
			}
			st.Undone++
		}
		return nil
	}
	if workers > len(losers) {
		workers = len(losers)
	}
	// Strided deterministic assignment: worker w aborts losers w, w+W, ...
	var wg sync.WaitGroup
	errs := make([]error, workers)
	counts := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(txs); i += workers {
				if err := txs[i].Abort(); err != nil {
					errs[w] = fmt.Errorf("loser %d: %w", losers[i].id, err)
					return
				}
				counts[w]++
			}
		}(w)
	}
	wg.Wait()
	for _, c := range counts {
		st.Undone += c
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint takes a fuzzy checkpoint: it logs the ATT and DPT, flushes the
// log, flushes all dirty pages, syncs the disk, and truncates the log head
// up to the earliest point a restart could still need — the minimum of the
// checkpoint itself and the first LSN of any live transaction (whose
// backchain rollback must be able to walk).
func Checkpoint(tm *txn.Manager, pool *buffer.Pool, disk storage.Manager) (page.LSN, error) {
	return CheckpointBounded(tm, pool, disk, page.MaxLSN)
}

// CheckpointBounded is Checkpoint with an external retention clamp: the log
// head never advances past clamp even when restart no longer needs the
// records. Log shipping uses this — a connected replica that has not acked
// past clamp must still be able to resume its stream after a reconnect.
func CheckpointBounded(tm *txn.Manager, pool *buffer.Pool, disk storage.Manager, clamp page.LSN) (page.LSN, error) {
	lsn, err := tm.Checkpoint(pool.DirtyPages)
	if err != nil {
		return 0, err
	}
	if err := pool.FlushAll(); err != nil {
		return 0, err
	}
	if err := disk.Sync(); err != nil {
		return 0, err
	}
	bound := lsn
	if m := tm.MinActiveFirstLSN(); m != 0 && m < bound {
		bound = m
	}
	if clamp < bound {
		bound = clamp
	}
	if _, err := tm.Log().DiscardBefore(bound); err != nil {
		return 0, err
	}
	return lsn, nil
}
