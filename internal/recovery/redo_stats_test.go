package recovery

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/storage"
	"repro/internal/wal"
)

// TestRedoRecordStatsExact pins the Redone/RedoSkipped classification on
// the allocation-state redo paths. The old accounting incremented Redone
// on Free-Page and Get-Page-CLR records even when the page no longer
// existed and nothing was applied, so restart stats overstated redo work
// exactly when a checkpoint had already bounded it.
func TestRedoRecordStatsExact(t *testing.T) {
	newRec := func() (*Recovery, *storage.MemDisk) {
		d := storage.NewMemDisk()
		return &Recovery{Pool: buffer.New(d, 8, nil), Disk: d}, d
	}
	allocPage := func(t *testing.T, r *Recovery, lsn page.LSN) page.PageID {
		t.Helper()
		f, err := r.Pool.NewPage(0)
		if err != nil {
			t.Fatal(err)
		}
		id := f.ID()
		f.Page.SetLSN(lsn)
		r.Pool.Unpin(f, true, lsn)
		if err := r.Pool.FlushPage(id); err != nil {
			t.Fatal(err)
		}
		return id
	}

	t.Run("free-page applied", func(t *testing.T) {
		r, _ := newRec()
		id := allocPage(t, r, 5)
		var st Stats
		if err := r.redoRecord(&wal.Record{Type: wal.RecFreePage, Pg: id, LSN: 9}, &st); err != nil {
			t.Fatal(err)
		}
		if st.Redone != 1 || st.RedoSkipped != 0 {
			t.Errorf("stats = %+v, want exactly {Redone:1}", st)
		}
	})

	t.Run("free-page already gone", func(t *testing.T) {
		r, _ := newRec()
		var st Stats
		if err := r.redoRecord(&wal.Record{Type: wal.RecFreePage, Pg: 77, LSN: 9}, &st); err != nil {
			t.Fatal(err)
		}
		if st.Redone != 0 || st.RedoSkipped != 1 {
			t.Errorf("stats = %+v, want exactly {RedoSkipped:1}", st)
		}
	})

	t.Run("get-page-clr applied", func(t *testing.T) {
		r, _ := newRec()
		id := allocPage(t, r, 5)
		var st Stats
		rec := &wal.Record{Type: wal.RecGetPage | wal.ClrFlag, Pg: id, LSN: 9}
		if err := r.redoRecord(rec, &st); err != nil {
			t.Fatal(err)
		}
		if st.Redone != 1 || st.RedoSkipped != 0 {
			t.Errorf("stats = %+v, want exactly {Redone:1}", st)
		}
	})

	t.Run("get-page-clr already gone", func(t *testing.T) {
		r, _ := newRec()
		var st Stats
		rec := &wal.Record{Type: wal.RecGetPage | wal.ClrFlag, Pg: 77, LSN: 9}
		if err := r.redoRecord(rec, &st); err != nil {
			t.Fatal(err)
		}
		if st.Redone != 0 || st.RedoSkipped != 1 {
			t.Errorf("stats = %+v, want exactly {RedoSkipped:1}", st)
		}
	})

	t.Run("page-lsn skip", func(t *testing.T) {
		r, _ := newRec()
		id := allocPage(t, r, 42)
		var st Stats
		rec := &wal.Record{Type: wal.RecGetPage, Pg: id, LSN: 9}
		if err := r.redoRecord(rec, &st); err != nil {
			t.Fatal(err)
		}
		if st.Redone != 0 || st.RedoSkipped != 1 {
			t.Errorf("stats = %+v, want exactly {RedoSkipped:1}", st)
		}
	})
}
