// Package strtree specializes the generalized search tree to a B-tree over
// variable-length byte-string keys with lexicographic order. Unlike the
// fixed-width integer B-tree and R-tree extensions, its bounding predicates
// grow and shrink in encoded size as keys union together, exercising the
// engine's variable-length entry paths (in-place replacement with growth,
// page compaction under BP updates).
//
// Encodings (canonical):
//
//	key:   'k' followed by the raw bytes
//	range: 'r' [u16 loLen][lo][u16 hiLen][hi]  — closed interval [lo, hi]
//
// Queries are ranges; Prefix builds the range covering all keys with a
// given prefix.
package strtree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

const (
	tagKey   = 'k'
	tagRange = 'r'
)

// EncodeKey encodes a string key. Keys may be empty and may contain any
// bytes.
func EncodeKey(k []byte) []byte {
	out := make([]byte, 1+len(k))
	out[0] = tagKey
	copy(out[1:], k)
	return out
}

// DecodeKey reverses EncodeKey.
func DecodeKey(b []byte) []byte {
	if len(b) < 1 || b[0] != tagKey {
		panic(fmt.Sprintf("strtree: not a key encoding (%d bytes)", len(b)))
	}
	return b[1:]
}

// EncodeRange encodes the closed lexicographic interval [lo, hi].
func EncodeRange(lo, hi []byte) []byte {
	out := make([]byte, 1+2+len(lo)+2+len(hi))
	out[0] = tagRange
	binary.BigEndian.PutUint16(out[1:], uint16(len(lo)))
	copy(out[3:], lo)
	off := 3 + len(lo)
	binary.BigEndian.PutUint16(out[off:], uint16(len(hi)))
	copy(out[off+2:], hi)
	return out
}

// DecodeRange reverses EncodeRange.
func DecodeRange(b []byte) (lo, hi []byte) {
	if len(b) < 5 || b[0] != tagRange {
		panic(fmt.Sprintf("strtree: not a range encoding (%d bytes)", len(b)))
	}
	n := int(binary.BigEndian.Uint16(b[1:]))
	lo = b[3 : 3+n]
	off := 3 + n
	m := int(binary.BigEndian.Uint16(b[off:]))
	hi = b[off+2 : off+2+m]
	return lo, hi
}

// Prefix returns the query range matching every key that starts with p.
// The upper bound is p followed by 0xFF padding — sufficient for keys up to
// 64 bytes beyond the prefix, which covers this package's intended use;
// longer keys sort above the bound and would be missed.
func Prefix(p []byte) []byte {
	hi := make([]byte, len(p)+64)
	copy(hi, p)
	for i := len(p); i < len(hi); i++ {
		hi[i] = 0xFF
	}
	return EncodeRange(p, hi)
}

// asRange interprets either encoding as an interval.
func asRange(b []byte) (lo, hi []byte) {
	switch {
	case len(b) >= 1 && b[0] == tagKey:
		k := b[1:]
		return k, k
	case len(b) >= 5 && b[0] == tagRange:
		return DecodeRange(b)
	default:
		panic(fmt.Sprintf("strtree: bad predicate (%d bytes)", len(b)))
	}
}

// Ops implements gist.Ops for lexicographic string B-trees.
type Ops struct{}

// Consistent reports interval intersection under lexicographic order.
func (Ops) Consistent(pred, query []byte) bool {
	plo, phi := asRange(pred)
	qlo, qhi := asRange(query)
	return bytes.Compare(plo, qhi) <= 0 && bytes.Compare(qlo, phi) <= 0
}

// Union returns the smallest interval covering both inputs, canonically
// encoded as a range.
func (Ops) Union(a, b []byte) []byte {
	if a == nil {
		lo, hi := asRange(b)
		return EncodeRange(lo, hi)
	}
	if b == nil {
		lo, hi := asRange(a)
		return EncodeRange(lo, hi)
	}
	alo, ahi := asRange(a)
	blo, bhi := asRange(b)
	if bytes.Compare(blo, alo) < 0 {
		alo = blo
	}
	if bytes.Compare(bhi, ahi) > 0 {
		ahi = bhi
	}
	return EncodeRange(alo, ahi)
}

// Penalty orders insertion targets: zero when the key is inside the
// interval; otherwise the byte distance at the first divergence from the
// nearer bound, scaled so earlier divergence costs more.
func (Ops) Penalty(bp, key []byte) float64 {
	lo, hi := asRange(bp)
	k, _ := asRange(key)
	switch {
	case bytes.Compare(k, lo) < 0:
		return divergenceCost(k, lo)
	case bytes.Compare(k, hi) > 0:
		return divergenceCost(hi, k)
	default:
		return 0
	}
}

// divergenceCost scores how far apart two ordered byte strings are: the
// difference at the first differing byte, weighted by its position.
func divergenceCost(a, b []byte) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d := float64(b[i]) - float64(a[i])
			if d < 0 {
				d = -d
			}
			return d / float64(i+1)
		}
	}
	return float64(len(b)-len(a)) / float64(n+1)
}

// PickSplit sorts by lower bound and keeps the lower half.
func (Ops) PickSplit(preds [][]byte) []int {
	idx := make([]int, len(preds))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		alo, ahi := asRange(preds[idx[a]])
		blo, bhi := asRange(preds[idx[b]])
		if c := bytes.Compare(alo, blo); c != 0 {
			return c < 0
		}
		return bytes.Compare(ahi, bhi) < 0
	})
	return idx[:(len(idx)+1)/2]
}

// KeyQuery returns the point query [k, k].
func (Ops) KeyQuery(key []byte) []byte {
	k := DecodeKey(key)
	return EncodeRange(k, k)
}
