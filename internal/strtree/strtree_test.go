package strtree

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	for _, k := range [][]byte{nil, []byte(""), []byte("a"), []byte("hello world"), {0, 0xFF, 1}} {
		enc := EncodeKey(k)
		got := DecodeKey(enc)
		if !bytes.Equal(got, k) {
			t.Errorf("round trip %q = %q", k, got)
		}
	}
}

func TestRangeRoundTrip(t *testing.T) {
	lo, hi := DecodeRange(EncodeRange([]byte("abc"), []byte("xyz")))
	if string(lo) != "abc" || string(hi) != "xyz" {
		t.Errorf("got [%q,%q]", lo, hi)
	}
	lo, hi = DecodeRange(EncodeRange(nil, nil))
	if len(lo) != 0 || len(hi) != 0 {
		t.Errorf("empty range: [%q,%q]", lo, hi)
	}
}

func TestDecodePanicsOnGarbage(t *testing.T) {
	for _, f := range []func(){
		func() { DecodeKey([]byte{tagRange, 1}) },
		func() { DecodeRange([]byte{tagKey}) },
		func() { asRange([]byte{9, 9, 9}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConsistent(t *testing.T) {
	var ops Ops
	r := EncodeRange([]byte("carrot"), []byte("melon"))
	cases := []struct {
		key  string
		want bool
	}{
		{"carrot", true},
		{"grape", true},
		{"melon", true},
		{"apple", false},
		{"zebra", false},
		{"melonade", false}, // sorts after "melon"
	}
	for _, c := range cases {
		if got := ops.Consistent(r, EncodeKey([]byte(c.key))); got != c.want {
			t.Errorf("Consistent(%q) = %v, want %v", c.key, got, c.want)
		}
	}
	// Range query vs key predicate.
	if !ops.Consistent(EncodeKey([]byte("fig")), EncodeRange([]byte("e"), []byte("g"))) {
		t.Error("fig should match [e,g]")
	}
}

func TestUnionCanonicalAndCovering(t *testing.T) {
	var ops Ops
	u := ops.Union(EncodeKey([]byte("pear")), EncodeKey([]byte("apple")))
	lo, hi := DecodeRange(u)
	if string(lo) != "apple" || string(hi) != "pear" {
		t.Errorf("union = [%q,%q]", lo, hi)
	}
	if got := ops.Union(nil, EncodeKey([]byte("kiwi"))); !bytes.Equal(got, EncodeRange([]byte("kiwi"), []byte("kiwi"))) {
		t.Error("union(nil, key) not canonical")
	}
	big := EncodeRange([]byte("a"), []byte("z"))
	if !bytes.Equal(ops.Union(big, EncodeKey([]byte("m"))), big) {
		t.Error("union with contained key changed predicate")
	}
}

func TestQuickUnionCovers(t *testing.T) {
	var ops Ops
	f := func(a, b []byte) bool {
		u := ops.Union(EncodeKey(a), EncodeKey(b))
		return ops.Consistent(u, EncodeKey(a)) && ops.Consistent(u, EncodeKey(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPenaltyOrdering(t *testing.T) {
	var ops Ops
	bp := EncodeRange([]byte("h"), []byte("m"))
	if p := ops.Penalty(bp, EncodeKey([]byte("j"))); p != 0 {
		t.Errorf("inside penalty = %v", p)
	}
	near := ops.Penalty(bp, EncodeKey([]byte("n")))
	far := ops.Penalty(bp, EncodeKey([]byte("z")))
	if near <= 0 || far <= near {
		t.Errorf("penalties not ordered: near=%v far=%v", near, far)
	}
}

func TestPickSplitOrders(t *testing.T) {
	var ops Ops
	words := []string{"melon", "apple", "kiwi", "banana", "pear", "fig"}
	preds := make([][]byte, len(words))
	for i, w := range words {
		preds[i] = EncodeKey([]byte(w))
	}
	stay := ops.PickSplit(preds)
	if len(stay) != 3 {
		t.Fatalf("stay = %d", len(stay))
	}
	staySet := map[string]bool{}
	for _, i := range stay {
		staySet[words[i]] = true
	}
	// Lower half lexicographically: apple, banana, fig.
	for _, w := range []string{"apple", "banana", "fig"} {
		if !staySet[w] {
			t.Errorf("%q should stay, got %v", w, staySet)
		}
	}
}

func TestPrefixQuery(t *testing.T) {
	var ops Ops
	q := Prefix([]byte("app"))
	for _, c := range []struct {
		key  string
		want bool
	}{
		{"app", true},
		{"apple", true},
		{"application", true},
		{"aps", false},
		{"ap", false},
		{"banana", false},
	} {
		if got := ops.Consistent(EncodeKey([]byte(c.key)), q); got != c.want {
			t.Errorf("prefix(app) vs %q = %v, want %v", c.key, got, c.want)
		}
	}
}

func TestKeyQuery(t *testing.T) {
	q := Ops{}.KeyQuery(EncodeKey([]byte("solo")))
	lo, hi := DecodeRange(q)
	if string(lo) != "solo" || string(hi) != "solo" {
		t.Errorf("KeyQuery = [%q,%q]", lo, hi)
	}
}
