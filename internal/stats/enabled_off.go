//go:build statsoff

package stats

// Enabled is false in the -tags statsoff build: histogram observations and
// flight-recorder traces compile to nothing, giving the uninstrumented
// baseline the CI overhead gate compares against.
const Enabled = false
