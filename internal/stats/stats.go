// Package stats is a small lock-free metrics registry shared by the engine's
// subsystems. Each manager (buffer pool, lock manager, predicate manager,
// WAL, transaction manager, disk managers) creates its counters in its own
// Registry at construction time and keeps the returned *Counter pointers in
// struct fields, so the hot-path increment is a single atomic add with no
// map lookup and no mutex. Snapshots merge any number of registries into one
// uniform map keyed by dotted metric names ("buffer.hits", "lock.waits"),
// which is what cmd/gistbench and the facade's Stats read.
//
// Registration (Counter, Gauge) takes a mutex but happens only at
// construction; lookups and snapshots read a copy-on-write map and never
// block an increment.
package stats

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a cumulative atomic counter. The struct is padded to a cache
// line so that hot counters created together do not false-share.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Inc64 increments the counter by one and returns the new value, for
// callers that derive sampling decisions from a count they bump anyway.
func (c *Counter) Inc64() int64 { return c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store sets the counter (used by ResetStats-style test helpers).
func (c *Counter) Store(n int64) { c.v.Store(n) }

// GaugeFunc computes a point-in-time value at snapshot time.
type GaugeFunc func() int64

// Registry is a named set of counters, gauges and histograms.
type Registry struct {
	mu       sync.Mutex // guards registration only
	counters atomic.Pointer[map[string]*Counter]
	gauges   atomic.Pointer[map[string]GaugeFunc]
	hists    atomic.Pointer[map[string]*Histogram]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	c := make(map[string]*Counter)
	g := make(map[string]GaugeFunc)
	h := make(map[string]*Histogram)
	r.counters.Store(&c)
	r.gauges.Store(&g)
	r.hists.Store(&h)
	return r
}

// Counter returns the counter registered under name, creating it if needed.
// The returned pointer is stable for the life of the registry; callers cache
// it in a struct field and increment it lock-free.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := (*r.counters.Load())[name]; ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.counters.Load()
	if c, ok := old[name]; ok {
		return c
	}
	next := make(map[string]*Counter, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	c := &Counter{}
	next[name] = c
	r.counters.Store(&next)
	return c
}

// Histogram returns the histogram registered under name, creating it if
// needed. Like Counter, the returned pointer is stable; callers cache it in
// a struct field and Observe lock-free. Snapshots surface the histogram as
// derived keys: name_count, name_p50, name_p95, name_p99, name_max.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := (*r.hists.Load())[name]; ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.hists.Load()
	if h, ok := old[name]; ok {
		return h
	}
	next := make(map[string]*Histogram, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	h := &Histogram{}
	next[name] = h
	r.hists.Store(&next)
	return h
}

// Gauge registers fn to be evaluated at snapshot time under name.
func (r *Registry) Gauge(name string, fn GaugeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.gauges.Load()
	next := make(map[string]GaugeFunc, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = fn
	r.gauges.Store(&next)
}

// Value returns the current value of the named counter or gauge, or 0 if
// nothing is registered under name.
func (r *Registry) Value(name string) int64 {
	if c, ok := (*r.counters.Load())[name]; ok {
		return c.Load()
	}
	if g, ok := (*r.gauges.Load())[name]; ok {
		return g()
	}
	return 0
}

// CollectInto merges the registry's current values into out.
func (r *Registry) CollectInto(out map[string]int64) {
	for name, c := range *r.counters.Load() {
		out[name] = c.Load()
	}
	for name, g := range *r.gauges.Load() {
		out[name] = g()
	}
	for name, h := range *r.hists.Load() {
		h.collectInto(name, out)
	}
}

// Reset zeroes every counter and histogram in the registry (gauges are
// computed, so there is nothing to reset). It is the one call test and
// bench harnesses should use between measurement cells: resetting counters
// alone (Counter.Store) leaves stale latency distributions behind.
func (r *Registry) Reset() {
	for _, c := range *r.counters.Load() {
		c.Store(0)
	}
	for _, h := range *r.hists.Load() {
		h.Reset()
	}
}

// Snapshot returns the registry's current values as a fresh map.
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	r.CollectInto(out)
	return out
}

// Merged snapshots several registries into one uniform map. Later registries
// win on (unexpected) name collisions.
func Merged(regs ...*Registry) map[string]int64 {
	out := make(map[string]int64)
	for _, r := range regs {
		if r != nil {
			r.CollectInto(out)
		}
	}
	return out
}

// Names returns the sorted metric names of a snapshot, for stable printing.
func Names(snapshot map[string]int64) []string {
	names := make([]string, 0, len(snapshot))
	for n := range snapshot {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
