//go:build !statsoff

package stats

// Enabled gates the latency instrumentation (histogram observations, flight-
// recorder traces, and the clock reads that feed them) at compile time. The
// default build has it on; building with -tags statsoff turns every Observe
// into a no-op and lets callers dead-code-eliminate their timing blocks, which
// is what the CI overhead gate diffs the instrumented build against.
const Enabled = true
