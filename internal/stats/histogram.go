package stats

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of fixed log-scale buckets in a Histogram.
// Bucket i holds observations whose value has bit length i — i.e. values in
// [2^(i-1), 2^i) — with bucket 0 holding exactly the value 0. 64 buckets
// cover the full non-negative int64 range, so nanosecond latencies from
// sub-microsecond to centuries land without configuration.
const HistBuckets = 64

// histShards spreads each bucket's counter over independent cache lines.
// Concurrent observers of similar values land in the same bucket, and a
// single shared counter line would ping-pong between cores on the hottest
// path (every parallel search observes the same ~tens-of-µs bucket); the
// value's low bits — noise at nanosecond granularity — pick the shard.
const histShards = 4

// Histogram is a lock-free fixed-bucket log-scale histogram. Observe is a
// single atomic add on one shard of the bucket counter (buckets are
// cache-line padded like Counter and sharded so hot histograms neither
// false-share nor true-share) plus a rarely-taken CAS to maintain the exact
// maximum. Quantiles are read from the bucket counts and reported as the
// bucket's upper bound (clamped to the observed max), so a reported p99 is
// within 2x of the true p99 — the right fidelity for "where did the time
// go" at zero hot-path cost.
//
// The zero value is ready to use.
type Histogram struct {
	buckets [HistBuckets][histShards]Counter
	max     atomic.Int64
	_       [56]byte
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	i := bits.Len64(uint64(v))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// BucketUpper is the largest value bucket i can hold (0 for bucket 0,
// 2^i - 1 otherwise). Exported for the boundary-exactness tests.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value. Negative values clamp to 0. In the statsoff
// build this compiles to nothing.
func (h *Histogram) Observe(v int64) {
	if !Enabled {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)][uint64(v)%histShards].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// bucketCount returns the total observations in bucket i across shards.
func (h *Histogram) bucketCount(i int) int64 {
	var n int64
	for s := range h.buckets[i] {
		n += h.buckets[i][s].Load()
	}
	return n
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.bucketCount(i)
	}
	return n
}

// Max returns the exact maximum observed value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// observations: the upper edge of the bucket containing the rank-q
// observation, clamped to the exact observed maximum. Returns 0 when the
// histogram is empty. The snapshot is not atomic with respect to concurrent
// Observe calls; each bucket count is individually consistent.
func (h *Histogram) Quantile(q float64) int64 {
	var counts [HistBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.bucketCount(i)
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i := range counts {
		cum += counts[i]
		if cum > rank {
			upper := BucketUpper(i)
			if m := h.max.Load(); upper > m {
				upper = m
			}
			return upper
		}
	}
	return h.max.Load()
}

// Reset zeroes every bucket and the maximum. Not atomic with respect to
// concurrent Observe calls — reset is a test/bench-harness operation run at
// quiesce points, exactly like Counter.Store(0).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		for s := range h.buckets[i] {
			h.buckets[i][s].Store(0)
		}
	}
	h.max.Store(0)
}

// collectInto merges the histogram's derived values into out under the
// given base name. The derived keys are emitted unconditionally (zeros when
// empty) so that monitoring and the bench artifacts always see the full key
// set.
func (h *Histogram) collectInto(name string, out map[string]int64) {
	out[name+"_count"] = h.Count()
	out[name+"_p50"] = h.Quantile(0.50)
	out[name+"_p95"] = h.Quantile(0.95)
	out[name+"_p99"] = h.Quantile(0.99)
	out[name+"_max"] = h.Max()
}
