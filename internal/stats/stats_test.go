package stats

import (
	"sync"
	"testing"
)

func TestCounterRegistration(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.hits")
	c.Add(3)
	c.Inc()
	if got := r.Value("x.hits"); got != 4 {
		t.Errorf("Value = %d, want 4", got)
	}
	if r.Counter("x.hits") != c {
		t.Error("re-registration returned a different counter")
	}
	c.Store(0)
	if got := r.Value("x.hits"); got != 0 {
		t.Errorf("after Store(0): %d", got)
	}
	if got := r.Value("missing"); got != 0 {
		t.Errorf("missing metric = %d, want 0", got)
	}
}

func TestGaugeAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	v := int64(7)
	r.Gauge("g", func() int64 { return v })
	snap := r.Snapshot()
	if snap["a"] != 1 || snap["g"] != 7 {
		t.Errorf("snapshot = %v", snap)
	}
	v = 9
	if got := r.Value("g"); got != 9 {
		t.Errorf("gauge re-read = %d, want 9", got)
	}
}

func TestMergedAndNames(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("one").Add(1)
	b.Counter("two").Add(2)
	m := Merged(a, nil, b)
	if m["one"] != 1 || m["two"] != 2 || len(m) != 2 {
		t.Errorf("merged = %v", m)
	}
	names := Names(m)
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Errorf("names = %v", names)
	}
}

func TestConcurrentRegistrationAndIncrement(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"shared", "a", "b", "c"}
			for i := 0; i < 1000; i++ {
				r.Counter(names[i%len(names)]).Inc()
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, v := range snap {
		total += v
	}
	if total != 8*1000 {
		t.Errorf("total increments = %d, want 8000 (%v)", total, snap)
	}
}
