package stats

import (
	"sync"
	"testing"
)

// TestBucketBoundaries pins the log2 bucket layout exactly: value v lands in
// the bucket whose index is v's bit length, bucket upper edges are 2^i - 1,
// and each boundary value is the last member of its bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21}, {1<<21 - 1, 21},
		{int64(^uint64(0) >> 1), 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		if upper := BucketUpper(bucketOf(c.v)); c.v > upper {
			t.Errorf("value %d exceeds its bucket upper %d", c.v, upper)
		}
	}
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", BucketUpper(0))
	}
	for i := 1; i < 63; i++ {
		want := int64(1)<<uint(i) - 1
		if got := BucketUpper(i); got != want {
			t.Errorf("BucketUpper(%d) = %d, want %d", i, got, want)
		}
		// The boundary value 2^i belongs to the NEXT bucket.
		if got := bucketOf(want + 1); got != i+1 {
			t.Errorf("bucketOf(%d) = %d, want %d", want+1, got, i+1)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	requireEnabled(t)
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 100 observations of 10 (bucket 4, upper 15) and 1 of 1000 (bucket 10,
	// upper 1023): p50 reports bucket 4's upper bound, p99+ climbs to the
	// outlier, and the max clamp keeps the report exact at the top.
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	h.Observe(1000)
	if got := h.Count(); got != 101 {
		t.Fatalf("Count = %d, want 101", got)
	}
	if got := h.Max(); got != 1000 {
		t.Fatalf("Max = %d, want 1000", got)
	}
	if got := h.Quantile(0.50); got != 15 {
		t.Errorf("p50 = %d, want 15 (bucket upper of 10)", got)
	}
	if got := h.Quantile(0.995); got != 1000 {
		t.Errorf("p99.5 = %d, want 1000 (upper clamped to exact max)", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
	if got := h.Quantile(0); got != 15 {
		t.Errorf("p0 = %d, want 15", got)
	}

	// Negative observations clamp to bucket 0.
	var neg Histogram
	neg.Observe(-5)
	if got := neg.Quantile(0.5); got != 0 {
		t.Errorf("negative observation: p50 = %d, want 0", got)
	}
}

func TestHistogramReset(t *testing.T) {
	requireEnabled(t)
	var h Histogram
	h.Observe(42)
	h.Observe(7)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("Reset left state behind: count=%d max=%d", h.Count(), h.Max())
	}
	h.Observe(3)
	if h.Count() != 1 || h.Max() != 3 {
		t.Fatal("histogram unusable after Reset")
	}
}

// TestRegistryReset covers the satellite fix: Registry.Reset must zero both
// counters and histograms, where per-counter Store(0) resets miss the
// latency distributions.
func TestRegistryReset(t *testing.T) {
	requireEnabled(t)
	r := NewRegistry()
	c := r.Counter("x.count")
	h := r.Histogram("x.lat")
	c.Add(5)
	h.Observe(100)
	r.Reset()
	snap := r.Snapshot()
	for name, v := range snap {
		if v != 0 {
			t.Errorf("after Reset, %s = %d, want 0", name, v)
		}
	}
	if len(snap) == 0 {
		t.Fatal("snapshot lost its keys after Reset")
	}
}

// TestHistogramSnapshotKeys pins the derived-key scheme the bench artifacts
// and the CI gate grep for.
func TestHistogramSnapshotKeys(t *testing.T) {
	requireEnabled(t)
	r := NewRegistry()
	r.Histogram("gist.search").Observe(100)
	snap := r.Snapshot()
	for _, k := range []string{
		"gist.search_count", "gist.search_p50", "gist.search_p95",
		"gist.search_p99", "gist.search_max",
	} {
		if _, ok := snap[k]; !ok {
			t.Errorf("snapshot missing derived key %s", k)
		}
	}
	if snap["gist.search_count"] != 1 {
		t.Errorf("count = %d, want 1", snap["gist.search_count"])
	}
	if snap["gist.search_max"] != 100 {
		t.Errorf("max = %d, want 100", snap["gist.search_max"])
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines against
// concurrent Quantile/Snapshot readers and a Reset, then verifies the final
// totals. Run under -race this is the lock-freedom proof.
func TestHistogramConcurrent(t *testing.T) {
	requireEnabled(t)
	r := NewRegistry()
	h := r.Histogram("c.lat")
	const (
		writers = 8
		perG    = 10000
	)
	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() { // concurrent snapshot reader
		defer readerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Snapshot()
			_ = h.Quantile(0.99)
		}
	}()
	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			for i := 0; i < perG; i++ {
				h.Observe(seed * int64(i%37))
			}
		}(int64(g + 1))
	}
	writersWG.Wait()
	close(stop)
	readerDone.Wait()
	if got := h.Count(); got != writers*perG {
		t.Fatalf("Count = %d, want %d", got, writers*perG)
	}
}
