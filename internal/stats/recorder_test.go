package stats

import (
	"sync"
	"testing"
	"time"
)

func trace(op string, i int, d time.Duration) *OpTrace {
	return &OpTrace{Op: op, Txn: uint64(i), Duration: d.Nanoseconds()}
}

// requireEnabled skips tests that depend on instrumentation being compiled
// in, so `go test -tags statsoff` stays green.
func requireEnabled(t *testing.T) {
	t.Helper()
	if !Enabled {
		t.Skip("statsoff build: instrumentation compiled out")
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(trace("x", 1, time.Millisecond))
	if got := r.Recent(); got != nil {
		t.Errorf("nil recorder Recent = %v, want nil", got)
	}
	if got := r.Slow(); got != nil {
		t.Errorf("nil recorder Slow = %v, want nil", got)
	}
	if got := r.Threshold(); got != 0 {
		t.Errorf("nil recorder Threshold = %v, want 0", got)
	}
}

func TestRecorderDefaults(t *testing.T) {
	requireEnabled(t)
	r := NewRecorder(0, 0)
	if len(r.slots) != DefaultRecentOps {
		t.Errorf("default ring size = %d, want %d", len(r.slots), DefaultRecentOps)
	}
	if r.Threshold() != 0 {
		t.Errorf("Threshold = %v, want 0", r.Threshold())
	}
	// With threshold 0 nothing pins, however slow the op.
	r.Record(trace("x", 1, time.Hour))
	if got := r.Slow(); len(got) != 0 {
		t.Errorf("threshold 0 pinned %d traces, want 0", len(got))
	}
}

// TestRecorderOverwriteOrder fills a 4-slot ring with 10 traces and checks
// that exactly the last 4 survive, oldest first.
func TestRecorderOverwriteOrder(t *testing.T) {
	requireEnabled(t)
	r := NewRecorder(4, 0)
	for i := 0; i < 10; i++ {
		r.Record(trace("op", i, time.Duration(i)))
	}
	got := r.Recent()
	if len(got) != 4 {
		t.Fatalf("Recent returned %d traces, want 4", len(got))
	}
	for k, tr := range got {
		if want := uint64(6 + k); tr.Txn != want {
			t.Errorf("Recent[%d].Txn = %d, want %d", k, tr.Txn, want)
		}
	}
}

func TestRecorderPartialRing(t *testing.T) {
	requireEnabled(t)
	r := NewRecorder(8, 0)
	r.Record(trace("a", 1, 1))
	r.Record(trace("b", 2, 2))
	got := r.Recent()
	if len(got) != 2 || got[0].Op != "a" || got[1].Op != "b" {
		t.Fatalf("partial ring Recent = %+v, want [a b]", got)
	}
}

// TestRecorderSlowPinning is deterministic because the threshold compares the
// caller-supplied Duration — no clock is involved.
func TestRecorderSlowPinning(t *testing.T) {
	requireEnabled(t)
	r := NewRecorder(4, 10*time.Millisecond)
	durations := []time.Duration{
		1 * time.Millisecond,  // fast
		10 * time.Millisecond, // exactly at threshold: pinned (>=)
		3 * time.Millisecond,  // fast
		25 * time.Millisecond, // slow
		2 * time.Millisecond,  // fast
	}
	for i, d := range durations {
		r.Record(trace("op", i, d))
	}
	slow := r.Slow()
	if len(slow) != 2 {
		t.Fatalf("Slow returned %d traces, want 2: %+v", len(slow), slow)
	}
	if slow[0].Txn != 1 || slow[1].Txn != 3 {
		t.Errorf("Slow order = [%d %d], want [1 3]", slow[0].Txn, slow[1].Txn)
	}
	// The recent ring holds the last 4 regardless of speed.
	if got := r.Recent(); len(got) != 4 || got[0].Txn != 1 {
		t.Errorf("Recent = %+v, want txns 1..4", got)
	}
}

// TestRecorderSlowSurvivesFastBurst is the reason the slow ring exists: a
// stall's evidence must outlive an arbitrarily long burst of fast ops.
func TestRecorderSlowSurvivesFastBurst(t *testing.T) {
	requireEnabled(t)
	r := NewRecorder(4, 10*time.Millisecond)
	r.Record(trace("stall", 999, time.Second))
	for i := 0; i < 1000; i++ {
		r.Record(trace("fast", i, time.Microsecond))
	}
	if got := r.Recent(); len(got) != 4 || got[0].Op != "fast" {
		t.Fatalf("Recent should hold only the burst, got %+v", got)
	}
	slow := r.Slow()
	if len(slow) != 1 || slow[0].Txn != 999 {
		t.Fatalf("stall evicted from slow ring: %+v", slow)
	}
}

// TestRecorderConcurrent runs Record against Recent/Slow readers under -race
// and checks that every drained trace is internally consistent (Txn encodes
// the Duration, so a torn trace would mismatch).
func TestRecorderConcurrent(t *testing.T) {
	requireEnabled(t)
	r := NewRecorder(32, 500)
	const (
		writers = 4
		perG    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range r.Recent() {
				if tr.Duration != int64(tr.Txn) {
					t.Errorf("torn trace: txn=%d duration=%d", tr.Txn, tr.Duration)
					return
				}
			}
			_ = r.Slow()
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d := int64(base*perG + i)
				r.Record(&OpTrace{Op: "w", Txn: uint64(d), Duration: d})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := len(r.Recent()); got != 32 {
		t.Fatalf("final Recent size = %d, want 32", got)
	}
}

func TestRecorderRegisteredSizes(t *testing.T) {
	requireEnabled(t)
	for _, size := range []int{1, 3, 256} {
		r := NewRecorder(size, 0)
		for i := 0; i < size*2+1; i++ {
			r.Record(trace("s", i, 0))
		}
		if got := len(r.Recent()); got != size {
			t.Errorf("size %d: Recent = %d traces", size, got)
		}
	}
}

func TestRecorderSlowOnlyOverThreshold(t *testing.T) {
	requireEnabled(t)
	r := NewRecorder(2, 50*time.Millisecond)
	r.Record(&OpTrace{Op: "search", Duration: int64(2 * time.Millisecond)})
	r.Record(&OpTrace{Op: "insert", Duration: int64(80 * time.Millisecond)})
	slow := r.Slow()
	if len(slow) != 1 || slow[0].Op != "insert" {
		t.Fatalf("Slow = %+v, want only the 80ms insert", slow)
	}
}
