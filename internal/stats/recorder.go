package stats

import (
	"sync/atomic"
	"time"
)

// OpTrace is one operation's flight-recorder entry: what the operation was,
// how long it took, and where inside it the time was spent waiting. A trace
// is immutable once recorded; the recorder stores pointers, so snapshots
// are cheap copies.
type OpTrace struct {
	// Op is the operation kind ("search", "insert", "delete", "cursor",
	// "commit", ...).
	Op string
	// Txn is the owning transaction's id (0 when none).
	Txn uint64
	// Start is the operation's wall-clock start, in Unix nanoseconds.
	Start int64
	// Duration is the operation's total latency in nanoseconds.
	Duration int64

	// Per-phase waits, in nanoseconds. Each brackets only the blocking
	// path of its phase: an uncontended latch or a buffer hit contributes
	// zero without reading the clock.
	LatchWait int64 // blocked in node-latch acquisition (S or X)
	LockWait  int64 // blocked in the lock manager (records, predicates, txn waits)
	BufLoad   int64 // buffer-pool misses: disk reads + parks on in-flight loads
	FlushWait int64 // commit only: append-to-durable group-commit wait

	// Traversal shape.
	NodeVisits   int32 // pages fetched by the operation
	OptRestarts  int32 // optimistic-read validation failures
	OptFallbacks int32 // optimistic visits that fell back to the S latch
}

// Default ring sizes for NewRecorder(0, ...).
const (
	DefaultRecentOps = 256
	defaultSlowOps   = 64
)

// Recorder is the always-on op flight recorder: a fixed-size lock-free ring
// of the most recent operation traces, plus a second ring pinning traces
// whose duration crossed a slow-op threshold (so one burst of fast
// operations cannot evict the evidence of a stall). Record costs one atomic
// ticket increment and one pointer store; memory is bounded by the two ring
// sizes times the size of an OpTrace.
type Recorder struct {
	// The read-mostly fields (slice headers, threshold) live apart from the
	// ticket counters: every Record reads the slot headers, and a ticket
	// increment sharing their cache line would force a miss on every one of
	// those reads across cores.
	slots     []atomic.Pointer[OpTrace]
	slow      []atomic.Pointer[OpTrace]
	threshold int64 // nanoseconds; 0 disables the slow ring
	_         [64]byte
	next      atomic.Uint64
	_         [56]byte
	slowNext  atomic.Uint64
	_         [56]byte
}

// NewRecorder builds a recorder keeping the last size traces (0 = the
// DefaultRecentOps). slowThreshold, when positive, additionally pins every
// trace at least that slow into a separate ring.
func NewRecorder(size int, slowThreshold time.Duration) *Recorder {
	if size <= 0 {
		size = DefaultRecentOps
	}
	return &Recorder{
		slots:     make([]atomic.Pointer[OpTrace], size),
		slow:      make([]atomic.Pointer[OpTrace], defaultSlowOps),
		threshold: slowThreshold.Nanoseconds(),
	}
}

// Threshold returns the slow-op pin threshold (0 = disabled).
func (r *Recorder) Threshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.threshold)
}

// Record stores one finished operation's trace. The trace must not be
// mutated afterwards. Safe for concurrent use; a nil recorder drops the
// trace.
func (r *Recorder) Record(t *OpTrace) {
	if r == nil || !Enabled {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
	if r.threshold > 0 && t.Duration >= r.threshold {
		j := r.slowNext.Add(1) - 1
		r.slow[j%uint64(len(r.slow))].Store(t)
	}
}

// Recent returns the retained traces, oldest first. The result is a copy;
// concurrent Record calls may overwrite slots mid-read, in which case a
// newer trace appears in an older position — each individual trace is
// always internally consistent.
func (r *Recorder) Recent() []OpTrace {
	if r == nil {
		return nil
	}
	return drainRing(r.slots, r.next.Load())
}

// Slow returns the pinned over-threshold traces, oldest first.
func (r *Recorder) Slow() []OpTrace {
	if r == nil {
		return nil
	}
	return drainRing(r.slow, r.slowNext.Load())
}

// drainRing copies the ring's occupied slots in write order.
func drainRing(slots []atomic.Pointer[OpTrace], next uint64) []OpTrace {
	n := uint64(len(slots))
	start := uint64(0)
	if next > n {
		start = next - n
	}
	out := make([]OpTrace, 0, next-start)
	for i := start; i < next; i++ {
		if t := slots[i%n].Load(); t != nil {
			out = append(out, *t)
		}
	}
	return out
}
