package gist_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/gist"
	"repro/internal/lock"
	"repro/internal/page"
)

func TestConcurrentInsertersDisjointRanges(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 8})
	const workers, per = 8, 80
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := int64(w*10000 + i)
				tx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rid, err := e.heap.Insert(tx, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Error(err)
					return
				}
				if err := e.tree.Insert(tx, btree.EncodeKey(k), rid); err != nil {
					t.Errorf("insert %d: %v", k, err)
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				e.tree.TxnFinished(tx.ID())
			}
		}(w)
	}
	wg.Wait()
	rep := e.checkTree()
	if rep.Entries != workers*per {
		t.Fatalf("entries = %d, want %d", rep.Entries, workers*per)
	}
	tx := e.begin()
	defer tx.Commit()
	for w := 0; w < workers; w++ {
		got := e.search(tx, int64(w*10000), int64(w*10000+per-1))
		if len(got) != per {
			t.Errorf("worker %d range: %d entries, want %d", w, len(got), per)
		}
	}
}

func TestConcurrentInsertAndScanLinearizable(t *testing.T) {
	// Writers publish keys only after commit; every scan must observe at
	// least the keys published before it started (it may see more).
	e := newEnv(t, gist.Config{MaxEntries: 8})
	var published sync.Map // key -> true
	var stop atomic.Bool
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				k := int64(w*1000 + i)
				tx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rid, _ := e.heap.Insert(tx, []byte("r"))
				if err := e.tree.Insert(tx, btree.EncodeKey(k), rid); err != nil {
					t.Errorf("insert %d: %v", k, err)
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				e.tree.TxnFinished(tx.ID())
				published.Store(k, true)
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var expect []int64
				published.Range(func(k, _ any) bool {
					expect = append(expect, k.(int64))
					return true
				})
				tx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rs, err := e.tree.Search(tx, btree.EncodeRange(0, 1<<20), gist.ReadCommitted)
				if err != nil {
					t.Errorf("scan: %v", err)
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					return
				}
				tx.Commit()
				e.tree.TxnFinished(tx.ID())
				got := make(map[int64]bool, len(rs))
				for _, r := range rs {
					got[btree.DecodeKey(r.Key)] = true
				}
				for _, k := range expect {
					if !got[k] {
						t.Errorf("scan missed committed key %d (protocol lost an entry)", k)
						return
					}
				}
			}
		}()
	}
	// Let writers finish, then stop readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	<-done
	e.checkTree()
}

// TestFigure2SplitDuringBlockedScan reproduces the scenario of Figures 1
// and 2 of the paper: a scan is suspended at a leaf; the leaf splits,
// moving part of the scan's range to a new right sibling; on resumption the
// scan detects the split via the NSN and follows the rightlink, losing
// nothing.
func TestFigure2SplitDuringBlockedScan(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 8})
	for k := int64(100); k <= 105; k++ {
		e.put(k)
	}
	// A pending insert of 106 holds the X record lock the scan will hit.
	blocker := e.begin()
	blockerRID := e.putIn(blocker, 106)
	_ = blockerRID

	scanDone := make(chan []int64, 1)
	scanErr := make(chan error, 1)
	go func() {
		tx := e.begin()
		rs, err := e.tree.Search(tx, btree.EncodeRange(100, 110), gist.RepeatableRead)
		if err != nil {
			scanErr <- err
			tx.Abort()
			e.tree.TxnFinished(tx.ID())
			return
		}
		tx.Commit()
		e.tree.TxnFinished(tx.ID())
		scanDone <- keysOf(rs)
	}()

	// Wait until the scan is blocked on key 106's record lock.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if waits := func() int64 { _, w, _ := e.locks.Stats(); return w }(); waits > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scan never blocked")
		}
		time.Sleep(time.Millisecond)
	}

	// Split the leaf under the blocked scan with out-of-range keys.
	chasesBefore := e.tree.Stats.RightlinkChases.Load()
	splitsBefore := e.tree.Stats.Splits.Load()
	for k := int64(1); k <= 6; k++ {
		e.put(k)
	}
	if e.tree.Stats.Splits.Load() == splitsBefore {
		t.Fatal("setup failed: no split occurred while the scan was blocked")
	}

	// Release the scan.
	if err := blocker.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(blocker.ID())

	select {
	case got := <-scanDone:
		want := []int64{100, 101, 102, 103, 104, 105, 106}
		if len(got) != len(want) {
			t.Fatalf("scan returned %v, want %v (keys lost to the split!)", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("scan returned %v, want %v", got, want)
			}
		}
	case err := <-scanErr:
		t.Fatalf("scan failed: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("scan hung")
	}
	if e.tree.Stats.RightlinkChases.Load() == chasesBefore {
		t.Error("scan did not follow any rightlink despite the split")
	}
	e.checkTree()
}

func TestPhantomPreventionInsertBlocksOnPredicate(t *testing.T) {
	e := newEnv(t, gist.Config{})
	e.put(5) // something outside the scanned range

	scanner := e.begin()
	if got := e.search(scanner, 10, 20); len(got) != 0 {
		t.Fatalf("range not empty: %v", keysOf(got))
	}

	insDone := make(chan error, 1)
	var insTx = e.begin()
	go func() {
		rid, err := e.heap.Insert(insTx, []byte("phantom"))
		if err != nil {
			insDone <- err
			return
		}
		insDone <- e.tree.Insert(insTx, btree.EncodeKey(15), rid)
	}()

	select {
	case err := <-insDone:
		t.Fatalf("insert into scanned range completed while scanner active: %v", err)
	case <-time.After(100 * time.Millisecond):
		// Blocked, as required.
	}
	if e.tree.Stats.PredBlocks.Load() == 0 {
		t.Error("no predicate block recorded")
	}

	if err := scanner.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(scanner.ID())

	select {
	case err := <-insDone:
		if err != nil {
			t.Fatalf("insert after scanner commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert still blocked after scanner finished")
	}
	if err := insTx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(insTx.ID())

	tx := e.begin()
	defer tx.Commit()
	if got := e.search(tx, 10, 20); len(got) != 1 {
		t.Errorf("after both commits: %v", keysOf(got))
	}
}

func TestInsertOutsidePredicateDoesNotBlock(t *testing.T) {
	e := newEnv(t, gist.Config{})
	scanner := e.begin()
	e.search(scanner, 10, 20)

	tx := e.begin()
	done := make(chan error, 1)
	go func() {
		rid, _ := e.heap.Insert(tx, []byte("far away"))
		done <- e.tree.Insert(tx, btree.EncodeKey(500), rid)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("insert outside scanned range blocked")
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())
	scanner.Commit()
	e.tree.TxnFinished(scanner.ID())
}

func TestScanInsertDeadlockResolved(t *testing.T) {
	// T1 scans an empty range; T2 inserts into it (physically installed,
	// then blocks on T1's predicate); T1 rescans and hits T2's record
	// lock: a genuine cycle that the lock manager must break.
	e := newEnv(t, gist.Config{})
	t1 := e.begin()
	if got := e.search(t1, 10, 20); len(got) != 0 {
		t.Fatal("range not empty")
	}

	t2 := e.begin()
	insDone := make(chan error, 1)
	go func() {
		rid, _ := e.heap.Insert(t2, []byte("x"))
		insDone <- e.tree.Insert(t2, btree.EncodeKey(15), rid)
	}()
	time.Sleep(100 * time.Millisecond) // let T2 install and block

	_, err := e.tree.Search(t1, btree.EncodeRange(10, 20), gist.RepeatableRead)
	if !errors.Is(err, gist.ErrAborted) {
		t.Fatalf("rescan: err = %v, want ErrAborted (deadlock)", err)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(t1.ID())

	if err := <-insDone; err != nil {
		t.Fatalf("T2 insert after T1 aborted: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(t2.ID())
	e.checkTree()
}

func TestUniqueInsertRace(t *testing.T) {
	e := newEnv(t, gist.Config{})
	key := btree.EncodeKey(77)
	results := make(chan error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx, err := e.tm.Begin()
			if err != nil {
				results <- err
				return
			}
			rid, err := e.heap.Insert(tx, []byte{byte(i)})
			if err != nil {
				results <- err
				tx.Abort()
				e.tree.TxnFinished(tx.ID())
				return
			}
			err = e.tree.InsertUnique(tx, key, rid)
			if err != nil {
				tx.Abort()
				e.tree.TxnFinished(tx.ID())
				results <- err
				return
			}
			results <- tx.Commit()
			e.tree.TxnFinished(tx.ID())
		}(i)
	}
	wg.Wait()
	close(results)
	var successes, failures int
	for err := range results {
		if err == nil {
			successes++
		} else if errors.Is(err, gist.ErrDuplicate) || errors.Is(err, gist.ErrAborted) {
			failures++
		} else {
			t.Errorf("unexpected error: %v", err)
		}
	}
	if successes != 1 || failures != 1 {
		t.Errorf("successes=%d failures=%d, want exactly one of each", successes, failures)
	}
	rep := e.checkTree()
	if rep.Entries != 1 {
		t.Errorf("entries = %d, want 1", rep.Entries)
	}
}

func TestNodeDeletionBlockedBySignalingLock(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	// Build a multi-leaf tree, then empty one leaf.
	var rids []page.RID
	for i := 0; i < 12; i++ {
		rids = append(rids, e.put(int64(i)))
	}
	rep := e.checkTree()
	if rep.Leaves < 3 {
		t.Fatal("setup: need several leaves")
	}
	// Logically delete keys 0..5 (they occupy the low-key leaves) and
	// commit, leaving those leaves empty after garbage collection.
	tx := e.begin()
	for i := 0; i <= 5; i++ {
		if err := e.tree.Delete(tx, btree.EncodeKey(int64(i)), rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())

	// A foreign operation holds signaling locks on every leaf (as if it
	// had pushed pointers to them on its stack, §7.2): no node may be
	// deleted while they exist.
	holder := page.TxnID(999999)
	for _, leaf := range rep.LeafIDs {
		if err := e.locks.Lock(holder, lock.ForNode(leaf), lock.S); err != nil {
			t.Fatal(err)
		}
	}

	gcTx := e.begin()
	if err := e.tree.GCAll(gcTx); err != nil {
		t.Fatal(err)
	}
	gcTx.Commit()
	e.tree.TxnFinished(gcTx.ID())
	if n := e.tree.Stats.NodeDeletes.Load(); n != 0 {
		t.Fatalf("node deleted despite signaling lock (deletes=%d)", n)
	}
	// The entries are garbage-collected (GC needs no node lock) but the
	// emptied leaves are still linked into the tree.
	repMid := e.checkTree()
	if repMid.Marked != 0 {
		t.Errorf("marked entries survived GC: %d", repMid.Marked)
	}
	if repMid.Leaves != rep.Leaves {
		t.Errorf("leaves = %d, want %d (none deletable under signaling locks)", repMid.Leaves, rep.Leaves)
	}

	// Release the signaling locks (the operation finished): empty leaves
	// may now be unlinked.
	e.locks.ReleaseAll(holder)
	gcTx2 := e.begin()
	if err := e.tree.GCAll(gcTx2); err != nil {
		t.Fatal(err)
	}
	gcTx2.Commit()
	e.tree.TxnFinished(gcTx2.ID())
	if n := e.tree.Stats.NodeDeletes.Load(); n == 0 {
		t.Error("no node deleted after signaling locks drained")
	}
	repAfter := e.checkTree()
	if repAfter.Leaves >= rep.Leaves {
		t.Errorf("leaves = %d, want < %d", repAfter.Leaves, rep.Leaves)
	}
	// Surviving keys are intact.
	tx2 := e.begin()
	defer tx2.Commit()
	if got := e.search(tx2, 0, 20); len(got) != 6 {
		t.Errorf("remaining keys = %v", keysOf(got))
	}
}

func TestNoLatchHeldAcrossIO(t *testing.T) {
	// A pool far smaller than the tree forces constant I/O; the exact
	// per-fetch accounting must show zero latched misses on the descent
	// and scan paths (single-threaded: no ascent chases happen).
	disk := newEnv(t, gist.Config{}) // throwaway for types
	_ = disk
	e := newEnvWithPool(t, gist.Config{MaxEntries: 8, AssertNoLatchOnIO: true}, 8)
	for i := 0; i < 400; i++ {
		e.put(int64(i))
	}
	tx := e.begin()
	for i := 0; i < 400; i += 25 {
		e.search(tx, int64(i), int64(i+30))
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())
	if n := e.tree.Stats.LatchedIOs.Load(); n != 0 {
		t.Errorf("latched I/Os = %d, want 0", n)
	}
	if e.tree.Stats.LatchlessIOs.Load() == 0 {
		t.Error("test did not exercise any I/O")
	}
}

func TestConcurrentMixedWorkloadStress(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 8})
	const workers = 6
	var wg sync.WaitGroup
	var committed sync.Map // key -> rid
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := int64(w*1000 + i)
				tx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rid, _ := e.heap.Insert(tx, []byte("r"))
				err = e.tree.Insert(tx, btree.EncodeKey(k), rid)
				if err != nil {
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					if errors.Is(err, gist.ErrAborted) {
						continue
					}
					t.Errorf("insert: %v", err)
					return
				}
				if i%7 == 3 {
					// Abort some transactions deliberately.
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				e.tree.TxnFinished(tx.ID())
				committed.Store(k, rid)

				if i%5 == 4 {
					// Delete an earlier committed key.
					victim := int64(w*1000 + i - 2)
					if v, ok := committed.Load(victim); ok {
						tx2, err := e.tm.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						if err := e.tree.Delete(tx2, btree.EncodeKey(victim), v.(page.RID)); err == nil {
							tx2.Commit()
							committed.Delete(victim)
						} else {
							tx2.Abort()
						}
						e.tree.TxnFinished(tx2.ID())
					}
				}
			}
		}(w)
	}
	wg.Wait()

	rep := e.checkTree()
	want := 0
	committed.Range(func(k, _ any) bool { want++; return true })
	if rep.Entries != want {
		t.Errorf("tree has %d live entries, expected %d", rep.Entries, want)
	}
	tx := e.begin()
	defer tx.Commit()
	committed.Range(func(k, _ any) bool {
		key := k.(int64)
		if got := e.search(tx, key, key); len(got) != 1 {
			t.Errorf("committed key %d: found %d entries", key, len(got))
			return false
		}
		return true
	})
}

// TestReadYourCommittedWritesUnderSplits is the sharpest probe for the
// counter-memorization race fixed by latching the parent before the Split
// record (Figure 4's ordering): each worker inserts a key, commits, and
// immediately point-queries it in a fresh transaction while other workers
// split nodes continuously. A stale-parent read combined with a
// too-fresh memorized counter would miss the key.
func TestReadYourCommittedWritesUnderSplits(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4}) // tiny fanout: constant splits
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				k := int64(w*100000 + i*17)
				tx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rid, _ := e.heap.Insert(tx, []byte("r"))
				if err := e.tree.Insert(tx, btree.EncodeKey(k), rid); err != nil {
					t.Errorf("insert %d: %v", k, err)
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				e.tree.TxnFinished(tx.ID())

				q, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rs, err := e.tree.Search(q, btree.EncodeRange(k, k), gist.ReadCommitted)
				q.Commit()
				e.tree.TxnFinished(q.ID())
				if err != nil {
					t.Errorf("search %d: %v", k, err)
					return
				}
				if len(rs) != 1 {
					t.Errorf("worker %d: committed key %d invisible immediately after commit (%d hits)", w, k, len(rs))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	rep := e.checkTree()
	if rep.Entries != 8*60 {
		t.Errorf("entries = %d, want %d", rep.Entries, 8*60)
	}
}

// TestInsertNotStarvedByLaterScans is §10.3's fairness rule: an insert
// blocked behind scanner S1's predicate leaves its own key as an insert
// predicate; a later scanner S2 of the same range must queue BEHIND the
// insert (blocking on its predicate) instead of attaching ahead and
// starving it indefinitely.
func TestInsertNotStarvedByLaterScans(t *testing.T) {
	e := newEnv(t, gist.Config{})
	e.put(100) // outside the contested range

	s1 := e.begin()
	if got := e.search(s1, 10, 20); len(got) != 0 {
		t.Fatal("range not empty")
	}

	// The insert blocks on S1's predicate (after physically installing
	// its entry and leaving its own insert predicate).
	insTx := e.begin()
	insDone := make(chan error, 1)
	go func() {
		rid, _ := e.heap.Insert(insTx, []byte("contested"))
		insDone <- e.tree.Insert(insTx, btree.EncodeKey(15), rid)
	}()
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-insDone:
		t.Fatalf("insert not blocked: %v", err)
	default:
	}

	// A later scanner of the same range must block behind the insert.
	s2 := e.begin()
	s2Done := make(chan struct {
		n   int
		err error
	}, 1)
	go func() {
		rs, err := e.tree.Search(s2, btree.EncodeRange(10, 20), gist.RepeatableRead)
		s2Done <- struct {
			n   int
			err error
		}{len(rs), err}
	}()
	select {
	case r := <-s2Done:
		t.Fatalf("later scan did not queue behind the blocked insert: %+v", r)
	case <-time.After(100 * time.Millisecond):
	}

	// S1 finishes: the insert completes first, then S2 sees the new key
	// (it queued behind the insert, so the insert was not starved).
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(s1.ID())

	if err := <-insDone; err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := insTx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(insTx.ID())

	select {
	case r := <-s2Done:
		if r.err != nil {
			t.Fatalf("s2: %v", r.err)
		}
		if r.n != 1 {
			t.Fatalf("s2 saw %d keys, want 1 (the committed insert)", r.n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("s2 hung")
	}
	s2.Commit()
	e.tree.TxnFinished(s2.ID())
}

// TestConcurrentGCAndInserts runs garbage collection passes concurrently
// with inserts and deletes: GC must never unlink a node an active insert
// still targets, and the final content must match the surviving set.
func TestConcurrentGCAndInserts(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	var rids sync.Map
	for i := 0; i < 60; i++ {
		rids.Store(int64(i), e.put(int64(i)))
	}
	var writers sync.WaitGroup
	var gcDone sync.WaitGroup
	stop := make(chan struct{})
	// GC hammer.
	gcDone.Add(1)
	go func() {
		defer gcDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx, err := e.tm.Begin()
			if err != nil {
				return
			}
			if err := e.tree.GCAll(tx); err != nil {
				t.Errorf("GC: %v", err)
				tx.Abort()
				return
			}
			tx.Commit()
			e.tree.TxnFinished(tx.ID())
		}
	}()
	// Writers: delete low keys, insert high keys.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 40; i++ {
				del := int64(w*15 + i%15)
				if v, ok := rids.LoadAndDelete(del); ok {
					tx, _ := e.tm.Begin()
					if err := e.tree.Delete(tx, btree.EncodeKey(del), v.(page.RID)); err != nil {
						rids.Store(del, v) // not deleted after all
						tx.Abort()
					} else {
						tx.Commit()
					}
					e.tree.TxnFinished(tx.ID())
				}
				k := int64(1000 + w*1000 + i)
				tx, _ := e.tm.Begin()
				rid, _ := e.heap.Insert(tx, []byte("n"))
				if err := e.tree.Insert(tx, btree.EncodeKey(k), rid); err != nil {
					t.Errorf("insert %d: %v", k, err)
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					return
				}
				tx.Commit()
				e.tree.TxnFinished(tx.ID())
				rids.Store(k, rid)
			}
		}(w)
	}
	// Stop GC only after writers are done.
	writers.Wait()
	close(stop)
	gcDone.Wait()
	want := 0
	rids.Range(func(_, _ any) bool { want++; return true })
	rep := e.checkTree()
	if rep.Entries != want {
		t.Fatalf("entries = %d, want %d", rep.Entries, want)
	}
	tx := e.begin()
	defer tx.Commit()
	rids.Range(func(k, v any) bool {
		key := k.(int64)
		got := e.search(tx, key, key)
		if len(got) != 1 || got[0].RID != v.(page.RID) {
			t.Errorf("key %d: %v", key, got)
			return false
		}
		return true
	})
}
