package gist

import (
	"fmt"

	"repro/internal/page"
	"repro/internal/wal"
)

// TouchesPage reports whether restart redo of r must be applied to pg.
// Split records touch two pages; everything else touches r.Pg only.
func TouchesPage(r *wal.Record, pg page.PageID) bool {
	switch r.Type.Base() {
	case wal.RecSplit:
		if r.Type.IsCLR() {
			return pg == r.Pg
		}
		return pg == r.Pg || pg == r.Pg2
	case wal.RecParentEntryUpdate, wal.RecInternalEntryAdd, wal.RecInternalEntryUpdate,
		wal.RecInternalEntryDelete, wal.RecAddLeafEntry, wal.RecMarkLeafEntry,
		wal.RecGarbageCollection, wal.RecGetPage, wal.RecFreePage, wal.RecRootChange:
		return pg == r.Pg
	default:
		return false
	}
}

// Redo applies the page-local effect of a tree log record (or CLR) during
// restart, implementing the redo column of Table 1. pg names which of the
// record's pages p is (a zeroed never-flushed image cannot say itself). The
// caller has verified pageLSN < r.LSN; Redo stamps the pageLSN. Redo
// actions are written to be idempotent against partially applied state.
func Redo(r *wal.Record, p *page.Page, pg page.PageID) error {
	base := r.Type.Base()
	clr := r.Type.IsCLR()
	switch base {
	case wal.RecGetPage:
		if clr {
			p.SetFlags(p.Flags() | page.FlagDeallocated)
		} else {
			// "mark page as unavailable": format the fresh page.
			p.Init(r.Pg, r.Level)
		}

	case wal.RecFreePage:
		if clr {
			// Compensated deallocation: rebuild the empty node.
			p.Init(r.Pg, r.Level)
			p.SetNSN(r.OldNSN)
			p.SetRightlink(r.OldRight)
		} else {
			p.SetFlags(p.Flags() | page.FlagDeallocated)
		}

	case wal.RecSplit:
		if clr {
			// Compensation: the split is reversed on the original.
			for _, b := range r.Moved {
				if findBody(p, b) < 0 {
					if _, err := p.InsertBytes(b); err != nil {
						return err
					}
				}
			}
			p.SetNSN(r.OldNSN)
			p.SetRightlink(r.OldRight)
			break
		}
		if pg == r.Pg {
			// Original page: moved entries leave; stamp new NSN.
			for _, b := range r.Moved {
				if slot := findBody(p, b); slot >= 0 {
					p.DeleteSlot(slot)
				}
			}
			p.SetNSN(r.LSN)
			p.SetRightlink(r.Pg2)
		} else {
			// New sibling: fresh page receives the moved entries
			// plus the original's old NSN and rightlink.
			p.Init(r.Pg2, r.Level)
			for _, b := range r.Moved {
				if _, err := p.InsertBytes(b); err != nil {
					return err
				}
			}
			p.SetNSN(r.OldNSN)
			p.SetRightlink(r.OldRight)
		}

	case wal.RecParentEntryUpdate:
		// Redo-only: "update BP in corresponding slot in parent".
		if slot := p.FindChild(r.Pg2); slot >= 0 {
			if err := p.ReplaceEntry(slot, page.Entry{Pred: r.Body, Child: r.Pg2}); err != nil {
				return err
			}
		}

	case wal.RecInternalEntryAdd:
		if clr {
			if slot := findBody(p, r.Body); slot >= 0 {
				p.DeleteSlot(slot)
			}
		} else if findBody(p, r.Body) < 0 {
			if _, err := p.InsertBytes(r.Body); err != nil {
				return err
			}
		}

	case wal.RecInternalEntryUpdate:
		// Forward: set to Body; CLR already carries the restored value
		// in Body as well (undoInternalEntryUpdate swaps the fields).
		if slot := p.FindChild(r.Pg2); slot >= 0 {
			if err := p.ReplaceEntry(slot, page.Entry{Pred: r.Body, Child: r.Pg2}); err != nil {
				return err
			}
		}

	case wal.RecInternalEntryDelete:
		if clr {
			if findBody(p, r.Body) < 0 {
				if _, err := p.InsertBytes(r.Body); err != nil {
					return err
				}
			}
		} else if slot := findBody(p, r.Body); slot >= 0 {
			p.DeleteSlot(slot)
		}

	case wal.RecAddLeafEntry:
		e, err := page.DecodeEntry(r.Body, true)
		if err != nil {
			return err
		}
		if clr {
			if slot := p.FindEntry(e.RID, e.Pred, false); slot >= 0 {
				p.DeleteSlot(slot)
			}
		} else if p.FindEntry(e.RID, e.Pred, false) < 0 {
			if _, err := p.InsertBytes(r.Body); err != nil {
				return err
			}
		}

	case wal.RecMarkLeafEntry:
		// The logged body is the entry before marking (not deleted).
		e, err := page.DecodeEntry(r.Body, true)
		if err != nil {
			return err
		}
		if clr {
			if slot := p.FindEntry(e.RID, e.Pred, true); slot >= 0 {
				if err := p.UnmarkDeleted(slot); err != nil {
					return err
				}
			}
		} else if slot := p.FindEntry(e.RID, e.Pred, false); slot >= 0 {
			if err := p.MarkDeleted(slot, r.Txn); err != nil {
				return err
			}
		}

	case wal.RecGarbageCollection:
		// Redo-only: remove the recorded entries from the leaf.
		for _, b := range r.Moved {
			if slot := findBody(p, b); slot >= 0 {
				p.DeleteSlot(slot)
			}
		}

	case wal.RecRootChange:
		root := r.Pg2
		if clr {
			// undoRootChange already swapped Pg2/OldRight, so the
			// CLR's forward action is the same shape.
			root = r.Pg2
		}
		if err := p.EnsureSlot(0, anchorBody(root)); err != nil {
			return err
		}

	default:
		return fmt.Errorf("gist: Redo of unexpected record %v", r.Type)
	}
	p.SetLSN(r.LSN)
	return nil
}
