package gist

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Delete logically deletes the leaf entry (key, rid): the entry is marked,
// not physically removed, so that repeatable-read scans still find it and
// block on the deleting transaction (§7). Parent BPs are deliberately not
// shrunk — that would cut the path concurrent searches need to reach the
// marked entry. Physical removal happens later by garbage collection, after
// this transaction commits.
//
// The caller must have X-locked the data record (phase 1 of §6 applies
// symmetrically); the lock call here is re-entrant.
func (t *Tree) Delete(tx *txn.Txn, key []byte, rid page.RID) error {
	return t.DeleteCtx(nil, tx, key, rid)
}

// DeleteCtx is Delete honoring ctx at every node-visit boundary of the
// equality-search traversal and at every blocking wait. The mark itself is
// a single latched page update — once written it is undone by the caller
// through logical undo, never interrupted. A nil ctx never cancels.
func (t *Tree) DeleteCtx(ctx context.Context, tx *txn.Txn, key []byte, rid page.RID) error {
	t.Stats.Deletes.Add(1)
	o := t.opEnterCtx(ctx, tx)
	o.track("delete")
	defer o.exit()
	if err := tx.LockCtx(o.context(), lock.ForRID(rid), lock.X); err != nil {
		return wrapLockErr(err)
	}

	// Locate the leaf holding the entry: a search with an equality
	// predicate (§7), traversing all consistent subtrees.
	query := t.ops.KeyQuery(key)
	nsn := t.counter()
	root, err := t.rootID()
	if err != nil {
		return err
	}
	stack := []stackEntry{{pg: root, nsn: nsn}}
	o.signal(root)
	for len(stack) > 0 {
		// Node-visit boundary: no latch held, no NTA open.
		if err := o.check(); err != nil {
			return err
		}
		se := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f, err := o.fetch(se.pg)
		if err != nil {
			return fmt.Errorf("gist: delete fetch %d: %w", se.pg, err)
		}
		leaf := f.Page.IsLeaf()
		mode := latch.S
		if leaf {
			mode = latch.X
		}
		o.latchPage(f, mode)
		if f.Page.NSN() > se.nsn {
			if rl := f.Page.Rightlink(); rl != page.InvalidPage {
				stack = append(stack, stackEntry{pg: rl, nsn: se.nsn})
				o.signal(rl)
				t.Stats.RightlinkChases.Add(1)
			}
		}
		if leaf {
			slot := f.Page.FindEntry(rid, key, false)
			if slot >= 0 {
				e := f.Page.MustEntry(slot)
				{
					old := e.Encode(true)
					if err := f.Page.MarkDeleted(slot, tx.ID()); err != nil {
						o.unlatchPage(f, mode)
						t.pool.Unpin(f, false, 0)
						return err
					}
					lsn := tx.Log(&wal.Record{
						Type: wal.RecMarkLeafEntry,
						Pg:   f.ID(),
						NSN:  f.Page.NSN(),
						Body: old,
					})
					f.Page.SetLSN(lsn)
					t.Stats.Marks.Add(1)
					// Retain the signaling lock on the leaf
					// until transaction end: undo must be
					// able to re-walk this chain.
					o.pinSignal(f.ID())
					o.unlatchPage(f, mode)
					t.pool.Unpin(f, true, lsn)
					return nil
				}
			}
		} else {
			childNSN := t.counter()
			if t.cfg.ParentLSNOpt {
				childNSN = f.Page.LSN()
			}
			for i := 0; i < f.Page.NumSlots(); i++ {
				e, err := f.Page.Entry(i)
				if err != nil {
					continue
				}
				if t.ops.Consistent(e.Pred, query) {
					stack = append(stack, stackEntry{pg: e.Child, nsn: childNSN})
					o.signal(e.Child)
				}
			}
		}
		o.unlatchPage(f, mode)
		t.pool.Unpin(f, false, 0)
		o.releaseSignal(se.pg)
	}
	return fmt.Errorf("%w: key with RID %v", ErrNotFound, rid)
}

// gcLeafLocked removes, from an X-latched leaf, every logically deleted
// entry whose deleting transaction has terminated (necessarily by commit:
// aborts unmark during rollback). It runs as its own atomic action and,
// when entries were removed, shrinks the parent's bounding predicate
// (best effort, one level). This is the "node reorganization" performed by
// operations passing through the node (§7.1).
func (o *op) gcLeafLocked(f *buffer.Frame, stack []pathEntry) {
	t := o.t
	if f.Page.NumSlots() == 0 {
		// Already empty (an earlier GC pass was blocked from deleting
		// it by signaling locks): retry the unlink.
		o.tryDeleteNode(f, stack)
		return
	}
	var victims []int
	var bodies [][]byte
	for i := 0; i < f.Page.NumSlots(); i++ {
		e, err := f.Page.Entry(i)
		if err != nil {
			continue
		}
		if e.Deleted && e.Deleter != page.InvalidTxn && !t.tm.IsActive(e.Deleter) {
			victims = append(victims, i)
			b, _ := f.Page.SlotBytes(i)
			bodies = append(bodies, append([]byte(nil), b...))
		}
	}
	if len(victims) == 0 {
		return
	}
	if err := o.tx.BeginNTA(); err != nil {
		return // another SMO is open; GC is an optimization, skip
	}
	lsn := o.tx.Log(&wal.Record{Type: wal.RecGarbageCollection, Pg: f.ID(), Moved: bodies})
	for i := len(victims) - 1; i >= 0; i-- {
		f.Page.DeleteSlot(victims[i])
	}
	f.Page.SetLSN(lsn)
	o.tx.EndNTA()
	t.pool.MarkDirty(f, lsn)
	t.Stats.GCRuns.Add(1)
	t.Stats.GCEntries.Add(int64(len(victims)))

	if f.Page.NumSlots() == 0 {
		o.tryDeleteNode(f, stack)
		return
	}
	o.shrinkParentBP(f, stack)
}

// GCLeaf garbage-collects one leaf on demand (used by the maintenance CLI
// and tests). The leaf is located by page id.
func (t *Tree) GCLeaf(tx *txn.Txn, pg page.PageID) error {
	o := t.opEnter(tx)
	defer o.exit()
	f, err := o.fetch(pg)
	if err != nil {
		return err
	}
	o.latchPage(f, latch.X)
	if !f.Page.IsLeaf() {
		o.unlatchPage(f, latch.X)
		t.pool.Unpin(f, false, 0)
		return fmt.Errorf("gist: GCLeaf on internal node %d", pg)
	}
	o.gcLeafLocked(f, nil)
	o.unlatchPage(f, latch.X)
	t.pool.Unpin(f, false, 0)
	return nil
}

// shrinkParentBP tightens the parent entry of an X-latched node to the
// node's current computed BP, as one atomic action. Safe against concurrent
// inserts because an inserter holds the leaf latch continuously from its BP
// expansion until its entry is physically installed, so a shrink can never
// observe the window between the two.
func (o *op) shrinkParentBP(f *buffer.Frame, stack []pathEntry) {
	t := o.t
	if stack == nil {
		return // no path context; shrink is best-effort
	}
	newBP := t.computedBP(&f.Page)
	if newBP == nil {
		return
	}
	parentF, slot, ownPin, err := o.ascendToParent(stack, f.ID(), f.Page.Level())
	if err != nil || parentF == nil {
		return
	}
	defer func() {
		o.unlatchPage(parentF, latch.X)
		if ownPin {
			t.pool.Unpin(parentF, false, 0)
		}
	}()
	oldPred := parentF.Page.MustEntry(slot).Pred
	if bytes.Equal(oldPred, newBP) {
		return
	}
	if err := o.tx.BeginNTA(); err != nil {
		return
	}
	lsn := o.tx.Log(&wal.Record{
		Type: wal.RecParentEntryUpdate,
		Pg:   parentF.ID(),
		Pg2:  f.ID(),
		Body: newBP,
	})
	if err := parentF.Page.ReplaceEntry(slot, page.Entry{Pred: newBP, Child: f.ID()}); err == nil {
		parentF.Page.SetLSN(lsn)
		t.pool.MarkDirty(parentF, lsn)
		t.Stats.BPUpdates.Add(1)
	}
	o.tx.EndNTA()
}

// tryDeleteNode unlinks an empty, X-latched leaf from the tree if no other
// operation holds a direct or indirect pointer to it. The probe is the
// signaling-lock check of §7.2: deletion requires the X node lock, which is
// denied (without waiting) while any operation's signaling S lock exists.
// Physical reuse of the page is additionally deferred until every operation
// active at unlink time has finished (the drain technique of [KL80]), which
// also covers the window where an operation has read a rightlink to this
// node but not yet taken its signaling lock.
func (o *op) tryDeleteNode(f *buffer.Frame, stack []pathEntry) {
	t := o.t
	if stack == nil || len(stack) == 0 {
		return // never delete the root (or without path context)
	}
	pg := f.ID()
	// Drop our own signaling lock first so the probe only sees others'.
	if o.signals[pg] {
		delete(o.signals, pg)
		t.locks.Unlock(o.tx.ID(), lock.ForNode(pg))
	}
	if !t.locks.TryLock(o.tx.ID(), lock.ForNode(pg), lock.X) {
		return // someone still points here; retry on a later pass
	}
	defer t.locks.Unlock(o.tx.ID(), lock.ForNode(pg))

	parentF, slot, ownPin, err := o.ascendToParent(stack, pg, f.Page.Level())
	if err != nil || parentF == nil {
		return
	}
	defer func() {
		o.unlatchPage(parentF, latch.X)
		if ownPin {
			t.pool.Unpin(parentF, false, 0)
		}
	}()
	// Keep at least one child under the parent: deleting the parent's
	// last entry would require recursive node deletion up the tree;
	// retried later when the parent itself is collected.
	if parentF.Page.NumSlots() <= 1 {
		return
	}

	if err := o.tx.BeginNTA(); err != nil {
		return
	}
	entryBody, _ := parentF.Page.SlotBytes(slot)
	entryCopy := append([]byte(nil), entryBody...)
	lsn := o.tx.Log(&wal.Record{Type: wal.RecInternalEntryDelete, Pg: parentF.ID(), Body: entryCopy})
	parentF.Page.DeleteSlot(slot)
	parentF.Page.SetLSN(lsn)
	t.pool.MarkDirty(parentF, lsn)

	lsn = o.tx.Log(&wal.Record{
		Type:     wal.RecFreePage,
		Pg:       pg,
		Level:    f.Page.Level(),
		OldNSN:   f.Page.NSN(),
		OldRight: f.Page.Rightlink(),
	})
	f.Page.SetFlags(f.Page.Flags() | page.FlagDeallocated)
	f.Page.SetLSN(lsn)
	t.pool.MarkDirty(f, lsn)
	o.tx.EndNTA()

	// Late traversers may still pass through the (empty) node via its
	// rightlink until the drain completes; only then is it reused.
	t.preds.DropNode(pg)
	t.quarantinePage(pg)
	t.Stats.NodeDeletes.Add(1)
}

// LeafRef names one leaf page together with the parent that pointed at it
// during collection, so that a later GC pass has the path context node
// deletion needs (removing the parent entry). Parent is InvalidPage when
// the leaf is the root.
type LeafRef struct {
	Leaf   page.PageID
	Parent page.PageID
}

// CollectLeafRefs walks the tree breadth-first and returns a reference to
// every leaf. The snapshot is advisory: by the time a ref is consumed the
// leaf may have been deleted or its parent changed, and GCLeafRefs treats
// both as a skip. The maintenance GC sweeper uses this to refill its paced
// burst queue.
func (t *Tree) CollectLeafRefs(tx *txn.Txn) ([]LeafRef, error) {
	o := t.opEnter(tx)
	defer o.exit()
	return o.collectLeafRefs()
}

func (o *op) collectLeafRefs() ([]LeafRef, error) {
	t := o.t
	root, err := t.rootID()
	if err != nil {
		return nil, err
	}
	var leaves []LeafRef
	frontier := []page.PageID{root}
	visited := map[page.PageID]bool{root: true}
	for len(frontier) > 0 {
		pg := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		f, err := o.fetch(pg)
		if err != nil {
			return nil, err
		}
		o.latchPage(f, latch.S)
		if f.Page.IsLeaf() {
			leaves = append(leaves, LeafRef{Leaf: pg, Parent: page.InvalidPage})
		} else {
			leafLevelBelow := f.Page.Level() == 1
			for i := 0; i < f.Page.NumSlots(); i++ {
				e, err := f.Page.Entry(i)
				if err != nil {
					continue
				}
				if visited[e.Child] {
					continue
				}
				visited[e.Child] = true
				if leafLevelBelow {
					leaves = append(leaves, LeafRef{Leaf: e.Child, Parent: pg})
				} else {
					frontier = append(frontier, e.Child)
				}
			}
		}
		if rl := f.Page.Rightlink(); rl != page.InvalidPage && !visited[rl] {
			visited[rl] = true
			frontier = append(frontier, rl)
		}
		o.unlatchPage(f, latch.S)
		t.pool.Unpin(f, false, 0)
	}
	return leaves, nil
}

// GCLeafRefs garbage-collects the referenced leaves: for each one it builds
// the single-level path context from the recorded parent, collects committed
// deleted entries, and attempts node deletion for emptied leaves. Stale refs
// (deallocated or no-longer-fetchable pages) are skipped — the refs are a
// snapshot and the tree may have moved on.
func (t *Tree) GCLeafRefs(tx *txn.Txn, refs []LeafRef) error {
	o := t.opEnter(tx)
	defer o.exit()
	return o.gcLeafRefs(refs)
}

func (o *op) gcLeafRefs(refs []LeafRef) error {
	t := o.t
	for _, lr := range refs {
		var stack []pathEntry
		if lr.Parent != page.InvalidPage {
			pf, err := o.fetch(lr.Parent)
			if err != nil {
				continue // stale parent ref: skip, a later pass retries
			}
			stack = []pathEntry{{pg: lr.Parent, f: pf}}
		}
		f, err := o.fetch(lr.Leaf)
		if err != nil {
			o.releasePath(stack)
			continue // stale leaf ref
		}
		o.latchPage(f, latch.X)
		if f.Page.IsLeaf() && f.Page.Flags()&page.FlagDeallocated == 0 {
			o.gcLeafLocked(f, stack)
		}
		o.unlatchPage(f, latch.X)
		t.pool.Unpin(f, false, 0)
		o.releasePath(stack)
	}
	return nil
}

// GCAll walks the whole tree and garbage-collects every leaf — the
// maintenance pass a DBMS would run in the background (the paced sweeper in
// internal/maintenance runs the same two phases in bursts). Node deletions
// are attempted for emptied leaves when a path context is available.
func (t *Tree) GCAll(tx *txn.Txn) error {
	o := t.opEnter(tx)
	defer o.exit()
	leaves, err := o.collectLeafRefs()
	if err != nil {
		return err
	}
	return o.gcLeafRefs(leaves)
}

// DeadEntries reports the tree's surviving logically-deleted entry
// population: entries marked, minus rollback unmarks, minus entries
// physically reclaimed by GC. The count restarts at zero after a reopen
// (pre-crash marks are invisible to it); the sweeper's periodic full pass
// covers that blind spot. Clamped at zero because post-restart GC can
// reclaim entries this process never counted as marked.
func (t *Tree) DeadEntries() int64 {
	d := t.Stats.Marks.Load() - t.Stats.Unmarks.Load() - t.Stats.GCEntries.Load()
	if d < 0 {
		return 0
	}
	return d
}

// Destroy walks the whole tree and frees every node page plus the anchor,
// inside nested top actions so the deallocation is recoverable. The tree
// must be quiesced and is unusable afterwards. Used by index drop.
func (t *Tree) Destroy(tx *txn.Txn) error {
	o := t.opEnter(tx)
	defer o.exit()
	root, err := t.rootID()
	if err != nil {
		return err
	}
	// Collect every node (children + rightlinks).
	var pages []page.PageID
	frontier := []page.PageID{root}
	visited := map[page.PageID]bool{root: true}
	for len(frontier) > 0 {
		pg := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		pages = append(pages, pg)
		f, err := o.fetch(pg)
		if err != nil {
			return err
		}
		o.latchPage(f, latch.S)
		if !f.Page.IsLeaf() {
			for i := 0; i < f.Page.NumSlots(); i++ {
				e, err := f.Page.Entry(i)
				if err != nil {
					continue
				}
				if !visited[e.Child] {
					visited[e.Child] = true
					frontier = append(frontier, e.Child)
				}
			}
		}
		if rl := f.Page.Rightlink(); rl != page.InvalidPage && !visited[rl] {
			visited[rl] = true
			frontier = append(frontier, rl)
		}
		o.unlatchPage(f, latch.S)
		t.pool.Unpin(f, false, 0)
	}
	pages = append(pages, t.anchor)

	if err := tx.BeginNTA(); err != nil {
		return err
	}
	for _, pg := range pages {
		f, err := o.fetch(pg)
		if err != nil {
			tx.EndNTA()
			return err
		}
		o.latchPage(f, latch.X)
		lsn := tx.Log(&wal.Record{
			Type:     wal.RecFreePage,
			Pg:       pg,
			Level:    f.Page.Level(),
			OldNSN:   f.Page.NSN(),
			OldRight: f.Page.Rightlink(),
		})
		f.Page.SetFlags(f.Page.Flags() | page.FlagDeallocated)
		f.Page.SetLSN(lsn)
		t.pool.MarkDirty(f, lsn)
		o.unlatchPage(f, latch.X)
		t.pool.Unpin(f, false, 0)
		t.preds.DropNode(pg)
		t.quarantinePage(pg)
	}
	tx.EndNTA()
	t.Close() // release the anchor pin so the page can be reused
	return nil
}
