package gist

import (
	"context"

	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/txn"
)

// InsertUnique inserts (key, RID) enforcing key uniqueness (§8): a search
// phase with an equality predicate verifies the key is absent, leaving
// "=key" insert predicates on every visited node; then the ordinary insert
// runs. The search-phase predicates are released when the operation
// finishes — they exist only to close the race between two simultaneous
// insertions of the same value, which the predicates convert into a
// deadlock that the lock manager resolves.
//
// On a duplicate the error is returned after S-locking the existing data
// record, which makes the error condition itself repeatable under Degree 3
// isolation: the duplicate can neither be deleted nor can the error
// spontaneously vanish while this transaction lives.
func (t *Tree) InsertUnique(tx *txn.Txn, key []byte, rid page.RID) error {
	return t.InsertUniqueCtx(nil, tx, key, rid)
}

// InsertUniqueCtx is InsertUnique with InsertCtx's cancellation contract
// for both the duplicate-search phase and the insert phase.
func (t *Tree) InsertUniqueCtx(ctx context.Context, tx *txn.Txn, key []byte, rid page.RID) error {
	t.Stats.Inserts.Add(1)
	o := t.opEnterCtx(ctx, tx)
	o.track("insert")
	defer o.exit()

	if err := tx.LockCtx(o.context(), lock.ForRID(rid), lock.X); err != nil {
		return wrapLockErr(err)
	}

	insPred := t.preds.New(tx.ID(), predicate.Insert, append([]byte(nil), key...))
	query := t.ops.KeyQuery(key)
	dups, err := t.searchCore(o, query, RepeatableRead, insPred, t.keyConflictsWith(key))
	if err != nil {
		t.preds.Release(insPred)
		return err
	}
	if len(dups) > 0 {
		// The duplicate's record lock (taken by searchCore) is held to
		// end of transaction; the transient predicates are not needed.
		t.preds.Release(insPred)
		return ErrDuplicate
	}

	err = o.insert(key, rid)
	// "Once the insert operation is finished, the predicates left behind
	// from the search phase can be released" (§8). The insert itself left
	// a fresh insert predicate on the target leaf, which lives until the
	// transaction ends.
	t.preds.Release(insPred)
	return err
}
