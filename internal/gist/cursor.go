package gist

import (
	"context"
	"fmt"

	"repro/internal/latch"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/txn"
)

// Cursor is an incremental search: the depth-first traversal of Figure 3,
// suspended between calls to Next. The cursor's stack of pending node
// visits is exactly the state §10.2 says must be recorded when a savepoint
// is established; Mark and Reset implement that, and the signaling locks
// backing the stack's pointers are retained across savepoints so the
// recorded positions stay valid (§7.2, §10.2).
type Cursor struct {
	t     *Tree
	tx    *txn.Txn
	query []byte
	iso   Isolation
	o     *op
	pred  *predicate.Predicate

	stack   []stackEntry
	pending []SearchResult // matched on the current leaf, not yet returned
	seen    map[page.RID]bool
	done    bool
	closed  bool

	// conflicts decides which attached predicates ahead of ours force a
	// wait (FIFO fairness); overridable for the unique-insert search.
	conflicts func(*predicate.Predicate) bool
}

// OpenCursor starts an incremental search. The caller must call Close when
// done (Commit/Abort of the transaction does not close cursors).
func (t *Tree) OpenCursor(tx *txn.Txn, query []byte, iso Isolation) (*Cursor, error) {
	return t.OpenCursorCtx(nil, tx, query, iso)
}

// OpenCursorCtx is OpenCursor with a context the cursor checks at every
// node-visit boundary of Next: when ctx fires, Next returns ctx.Err() and
// the cursor (still open; Close releases its state) returns the same error
// on every later call until ctx is replaced by closing and reopening.
func (t *Tree) OpenCursorCtx(ctx context.Context, tx *txn.Txn, query []byte, iso Isolation) (*Cursor, error) {
	t.Stats.Searches.Add(1)
	var pred *predicate.Predicate
	if iso == RepeatableRead {
		pred = t.preds.New(tx.ID(), predicate.Search, query)
	}
	conflicts := func(p *predicate.Predicate) bool {
		if p.Kind != predicate.Insert {
			return false
		}
		return t.ops.Consistent(p.Data, query)
	}
	return t.openCursor(ctx, tx, query, iso, pred, conflicts)
}

func (t *Tree) openCursor(ctx context.Context, tx *txn.Txn, query []byte, iso Isolation, attach *predicate.Predicate, conflicts func(*predicate.Predicate) bool) (*Cursor, error) {
	o := t.opEnterCtx(ctx, tx)
	o.track("cursor")
	// Counter before root pointer: see locateLeaf for why this order is
	// load-bearing against racing root splits.
	nsn := t.counter()
	root, err := o.optimisticRootID()
	if err != nil {
		o.exit()
		return nil, err
	}
	c := &Cursor{
		t:         t,
		tx:        tx,
		query:     query,
		iso:       iso,
		o:         o,
		pred:      attach,
		stack:     []stackEntry{{pg: root, nsn: nsn}},
		seen:      make(map[page.RID]bool),
		conflicts: conflicts,
	}
	o.signal(root)
	return c, nil
}

// Next returns the next matching entry. ok is false when the search is
// exhausted. Next may block on record locks and predicates exactly as a
// full search would.
func (c *Cursor) Next() (SearchResult, bool, error) {
	if c.closed {
		return SearchResult{}, false, fmt.Errorf("gist: Next on closed cursor")
	}
	t := c.t
	for {
		// Node-visit boundary: the only state held here is the stack (backed
		// by signaling locks that exit() releases) — nothing latched, nothing
		// pinned, no NTA — so cancellation between visits is always safe.
		if err := c.o.check(); err != nil {
			return SearchResult{}, false, err
		}
		if len(c.pending) > 0 {
			r := c.pending[0]
			c.pending = c.pending[1:]
			return r, true, nil
		}
		if c.done || len(c.stack) == 0 {
			c.done = true
			return SearchResult{}, false, nil
		}

		se := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]

		f, err := c.o.fetch(se.pg)
		if err != nil {
			return SearchResult{}, false, fmt.Errorf("gist: cursor fetch %d: %w", se.pg, err)
		}

		if t.cfg.OptimisticReads {
			handled, herr := c.visitOptimistic(f, se)
			if herr != nil {
				return SearchResult{}, false, herr
			}
			if handled {
				continue
			}
			// Validation kept failing: fall through to the pessimistic
			// visit below with the frame still pinned.
		}

		c.o.latchPage(f, latch.S)

		if f.Page.NSN() > se.nsn {
			if rl := f.Page.Rightlink(); rl != page.InvalidPage {
				c.stack = append(c.stack, stackEntry{pg: rl, nsn: se.nsn})
				c.o.signal(rl)
				t.Stats.RightlinkChases.Add(1)
			}
		}

		if c.pred != nil {
			ahead := t.preds.Attach(c.pred, se.pg, c.conflicts)
			if len(ahead) > 0 {
				c.o.unlatchPage(f, latch.S)
				t.pool.Unpin(f, false, 0)
				if err := c.o.blockOnPredicates(ahead); err != nil {
					return SearchResult{}, false, err
				}
				c.stack = append(c.stack, se)
				continue
			}
		}

		if f.Page.IsLeaf() {
			redo, err := c.o.scanLeaf(f, se, c.query, c.iso, c.seen, &c.pending)
			c.o.unlatchPage(f, latch.S)
			t.pool.Unpin(f, false, 0)
			if err != nil {
				return SearchResult{}, false, err
			}
			if redo != nil {
				if lerr := c.o.lockRecord(redo.rid, c.iso); lerr != nil {
					return SearchResult{}, false, lerr
				}
				c.stack = append(c.stack, se)
				continue
			}
		} else {
			childNSN := t.counter()
			if t.cfg.ParentLSNOpt {
				childNSN = f.Page.LSN()
			}
			for i := 0; i < f.Page.NumSlots(); i++ {
				e, err := f.Page.Entry(i)
				if err != nil {
					continue
				}
				if t.ops.Consistent(e.Pred, c.query) {
					c.stack = append(c.stack, stackEntry{pg: e.Child, nsn: childNSN})
					c.o.signal(e.Child)
				}
			}
			c.o.unlatchPage(f, latch.S)
			t.pool.Unpin(f, false, 0)
		}
		c.o.releaseSignal(se.pg)
	}
}

// All drains the cursor and closes it.
func (c *Cursor) All() ([]SearchResult, error) {
	defer c.Close()
	var out []SearchResult
	for {
		r, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// Close releases the cursor's operation state (signaling locks not pinned
// by savepoints). Record locks and predicates stay with the transaction,
// per two-phase locking. Close is idempotent.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.o.exit()
}

// Mark is a recorded cursor position: a copy of the traversal stack, the
// already-returned data RIDs and the unreturned matches of the current
// leaf (§10.2: "record the then-current stack"; storage is proportional to
// page capacity times tree height).
type Mark struct {
	stack   []stackEntry
	pending []SearchResult
	seen    map[page.RID]bool
	done    bool
}

// Mark records the cursor's position for a savepoint. The cursor's
// signaling locks are retained from this moment until transaction end
// (releaseSignal already does this whenever the transaction has
// savepoints), so every stack pointer remains safe against node deletion.
func (c *Cursor) Mark() Mark {
	m := Mark{
		stack:   append([]stackEntry(nil), c.stack...),
		pending: append([]SearchResult(nil), c.pending...),
		seen:    make(map[page.RID]bool, len(c.seen)),
		done:    c.done,
	}
	for k, v := range c.seen {
		m.seen[k] = v
	}
	// Pin the signaling locks backing the recorded stack so they survive
	// the operations that would otherwise release them on visit.
	for _, se := range m.stack {
		c.o.pinSignal(se.pg)
	}
	return m
}

// Reset restores a position previously recorded with Mark (partial
// rollback to a savepoint re-opens the cursor where it stood).
func (c *Cursor) Reset(m Mark) {
	c.stack = append(c.stack[:0], m.stack...)
	c.pending = append(c.pending[:0], m.pending...)
	c.seen = make(map[page.RID]bool, len(m.seen))
	for k, v := range m.seen {
		c.seen[k] = v
	}
	c.done = m.done
	// Re-take signaling locks for restored stack entries (idempotent for
	// those still held).
	for _, se := range c.stack {
		c.o.signal(se.pg)
	}
}
