package gist_test

import (
	"fmt"
	"regexp"
	"strconv"
	"sync"
	"testing"

	"repro/internal/btree"
	"repro/internal/check"
	"repro/internal/gist"
	"repro/internal/latch"
	"repro/internal/page"
	"repro/internal/wal"
)

func fmtPred(b []byte) string {
	switch len(b) {
	case 8:
		return fmt.Sprintf("key %d", btree.DecodeKey(b))
	case 16:
		lo, hi := btree.DecodeRange(b)
		return fmt.Sprintf("[%d,%d]", lo, hi)
	default:
		return fmt.Sprintf("%x", b)
	}
}

func dumpNode(t *testing.T, e *env, pg page.PageID) {
	f, err := e.pool.Fetch(pg)
	if err != nil {
		t.Logf("node %d: fetch: %v", pg, err)
		return
	}
	defer e.pool.Unpin(f, false, 0)
	f.Latch.Acquire(latch.S)
	defer f.Latch.Release(latch.S)
	t.Logf("node %d level=%d nsn=%d right=%d:", pg, f.Page.Level(), f.Page.NSN(), f.Page.Rightlink())
	for i := 0; i < f.Page.NumSlots(); i++ {
		en, _ := f.Page.Entry(i)
		if f.Page.IsLeaf() {
			t.Logf("  slot %d: %s rid=%v", i, fmtPred(en.Pred), en.RID)
		} else {
			t.Logf("  slot %d: %s -> %d", i, fmtPred(en.Pred), en.Child)
		}
	}
}

// dumpParentsOf scans all internal nodes for entries pointing at child.
func dumpParentsOf(t *testing.T, e *env, child page.PageID) {
	for id := page.PageID(1); id < 600; id++ {
		f, err := e.pool.Fetch(id)
		if err != nil {
			continue
		}
		f.Latch.Acquire(latch.S)
		if !f.Page.IsLeaf() {
			if s := f.Page.FindChild(child); s >= 0 {
				en, _ := f.Page.Entry(s)
				t.Logf("parent of %d: node %d slot %d pred %s", child, id, s, fmtPred(en.Pred))
			}
		}
		f.Latch.Release(latch.S)
		e.pool.Unpin(f, false, 0)
	}
}

// dumpWALFor prints every structural record touching pg (as page or child),
// plus leaf-entry adds/marks on it and any Split whose moved set contains
// an entry that lives on pg at dump time.
func dumpWALFor(t *testing.T, e *env, pg page.PageID) {
	e.log.Scan(1, func(r *wal.Record) bool {
		touch := r.Pg == pg || r.Pg2 == pg
		if !touch {
			return true
		}
		if r.Type.Base() == wal.RecAddLeafEntry || r.Type.Base() == wal.RecMarkLeafEntry {
			if en, err := page.DecodeEntry(r.Body, true); err == nil {
				t.Logf("lsn %d txn %d %s page=%d {%s rid=%v} recNSN=%d", r.LSN, r.Txn, r.Type, r.Pg, fmtPred(en.Pred), en.RID, r.NSN)
			}
			return true
		}
		if r.Type.Base() == wal.RecSplit {
			for _, b := range r.Moved {
				if en, err := page.DecodeEntry(b, true); err == nil {
					t.Logf("lsn %d   moved: {%s rid=%v}", r.LSN, fmtPred(en.Pred), en.RID)
				}
			}
		}
		switch r.Type.Base() {
		case wal.RecSplit:
			t.Logf("lsn %d txn %d %s orig=%d new=%d moved=%d", r.LSN, r.Txn, r.Type, r.Pg, r.Pg2, len(r.Moved))
		case wal.RecParentEntryUpdate:
			t.Logf("lsn %d txn %d %s parent=%d child=%d newBP=%s", r.LSN, r.Txn, r.Type, r.Pg, r.Pg2, fmtPred(r.Body))
		case wal.RecInternalEntryUpdate:
			t.Logf("lsn %d txn %d %s page=%d child=%d new=%s old=%s", r.LSN, r.Txn, r.Type, r.Pg, r.Pg2, fmtPred(r.Body), fmtPred(r.OldBody))
		case wal.RecInternalEntryAdd, wal.RecInternalEntryDelete:
			en, err := page.DecodeEntry(r.Body, false)
			if err == nil {
				t.Logf("lsn %d txn %d %s page=%d entry{%s -> %d}", r.LSN, r.Txn, r.Type, r.Pg, fmtPred(en.Pred), en.Child)
			}
		case wal.RecGetPage, wal.RecRootChange:
			t.Logf("lsn %d txn %d %s pg=%d pg2=%d", r.LSN, r.Txn, r.Type, r.Pg, r.Pg2)
		}
		return true
	})
}

// TestHotLeafEvictionRegression is the permanent form of the diagnostic
// harness that caught the lost-split-via-eviction bug: a pool far smaller
// than the working set under heavy concurrent splitting. On failure it
// reconstructs the exact interleaving from the WAL for the violating node.
func TestHotLeafEvictionRegression(t *testing.T) {
	re := regexp.MustCompile(`node (\d+) entry (\d+)`)
	for attempt := 0; attempt < 4; attempt++ {
		e := newEnvWithPool(t, gist.Config{MaxEntries: 4}, 48)
		var wg sync.WaitGroup
		const workers, per = 8, 120
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					k := int64(w*per + i)
					tx, _ := e.tm.Begin()
					rid, _ := e.heap.Insert(tx, []byte("hot"))
					if err := e.tree.Insert(tx, btree.EncodeKey(k), rid); err != nil {
						t.Errorf("insert %d: %v", k, err)
						tx.Abort()
						e.tree.TxnFinished(tx.ID())
						return
					}
					tx.Commit()
					e.tree.TxnFinished(tx.ID())
				}
			}(w)
		}
		wg.Wait()
		c := &check.Checker{Pool: e.pool, Ops: btree.Ops{}, Anchor: e.tree.Anchor(), MaxNSN: e.log.LastLSN()}
		if _, err := c.Check(); err != nil {
			t.Logf("attempt %d: %v", attempt, err)
			m := re.FindStringSubmatch(err.Error())
			if m != nil {
				id, _ := strconv.Atoi(m[1])
				dumpNode(t, e, page.PageID(id))
				dumpParentsOf(t, e, page.PageID(id))
				dumpWALFor(t, e, page.PageID(id))
			}
			t.FailNow()
		}
	}
}
