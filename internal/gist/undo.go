package gist

import (
	"fmt"

	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/txn"
	"repro/internal/wal"
)

// registerUndo installs the tree's rollback handlers. Content-changing
// records (Add-Leaf-Entry, Mark-Leaf-Entry) are undone logically — the
// entry is re-located by walking rightlinks from the recorded page, because
// splits may have moved it since (§9.2). Structure-modification records are
// undone page-oriented; at runtime they are only ever reached when an SMO
// failed mid-flight (a completed SMO hides behind its dummy CLR), and at
// restart when a crash interrupted one.
func (t *Tree) registerUndo() {
	tm := t.tm
	tm.RegisterUndo(wal.RecAddLeafEntry, t.undoAddLeafEntry)
	tm.RegisterUndo(wal.RecMarkLeafEntry, t.undoMarkLeafEntry)
	tm.RegisterUndo(wal.RecSplit, t.undoSplit)
	tm.RegisterUndo(wal.RecInternalEntryAdd, t.undoInternalEntryAdd)
	tm.RegisterUndo(wal.RecInternalEntryUpdate, t.undoInternalEntryUpdate)
	tm.RegisterUndo(wal.RecInternalEntryDelete, t.undoInternalEntryDelete)
	tm.RegisterUndo(wal.RecGetPage, t.undoGetPage)
	tm.RegisterUndo(wal.RecFreePage, t.undoFreePage)
	tm.RegisterUndo(wal.RecRootChange, t.undoRootChange)
	// Redo-only record types (Table 1): undo is a no-op.
	noop := func(*wal.Record, *txn.Txn) error { return nil }
	tm.RegisterUndo(wal.RecParentEntryUpdate, noop)
	tm.RegisterUndo(wal.RecGarbageCollection, noop)
}

// withPageX fetches and X-latches a page, runs fn, and releases. fn returns
// the LSN to stamp (0 for no modification).
func (t *Tree) withPageX(pg page.PageID, fn func(p *page.Page) (page.LSN, error)) error {
	f, err := t.pool.Fetch(pg)
	if err != nil {
		return err
	}
	f.Latch.Acquire(latch.X)
	lsn, ferr := fn(&f.Page)
	if lsn != 0 {
		f.Page.SetLSN(lsn)
	}
	f.Latch.Release(latch.X)
	t.pool.Unpin(f, lsn != 0, lsn)
	return ferr
}

// locateEntryForUndo walks the rightlink chain starting at the page
// recorded in the log until it finds the leaf currently holding the entry
// with the given RID. Between the original operation and the rollback the
// tree may have split arbitrarily, so the chain — reachable precisely
// because the operation's signaling lock kept it alive (§7.2) — is the only
// reliable path back to the entry.
func (t *Tree) locateEntryForUndo(start page.PageID, rid page.RID, pred []byte, deleted bool, fn func(p *page.Page, slot int) (page.LSN, error)) error {
	cur := start
	for cur != page.InvalidPage {
		found := false
		var next page.PageID
		err := t.withPageX(cur, func(p *page.Page) (page.LSN, error) {
			next = p.Rightlink()
			if slot := p.FindEntry(rid, pred, deleted); slot >= 0 {
				found = true
				return fn(p, slot)
			}
			return 0, nil
		})
		if err != nil {
			return err
		}
		if found {
			return nil
		}
		cur = next
	}
	return fmt.Errorf("gist: undo could not locate entry %v from page %d", rid, start)
}

// undoAddLeafEntry logically undoes a key insertion: locate the leaf now
// holding the entry and remove it physically. No BP shrinking or node
// deletion is attempted — mandatory during restart (§9.2), and harmless to
// skip at runtime (a loose BP is always safe).
func (t *Tree) undoAddLeafEntry(r *wal.Record, tx *txn.Txn) error {
	e, err := page.DecodeEntry(r.Body, true)
	if err != nil {
		return err
	}
	return t.locateEntryForUndo(r.Pg, e.RID, e.Pred, false, func(p *page.Page, slot int) (page.LSN, error) {
		if err := p.DeleteSlot(slot); err != nil {
			return 0, err
		}
		lsn := tx.LogCLR(&wal.Record{
			Type: wal.RecAddLeafEntry,
			Pg:   p.ID(),
			RID:  e.RID,
			Body: r.Body,
		}, r.PrevLSN)
		return lsn, nil
	})
}

// undoMarkLeafEntry logically undoes a logical deletion: locate the entry
// and clear its deleted mark.
func (t *Tree) undoMarkLeafEntry(r *wal.Record, tx *txn.Txn) error {
	e, err := page.DecodeEntry(r.Body, true)
	if err != nil {
		return err
	}
	return t.locateEntryForUndo(r.Pg, e.RID, e.Pred, true, func(p *page.Page, slot int) (page.LSN, error) {
		if err := p.UnmarkDeleted(slot); err != nil {
			return 0, err
		}
		t.Stats.Unmarks.Add(1)
		lsn := tx.LogCLR(&wal.Record{
			Type: wal.RecMarkLeafEntry,
			Pg:   p.ID(),
			RID:  e.RID,
			Body: r.Body,
		}, r.PrevLSN)
		return lsn, nil
	})
}

// undoSplit reverses an incomplete node split: the moved entries return to
// the original page and its NSN and rightlink are restored (Table 1). The
// new page needs no content action (its Get-Page record's undo frees it).
func (t *Tree) undoSplit(r *wal.Record, tx *txn.Txn) error {
	return t.withPageX(r.Pg, func(p *page.Page) (page.LSN, error) {
		for _, b := range r.Moved {
			if _, err := p.InsertBytes(b); err != nil {
				return 0, fmt.Errorf("gist: undo split reinsert: %w", err)
			}
		}
		p.SetNSN(r.OldNSN)
		p.SetRightlink(r.OldRight)
		lsn := tx.LogCLR(&wal.Record{
			Type:     wal.RecSplit,
			Pg:       r.Pg,
			Pg2:      r.Pg2,
			Level:    r.Level,
			OldNSN:   r.OldNSN,
			OldRight: r.OldRight,
			Moved:    r.Moved,
		}, r.PrevLSN)
		return lsn, nil
	})
}

// undoInternalEntryAdd removes the added parent entry (matched by content).
func (t *Tree) undoInternalEntryAdd(r *wal.Record, tx *txn.Txn) error {
	return t.withPageX(r.Pg, func(p *page.Page) (page.LSN, error) {
		if slot := findBody(p, r.Body); slot >= 0 {
			if err := p.DeleteSlot(slot); err != nil {
				return 0, err
			}
		}
		lsn := tx.LogCLR(&wal.Record{Type: wal.RecInternalEntryAdd, Pg: r.Pg, Body: r.Body}, r.PrevLSN)
		return lsn, nil
	})
}

// undoInternalEntryUpdate restores the old bounding predicate.
func (t *Tree) undoInternalEntryUpdate(r *wal.Record, tx *txn.Txn) error {
	return t.withPageX(r.Pg, func(p *page.Page) (page.LSN, error) {
		if slot := p.FindChild(r.Pg2); slot >= 0 {
			if err := p.ReplaceEntry(slot, page.Entry{Pred: r.OldBody, Child: r.Pg2}); err != nil {
				return 0, err
			}
		}
		lsn := tx.LogCLR(&wal.Record{
			Type:    wal.RecInternalEntryUpdate,
			Pg:      r.Pg,
			Pg2:     r.Pg2,
			Body:    r.OldBody,
			OldBody: r.Body,
		}, r.PrevLSN)
		return lsn, nil
	})
}

// undoInternalEntryDelete reinstalls the removed parent entry.
func (t *Tree) undoInternalEntryDelete(r *wal.Record, tx *txn.Txn) error {
	return t.withPageX(r.Pg, func(p *page.Page) (page.LSN, error) {
		if findBody(p, r.Body) < 0 {
			if _, err := p.InsertBytes(r.Body); err != nil {
				return 0, err
			}
		}
		lsn := tx.LogCLR(&wal.Record{Type: wal.RecInternalEntryDelete, Pg: r.Pg, Body: r.Body}, r.PrevLSN)
		return lsn, nil
	})
}

// undoGetPage marks an allocated page available again. Physical reuse is
// quarantined behind the drain, exactly as for node deletion.
func (t *Tree) undoGetPage(r *wal.Record, tx *txn.Txn) error {
	err := t.withPageX(r.Pg, func(p *page.Page) (page.LSN, error) {
		p.SetFlags(p.Flags() | page.FlagDeallocated)
		lsn := tx.LogCLR(&wal.Record{Type: wal.RecGetPage, Pg: r.Pg, Level: r.Level}, r.PrevLSN)
		return lsn, nil
	})
	if err != nil {
		return err
	}
	if t.locks.TryLock(tx.ID(), lock.ForNode(r.Pg), lock.X) {
		t.locks.Unlock(tx.ID(), lock.ForNode(r.Pg))
		t.quarantinePage(r.Pg)
	} else {
		t.quarantinePage(r.Pg)
	}
	return nil
}

// undoFreePage marks a freed page unavailable (allocated) again and
// reconstructs its empty-node image (identity, level, NSN, rightlink) from
// the Free-Page record, since the deallocation may have discarded it.
func (t *Tree) undoFreePage(r *wal.Record, tx *txn.Txn) error {
	if err := t.pool.EnsureAllocated(r.Pg); err != nil {
		return err
	}
	return t.withPageX(r.Pg, func(p *page.Page) (page.LSN, error) {
		p.Init(r.Pg, r.Level)
		p.SetNSN(r.OldNSN)
		p.SetRightlink(r.OldRight)
		lsn := tx.LogCLR(&wal.Record{
			Type:     wal.RecFreePage,
			Pg:       r.Pg,
			Level:    r.Level,
			OldNSN:   r.OldNSN,
			OldRight: r.OldRight,
		}, r.PrevLSN)
		return lsn, nil
	})
}

// undoRootChange swings the anchor back to the previous root.
func (t *Tree) undoRootChange(r *wal.Record, tx *txn.Txn) error {
	return t.withPageX(r.Pg, func(p *page.Page) (page.LSN, error) {
		if err := p.EnsureSlot(0, anchorBody(r.OldRight)); err != nil {
			return 0, err
		}
		lsn := tx.LogCLR(&wal.Record{
			Type:     wal.RecRootChange,
			Pg:       r.Pg,
			Pg2:      r.OldRight,
			OldRight: r.Pg2,
		}, r.PrevLSN)
		return lsn, nil
	})
}

// findBody returns the slot holding exactly the given bytes, or -1.
func findBody(p *page.Page, body []byte) int {
	for i := 0; i < p.NumSlots(); i++ {
		b, err := p.SlotBytes(i)
		if err != nil {
			continue
		}
		if string(b) == string(body) {
			return i
		}
	}
	return -1
}

// DrainQuarantine force-releases quarantined pages; callable only when no
// tree operations are active (e.g. at the end of restart recovery).
func (t *Tree) DrainQuarantine() {
	t.epochMu.Lock()
	if len(t.activeOps) != 0 {
		t.epochMu.Unlock()
		return
	}
	pending := t.quarantine
	t.quarantine = nil
	t.epochMu.Unlock()
	for _, pf := range pending {
		_ = t.pool.Deallocate(pf.pg)
	}
}
