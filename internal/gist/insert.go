package gist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/buffer"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/txn"
	"repro/internal/wal"
)

// pathEntry is one ancestor on the descent path. The frame stays pinned for
// the whole operation so that the ascent (split propagation and BP updates)
// revisits buffer-resident pages and never performs I/O while holding a
// child latch.
type pathEntry struct {
	pg page.PageID
	f  *buffer.Frame
}

// Insert adds a (key, RID) pair to the tree, implementing the phases of §6:
// the data record is X-locked (phase 1, normally already done by the caller
// before building the record — the lock is re-entrant); a single
// minimal-penalty path is traversed to a leaf (2); the leaf is split if
// necessary, recursively (3); bounding predicates are propagated up with
// predicate percolation (4); the entry is installed (5); and the insert
// blocks on conflicting search predicates attached to the leaf (6).
func (t *Tree) Insert(tx *txn.Txn, key []byte, rid page.RID) error {
	return t.InsertCtx(nil, tx, key, rid)
}

// InsertCtx is Insert honoring ctx at every node-visit boundary and at
// every blocking wait. Cancellation is only observed OUTSIDE nested top
// actions: a split in progress always completes (the tree stays
// structurally sound), and any leaf entry already installed is rolled back
// by the caller through the transaction's logical undo. A nil ctx never
// cancels.
func (t *Tree) InsertCtx(ctx context.Context, tx *txn.Txn, key []byte, rid page.RID) error {
	t.Stats.Inserts.Add(1)
	o := t.opEnterCtx(ctx, tx)
	o.track("insert")
	defer o.exit()
	if err := tx.LockCtx(o.context(), lock.ForRID(rid), lock.X); err != nil {
		return wrapLockErr(err)
	}
	return o.insert(key, rid)
}

func (o *op) insert(key []byte, rid page.RID) error {
	t := o.t
	leafF, stack, err := o.locateLeaf(key)
	if err != nil {
		return err
	}
	defer o.releasePath(stack)

	entry := page.Entry{Pred: key, RID: rid}
	if t.needsSplit(&leafF.Page, entry.EncodedLen(true)) {
		// Passing-through garbage collection (§7.1) may free space and
		// avoid the split entirely.
		o.gcLeafLocked(leafF, stack)
		if t.needsSplit(&leafF.Page, entry.EncodedLen(true)) {
			newLeaf, serr := o.splitSMO(leafF, stack, key)
			if serr != nil {
				o.unlatchPage(leafF, latch.X)
				t.pool.Unpin(leafF, false, 0)
				return serr
			}
			leafF = newLeaf
		}
	}

	// Phase 4: expand ancestors' BPs so the root-to-leaf path covers the
	// new key, percolating predicates downward as BPs grow.
	newBP := t.ops.Union(t.computedBP(&leafF.Page), key)
	if err := o.propagateBP(leafF, newBP, stack); err != nil {
		o.unlatchPage(leafF, latch.X)
		t.pool.Unpin(leafF, false, 0)
		return err
	}

	// Phase 5: install the leaf entry, logged in the transaction's
	// backchain (content change, not a structure modification).
	if _, err := leafF.Page.InsertEntry(entry); err != nil {
		o.unlatchPage(leafF, latch.X)
		t.pool.Unpin(leafF, false, 0)
		return fmt.Errorf("gist: leaf insert after split: %w", err)
	}
	lsn := o.tx.Log(&wal.Record{
		Type: wal.RecAddLeafEntry,
		Pg:   leafF.ID(),
		NSN:  leafF.Page.NSN(),
		Body: entry.Encode(true),
	})
	leafF.Page.SetLSN(lsn)

	// Phase 6: leave our key as an insert predicate (fair FIFO queuing,
	// §10.3) and collect the conflicting search predicates ahead of it.
	insPred := t.preds.New(o.tx.ID(), predicate.Insert, append([]byte(nil), key...))
	ahead := t.preds.Attach(insPred, leafF.ID(), t.keyConflictsWith(key))

	// The signaling lock on the target leaf is retained until the end of
	// the transaction: logical undo may need to re-walk this leaf's
	// rightlink chain (§7.2).
	o.pinSignal(leafF.ID())

	o.unlatchPage(leafF, latch.X)
	t.pool.Unpin(leafF, true, lsn)

	if len(ahead) > 0 {
		if err := o.blockOnPredicates(ahead); err != nil {
			return err
		}
	}
	return nil
}

// wrapLockErr converts a deadlock denial into ErrAborted so callers know to
// abort the transaction.
func wrapLockErr(err error) error {
	if errors.Is(err, lock.ErrDeadlock) {
		return fmt.Errorf("%w: %v", ErrAborted, err)
	}
	return err
}

// releasePath unpins the frames kept by locateLeaf.
func (o *op) releasePath(stack []pathEntry) {
	for _, pe := range stack {
		o.t.pool.Unpin(pe.f, false, 0)
	}
}

// locateLeaf descends from the root along minimal-penalty branches to the
// target leaf, without latch coupling; missed splits are compensated by
// evaluating the whole rightlink chain delimited by the memorized counter
// value (Figure 4's locateLeaf). The returned leaf frame is X-latched and
// pinned; the returned stack holds every ancestor pinned (not latched).
func (o *op) locateLeaf(key []byte) (*buffer.Frame, []pathEntry, error) {
	t := o.t
	// Memorize the counter BEFORE reading the root pointer: a root split
	// increments the counter while holding the anchor exclusively, so a
	// reader that obtained the old root must have memorized a value
	// below the split's NSN and will chase the old root's rightlink.
	curNSN := t.counter()
	root, err := o.optimisticRootID()
	if err != nil {
		return nil, nil, err
	}
	var stack []pathEntry
	cur := root
	o.signal(cur)
	for {
		// Node-visit boundary: nothing latched, no NTA open; the path pins
		// are released by the caller's releasePath on error return.
		if err := o.check(); err != nil {
			o.releasePath(stack)
			return nil, nil, err
		}
		f, err := o.fetch(cur)
		if err != nil {
			o.releasePath(stack)
			return nil, nil, fmt.Errorf("gist: locate fetch %d: %w", cur, err)
		}
		// Level is immutable for a page id, so reading it before
		// choosing the latch mode is safe.
		leaf := f.Page.IsLeaf()

		if !leaf && t.cfg.OptimisticReads {
			if child, next, ok := o.descendOptimistic(f, cur, curNSN, key); ok {
				stack = append(stack, pathEntry{pg: cur, f: f}) // stays pinned
				cur, curNSN = child, next
				continue
			}
			// Missed split, empty node, or persistent validation failure:
			// redo this visit under the shared latch (frame still pinned).
		}

		mode := latch.S
		if leaf {
			mode = latch.X
		}
		o.latchPage(f, mode)

		if f.Page.NSN() > curNSN {
			// Missed split(s): pick the minimal-penalty node in the
			// rightlink chain delimited by the memorized value.
			best, err := o.bestInChain(f, mode, curNSN, key)
			if err != nil {
				o.releasePath(stack)
				return nil, nil, err
			}
			f = best
		}

		if f.Page.IsLeaf() {
			return f, stack, nil
		}

		// Choose the minimal-penalty branch.
		bestSlot, bestPenalty := -1, math.Inf(1)
		for i := 0; i < f.Page.NumSlots(); i++ {
			e, err := f.Page.Entry(i)
			if err != nil {
				continue
			}
			if p := t.ops.Penalty(e.Pred, key); p < bestPenalty {
				bestPenalty, bestSlot = p, i
			}
		}
		if bestSlot < 0 {
			o.unlatchPage(f, mode)
			t.pool.Unpin(f, false, 0)
			o.releasePath(stack)
			return nil, nil, fmt.Errorf("gist: internal node %d has no entries", f.ID())
		}
		child := f.Page.MustEntry(bestSlot).Child
		// Memorize the counter while still latched (Figure 4); the
		// §10.1 optimization uses the node's own LSN instead.
		next := t.counter()
		if t.cfg.ParentLSNOpt {
			next = f.Page.LSN()
		}
		o.signal(child)
		o.unlatchPage(f, mode)
		stack = append(stack, pathEntry{pg: f.ID(), f: f}) // stays pinned
		cur, curNSN = child, next
	}
}

// bestInChain walks the rightlink chain starting at the latched frame f,
// delimited by the memorized NSN, and returns the minimal-penalty node
// latched in the given mode. All other chain nodes are unlatched and
// unpinned. Because the key space need not be partitioned, inserting under
// any chain node is correct; penalty only steers placement quality.
func (o *op) bestInChain(f *buffer.Frame, mode latch.Mode, memorized page.LSN, key []byte) (*buffer.Frame, error) {
	t := o.t
	type cand struct {
		pg      page.PageID
		penalty float64
	}
	best := cand{pg: f.ID(), penalty: t.chainPenalty(&f.Page, key)}
	next := f.Page.Rightlink()
	stop := f.Page.NSN() <= memorized
	o.unlatchPage(f, mode)
	t.pool.Unpin(f, false, 0)

	for !stop && next != page.InvalidPage {
		// Node-visit boundary of the rightlink chase (bestInChain runs
		// outside any NTA, holding no latch here).
		if err := o.check(); err != nil {
			return nil, err
		}
		o.signal(next)
		g, err := o.fetch(next)
		if err != nil {
			return nil, fmt.Errorf("gist: chain fetch %d: %w", next, err)
		}
		o.latchPage(g, latch.S)
		t.Stats.RightlinkChases.Add(1)
		if p := t.chainPenalty(&g.Page, key); p < best.penalty {
			best = cand{pg: g.ID(), penalty: p}
		}
		stop = g.Page.NSN() <= memorized
		next = g.Page.Rightlink()
		o.unlatchPage(g, latch.S)
		t.pool.Unpin(g, false, 0)
	}

	// Relatch the winner. It may have split again in the meantime; that
	// is harmless for placement (any chain node is a correct target).
	w, err := o.fetch(best.pg)
	if err != nil {
		return nil, err
	}
	o.latchPage(w, mode)
	return w, nil
}

// chainPenalty scores a whole node as an insertion target: the cost of
// expanding the node's computed BP to cover the key.
func (t *Tree) chainPenalty(p *page.Page, key []byte) float64 {
	bp := t.computedBP(p)
	if bp == nil {
		return 0 // empty node accepts anything for free
	}
	return t.ops.Penalty(bp, key)
}

// ascendToParent locates and X-latches the node currently holding the
// parent entry of child: the deepest stack entry, corrected for splits by
// walking rightlinks until FindChild succeeds (§6: "If a parent node does
// not contain the child's pointer anymore, it must have been split and the
// search for the child's pointer is continued in the right sibling"). When
// the stack is empty the child was the traversal root: either it still is
// the root (returns nil) or the tree has grown above it and a full
// parent search runs. The returned frame is pinned iff ownPin is true (a
// stack frame is pinned by the path and must not be double-unpinned).
func (o *op) ascendToParent(stack []pathEntry, child page.PageID, childLevel uint16) (f *buffer.Frame, slot int, ownPin bool, err error) {
	t := o.t
	if len(stack) == 0 {
		return o.findParentSlow(child, childLevel)
	}
	top := stack[len(stack)-1]
	f = top.f
	o.latchPage(f, latch.X)
	ownPin = false
	for {
		if s := f.Page.FindChild(child); s >= 0 {
			return f, s, ownPin, nil
		}
		next := f.Page.Rightlink()
		o.unlatchPage(f, latch.X)
		if ownPin {
			t.pool.Unpin(f, false, 0)
		}
		if next == page.InvalidPage {
			// The parent chain ran out: the child's entry must
			// have moved in a way the chain cannot explain (e.g.
			// the child was the old root and the chain start was
			// stale). Fall back to the full search.
			return o.findParentSlow(child, childLevel)
		}
		o.signal(next)
		g, ferr := o.fetch(next)
		if ferr != nil {
			return nil, 0, false, ferr
		}
		t.Stats.RightlinkChases.Add(1)
		f = g
		ownPin = true
		o.latchPage(f, latch.X)
	}
}

// findParentSlow searches the whole tree for the node holding the parent
// entry of child. It is only needed when a root split raced past an
// in-flight operation whose stack predates the new root. Returns a nil
// frame if child is the current root (it has no parent entry).
func (o *op) findParentSlow(child page.PageID, childLevel uint16) (*buffer.Frame, int, bool, error) {
	// Retry: the level-wise scan can miss a sibling created by a racing
	// split after its left neighbor was visited. The downlink always
	// exists (split SMOs install it before releasing latches), so a
	// fresh scan eventually finds it.
	for attempt := 0; ; attempt++ {
		root, err := o.t.rootID()
		if err != nil {
			return nil, 0, false, err
		}
		f, slot, ownPin, err := o.findParentSlowFrom(root, child, childLevel)
		if err == nil || attempt >= 50 {
			return f, slot, ownPin, err
		}
		runtime.Gosched()
	}
}

// findParentSlowFrom is findParentSlow with the root pointer supplied by
// the caller (who may be serializing root changes via the anchor latch).
//
// The caller is an ascending operation that holds X latches on a path of
// nodes at levels <= childLevel. The parent entry for child can only live
// at level childLevel+1, so the scan latches X only there and S above;
// nodes at or below childLevel are never latched — re-latching one the
// caller holds would self-deadlock.
func (o *op) findParentSlowFrom(root, child page.PageID, childLevel uint16) (*buffer.Frame, int, bool, error) {
	t := o.t
	if root == child {
		return nil, 0, false, nil
	}
	parentLevel := childLevel + 1
	frontier := []page.PageID{root}
	visited := map[page.PageID]bool{root: true, child: true}
	for len(frontier) > 0 {
		pg := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		f, err := o.fetch(pg)
		if err != nil {
			return nil, 0, false, err
		}
		lvl := f.Page.Level() // immutable per page id
		switch {
		case lvl < parentLevel:
			// Below the parent level (possibly held by the caller):
			// never latch, never expand.
			t.pool.Unpin(f, false, 0)
			continue
		case lvl == parentLevel:
			o.latchPage(f, latch.X)
			if s := f.Page.FindChild(child); s >= 0 {
				return f, s, true, nil
			}
			if rl := f.Page.Rightlink(); rl != page.InvalidPage && !visited[rl] {
				visited[rl] = true
				frontier = append(frontier, rl)
			}
			o.unlatchPage(f, latch.X)
		default:
			o.latchPage(f, latch.S)
			if rl := f.Page.Rightlink(); rl != page.InvalidPage && !visited[rl] {
				visited[rl] = true
				frontier = append(frontier, rl)
			}
			for i := 0; i < f.Page.NumSlots(); i++ {
				e, err := f.Page.Entry(i)
				if err != nil {
					continue
				}
				if !visited[e.Child] {
					visited[e.Child] = true
					frontier = append(frontier, e.Child)
				}
			}
			o.unlatchPage(f, latch.S)
		}
		t.pool.Unpin(f, false, 0)
	}
	return nil, 0, false, fmt.Errorf("gist: parent of node %d not found", child)
}

// splitSMO splits the latched node (recursively splitting ancestors as
// needed) as one atomic structure modification, then returns the better
// insertion target for key between the original node and the new sibling,
// X-latched. The loser is unlatched and unpinned.
func (o *op) splitSMO(f *buffer.Frame, stack []pathEntry, key []byte) (*buffer.Frame, error) {
	t := o.t
	if err := o.tx.BeginNTA(); err != nil {
		return nil, err
	}
	newF, err := o.splitNode(f, stack)
	if err != nil {
		// The NTA's records (if any) will be undone if the
		// transaction aborts; close the bracket either way.
		o.tx.EndNTA()
		return nil, err
	}
	o.tx.EndNTA()
	t.Stats.Splits.Add(1)

	// Choose the cheaper target for this key.
	keep, drop := f, newF
	if t.chainPenalty(&newF.Page, key) < t.chainPenalty(&f.Page, key) {
		keep, drop = newF, f
	}
	o.unlatchPage(drop, latch.X)
	t.pool.Unpin(drop, false, 0)
	return keep, nil
}

// splitNode is the recursive body of the split SMO (Figure 4's splitNode).
// Faithful to the paper, the PARENT is latched before the split is
// performed and the counter incremented: this ordering is what makes
// global-counter memorization sound. A traverser that reads a parent image
// not yet reflecting this split must have read the counter before the
// Split record was appended (the parent stays X-latched from before the
// append until the downlink is installed), so the child's new NSN exceeds
// the memorized value and the traverser chases the rightlink.
//
// Both f and the returned sibling frame are X-latched and pinned on return.
func (o *op) splitNode(f *buffer.Frame, stack []pathEntry) (*buffer.Frame, error) {
	t := o.t

	// Phase 1: resolve and latch the parent (or the anchor for a root
	// split) before any logging.
	var (
		parentF       *buffer.Frame
		slot          int
		ownPin        bool
		anchorLatched bool
		isRoot        bool
	)
	if len(stack) > 0 {
		var err error
		parentF, slot, ownPin, err = o.ascendToParent(stack, f.ID(), f.Page.Level())
		if err != nil {
			return nil, err
		}
	}
	if parentF == nil {
		// f was a traversal root (or the stack went stale). Either it
		// still is the root — serialize via the anchor latch, held
		// through the whole root split — or the tree has grown above
		// it and the true parent is found by full search. The anchor
		// holder never waits on tree-node latches (it only touches f,
		// the sibling and freshly allocated private pages), so the
		// anchor-before-node acquisition cannot deadlock.
		o.latchPage(t.anchorF, latch.X)
		root, err := anchorRootOf(&t.anchorF.Page)
		if err != nil {
			o.unlatchPage(t.anchorF, latch.X)
			return nil, err
		}
		if root == f.ID() {
			isRoot = true
			anchorLatched = true
		} else {
			o.unlatchPage(t.anchorF, latch.X)
			parentF, slot, ownPin, err = o.findParentSlow(f.ID(), f.Page.Level())
			if err != nil {
				return nil, err
			}
			if parentF == nil {
				return nil, fmt.Errorf("gist: parent of split node %d not found", f.ID())
			}
		}
	}
	releaseParent := func() {
		if anchorLatched {
			o.unlatchPage(t.anchorF, latch.X)
			anchorLatched = false
		}
		if parentF != nil {
			o.unlatchPage(parentF, latch.X)
			if ownPin {
				t.pool.Unpin(parentF, false, 0)
			}
			parentF = nil
		}
	}

	var oldPred []byte
	if parentF != nil {
		oldPred = append([]byte(nil), parentF.Page.MustEntry(slot).Pred...)
	}

	// Phase 2: create the sibling and log the split, with the parent
	// exclusively latched.
	leaf := f.Page.IsLeaf()
	newF, err := t.pool.NewPage(f.Page.Level())
	if err != nil {
		releaseParent()
		return nil, err
	}
	o.latchPage(newF, latch.X)
	releaseNew := func() {
		o.unlatchPage(newF, latch.X)
		t.pool.Unpin(newF, true, 0)
	}
	lsnGet := o.tx.Log(&wal.Record{Type: wal.RecGetPage, Pg: newF.ID(), Level: f.Page.Level()})
	newF.Page.SetLSN(lsnGet)
	// First record on the sibling: pin its recLSN here, not at the later
	// Split-record MarkDirty, so a checkpoint's redo point never starts
	// past the page's allocation.
	t.pool.MarkDirty(newF, lsnGet)

	n := f.Page.NumSlots()
	preds := make([][]byte, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		b, err := f.Page.SlotBytes(i)
		if err != nil {
			releaseNew()
			releaseParent()
			return nil, fmt.Errorf("gist: split read slot %d of %d: %w", i, f.ID(), err)
		}
		bodies[i] = append([]byte(nil), b...)
		e, err := page.DecodeEntry(bodies[i], leaf)
		if err != nil {
			releaseNew()
			releaseParent()
			return nil, err
		}
		preds[i] = e.Pred
	}
	stayIdx := t.ops.PickSplit(preds)
	stay := make(map[int]bool, len(stayIdx))
	for _, i := range stayIdx {
		stay[i] = true
	}
	if len(stay) == 0 || len(stay) >= n {
		releaseNew()
		releaseParent()
		return nil, fmt.Errorf("gist: PickSplit returned %d of %d entries", len(stay), n)
	}
	var moved [][]byte
	for i := 0; i < n; i++ {
		if !stay[i] {
			moved = append(moved, bodies[i])
		}
	}

	// One Split log record covers both pages (Table 1); its LSN is the
	// original node's new NSN — the global counter increments implicitly
	// (§10.1).
	rec := &wal.Record{
		Type:     wal.RecSplit,
		Pg:       f.ID(),
		Pg2:      newF.ID(),
		Level:    f.Page.Level(),
		OldNSN:   f.Page.NSN(),
		OldRight: f.Page.Rightlink(),
		Moved:    moved,
	}
	// Log sets rec.LSN itself (inside Append, before the record is
	// published); assigning the returned LSN back here would be a racy
	// duplicate store — a replication shipper may already be encoding the
	// sealed record from the log tail.
	o.tx.Log(rec)
	applySplit(&f.Page, &newF.Page, rec)
	// Both page images changed; mark them dirty HERE, not at unpin time:
	// callers unpin the side they did not insert into with dirty=false,
	// and a clean-before-split original would otherwise lose the split
	// to eviction (the in-memory image discarded, the stale pre-split
	// disk image reloaded) — a divergence the WAL cannot repair because
	// the pageLSN on disk predates the Split record.
	t.pool.MarkDirty(f, rec.LSN)
	t.pool.MarkDirty(newF, rec.LSN)

	// Replicate predicate attachments consistent with the new node's BP
	// (§4.3 case 1) and the signaling locks (§7.2).
	newBP := t.computedBP(&newF.Page)
	t.preds.ReplicateOnSplit(f.ID(), newF.ID(), func(p *predicate.Predicate) bool {
		if newBP == nil {
			return true
		}
		if p.Kind == predicate.Search {
			return t.ops.Consistent(newBP, p.Data)
		}
		return true // insert predicates: keep conservatively
	})
	t.locks.CopyHolders(lock.ForNode(f.ID()), lock.ForNode(newF.ID()))

	// Phase 3: install the downlink (or grow the tree).
	if isRoot {
		if err := o.growRoot(f, newF); err != nil {
			releaseNew()
			releaseParent()
			return nil, err
		}
		releaseParent() // drops the anchor latch
		return newF, nil
	}

	origBP := t.computedBP(&f.Page)
	newEntry := page.Entry{Pred: newBP, Child: newF.ID()}
	if t.needsSplit(&parentF.Page, newEntry.EncodedLen(false)) {
		// Recursive parent split (the grandparent is latched inside,
		// before the parent's own counter increment). The parent
		// keeps our child's entry or hands it to the new sibling.
		var upStack []pathEntry
		if len(stack) > 0 {
			upStack = stack[:len(stack)-1]
		}
		parentSib, err := o.splitNode(parentF, upStack)
		if err != nil {
			releaseNew()
			releaseParent()
			return nil, err
		}
		t.Stats.Splits.Add(1)
		target, targetSlot := parentF, parentF.Page.FindChild(f.ID())
		if targetSlot < 0 {
			target, targetSlot = parentSib, parentSib.Page.FindChild(f.ID())
		}
		if targetSlot < 0 {
			o.unlatchPage(parentSib, latch.X)
			t.pool.Unpin(parentSib, false, 0)
			releaseNew()
			releaseParent()
			return nil, fmt.Errorf("gist: child %d lost during parent split", f.ID())
		}
		err = o.writeParentUpdates(target, targetSlot, f.ID(), oldPred, origBP, newEntry)
		if err == nil {
			// The recursive split tightened the grandparent's
			// entry before the sibling entry existed in target;
			// re-expand the ancestors (inside this same NTA) so
			// the new entry's predicate stays covered.
			err = o.expandBPInNTA(target, t.computedBP(&target.Page), upStack)
		}
		o.unlatchPage(parentSib, latch.X)
		t.pool.Unpin(parentSib, false, 0)
		releaseParent()
		if err != nil {
			releaseNew()
			return nil, err
		}
		return newF, nil
	}
	if err := o.writeParentUpdates(parentF, slot, f.ID(), oldPred, origBP, newEntry); err != nil {
		releaseNew()
		releaseParent()
		return nil, err
	}
	releaseParent()
	return newF, nil
}

// growRoot installs a new root above the just-split pair while the anchor
// is exclusively latched (root moves; stale traversals compensate via the
// old root's rightlink).
func (o *op) growRoot(f, newF *buffer.Frame) error {
	t := o.t
	rootF, err := t.pool.NewPage(f.Page.Level() + 1)
	if err != nil {
		return err
	}
	o.latchPage(rootF, latch.X)
	lsn := o.tx.Log(&wal.Record{Type: wal.RecGetPage, Pg: rootF.ID(), Level: f.Page.Level() + 1})
	rootF.Page.SetLSN(lsn)
	// recLSN must be the page's FIRST record, not the Root-Change the
	// final unpin carries: a checkpoint between would otherwise tell
	// restart redo to start past the Get-Page, leaving a never-flushed
	// root unformatted while redo no-op-stamps later records onto it.
	t.pool.MarkDirty(rootF, lsn)
	for _, pair := range []struct {
		bp    []byte
		child page.PageID
	}{
		{t.computedBP(&f.Page), f.ID()},
		{t.computedBP(&newF.Page), newF.ID()},
	} {
		e := page.Entry{Pred: pair.bp, Child: pair.child}
		body := e.Encode(false)
		lsn = o.tx.Log(&wal.Record{Type: wal.RecInternalEntryAdd, Pg: rootF.ID(), Body: body})
		if _, err := rootF.Page.InsertBytes(body); err != nil {
			o.unlatchPage(rootF, latch.X)
			t.pool.Unpin(rootF, false, 0)
			return err
		}
		rootF.Page.SetLSN(lsn)
	}
	lsn = o.tx.Log(&wal.Record{Type: wal.RecRootChange, Pg: t.anchor, Pg2: rootF.ID(), OldRight: f.ID()})
	if err := t.anchorF.Page.ReplaceBytes(0, anchorBody(rootF.ID())); err != nil {
		o.unlatchPage(rootF, latch.X)
		t.pool.Unpin(rootF, false, 0)
		return err
	}
	t.anchorF.Page.SetLSN(lsn)
	t.pool.MarkDirty(t.anchorF, lsn)
	o.unlatchPage(rootF, latch.X)
	t.pool.Unpin(rootF, true, lsn)
	t.Stats.RootSplits.Add(1)
	return nil
}

// applySplit performs the physical page changes of a Split record; it is
// shared between normal operation and restart redo so both produce
// identical images.
func applySplit(orig, sibling *page.Page, rec *wal.Record) {
	leaf := rec.Level == 0
	// Sibling inherits the original's NSN and rightlink.
	sibling.SetNSN(rec.OldNSN)
	sibling.SetRightlink(rec.OldRight)
	movedSet := make(map[string]bool, len(rec.Moved))
	for _, b := range rec.Moved {
		sibling.InsertBytes(b)
		movedSet[string(b)] = true
	}
	// Remove moved bodies from the original (match by content).
	for i := orig.NumSlots() - 1; i >= 0; i-- {
		b, err := orig.SlotBytes(i)
		if err != nil {
			continue
		}
		if movedSet[string(b)] {
			orig.DeleteSlot(i)
			delete(movedSet, string(b)) // each body removed once
		}
	}
	orig.SetNSN(rec.LSN)
	orig.SetRightlink(sibling.ID())
	orig.SetLSN(rec.LSN)
	sibling.SetLSN(rec.LSN)
	_ = leaf
}

// expandBPInNTA expands ancestors' bounding predicates to cover newBP,
// writing Parent-Entry-Update records within the caller's open nested top
// action (unlike propagateBP, which brackets each level in its own NTA).
func (o *op) expandBPInNTA(childF *buffer.Frame, newBP []byte, stack []pathEntry) error {
	t := o.t
	parentF, slot, ownPin, err := o.ascendToParent(stack, childF.ID(), childF.Page.Level())
	if err != nil {
		return err
	}
	if parentF == nil {
		return nil
	}
	release := func() {
		o.unlatchPage(parentF, latch.X)
		if ownPin {
			t.pool.Unpin(parentF, false, 0)
		}
	}
	oldPred := append([]byte(nil), parentF.Page.MustEntry(slot).Pred...)
	merged := t.ops.Union(oldPred, newBP)
	if bytes.Equal(merged, oldPred) {
		release()
		return nil
	}
	var up []pathEntry
	if len(stack) > 0 {
		up = stack[:len(stack)-1]
	}
	if err := o.expandBPInNTA(parentF, merged, up); err != nil {
		release()
		return err
	}
	lsn := o.tx.Log(&wal.Record{
		Type: wal.RecParentEntryUpdate,
		Pg:   parentF.ID(),
		Pg2:  childF.ID(),
		Body: merged,
	})
	if err := parentF.Page.ReplaceEntry(slot, page.Entry{Pred: merged, Child: childF.ID()}); err != nil {
		release()
		return err
	}
	parentF.Page.SetLSN(lsn)
	t.pool.MarkDirty(parentF, lsn)
	t.Stats.BPUpdates.Add(1)
	release()
	return nil
}

// writeParentUpdates logs and applies the two parent changes of a split:
// Internal-Entry-Update for the original child and Internal-Entry-Add for
// the new sibling.
func (o *op) writeParentUpdates(parentF *buffer.Frame, slot int, child page.PageID, oldPred, newPred []byte, add page.Entry) error {
	if !bytes.Equal(oldPred, newPred) {
		lsn := o.tx.Log(&wal.Record{
			Type:    wal.RecInternalEntryUpdate,
			Pg:      parentF.ID(),
			Pg2:     child,
			Body:    newPred,
			OldBody: oldPred,
		})
		if err := parentF.Page.ReplaceEntry(slot, page.Entry{Pred: newPred, Child: child}); err != nil {
			return fmt.Errorf("gist: tighten parent entry: %w", err)
		}
		parentF.Page.SetLSN(lsn)
		// Mark per record: if the parent was clean, its recLSN must be
		// this update's LSN, not the following add's.
		o.t.pool.MarkDirty(parentF, lsn)
	}
	body := add.Encode(false)
	lsn := o.tx.Log(&wal.Record{
		Type: wal.RecInternalEntryAdd,
		Pg:   parentF.ID(),
		Body: body,
	})
	if _, err := parentF.Page.InsertBytes(body); err != nil {
		return fmt.Errorf("gist: add parent entry: %w", err)
	}
	parentF.Page.SetLSN(lsn)
	o.t.pool.MarkDirty(parentF, lsn)
	return nil
}

// propagateBP expands ancestors' bounding predicates so that the path down
// to childF covers newChildBP, updating top-down on recursion unwind and
// percolating newly consistent predicates from each parent to its child
// (§4.3 case 2, §6 phase 4). Each single parent-entry update is its own
// atomic action (§9.1). childF remains latched throughout.
func (o *op) propagateBP(childF *buffer.Frame, newChildBP []byte, stack []pathEntry) error {
	t := o.t
	parentF, slot, ownPin, err := o.ascendToParent(stack, childF.ID(), childF.Page.Level())
	if err != nil {
		return err
	}
	if parentF == nil {
		return nil // child is the root: no parent entry to expand
	}
	release := func() {
		o.unlatchPage(parentF, latch.X)
		if ownPin {
			t.pool.Unpin(parentF, false, 0)
		}
	}

	oldPred := append([]byte(nil), parentF.Page.MustEntry(slot).Pred...)
	merged := t.ops.Union(oldPred, newChildBP)
	if bytes.Equal(merged, oldPred) {
		// Ancestor already covers the key: expansion stops (§2).
		release()
		return nil
	}

	// Recurse upward first so updates apply top-down on unwind.
	var upStack []pathEntry
	if len(stack) > 0 {
		upStack = stack[:len(stack)-1]
	}
	if err := o.propagateBP(parentF, merged, upStack); err != nil {
		release()
		return err
	}

	// This level's update is one atomic action.
	if err := o.tx.BeginNTA(); err != nil {
		release()
		return err
	}
	lsn := o.tx.Log(&wal.Record{
		Type: wal.RecParentEntryUpdate,
		Pg:   parentF.ID(),
		Pg2:  childF.ID(),
		Body: merged,
	})
	if err := parentF.Page.ReplaceEntry(slot, page.Entry{Pred: merged, Child: childF.ID()}); err != nil {
		o.tx.EndNTA()
		release()
		return fmt.Errorf("gist: BP update on %d: %w", parentF.ID(), err)
	}
	parentF.Page.SetLSN(lsn)
	o.tx.EndNTA()
	t.Stats.BPUpdates.Add(1)

	// Percolate predicates newly consistent with the child's grown BP.
	t.preds.Percolate(parentF.ID(), childF.ID(), func(p *predicate.Predicate) bool {
		return p.Kind == predicate.Search && t.ops.Consistent(newChildBP, p.Data)
	})

	t.pool.MarkDirty(parentF, lsn)
	release()
	return nil
}
