package gist

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/txn"

	"repro/internal/buffer"
)

// SearchResult is one (key, RID) pair returned by a search.
type SearchResult struct {
	Key []byte
	RID page.RID
}

// stackEntry is a pending node visit: the page pointer and the value of the
// tree-global counter memorized when the pointer was read (Figure 3). A
// node whose NSN exceeds the memorized value has split since the pointer
// was read, and the operation compensates by following its rightlink under
// the same memorized value.
type stackEntry struct {
	pg  page.PageID
	nsn page.LSN
}

// Search returns all leaf entries whose keys are consistent with query,
// using the traversal of Figure 3 of the paper: a depth-first walk over all
// subtrees with consistent bounding predicates, with split compensation via
// NSNs and rightlinks, predicate attachment top-down at every visited node
// (under RepeatableRead), and S locks on the RIDs of all returned entries.
//
// The operation holds at most one node latch at a time and never holds a
// latch while blocking on a lock or performing I/O: when a lock conflict is
// met the node is unlatched, the operation blocks, and the node (and its
// split chain, guided by the originally memorized NSN) is rescanned.
func (t *Tree) Search(tx *txn.Txn, query []byte, iso Isolation) ([]SearchResult, error) {
	return t.SearchCtx(nil, tx, query, iso)
}

// SearchCtx is Search honoring ctx at every node-visit boundary and at
// every blocking wait (record locks, predicate blocks, frame loads): when
// ctx fires the traversal stops between nodes, releases what it holds, and
// returns ctx.Err(). A nil ctx never cancels.
func (t *Tree) SearchCtx(ctx context.Context, tx *txn.Txn, query []byte, iso Isolation) ([]SearchResult, error) {
	t.Stats.Searches.Add(1)
	o := t.opEnterCtx(ctx, tx)
	o.track("search")
	defer o.exit()
	var pred *predicate.Predicate
	if iso == RepeatableRead {
		pred = t.preds.New(tx.ID(), predicate.Search, query)
	}
	// A search blocks behind conflicting insert predicates already
	// attached (FIFO fairness, §10.3).
	conflicts := func(p *predicate.Predicate) bool {
		if p.Kind != predicate.Insert {
			return false
		}
		return t.ops.Consistent(p.Data, query)
	}
	return t.searchCore(o, query, iso, pred, conflicts)
}

// searchCore is the traversal shared by Search and the search phase of
// unique insertion: a cursor opened on the caller's operation context and
// drained to completion. attach (if non-nil) is the predicate attached to
// every visited node, and conflicts decides which already-attached
// predicates ahead of it force the operation to block.
func (t *Tree) searchCore(o *op, query []byte, iso Isolation, attach *predicate.Predicate, conflicts func(*predicate.Predicate) bool) ([]SearchResult, error) {
	// Counter before root pointer: see locateLeaf for why this order is
	// load-bearing against racing root splits.
	nsn := t.counter()
	root, err := o.optimisticRootID()
	if err != nil {
		return nil, err
	}
	c := &Cursor{
		t:         t,
		tx:        o.tx,
		query:     query,
		iso:       iso,
		o:         o, // owned by the caller; not closed here
		pred:      attach,
		stack:     []stackEntry{{pg: root, nsn: nsn}},
		seen:      make(map[page.RID]bool),
		conflicts: conflicts,
	}
	o.signal(root)
	var out []SearchResult
	for {
		r, ok, err := c.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// lockBlock describes a record lock the scan must block on before it can
// continue.
type lockBlock struct {
	rid page.RID
}

// scanLeaf collects matching entries from a latched leaf. If a record lock
// cannot be taken without blocking it returns a non-nil lockBlock; the
// caller must unlatch, block, and rescan. Entries whose data RIDs are
// already in seen are skipped so that rescans never duplicate results
// (footnote 9 of the paper).
func (o *op) scanLeaf(f *buffer.Frame, se stackEntry, query []byte, iso Isolation, seen map[page.RID]bool, results *[]SearchResult) (*lockBlock, error) {
	t := o.t
	for i := 0; i < f.Page.NumSlots(); i++ {
		e, err := f.Page.Entry(i)
		if err != nil {
			continue
		}
		if !t.ops.Consistent(e.Pred, query) {
			continue
		}
		if seen[e.RID] {
			continue
		}
		if !t.locks.TryLock(o.tx.ID(), lock.ForRID(e.RID), lock.S) {
			// A writer (inserter or logical deleter) holds the
			// record: Degree 3 requires waiting for it. The
			// deleted entry's physical presence is exactly what
			// gives us this chance to block (§7).
			return &lockBlock{rid: e.RID}, nil
		}
		// Lock acquired instantly; the entry state is final for any
		// terminated writer: a committed delete leaves the mark set,
		// an aborted delete has unmarked it.
		if e.Deleted {
			// Not a result; drop the lock so the dead RID can be
			// reused (range protection is the predicate's job).
			t.locks.Unlock(o.tx.ID(), lock.ForRID(e.RID))
			continue
		}
		key := append([]byte(nil), e.Pred...)
		*results = append(*results, SearchResult{Key: key, RID: e.RID})
		seen[e.RID] = true
		if iso == ReadCommitted {
			t.locks.Unlock(o.tx.ID(), lock.ForRID(e.RID))
		}
	}
	return nil, nil
}

// lockRecord blocks until the record lock is available, honoring the
// isolation level's lock duration.
func (o *op) lockRecord(rid page.RID, iso Isolation) error {
	err := o.tx.LockCtx(o.context(), lock.ForRID(rid), lock.S)
	if err != nil {
		if errors.Is(err, lock.ErrDeadlock) {
			return fmt.Errorf("%w: %v", ErrAborted, err)
		}
		return err
	}
	if iso == ReadCommitted {
		o.t.locks.Unlock(o.tx.ID(), lock.ForRID(rid))
	}
	return nil
}
