package gist

// Optimistic read path: node visits that would take the shared latch
// instead copy the page off the frame with no latch at all, validated by
// the latch's seqlock version word (latch.TryOptimistic / Validate). The
// NSN/rightlink machinery already makes readers tolerant of concurrent
// splits, so a reader needs no stronger guarantee than "these bytes were
// not mid-mutation" — exactly what version validation proves. A visit that
// keeps failing validation (a writer storm on the node) falls back to the
// pessimistic shared latch after Tree.optRetries consecutive failures, so
// worst-case behavior is the old behavior.
//
// Protocol invariants, in the order the code enforces them:
//
//  1. Search predicates are attached BEFORE the snapshot is captured
//     (the pessimistic path attaches under the latch). An inserter
//     installs its entry and attaches its own predicate under one X hold,
//     so it either bumps the version before our validation (we restart
//     and see the entry) or it finds our predicate and queues behind it —
//     no phantom window.
//
//  2. The tree-global counter is read INSIDE the validation window. A
//     child split between the copy and a later counter read could stamp
//     an NSN at or below the memorized value, and the moved entries would
//     be missed without a rightlink chase.
//
//  3. The copy is validated BEFORE anything is decoded from it: a torn
//     copy can hold garbage slot offsets that would panic the page
//     accessors.
//
//  4. Signaling locks on children (and chased rightlinks) are taken
//     BEFORE the final validation. A node deleter must X-latch the parent
//     to unlink a child — bumping the version — so a validation that
//     passes after our signal proves the child was still linked when the
//     deleter's TryLock probe could first have seen our lock missing.
//     Stray signals from failed attempts stay held until operation exit;
//     they are S node locks whose only cost is delaying a node delete.
//
//  5. Record state read off a leaf snapshot is only trusted after a
//     final re-validation: the record locks are granted after the copy,
//     so a writer (e.g. an inserter aborting, or a deleter aborting and
//     unmarking) may have slipped between copy and grant. Leaf results
//     are committed into the cursor inline (the same loop as the latched
//     scan) and rolled back if the re-validation fails — safe because
//     the cursor exposes nothing until the visit returns. Under
//     ReadCommitted each lock is an instant-duration probe released on
//     the spot; under RepeatableRead the locks stay with the transaction
//     either way, so a retried visit re-grants them instantly.
//
// The buffer pool backs all of this by poisoning a frame's version when
// the frame is remapped to a different page (eviction/recycle ABA); visits
// additionally hold the frame pinned end to end, which already excludes
// remap — the poison is the fail-closed backstop.

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/buffer"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/page"
)

// optScratch bundles an operation's optimistic-path scratch: the 8KB page
// snapshots are copied into plus the visit staging slices. Pooling the
// bundle across operations (not per cursor, which is born fresh on every
// search) is what makes the warm read path allocation-free.
type optScratch struct {
	snap page.Page
	push []stackEntry
}

// snapPool recycles optimistic-read scratch across operations.
var snapPool = sync.Pool{New: func() any { return new(optScratch) }}

// snapshotNode copies f's page into the operation's scratch page without
// latching and validates the copy (invariants 2 and 3 above). ok=false
// means an X holder interfered or the frame no longer caches the expected
// page; nothing about the scratch may be trusted then. On ok the returned
// version supports further Validate calls and ctr is the counter value a
// latched visit would have memorized.
func (o *op) snapshotNode(f *buffer.Frame, expect page.PageID) (snap *page.Page, v uint64, ctr page.LSN, ok bool) {
	if o.scratch == nil {
		o.scratch = snapPool.Get().(*optScratch)
	}
	snap = &o.scratch.snap
	v, ok = f.Latch.TryOptimistic()
	if !ok {
		o.optRestarts++
		return nil, 0, 0, false
	}
	ctr = o.t.counter()
	// Copy only the used regions: header + slot directory from the front,
	// entry bodies from freeEnd back. The bounds come from a racy read of
	// the header, so they may be garbage — UsedBounds clamps them to safe
	// copy ranges, and the validation below rejects the snapshot whenever
	// the header could have been torn. The uncopied middle is free space
	// on any consistent page, so no accessor ever reads the stale bytes
	// left there by a previous snapshot.
	src, dst := f.Page.Bytes(), snap.Bytes()
	latch.RacyCopy(dst[:page.HeaderSize], src[:page.HeaderSize])
	front, tail := snap.UsedBounds()
	latch.RacyCopy(dst[page.HeaderSize:front], src[page.HeaderSize:front])
	latch.RacyCopy(dst[tail:], src[tail:])
	if !f.Latch.Validate(v) || snap.ID() != expect {
		o.optRestarts++
		return nil, 0, 0, false
	}
	return snap, v, ctr, true
}

// optimisticRootID reads the root pointer off a validated snapshot of the
// permanently pinned anchor frame, falling back to the latched read when
// disabled or under contention (a root split holds the anchor exclusively).
// The common case never copies at all: the tree memoizes the last validated
// (anchor version, root) pair, and as long as the anchor's seqlock version
// still matches — no root change since, and the anchor frame never remaps —
// the cached pointer is proven current by the same argument as Validate.
func (o *op) optimisticRootID() (page.PageID, error) {
	t := o.t
	if !t.cfg.OptimisticReads {
		return t.rootID()
	}
	if v, ok := t.anchorF.Latch.TryOptimistic(); ok {
		if c := t.rootCache.Load(); c != nil && c.ver == v {
			o.optReads++
			return c.root, nil
		}
	}
	for attempt := 0; attempt <= t.optRetries; attempt++ {
		if attempt > 0 {
			runtime.Gosched()
		}
		snap, v, _, ok := o.snapshotNode(t.anchorF, t.anchor)
		if !ok {
			continue
		}
		root, err := anchorRootOf(snap)
		if err != nil {
			break // corrupt anchor: let the latched read report it
		}
		t.rootCache.Store(&rootCacheEntry{ver: v, root: root})
		o.optReads++
		return root, nil
	}
	o.optFallbacks++
	return t.rootID()
}

// visitOptimistic performs one cursor node visit without latching.
// handled=false means the visit must be redone under the pessimistic
// shared latch — the frame is still pinned and the caller falls through to
// the latched path. handled=true means the visit is complete (results
// staged, stack advanced, frame unpinned) or err is set.
func (c *Cursor) visitOptimistic(f *buffer.Frame, se stackEntry) (handled bool, err error) {
	t := c.t
	o := c.o
	if c.pred != nil {
		// Invariant 1: attach before snapshotting. Attach is idempotent,
		// so revisits and the pessimistic fallback re-attach harmlessly.
		ahead := t.preds.Attach(c.pred, se.pg, c.conflicts)
		if len(ahead) > 0 {
			t.pool.Unpin(f, false, 0)
			if err := o.blockOnPredicates(ahead); err != nil {
				return true, err
			}
			c.stack = append(c.stack, se)
			return true, nil
		}
	}
	for attempt := 0; attempt <= t.optRetries; attempt++ {
		if attempt > 0 {
			runtime.Gosched() // let the interfering writer finish
		}
		snap, v, ctr, ok := o.snapshotNode(f, se.pg)
		if !ok {
			continue
		}
		if snap.IsLeaf() {
			done, err := c.optLeafVisit(f, se, snap, v)
			if err != nil {
				return true, err
			}
			if done {
				return true, nil
			}
			continue // final validation failed; retry from a fresh copy
		}
		if c.optInternalVisit(f, se, snap, v, ctr) {
			return true, nil
		}
	}
	o.optFallbacks++
	return false, nil
}

// optLeafVisit scans a validated leaf snapshot with the same inner loop as
// the latched scanLeaf — results go straight into the cursor's pending set
// — and re-validates at the end (invariant 5). A failed re-validation rolls
// the visit's additions back (nothing external can have observed them: the
// cursor hands out results only after the visit returns) and the caller
// retries from a fresh snapshot; done=false signals that, with the frame
// still pinned. A record-lock conflict blocks exactly like the pessimistic
// path — drop the pin, wait for the lock, redo the visit — keeping the
// partial results only if the page re-validates at the conflict point, so
// every kept entry's lock was granted inside a validated window.
func (c *Cursor) optLeafVisit(f *buffer.Frame, se stackEntry, snap *page.Page, v uint64) (done bool, err error) {
	t := c.t
	o := c.o
	pendBase := len(c.pending)
	rollback := func() {
		for _, r := range c.pending[pendBase:] {
			delete(c.seen, r.RID)
		}
		c.pending = c.pending[:pendBase]
	}
	for i := 0; i < snap.NumSlots(); i++ {
		e, eerr := snap.Entry(i)
		if eerr != nil {
			continue
		}
		if !t.ops.Consistent(e.Pred, c.query) {
			continue
		}
		if c.seen[e.RID] {
			continue
		}
		if !t.locks.TryLock(o.tx.ID(), lock.ForRID(e.RID), lock.S) {
			if !f.Latch.Validate(v) {
				rollback()
			}
			t.pool.Unpin(f, false, 0)
			if lerr := o.lockRecord(e.RID, c.iso); lerr != nil {
				return true, lerr
			}
			c.stack = append(c.stack, se)
			return true, nil
		}
		if e.Deleted {
			// The snapshot says dead and we hold the record lock, so the
			// deleter terminated. If it aborted after our copy, the unmark
			// bumped the version and the validation below restarts us;
			// within a validated window the mark is trustworthy.
			t.locks.Unlock(o.tx.ID(), lock.ForRID(e.RID))
			continue
		}
		key := append([]byte(nil), e.Pred...)
		c.pending = append(c.pending, SearchResult{Key: key, RID: e.RID})
		c.seen[e.RID] = true
		if c.iso == ReadCommitted {
			// Instant-duration probe, exactly like the latched scan: the
			// lock only certifies that no writer was active on the RID,
			// and the validation below vouches for the snapshot across
			// the whole window.
			t.locks.Unlock(o.tx.ID(), lock.ForRID(e.RID))
		}
	}
	rl := page.InvalidPage
	if snap.NSN() > se.nsn {
		if rl = snap.Rightlink(); rl != page.InvalidPage {
			o.signal(rl) // invariant 4: before the final validation
		}
	}
	if !f.Latch.Validate(v) {
		rollback()
		o.optRestarts++
		return false, nil
	}
	if rl != page.InvalidPage {
		c.stack = append(c.stack, stackEntry{pg: rl, nsn: se.nsn})
		t.Stats.RightlinkChases.Add(1)
	}
	o.releaseSignal(se.pg)
	t.pool.Unpin(f, false, 0)
	o.optReads++
	return true, nil
}

// optInternalVisit pushes the consistent children (and, on a missed split,
// the rightlink) of a validated internal-node snapshot. Children are
// signaled before the final validation (invariant 4); false means that
// validation failed and the visit should be retried (frame still pinned).
func (c *Cursor) optInternalVisit(f *buffer.Frame, se stackEntry, snap *page.Page, v uint64, ctr page.LSN) bool {
	t := c.t
	o := c.o
	push := o.scratch.push[:0] // pooled scratch; elements are copied into the stack
	chased := false
	if snap.NSN() > se.nsn {
		if rl := snap.Rightlink(); rl != page.InvalidPage {
			push = append(push, stackEntry{pg: rl, nsn: se.nsn})
			chased = true
		}
	}
	childNSN := ctr
	if t.cfg.ParentLSNOpt {
		childNSN = snap.LSN()
	}
	for i := 0; i < snap.NumSlots(); i++ {
		e, err := snap.Entry(i)
		if err != nil {
			continue
		}
		if t.ops.Consistent(e.Pred, c.query) {
			push = append(push, stackEntry{pg: e.Child, nsn: childNSN})
		}
	}
	for _, p := range push {
		o.signal(p.pg)
	}
	o.scratch.push = push
	if !f.Latch.Validate(v) {
		o.optRestarts++
		return false
	}
	if chased {
		t.Stats.RightlinkChases.Add(1)
	}
	c.stack = append(c.stack, push...)
	o.releaseSignal(se.pg)
	t.pool.Unpin(f, false, 0)
	o.optReads++
	return true
}

// descendOptimistic picks the minimal-penalty child of an internal node
// for the insert descent without latching it. ok=false means the caller
// must redo the visit pessimistically (frame still pinned): the node was
// missed-split (NSN past the memorized value → the latched bestInChain
// walk), unexpectedly a leaf, empty, or kept failing validation.
func (o *op) descendOptimistic(f *buffer.Frame, expect page.PageID, curNSN page.LSN, key []byte) (child page.PageID, next page.LSN, ok bool) {
	t := o.t
	for attempt := 0; attempt <= t.optRetries; attempt++ {
		if attempt > 0 {
			runtime.Gosched()
		}
		snap, v, ctr, sok := o.snapshotNode(f, expect)
		if !sok {
			continue
		}
		if snap.IsLeaf() || snap.NSN() > curNSN {
			// Not contention: protocol compensation (or the leaf target,
			// which the insert path always latches X). Not a fallback.
			return 0, 0, false
		}
		bestSlot, bestPenalty := -1, math.Inf(1)
		for i := 0; i < snap.NumSlots(); i++ {
			e, err := snap.Entry(i)
			if err != nil {
				continue
			}
			if p := t.ops.Penalty(e.Pred, key); p < bestPenalty {
				bestPenalty, bestSlot = p, i
			}
		}
		if bestSlot < 0 {
			return 0, 0, false // empty internal node: let the latched path report it
		}
		child = snap.MustEntry(bestSlot).Child
		next = ctr
		if t.cfg.ParentLSNOpt {
			next = snap.LSN()
		}
		o.signal(child) // invariant 4: before the final validation
		if !f.Latch.Validate(v) {
			o.optRestarts++
			continue
		}
		o.optReads++
		return child, next, true
	}
	o.optFallbacks++
	return 0, 0, false
}
