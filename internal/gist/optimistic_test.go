package gist_test

// Race tests for the optimistic read path's nasty interleavings: readers
// vs concurrent splits, vs delete+GC of visited nodes, and the
// deterministic fallback ladder. The frame eviction/recycle ABA is pinned
// at the buffer layer (TestFrameRemapPoisonsVersion); here a tiny pool
// additionally churns frames under a live optimistic workload.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/gist"
	"repro/internal/latch"
	"repro/internal/page"
)

// TestOptimisticReaderVsSplits runs searchers and cursor scans against
// writers that split nodes constantly (MaxEntries 4). Every key published
// before a scan starts must be observed by it; results must never
// duplicate. This is the NSN-bump-mid-copy interleaving: a split between
// snapshot and validation restarts the visit, a split after validation is
// compensated by the memorized-NSN rightlink chase.
func TestOptimisticReaderVsSplits(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	var published sync.Map
	var wg sync.WaitGroup
	var stop atomic.Bool

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := int64(w*1000 + i)
				tx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rid, _ := e.heap.Insert(tx, []byte("r"))
				if err := e.tree.Insert(tx, btree.EncodeKey(k), rid); err != nil {
					t.Errorf("insert %d: %v", k, err)
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				e.tree.TxnFinished(tx.ID())
				published.Store(k, true)
			}
		}(w)
	}

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				var expect []int64
				published.Range(func(k, _ any) bool {
					expect = append(expect, k.(int64))
					return true
				})
				tx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				var got map[int64]int
				if r%2 == 0 {
					rs, serr := e.tree.Search(tx, btree.EncodeRange(0, 1<<20), gist.ReadCommitted)
					if serr != nil {
						t.Errorf("scan: %v", serr)
						tx.Abort()
						e.tree.TxnFinished(tx.ID())
						return
					}
					got = countKeys(rs)
				} else {
					c, cerr := e.tree.OpenCursor(tx, btree.EncodeRange(0, 1<<20), gist.ReadCommitted)
					if cerr != nil {
						t.Errorf("open cursor: %v", cerr)
						tx.Abort()
						e.tree.TxnFinished(tx.ID())
						return
					}
					rs, derr := c.All()
					if derr != nil {
						t.Errorf("cursor drain: %v", derr)
						tx.Abort()
						e.tree.TxnFinished(tx.ID())
						return
					}
					got = countKeys(rs)
				}
				tx.Commit()
				e.tree.TxnFinished(tx.ID())
				for _, k := range expect {
					if got[k] == 0 {
						t.Errorf("scan missed key %d published before it started", k)
					}
				}
				for k, n := range got {
					if n > 1 {
						t.Errorf("scan returned key %d %d times", k, n)
					}
				}
			}
		}(r)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		time.Sleep(50 * time.Millisecond)
		stop.Store(true)
	}()
	// Writers finish, then stop readers on their next pass.
	<-done
	e.checkTree()
}

func countKeys(rs []gist.SearchResult) map[int64]int {
	m := make(map[int64]int, len(rs))
	for _, r := range rs {
		m[btree.DecodeKey(r.Key)]++
	}
	return m
}

// TestOptimisticReaderVsDeleteGC scans concurrently with a deleter that
// logically deletes half the keys and runs GC sweeps (physical entry
// removal and possibly node deletion — the delete/GC-of-visited-node
// interleaving). Survivor keys must always be seen; fully deleted keys
// must vanish once their delete commits; no scan may error or duplicate.
func TestOptimisticReaderVsDeleteGC(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	const n = 120
	rids := make(map[int64]page.RID, n)
	for k := int64(0); k < n; k++ {
		rids[k] = e.put(k)
	}
	var deleted sync.Map
	var wg sync.WaitGroup
	var stop atomic.Bool

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for k := int64(0); k < n; k += 2 {
			tx, err := e.tm.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			if err := e.tree.Delete(tx, btree.EncodeKey(k), rids[k]); err != nil {
				t.Errorf("delete %d: %v", k, err)
				tx.Abort()
				e.tree.TxnFinished(tx.ID())
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
			e.tree.TxnFinished(tx.ID())
			deleted.Store(k, true)
			if k%20 == 0 {
				gcTx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				if err := e.tree.GCAll(gcTx); err != nil {
					t.Errorf("gc: %v", err)
					gcTx.Abort()
					e.tree.TxnFinished(gcTx.ID())
					return
				}
				if err := gcTx.Commit(); err != nil {
					t.Error(err)
					return
				}
				e.tree.TxnFinished(gcTx.ID())
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var gone []int64
				deleted.Range(func(k, _ any) bool {
					gone = append(gone, k.(int64))
					return true
				})
				tx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rs, serr := e.tree.Search(tx, btree.EncodeRange(0, n), gist.ReadCommitted)
				if serr != nil {
					t.Errorf("scan: %v", serr)
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					return
				}
				tx.Commit()
				e.tree.TxnFinished(tx.ID())
				got := countKeys(rs)
				for k, c := range got {
					if c > 1 {
						t.Errorf("scan returned key %d %d times", k, c)
					}
				}
				// Odd keys are never deleted and must always be seen.
				for k := int64(1); k < n; k += 2 {
					if got[k] == 0 {
						t.Errorf("scan missed never-deleted key %d", k)
					}
				}
				// Keys whose delete committed before the scan started must
				// be gone (ReadCommitted sees no uncommitted state).
				for _, k := range gone {
					if got[k] != 0 {
						t.Errorf("scan returned key %d deleted before it started", k)
					}
				}
			}
		}()
	}
	wg.Wait()
	e.checkTree()
}

// TestOptimisticEvictionChurn runs the optimistic workload over a pool far
// smaller than the tree, so every visit races frame eviction and recycle.
// Correctness here leans on pins (a visited frame cannot be remapped) with
// the buffer version poison as backstop; the test asserts scans stay exact
// while frames churn.
func TestOptimisticEvictionChurn(t *testing.T) {
	e := newEnvWithPool(t, gist.Config{MaxEntries: 4}, 16)
	const n = 200
	for k := int64(0); k < n; k++ {
		e.put(k)
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				lo := int64((r*37 + i*13) % (n - 10))
				tx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rs, serr := e.tree.Search(tx, btree.EncodeRange(lo, lo+9), gist.ReadCommitted)
				if serr != nil {
					t.Errorf("scan: %v", serr)
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					return
				}
				if len(rs) != 10 {
					t.Errorf("scan [%d,%d] = %d results, want 10", lo, lo+9, len(rs))
				}
				tx.Commit()
				e.tree.TxnFinished(tx.ID())
			}
		}(r)
	}
	wg.Wait()
	if _, misses, _ := e.pool.Stats(); misses == 0 {
		t.Error("expected buffer misses with a 16-frame pool (no churn exercised)")
	}
	e.checkTree()
}

// TestOptimisticFallbackLadder deterministically drives the fallback: with
// the root frame held X, a searcher's optimistic visits can never
// validate, so after the retry budget it must fall back to the shared
// latch, block until the X holder leaves, and still return exact results.
func TestOptimisticFallbackLadder(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 8, OptimisticRetries: 2})
	for k := int64(0); k < 10; k++ {
		e.put(k)
	}
	rep := e.checkTree()

	before := latch.Metrics().Value("latch.opt_fallbacks")

	rootF, err := e.pool.Fetch(rep.Root)
	if err != nil {
		t.Fatal(err)
	}
	rootF.Latch.Acquire(latch.X)

	type scanOut struct {
		n   int
		err error
	}
	res := make(chan scanOut, 1)
	go func() {
		tx, err := e.tm.Begin()
		if err != nil {
			res <- scanOut{0, err}
			return
		}
		rs, serr := e.tree.Search(tx, btree.EncodeRange(0, 100), gist.ReadCommitted)
		tx.Commit()
		e.tree.TxnFinished(tx.ID())
		res <- scanOut{len(rs), serr}
	}()

	// The searcher must be parked on the root's S latch, not returning.
	select {
	case out := <-res:
		t.Fatalf("search returned (%d, %v) while root was X-latched", out.n, out.err)
	case <-time.After(30 * time.Millisecond):
	}

	rootF.Latch.Release(latch.X)
	e.pool.Unpin(rootF, false, 0)

	select {
	case out := <-res:
		if out.err != nil {
			t.Fatalf("search after fallback: %v", out.err)
		}
		if out.n != 10 {
			t.Fatalf("search after fallback returned %d results, want 10", out.n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("search never completed after X release")
	}

	if after := latch.Metrics().Value("latch.opt_fallbacks"); after <= before {
		t.Errorf("opt_fallbacks did not advance (%d -> %d)", before, after)
	}
}

// TestOptimisticCountersFlow sanity-checks the per-operation counter fold:
// a read-only workload on an optimistic tree advances opt_reads without
// advancing s_acquires per visited node (the root may still be latched by
// writers' descents).
func TestOptimisticCountersFlow(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	for k := int64(0); k < 50; k++ {
		e.put(k)
	}
	reads0 := latch.Metrics().Value("latch.opt_reads")
	for i := 0; i < 10; i++ {
		tx := e.begin()
		if got := e.search(tx, 0, 49); len(got) != 50 {
			t.Fatalf("search returned %d results, want 50", len(got))
		}
		tx.Commit()
		e.tree.TxnFinished(tx.ID())
	}
	reads1 := latch.Metrics().Value("latch.opt_reads")
	if reads1 <= reads0 {
		t.Errorf("opt_reads did not advance across 10 scans (%d -> %d)", reads0, reads1)
	}
}

// TestPessimisticModeUntouched pins the gate: with OptimisticReads off the
// tree must not perform a single optimistic visit.
func TestPessimisticModeUntouched(t *testing.T) {
	cfg := gist.Config{Ops: btree.Ops{}, MaxEntries: 4}
	// Bypass newEnv's OptimisticReads default: build the env, then a
	// second pessimistic tree on the same substrate.
	e := newEnv(t, gist.Config{MaxEntries: 4})
	tree2, err := gist.Create(e.pool, e.tm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tree2.Close()
	tx := e.begin()
	rid, err := e.heap.Insert(tx, []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree2.Insert(tx, btree.EncodeKey(7), rid); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tree2.TxnFinished(tx.ID())

	reads0 := latch.Metrics().Value("latch.opt_reads")
	falls0 := latch.Metrics().Value("latch.opt_fallbacks")
	tx2 := e.begin()
	rs, err := tree2.Search(tx2, btree.EncodeRange(0, 100), gist.ReadCommitted)
	if err != nil || len(rs) != 1 {
		t.Fatalf("pessimistic search = %v, %v", rs, err)
	}
	tx2.Commit()
	tree2.TxnFinished(tx2.ID())
	if r := latch.Metrics().Value("latch.opt_reads"); r != reads0 {
		t.Errorf("pessimistic tree advanced opt_reads (%d -> %d)", reads0, r)
	}
	if f := latch.Metrics().Value("latch.opt_fallbacks"); f != falls0 {
		t.Errorf("pessimistic tree advanced opt_fallbacks (%d -> %d)", falls0, f)
	}
}
