package gist_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/gist"
)

// TestHotLeafContention hammers one small key region from many goroutines
// with a tiny fanout, so inserts constantly race with splits of their own
// target leaf and must re-select within the rightlink chain (the
// bestInChain path of locateLeaf).
func TestHotLeafContention(t *testing.T) {
	// The small pool keeps eviction pressure on: this test caught the
	// lost-split-via-eviction bug (split pages must be marked dirty at
	// applySplit, not at unpin).
	e := newEnvWithPool(t, gist.Config{MaxEntries: 4}, 64)
	var wg sync.WaitGroup
	const workers, per = 8, 120
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// All workers target the same narrow region.
				k := int64(w*per + i)
				tx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rid, _ := e.heap.Insert(tx, []byte("hot"))
				if err := e.tree.Insert(tx, btree.EncodeKey(k), rid); err != nil {
					t.Errorf("insert %d: %v", k, err)
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					return
				}
				tx.Commit()
				e.tree.TxnFinished(tx.ID())
			}
		}(w)
	}
	wg.Wait()
	rep := e.checkTree()
	if rep.Entries != workers*per {
		t.Fatalf("entries = %d, want %d", rep.Entries, workers*per)
	}
	t.Logf("splits=%d chases=%d", e.tree.Stats.Splits.Load(), e.tree.Stats.RightlinkChases.Load())
}

// TestReadCommittedScanBlocksOnWriter covers the record-lock blocking path
// of scans that attach no predicates (ReadCommitted): the scan must still
// wait for an uncommitted writer's record lock before returning the entry.
func TestReadCommittedScanBlocksOnWriter(t *testing.T) {
	e := newEnv(t, gist.Config{})
	e.put(1)
	writer := e.begin()
	e.putIn(writer, 2) // X lock held on the record

	done := make(chan int, 1)
	go func() {
		tx := e.begin()
		rs, err := e.tree.Search(tx, btree.EncodeRange(0, 10), gist.ReadCommitted)
		if err != nil {
			done <- -1
			return
		}
		tx.Commit()
		e.tree.TxnFinished(tx.ID())
		done <- len(rs)
	}()
	select {
	case n := <-done:
		t.Fatalf("ReadCommitted scan did not block on uncommitted write (got %d)", n)
	case <-time.After(100 * time.Millisecond):
	}
	writer.Commit()
	e.tree.TxnFinished(writer.ID())
	select {
	case n := <-done:
		if n != 2 {
			t.Fatalf("scan after commit: %d hits, want 2", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scan hung")
	}
}

// TestReadCommittedScanSkipsCommittedDelete covers the marked-entry skip
// path when the deleter has already finished.
func TestReadCommittedScanSkipsCommittedDelete(t *testing.T) {
	e := newEnv(t, gist.Config{})
	rid := e.put(3)
	e.put(4)
	tx := e.begin()
	if err := e.tree.Delete(tx, btree.EncodeKey(3), rid); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())

	tx2 := e.begin()
	defer tx2.Commit()
	rs, err := e.tree.Search(tx2, btree.EncodeRange(0, 10), gist.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || btree.DecodeKey(rs[0].Key) != 4 {
		t.Fatalf("hits = %v", keysOf(rs))
	}
}

func TestTreeCloseReleasesAnchorPin(t *testing.T) {
	e := newEnvWithPool(t, gist.Config{}, 4)
	e.put(1)
	e.tree.Close()
	e.tree.Close() // idempotent
	// With the anchor unpinned, all 4 frames are evictable: filling the
	// pool with new pages must not hit ErrPoolExhausted.
	for i := 0; i < 6; i++ {
		f, err := e.pool.NewPage(0)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		e.pool.Unpin(f, false, 0)
	}
}

func TestOpsAccessorAndDrain(t *testing.T) {
	e := newEnv(t, gist.Config{})
	if _, ok := e.tree.Ops().(btree.Ops); !ok {
		t.Errorf("Ops() = %T", e.tree.Ops())
	}
	// DrainQuarantine with no quarantined pages and no ops: no-op.
	e.tree.DrainQuarantine()
	// With quarantined pages (from node deletion): force one.
	var rids []struct {
		k int64
		r gist.SearchResult
	}
	_ = rids
	e.tree.DrainQuarantine()
}

// flakyOps wraps btree.Ops with a PickSplit that fails (returns an invalid
// distribution) a limited number of times — driving the runtime abort of a
// partially logged structure modification, which must be undone by the
// registered handlers and leave the tree intact.
type flakyOps struct {
	btree.Ops
	failures *int32
}

func (f flakyOps) PickSplit(preds [][]byte) []int {
	if atomic.AddInt32(f.failures, -1) >= 0 {
		return nil // invalid: tree rejects and the SMO fails mid-NTA
	}
	return f.Ops.PickSplit(preds)
}

func TestRuntimeSMOFailureRollsBack(t *testing.T) {
	var failures int32 = 1
	e := newEnv(t, gist.Config{Ops: flakyOps{failures: &failures}, MaxEntries: 4})
	for i := 0; i < 4; i++ {
		e.put(int64(i * 10))
	}
	// This insert needs a split; PickSplit fails once, the SMO aborts
	// mid-flight, and the transaction must roll back cleanly.
	tx := e.begin()
	rid, _ := e.heap.Insert(tx, []byte("x"))
	err := e.tree.Insert(tx, btree.EncodeKey(5), rid)
	if err == nil {
		t.Fatal("insert succeeded despite failing PickSplit")
	}
	if err := tx.Abort(); err != nil {
		t.Fatalf("abort after failed SMO: %v", err)
	}
	e.tree.TxnFinished(tx.ID())

	// The tree is intact and fully operational; the next split works.
	rep := e.checkTree()
	if rep.Entries != 4 {
		t.Errorf("entries = %d, want 4", rep.Entries)
	}
	for i := 4; i < 12; i++ {
		e.put(int64(i * 10))
	}
	rep = e.checkTree()
	if rep.Entries != 12 {
		t.Errorf("entries = %d, want 12", rep.Entries)
	}
	tx2 := e.begin()
	defer tx2.Commit()
	if got := e.search(tx2, 0, 200); len(got) != 12 {
		t.Errorf("scan = %d", len(got))
	}
}
