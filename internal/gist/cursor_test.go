package gist_test

import (
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/gist"
)

func TestCursorDrainEqualsSearch(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 6})
	for i := 0; i < 100; i++ {
		e.put(int64(i))
	}
	tx := e.begin()
	defer func() {
		tx.Commit()
		e.tree.TxnFinished(tx.ID())
	}()

	want := keysOf(e.search(tx, 10, 60))
	cur, err := e.tree.OpenCursor(tx, btree.EncodeRange(10, 60), gist.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	gotKeys := keysOf(got)
	if len(gotKeys) != len(want) {
		t.Fatalf("cursor %d keys, search %d", len(gotKeys), len(want))
	}
	for i := range want {
		if gotKeys[i] != want[i] {
			t.Fatalf("cursor keys %v != search keys %v", gotKeys, want)
		}
	}
}

func TestCursorIncrementalAndClose(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 6})
	for i := 0; i < 30; i++ {
		e.put(int64(i))
	}
	tx := e.begin()
	cur, err := e.tree.OpenCursor(tx, btree.EncodeRange(0, 100), gist.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		_, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen++
		if seen == 10 {
			break // abandon mid-scan
		}
	}
	cur.Close()
	cur.Close() // idempotent
	if _, _, err := cur.Next(); err == nil {
		t.Error("Next on closed cursor should error")
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())
	e.checkTree()
}

func TestCursorMarkResetReplaysSuffix(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 6})
	for i := 0; i < 40; i++ {
		e.put(int64(i))
	}
	tx := e.begin()
	defer func() {
		tx.Commit()
		e.tree.TxnFinished(tx.ID())
	}()
	cur, err := e.tree.OpenCursor(tx, btree.EncodeRange(0, 100), gist.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	var first []int64
	for i := 0; i < 15; i++ {
		r, ok, err := cur.Next()
		if err != nil || !ok {
			t.Fatalf("next %d: %v %v", i, ok, err)
		}
		first = append(first, btree.DecodeKey(r.Key))
	}
	m := cur.Mark()
	var afterMark []int64
	for {
		r, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		afterMark = append(afterMark, btree.DecodeKey(r.Key))
	}
	if len(first)+len(afterMark) != 40 {
		t.Fatalf("total = %d, want 40", len(first)+len(afterMark))
	}

	// Reset: the suffix replays identically.
	cur.Reset(m)
	var replay []int64
	for {
		r, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		replay = append(replay, btree.DecodeKey(r.Key))
	}
	if len(replay) != len(afterMark) {
		t.Fatalf("replay %d keys, want %d", len(replay), len(afterMark))
	}
	for i := range replay {
		if replay[i] != afterMark[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, replay[i], afterMark[i])
		}
	}
}

func TestCursorSurvivesConcurrentSplits(t *testing.T) {
	// A suspended cursor must not lose committed keys when its pending
	// subtrees split between Next calls.
	e := newEnv(t, gist.Config{MaxEntries: 4})
	for i := 0; i < 20; i++ {
		e.put(int64(i * 10)) // 0,10,...,190
	}
	tx := e.begin()
	cur, err := e.tree.OpenCursor(tx, btree.EncodeRange(0, 200), gist.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[int64]bool)
	steps := 0
	for {
		r, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got[btree.DecodeKey(r.Key)] = true
		steps++
		if steps%3 == 0 {
			// Splits happen underneath the suspended cursor (keys
			// outside the original set, odd values).
			e.put(int64(1000 + steps))
			e.put(int64(2000 + steps))
		}
	}
	cur.Close()
	tx.Commit()
	e.tree.TxnFinished(tx.ID())
	for i := 0; i < 20; i++ {
		if !got[int64(i*10)] {
			t.Errorf("cursor missed committed key %d", i*10)
		}
	}
	e.checkTree()
}

func TestCursorBlocksOnUncommittedWrite(t *testing.T) {
	e := newEnv(t, gist.Config{})
	e.put(1)
	writer := e.begin()
	e.putIn(writer, 2) // uncommitted, record X-locked

	tx := e.begin()
	cur, err := e.tree.OpenCursor(tx, btree.EncodeRange(0, 10), gist.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		n   int
		err error
	}
	done := make(chan res, 1)
	go func() {
		all, err := cur.All()
		done <- res{n: len(all), err: err}
	}()
	select {
	case r := <-done:
		t.Fatalf("cursor did not block on uncommitted insert: %+v", r)
	case <-time.After(100 * time.Millisecond):
	}
	writer.Commit()
	e.tree.TxnFinished(writer.ID())
	select {
	case r := <-done:
		if r.err != nil || r.n != 2 {
			t.Fatalf("after writer commit: %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cursor hung")
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())
}
