package gist_test

import (
	"testing"

	"repro/internal/gist"
	"repro/internal/page"
	"repro/internal/wal"
)

// TestRecLSNNeverAboveFirstRecord pins the checkpoint-DPT recLSN family
// of bugs: every page's reported recLSN must be at or below the LSN of
// the first log record that touches the page. The broken pattern was a
// multi-record pin (root grow, split, parent update) marking the frame
// dirty only at the final Unpin, with the LAST record's LSN — so a
// checkpoint taken in between told restart redo to start past the page's
// formatting record, replaying later records onto an unformatted page.
func TestRecLSNNeverAboveFirstRecord(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	for i := 0; i < 60; i++ {
		e.put(int64(i))
	}

	// The workload must have grown the root at least once beyond the
	// initial Create, or the scenario under test never happened.
	var rootChanges int
	first := map[page.PageID]page.LSN{}
	e.log.Scan(1, func(r *wal.Record) bool {
		if r.Type == wal.RecRootChange {
			rootChanges++
		}
		for _, pg := range []page.PageID{r.Pg, r.Pg2, r.RID.Page} {
			if pg != 0 {
				if _, ok := first[pg]; !ok {
					first[pg] = r.LSN
				}
			}
		}
		return true
	})
	if rootChanges < 2 {
		t.Fatalf("only %d root changes; workload too small to exercise growRoot", rootChanges)
	}

	for id, rec := range e.pool.DirtyPages() {
		f, ok := first[id]
		if !ok {
			t.Errorf("dirty page %d has no log record at all", id)
			continue
		}
		if rec > f {
			t.Errorf("page %d recLSN %d above its first record %d: a checkpoint here would skip the page's formatting on redo", id, rec, f)
		}
	}
}
