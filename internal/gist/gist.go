// Package gist implements the Generalized Search Tree with the concurrency,
// recovery and repeatable-read protocols of Kornacker, Mohan and
// Hellerstein (SIGMOD 1997).
//
// The tree is a balanced hierarchy of bounding predicates (BPs) over
// (key, RID) leaf entries, specialized to a concrete access method by an
// Ops extension (B-tree, R-tree, ...). Concurrency control uses the link
// technique extended with node sequence numbers (NSNs) drawn from the WAL's
// LSN counter: a node split stamps the original node with the split
// record's LSN and hands the old NSN and rightlink to the new sibling, so a
// traverser that memorized the counter before reading a parent entry can
// detect and compensate for splits it missed by walking rightlinks. No node
// latch is ever held across an I/O.
//
// Repeatable read combines two-phase locks on data records with predicate
// locks attached directly to nodes; deletion is logical (entries are marked
// and garbage-collected after the deleter commits); structure modifications
// run as nested top actions so they survive the initiating transaction's
// rollback.
package gist

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/stats"
	"repro/internal/txn"
	"repro/internal/wal"
)

// The package-level registry carries the tree-operation latency histograms.
// Trees have no registry of their own (their counters live in the Stats
// struct), so op latencies are process-global like the latch counters,
// surfaced by Metrics alongside every other subsystem.
var (
	opReg      = stats.NewRegistry()
	searchHist = opReg.Histogram("gist.search")
	insertHist = opReg.Histogram("gist.insert")
	deleteHist = opReg.Histogram("gist.delete")
	cursorHist = opReg.Histogram("gist.cursor")
)

// Metrics exposes the process-wide tree-operation latency registry
// (gist.search, gist.insert, gist.delete, gist.cursor histograms).
func Metrics() *stats.Registry { return opReg }

// opHist maps an operation kind to its latency histogram.
func opHist(kind string) *stats.Histogram {
	switch kind {
	case "search":
		return searchHist
	case "insert":
		return insertHist
	case "delete":
		return deleteHist
	case "cursor":
		return cursorHist
	}
	return nil
}

// Ops is the extension-method interface of [HNP95]: the four domain
// operations that specialize the template tree to a concrete access method.
// All predicates, keys and queries are byte strings whose encoding belongs
// entirely to the extension; the tree compares predicates only for byte
// equality (extensions must produce canonical encodings, in particular from
// Union).
type Ops interface {
	// Consistent reports whether the subtree bounded by pred may contain
	// keys matching query. It is used to navigate searches, to decide
	// predicate-lock conflicts, and (with a key in place of pred) to
	// test whether a single key matches a query.
	Consistent(pred, query []byte) bool

	// Union returns the canonical smallest predicate covering both a and
	// b. Union(nil, b) must return (a canonical copy of) b's bounds.
	Union(a, b []byte) []byte

	// Penalty returns the domain-specific cost of inserting key into the
	// subtree bounded by bp; insertion descends the minimal-penalty path.
	Penalty(bp, key []byte) float64

	// PickSplit partitions the given predicates between an original node
	// and a new right sibling, returning the indices that stay. It must
	// leave at least one entry on each side.
	PickSplit(preds [][]byte) (stay []int)

	// KeyQuery returns a query predicate matching exactly the given key,
	// used by deletion and unique-insert to locate a specific key.
	KeyQuery(key []byte) []byte
}

// Isolation selects the transactional isolation of search operations.
type Isolation int

// Isolation levels.
const (
	// RepeatableRead (Degree 3) attaches predicate locks and holds
	// S record locks until end of transaction — the paper's hybrid
	// mechanism.
	RepeatableRead Isolation = iota
	// ReadCommitted takes short record locks (released at operation end)
	// and leaves no predicates, permitting phantoms.
	ReadCommitted
)

// Errors returned by tree operations.
var (
	ErrDuplicate = errors.New("gist: duplicate key in unique index")
	ErrNotFound  = errors.New("gist: entry not found")
	ErrAborted   = errors.New("gist: operation aborted")
)

// Config configures a tree.
type Config struct {
	// Ops is the access-method extension. Required.
	Ops Ops
	// MaxEntries forces a node split when a node reaches this many
	// entries even if byte space remains; 0 disables the cap. Small
	// values let tests exercise deep trees cheaply.
	MaxEntries int
	// ParentLSNOpt enables the §10.1 optimization: traversals memorize
	// the parent page's LSN instead of reading the global counter,
	// avoiding synchronization on the log manager's tail.
	ParentLSNOpt bool
	// AssertNoLatchOnIO panics if a buffer-pool miss occurs while the
	// operation holds any node latch (experiment E10's watchdog).
	AssertNoLatchOnIO bool
	// OptimisticReads lets read-only node visits (search descents, cursor
	// scans, the insert descent through internal nodes) snapshot pages
	// under seqlock version validation instead of taking the shared
	// latch. Writers keep their latch discipline untouched.
	OptimisticReads bool
	// OptimisticRetries is how many consecutive failed validations a
	// node visit tolerates before falling back to the pessimistic shared
	// latch; 0 means the default (3).
	OptimisticRetries int
	// Recorder, when set, receives one flight-recorder trace per tracked
	// public operation (search, insert, delete, cursor lifetime).
	Recorder *stats.Recorder
}

// defaultOptimisticRetries is the fallback ladder depth when the config
// leaves OptimisticRetries zero.
const defaultOptimisticRetries = 3

// Stats aggregates tree-level instrumentation counters.
type Stats struct {
	Searches        atomic.Int64
	Inserts         atomic.Int64
	Deletes         atomic.Int64
	Splits          atomic.Int64
	RootSplits      atomic.Int64
	RightlinkChases atomic.Int64
	BPUpdates       atomic.Int64
	GCRuns          atomic.Int64
	GCEntries       atomic.Int64
	NodeDeletes     atomic.Int64
	PredBlocks      atomic.Int64
	LatchlessIOs    atomic.Int64
	LatchedIOs      atomic.Int64

	// Dead-entry accounting for the GC pacer: Marks counts logical
	// deletions (entries marked), Unmarks their rollbacks. The surviving
	// population — Marks − Unmarks − GCEntries — is what DeadEntries
	// reports.
	Marks   atomic.Int64
	Unmarks atomic.Int64
}

// Tree is an open generalized search tree.
type Tree struct {
	ops   Ops
	pool  *buffer.Pool
	tm    *txn.Manager
	log   *wal.Log
	locks *lock.Manager
	preds *predicate.Manager
	cfg   Config

	anchor  page.PageID   // page holding the root pointer
	anchorF *buffer.Frame // permanently pinned anchor frame

	// Epoch-based drain (KL80, §7.2): deallocated pages are quarantined
	// until every operation active at unlink time has finished, so even
	// an operation that raced past the signaling-lock check can still
	// read the empty unlinked node safely.
	epochMu    sync.Mutex
	epoch      uint64
	activeOps  map[uint64]uint64 // op id -> start epoch
	nextOpID   uint64
	quarantine []pendingFree

	// gcPinned tracks leaves whose signaling lock must survive until
	// the owning transaction ends (the insert target-leaf rule, §7.2).
	pinMu  sync.Mutex
	pinned map[page.TxnID]map[page.PageID]bool

	// optRetries is the resolved OptimisticRetries (config value or the
	// default), kept off the hot path's config lookups.
	optRetries int

	// rootCache memoizes the last validated (anchor seqlock version, root
	// pointer) pair. An optimistic root read whose current anchor version
	// equals the cached one may use the cached pointer with no copy at
	// all: an unchanged version proves no root change (and no frame
	// remap) has intervened since the pair was validated.
	rootCache atomic.Pointer[rootCacheEntry]

	Stats Stats
}

type pendingFree struct {
	pg    page.PageID
	epoch uint64
}

// rootCacheEntry pairs a root pointer with the anchor-frame seqlock
// version at which it was validated (see Tree.rootCache).
type rootCacheEntry struct {
	ver  uint64
	root page.PageID
}

// anchorKey is the body stored in the anchor page's slot 0.
func anchorBody(root page.PageID) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(root))
	return b
}

func anchorRootOf(p *page.Page) (page.PageID, error) {
	b, err := p.SlotBytes(0)
	if err != nil || len(b) != 4 {
		return 0, fmt.Errorf("gist: corrupt anchor page: %v", err)
	}
	return page.PageID(binary.BigEndian.Uint32(b)), nil
}

// Create allocates and initializes a new empty tree: an anchor page and an
// empty leaf root, all logged inside a bootstrap transaction so the tree is
// recoverable from its first moment.
func Create(pool *buffer.Pool, tm *txn.Manager, cfg Config) (*Tree, error) {
	if cfg.Ops == nil {
		return nil, errors.New("gist: Config.Ops is required")
	}
	t := newTree(pool, tm, cfg)

	tx, err := tm.Begin()
	if err != nil {
		return nil, err
	}
	if err := tx.BeginNTA(); err != nil {
		return nil, err
	}
	anchorF, err := pool.NewPage(0)
	if err != nil {
		return nil, err
	}
	lsn := tx.Log(&wal.Record{Type: wal.RecGetPage, Pg: anchorF.ID(), Level: 0})
	anchorF.Page.SetLSN(lsn)
	// Each page's recLSN is its FIRST record (the allocation), not the
	// Root-Change logged last: a checkpoint between them must not let
	// restart redo start past the pages' formatting records.
	pool.MarkDirty(anchorF, lsn)

	rootF, err := pool.NewPage(0)
	if err != nil {
		return nil, err
	}
	lsn = tx.Log(&wal.Record{Type: wal.RecGetPage, Pg: rootF.ID(), Level: 0})
	rootF.Page.SetLSN(lsn)
	pool.MarkDirty(rootF, lsn)

	if _, err := anchorF.Page.InsertBytes(anchorBody(rootF.ID())); err != nil {
		return nil, err
	}
	lsn = tx.Log(&wal.Record{
		Type: wal.RecRootChange,
		Pg:   anchorF.ID(),
		Pg2:  rootF.ID(),
	})
	anchorF.Page.SetLSN(lsn)
	tx.EndNTA()

	t.anchor = anchorF.ID()
	t.anchorF = anchorF // stays pinned for the tree's lifetime
	pool.MarkDirty(anchorF, lsn)
	pool.Unpin(rootF, true, lsn)
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to an existing tree whose anchor page is known (recorded by
// the caller at Create time, typically in a catalog).
func Open(pool *buffer.Pool, tm *txn.Manager, cfg Config, anchor page.PageID) (*Tree, error) {
	if cfg.Ops == nil {
		return nil, errors.New("gist: Config.Ops is required")
	}
	t := newTree(pool, tm, cfg)
	t.anchor = anchor
	f, err := pool.Fetch(anchor) // pinned for the tree's lifetime
	if err != nil {
		return nil, err
	}
	t.anchorF = f
	if _, err := t.rootID(); err != nil {
		pool.Unpin(f, false, 0)
		return nil, err
	}
	return t, nil
}

// Close releases the tree's permanent pin on the anchor page. The tree must
// be quiesced.
func (t *Tree) Close() {
	if t.anchorF != nil {
		t.pool.Unpin(t.anchorF, false, 0)
		t.anchorF = nil
	}
}

func newTree(pool *buffer.Pool, tm *txn.Manager, cfg Config) *Tree {
	t := &Tree{
		ops:       cfg.Ops,
		pool:      pool,
		tm:        tm,
		log:       tm.Log(),
		locks:     tm.Locks(),
		preds:     tm.Predicates(),
		cfg:       cfg,
		activeOps: make(map[uint64]uint64),
		pinned:    make(map[page.TxnID]map[page.PageID]bool),
	}
	t.optRetries = cfg.OptimisticRetries
	if t.optRetries <= 0 {
		t.optRetries = defaultOptimisticRetries
	}
	t.registerUndo()
	return t
}

// Anchor returns the tree's anchor page id (persist it to reopen the tree).
func (t *Tree) Anchor() page.PageID { return t.anchor }

// rootID reads the current root pointer from the permanently pinned anchor
// page — never an I/O, so it is safe under held latches.
func (t *Tree) rootID() (page.PageID, error) {
	t.anchorF.Latch.Acquire(latch.S)
	root, err := anchorRootOf(&t.anchorF.Page)
	t.anchorF.Latch.Release(latch.S)
	return root, err
}

// counter reads the tree-global counter: the last assigned LSN (§10.1).
func (t *Tree) counter() page.LSN { return t.log.LastLSN() }

// op is the per-operation context: it carries the owning transaction and
// the caller's context.Context, tracks held latches for the
// no-latch-across-I/O assertion, participates in the epoch drain, and
// remembers which nodes it holds signaling locks on.
type op struct {
	t       *Tree
	tx      *txn.Txn
	ctx     context.Context // nil = never cancelled
	id      uint64
	latches int
	signals map[page.PageID]bool // signaling locks held by this operation

	// scratch is the operation's optimistic-path scratch (snapshot page
	// plus staging slices), taken from snapPool on first use and returned
	// at exit so a warm pool keeps the read path allocation-free.
	scratch *optScratch

	// Optimistic-read tallies, accumulated locally and folded into the
	// latch package's registry once at exit so node visits perform no
	// shared atomic adds.
	optReads     int64
	optRestarts  int64
	optFallbacks int64

	// Flight-recorder scratch (set by track, folded by exit). All local to
	// the operation's goroutine; the only shared writes happen once at
	// exit (one histogram add plus one recorder store).
	kind      string // "search", "insert", "delete", "cursor"; "" = untracked
	startNano int64  // wall-clock start (Unix nanos)
	lockWait0 int64  // lock-manager wait baseline at entry (delta = this op's)
	latchWait int64  // nanos blocked acquiring node latches
	bufLoad   int64  // nanos in buffer misses and parks
	visits    int32  // pages fetched
}

// opEnter registers an operation with the epoch tracker.
func (t *Tree) opEnter(tx *txn.Txn) *op {
	return t.opEnterCtx(nil, tx)
}

// opEnterCtx is opEnter carrying the caller's context; tree code consults
// it only at safe points (o.check) and cancellable waits, never inside a
// nested top action.
func (t *Tree) opEnterCtx(ctx context.Context, tx *txn.Txn) *op {
	t.epochMu.Lock()
	t.nextOpID++
	id := t.nextOpID
	t.activeOps[id] = t.epoch
	t.epochMu.Unlock()
	return &op{t: t, tx: tx, ctx: ctx, id: id, signals: make(map[page.PageID]bool)}
}

// check is the safe-point cancellation test: it returns the context's error
// at a node-visit boundary, where the operation holds no latch it cannot
// release and is outside any nested top action.
func (o *op) check() error {
	if o.ctx == nil {
		return nil
	}
	if o.tx.InNTA() {
		// Never observe cancellation inside a nested top action: the
		// structure modification must run to completion (its error path
		// writes the dummy CLR, which would otherwise fence a half-done
		// split off from undo).
		return nil
	}
	return o.ctx.Err()
}

// context returns the operation's context, or Background when it has none
// or a nested top action is open (waits inside an NTA are not cancellable).
func (o *op) context() context.Context {
	if o.ctx == nil || o.tx.InNTA() {
		return context.Background()
	}
	return o.ctx
}

// track marks the operation as one of the public entry points ("search",
// "insert", "delete", "cursor"), arming the latency histogram and flight-
// recorder trace that exit folds. Internal operations (GC sweeps, the
// deletion machinery's sub-searches) stay untracked. No-op in the statsoff
// build.
func (o *op) track(kind string) {
	if !stats.Enabled {
		return
	}
	o.kind = kind
	o.startNano = time.Now().UnixNano()
	o.lockWait0 = o.t.locks.TxnWaitNanos(o.tx.ID())
}

// finishTrace observes the tracked operation's latency histogram and records
// its flight-recorder trace.
func (o *op) finishTrace() {
	end := time.Now().UnixNano()
	dur := end - o.startNano
	if h := opHist(o.kind); h != nil {
		h.Observe(dur)
	}
	if rec := o.t.cfg.Recorder; rec != nil {
		rec.Record(&stats.OpTrace{
			Op:           o.kind,
			Txn:          uint64(o.tx.ID()),
			Start:        o.startNano,
			Duration:     dur,
			LatchWait:    o.latchWait,
			LockWait:     o.t.locks.TxnWaitNanos(o.tx.ID()) - o.lockWait0,
			BufLoad:      o.bufLoad,
			NodeVisits:   o.visits,
			OptRestarts:  int32(o.optRestarts),
			OptFallbacks: int32(o.optFallbacks),
		})
	}
	o.kind = ""
}

// exit deregisters the operation, releases its remaining signaling locks
// (except those pinned until transaction end), and frees quarantined pages
// whose drain condition is now met.
func (o *op) exit() {
	t := o.t
	if stats.Enabled && o.kind != "" {
		o.finishTrace()
	}
	if o.optReads != 0 || o.optRestarts != 0 || o.optFallbacks != 0 {
		latch.AddOptStats(o.optReads, o.optRestarts, o.optFallbacks)
		o.optReads, o.optRestarts, o.optFallbacks = 0, 0, 0
	}
	if o.scratch != nil {
		snapPool.Put(o.scratch)
		o.scratch = nil
	}
	for pg := range o.signals {
		o.releaseSignal(pg)
	}
	t.epochMu.Lock()
	delete(t.activeOps, o.id)
	minEpoch := t.epoch
	for _, e := range t.activeOps {
		if e < minEpoch {
			minEpoch = e
		}
	}
	var free []page.PageID
	rest := t.quarantine[:0]
	for _, pf := range t.quarantine {
		if pf.epoch < minEpoch {
			free = append(free, pf.pg)
		} else {
			rest = append(rest, pf)
		}
	}
	t.quarantine = rest
	t.epochMu.Unlock()
	for _, pg := range free {
		// Best effort; the page is already unlinked and logged free.
		_ = t.pool.Deallocate(pg)
	}
}

// quarantinePage defers physical reuse of an unlinked page until all
// operations active now have finished.
func (t *Tree) quarantinePage(pg page.PageID) {
	t.epochMu.Lock()
	t.epoch++
	t.quarantine = append(t.quarantine, pendingFree{pg: pg, epoch: t.epoch})
	t.epochMu.Unlock()
}

// signal takes the signaling S lock on a node on behalf of the operation's
// transaction (set when a pointer to the node is pushed on the stack,
// §7.2). Signaling locks never block: they are S locks that only conflict
// with a node deleter's X probe, and the deleter only ever uses TryLock.
func (o *op) signal(pg page.PageID) {
	if o.signals[pg] {
		return
	}
	if err := o.t.locks.Lock(o.tx.ID(), lock.ForNode(pg), lock.S); err != nil {
		// Cannot happen: S never conflicts with S and deleters never
		// hold X while others wait.
		panic(fmt.Sprintf("gist: signaling lock: %v", err))
	}
	o.signals[pg] = true
}

// releaseSignal drops a signaling lock unless a savepoint or the insert
// target-leaf rule pinned it until transaction end.
func (o *op) releaseSignal(pg page.PageID) {
	if !o.signals[pg] {
		return
	}
	delete(o.signals, pg)
	t := o.t
	t.pinMu.Lock()
	pinnedSet := t.pinned[o.tx.ID()]
	isPinned := pinnedSet != nil && pinnedSet[pg]
	t.pinMu.Unlock()
	if isPinned {
		return
	}
	// Savepoint rule (§10.2): signaling locks existing when a savepoint
	// was established must be retained for cursor restoration.
	if len(o.tx.Savepoints()) > 0 {
		return
	}
	t.locks.Unlock(o.tx.ID(), lock.ForNode(pg))
}

// pinSignal marks a node's signaling lock as retained until the owning
// transaction terminates (the insert target-leaf rule, §7.2: releasing it
// early would let the leaf vanish while the transaction's logical undo
// might still need to walk its rightlink chain).
func (o *op) pinSignal(pg page.PageID) {
	t := o.t
	t.pinMu.Lock()
	set := t.pinned[o.tx.ID()]
	if set == nil {
		set = make(map[page.PageID]bool)
		t.pinned[o.tx.ID()] = set
	}
	set[pg] = true
	t.pinMu.Unlock()
}

// TxnFinished releases bookkeeping for a finished transaction. The lock
// manager has already dropped its locks; this clears the pin table. The
// facade calls it after commit/abort.
func (t *Tree) TxnFinished(id page.TxnID) {
	t.pinMu.Lock()
	delete(t.pinned, id)
	t.pinMu.Unlock()
}

// fetch pins a page with exact no-latch-during-I/O accounting: a disk read
// performed by this call while the operation holds any node latch counts as
// a latched I/O (the protocol's descent path never produces one; the only
// candidates are rare rightlink chases during ascent, see Stats.LatchedIOs).
func (o *op) fetch(id page.PageID) (*buffer.Frame, error) {
	ctx := o.ctx
	if ctx != nil && o.tx.InNTA() {
		ctx = nil // fetches inside a structure modification are not cancellable
	}
	f, missed, waitNanos, err := o.t.pool.FetchExStats(ctx, id)
	if stats.Enabled {
		o.visits++
		o.bufLoad += waitNanos
	}
	if err != nil {
		return nil, err
	}
	if missed {
		if o.latches > 0 {
			o.t.Stats.LatchedIOs.Add(1)
			if o.t.cfg.AssertNoLatchOnIO {
				panic(fmt.Sprintf("gist: buffer miss for page %d while holding %d latches", id, o.latches))
			}
		} else {
			o.t.Stats.LatchlessIOs.Add(1)
		}
	}
	return f, nil
}

func (o *op) latchPage(f *buffer.Frame, m latch.Mode) {
	o.latchWait += f.Latch.AcquireTimed(m)
	o.latches++
}

func (o *op) unlatchPage(f *buffer.Frame, m latch.Mode) {
	f.Latch.Release(m)
	o.latches--
}

// computedBP returns the union of all entry predicates on a node — the
// node's bounding predicate as derivable from its content. Logically
// deleted entries are included: they are physically present and must remain
// reachable (§7).
func (t *Tree) computedBP(p *page.Page) []byte {
	var bp []byte
	for i := 0; i < p.NumSlots(); i++ {
		e, err := p.Entry(i)
		if err != nil {
			continue
		}
		bp = t.ops.Union(bp, e.Pred)
	}
	return bp
}

// needsSplit reports whether inserting an entry of the given encoded size
// requires splitting the node first.
func (t *Tree) needsSplit(p *page.Page, encodedLen int) bool {
	if t.cfg.MaxEntries > 0 && p.NumSlots() >= t.cfg.MaxEntries {
		return true
	}
	return p.FreeSpaceAfterCompaction() < encodedLen
}

// searchPredConflict builds the conflict test between a new key being
// inserted and an attached predicate: search predicates conflict when the
// key matches their query; insert predicates (unique-index key markers)
// conflict when the two keys are equal under the extension's semantics.
func (t *Tree) keyConflictsWith(key []byte) func(*predicate.Predicate) bool {
	return func(p *predicate.Predicate) bool {
		switch p.Kind {
		case predicate.Search:
			return t.ops.Consistent(key, p.Data)
		default:
			return t.ops.Consistent(key, t.ops.KeyQuery(p.Data))
		}
	}
}

// blockOnPredicates waits for the owner transactions of the given
// predicates to terminate, by taking (and immediately dropping) S locks on
// their transaction IDs (§10.3). The caller must hold no latches.
func (o *op) blockOnPredicates(conflicts []*predicate.Predicate) error {
	for _, p := range conflicts {
		o.t.Stats.PredBlocks.Add(1)
		if err := o.tx.LockCtx(o.context(), lock.ForTxn(p.Owner), lock.S); err != nil {
			return wrapLockErr(err)
		}
		o.t.locks.Unlock(o.tx.ID(), lock.ForTxn(p.Owner))
	}
	return nil
}

// RegisterRecoveryHandlers installs the tree's undo handlers on tm without
// opening any tree. Restart recovery needs the handlers before the undo
// pass, but trees can only be opened after redo has reconstructed their
// anchors; the handlers themselves are independent of any extension's Ops
// (logical undo locates entries by RID, never by predicate semantics).
func RegisterRecoveryHandlers(tm *txn.Manager, pool *buffer.Pool) {
	t := &Tree{
		pool:      pool,
		tm:        tm,
		log:       tm.Log(),
		locks:     tm.Locks(),
		preds:     tm.Predicates(),
		activeOps: make(map[uint64]uint64),
		pinned:    make(map[page.TxnID]map[page.PageID]bool),
	}
	t.registerUndo()
}

// Ops returns the tree's extension methods.
func (t *Tree) Ops() Ops { return t.ops }
