package gist_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/check"
	"repro/internal/gist"
	"repro/internal/heap"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/predicate"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// env bundles a complete stack: disk, WAL, buffer pool, lock/predicate
// managers, transaction manager, heap and one B-tree GiST.
type env struct {
	t     *testing.T
	disk  *storage.MemDisk
	log   *wal.Log
	pool  *buffer.Pool
	locks *lock.Manager
	preds *predicate.Manager
	tm    *txn.Manager
	heap  *heap.File
	tree  *gist.Tree
}

func newEnv(t *testing.T, cfg gist.Config) *env {
	return newEnvWithPool(t, cfg, 256)
}

func newEnvWithPool(t *testing.T, cfg gist.Config, poolSize int) *env {
	t.Helper()
	if cfg.Ops == nil {
		cfg.Ops = btree.Ops{}
	}
	// The whole suite runs with the optimistic read path on, matching the
	// facade default; tests that need the pessimistic path build their
	// own Config.
	cfg.OptimisticReads = true
	e := &env{
		t:     t,
		disk:  storage.NewMemDisk(),
		log:   wal.NewMemLog(),
		locks: lock.NewManager(),
		preds: predicate.NewManager(),
	}
	e.pool = buffer.New(e.disk, poolSize, e.log)
	e.tm = txn.NewManager(e.log, e.locks, e.preds)
	e.heap = heap.New(e.pool)
	e.heap.RegisterUndo(e.tm)
	tree, err := gist.Create(e.pool, e.tm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.tree = tree
	return e
}

func (e *env) begin() *txn.Txn {
	e.t.Helper()
	tx, err := e.tm.Begin()
	if err != nil {
		e.t.Fatal(err)
	}
	return tx
}

// put inserts key k with a heap record, in its own committed transaction,
// and returns the RID.
func (e *env) put(k int64) page.RID {
	e.t.Helper()
	tx := e.begin()
	rid := e.putIn(tx, k)
	if err := tx.Commit(); err != nil {
		e.t.Fatal(err)
	}
	e.tree.TxnFinished(tx.ID())
	return rid
}

// putIn inserts key k within an existing transaction.
func (e *env) putIn(tx *txn.Txn, k int64) page.RID {
	e.t.Helper()
	rid, err := e.heap.Insert(tx, []byte(fmt.Sprintf("rec-%d", k)))
	if err != nil {
		e.t.Fatal(err)
	}
	if err := e.tree.Insert(tx, btree.EncodeKey(k), rid); err != nil {
		e.t.Fatalf("insert %d: %v", k, err)
	}
	return rid
}

// keysOf extracts sorted int64 keys from search results.
func keysOf(rs []gist.SearchResult) []int64 {
	out := make([]int64, 0, len(rs))
	for _, r := range rs {
		out = append(out, btree.DecodeKey(r.Key))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (e *env) search(tx *txn.Txn, lo, hi int64) []gist.SearchResult {
	e.t.Helper()
	rs, err := e.tree.Search(tx, btree.EncodeRange(lo, hi), gist.RepeatableRead)
	if err != nil {
		e.t.Fatalf("search [%d,%d]: %v", lo, hi, err)
	}
	return rs
}

func (e *env) checkTree() *check.Report {
	e.t.Helper()
	c := &check.Checker{Pool: e.pool, Ops: btree.Ops{}, Anchor: e.tree.Anchor(), MaxNSN: e.log.LastLSN()}
	rep, err := c.Check()
	if err != nil {
		e.t.Fatalf("invariant check: %v", err)
	}
	return rep
}

func TestEmptyTreeSearch(t *testing.T) {
	e := newEnv(t, gist.Config{})
	tx := e.begin()
	if got := e.search(tx, -100, 100); len(got) != 0 {
		t.Errorf("empty tree returned %v", got)
	}
	tx.Commit()
	rep := e.checkTree()
	if rep.Height != 1 || rep.Leaves != 1 || rep.Entries != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestCreateRequiresOps(t *testing.T) {
	e := newEnv(t, gist.Config{})
	if _, err := gist.Create(e.pool, e.tm, gist.Config{}); err == nil {
		t.Error("Create without Ops succeeded")
	}
	if _, err := gist.Open(e.pool, e.tm, gist.Config{}, e.tree.Anchor()); err == nil {
		t.Error("Open without Ops succeeded")
	}
}

func TestInsertSearchSingle(t *testing.T) {
	e := newEnv(t, gist.Config{})
	rid := e.put(42)
	tx := e.begin()
	got := e.search(tx, 42, 42)
	if len(got) != 1 || btree.DecodeKey(got[0].Key) != 42 || got[0].RID != rid {
		t.Errorf("got %v", got)
	}
	// Out-of-range query finds nothing.
	if got := e.search(tx, 43, 100); len(got) != 0 {
		t.Errorf("miss query returned %v", got)
	}
	tx.Commit()
}

func TestBulkInsertWithSplits(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 8})
	const n = 500
	for i := 0; i < n; i++ {
		e.put(int64(i * 3)) // keys 0, 3, 6, ...
	}
	rep := e.checkTree()
	if rep.Entries != n {
		t.Fatalf("checker found %d entries, want %d", rep.Entries, n)
	}
	if rep.Height < 3 {
		t.Errorf("height = %d, expected a deep tree with MaxEntries 8", rep.Height)
	}
	if e.tree.Stats.Splits.Load() == 0 || e.tree.Stats.RootSplits.Load() == 0 {
		t.Error("expected splits and root splits")
	}

	tx := e.begin()
	defer tx.Commit()
	// Point queries for every key.
	for i := 0; i < n; i++ {
		k := int64(i * 3)
		got := e.search(tx, k, k)
		if len(got) != 1 || btree.DecodeKey(got[0].Key) != k {
			t.Fatalf("key %d: got %v", k, keysOf(got))
		}
	}
	// Absent keys.
	if got := e.search(tx, 1, 1); len(got) != 0 {
		t.Errorf("absent key found: %v", keysOf(got))
	}
	// Range query.
	got := keysOf(e.search(tx, 30, 60))
	want := []int64{30, 33, 36, 39, 42, 45, 48, 51, 54, 57, 60}
	if len(got) != len(want) {
		t.Fatalf("range [30,60]: got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range [30,60]: got %v, want %v", got, want)
		}
	}
	// Full scan.
	if got := e.search(tx, -1, 1<<40); len(got) != n {
		t.Errorf("full scan returned %d entries, want %d", len(got), n)
	}
}

func TestInsertDescendingAndRandomOrder(t *testing.T) {
	for name, gen := range map[string]func(i int) int64{
		"descending": func(i int) int64 { return int64(1000 - i) },
		"zigzag":     func(i int) int64 { return int64((i*7919 + 13) % 1000) },
	} {
		t.Run(name, func(t *testing.T) {
			e := newEnv(t, gist.Config{MaxEntries: 6})
			seen := make(map[int64]bool)
			for i := 0; i < 300; i++ {
				k := gen(i)
				if seen[k] {
					continue
				}
				seen[k] = true
				e.put(k)
			}
			rep := e.checkTree()
			if rep.Entries != len(seen) {
				t.Fatalf("entries = %d, want %d", rep.Entries, len(seen))
			}
			tx := e.begin()
			defer tx.Commit()
			for k := range seen {
				if got := e.search(tx, k, k); len(got) != 1 {
					t.Fatalf("key %d: %v", k, keysOf(got))
				}
			}
		})
	}
}

func TestDuplicateKeysNonUnique(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	var rids []page.RID
	for i := 0; i < 10; i++ {
		rids = append(rids, e.put(7)) // same key, distinct records
	}
	tx := e.begin()
	defer tx.Commit()
	got := e.search(tx, 7, 7)
	if len(got) != 10 {
		t.Fatalf("found %d duplicates, want 10", len(got))
	}
	found := make(map[page.RID]bool)
	for _, r := range got {
		found[r.RID] = true
	}
	for _, rid := range rids {
		if !found[rid] {
			t.Errorf("RID %v missing", rid)
		}
	}
}

func TestAbortInsertRollsBackTree(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	for i := 0; i < 20; i++ {
		e.put(int64(i))
	}
	tx := e.begin()
	e.putIn(tx, 100)
	e.putIn(tx, 101)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(tx.ID())

	rep := e.checkTree()
	if rep.Entries != 20 {
		t.Errorf("entries after abort = %d, want 20", rep.Entries)
	}
	tx2 := e.begin()
	defer tx2.Commit()
	if got := e.search(tx2, 100, 101); len(got) != 0 {
		t.Errorf("aborted keys visible: %v", keysOf(got))
	}
}

func TestAbortSurvivesSplitByOthers(t *testing.T) {
	// A transaction inserts, other transactions split the leaf with
	// their own committed inserts, then the first aborts: logical undo
	// must chase rightlinks to find the moved entry.
	e := newEnv(t, gist.Config{MaxEntries: 4})
	tx := e.begin()
	e.putIn(tx, 50)
	// Commit enough neighbors to split the leaf several times.
	for i := int64(45); i < 56; i++ {
		if i == 50 {
			continue
		}
		e.put(i)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(tx.ID())
	rep := e.checkTree()
	if rep.Entries != 10 {
		t.Errorf("entries = %d, want 10", rep.Entries)
	}
	tx2 := e.begin()
	defer tx2.Commit()
	if got := e.search(tx2, 50, 50); len(got) != 0 {
		t.Errorf("aborted key 50 visible")
	}
}

func TestLogicalDeleteVisibilityAndGC(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 8})
	var rids []page.RID
	for i := 0; i < 10; i++ {
		rids = append(rids, e.put(int64(i)))
	}
	// Delete key 5 and commit.
	tx := e.begin()
	if err := e.tree.Delete(tx, btree.EncodeKey(5), rids[5]); err != nil {
		t.Fatal(err)
	}
	if err := e.heap.Delete(tx, rids[5]); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(tx.ID())

	// The entry is still physically present (marked) but not returned.
	rep := e.checkTree()
	if rep.Entries != 9 || rep.Marked != 1 {
		t.Errorf("entries=%d marked=%d, want 9,1", rep.Entries, rep.Marked)
	}
	tx2 := e.begin()
	if got := e.search(tx2, 5, 5); len(got) != 0 {
		t.Errorf("deleted key visible: %v", keysOf(got))
	}
	tx2.Commit()

	// GC the leaf; the marked entry must disappear physically.
	tx3 := e.begin()
	if err := e.tree.GCLeaf(tx3, rep.Root); err != nil {
		// Root may be internal if splits occurred; find leaves via report.
		t.Logf("GCLeaf on root: %v (tree has height %d)", err, rep.Height)
	}
	// Run GC on every leaf by scanning all keys through insert-triggered
	// paths: simplest is to call GCLeaf on each leaf found by the checker.
	tx3.Commit()

	// Use a fresh full GC pass via the tree's public GC helper.
	tx4 := e.begin()
	if err := e.tree.GCAll(tx4); err != nil {
		t.Fatal(err)
	}
	tx4.Commit()
	rep = e.checkTree()
	if rep.Marked != 0 {
		t.Errorf("marked entries after GC = %d", rep.Marked)
	}
	if e.tree.Stats.GCEntries.Load() == 0 {
		t.Error("GC removed nothing")
	}
}

func TestAbortDeleteRestoresEntry(t *testing.T) {
	e := newEnv(t, gist.Config{})
	rid := e.put(9)
	tx := e.begin()
	if err := e.tree.Delete(tx, btree.EncodeKey(9), rid); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(tx.ID())
	tx2 := e.begin()
	defer tx2.Commit()
	if got := e.search(tx2, 9, 9); len(got) != 1 {
		t.Errorf("entry not restored after delete abort: %v", keysOf(got))
	}
	rep := e.checkTree()
	if rep.Marked != 0 {
		t.Errorf("marked = %d after abort", rep.Marked)
	}
}

func TestDeleteNotFound(t *testing.T) {
	e := newEnv(t, gist.Config{})
	e.put(1)
	tx := e.begin()
	defer tx.Commit()
	err := e.tree.Delete(tx, btree.EncodeKey(99), page.RID{Page: 999, Slot: 0})
	if !errors.Is(err, gist.ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestUniqueInsertDuplicate(t *testing.T) {
	e := newEnv(t, gist.Config{})
	tx := e.begin()
	rid, err := e.heap.Insert(tx, []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.tree.InsertUnique(tx, btree.EncodeKey(10), rid); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(tx.ID())

	tx2 := e.begin()
	rid2, _ := e.heap.Insert(tx2, []byte("second"))
	err = e.tree.InsertUnique(tx2, btree.EncodeKey(10), rid2)
	if !errors.Is(err, gist.ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	// Error is repeatable within the transaction.
	err = e.tree.InsertUnique(tx2, btree.EncodeKey(10), rid2)
	if !errors.Is(err, gist.ErrDuplicate) {
		t.Fatalf("second try: %v", err)
	}
	tx2.Abort()
	e.tree.TxnFinished(tx2.ID())

	// Different key succeeds.
	tx3 := e.begin()
	rid3, _ := e.heap.Insert(tx3, []byte("third"))
	if err := e.tree.InsertUnique(tx3, btree.EncodeKey(11), rid3); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	e.tree.TxnFinished(tx3.ID())
}

func TestOpenExistingTree(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	for i := 0; i < 50; i++ {
		e.put(int64(i))
	}
	t2, err := gist.Open(e.pool, e.tm, gist.Config{Ops: btree.Ops{}, MaxEntries: 4}, e.tree.Anchor())
	if err != nil {
		t.Fatal(err)
	}
	tx := e.begin()
	defer tx.Commit()
	rs, err := t2.Search(tx, btree.EncodeRange(0, 49), gist.RepeatableRead)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 50 {
		t.Errorf("reopened tree returned %d entries", len(rs))
	}
	if _, err := gist.Open(e.pool, e.tm, gist.Config{Ops: btree.Ops{}}, 4242); err == nil {
		t.Error("Open with bad anchor succeeded")
	}
}

func TestReadCommittedReleasesLocks(t *testing.T) {
	e := newEnv(t, gist.Config{})
	rid := e.put(1)
	tx := e.begin()
	rs, err := e.tree.Search(tx, btree.EncodeRange(0, 10), gist.ReadCommitted)
	if err != nil || len(rs) != 1 {
		t.Fatalf("rs=%v err=%v", rs, err)
	}
	if _, held := e.locks.Holding(tx.ID(), lock.ForRID(rid)); held {
		t.Error("ReadCommitted left a record lock")
	}
	preds := e.preds.PredicatesOf(tx.ID())
	if len(preds) != 0 {
		t.Errorf("ReadCommitted left %d predicates", len(preds))
	}
	tx.Commit()
}

func TestRepeatableReadKeepsLocksAndPredicates(t *testing.T) {
	e := newEnv(t, gist.Config{})
	rid := e.put(1)
	tx := e.begin()
	if rs := e.search(tx, 0, 10); len(rs) != 1 {
		t.Fatal("search failed")
	}
	if mode, held := e.locks.Holding(tx.ID(), lock.ForRID(rid)); !held || mode != lock.S {
		t.Error("RepeatableRead did not hold the record S lock")
	}
	if len(e.preds.PredicatesOf(tx.ID())) == 0 {
		t.Error("RepeatableRead left no predicate")
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())
	if len(e.preds.PredicatesOf(tx.ID())) != 0 {
		t.Error("predicates survived commit")
	}
}

// TestRegressionSiblingBPEscape pins the fix for a subtle split bug: when
// installing a new sibling's parent entry forces the parent itself to
// split, the recursive split tightens the grandparent's entry before the
// sibling entry exists, so without re-expansion the sibling's predicate
// escapes its ancestors and its keys become unreachable. The permuted key
// sequence below reproduced it deterministically.
func TestRegressionSiblingBPEscape(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 8})
	const n = 300
	for i := 0; i < n; i++ {
		k := int64((i * 7919) % n)
		e.put(k)
		if i%16 == 0 {
			e.checkTree() // containment must hold at every step
		}
	}
	e.checkTree()
	tx := e.begin()
	defer tx.Commit()
	for k := int64(0); k < n; k++ {
		if got := e.search(tx, k, k); len(got) != 1 {
			t.Fatalf("key %d unreachable (found %d)", k, len(got))
		}
	}
}
