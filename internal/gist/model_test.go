package gist_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/btree"
	"repro/internal/gist"
	"repro/internal/page"
)

// TestModelRandomOps drives the full stack with a long random sequence of
// operations — insert, delete, abort-insert, abort-delete, savepoint with
// partial rollback, GC, range query — checking every query result against
// an in-memory model and the structural invariants periodically. This is
// the single-threaded oracle test: if the tree and the model ever diverge,
// some protocol step lost or duplicated an entry.
func TestModelRandomOps(t *testing.T) {
	for _, cfg := range []struct {
		name string
		conf gist.Config
	}{
		{"fanout6", gist.Config{MaxEntries: 6}},
		{"fanout16-parentLSN", gist.Config{MaxEntries: 16, ParentLSNOpt: true}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			e := newEnv(t, cfg.conf)
			rng := rand.New(rand.NewSource(7))
			model := make(map[int64]page.RID) // committed live keys
			const steps = 1200
			for step := 0; step < steps; step++ {
				switch op := rng.Intn(100); {
				case op < 45: // committed insert (fresh key)
					k := rng.Int63n(100000)
					if _, dup := model[k]; dup {
						continue
					}
					model[k] = e.put(k)

				case op < 55: // committed delete of a random model key
					k, ok := anyKey(rng, model)
					if !ok {
						continue
					}
					tx := e.begin()
					if err := e.tree.Delete(tx, btree.EncodeKey(k), model[k]); err != nil {
						t.Fatalf("step %d delete %d: %v", step, k, err)
					}
					if err := e.heap.Delete(tx, model[k]); err != nil {
						t.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					e.tree.TxnFinished(tx.ID())
					delete(model, k)

				case op < 65: // aborted insert: no model change
					k := rng.Int63n(100000)
					if _, dup := model[k]; dup {
						continue
					}
					tx := e.begin()
					e.putIn(tx, k)
					if err := tx.Abort(); err != nil {
						t.Fatal(err)
					}
					e.tree.TxnFinished(tx.ID())

				case op < 72: // aborted delete: no model change
					k, ok := anyKey(rng, model)
					if !ok {
						continue
					}
					tx := e.begin()
					if err := e.tree.Delete(tx, btree.EncodeKey(k), model[k]); err != nil {
						t.Fatal(err)
					}
					if err := tx.Abort(); err != nil {
						t.Fatal(err)
					}
					e.tree.TxnFinished(tx.ID())

				case op < 80: // savepoint: keep first insert, roll back second
					k1 := rng.Int63n(100000)
					k2 := rng.Int63n(100000)
					if _, dup := model[k1]; dup {
						continue
					}
					if _, dup := model[k2]; dup || k1 == k2 {
						continue
					}
					tx := e.begin()
					rid1 := e.putIn(tx, k1)
					if _, err := tx.Savepoint("sp"); err != nil {
						t.Fatal(err)
					}
					e.putIn(tx, k2)
					if err := tx.RollbackTo("sp"); err != nil {
						t.Fatalf("step %d rollback: %v", step, err)
					}
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					e.tree.TxnFinished(tx.ID())
					model[k1] = rid1

				case op < 85: // garbage collection pass
					tx := e.begin()
					if err := e.tree.GCAll(tx); err != nil {
						t.Fatalf("step %d GC: %v", step, err)
					}
					tx.Commit()
					e.tree.TxnFinished(tx.ID())

				default: // range query vs model
					lo := rng.Int63n(100000)
					hi := lo + rng.Int63n(20000)
					tx := e.begin()
					got := e.search(tx, lo, hi)
					tx.Commit()
					e.tree.TxnFinished(tx.ID())
					want := 0
					for k := range model {
						if k >= lo && k <= hi {
							want++
						}
					}
					if len(got) != want {
						t.Fatalf("step %d: range [%d,%d] = %d hits, model says %d",
							step, lo, hi, len(got), want)
					}
					for _, r := range got {
						k := btree.DecodeKey(r.Key)
						if rid, ok := model[k]; !ok || rid != r.RID {
							t.Fatalf("step %d: hit (%d,%v) not in model", step, k, r.RID)
						}
					}
				}
				if step%200 == 199 {
					rep := e.checkTree()
					if rep.Entries != len(model) {
						t.Fatalf("step %d: tree has %d live entries, model %d", step, rep.Entries, len(model))
					}
				}
			}
			rep := e.checkTree()
			if rep.Entries != len(model) {
				t.Fatalf("final: tree %d vs model %d", rep.Entries, len(model))
			}
			// Every model key individually findable with its RID.
			tx := e.begin()
			defer tx.Commit()
			for k, rid := range model {
				got := e.search(tx, k, k)
				if len(got) != 1 || got[0].RID != rid {
					t.Fatalf("final: key %d -> %v, want rid %v", k, got, rid)
				}
			}
		})
	}
}

func anyKey(rng *rand.Rand, m map[int64]page.RID) (int64, bool) {
	if len(m) == 0 {
		return 0, false
	}
	n := rng.Intn(len(m))
	for k := range m {
		if n == 0 {
			return k, true
		}
		n--
	}
	return 0, false
}

// TestByteSpaceSplits disables the entry cap and uses large keys so that
// splits are driven purely by page free space — the production
// configuration.
func TestByteSpaceSplits(t *testing.T) {
	e := newEnv(t, gist.Config{}) // MaxEntries 0: byte-space splits only
	// ~400-byte filler makes a leaf hold ~19 entries.
	const n = 300
	for i := 0; i < n; i++ {
		tx := e.begin()
		rid, err := e.heap.Insert(tx, []byte("r"))
		if err != nil {
			t.Fatal(err)
		}
		// The key itself stays 8 bytes (btree); byte pressure comes
		// from volume of entries instead: insert several per txn.
		if err := e.tree.Insert(tx, btree.EncodeKey(int64(i)), rid); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		e.tree.TxnFinished(tx.ID())
	}
	// 300 * 22B entries ~ one page; force more with duplicates.
	for i := 0; i < 2000; i++ {
		e.put(int64(1000 + i))
	}
	rep := e.checkTree()
	if rep.Entries != n+2000 {
		t.Fatalf("entries = %d", rep.Entries)
	}
	if rep.Height < 2 {
		t.Errorf("no byte-space split occurred (height %d, leaves %d)", rep.Height, rep.Leaves)
	}
	tx := e.begin()
	defer tx.Commit()
	if got := e.search(tx, 0, 5000); len(got) != n+2000 {
		t.Errorf("scan = %d", len(got))
	}
}

// TestSavepointRetainsSignalingLocksAndPredicates checks the §10.2 rules:
// after a savepoint is established, the operation's signaling locks are
// retained (so its recorded cursor stack stays valid) and the search
// predicates persist.
func TestSavepointRetainsState(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	for i := 0; i < 30; i++ {
		e.put(int64(i))
	}
	tx := e.begin()
	if _, err := tx.Savepoint("cursor-open"); err != nil {
		t.Fatal(err)
	}
	// A scan after the savepoint: its signaling locks must persist after
	// the operation (normally they drop at op end).
	if got := e.search(tx, 5, 15); len(got) != 11 {
		t.Fatalf("scan: %d", len(got))
	}
	preds := e.preds.PredicatesOf(tx.ID())
	if len(preds) == 0 {
		t.Fatal("no predicate registered")
	}
	// Node deletion of any scanned leaf must be blocked while this
	// transaction lives: emulate by checking the lock manager still
	// holds node locks for the txn.
	nodeLocks := 0
	for _, p := range preds {
		for range e.preds.NodesOf(p) {
			nodeLocks++
		}
	}
	if nodeLocks == 0 {
		t.Error("predicate attached to no nodes")
	}
	if err := tx.RollbackTo("cursor-open"); err != nil {
		t.Fatal(err)
	}
	// The transaction remains usable after partial rollback.
	if got := e.search(tx, 5, 15); len(got) != 11 {
		t.Errorf("scan after partial rollback: %d", len(got))
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())
}

// TestParentLSNOptEquivalence runs the same workload with and without the
// §10.1 optimization and demands identical result sets.
func TestParentLSNOptEquivalence(t *testing.T) {
	results := make(map[bool][]int64)
	for _, opt := range []bool{false, true} {
		e := newEnv(t, gist.Config{MaxEntries: 6, ParentLSNOpt: opt})
		for i := 0; i < 200; i++ {
			e.put(int64((i * 37) % 500))
		}
		tx := e.begin()
		results[opt] = keysOf(e.search(tx, 0, 1000))
		tx.Commit()
		e.checkTree()
	}
	a, b := results[false], results[true]
	if len(a) != len(b) {
		t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	_ = fmt.Sprint(a)
}
