package gist_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/gist"
	"repro/internal/page"
)

// stepCtx is a context whose Err fires after a fixed number of checks,
// steering cancellation deterministically onto the Nth safe point of a
// traversal (node-visit boundaries, fetch waits, lock waits). Done is nil:
// the tests that use it never block, they only poll Err.
type stepCtx struct {
	remaining atomic.Int64
}

func newStepCtx(n int) *stepCtx {
	c := &stepCtx{}
	c.remaining.Store(int64(n))
	return c
}

func (c *stepCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *stepCtx) Done() <-chan struct{}       { return nil }
func (c *stepCtx) Value(any) any               { return nil }
func (c *stepCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestCancelMidInsertCompletesSMO sweeps the cancellation point across
// every safe point of inserts into a splitting tree. A cancelled insert
// must either have completed (the cancel landed after the leaf write) or
// roll back cleanly via logical undo — and in both cases any split NTA the
// insert started must have run to completion, which the structural
// invariant check verifies after every attempt.
func TestCancelMidInsertCompletesSMO(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	for k := int64(0); k < 200; k += 2 {
		e.put(k)
	}

	cancelled, completed := 0, 0
	next := int64(1)
	for steps := 0; steps < 60; steps++ {
		k := next
		next += 2
		tx := e.begin()
		rid, err := e.heap.Insert(tx, []byte(fmt.Sprintf("rec-%d", k)))
		if err != nil {
			t.Fatal(err)
		}
		err = e.tree.InsertCtx(newStepCtx(steps), tx, btree.EncodeKey(k), rid)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("steps=%d: err = %v, want context.Canceled", steps, err)
			}
			cancelled++
			if aerr := tx.Abort(); aerr != nil {
				t.Fatalf("steps=%d: abort after cancel: %v", steps, aerr)
			}
		} else {
			completed++
			if cerr := tx.Commit(); cerr != nil {
				t.Fatal(cerr)
			}
		}
		e.tree.TxnFinished(tx.ID())
		// Whatever happened, the tree must satisfy every structural
		// invariant: a cancelled insert never leaves a half-done split.
		e.checkTree()
	}
	if cancelled == 0 {
		t.Error("no insert was ever cancelled; the step sweep is too short")
	}
	if completed == 0 {
		t.Error("no insert ever completed; the step sweep never ran past the traversal")
	}

	// The preloaded keys and every completed odd insert are all present; no
	// aborted insert left an entry behind.
	tx := e.begin()
	got := keysOf(e.search(tx, -1, 400))
	evens := 0
	for _, k := range got {
		if k%2 == 0 {
			evens++
		}
	}
	if evens != 100 {
		t.Errorf("even keys after sweep = %d, want 100", evens)
	}
	if len(got) != 100+completed {
		t.Errorf("total keys = %d, want %d", len(got), 100+completed)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(tx.ID())
}

// TestCancelSearchAndCursor pins the read-side contract: a cancelled
// context stops SearchCtx at its next node-visit boundary and makes every
// subsequent Cursor.Next return ctx.Err(), while the transaction remains
// usable.
func TestCancelSearchAndCursor(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	for k := int64(0); k < 100; k++ {
		e.put(k)
	}
	tx := e.begin()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.tree.SearchCtx(ctx, tx, btree.EncodeRange(0, 100), gist.RepeatableRead); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchCtx = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	c, err := e.tree.OpenCursorCtx(ctx2, tx, btree.EncodeRange(0, 100), gist.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Next(); err != nil || !ok {
		t.Fatalf("first Next = %v %v", ok, err)
	}
	cancel2()
	if _, _, err := c.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
	c.Close()

	// The transaction is untouched by read-side cancellation.
	if got := e.search(tx, 0, 9); len(got) != 10 {
		t.Errorf("post-cancel search returned %d keys, want 10", len(got))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(tx.ID())
}

// TestCancelDeleteRollsBack sweeps cancellation over DeleteCtx: every
// attempt — cancelled or complete — is aborted, and all keys must remain
// live and findable afterwards.
func TestCancelDeleteRollsBack(t *testing.T) {
	e := newEnv(t, gist.Config{MaxEntries: 4})
	const n = 40
	ridOf := make(map[int64]page.RID, n)
	for k := int64(0); k < n; k++ {
		ridOf[k] = e.put(k)
	}
	sawCancel := false
	for steps := 0; steps < 20; steps++ {
		k := int64(steps) % n
		tx := e.begin()
		err := e.tree.DeleteCtx(newStepCtx(steps), tx, btree.EncodeKey(k), ridOf[k])
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("steps=%d: DeleteCtx = %v", steps, err)
		}
		if err != nil {
			sawCancel = true
		}
		if aerr := tx.Abort(); aerr != nil {
			t.Fatalf("steps=%d: abort: %v", steps, aerr)
		}
		e.tree.TxnFinished(tx.ID())
	}
	if !sawCancel {
		t.Error("no delete was ever cancelled; the step sweep is too short")
	}
	tx := e.begin()
	if got := keysOf(e.search(tx, -1, n+1)); len(got) != n {
		t.Errorf("keys after aborted deletes = %d, want %d", len(got), n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.tree.TxnFinished(tx.ID())
	e.checkTree()
}
