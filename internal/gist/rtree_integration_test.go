package gist_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"time"

	"errors"
	"repro/internal/check"
	"repro/internal/gist"
	"repro/internal/page"

	"repro/internal/rtree"
	"repro/internal/strtree"
)

// rtreeEnv builds the full stack with R-tree extension methods — the
// multidimensional, non-partitioned key domain the paper's protocol exists
// for.
func rtreeEnv(t *testing.T, maxEntries int) *env {
	return newEnv(t, gist.Config{Ops: rtree.Ops{}, MaxEntries: maxEntries})
}

func (e *env) putPoint(x, y float64) page.RID {
	e.t.Helper()
	tx := e.begin()
	rid, err := e.heap.Insert(tx, []byte(fmt.Sprintf("pt(%g,%g)", x, y)))
	if err != nil {
		e.t.Fatal(err)
	}
	if err := e.tree.Insert(tx, rtree.EncodePoint(x, y), rid); err != nil {
		e.t.Fatalf("insert (%g,%g): %v", x, y, err)
	}
	if err := tx.Commit(); err != nil {
		e.t.Fatal(err)
	}
	e.tree.TxnFinished(tx.ID())
	return rid
}

func (e *env) queryRect(r rtree.Rect) []gist.SearchResult {
	e.t.Helper()
	tx := e.begin()
	defer func() {
		tx.Commit()
		e.tree.TxnFinished(tx.ID())
	}()
	rs, err := e.tree.Search(tx, rtree.EncodeRect(r), gist.ReadCommitted)
	if err != nil {
		e.t.Fatalf("rect query %v: %v", r, err)
	}
	return rs
}

func TestRTreePointQueriesAgainstModel(t *testing.T) {
	e := rtreeEnv(t, 8)
	rng := rand.New(rand.NewSource(42))
	type pt struct{ x, y float64 }
	var pts []pt
	for i := 0; i < 400; i++ {
		p := pt{rng.Float64() * 1000, rng.Float64() * 1000}
		pts = append(pts, p)
		e.putPoint(p.x, p.y)
	}

	// Structural invariants hold with MBR predicates.
	c := &check.Checker{Pool: e.pool, Ops: rtree.Ops{}, Anchor: e.tree.Anchor(), MaxNSN: e.log.LastLSN()}
	rep, err := c.Check()
	if err != nil {
		t.Fatalf("invariant check: %v", err)
	}
	if rep.Entries != 400 {
		t.Fatalf("entries = %d", rep.Entries)
	}
	if rep.Height < 2 {
		t.Errorf("height = %d, expected splits", rep.Height)
	}

	// Window queries against a brute-force model.
	for q := 0; q < 50; q++ {
		x, y := rng.Float64()*900, rng.Float64()*900
		w := rtree.Rect{XMin: x, YMin: y, XMax: x + 100, YMax: y + 100}
		want := 0
		for _, p := range pts {
			if w.Contains(rtree.Point(p.x, p.y)) {
				want++
			}
		}
		got := e.queryRect(w)
		if len(got) != want {
			t.Fatalf("window %v: got %d points, want %d", w, len(got), want)
		}
		for _, r := range got {
			x, y := rtree.DecodePoint(r.Key)
			if !w.Contains(rtree.Point(x, y)) {
				t.Fatalf("window %v returned outside point (%g,%g)", w, x, y)
			}
		}
	}
}

func TestRTreeDeleteAndOverlappingDuplicates(t *testing.T) {
	e := rtreeEnv(t, 6)
	// Many points at the same location — overlapping BPs guaranteed.
	var rids []page.RID
	for i := 0; i < 20; i++ {
		rids = append(rids, e.putPoint(50, 50))
	}
	got := e.queryRect(rtree.Rect{XMin: 49, YMin: 49, XMax: 51, YMax: 51})
	if len(got) != 20 {
		t.Fatalf("co-located points: got %d, want 20", len(got))
	}
	// Delete half.
	tx := e.begin()
	for i := 0; i < 10; i++ {
		if err := e.tree.Delete(tx, rtree.EncodePoint(50, 50), rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())
	got = e.queryRect(rtree.Rect{XMin: 49, YMin: 49, XMax: 51, YMax: 51})
	if len(got) != 10 {
		t.Fatalf("after deletes: got %d, want 10", len(got))
	}
}

func TestRTreeConcurrentInsertAndQuery(t *testing.T) {
	e := rtreeEnv(t, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 80; i++ {
				x := float64(w*300) + rng.Float64()*200
				y := rng.Float64() * 1000
				tx, err := e.tm.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rid, _ := e.heap.Insert(tx, []byte("p"))
				if err := e.tree.Insert(tx, rtree.EncodePoint(x, y), rid); err != nil {
					t.Errorf("insert: %v", err)
					tx.Abort()
					e.tree.TxnFinished(tx.ID())
					return
				}
				tx.Commit()
				e.tree.TxnFinished(tx.ID())
			}
		}(w)
	}
	wg.Wait()
	c := &check.Checker{Pool: e.pool, Ops: rtree.Ops{}, Anchor: e.tree.Anchor(), MaxNSN: e.log.LastLSN()}
	rep, err := c.Check()
	if err != nil {
		t.Fatalf("invariant check: %v", err)
	}
	if rep.Entries != 4*80 {
		t.Errorf("entries = %d, want %d", rep.Entries, 4*80)
	}
	if got := e.queryRect(rtree.Rect{XMin: -1, YMin: -1, XMax: 2000, YMax: 2000}); len(got) != 4*80 {
		t.Errorf("full window: %d", len(got))
	}
}

func TestRTreePhantomPrevention(t *testing.T) {
	// Spatial phantom: a scanner holds a window predicate; an insert of a
	// point inside the window must block.
	e := rtreeEnv(t, 8)
	e.putPoint(500, 500) // outside the window

	scanner := e.begin()
	window := rtree.Rect{XMin: 0, YMin: 0, XMax: 100, YMax: 100}
	rs, err := e.tree.Search(scanner, rtree.EncodeRect(window), gist.RepeatableRead)
	if err != nil || len(rs) != 0 {
		t.Fatalf("window scan: %v %v", rs, err)
	}

	tx := e.begin()
	done := make(chan error, 1)
	go func() {
		rid, _ := e.heap.Insert(tx, []byte("inside"))
		done <- e.tree.Insert(tx, rtree.EncodePoint(50, 50), rid)
	}()
	select {
	case err := <-done:
		t.Fatalf("spatial phantom insert not blocked: %v", err)
	case <-chTimeout(100):
	}
	scanner.Commit()
	e.tree.TxnFinished(scanner.ID())
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())
}

// chTimeout returns a channel that closes after ms milliseconds.
func chTimeout(ms int) <-chan time.Time { return time.After(time.Duration(ms) * time.Millisecond) }

// TestStringKeysIntegration drives the full stack with variable-length
// string keys: byte-space splits, BP replacements that grow encoded
// predicates in place, prefix queries, deletion and recovery-relevant
// logging all run through the same machinery.
func TestStringKeysIntegration(t *testing.T) {
	e := newEnv(t, gist.Config{Ops: strtree.Ops{}, MaxEntries: 6})
	words := []string{
		"apple", "apricot", "banana", "blueberry", "cherry", "citron",
		"date", "dragonfruit", "elderberry", "fig", "grape", "guava",
		"honeydew", "jackfruit", "kiwi", "kumquat", "lemon", "lime",
		"mango", "melon", "nectarine", "orange", "papaya", "peach",
		"pear", "pineapple", "plum", "pomegranate", "quince", "raspberry",
		"strawberry", "tangerine", "watermelon",
	}
	rids := make(map[string]page.RID)
	for _, w := range words {
		tx := e.begin()
		rid, err := e.heap.Insert(tx, []byte("fruit: "+w))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.tree.Insert(tx, strtree.EncodeKey([]byte(w)), rid); err != nil {
			t.Fatalf("insert %q: %v", w, err)
		}
		tx.Commit()
		e.tree.TxnFinished(tx.ID())
		rids[w] = rid
	}

	c := &check.Checker{Pool: e.pool, Ops: strtree.Ops{}, Anchor: e.tree.Anchor(), MaxNSN: e.log.LastLSN()}
	rep, err := c.Check()
	if err != nil {
		t.Fatalf("invariant check: %v", err)
	}
	if rep.Entries != len(words) {
		t.Fatalf("entries = %d, want %d", rep.Entries, len(words))
	}
	if rep.Height < 2 {
		t.Error("no splits with fanout 6")
	}

	tx := e.begin()
	// Prefix query.
	rs, err := e.tree.Search(tx, strtree.Prefix([]byte("p")), gist.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	wantP := map[string]bool{"papaya": true, "peach": true, "pear": true,
		"pineapple": true, "plum": true, "pomegranate": true}
	if len(rs) != len(wantP) {
		t.Fatalf("prefix p: %d hits, want %d", len(rs), len(wantP))
	}
	for _, r := range rs {
		if !wantP[string(strtree.DecodeKey(r.Key))] {
			t.Errorf("unexpected prefix hit %q", strtree.DecodeKey(r.Key))
		}
	}
	// Range query.
	rs, err = e.tree.Search(tx, strtree.EncodeRange([]byte("kiwi"), []byte("mango")), gist.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 { // kiwi, kumquat, lemon, lime, mango
		t.Fatalf("range [kiwi,mango]: %d hits", len(rs))
	}
	tx.Commit()
	e.tree.TxnFinished(tx.ID())

	// Delete and unique insert.
	tx2 := e.begin()
	if err := e.tree.Delete(tx2, strtree.EncodeKey([]byte("fig")), rids["fig"]); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	e.tree.TxnFinished(tx2.ID())
	tx3 := e.begin()
	rid, _ := e.heap.Insert(tx3, []byte("dup"))
	if err := e.tree.InsertUnique(tx3, strtree.EncodeKey([]byte("mango")), rid); !errors.Is(err, gist.ErrDuplicate) {
		t.Fatalf("unique: %v", err)
	}
	tx3.Abort()
	e.tree.TxnFinished(tx3.ID())

	tx4 := e.begin()
	defer tx4.Commit()
	rs, err = e.tree.Search(tx4, strtree.Prefix([]byte("fig")), gist.ReadCommitted)
	if err != nil || len(rs) != 0 {
		t.Errorf("deleted fig visible: %d, %v", len(rs), err)
	}
}
