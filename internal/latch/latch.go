// Package latch provides the short-term physical synchronization primitive
// used on buffer-pool frames.
//
// Latches differ from locks in the two ways footnote 8 of the paper lists:
// they are addressed physically (a field of the frame, not an entry in a
// hash table) so they are cheap to set and check, and the DBMS performs no
// deadlock detection on them — the tree protocol must be (and is)
// deadlock-free by construction. Latches also do not interact with locks: a
// transaction may hold a lock on a node while another holds the latch on
// the frame caching it.
//
// Beyond the classic S/X modes the latch carries a version word maintained
// as a seqlock: every X acquisition makes it odd, every X release makes it
// even again. Readers can visit the protected page optimistically — copy
// the bytes with no latch at all, then check that the version is unchanged
// and was even throughout (TryOptimistic / Validate) — and only fall back
// to the shared mode when a writer keeps invalidating them. S acquisitions
// never touch the version, so optimistic readers and latched readers
// coexist freely.
package latch

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Mode is a latch mode.
type Mode int

// Latch modes.
const (
	// S is the shared mode: any number of holders, no exclusive holder.
	S Mode = iota
	// X is the exclusive mode: a single holder.
	X
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

// The package-level registry surfaces latch traffic through the unified
// metrics pipeline (DB.Metrics, gistbench -exp metrics). Latches are
// embedded in buffer frames with no constructor of their own, so the
// counters are process-global, exactly as the former GlobalStats struct
// was — but now readable by name alongside every other subsystem.
var (
	reg          = stats.NewRegistry()
	sAcquires    = reg.Counter("latch.s_acquires")
	xAcquires    = reg.Counter("latch.x_acquires")
	optReads     = reg.Counter("latch.opt_reads")
	optRestarts  = reg.Counter("latch.opt_restarts")
	optFallbacks = reg.Counter("latch.opt_fallbacks")
	sWaitHist    = reg.Histogram("latch.s_wait")
	xWaitHist    = reg.Histogram("latch.x_wait")
	xHoldHist    = reg.Histogram("latch.x_hold")
)

// Metrics exposes the process-wide latch counter registry
// (latch.s_acquires, latch.x_acquires, latch.opt_reads, latch.opt_restarts,
// latch.opt_fallbacks).
func Metrics() *stats.Registry { return reg }

// AddOptStats folds one operation's optimistic-read tallies into the
// registry. Callers accumulate per operation and flush once at operation
// exit so the hot visit path performs no shared atomic adds.
func AddOptStats(reads, restarts, fallbacks int64) {
	if reads != 0 {
		optReads.Add(reads)
	}
	if restarts != 0 {
		optRestarts.Add(restarts)
	}
	if fallbacks != 0 {
		optFallbacks.Add(fallbacks)
	}
}

// Latch is a shared/exclusive latch with an optimistic-read version word.
// The zero value is ready to use.
//
// Latch holders must follow a deadlock-free discipline; the GiST protocol
// guarantees this by never latch-coupling (at most one node latch per
// operation at a time except for the strictly bottom-up, two-phase-latched
// structure-modification atomic actions, which order acquisitions leaf to
// root and left to right).
type Latch struct {
	mu sync.RWMutex

	// ver is the seqlock word: odd while an X holder is inside, bumped to
	// the next even value on X release. BumpVersion adds two (parity
	// preserved) to invalidate outstanding optimistic reads when the
	// protected bytes change identity without an X acquisition — the
	// buffer pool poisons a frame this way when remapping it to a
	// different page.
	ver atomic.Uint64

	// holdT0 is the X acquisition time in Unix nanoseconds, written by the
	// current exclusive holder and read back by its Release — the X lock
	// itself orders the accesses, so a plain field suffices. Zero when
	// instrumentation is off.
	holdT0 int64
}

// Acquire takes the latch in the given mode, blocking until available.
func (l *Latch) Acquire(m Mode) {
	l.AcquireTimed(m)
}

// AcquireTimed takes the latch in the given mode, blocking until available,
// and returns the nanoseconds spent blocked (0 on the uncontended fast path,
// which never reads the clock, and always 0 in the statsoff build).
func (l *Latch) AcquireTimed(m Mode) int64 {
	if m == S {
		if !stats.Enabled {
			l.mu.RLock()
			sAcquires.Add(1)
			return 0
		}
		var wait int64
		if !l.mu.TryRLock() {
			t0 := time.Now()
			l.mu.RLock()
			wait = time.Since(t0).Nanoseconds()
			sWaitHist.Observe(wait)
		}
		sAcquires.Add(1)
		return wait
	}
	if !stats.Enabled {
		l.mu.Lock()
		l.ver.Add(1) // odd: writer inside; optimistic captures now fail
		xAcquires.Add(1)
		return 0
	}
	var wait int64
	if l.mu.TryLock() {
		// Uncontended: hold timing is sampled (1 in xHoldSample) off the
		// acquire counter we bump anyway, so the fast path usually skips
		// the clock entirely.
		if xAcquires.Inc64()%xHoldSample == 0 {
			l.holdT0 = time.Now().UnixNano()
		}
		l.ver.Add(1)
		return 0
	}
	t0 := time.Now()
	l.mu.Lock()
	now := time.Now()
	wait = now.Sub(t0).Nanoseconds()
	xWaitHist.Observe(wait)
	l.holdT0 = now.UnixNano() // contended acquisitions always time the hold
	l.ver.Add(1)              // odd: writer inside; optimistic captures now fail
	xAcquires.Add(1)
	return wait
}

// xHoldSample is the uncontended X-hold sampling interval: one in every
// xHoldSample uncontended exclusive acquisitions times its hold for the
// latch.x_hold histogram. Contended acquisitions are always timed (the
// clock was already read for the wait).
const xHoldSample = 8

// Release releases the latch previously acquired in mode m.
func (l *Latch) Release(m Mode) {
	if m == S {
		l.mu.RUnlock()
		return
	}
	if stats.Enabled && l.holdT0 != 0 {
		xHoldHist.Observe(time.Now().UnixNano() - l.holdT0)
		l.holdT0 = 0
	}
	l.ver.Add(1) // even again, but different: outstanding validations fail
	l.mu.Unlock()
}

// TryAcquire attempts to take the latch without blocking and reports
// whether it succeeded.
func (l *Latch) TryAcquire(m Mode) bool {
	var ok bool
	if m == S {
		ok = l.mu.TryRLock()
		if ok {
			sAcquires.Add(1)
		}
		return ok
	}
	ok = l.mu.TryLock()
	if ok {
		if stats.Enabled && xAcquires.Inc64()%xHoldSample == 0 {
			l.holdT0 = time.Now().UnixNano()
		} else if !stats.Enabled {
			xAcquires.Add(1)
		}
		l.ver.Add(1)
	}
	return ok
}

// TryOptimistic captures the latch's version for an optimistic read.
// ok is false when an exclusive holder is currently inside (the version is
// odd) — the caller should retry or fall back to Acquire(S). On ok the
// caller may read the protected bytes (with RacyCopy, since the reads are
// deliberately unsynchronized) and must then call Validate before trusting
// anything it read.
func (l *Latch) TryOptimistic() (version uint64, ok bool) {
	v := l.ver.Load()
	return v, v&1 == 0
}

// Validate reports whether no exclusive holder entered (or the version was
// poisoned) since the given version was captured. A true return means every
// read between TryOptimistic and Validate observed bytes no X holder was
// concurrently mutating — equivalent to having held the S latch for that
// window.
func (l *Latch) Validate(version uint64) bool {
	return l.ver.Load() == version
}

// BumpVersion invalidates all outstanding optimistic reads without
// acquiring the latch, preserving the version's parity. The buffer pool
// calls it when a frame is remapped to a different page, so a reader that
// captured a version against the old page can never validate a copy of the
// new one (the eviction/recycle ABA).
func (l *Latch) BumpVersion() {
	l.ver.Add(2)
}
