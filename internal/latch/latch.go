// Package latch provides the short-term physical synchronization primitive
// used on buffer-pool frames.
//
// Latches differ from locks in the two ways footnote 8 of the paper lists:
// they are addressed physically (a field of the frame, not an entry in a
// hash table) so they are cheap to set and check, and the DBMS performs no
// deadlock detection on them — the tree protocol must be (and is)
// deadlock-free by construction. Latches also do not interact with locks: a
// transaction may hold a lock on a node while another holds the latch on
// the frame caching it.
package latch

import (
	"sync"
	"sync/atomic"
)

// Mode is a latch mode.
type Mode int

// Latch modes.
const (
	// S is the shared mode: any number of holders, no exclusive holder.
	S Mode = iota
	// X is the exclusive mode: a single holder.
	X
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

// Stats aggregates latch traffic counters across all latches; used by the
// instrumentation experiments.
type Stats struct {
	SAcquires atomic.Int64
	XAcquires atomic.Int64
}

// GlobalStats collects acquisition counts for every latch in the process.
var GlobalStats Stats

// Latch is a shared/exclusive latch. The zero value is ready to use.
//
// Latch holders must follow a deadlock-free discipline; the GiST protocol
// guarantees this by never latch-coupling (at most one node latched per
// operation at a time except for the strictly bottom-up, two-phase-latched
// structure-modification atomic actions, which order acquisitions leaf to
// root and left to right).
type Latch struct {
	mu sync.RWMutex
}

// Acquire takes the latch in the given mode, blocking until available.
func (l *Latch) Acquire(m Mode) {
	if m == S {
		l.mu.RLock()
		GlobalStats.SAcquires.Add(1)
		return
	}
	l.mu.Lock()
	GlobalStats.XAcquires.Add(1)
}

// Release releases the latch previously acquired in mode m.
func (l *Latch) Release(m Mode) {
	if m == S {
		l.mu.RUnlock()
		return
	}
	l.mu.Unlock()
}

// TryAcquire attempts to take the latch without blocking and reports
// whether it succeeded.
func (l *Latch) TryAcquire(m Mode) bool {
	var ok bool
	if m == S {
		ok = l.mu.TryRLock()
		if ok {
			GlobalStats.SAcquires.Add(1)
		}
		return ok
	}
	ok = l.mu.TryLock()
	if ok {
		GlobalStats.XAcquires.Add(1)
	}
	return ok
}
