package latch

import (
	"unsafe" // for go:linkname
)

//go:linkname memmove runtime.memmove
//go:noescape
func memmove(to, from unsafe.Pointer, n uintptr)

// RacyCopy copies len(dst) bytes from src into dst without synchronization
// and without race-detector instrumentation. It exists for the optimistic
// read protocol: the source bytes may be concurrently written by an X
// holder, and that race is intentional — the caller discards the copy
// unless Validate proves the window was quiet. Routing the copy through
// runtime.memmove keeps the deliberate race out of the race detector's
// shadow memory, so -race builds exercise the real protocol instead of
// drowning in reports about the one race the version check exists to
// resolve.
//
// dst must not overlap src, and src must have at least len(dst) bytes.
func RacyCopy(dst, src []byte) {
	if len(dst) == 0 {
		return
	}
	memmove(unsafe.Pointer(&dst[0]), unsafe.Pointer(&src[0]), uintptr(len(dst)))
}
