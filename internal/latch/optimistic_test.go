package latch

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
)

func TestTryOptimisticBasics(t *testing.T) {
	var l Latch

	v, ok := l.TryOptimistic()
	if !ok {
		t.Fatal("TryOptimistic failed on a free latch")
	}
	if !l.Validate(v) {
		t.Fatal("Validate failed with no intervening writer")
	}

	// S holders are invisible to optimistic readers.
	l.Acquire(S)
	v2, ok := l.TryOptimistic()
	if !ok {
		t.Fatal("TryOptimistic failed under an S holder")
	}
	if !l.Validate(v2) || !l.Validate(v) {
		t.Fatal("S acquisition disturbed the version word")
	}
	l.Release(S)

	// An X holder inside the critical section defeats the capture.
	l.Acquire(X)
	if _, ok := l.TryOptimistic(); ok {
		t.Fatal("TryOptimistic succeeded while X held")
	}
	l.Release(X)

	// A completed X cycle invalidates versions captured before it.
	if l.Validate(v) {
		t.Fatal("Validate passed across a full X acquire/release cycle")
	}
	v3, ok := l.TryOptimistic()
	if !ok || !l.Validate(v3) {
		t.Fatal("latch not optimistically readable after X release")
	}
}

func TestTryAcquireBumpsVersion(t *testing.T) {
	var l Latch
	v, _ := l.TryOptimistic()
	if !l.TryAcquire(X) {
		t.Fatal("TryAcquire X failed on free latch")
	}
	if _, ok := l.TryOptimistic(); ok {
		t.Fatal("TryOptimistic succeeded inside a TryAcquire(X) section")
	}
	l.Release(X)
	if l.Validate(v) {
		t.Fatal("Validate passed across a TryAcquire(X) cycle")
	}
}

func TestBumpVersionPoisons(t *testing.T) {
	var l Latch
	v, ok := l.TryOptimistic()
	if !ok {
		t.Fatal("TryOptimistic failed on free latch")
	}
	l.BumpVersion()
	if l.Validate(v) {
		t.Fatal("Validate passed across a BumpVersion poison")
	}
	// Parity is preserved: the latch stays optimistically readable.
	if _, ok := l.TryOptimistic(); !ok {
		t.Fatal("BumpVersion broke version parity")
	}
	// Poison while a writer is inside must keep the odd parity too.
	l.Acquire(X)
	l.BumpVersion()
	if _, ok := l.TryOptimistic(); ok {
		t.Fatal("BumpVersion under X made the version look quiescent")
	}
	l.Release(X)
	if _, ok := l.TryOptimistic(); !ok {
		t.Fatal("version parity wrong after poison-under-X cycle")
	}
}

func TestRacyCopyCopies(t *testing.T) {
	src := make([]byte, 8192)
	for i := range src {
		src[i] = byte(i * 7)
	}
	dst := make([]byte, len(src))
	RacyCopy(dst, src)
	if !bytes.Equal(dst, src) {
		t.Fatal("RacyCopy produced different bytes")
	}
	RacyCopy(nil, nil) // zero-length copy must be a no-op, not a panic
}

// TestSeqlockSnapshotConsistency is the load-bearing -race test for the
// whole optimistic strategy: readers RacyCopy a buffer that a writer is
// actively scribbling on, and every copy that validates must be internally
// consistent (uniform fill). It both proves the protocol and proves that
// the deliberate data race stays invisible to the race detector.
func TestSeqlockSnapshotConsistency(t *testing.T) {
	var l Latch
	buf := make([]byte, 4096)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fill := byte(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fill++
			l.Acquire(X)
			for i := range buf {
				buf[i] = fill
			}
			l.Release(X)
			runtime.Gosched()
		}
	}()

	snap := make([]byte, len(buf))
	validated := 0
	for validated < 200 {
		v, ok := l.TryOptimistic()
		if !ok {
			continue
		}
		RacyCopy(snap, buf)
		if !l.Validate(v) {
			continue
		}
		validated++
		for i := 1; i < len(snap); i++ {
			if snap[i] != snap[0] {
				close(stop)
				wg.Wait()
				t.Fatalf("validated snapshot torn at byte %d: %d vs %d",
					i, snap[i], snap[0])
			}
		}
	}
	close(stop)
	wg.Wait()
}
