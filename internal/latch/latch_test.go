package latch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedAllowsConcurrentReaders(t *testing.T) {
	var l Latch
	l.Acquire(S)
	done := make(chan struct{})
	go func() {
		l.Acquire(S)
		l.Release(S)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("second S acquire blocked")
	}
	l.Release(S)
}

func TestExclusiveBlocksShared(t *testing.T) {
	var l Latch
	l.Acquire(X)
	acquired := make(chan struct{})
	go func() {
		l.Acquire(S)
		close(acquired)
		l.Release(S)
	}()
	select {
	case <-acquired:
		t.Fatal("S acquired while X held")
	case <-time.After(20 * time.Millisecond):
	}
	l.Release(X)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("S never acquired after X release")
	}
}

func TestTryAcquire(t *testing.T) {
	var l Latch
	if !l.TryAcquire(X) {
		t.Fatal("TryAcquire X on free latch failed")
	}
	if l.TryAcquire(S) {
		t.Fatal("TryAcquire S succeeded while X held")
	}
	if l.TryAcquire(X) {
		t.Fatal("TryAcquire X succeeded while X held")
	}
	l.Release(X)
	if !l.TryAcquire(S) {
		t.Fatal("TryAcquire S on free latch failed")
	}
	if l.TryAcquire(X) {
		t.Fatal("TryAcquire X succeeded while S held")
	}
	l.Release(S)
}

func TestMutualExclusionCounter(t *testing.T) {
	var l Latch
	var counter int64
	var wg sync.WaitGroup
	const goroutines, iters = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Acquire(X)
				// Non-atomic increment protected only by the latch.
				counter = counter + 1
				l.Release(X)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Errorf("counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestReadersSeeConsistentPair(t *testing.T) {
	// Writers keep a pair equal under X; readers under S must never see
	// a torn pair.
	var l Latch
	var a, b int64
	stop := make(chan struct{})
	var torn atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.Acquire(S)
				if a != b {
					torn.Store(true)
				}
				l.Release(S)
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		l.Acquire(X)
		a++
		b++
		l.Release(X)
	}
	close(stop)
	wg.Wait()
	if torn.Load() {
		t.Error("reader observed torn write under S latch")
	}
}

func TestModeString(t *testing.T) {
	if S.String() != "S" || X.String() != "X" {
		t.Errorf("mode strings: %s %s", S, X)
	}
}

func TestStatsCount(t *testing.T) {
	beforeX := Metrics().Value("latch.x_acquires")
	beforeS := Metrics().Value("latch.s_acquires")
	var l Latch
	l.Acquire(X)
	l.Release(X)
	l.Acquire(S)
	l.Release(S)
	if got := Metrics().Value("latch.x_acquires"); got != beforeX+1 {
		t.Errorf("X acquire not counted: %d want %d", got, beforeX+1)
	}
	if got := Metrics().Value("latch.s_acquires"); got != beforeS+1 {
		t.Errorf("S acquire not counted: %d want %d", got, beforeS+1)
	}
}

func TestOptStatsFold(t *testing.T) {
	r0 := Metrics().Value("latch.opt_reads")
	s0 := Metrics().Value("latch.opt_restarts")
	f0 := Metrics().Value("latch.opt_fallbacks")
	AddOptStats(5, 2, 1)
	AddOptStats(0, 0, 0) // no-op fold must not disturb anything
	if got := Metrics().Value("latch.opt_reads"); got != r0+5 {
		t.Errorf("opt_reads = %d, want %d", got, r0+5)
	}
	if got := Metrics().Value("latch.opt_restarts"); got != s0+2 {
		t.Errorf("opt_restarts = %d, want %d", got, s0+2)
	}
	if got := Metrics().Value("latch.opt_fallbacks"); got != f0+1 {
		t.Errorf("opt_fallbacks = %d, want %d", got, f0+1)
	}
}
