package repl

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/page"
	"repro/internal/wal"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShipperClampFollowsAcks drives one raw-protocol subscriber and checks
// the truncation clamp at every stage: registration (acked 0 clamps to the
// log head), partial ack, and release on disconnect.
func TestShipperClampFollowsAcks(t *testing.T) {
	log := wal.NewMemLog()
	for i := 0; i < 30; i++ {
		log.Append(&wal.Record{Type: wal.RecBegin, Txn: 1})
	}
	if err := log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s := NewShipper(PrimaryDeps{Log: log})
	defer s.Close()
	if got := s.TruncationBound(); got != page.MaxLSN {
		t.Fatalf("bound with no subscribers = %d, want MaxLSN", got)
	}

	c, srv := net.Pipe()
	go s.Serve(srv)
	if err := writeFrame(c, encodeHello(1)); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(c)
	if err != nil {
		t.Fatal(err)
	}
	flushed, recs, err := decodeRecords(payload)
	if err != nil {
		t.Fatal(err)
	}
	if flushed != 30 || len(recs) != 30 || recs[0].LSN != 1 {
		t.Fatalf("batch: flushed %d, %d records from %d", flushed, len(recs), recs[0].LSN)
	}
	// Ack only through 10: the clamp must hold the head at 11.
	if err := writeFrame(c, encodeAck(10)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "clamp at 11", func() bool { return s.TruncationBound() == 11 })

	// Disconnect releases the clamp.
	c.Close()
	waitFor(t, "clamp release", func() bool { return s.TruncationBound() == page.MaxLSN })
}

// TestShipperResumeMidLog checks a reconnect-style hello: the stream starts
// exactly at the requested LSN.
func TestShipperResumeMidLog(t *testing.T) {
	log := wal.NewMemLog()
	for i := 0; i < 20; i++ {
		log.Append(&wal.Record{Type: wal.RecBegin, Txn: 1})
	}
	if err := log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s := NewShipper(PrimaryDeps{Log: log})
	defer s.Close()
	c, srv := net.Pipe()
	go s.Serve(srv)
	if err := writeFrame(c, encodeHello(11)); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(c)
	if err != nil {
		t.Fatal(err)
	}
	_, recs, err := decodeRecords(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || recs[0].LSN != 11 {
		t.Fatalf("resume batch: %d records from %d, want 10 from 11", len(recs), recs[0].LSN)
	}
	c.Close()
}

// TestShipperAckTimeoutReleasesClamp: a subscriber that stops acking
// without breaking the transport (partition, hung process) must not pin the
// truncation clamp forever — the bounded ack wait ends the session and
// releases it.
func TestShipperAckTimeoutReleasesClamp(t *testing.T) {
	log := wal.NewMemLog()
	for i := 0; i < 10; i++ {
		log.Append(&wal.Record{Type: wal.RecBegin, Txn: 1})
	}
	if err := log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s := NewShipper(PrimaryDeps{Log: log})
	defer s.Close()
	s.ackTimeout = 50 * time.Millisecond

	c, srv := net.Pipe()
	defer c.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(srv) }()
	if err := writeFrame(c, encodeHello(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(c); err != nil {
		t.Fatal(err)
	}
	// Never ack. The session must end on its own and drop the clamp.
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Serve returned nil, want ack-timeout error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve still blocked after the ack timeout")
	}
	if got := s.TruncationBound(); got != page.MaxLSN {
		t.Fatalf("clamp still held at %d after ack timeout", got)
	}
}

// noDeadlineConn hides net.Pipe's deadline support so the watchdog fallback
// path of the bounded ack wait is exercised.
type noDeadlineConn struct {
	r io.Reader
	w io.Writer
	c io.Closer
}

func (n *noDeadlineConn) Read(p []byte) (int, error)  { return n.r.Read(p) }
func (n *noDeadlineConn) Write(p []byte) (int, error) { return n.w.Write(p) }
func (n *noDeadlineConn) Close() error                { return n.c.Close() }

// TestShipperAckTimeoutWatchdog is TestShipperAckTimeoutReleasesClamp over a
// transport without SetReadDeadline: the watchdog closes the conn instead.
func TestShipperAckTimeoutWatchdog(t *testing.T) {
	log := wal.NewMemLog()
	log.Append(&wal.Record{Type: wal.RecBegin, Txn: 1})
	if err := log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s := NewShipper(PrimaryDeps{Log: log})
	defer s.Close()
	s.ackTimeout = 50 * time.Millisecond

	c, srv := net.Pipe()
	defer c.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(&noDeadlineConn{r: srv, w: srv, c: srv}) }()
	if err := writeFrame(c, encodeHello(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(c); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Serve returned nil, want ack-timeout error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve still blocked after the ack timeout")
	}
	if got := s.TruncationBound(); got != page.MaxLSN {
		t.Fatalf("clamp still held at %d after ack timeout", got)
	}
}

// TestShipperRefusesTruncatedResumeWithoutSnapshot: when the resume point
// predates the retained head and no snapshot can be produced (no disk
// lister, no TM), the subscriber gets a terminal msgErr.
func TestShipperRefusesTruncatedResumeWithoutSnapshot(t *testing.T) {
	log := wal.NewMemLog()
	for i := 0; i < 20; i++ {
		log.Append(&wal.Record{Type: wal.RecBegin, Txn: 1})
	}
	if err := log.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := log.DiscardBefore(11); err != nil {
		t.Fatal(err)
	}
	s := NewShipper(PrimaryDeps{Log: log})
	defer s.Close()
	c, srv := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(srv) }()
	if err := writeFrame(c, encodeHello(5)); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(c)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != msgErr {
		t.Fatalf("message type %d, want msgErr", payload[0])
	}
	if err := <-errCh; !errors.Is(err, ErrResyncRequired) {
		t.Fatalf("Serve returned %v, want ErrResyncRequired", err)
	}
	if got := s.Metrics().Value("repl.ship_refusals"); got != 1 {
		t.Fatalf("ship_refusals = %d, want 1", got)
	}
	c.Close()
}
