package repl

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/page"
	"repro/internal/wal"
)

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	payload := encodeHello(42)
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %x, want %x", got, payload)
	}
	lsn, err := decodeLSN(got)
	if err != nil || lsn != 42 {
		t.Fatalf("decodeLSN = %d, %v", lsn, err)
	}
}

func TestFrameCRCRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, encodeAck(7)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] ^= 0x40 // flip a payload bit
	if _, err := readFrame(bytes.NewReader(b)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt frame read: %v, want ErrBadFrame", err)
	}
}

func TestRecordsRoundtrip(t *testing.T) {
	recs := []*wal.Record{
		{LSN: 5, Type: wal.RecBegin, Txn: 3},
		{LSN: 6, Type: wal.RecAddLeafEntry, Txn: 3, Pg: 9, PrevLSN: 5, Body: []byte("entry-bytes")},
		{LSN: 7, Type: wal.RecHeapInsert, Txn: 3, Pg: 4, RID: page.RID{Page: 4, Slot: 2}, PrevLSN: 6, Body: []byte("rec")},
	}
	payload := encodeRecords(99, recs)
	flushed, got, err := decodeRecords(payload)
	if err != nil {
		t.Fatal(err)
	}
	if flushed != 99 || len(got) != len(recs) {
		t.Fatalf("flushed %d, %d records", flushed, len(got))
	}
	for i, r := range got {
		if r.LSN != recs[i].LSN || r.Type != recs[i].Type || r.Txn != recs[i].Txn ||
			r.Pg != recs[i].Pg || r.RID != recs[i].RID || !bytes.Equal(r.Body, recs[i].Body) {
			t.Fatalf("record %d decoded as %+v, want %+v", i, r, recs[i])
		}
	}
}

func TestSnapRoundtrip(t *testing.T) {
	img1 := bytes.Repeat([]byte{0xAB}, page.Size)
	img2 := bytes.Repeat([]byte{0x17}, page.Size)
	payload := encodeSnap(123, 100, 127, []snapPage{{id: 1, img: img1}, {id: 9, img: img2}})
	base, start, imgMax, pages, err := decodeSnap(payload)
	if err != nil {
		t.Fatal(err)
	}
	if base != 123 || start != 100 || imgMax != 127 || len(pages) != 2 {
		t.Fatalf("base %d, start %d, imgMax %d, %d pages", base, start, imgMax, len(pages))
	}
	if pages[0].id != 1 || !bytes.Equal(pages[0].img, img1) || pages[1].id != 9 || !bytes.Equal(pages[1].img, img2) {
		t.Fatal("page images did not roundtrip")
	}
}

func TestSnapRejectsBadStart(t *testing.T) {
	// start must be in [1, base+1]: 0 and base+2 are both protocol errors.
	for _, start := range []page.LSN{0, 125} {
		payload := encodeSnap(123, start, 123, nil)
		if _, _, _, _, err := decodeSnap(payload); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("start %d decoded: %v, want ErrBadFrame", start, err)
		}
	}
}
