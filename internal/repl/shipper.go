package repl

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/latch"
	"repro/internal/page"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// PrimaryDeps is what the shipper reads from the primary engine.
type PrimaryDeps struct {
	Log  *wal.Log
	Pool *buffer.Pool
	Disk storage.Manager
	// TM enables the snapshot full-resync path (the stream start must
	// cover every in-flight transaction's first record so a later Promote
	// can undo it). Nil disables snapshots: a too-far-behind subscriber is
	// refused instead.
	TM *txn.Manager
}

// pageLister is the optional disk capability the snapshot path needs
// (storage.MemDisk has it; a disk without it refuses resync).
type pageLister interface {
	PageIDs() []page.PageID
}

// BatchMax is the default cap on records per shipped batch.
const BatchMax = 512

// heartbeatEvery is how long an idle (fully caught-up) session waits before
// sending an empty batch. The heartbeat is how the shipper notices a
// subscriber that vanished while there was nothing to ship — without it, a
// dead idle session would hold the truncation clamp forever — and it also
// carries the current flushed watermark for the replica's lag gauge.
const heartbeatEvery = 500 * time.Millisecond

// defaultAckTimeout bounds how long a session waits for a subscriber frame
// (the hello, and the ack after every batch or heartbeat). A subscriber that
// vanishes without breaking the transport — network partition, hung process
// — would otherwise park the session in a read forever while its ack pins
// TruncationBound, so the primary's log could never truncate. Generous
// relative to apply time for a full batch; a healthy-but-slow replica that
// trips it just reconnects and resumes.
const defaultAckTimeout = 10 * time.Second

// session is one live subscriber, tracked for the truncation clamp.
type session struct {
	acked atomic.Uint64 // highest LSN the subscriber has applied
}

// Shipper tails a primary's WAL at the flushed watermark and streams it to
// subscribers. One Serve call per subscriber; sessions follow a strict
// alternating batch/ack flow (deadlock-free even over an unbuffered
// in-memory pipe). While a session lives, the primary's log head is
// clamped: TruncationBound (wired into the maintenance truncator via
// Deps.ReplBound) never allows truncating past the slowest subscriber's
// acked LSN, so a reconnecting replica can always resume — a subscriber
// that disconnects releases its clamp and risks needing a full resync.
type Shipper struct {
	deps       PrimaryDeps
	batchMax   int
	ackTimeout time.Duration

	mu       sync.Mutex
	sessions map[*session]struct{}
	conns    map[io.Closer]struct{}
	closed   bool
	stop     chan struct{}
	wg       sync.WaitGroup

	reg       *stats.Registry
	batches   *stats.Counter
	records   *stats.Counter
	bytes     *stats.Counter
	acks      *stats.Counter
	snapshots *stats.Counter
	refusals  *stats.Counter
}

// NewShipper builds a shipper over a primary's parts.
func NewShipper(d PrimaryDeps) *Shipper {
	s := &Shipper{
		deps:       d,
		batchMax:   BatchMax,
		ackTimeout: defaultAckTimeout,
		sessions:   make(map[*session]struct{}),
		conns:      make(map[io.Closer]struct{}),
		stop:       make(chan struct{}),
	}
	s.reg = stats.NewRegistry()
	s.batches = s.reg.Counter("repl.ship_batches")
	s.records = s.reg.Counter("repl.ship_records")
	s.bytes = s.reg.Counter("repl.ship_bytes")
	s.acks = s.reg.Counter("repl.ship_acks")
	s.snapshots = s.reg.Counter("repl.ship_snapshots")
	s.refusals = s.reg.Counter("repl.ship_refusals")
	s.reg.Gauge("repl.subscribers", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.sessions))
	})
	s.reg.Gauge("repl.min_acked_lsn", func() int64 {
		min, ok := s.MinAcked()
		if !ok {
			return -1
		}
		return int64(min)
	})
	return s
}

// Metrics exposes the shipper's counter registry.
func (s *Shipper) Metrics() *stats.Registry { return s.reg }

// MinAcked returns the lowest acked LSN across live sessions (ok=false when
// there are none).
func (s *Shipper) MinAcked() (page.LSN, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	min, ok := page.MaxLSN, false
	for sess := range s.sessions {
		ok = true
		if a := page.LSN(sess.acked.Load()); a < min {
			min = a
		}
	}
	return min, ok
}

// TruncationBound is the maintenance hook: the highest log-head bound
// truncation may use without stranding a live subscriber. With subscribers
// it is min(acked)+1 — every record a subscriber has not applied stays
// retained; with none it is MaxLSN (no clamp, a returning replica resyncs).
func (s *Shipper) TruncationBound() page.LSN {
	min, ok := s.MinAcked()
	if !ok {
		return page.MaxLSN
	}
	return min + 1
}

// Serve runs one subscriber session over conn until the stream breaks, the
// subscriber disconnects, or the shipper closes. It blocks; run it in a
// goroutine per subscriber.
func (s *Shipper) Serve(conn io.ReadWriteCloser) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return errors.New("repl: shipper closed")
	}
	// Register before reading the hello: acked=0 clamps truncation for
	// the whole handshake, so the resume point cannot be truncated out
	// from under a subscriber that already told us it exists.
	sess := &session{}
	s.sessions[sess] = struct{}{}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.sessions, sess)
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.wg.Done()
	}()

	payload, err := s.readFrameTimeout(conn)
	if err != nil {
		return fmt.Errorf("repl: hello: %w", err)
	}
	if len(payload) == 0 || payload[0] != msgHello {
		return fmt.Errorf("%w: expected hello", ErrBadFrame)
	}
	resume, err := decodeLSN(payload)
	if err != nil {
		return err
	}
	if resume == 0 {
		resume = 1
	}

	from := resume
	if resume <= s.deps.Log.Base() {
		// The subscriber's gap is truncated: seed it with a snapshot, or
		// refuse if the disk/TM cannot produce one.
		base, start, imgMax, pages, serr := s.snapshot()
		if serr != nil {
			s.refusals.Inc()
			_ = writeFrame(conn, encodeErr(serr.Error()))
			return serr
		}
		if err := writeFrame(conn, encodeSnap(base, start, imgMax, pages)); err != nil {
			return err
		}
		s.snapshots.Inc()
		// The replica rebases its log to start-1 and re-applies [start,
		// base] from the stream (that prefix carries the in-flight
		// transactions a later Promote must undo), so the clamp must retain
		// it: ack start-1, not base.
		sess.acked.Store(uint64(start - 1))
		from = start
	} else {
		sess.acked.Store(uint64(resume - 1))
	}

	watch := s.deps.Log.WatchFlushed()
	defer s.deps.Log.UnwatchFlushed(watch)
	for {
		recs, terr := s.deps.Log.TailFrom(from, s.batchMax)
		if terr != nil {
			// Head truncated past the session's resume point (possible
			// when the clamp is not wired into maintenance).
			s.refusals.Inc()
			_ = writeFrame(conn, encodeErr(ErrResyncRequired.Error()))
			return fmt.Errorf("%w: %v", ErrResyncRequired, terr)
		}
		if len(recs) == 0 {
			select {
			case <-watch:
				continue
			case <-s.stop:
				return nil
			case <-time.After(heartbeatEvery):
				// Fall through and ship an empty batch: the ack read below
				// is what detects a subscriber that died while idle.
			}
		}
		payload := encodeRecords(s.deps.Log.FlushedLSN(), recs)
		if err := writeFrame(conn, payload); err != nil {
			return err
		}
		if len(recs) > 0 {
			s.batches.Inc()
			s.records.Add(int64(len(recs)))
			s.bytes.Add(int64(len(payload)))
		}
		// Strict alternation: wait for the ack before the next batch. The
		// wait is bounded — a vanished subscriber must not pin the
		// truncation clamp forever — and a timeout ends the session,
		// dropping its clamp on the deferred deregistration above.
		ack, err := s.readFrameTimeout(conn)
		if err != nil {
			return err
		}
		if len(ack) == 0 || ack[0] != msgAck {
			return fmt.Errorf("%w: expected ack", ErrBadFrame)
		}
		applied, err := decodeLSN(ack)
		if err != nil {
			return err
		}
		sess.acked.Store(uint64(applied))
		s.acks.Inc()
		if len(recs) > 0 {
			from = recs[len(recs)-1].LSN + 1
		}
	}
}

// ErrAckTimeout ends a session whose subscriber stopped acking without
// breaking the transport; its truncation clamp is released.
var ErrAckTimeout = errors.New("repl: subscriber ack timed out")

// readFrameTimeout reads one subscriber frame, bounding the wait by
// s.ackTimeout. Transports with read deadlines (net.Conn, including
// net.Pipe) use SetReadDeadline; anything else gets a watchdog that closes
// the transport when the timer fires, which unblocks the parked read.
func (s *Shipper) readFrameTimeout(conn io.ReadWriteCloser) ([]byte, error) {
	type readDeadliner interface {
		SetReadDeadline(time.Time) error
	}
	if d, ok := conn.(readDeadliner); ok {
		if d.SetReadDeadline(time.Now().Add(s.ackTimeout)) == nil {
			payload, err := readFrame(conn)
			_ = d.SetReadDeadline(time.Time{})
			return payload, err
		}
	}
	timer := time.AfterFunc(s.ackTimeout, func() { conn.Close() })
	payload, err := readFrame(conn)
	if !timer.Stop() {
		return nil, ErrAckTimeout
	}
	return payload, err
}

// snapshot produces a fuzzy full-resync seed: every allocated page's image
// (latched S, so each image is action-consistent) plus the LSN bounds. The
// stream restarts at start = min(flushed+1, oldest in-flight transaction's
// first record) so the seeded replica can still undo the surviving ATT at
// promotion; base is the flushed watermark the images are guaranteed to
// cover (the pageLSN gate makes re-applying [start, base] idempotent). For
// any image ahead of the durable frontier the log is forced first, so a
// shipped image never holds effects the primary could lose in a crash.
// imgMax is the highest pageLSN across the shipped images: the images were
// copied at different moments, so the seeded replica is not at any single
// log-prefix state until it has applied through imgMax (the receiver gates
// read service on it).
func (s *Shipper) snapshot() (base, start, imgMax page.LSN, pages []snapPage, err error) {
	lister, ok := s.deps.Disk.(pageLister)
	if !ok || s.deps.TM == nil {
		return 0, 0, 0, nil, ErrResyncRequired
	}
	base = s.deps.Log.FlushedLSN()
	start = base + 1
	if m := s.deps.TM.MinActiveFirstLSN(); m != 0 && m < start {
		start = m
	}
	if logBase := s.deps.Log.Base(); start <= logBase {
		// The oldest in-flight transaction's records predate the retained
		// head; no consistent stream start exists. (Unreachable when
		// truncation respects MinActiveFirstLSN, as the maintenance
		// truncator does.)
		return 0, 0, 0, nil, fmt.Errorf("%w: stream start %d behind log head %d", ErrResyncRequired, start, logBase+1)
	}
	for _, id := range lister.PageIDs() {
		f, ferr := s.deps.Pool.Fetch(id)
		if errors.Is(ferr, storage.ErrNoSuchPage) {
			continue // freed while we walked; the stream's Free-Page covers it
		}
		if ferr != nil {
			return 0, 0, 0, nil, ferr
		}
		f.Latch.Acquire(latch.S)
		img := make([]byte, page.Size)
		copy(img, f.Page.Bytes())
		lsn := f.Page.LSN()
		f.Latch.Release(latch.S)
		s.deps.Pool.Unpin(f, false, 0)
		if lsn > base {
			// WAL rule for shipping: force the log through everything the
			// image contains before it leaves the primary.
			if ferr := s.deps.Log.FlushTo(lsn); ferr != nil {
				return 0, 0, 0, nil, ferr
			}
		}
		if lsn > imgMax {
			imgMax = lsn
		}
		pages = append(pages, snapPage{id: id, img: img})
	}
	return base, start, imgMax, pages, nil
}

// ServeListener accepts subscribers from ln until Close. Each connection
// gets its own Serve goroutine.
func (s *Shipper) ServeListener(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("repl: shipper closed")
	}
	s.conns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
				return err
			}
		}
		go s.Serve(conn)
	}
}

// Close stops every session (closing their transports unblocks parked
// reads/writes) and waits for them to drain.
func (s *Shipper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}
