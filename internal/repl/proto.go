// Package repl is WAL-shipping replication: a continuous restart. The
// primary's shipper tails the durable log prefix (never past the flushed
// watermark — records above it could still be lost to a crash, and a
// replica that applied them would diverge from every state the primary can
// restart into) and streams CRC-framed record batches to subscribers. Each
// replica appends the stream to its own in-memory log verbatim and feeds it
// through the restart redo machinery run as a long-lived loop
// (recovery.Applier), so between batches its buffer pool holds exactly the
// state a crash-restart over the received prefix would produce: consistent,
// read-serviceable, and promotable. Promote drains the stream, aborts the
// surviving in-flight transactions (restart's undo phase), and the replica
// is a read-write primary.
//
// This file is the wire protocol. Every message is one frame:
//
//	u32 length | u32 CRC32-IEEE(payload) | payload
//
// where payload = 1-byte message type + body. Records travel in their
// wal.Record.Encode() form — the same bytes the file log persists — so the
// stream inherits the log's own encoding and its property that a record
// re-decoded on the replica is indistinguishable from one recovered from
// disk.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/page"
	"repro/internal/wal"
)

// Message types.
const (
	// msgHello opens a session (replica → primary): body is the resume
	// LSN, the first record the replica wants (last acked + 1; 1 for a
	// fresh replica).
	msgHello = byte(1)
	// msgRecords is one shipped batch (primary → replica): body is the
	// primary's flushed watermark (for the lag gauge), then a count and
	// count length-prefixed encoded records, contiguous by LSN.
	msgRecords = byte(2)
	// msgAck acknowledges apply progress (replica → primary): body is the
	// replica's applied LSN. The primary's truncation clamp holds the log
	// head at min(acked)+1 across subscribers.
	msgAck = byte(3)
	// msgSnap seeds a fresh replica whose resume point was truncated from
	// the primary's log head: body is the snapshot base LSN (the flushed
	// watermark the images are guaranteed to cover), the stream start LSN
	// (min(base+1, oldest in-flight transaction's first record) — the
	// replica rebases its log to start-1 so the in-flight prefix
	// [start, base] ships into its log, ATT, and dirty-insert filter; the
	// pageLSN gate makes its redo over the images idempotent), the max
	// pageLSN across the shipped images (the images are fuzzy — reads are
	// not log-prefix-consistent until apply reaches this bound), and full
	// page images.
	msgSnap = byte(4)
	// msgErr is a terminal refusal (primary → replica), e.g. resync
	// required but the disk cannot produce a snapshot.
	msgErr = byte(5)
)

// maxFrame bounds a frame so a corrupt length prefix cannot allocate
// unbounded memory. Snapshots ship many pages per frame; 1 GiB is far above
// any honest frame this engine produces.
const maxFrame = 1 << 30

// ErrBadFrame is returned when a frame fails its CRC or structural checks.
var ErrBadFrame = errors.New("repl: bad frame")

// ErrResyncRequired is a shipper refusal: the subscriber's resume point
// predates the retained log head and no snapshot path is available, so the
// replica must be rebuilt from scratch.
var ErrResyncRequired = errors.New("repl: resume point truncated; full resync required")

// writeFrame sends one framed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("%w: frame of %d bytes", ErrBadFrame, len(payload))
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one framed payload, verifying the CRC.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: length %d", ErrBadFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: crc mismatch", ErrBadFrame)
	}
	return payload, nil
}

// encodeHello builds a msgHello payload.
func encodeHello(resumeFrom page.LSN) []byte {
	b := make([]byte, 9)
	b[0] = msgHello
	binary.BigEndian.PutUint64(b[1:], uint64(resumeFrom))
	return b
}

// encodeAck builds a msgAck payload.
func encodeAck(applied page.LSN) []byte {
	b := make([]byte, 9)
	b[0] = msgAck
	binary.BigEndian.PutUint64(b[1:], uint64(applied))
	return b
}

// decodeLSN decodes the single-LSN body shared by msgHello and msgAck.
func decodeLSN(payload []byte) (page.LSN, error) {
	if len(payload) != 9 {
		return 0, fmt.Errorf("%w: lsn body of %d bytes", ErrBadFrame, len(payload))
	}
	return page.LSN(binary.BigEndian.Uint64(payload[1:])), nil
}

// encodeRecords builds a msgRecords payload.
func encodeRecords(flushed page.LSN, recs []*wal.Record) []byte {
	b := make([]byte, 13, 13+len(recs)*64)
	b[0] = msgRecords
	binary.BigEndian.PutUint64(b[1:9], uint64(flushed))
	binary.BigEndian.PutUint32(b[9:13], uint32(len(recs)))
	for _, rec := range recs {
		enc := rec.Encode()
		var ln [4]byte
		binary.BigEndian.PutUint32(ln[:], uint32(len(enc)))
		b = append(b, ln[:]...)
		b = append(b, enc...)
	}
	return b
}

// decodeRecords parses a msgRecords payload.
func decodeRecords(payload []byte) (flushed page.LSN, recs []*wal.Record, err error) {
	if len(payload) < 13 {
		return 0, nil, fmt.Errorf("%w: records body of %d bytes", ErrBadFrame, len(payload))
	}
	flushed = page.LSN(binary.BigEndian.Uint64(payload[1:9]))
	count := binary.BigEndian.Uint32(payload[9:13])
	recs = make([]*wal.Record, 0, count)
	b := payload[13:]
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return 0, nil, fmt.Errorf("%w: truncated record length", ErrBadFrame)
		}
		n := binary.BigEndian.Uint32(b[:4])
		b = b[4:]
		if uint32(len(b)) < n {
			return 0, nil, fmt.Errorf("%w: truncated record body", ErrBadFrame)
		}
		rec, derr := wal.DecodeRecord(b[:n])
		if derr != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrBadFrame, derr)
		}
		recs = append(recs, rec)
		b = b[n:]
	}
	if len(b) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b))
	}
	return flushed, recs, nil
}

// snapPage is one page image of a snapshot.
type snapPage struct {
	id  page.PageID
	img []byte
}

// encodeSnap builds a msgSnap payload.
func encodeSnap(base, start, imgMax page.LSN, pages []snapPage) []byte {
	b := make([]byte, 29, 29+len(pages)*(4+page.Size))
	b[0] = msgSnap
	binary.BigEndian.PutUint64(b[1:9], uint64(base))
	binary.BigEndian.PutUint64(b[9:17], uint64(start))
	binary.BigEndian.PutUint64(b[17:25], uint64(imgMax))
	binary.BigEndian.PutUint32(b[25:29], uint32(len(pages)))
	for _, p := range pages {
		var id [4]byte
		binary.BigEndian.PutUint32(id[:], uint32(p.id))
		b = append(b, id[:]...)
		b = append(b, p.img...)
	}
	return b
}

// decodeSnap parses a msgSnap payload.
func decodeSnap(payload []byte) (base, start, imgMax page.LSN, pages []snapPage, err error) {
	if len(payload) < 29 {
		return 0, 0, 0, nil, fmt.Errorf("%w: snap body of %d bytes", ErrBadFrame, len(payload))
	}
	base = page.LSN(binary.BigEndian.Uint64(payload[1:9]))
	start = page.LSN(binary.BigEndian.Uint64(payload[9:17]))
	imgMax = page.LSN(binary.BigEndian.Uint64(payload[17:25]))
	if start == 0 || start > base+1 {
		return 0, 0, 0, nil, fmt.Errorf("%w: snap start %d, base %d", ErrBadFrame, start, base)
	}
	count := binary.BigEndian.Uint32(payload[25:29])
	b := payload[29:]
	if len(b) != int(count)*(4+page.Size) {
		return 0, 0, 0, nil, fmt.Errorf("%w: snap body size", ErrBadFrame)
	}
	pages = make([]snapPage, count)
	for i := range pages {
		pages[i].id = page.PageID(binary.BigEndian.Uint32(b[:4]))
		pages[i].img = b[4 : 4+page.Size : 4+page.Size]
		b = b[4+page.Size:]
	}
	return base, start, imgMax, pages, nil
}

// encodeErr builds a msgErr payload.
func encodeErr(msg string) []byte {
	b := make([]byte, 1+len(msg))
	b[0] = msgErr
	copy(b[1:], msg)
	return b
}
