package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/recovery"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// ReceiverDeps is the replica-side engine the receiver feeds: an in-memory
// replica log (wal.NewReplicaLog), a fresh pool/disk, and a transaction
// manager that serves read-only transactions until promotion (and losers'
// aborts at promotion).
type ReceiverDeps struct {
	Log     *wal.Log
	Pool    *buffer.Pool
	Disk    storage.Manager
	TM      *txn.Manager
	Workers int // redo fan-out for the continuous applier
}

// ErrPromoted is returned by replica operations after Promote.
var ErrPromoted = errors.New("repl: replica promoted")

// Receiver is a replica's streaming end: it dials the primary, resumes the
// stream at its own log's last LSN + 1, appends each shipped batch to the
// replica log verbatim, and repeats history through a continuous
// recovery.Applier. A reader/writer gate serializes batch application
// against read traffic: reads hold the gate shared, each batch holds it
// exclusive, so every read observes a state some crash-restart of the
// primary could have produced (an exact log-prefix state).
//
// The receiver survives connection loss: it redials with backoff and
// resumes from its own position — re-shipped records are deduplicated by
// LSN before append, and redo's pageLSN gate makes any overlap idempotent.
type Receiver struct {
	deps ReceiverDeps
	dial func() (io.ReadWriteCloser, error)
	ap   *recovery.Applier

	// gate is the apply-vs-read gate. Exposed through RLock/RUnlock for
	// the facade's read path.
	gate sync.RWMutex

	mu      sync.Mutex
	conn    io.ReadWriteCloser
	stopped bool
	err     error // terminal stream error (resync required, bad frame)
	stop    chan struct{}
	wg      sync.WaitGroup

	// Apply-progress broadcast: applyCh is closed and replaced on every
	// advance; WaitApplied parks on it.
	applyMu sync.Mutex
	applyCh chan struct{}

	// pending maps data RIDs inserted by transactions whose commit has
	// not yet been shipped; the read path filters them out so replica
	// reads are dirty-read-free for inserts. (Uncommitted deletes are
	// visible early — the mark is applied by redo — which is the
	// documented anomaly of serving reads from repeated history.)
	pendMu  sync.Mutex
	pending map[page.RID]page.TxnID
	byTxn   map[page.TxnID]map[page.RID]struct{}

	primaryFlushed atomic.Uint64

	// readyLSN is the read-service gate for a snapshot-seeded replica: the
	// seed's page images are fuzzy (each copied at a different moment), so
	// until apply reaches the newest image pageLSN the pool is not at any
	// single log-prefix state. Zero for a stream-from-scratch replica.
	readyLSN atomic.Uint64

	reg        *stats.Registry
	batches    *stats.Counter
	records    *stats.Counter
	reconnects *stats.Counter
	snapLoads  *stats.Counter
	lagHist    *stats.Histogram
	promoted   atomic.Bool
}

// NewReceiver builds a receiver over a replica's parts. dial opens a new
// transport to the primary's shipper; it is called once per (re)connect.
func NewReceiver(d ReceiverDeps, dial func() (io.ReadWriteCloser, error)) *Receiver {
	r := &Receiver{
		deps:    d,
		dial:    dial,
		ap:      recovery.NewApplier(d.Log, d.Pool, d.Disk, d.TM, d.Workers),
		stop:    make(chan struct{}),
		applyCh: make(chan struct{}),
		pending: make(map[page.RID]page.TxnID),
		byTxn:   make(map[page.TxnID]map[page.RID]struct{}),
	}
	r.reg = stats.NewRegistry()
	r.batches = r.reg.Counter("repl.apply_batches")
	r.records = r.reg.Counter("repl.apply_records")
	r.reconnects = r.reg.Counter("repl.reconnects")
	r.snapLoads = r.reg.Counter("repl.snapshot_loads")
	// Sampled after every applied batch, in LSN units (records behind the
	// primary's flushed watermark), not nanoseconds: the distribution of
	// how far reads trail the primary.
	r.lagHist = r.reg.Histogram("repl.apply_lag")
	r.reg.Gauge("repl.applied_lsn", func() int64 { return int64(r.ap.AppliedLSN()) })
	r.reg.Gauge("repl.apply_lag_lsn", func() int64 {
		lag := int64(r.primaryFlushed.Load()) - int64(r.ap.AppliedLSN())
		if lag < 0 {
			lag = 0
		}
		return lag
	})
	return r
}

// Metrics exposes the receiver's counter registry.
func (r *Receiver) Metrics() *stats.Registry { return r.reg }

// ApplierMetrics exposes the continuous-redo engine's recovery registry
// (recovery.redo_drain and friends), for the replica facade's snapshot.
func (r *Receiver) ApplierMetrics() *stats.Registry { return r.ap.Metrics() }

// AppliedLSN is the LSN through which the replica has repeated history.
func (r *Receiver) AppliedLSN() page.LSN { return r.ap.AppliedLSN() }

// Lag is the last observed primary flushed watermark minus the applied LSN.
func (r *Receiver) Lag() page.LSN {
	pf := page.LSN(r.primaryFlushed.Load())
	if a := r.ap.AppliedLSN(); pf > a {
		return pf - a
	}
	return 0
}

// RLock/RUnlock bracket a read against the apply gate: between them the
// replica's pool holds a frozen log-prefix state. After a snapshot load
// RLock additionally blocks until apply has caught up past the newest
// shipped image pageLSN — the seed images are fuzzy, and serving them
// before that point would expose a state no crash-restart of the primary
// could produce. The wait is short (the shipper forced the log through
// every image before shipping, so the records are already in flight) and
// is abandoned if the stream stops or dies first: a dead snapshot-seeded
// replica serves its best available state and reports the error via Err.
func (r *Receiver) RLock() {
	for {
		r.gate.RLock()
		ready := page.LSN(r.readyLSN.Load())
		if r.ap.AppliedLSN() >= ready || r.streamDown() {
			return
		}
		r.gate.RUnlock()
		r.applyMu.Lock()
		ch := r.applyCh
		r.applyMu.Unlock()
		if r.ap.AppliedLSN() >= page.LSN(r.readyLSN.Load()) || r.streamDown() {
			continue
		}
		select {
		case <-ch:
		case <-r.stop:
		}
	}
}
func (r *Receiver) RUnlock() { r.gate.RUnlock() }

// streamDown reports whether the stream can make no further progress
// (stopped or dead with a terminal error).
func (r *Receiver) streamDown() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped || r.err != nil
}

// Visible reports whether a data RID is committed as of the shipped
// history (the read path's dirty-insert filter). Call under RLock.
func (r *Receiver) Visible(rid page.RID) bool {
	r.pendMu.Lock()
	_, dirty := r.pending[rid]
	r.pendMu.Unlock()
	return !dirty
}

// Start launches the streaming loop.
func (r *Receiver) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.run()
	}()
}

// Err returns the terminal stream error, if any (e.g. ErrResyncRequired).
func (r *Receiver) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// run is the dial/stream/redial loop.
func (r *Receiver) run() {
	backoff := time.Millisecond
	for first := true; ; first = false {
		select {
		case <-r.stop:
			return
		default:
		}
		if !first {
			select {
			case <-r.stop:
				return
			case <-time.After(backoff):
			}
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
			r.reconnects.Inc()
		}
		conn, err := r.dial()
		if err != nil {
			continue
		}
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			conn.Close()
			return
		}
		r.conn = conn
		r.mu.Unlock()
		progressBefore := r.records.Load() + r.snapLoads.Load()
		err = r.stream(conn)
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
		conn.Close()
		if err != nil && isTerminal(err) {
			r.mu.Lock()
			r.err = err
			r.mu.Unlock()
			// Wake WaitApplied parkers so they observe the terminal error
			// instead of sleeping to their deadline.
			r.advanceApplied()
			return
		}
		// Reset backoff only when the connection made progress (records
		// applied or a snapshot loaded): stream() also returns nil for
		// transport-level failures, and a primary that accepts dials but
		// immediately breaks the stream must not induce a busy redial loop.
		if r.records.Load()+r.snapLoads.Load() > progressBefore {
			backoff = time.Millisecond
		}
	}
}

// isTerminal classifies stream errors that redialing cannot fix.
func isTerminal(err error) bool {
	return errors.Is(err, ErrResyncRequired) || errors.Is(err, errSnapNotFresh)
}

var errSnapNotFresh = errors.New("repl: snapshot offered to a non-fresh replica")

// stream runs one connection: hello, then batches until the transport
// breaks or the receiver stops.
func (r *Receiver) stream(conn io.ReadWriteCloser) error {
	if err := writeFrame(conn, encodeHello(r.deps.Log.LastLSN()+1)); err != nil {
		return nil // transport-level: redial
	}
	for {
		select {
		case <-r.stop:
			return nil
		default:
		}
		payload, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, ErrBadFrame) {
				return err
			}
			return nil // transport-level: redial
		}
		switch payload[0] {
		case msgRecords:
			flushed, recs, err := decodeRecords(payload)
			if err != nil {
				return err
			}
			r.primaryFlushed.Store(uint64(flushed))
			if err := r.applyBatch(recs); err != nil {
				return fmt.Errorf("%w: %v", ErrResyncRequired, err)
			}
			if err := writeFrame(conn, encodeAck(r.ap.AppliedLSN())); err != nil {
				return nil
			}
		case msgSnap:
			if err := r.loadSnapshot(payload); err != nil {
				return err
			}
		case msgErr:
			return fmt.Errorf("%w: primary: %s", ErrResyncRequired, payload[1:])
		default:
			return fmt.Errorf("%w: message type %d", ErrBadFrame, payload[0])
		}
	}
}

// applyBatch appends and applies one shipped batch under the write gate.
// Records at or below the replica's last LSN (overlap from a resume) are
// dropped before append; redo's pageLSN gate would skip them anyway.
func (r *Receiver) applyBatch(recs []*wal.Record) error {
	last := r.deps.Log.LastLSN()
	for len(recs) > 0 && recs[0].LSN <= last {
		recs = recs[1:]
	}
	if len(recs) == 0 {
		return nil
	}
	r.gate.Lock()
	defer r.gate.Unlock()
	if r.promoted.Load() {
		return ErrPromoted
	}
	for _, rec := range recs {
		if err := r.deps.Log.AppendShipped(rec); err != nil {
			return err
		}
	}
	if err := r.ap.ApplyBatch(recs); err != nil {
		return err
	}
	r.trackPending(recs)
	r.batches.Inc()
	r.records.Add(int64(len(recs)))
	if lag := int64(r.primaryFlushed.Load()) - int64(r.ap.AppliedLSN()); lag > 0 {
		r.lagHist.Observe(lag)
	} else {
		r.lagHist.Observe(0)
	}
	r.advanceApplied()
	return nil
}

// trackPending maintains the dirty-insert filter from the shipped records.
func (r *Receiver) trackPending(recs []*wal.Record) {
	r.pendMu.Lock()
	defer r.pendMu.Unlock()
	for _, rec := range recs {
		switch {
		case rec.Type == wal.RecAddLeafEntry: // non-CLR: a fresh insert
			if e, err := page.DecodeEntry(rec.Body, true); err == nil {
				r.pending[e.RID] = rec.Txn
				set := r.byTxn[rec.Txn]
				if set == nil {
					set = make(map[page.RID]struct{})
					r.byTxn[rec.Txn] = set
				}
				set[e.RID] = struct{}{}
			}
		case rec.Type == wal.RecHeapInsert:
			r.pending[rec.RID] = rec.Txn
			set := r.byTxn[rec.Txn]
			if set == nil {
				set = make(map[page.RID]struct{})
				r.byTxn[rec.Txn] = set
			}
			set[rec.RID] = struct{}{}
		case rec.Type == wal.RecCommit || rec.Type == wal.RecEnd:
			// Commit makes the inserts visible; End after an abort means
			// the CLRs that physically removed them have all been applied.
			for rid := range r.byTxn[rec.Txn] {
				delete(r.pending, rid)
			}
			delete(r.byTxn, rec.Txn)
		}
	}
}

// advanceApplied wakes WaitApplied parkers.
func (r *Receiver) advanceApplied() {
	r.applyMu.Lock()
	close(r.applyCh)
	r.applyCh = make(chan struct{})
	r.applyMu.Unlock()
}

// WaitApplied blocks until the replica has applied through lsn (or ctx
// fires, or the stream dies with a terminal error).
func (r *Receiver) WaitApplied(ctx context.Context, lsn page.LSN) error {
	for {
		if r.ap.AppliedLSN() >= lsn {
			return nil
		}
		if err := r.Err(); err != nil {
			return err
		}
		r.applyMu.Lock()
		ch := r.applyCh
		r.applyMu.Unlock()
		if r.ap.AppliedLSN() >= lsn {
			return nil
		}
		if err := r.Err(); err != nil {
			return err
		}
		if ctx == nil {
			select {
			case <-ch:
			case <-r.stop:
				if r.ap.AppliedLSN() >= lsn {
					return nil
				}
				return errors.New("repl: receiver stopped")
			}
			continue
		}
		select {
		case <-ch:
		case <-r.stop:
			if r.ap.AppliedLSN() >= lsn {
				return nil
			}
			return errors.New("repl: receiver stopped")
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// loadSnapshot installs a full-resync seed. Only a fresh replica (empty
// log, nothing applied) may accept one; anything else must be rebuilt.
//
// The log is rebased to start-1, not base: the stream resumes at start =
// min(base+1, oldest in-flight transaction's first record), and the
// shipped [start, base] prefix must land in the replica log so the
// applier's ATT and the dirty-insert filter see the in-flight
// transactions a later Promote has to undo. Redo of that prefix over the
// seed images is a no-op under the pageLSN gate. Reads stay gated (RLock)
// until apply reaches imgMax, the newest image pageLSN — before that the
// fuzzy images are not a single log-prefix state.
func (r *Receiver) loadSnapshot(payload []byte) error {
	base, start, imgMax, pages, err := decodeSnap(payload)
	if err != nil {
		return err
	}
	r.gate.Lock()
	defer r.gate.Unlock()
	if r.deps.Log.LastLSN() != 0 || r.deps.Log.Base() != 0 {
		return errSnapNotFresh
	}
	for _, p := range pages {
		if err := r.deps.Disk.EnsureAllocated(p.id); err != nil {
			return err
		}
		if err := r.deps.Disk.WritePage(p.id, p.img); err != nil {
			return err
		}
	}
	if err := r.deps.Log.RebaseShipped(start - 1); err != nil {
		return err
	}
	r.ap.SetApplied(start - 1)
	r.readyLSN.Store(uint64(imgMax))
	r.primaryFlushed.Store(uint64(base))
	r.snapLoads.Inc()
	r.advanceApplied()
	return nil
}

// Stop halts streaming (idempotent): closes the live connection and waits
// for the loop to exit. The replica keeps serving reads at its last
// applied state.
func (r *Receiver) Stop() {
	r.mu.Lock()
	if !r.stopped {
		r.stopped = true
		close(r.stop)
	}
	conn := r.conn
	r.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	r.wg.Wait()
}

// Promote flips the replica into a primary: the stream is drained and
// stopped, register runs (it must install the undo handlers for the
// replica's trees on the transaction manager), and the surviving in-flight
// transactions — exactly restart's losers — are aborted through those
// handlers, writing CLRs to the replica log, which is a normal read-write
// log from here on. Returns the number of losers undone.
//
// After Promote the receiver is inert; the caller owns the engine parts.
func (r *Receiver) Promote(register func() error) (int, error) {
	r.Stop()
	r.gate.Lock()
	defer r.gate.Unlock()
	if r.promoted.Swap(true) {
		return 0, ErrPromoted
	}
	if ready := page.LSN(r.readyLSN.Load()); r.ap.AppliedLSN() < ready {
		// A snapshot-seeded replica whose apply never caught up past the
		// newest image pageLSN holds a fuzzy state no log prefix describes;
		// undo over it would be unsound. The replica must be rebuilt.
		return 0, fmt.Errorf("%w: promote at applied %d before snapshot readiness %d",
			ErrResyncRequired, r.ap.AppliedLSN(), ready)
	}
	// Fresh transactions must never reuse an id the shipped history
	// already attributed to someone else (their locks and backchains
	// would collide), so advance the id counter past everything seen.
	r.deps.TM.AdvanceTxnID(r.ap.MaxTxnID())
	if register != nil {
		if err := register(); err != nil {
			return 0, err
		}
	}
	return r.ap.UndoLosers()
}

// Losers exposes the surviving ATT (diagnostics and tests).
func (r *Receiver) Losers() map[page.TxnID]page.LSN {
	r.gate.Lock()
	defer r.gate.Unlock()
	return r.ap.Losers()
}
