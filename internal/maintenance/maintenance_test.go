// Tests for the background maintenance subsystem. They live in an external
// test package so they can drive the daemons through the real gistdb facade
// (Open wires Deps exactly as production does) — the facade imports this
// package, not the other way round, so no cycle.
package maintenance_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	gistdb "repro"
	"repro/internal/btree"
)

// openManual opens an in-memory DB whose maintenance manager runs no
// goroutines: every daemon action happens only on an explicit Tick* call.
func openManual(t *testing.T, mo gistdb.MaintenanceOptions) *gistdb.DB {
	t.Helper()
	mo.Manual = true
	db, err := gistdb.Open(gistdb.Options{
		MaxEntries:  8,
		Maintenance: &mo,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// churn commits n single-insert transactions against idx and returns the
// RIDs, so tests have committed log traffic and live records to point at.
func churn(t *testing.T, db *gistdb.DB, idx *gistdb.Index, lo, n int) []gistdb.RID {
	t.Helper()
	rids := make([]gistdb.RID, 0, n)
	for i := lo; i < lo+n; i++ {
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		rid, err := idx.Insert(tx, btree.EncodeKey(int64(i)), []byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	return rids
}

// TestManualTicksAreDeterministic runs the same workload plus the same tick
// sequence against two fresh databases and demands bit-identical maintenance
// outcomes: same checkpoint count, same truncation point, same flush and GC
// totals. This is the property the crash-fuzz harness leans on — with
// Manual set, the daemons add zero nondeterminism to a seeded run.
func TestManualTicksAreDeterministic(t *testing.T) {
	run := func() (metrics map[string]int64, base, last uint64) {
		db := openManual(t, gistdb.MaintenanceOptions{
			CheckpointBytes: 1 << 30, // byte trigger never trips on its own
			FlushBatch:      8,
			GCDeadThreshold: 1,
			GCBurstLeaves:   4,
		})
		idx, err := db.CreateIndex("det", btree.Ops{})
		if err != nil {
			t.Fatal(err)
		}
		rids := churn(t, db, idx, 0, 64)
		// Delete half so GC has work.
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			if err := idx.Delete(tx, btree.EncodeKey(int64(i)), rids[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}

		m := db.Maintenance()
		if took, err := m.TickCheckpoint(false); err != nil || took {
			t.Fatalf("untripped byte trigger checkpointed: took=%v err=%v", took, err)
		}
		if took, err := m.TickCheckpoint(true); err != nil || !took {
			t.Fatalf("forced checkpoint: took=%v err=%v", took, err)
		}
		for {
			n, err := m.TickFlush()
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
		}
		// Second checkpoint after the flush so the DPT entries drained
		// above no longer pin the redo point, then cut the head.
		if _, err := m.TickCheckpoint(true); err != nil {
			t.Fatal(err)
		}
		if _, err := m.TickTruncate(); err != nil {
			t.Fatal(err)
		}
		if n, err := m.TickTruncate(); err != nil || n != 0 {
			t.Fatalf("second truncation with no new traffic cut %d bytes, err=%v", n, err)
		}
		// A zero-reclaim tick does not mean the sweep is done — a burst can
		// land on leaves with no dead entries — so drive the loop by the
		// dead-entry gauge with a generous tick bound.
		for i := 0; i < 64 && db.Metrics()["maint.dead_entries"] > 0; i++ {
			if _, err := m.TickGC(); err != nil {
				t.Fatal(err)
			}
		}
		return db.Metrics(), uint64(db.WAL().Base()), uint64(db.WAL().LastLSN())
	}

	m1, base1, last1 := run()
	m2, base2, last2 := run()
	if base1 != base2 || last1 != last2 {
		t.Errorf("log shape diverged: base %d vs %d, last %d vs %d", base1, base2, last1, last2)
	}
	if base1 == 0 {
		t.Error("truncation never advanced the head")
	}
	for _, k := range []string{
		"maint.checkpoints", "maint.truncations", "maint.truncated_bytes",
		"maint.flush_pages", "maint.gc_bursts", "maint.gc_reclaimed",
	} {
		if m1[k] != m2[k] {
			t.Errorf("%s diverged: %d vs %d", k, m1[k], m2[k])
		}
	}
	if m1["maint.gc_reclaimed"] == 0 {
		t.Error("GC reclaimed nothing")
	}
}

// TestCheckpointByteTrigger checks the autonomous trigger arithmetic:
// TickCheckpoint(false) fires exactly when the bytes appended since the
// last checkpoint pass CheckpointBytes.
func TestCheckpointByteTrigger(t *testing.T) {
	db := openManual(t, gistdb.MaintenanceOptions{CheckpointBytes: 4 << 10})
	idx, err := db.CreateIndex("trig", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	m := db.Maintenance()
	fired := 0
	for i := 0; i < 256; i++ {
		churn(t, db, idx, i*4, 4)
		took, err := m.TickCheckpoint(false)
		if err != nil {
			t.Fatal(err)
		}
		if took {
			fired++
		}
	}
	if fired < 2 {
		t.Fatalf("byte trigger fired %d times across 1024 committed inserts", fired)
	}
	if got := db.Metrics()["maint.checkpoints"]; got != int64(fired) {
		t.Errorf("maint.checkpoints = %d, want %d", got, fired)
	}
}

// TestTruncatorRespectsActiveTxn pins the undo-safety invariant: the head
// never advances past the first LSN of a live transaction, however many
// checkpoints intervene, because that transaction may still need its whole
// log chain for rollback.
func TestTruncatorRespectsActiveTxn(t *testing.T) {
	db := openManual(t, gistdb.MaintenanceOptions{})
	idx, err := db.CreateIndex("pin", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	churn(t, db, idx, 0, 50)

	// A transaction that stays open across the maintenance cycle. Its
	// first record lands at firstLSN > lsnBefore.
	lsnBefore := db.WAL().LastLSN()
	pinTx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	pinRID, err := idx.Insert(pinTx, btree.EncodeKey(10_000), []byte("pinned"))
	if err != nil {
		t.Fatal(err)
	}
	churn(t, db, idx, 100, 50)

	m := db.Maintenance()
	if _, err := m.TickCheckpoint(true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TickTruncate(); err != nil {
		t.Fatal(err)
	}
	if base := db.WAL().Base(); base > lsnBefore {
		t.Fatalf("head %d cut past live txn's first LSN (> %d)", base, lsnBefore)
	}
	// The pinned transaction must still be able to roll back — its undo
	// chain is exactly what the bound protected.
	if err := pinTx.Abort(); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if hits, err := idx.Search(tx, btree.EncodeKey(10_000), gistdb.ReadCommitted); err != nil {
		t.Fatal(err)
	} else if len(hits) != 0 {
		t.Fatalf("aborted insert still visible: %v", hits)
	}
	_ = pinRID
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// With the pin gone the next cycle may advance the head freely.
	if _, err := m.TickCheckpoint(true); err != nil {
		t.Fatal(err)
	}
	for {
		n, err := m.TickFlush()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	if _, err := m.TickCheckpoint(true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TickTruncate(); err != nil {
		t.Fatal(err)
	}
	if base := db.WAL().Base(); base <= lsnBefore {
		t.Errorf("head %d did not advance after the pinning txn finished", base)
	}
	// Everything retained must stay readable; everything live must stay
	// searchable after restart from the truncated log.
	survivor, err := db.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	idx2, err := survivor.OpenIndex("pin", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := survivor.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{0, 49, 100, 149} {
		hits, err := idx2.Search(tx2, btree.EncodeKey(k), gistdb.ReadCommitted)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != 1 {
			t.Errorf("key %d: %d hits after restart from truncated log", k, len(hits))
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestGCReclaimsAndPreservesLiveEntries drives the paced sweeper to a fixed
// point and checks both directions: dead entries are physically reclaimed,
// live entries survive untouched.
func TestGCReclaimsAndPreservesLiveEntries(t *testing.T) {
	db := openManual(t, gistdb.MaintenanceOptions{GCDeadThreshold: 1, GCBurstLeaves: 4})
	idx, err := db.CreateIndex("gc", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	rids := churn(t, db, idx, 0, 200)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i += 2 {
		if err := idx.Delete(tx, btree.EncodeKey(int64(i)), rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	m := db.Maintenance()
	for i := 0; i < 64 && db.Metrics()["maint.dead_entries"] > 0; i++ {
		if _, err := m.TickGC(); err != nil {
			t.Fatal(err)
		}
	}
	bursts := int(db.Metrics()["maint.gc_bursts"])
	if got := db.Metrics()["maint.gc_reclaimed"]; got != 100 {
		t.Errorf("maint.gc_reclaimed = %d, want 100", got)
	}
	// Pacing: the burst cap means one tick cannot have swept the whole
	// tree (200 entries across > GCBurstLeaves leaves at MaxEntries 8).
	if bursts < 2 {
		t.Errorf("sweep finished in %d burst(s); pacing cap not exercised", bursts)
	}
	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		hits, err := idx.Search(tx2, btree.EncodeKey(int64(i)), gistdb.ReadCommitted)
		if err != nil {
			t.Fatal(err)
		}
		want := i % 2 // even keys deleted, odd keys live
		if len(hits) != want {
			t.Fatalf("key %d: %d hits after GC, want %d", i, len(hits), want)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	rep, err := idx.Check()
	if err != nil {
		t.Fatalf("tree invariants broken after GC: %v", err)
	}
	if rep.Entries != 100 || rep.Marked != 0 {
		t.Errorf("after GC: %d live entries (want 100), %d still delete-marked (want 0)", rep.Entries, rep.Marked)
	}
}

// TestDaemonStopCloseRace exercises the goroutine mode under load: daemons
// ticking at 1ms against a concurrent foreground workload, then Close racing
// the in-flight ticks. Run under -race (the CI race job covers internal/...)
// this is the regression net for the tickMu → db.mu lock order.
func TestDaemonStopCloseRace(t *testing.T) {
	for round := 0; round < 3; round++ {
		db, err := gistdb.Open(gistdb.Options{
			MaxEntries: 8,
			Maintenance: &gistdb.MaintenanceOptions{
				CheckpointBytes:    16 << 10,
				CheckpointPoll:     time.Millisecond,
				CheckpointInterval: 5 * time.Millisecond,
				TruncateInterval:   time.Millisecond,
				FlushInterval:      time.Millisecond,
				FlushMinDirty:      1,
				GCInterval:         time.Millisecond,
				GCDeadThreshold:    1,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := db.Metrics()["maint.running"]; got != 1 {
			t.Fatalf("maint.running = %d after Open", got)
		}
		idx, err := db.CreateIndex("race", btree.Ops{})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					tx, err := db.Begin()
					if err != nil {
						return // closed under us: expected at round end
					}
					k := int64(w*1_000_000 + i)
					rid, err := idx.Insert(tx, btree.EncodeKey(k), []byte("r"))
					if err == nil && i%3 == 0 {
						err = idx.Delete(tx, btree.EncodeKey(k), rid)
					}
					if err != nil {
						tx.Abort()
						return
					}
					if err := tx.Commit(); err != nil {
						return
					}
				}
			}(w)
		}
		time.Sleep(20 * time.Millisecond)
		// Pause/Resume mid-flight (the DropIndex path).
		db.Maintenance().Pause()
		db.Maintenance().Resume()
		close(stop)
		wg.Wait()
		m := db.Maintenance()
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		// Stop after Close (and concurrently with itself) is idempotent.
		var sg sync.WaitGroup
		for i := 0; i < 4; i++ {
			sg.Add(1)
			go func() { defer sg.Done(); m.Stop() }()
		}
		sg.Wait()
		if got := m.Metrics().Snapshot()["maint.running"]; got != 0 {
			t.Fatalf("maint.running = %d after Close", got)
		}
	}
}

// TestSimulateCrashSwapsDaemons checks the crash path: the dying instance's
// daemons are stopped before recovery and the survivor gets a fresh running
// manager wired to the recovered components.
func TestSimulateCrashSwapsDaemons(t *testing.T) {
	db, err := gistdb.Open(gistdb.Options{
		MaxEntries: 8,
		Maintenance: &gistdb.MaintenanceOptions{
			CheckpointPoll:   2 * time.Millisecond,
			TruncateInterval: 2 * time.Millisecond,
			FlushInterval:    2 * time.Millisecond,
			GCInterval:       2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.CreateIndex("crash", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Insert(tx, btree.EncodeKey(1), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	old := db.Maintenance()
	survivor, err := db.SimulateCrash()
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	if got := old.Metrics().Snapshot()["maint.running"]; got != 0 {
		t.Errorf("crashed instance's daemons still running (gauge %d)", got)
	}
	if survivor.Maintenance() == old {
		t.Fatal("survivor reuses the crashed manager")
	}
	if got := survivor.Metrics()["maint.running"]; got != 1 {
		t.Errorf("survivor daemons not running (gauge %d)", got)
	}
	idx2, err := survivor.OpenIndex("crash", btree.Ops{})
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := survivor.Begin()
	if err != nil {
		t.Fatal(err)
	}
	hits, err := idx2.Search(tx2, btree.EncodeKey(1), gistdb.ReadCommitted)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Errorf("committed record lost across crash: %d hits", len(hits))
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}
