// Package maintenance is the background upkeep subsystem: the daemons a
// long-running database needs so that its log, dirty-page population, and
// dead-entry population stay bounded without any foreground caller doing
// maintenance work. Four daemons share one Manager:
//
//   - the checkpointer takes a fuzzy checkpoint (txn.Checkpoint — ATT + DPT,
//     no page flushing) when enough log bytes have accumulated since the
//     last one, with a wall-clock fallback for trickle workloads;
//   - the truncator advances the log head crash-atomically to
//     min(RedoLSN, oldest live transaction's firstLSN) — RedoLSN being the
//     minimum dirty-page recLSN, else the master checkpoint — after syncing
//     the disk so the allocation-replay invariant ("the head moves only
//     after a completed Sync") holds;
//   - the write-behind flusher trickles the oldest dirty frames out under
//     the WAL rule, keeping the DPT small so checkpoints stay cheap and the
//     truncator's bound keeps advancing;
//   - the GC sweeper watches each tree's dead-entry counter and reclaims
//     logically deleted entries in short, paced bursts of GCLeafRefs calls,
//     each burst its own committed transaction of nested top actions.
//
// Every daemon has a deterministic manual-tick hook (TickCheckpoint,
// TickTruncate, TickFlush, TickGC) used by tests and the crash harness;
// Options.Manual disables the goroutines entirely so only ticks run. The
// flusher and sweeper back off when the foreground contention counters
// spike (backpressure); the checkpointer and truncator always run — they
// are what bound recovery time.
//
// Lock order: a tick holds tickMu and may call into Deps callbacks that
// take the DB facade's mutex, so callers pausing the manager (Pause/Stop)
// must not hold that mutex.
package maintenance

import (
	"sort"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/gist"
	"repro/internal/page"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Options are the pacing knobs. Zero values take the listed defaults.
type Options struct {
	// Checkpointer: take a fuzzy checkpoint when this many log bytes have
	// been appended since the last one (default 1 MiB), or when
	// CheckpointInterval has elapsed with any appends at all (default 10s).
	// CheckpointPoll is the daemon's trigger-evaluation cadence (default
	// 200ms).
	CheckpointBytes    int64
	CheckpointInterval time.Duration
	CheckpointPoll     time.Duration

	// Truncator: head-advance attempt cadence (default 1s).
	TruncateInterval time.Duration

	// Flusher: cadence (default 100ms), pages per tick (default 16), and
	// the DPT size below which a tick does nothing (default 8) — flushing
	// the last few dirty pages of an active working set is wasted I/O.
	FlushInterval time.Duration
	FlushBatch    int
	FlushMinDirty int

	// GC sweeper: cadence (default 250ms), the per-tree dead-entry count
	// that triggers a sweep (default 64), leaves per burst (default 8),
	// and the tick stride of the unconditional full sweep that catches
	// dead entries marked before the last restart, which the in-memory
	// counter cannot see (default every 64 ticks; 0 disables).
	GCInterval      time.Duration
	GCDeadThreshold int64
	GCBurstLeaves   int
	GCSweepTicks    int

	// Backpressure: when the foreground contention score (Deps.Pressure)
	// grows by more than this between two ticks, the flusher and sweeper
	// skip their tick (default 256; 0 disables).
	PressureThreshold int64

	// Manual disables the daemon goroutines: Start/Stop become no-ops and
	// only the explicit Tick* calls do work. Tests and the crash harness
	// use this for determinism.
	Manual bool
}

func (o Options) withDefaults() Options {
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = 1 << 20
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 10 * time.Second
	}
	if o.CheckpointPoll <= 0 {
		o.CheckpointPoll = 200 * time.Millisecond
	}
	if o.TruncateInterval <= 0 {
		o.TruncateInterval = time.Second
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 100 * time.Millisecond
	}
	if o.FlushBatch <= 0 {
		o.FlushBatch = 16
	}
	if o.FlushMinDirty <= 0 {
		o.FlushMinDirty = 8
	}
	if o.GCInterval <= 0 {
		o.GCInterval = 250 * time.Millisecond
	}
	if o.GCDeadThreshold <= 0 {
		o.GCDeadThreshold = 64
	}
	if o.GCBurstLeaves <= 0 {
		o.GCBurstLeaves = 8
	}
	if o.GCSweepTicks == 0 {
		o.GCSweepTicks = 64
	}
	if o.PressureThreshold == 0 {
		o.PressureThreshold = 256
	}
	return o
}

// Deps are the engine handles the daemons operate on. Trees snapshots the
// currently open index trees (may be nil when the owner has none);
// Pressure returns a monotone foreground-contention score for backpressure
// (nil disables it).
type Deps struct {
	Log      *wal.Log
	TM       *txn.Manager
	Pool     *buffer.Pool
	Disk     storage.Manager
	Trees    func() []*gist.Tree
	Pressure func() int64
	// ReplBound, when non-nil, returns the replication clamp on log-head
	// truncation: the highest bound that keeps every live log-shipping
	// subscriber able to resume (min acked LSN + 1). page.MaxLSN means no
	// clamp. It lets the truncator coexist with streaming replicas without
	// stranding them into full resyncs.
	ReplBound func() page.LSN
}

// Manager owns the four daemons. All Tick* methods are serialized by one
// internal mutex, so manual ticks, daemon ticks, and Pause compose safely.
type Manager struct {
	opts Options
	d    Deps

	tickMu       sync.Mutex
	paused       bool
	lastCkBytes  int64
	lastCkTime   time.Time
	lastPressure int64
	gcQueue      map[*gist.Tree][]gist.LeafRef
	gcTicks      int

	lifeMu  sync.Mutex
	stopCh  chan struct{}
	wg      sync.WaitGroup
	running bool

	reg            *stats.Registry
	checkpoints    *stats.Counter
	truncations    *stats.Counter
	truncatedBytes *stats.Counter
	flushPages     *stats.Counter
	gcBursts       *stats.Counter
	gcReclaimed    *stats.Counter
	pauses         *stats.Counter
	tickErrors     *stats.Counter
}

// New builds a Manager; call Start to launch the daemons (no-op when
// Options.Manual is set).
func New(d Deps, opts Options) *Manager {
	m := &Manager{
		opts:    opts.withDefaults(),
		d:       d,
		gcQueue: make(map[*gist.Tree][]gist.LeafRef),
		reg:     stats.NewRegistry(),
	}
	m.lastCkBytes = d.Log.AppendedBytes()
	m.lastCkTime = time.Now()
	m.lastPressure = m.pressure()
	m.checkpoints = m.reg.Counter("maint.checkpoints")
	m.truncations = m.reg.Counter("maint.truncations")
	m.truncatedBytes = m.reg.Counter("maint.truncated_bytes")
	m.flushPages = m.reg.Counter("maint.flush_pages")
	m.gcBursts = m.reg.Counter("maint.gc_bursts")
	m.gcReclaimed = m.reg.Counter("maint.gc_reclaimed")
	m.pauses = m.reg.Counter("maint.backpressure_pauses")
	m.tickErrors = m.reg.Counter("maint.tick_errors")
	m.reg.Gauge("maint.running", func() int64 {
		m.lifeMu.Lock()
		defer m.lifeMu.Unlock()
		if m.running {
			return 1
		}
		return 0
	})
	m.reg.Gauge("maint.log_records", func() int64 {
		return int64(d.Log.LastLSN() - d.Log.Base())
	})
	m.reg.Gauge("maint.dirty_pages", func() int64 {
		return int64(len(d.Pool.DirtyPages()))
	})
	m.reg.Gauge("maint.dead_entries", func() int64 {
		var total int64
		for _, t := range m.trees() {
			total += t.DeadEntries()
		}
		return total
	})
	m.reg.Gauge("maint.checkpoint_bytes", func() int64 { return m.opts.CheckpointBytes })
	m.reg.Gauge("maint.flush_batch", func() int64 { return int64(m.opts.FlushBatch) })
	m.reg.Gauge("maint.gc_burst_leaves", func() int64 { return int64(m.opts.GCBurstLeaves) })
	return m
}

// Metrics exposes the maint.* counter registry.
func (m *Manager) Metrics() *stats.Registry { return m.reg }

func (m *Manager) trees() []*gist.Tree {
	if m.d.Trees == nil {
		return nil
	}
	return m.d.Trees()
}

func (m *Manager) pressure() int64 {
	if m.d.Pressure == nil {
		return 0
	}
	return m.d.Pressure()
}

// Start launches the daemon goroutines. Idempotent; no-op in Manual mode.
func (m *Manager) Start() {
	if m.opts.Manual {
		return
	}
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	if m.running {
		return
	}
	m.running = true
	m.stopCh = make(chan struct{})
	stop := m.stopCh
	m.wg.Add(4)
	go m.loop(stop, m.opts.CheckpointPoll, m.checkpointTick)
	go m.loop(stop, m.opts.TruncateInterval, func() { m.tickErr(m.truncateTick) })
	go m.loop(stop, m.opts.FlushInterval, func() { m.tickErr(m.flushTick) })
	go m.loop(stop, m.opts.GCInterval, func() { m.tickErr(m.gcTick) })
}

// Stop halts the daemons and waits for any in-flight tick to finish.
// Idempotent. Must not be called while holding a mutex a Deps callback
// takes (see the package lock-order note).
func (m *Manager) Stop() {
	m.lifeMu.Lock()
	if !m.running {
		m.lifeMu.Unlock()
		return
	}
	m.running = false
	close(m.stopCh)
	m.lifeMu.Unlock()
	m.wg.Wait()
}

// Pause blocks until no tick is in flight and prevents new ones (manual or
// daemon) until Resume. The facade wraps quiescence-requiring operations
// (index drop) in a Pause/Resume pair.
func (m *Manager) Pause() {
	m.tickMu.Lock()
	m.paused = true
	m.tickMu.Unlock()
}

// Resume re-enables ticks after Pause.
func (m *Manager) Resume() {
	m.tickMu.Lock()
	m.paused = false
	m.tickMu.Unlock()
}

func (m *Manager) loop(stop <-chan struct{}, every time.Duration, tick func()) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			tick()
		}
	}
}

// tickErr runs one daemon tick, counting (and swallowing) its error: a
// failed log or disk makes every subsequent tick a cheap no-op, and the
// foreground path reports the sticky error to the application.
func (m *Manager) tickErr(fn func() (int64, error)) {
	if _, err := fn(); err != nil {
		m.tickErrors.Inc()
	}
}

// checkpointTick is the daemon trigger evaluation: byte threshold, with the
// wall-clock fallback firing only when something was appended at all.
func (m *Manager) checkpointTick() {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	if m.paused {
		return
	}
	since := m.d.Log.AppendedBytes() - m.lastCkBytes
	if since <= 0 {
		return
	}
	if since < m.opts.CheckpointBytes && time.Since(m.lastCkTime) < m.opts.CheckpointInterval {
		return
	}
	if _, err := m.checkpointLocked(); err != nil {
		m.tickErrors.Inc()
	}
}

// TickCheckpoint takes a fuzzy checkpoint if force is set or the byte
// trigger has tripped. It reports whether a checkpoint was taken.
func (m *Manager) TickCheckpoint(force bool) (bool, error) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	if m.paused {
		return false, nil
	}
	if !force && m.d.Log.AppendedBytes()-m.lastCkBytes < m.opts.CheckpointBytes {
		return false, nil
	}
	return m.checkpointLocked()
}

func (m *Manager) checkpointLocked() (bool, error) {
	if _, err := m.d.TM.Checkpoint(m.d.Pool.DirtyPages); err != nil {
		return false, err
	}
	m.lastCkBytes = m.d.Log.AppendedBytes()
	m.lastCkTime = time.Now()
	m.checkpoints.Inc()
	return true, nil
}

// TruncationBound computes the highest LSN the log head may advance to
// right now: the master checkpoint, clamped by the oldest live
// transaction's first record (its rollback backchain must stay walkable)
// and by the oldest dirty page's recLSN (its redo history must survive
// until the page is flushed) — i.e. min(RedoLSN, oldest firstLSN). Zero
// means no checkpoint exists yet and the head cannot move.
//
// The bound is monotone-safe under concurrency: transactions beginning and
// pages dirtied after the computation have first/recLSNs above the master
// checkpoint, so acting on a stale bound is never unsafe, only
// conservative.
func (m *Manager) TruncationBound() page.LSN {
	bound := m.d.Log.MasterCheckpoint()
	if bound == 0 {
		return 0
	}
	if mn := m.d.TM.MinActiveFirstLSN(); mn != 0 && mn < bound {
		bound = mn
	}
	for _, rec := range m.d.Pool.DirtyPages() {
		if rec != 0 && rec < bound {
			bound = rec
		}
	}
	if m.d.ReplBound != nil {
		if rb := m.d.ReplBound(); rb < bound {
			bound = rb
		}
	}
	return bound
}

// TickTruncate attempts one head advance to the current TruncationBound,
// returning the bytes cut.
func (m *Manager) TickTruncate() (int64, error) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	if m.paused {
		return 0, nil
	}
	return m.truncateLocked(m.TruncationBound())
}

// TruncateTo advances the head to at most bound (the caller computed it via
// TruncationBound, possibly doing oracle bookkeeping in between — the bound
// stays valid because it is monotone-safe).
func (m *Manager) TruncateTo(bound page.LSN) (int64, error) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	if m.paused {
		return 0, nil
	}
	return m.truncateLocked(bound)
}

func (m *Manager) truncateTick() (int64, error) { return m.TickTruncate() }

func (m *Manager) truncateLocked(bound page.LSN) (int64, error) {
	if bound == 0 || bound <= m.d.Log.Base()+1 {
		return 0, nil
	}
	// Allocation metadata must be durable before any head cut: restart
	// replays allocation records from the head, so "the head is only ever
	// truncated after a completed Sync".
	if err := m.d.Disk.Sync(); err != nil {
		return 0, err
	}
	n, err := m.d.Log.DiscardBefore(bound)
	if err != nil {
		return 0, err
	}
	if n > 0 {
		m.truncations.Inc()
		m.truncatedBytes.Add(n)
	}
	return n, nil
}

// backpressureLocked reports whether the foreground contention score grew
// enough since the last evaluation that optional work (flush, GC) should
// stand down this tick. tickMu held.
func (m *Manager) backpressureLocked() bool {
	if m.d.Pressure == nil || m.opts.PressureThreshold <= 0 {
		return false
	}
	cur := m.d.Pressure()
	delta := cur - m.lastPressure
	m.lastPressure = cur
	if delta > m.opts.PressureThreshold {
		m.pauses.Inc()
		return true
	}
	return false
}

// TickFlush writes back up to FlushBatch of the oldest dirty frames
// (smallest recLSN first — those hold the truncation bound back the most),
// returning the number flushed.
func (m *Manager) TickFlush() (int64, error) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	if m.paused || m.backpressureLocked() {
		return 0, nil
	}
	return m.flushLocked()
}

func (m *Manager) flushTick() (int64, error) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	if m.paused || m.backpressureLocked() {
		return 0, nil
	}
	if len(m.d.Pool.DirtyPages()) < m.opts.FlushMinDirty {
		return 0, nil
	}
	return m.flushLocked()
}

func (m *Manager) flushLocked() (int64, error) {
	dpt := m.d.Pool.DirtyPages()
	if len(dpt) == 0 {
		return 0, nil
	}
	type dirty struct {
		id  page.PageID
		rec page.LSN
	}
	pages := make([]dirty, 0, len(dpt))
	for id, rec := range dpt {
		pages = append(pages, dirty{id, rec})
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].rec < pages[j].rec })
	var flushed int64
	var firstErr error
	for _, pg := range pages {
		if flushed >= int64(m.opts.FlushBatch) {
			break
		}
		wrote, err := m.d.Pool.FlushWrote(pg.id)
		if err != nil {
			// Evicted/deallocated since the snapshot, or a sticky log
			// failure; record the first error and move on.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// The DPT lists pinned-clean frames conservatively; only count
		// frames that actually needed a write, so callers looping until
		// TickFlush returns zero terminate once the table is drained.
		if wrote {
			flushed++
		}
	}
	m.flushPages.Add(flushed)
	return flushed, firstErr
}

// TickGC runs one paced sweep round: for every tree whose dead-entry count
// passed the threshold (or whose burst queue still has leaves), reclaim up
// to GCBurstLeaves leaves in one short committed transaction. Returns the
// entries physically reclaimed.
func (m *Manager) TickGC() (int64, error) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	if m.paused || m.backpressureLocked() {
		return 0, nil
	}
	return m.gcLocked()
}

func (m *Manager) gcTick() (int64, error) { return m.TickGC() }

func (m *Manager) gcLocked() (int64, error) {
	m.gcTicks++
	fullSweep := m.opts.GCSweepTicks > 0 && m.gcTicks%m.opts.GCSweepTicks == 0
	var total int64
	var firstErr error
	live := make(map[*gist.Tree]bool)
	for _, t := range m.trees() {
		live[t] = true
		refs := m.gcQueue[t]
		if len(refs) == 0 {
			if !fullSweep && t.DeadEntries() < m.opts.GCDeadThreshold {
				continue
			}
			var err error
			refs, err = m.collectRefs(t)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
		}
		burst := m.opts.GCBurstLeaves
		if burst > len(refs) {
			burst = len(refs)
		}
		n, err := m.gcBurst(t, refs[:burst])
		m.gcQueue[t] = refs[burst:]
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Drop queues of trees that were closed or dropped.
	for t := range m.gcQueue {
		if !live[t] {
			delete(m.gcQueue, t)
		}
	}
	return total, firstErr
}

func (m *Manager) collectRefs(t *gist.Tree) ([]gist.LeafRef, error) {
	tx, err := m.d.TM.Begin()
	if err != nil {
		return nil, err
	}
	refs, err := t.CollectLeafRefs(tx)
	if cerr := tx.Commit(); err == nil {
		err = cerr
	}
	t.TxnFinished(tx.ID())
	return refs, err
}

func (m *Manager) gcBurst(t *gist.Tree, refs []gist.LeafRef) (int64, error) {
	tx, err := m.d.TM.Begin()
	if err != nil {
		return 0, err
	}
	before := t.Stats.GCEntries.Load()
	err = t.GCLeafRefs(tx, refs)
	if cerr := tx.Commit(); err == nil {
		err = cerr
	}
	t.TxnFinished(tx.ID())
	n := t.Stats.GCEntries.Load() - before
	if n > 0 {
		m.gcReclaimed.Add(n)
	}
	m.gcBursts.Inc()
	return n, err
}
