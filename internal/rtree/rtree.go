// Package rtree specializes the generalized search tree to Guttman's
// R-tree: keys are 2-D points or rectangles, bounding predicates are
// minimum bounding rectangles (MBRs), and queries are rectangles matched by
// intersection. This is the canonical non-linear, non-partitioning key
// domain for which the paper's NSN-based link protocol was designed —
// key-range locking and B-link ordering arguments are inapplicable here.
//
// Encodings (canonical, so byte equality of predicates is sound):
//
//	point: 16 bytes — x then y, order-preserving float64
//	rect:  32 bytes — xmin, ymin, xmax, ymax
//
// The two are distinguished by length; a point acts as a degenerate rect.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle (closed on all sides).
type Rect struct {
	XMin, YMin, XMax, YMax float64
}

// Point returns the degenerate rectangle at (x, y).
func Point(x, y float64) Rect { return Rect{x, y, x, y} }

// Valid reports whether the rectangle is non-empty.
func (r Rect) Valid() bool { return r.XMin <= r.XMax && r.YMin <= r.YMax }

// Intersects reports whether two rectangles share any point.
func (r Rect) Intersects(o Rect) bool {
	return r.XMin <= o.XMax && o.XMin <= r.XMax && r.YMin <= o.YMax && o.YMin <= r.YMax
}

// Contains reports whether o lies entirely within r.
func (r Rect) Contains(o Rect) bool {
	return r.XMin <= o.XMin && o.XMax <= r.XMax && r.YMin <= o.YMin && o.YMax <= r.YMax
}

// Union returns the minimum bounding rectangle of r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		XMin: math.Min(r.XMin, o.XMin),
		YMin: math.Min(r.YMin, o.YMin),
		XMax: math.Max(r.XMax, o.XMax),
		YMax: math.Max(r.YMax, o.YMax),
	}
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return (r.XMax - r.XMin) * (r.YMax - r.YMin) }

// Enlargement returns how much r's area grows to accommodate o.
func (r Rect) Enlargement(o Rect) float64 { return r.Union(o).Area() - r.Area() }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g - %g,%g]", r.XMin, r.YMin, r.XMax, r.YMax)
}

// orderedFloat encodes a float64 so byte comparison matches numeric order
// (and, more importantly here, so encodings are canonical per value).
func orderedFloat(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | 1<<63
}

func unorderedFloat(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// EncodePoint encodes a point key.
func EncodePoint(x, y float64) []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint64(b, orderedFloat(x))
	binary.BigEndian.PutUint64(b[8:], orderedFloat(y))
	return b
}

// DecodePoint reverses EncodePoint.
func DecodePoint(b []byte) (x, y float64) {
	return unorderedFloat(binary.BigEndian.Uint64(b)),
		unorderedFloat(binary.BigEndian.Uint64(b[8:]))
}

// EncodeRect encodes a rectangle predicate or query.
func EncodeRect(r Rect) []byte {
	b := make([]byte, 32)
	binary.BigEndian.PutUint64(b, orderedFloat(r.XMin))
	binary.BigEndian.PutUint64(b[8:], orderedFloat(r.YMin))
	binary.BigEndian.PutUint64(b[16:], orderedFloat(r.XMax))
	binary.BigEndian.PutUint64(b[24:], orderedFloat(r.YMax))
	return b
}

// DecodeRect reverses EncodeRect.
func DecodeRect(b []byte) Rect {
	return Rect{
		XMin: unorderedFloat(binary.BigEndian.Uint64(b)),
		YMin: unorderedFloat(binary.BigEndian.Uint64(b[8:])),
		XMax: unorderedFloat(binary.BigEndian.Uint64(b[16:])),
		YMax: unorderedFloat(binary.BigEndian.Uint64(b[24:])),
	}
}

// AsRect interprets either encoding as a rectangle.
func AsRect(b []byte) Rect {
	switch len(b) {
	case 16:
		x, y := DecodePoint(b)
		return Point(x, y)
	case 32:
		return DecodeRect(b)
	default:
		panic(fmt.Sprintf("rtree: bad predicate length %d", len(b)))
	}
}

// Ops implements gist.Ops for 2-D R-trees with Guttman's quadratic split.
type Ops struct{}

// Consistent reports rectangle intersection.
func (Ops) Consistent(pred, query []byte) bool {
	return AsRect(pred).Intersects(AsRect(query))
}

// Union returns the MBR of both inputs in canonical 32-byte form.
func (Ops) Union(a, b []byte) []byte {
	if a == nil {
		return EncodeRect(AsRect(b))
	}
	if b == nil {
		return EncodeRect(AsRect(a))
	}
	return EncodeRect(AsRect(a).Union(AsRect(b)))
}

// Penalty is Guttman's area enlargement, with area as tiebreaker folded in
// at vanishing weight.
func (Ops) Penalty(bp, key []byte) float64 {
	r := AsRect(bp)
	return r.Enlargement(AsRect(key)) + 1e-9*r.Area()
}

// PickSplit implements Guttman's quadratic split: pick the pair of entries
// whose combined MBR wastes the most area as seeds, then assign each
// remaining entry to the group whose MBR it enlarges least.
func (Ops) PickSplit(preds [][]byte) []int {
	n := len(preds)
	if n < 2 {
		// Degenerate; the tree validates that both sides are non-empty
		// and will reject this, but avoid an index panic here.
		return []int{0}
	}
	rects := make([]Rect, n)
	for i, p := range preds {
		rects[i] = AsRect(p)
	}
	// Seeds: most wasteful pair.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}
	groupA := []int{seedA}
	groupB := []int{seedB}
	mbrA, mbrB := rects[seedA], rects[seedB]
	half := (n + 1) / 2
	for i := 0; i < n; i++ {
		if i == seedA || i == seedB {
			continue
		}
		// Force balance once a group must absorb the rest.
		switch {
		case len(groupA) >= half:
			groupB = append(groupB, i)
			mbrB = mbrB.Union(rects[i])
			continue
		case len(groupB) >= half:
			groupA = append(groupA, i)
			mbrA = mbrA.Union(rects[i])
			continue
		}
		da := mbrA.Enlargement(rects[i])
		db := mbrB.Enlargement(rects[i])
		if da < db || (da == db && mbrA.Area() <= mbrB.Area()) {
			groupA = append(groupA, i)
			mbrA = mbrA.Union(rects[i])
		} else {
			groupB = append(groupB, i)
			mbrB = mbrB.Union(rects[i])
		}
	}
	return groupA
}

// KeyQuery returns a query matching exactly the given key (the key's own
// rectangle; for a point key, the degenerate rectangle).
func (Ops) KeyQuery(key []byte) []byte {
	return EncodeRect(AsRect(key))
}
