package rtree

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Valid() {
		t.Error("valid rect reported invalid")
	}
	if (Rect{5, 5, 1, 1}).Valid() {
		t.Error("inverted rect reported valid")
	}
	if r.Area() != 100 {
		t.Errorf("area = %v", r.Area())
	}
	if !r.Intersects(Rect{5, 5, 15, 15}) {
		t.Error("overlapping rects do not intersect")
	}
	if r.Intersects(Rect{11, 11, 12, 12}) {
		t.Error("disjoint rects intersect")
	}
	if !r.Intersects(Rect{10, 10, 12, 12}) {
		t.Error("edge-touching rects must intersect (closed rects)")
	}
	if !r.Contains(Rect{1, 1, 9, 9}) {
		t.Error("contained rect not contained")
	}
	if r.Contains(Rect{1, 1, 11, 9}) {
		t.Error("overflowing rect contained")
	}
	u := r.Union(Rect{-5, 2, 3, 20})
	if u != (Rect{-5, 0, 10, 20}) {
		t.Errorf("union = %v", u)
	}
	if e := r.Enlargement(Rect{0, 0, 20, 10}); e != 100 {
		t.Errorf("enlargement = %v", e)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestPointEncodingRoundTrip(t *testing.T) {
	cases := [][2]float64{{0, 0}, {1.5, -2.5}, {-1e9, 1e9}, {math.Pi, -math.E}}
	for _, c := range cases {
		x, y := DecodePoint(EncodePoint(c[0], c[1]))
		if x != c[0] || y != c[1] {
			t.Errorf("round trip (%v,%v) = (%v,%v)", c[0], c[1], x, y)
		}
	}
}

func TestRectEncodingRoundTrip(t *testing.T) {
	r := Rect{-3.5, 2, 7.25, 9}
	if got := DecodeRect(EncodeRect(r)); got != r {
		t.Errorf("round trip = %v", got)
	}
}

func TestQuickEncodingRoundTrip(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		gx, gy := DecodePoint(EncodePoint(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsRectPanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AsRect([]byte{1, 2, 3})
}

func TestOpsConsistent(t *testing.T) {
	var ops Ops
	bp := EncodeRect(Rect{0, 0, 10, 10})
	if !ops.Consistent(bp, EncodeRect(Rect{5, 5, 6, 6})) {
		t.Error("contained query inconsistent")
	}
	if ops.Consistent(bp, EncodeRect(Rect{20, 20, 30, 30})) {
		t.Error("disjoint query consistent")
	}
	if !ops.Consistent(EncodePoint(3, 3), EncodeRect(Rect{0, 0, 10, 10})) {
		t.Error("point in query rect inconsistent")
	}
	if ops.Consistent(EncodePoint(30, 3), EncodeRect(Rect{0, 0, 10, 10})) {
		t.Error("point outside query rect consistent")
	}
}

func TestOpsUnionCanonical(t *testing.T) {
	var ops Ops
	u := ops.Union(EncodePoint(1, 1), EncodePoint(5, 5))
	if DecodeRect(u) != (Rect{1, 1, 5, 5}) {
		t.Errorf("union = %v", DecodeRect(u))
	}
	if !bytes.Equal(ops.Union(nil, EncodePoint(2, 3)), EncodeRect(Point(2, 3))) {
		t.Error("union(nil, point) not canonical rect")
	}
	if !bytes.Equal(ops.Union(EncodePoint(2, 3), nil), EncodeRect(Point(2, 3))) {
		t.Error("union(point, nil) not canonical rect")
	}
	// Union with contained key is a no-op on the canonical form.
	big := EncodeRect(Rect{0, 0, 10, 10})
	if !bytes.Equal(ops.Union(big, EncodePoint(5, 5)), big) {
		t.Error("union with contained point changed the predicate")
	}
}

func TestQuickUnionCovers(t *testing.T) {
	var ops Ops
	f := func(x1, y1, x2, y2 float64) bool {
		for _, v := range []float64{x1, y1, x2, y2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a, b := EncodePoint(x1, y1), EncodePoint(x2, y2)
		u := AsRect(ops.Union(a, b))
		return u.Contains(Point(x1, y1)) && u.Contains(Point(x2, y2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPenaltyPrefersContainment(t *testing.T) {
	var ops Ops
	small := EncodeRect(Rect{0, 0, 1, 1})
	big := EncodeRect(Rect{0, 0, 100, 100})
	key := EncodePoint(0.5, 0.5)
	if ops.Penalty(small, key) >= ops.Penalty(big, key)+1e-6 {
		t.Error("containment penalties inverted")
	}
	far := EncodePoint(200, 200)
	if ops.Penalty(big, far) <= 0 {
		t.Error("outside key has zero penalty")
	}
}

func TestPickSplitSeparatesClusters(t *testing.T) {
	var ops Ops
	// Two clear clusters: around (0,0) and around (100,100).
	var preds [][]byte
	for i := 0; i < 4; i++ {
		preds = append(preds, EncodePoint(float64(i), float64(i)))
	}
	for i := 0; i < 4; i++ {
		preds = append(preds, EncodePoint(100+float64(i), 100+float64(i)))
	}
	stay := ops.PickSplit(preds)
	if len(stay) < 2 || len(stay) > 6 {
		t.Fatalf("unbalanced split: %d of 8 stay", len(stay))
	}
	// All staying entries must be from one cluster.
	low, high := 0, 0
	for _, i := range stay {
		if i < 4 {
			low++
		} else {
			high++
		}
	}
	if low != 0 && high != 0 {
		t.Errorf("split mixed the clusters: %d low, %d high stay together", low, high)
	}
}

func TestPickSplitBalanceForced(t *testing.T) {
	var ops Ops
	// Identical rectangles: split must still balance.
	var preds [][]byte
	for i := 0; i < 10; i++ {
		preds = append(preds, EncodePoint(1, 1))
	}
	stay := ops.PickSplit(preds)
	if len(stay) < 2 || len(stay) > 8 {
		t.Errorf("identical-entry split kept %d of 10", len(stay))
	}
	if got := ops.PickSplit([][]byte{EncodePoint(0, 0)}); len(got) != 1 {
		t.Errorf("single-entry split = %v", got)
	}
}

func TestKeyQuery(t *testing.T) {
	q := Ops{}.KeyQuery(EncodePoint(4, 5))
	if DecodeRect(q) != Point(4, 5) {
		t.Errorf("KeyQuery = %v", DecodeRect(q))
	}
}
