// Package predicate implements the predicate manager of §10.3 of the
// paper: the half of the hybrid isolation mechanism that prevents phantom
// insertions.
//
// Search operations attach their search predicate to every node they visit
// (top-down, starting at the root); insert operations check only the
// predicates attached to their target leaf — far fewer than a tree-global
// predicate list. The manager maintains the three data structures the paper
// prescribes: a list of predicates per transaction, a list of node
// attachments per predicate, and a FIFO list of the predicates attached to
// each node. FIFO ordering plus the rule that inserts leave their own key
// behind as an insert predicate provides fair (starvation-free) blocking.
//
// The manager is oblivious to predicate semantics: conflicts are decided by
// a caller-supplied consistency function (the same extension method that
// drives tree navigation).
package predicate

import (
	"sync"
	"sync/atomic"

	"repro/internal/page"
)

// Kind distinguishes search predicates (attached by scans to guard their
// whole search range) from insert predicates (left behind by inserts so
// later scans block, and by the search phase of unique insertion, §8).
type Kind int

// Predicate kinds.
const (
	Search Kind = iota
	Insert
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Search {
		return "search"
	}
	return "insert"
}

// Predicate is a registered predicate lock. Data is the encoded query (for
// Search) or key (for Insert); its interpretation belongs to the access
// method extension.
type Predicate struct {
	ID    uint64
	Owner page.TxnID
	Kind  Kind
	Data  []byte

	seq uint64 // global arrival order, drives per-node FIFO fairness
}

// attachment links a predicate to a node with its arrival order preserved.
type attachment struct {
	pred *Predicate
	seq  uint64
}

// Manager tracks predicates and their node attachments.
type Manager struct {
	mu      sync.Mutex
	nextID  uint64
	nextSeq uint64
	byTxn   map[page.TxnID][]*Predicate
	byNode  map[page.PageID][]attachment
	nodesOf map[*Predicate]map[page.PageID]bool

	checks        atomic.Int64 // conflict checks performed
	predsExamined atomic.Int64 // predicates examined across all checks
}

// NewManager returns an empty predicate manager.
func NewManager() *Manager {
	return &Manager{
		byTxn:   make(map[page.TxnID][]*Predicate),
		byNode:  make(map[page.PageID][]attachment),
		nodesOf: make(map[*Predicate]map[page.PageID]bool),
	}
}

// New registers a predicate for owner. The predicate is not yet attached to
// any node.
func (m *Manager) New(owner page.TxnID, kind Kind, data []byte) *Predicate {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	p := &Predicate{ID: m.nextID, Owner: owner, Kind: kind, Data: data}
	m.byTxn[owner] = append(m.byTxn[owner], p)
	m.nodesOf[p] = make(map[page.PageID]bool)
	return p
}

// Attach adds p to node's FIFO list (idempotent). It returns the predicates
// attached ahead of p on that node that belong to other transactions and
// for which conflicts reports true — the FIFO fairness rule: a newcomer
// must wait behind conflicting predicates already in the list.
func (m *Manager) Attach(p *Predicate, node page.PageID, conflicts func(other *Predicate) bool) []*Predicate {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.nodesOf[p] == nil {
		// Predicate was released concurrently; nothing to attach.
		return nil
	}
	if !m.nodesOf[p][node] {
		m.nextSeq++
		seq := m.nextSeq
		if p.seq == 0 {
			p.seq = seq
		}
		m.byNode[node] = append(m.byNode[node], attachment{pred: p, seq: seq})
		m.nodesOf[p][node] = true
	}
	if conflicts == nil {
		return nil
	}
	var ahead []*Predicate
	m.checks.Add(1)
	for _, a := range m.byNode[node] {
		if a.pred == p {
			break
		}
		if a.pred.Owner == p.Owner {
			continue
		}
		m.predsExamined.Add(1)
		if conflicts(a.pred) {
			ahead = append(ahead, a.pred)
		}
	}
	return ahead
}

// AttachedTo returns the predicates attached to node in FIFO order.
func (m *Manager) AttachedTo(node page.PageID) []*Predicate {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Predicate, 0, len(m.byNode[node]))
	for _, a := range m.byNode[node] {
		out = append(out, a.pred)
	}
	return out
}

// Conflicting returns the predicates attached to node, owned by other
// transactions, for which conflicts reports true. This is the insert
// operation's target-leaf check (§4.3 step 6). The counters feeding
// experiment E9 are updated.
func (m *Manager) Conflicting(node page.PageID, self page.TxnID, conflicts func(*Predicate) bool) []*Predicate {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checks.Add(1)
	var out []*Predicate
	for _, a := range m.byNode[node] {
		if a.pred.Owner == self {
			continue
		}
		m.predsExamined.Add(1)
		if conflicts(a.pred) {
			out = append(out, a.pred)
		}
	}
	return out
}

// ConflictingGlobal scans every registered predicate — the tree-global
// check of pure predicate locking (§4.2), implemented only as the baseline
// for experiment E9.
func (m *Manager) ConflictingGlobal(self page.TxnID, conflicts func(*Predicate) bool) []*Predicate {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checks.Add(1)
	var out []*Predicate
	for _, preds := range m.byTxn {
		for _, p := range preds {
			if p.Owner == self {
				continue
			}
			m.predsExamined.Add(1)
			if conflicts(p) {
				out = append(out, p)
			}
		}
	}
	return out
}

// ReplicateOnSplit attaches to the new sibling every predicate attached to
// orig for which applies reports true (its predicate is consistent with the
// new node's BP) — maintaining the invariant that a search predicate
// consistent with a node's BP is attached to that node (§4.3, case 1).
func (m *Manager) ReplicateOnSplit(orig, sibling page.PageID, applies func(*Predicate) bool) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, a := range m.byNode[orig] {
		if applies != nil && !applies(a.pred) {
			continue
		}
		if m.nodesOf[a.pred][sibling] {
			continue
		}
		m.nextSeq++
		m.byNode[sibling] = append(m.byNode[sibling], attachment{pred: a.pred, seq: m.nextSeq})
		m.nodesOf[a.pred][sibling] = true
		n++
	}
	return n
}

// Percolate copies predicates attached to parent down to child when the
// child's BP expansion makes them newly consistent with it (§4.3, case 2).
// applies receives each parent-attached predicate and reports whether it
// must now cover the child.
func (m *Manager) Percolate(parent, child page.PageID, applies func(*Predicate) bool) int {
	// Identical mechanics to split replication; kept separate for
	// tracing and statistics clarity.
	return m.ReplicateOnSplit(parent, child, applies)
}

// Detach removes p from a single node.
func (m *Manager) Detach(p *Predicate, node page.PageID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.detachLocked(p, node)
}

func (m *Manager) detachLocked(p *Predicate, node page.PageID) {
	if !m.nodesOf[p][node] {
		return
	}
	delete(m.nodesOf[p], node)
	as := m.byNode[node]
	for i, a := range as {
		if a.pred == p {
			m.byNode[node] = append(as[:i], as[i+1:]...)
			break
		}
	}
	if len(m.byNode[node]) == 0 {
		delete(m.byNode, node)
	}
}

// Release removes a single predicate and all its attachments (used for the
// transient "=key" predicates of unique insertion once the insert finishes,
// §8).
func (m *Manager) Release(p *Predicate) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(p)
}

func (m *Manager) releaseLocked(p *Predicate) {
	for node := range m.nodesOf[p] {
		as := m.byNode[node]
		for i, a := range as {
			if a.pred == p {
				m.byNode[node] = append(as[:i], as[i+1:]...)
				break
			}
		}
		if len(m.byNode[node]) == 0 {
			delete(m.byNode, node)
		}
	}
	delete(m.nodesOf, p)
	preds := m.byTxn[p.Owner]
	for i, q := range preds {
		if q == p {
			m.byTxn[p.Owner] = append(preds[:i], preds[i+1:]...)
			break
		}
	}
	if len(m.byTxn[p.Owner]) == 0 {
		delete(m.byTxn, p.Owner)
	}
}

// ReleaseTxn removes every predicate owned by txn and all their node
// attachments; called when the owner transaction terminates (predicates
// live until end of transaction, §4.3).
func (m *Manager) ReleaseTxn(txn page.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	preds := append([]*Predicate(nil), m.byTxn[txn]...)
	for _, p := range preds {
		m.releaseLocked(p)
	}
}

// DropNode removes every attachment at a node being deleted from the tree.
// The predicates themselves survive on their other attachments.
func (m *Manager) DropNode(node page.PageID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range m.byNode[node] {
		delete(m.nodesOf[a.pred], node)
	}
	delete(m.byNode, node)
}

// PredicatesOf returns the predicates registered by txn.
func (m *Manager) PredicatesOf(txn page.TxnID) []*Predicate {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Predicate(nil), m.byTxn[txn]...)
}

// NodesOf returns the nodes p is attached to.
func (m *Manager) NodesOf(p *Predicate) []page.PageID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]page.PageID, 0, len(m.nodesOf[p]))
	for n := range m.nodesOf[p] {
		out = append(out, n)
	}
	return out
}

// Counts returns the total number of live predicates and attachments.
func (m *Manager) Counts() (preds, attachments int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ps := range m.byTxn {
		preds += len(ps)
	}
	for _, as := range m.byNode {
		attachments += len(as)
	}
	return preds, attachments
}

// Stats returns the number of conflict checks performed and the cumulative
// number of predicates examined by them (experiment E9's metric).
func (m *Manager) Stats() (checks, predsExamined int64) {
	return m.checks.Load(), m.predsExamined.Load()
}

// ResetStats zeroes the counters.
func (m *Manager) ResetStats() {
	m.checks.Store(0)
	m.predsExamined.Store(0)
}
