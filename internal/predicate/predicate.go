// Package predicate implements the predicate manager of §10.3 of the
// paper: the half of the hybrid isolation mechanism that prevents phantom
// insertions.
//
// Search operations attach their search predicate to every node they visit
// (top-down, starting at the root); insert operations check only the
// predicates attached to their target leaf — far fewer than a tree-global
// predicate list. The manager maintains the three data structures the paper
// prescribes: a list of predicates per transaction, a list of node
// attachments per predicate, and a FIFO list of the predicates attached to
// each node. FIFO ordering plus the rule that inserts leave their own key
// behind as an insert predicate provides fair (starvation-free) blocking.
//
// The manager is oblivious to predicate semantics: conflicts are decided by
// a caller-supplied consistency function (the same extension method that
// drives tree navigation).
//
// Node attachment lists are hash-partitioned by PageID into shards with
// independent mutexes, so attach/detach/conflict-check on different nodes
// never contend. The per-predicate attachment set lives on the Predicate
// itself under its own mutex; the locking discipline is shard before
// predicate, and the two-shard operations (split replication, BP
// percolation) take both shards up front in index order.
package predicate

import (
	"sync"
	"sync/atomic"

	"repro/internal/page"
	"repro/internal/shards"
	"repro/internal/stats"
)

// Kind distinguishes search predicates (attached by scans to guard their
// whole search range) from insert predicates (left behind by inserts so
// later scans block, and by the search phase of unique insertion, §8).
type Kind int

// Predicate kinds.
const (
	Search Kind = iota
	Insert
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Search {
		return "search"
	}
	return "insert"
}

// Predicate is a registered predicate lock. Data is the encoded query (for
// Search) or key (for Insert); its interpretation belongs to the access
// method extension.
type Predicate struct {
	ID    uint64
	Owner page.TxnID
	Kind  Kind
	Data  []byte

	seq uint64 // global arrival order, drives per-node FIFO fairness

	// mu guards the attachment set; it is always acquired after the
	// shard mutex of the node involved, never before.
	mu       sync.Mutex
	nodes    map[page.PageID]bool
	released bool
}

// attachment links a predicate to a node with its arrival order preserved.
type attachment struct {
	pred *Predicate
	seq  uint64
}

// Shard count adapts to GOMAXPROCS (see package shards) and is surfaced
// by the predicate.shards gauge.

// predShard is one partition of the byNode attachment table.
type predShard struct {
	mu        sync.Mutex
	byNode    map[page.PageID][]attachment
	contended *stats.Counter
}

func (s *predShard) lock() {
	if s.mu.TryLock() {
		return
	}
	s.contended.Add(1)
	s.mu.Lock()
}

// Manager tracks predicates and their node attachments.
type Manager struct {
	shards  []predShard
	nextID  atomic.Uint64
	nextSeq atomic.Uint64

	ownersMu sync.Mutex
	byTxn    map[page.TxnID][]*Predicate

	reg           *stats.Registry
	checks        *stats.Counter // conflict checks performed
	predsExamined *stats.Counter // predicates examined across all checks
	contended     *stats.Counter // shard mutex acquisitions that blocked
}

// NewManager returns an empty predicate manager.
func NewManager() *Manager {
	m := &Manager{
		byTxn: make(map[page.TxnID][]*Predicate),
		reg:   stats.NewRegistry(),
	}
	m.checks = m.reg.Counter("predicate.checks")
	m.predsExamined = m.reg.Counter("predicate.preds_examined")
	m.contended = m.reg.Counter("predicate.shard_contention")
	m.reg.Gauge("predicate.shards", func() int64 { return int64(len(m.shards)) })
	m.shards = make([]predShard, shards.Count(0))
	for i := range m.shards {
		m.shards[i].byNode = make(map[page.PageID][]attachment)
		m.shards[i].contended = m.contended
	}
	return m
}

// Metrics exposes the manager's counter registry.
func (m *Manager) Metrics() *stats.Registry { return m.reg }

func (m *Manager) shardOf(node page.PageID) *predShard {
	h := (uint64(node) + 1) * 0x9E3779B97F4A7C15
	return &m.shards[(h>>32)%uint64(len(m.shards))]
}

// New registers a predicate for owner. The predicate is not yet attached to
// any node.
func (m *Manager) New(owner page.TxnID, kind Kind, data []byte) *Predicate {
	p := &Predicate{
		ID:    m.nextID.Add(1),
		Owner: owner,
		Kind:  kind,
		Data:  data,
		nodes: make(map[page.PageID]bool),
	}
	m.ownersMu.Lock()
	m.byTxn[owner] = append(m.byTxn[owner], p)
	m.ownersMu.Unlock()
	return p
}

// Attach adds p to node's FIFO list (idempotent). It returns the predicates
// attached ahead of p on that node that belong to other transactions and
// for which conflicts reports true — the FIFO fairness rule: a newcomer
// must wait behind conflicting predicates already in the list.
func (m *Manager) Attach(p *Predicate, node page.PageID, conflicts func(other *Predicate) bool) []*Predicate {
	s := m.shardOf(node)
	s.lock()
	p.mu.Lock()
	if p.released {
		// Predicate was released concurrently; nothing to attach.
		p.mu.Unlock()
		s.mu.Unlock()
		return nil
	}
	if !p.nodes[node] {
		seq := m.nextSeq.Add(1)
		if p.seq == 0 {
			p.seq = seq
		}
		s.byNode[node] = append(s.byNode[node], attachment{pred: p, seq: seq})
		p.nodes[node] = true
	}
	p.mu.Unlock()
	if conflicts == nil {
		s.mu.Unlock()
		return nil
	}
	var ahead []*Predicate
	m.checks.Inc()
	for _, a := range s.byNode[node] {
		if a.pred == p {
			break
		}
		if a.pred.Owner == p.Owner {
			continue
		}
		m.predsExamined.Inc()
		if conflicts(a.pred) {
			ahead = append(ahead, a.pred)
		}
	}
	s.mu.Unlock()
	return ahead
}

// AttachedTo returns the predicates attached to node in FIFO order.
func (m *Manager) AttachedTo(node page.PageID) []*Predicate {
	s := m.shardOf(node)
	s.lock()
	defer s.mu.Unlock()
	out := make([]*Predicate, 0, len(s.byNode[node]))
	for _, a := range s.byNode[node] {
		out = append(out, a.pred)
	}
	return out
}

// Conflicting returns the predicates attached to node, owned by other
// transactions, for which conflicts reports true. This is the insert
// operation's target-leaf check (§4.3 step 6). The counters feeding
// experiment E9 are updated.
func (m *Manager) Conflicting(node page.PageID, self page.TxnID, conflicts func(*Predicate) bool) []*Predicate {
	s := m.shardOf(node)
	s.lock()
	defer s.mu.Unlock()
	m.checks.Inc()
	var out []*Predicate
	for _, a := range s.byNode[node] {
		if a.pred.Owner == self {
			continue
		}
		m.predsExamined.Inc()
		if conflicts(a.pred) {
			out = append(out, a.pred)
		}
	}
	return out
}

// ConflictingGlobal scans every registered predicate — the tree-global
// check of pure predicate locking (§4.2), implemented only as the baseline
// for experiment E9.
func (m *Manager) ConflictingGlobal(self page.TxnID, conflicts func(*Predicate) bool) []*Predicate {
	m.ownersMu.Lock()
	defer m.ownersMu.Unlock()
	m.checks.Inc()
	var out []*Predicate
	for _, preds := range m.byTxn {
		for _, p := range preds {
			if p.Owner == self {
				continue
			}
			m.predsExamined.Inc()
			if conflicts(p) {
				out = append(out, p)
			}
		}
	}
	return out
}

// ReplicateOnSplit attaches to the new sibling every predicate attached to
// orig for which applies reports true (its predicate is consistent with the
// new node's BP) — maintaining the invariant that a search predicate
// consistent with a node's BP is attached to that node (§4.3, case 1).
// When the two nodes hash to different shards, both shard mutexes are held
// for the duration, taken in index order.
func (m *Manager) ReplicateOnSplit(orig, sibling page.PageID, applies func(*Predicate) bool) int {
	so, ss := m.shardOf(orig), m.shardOf(sibling)
	m.lockPair(so, ss)
	defer m.unlockPair(so, ss)
	n := 0
	for _, a := range so.byNode[orig] {
		if applies != nil && !applies(a.pred) {
			continue
		}
		a.pred.mu.Lock()
		if a.pred.released || a.pred.nodes[sibling] {
			a.pred.mu.Unlock()
			continue
		}
		ss.byNode[sibling] = append(ss.byNode[sibling], attachment{pred: a.pred, seq: m.nextSeq.Add(1)})
		a.pred.nodes[sibling] = true
		a.pred.mu.Unlock()
		n++
	}
	return n
}

// lockPair acquires the two shards' mutexes in index order (once if equal).
func (m *Manager) lockPair(a, b *predShard) {
	ai := m.shardIndex(a)
	bi := m.shardIndex(b)
	switch {
	case ai == bi:
		a.lock()
	case ai < bi:
		a.lock()
		b.lock()
	default:
		b.lock()
		a.lock()
	}
}

func (m *Manager) unlockPair(a, b *predShard) {
	a.mu.Unlock()
	if a != b {
		b.mu.Unlock()
	}
}

func (m *Manager) shardIndex(s *predShard) int {
	for i := range m.shards {
		if &m.shards[i] == s {
			return i
		}
	}
	return 0
}

// Percolate copies predicates attached to parent down to child when the
// child's BP expansion makes them newly consistent with it (§4.3, case 2).
// applies receives each parent-attached predicate and reports whether it
// must now cover the child.
func (m *Manager) Percolate(parent, child page.PageID, applies func(*Predicate) bool) int {
	// Identical mechanics to split replication; kept separate for
	// tracing and statistics clarity.
	return m.ReplicateOnSplit(parent, child, applies)
}

// Detach removes p from a single node.
func (m *Manager) Detach(p *Predicate, node page.PageID) {
	s := m.shardOf(node)
	s.lock()
	p.mu.Lock()
	if !p.nodes[node] {
		p.mu.Unlock()
		s.mu.Unlock()
		return
	}
	delete(p.nodes, node)
	p.mu.Unlock()
	removeAttachmentLocked(s, node, p)
	s.mu.Unlock()
}

// removeAttachmentLocked drops p's attachment from node's list (shard mutex
// held).
func removeAttachmentLocked(s *predShard, node page.PageID, p *Predicate) {
	as := s.byNode[node]
	for i, a := range as {
		if a.pred == p {
			s.byNode[node] = append(as[:i], as[i+1:]...)
			break
		}
	}
	if len(s.byNode[node]) == 0 {
		delete(s.byNode, node)
	}
}

// Release removes a single predicate and all its attachments (used for the
// transient "=key" predicates of unique insertion once the insert finishes,
// §8).
func (m *Manager) Release(p *Predicate) {
	p.mu.Lock()
	if p.released {
		p.mu.Unlock()
		return
	}
	p.released = true
	nodes := make([]page.PageID, 0, len(p.nodes))
	for node := range p.nodes {
		nodes = append(nodes, node)
	}
	p.nodes = make(map[page.PageID]bool)
	p.mu.Unlock()

	for _, node := range nodes {
		s := m.shardOf(node)
		s.lock()
		removeAttachmentLocked(s, node, p)
		s.mu.Unlock()
	}

	m.ownersMu.Lock()
	preds := m.byTxn[p.Owner]
	for i, q := range preds {
		if q == p {
			m.byTxn[p.Owner] = append(preds[:i], preds[i+1:]...)
			break
		}
	}
	if len(m.byTxn[p.Owner]) == 0 {
		delete(m.byTxn, p.Owner)
	}
	m.ownersMu.Unlock()
}

// ReleaseTxn removes every predicate owned by txn and all their node
// attachments; called when the owner transaction terminates (predicates
// live until end of transaction, §4.3).
func (m *Manager) ReleaseTxn(txn page.TxnID) {
	m.ownersMu.Lock()
	preds := append([]*Predicate(nil), m.byTxn[txn]...)
	m.ownersMu.Unlock()
	for _, p := range preds {
		m.Release(p)
	}
}

// DropNode removes every attachment at a node being deleted from the tree.
// The predicates themselves survive on their other attachments.
func (m *Manager) DropNode(node page.PageID) {
	s := m.shardOf(node)
	s.lock()
	for _, a := range s.byNode[node] {
		a.pred.mu.Lock()
		delete(a.pred.nodes, node)
		a.pred.mu.Unlock()
	}
	delete(s.byNode, node)
	s.mu.Unlock()
}

// PredicatesOf returns the predicates registered by txn.
func (m *Manager) PredicatesOf(txn page.TxnID) []*Predicate {
	m.ownersMu.Lock()
	defer m.ownersMu.Unlock()
	return append([]*Predicate(nil), m.byTxn[txn]...)
}

// NodesOf returns the nodes p is attached to.
func (m *Manager) NodesOf(p *Predicate) []page.PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]page.PageID, 0, len(p.nodes))
	for n := range p.nodes {
		out = append(out, n)
	}
	return out
}

// Counts returns the total number of live predicates and attachments.
func (m *Manager) Counts() (preds, attachments int) {
	m.ownersMu.Lock()
	for _, ps := range m.byTxn {
		preds += len(ps)
	}
	m.ownersMu.Unlock()
	for i := range m.shards {
		s := &m.shards[i]
		s.lock()
		for _, as := range s.byNode {
			attachments += len(as)
		}
		s.mu.Unlock()
	}
	return preds, attachments
}

// Stats returns the number of conflict checks performed and the cumulative
// number of predicates examined by them (experiment E9's metric), read
// through the stats registry.
func (m *Manager) Stats() (checks, predsExamined int64) {
	return m.checks.Load(), m.predsExamined.Load()
}

// ResetStats zeroes every counter and histogram in the manager's registry.
// Per-counter Store(0) resets silently miss latency histograms added later;
// Registry.Reset covers both kinds by construction.
func (m *Manager) ResetStats() {
	m.reg.Reset()
}
