package predicate

import (
	"testing"

	"repro/internal/page"
)

// findNodeInOtherShard returns a node id that hashes to a different shard
// than base.
func findNodeInOtherShard(t *testing.T, m *Manager, base page.PageID) page.PageID {
	t.Helper()
	for id := base + 1; id < base+100000; id++ {
		if m.shardOf(id) != m.shardOf(base) {
			return id
		}
	}
	t.Fatal("no node found in a different shard")
	return 0
}

// TestReplicateOnSplitAcrossShards splits a node whose sibling lives in a
// different shard: replication must take both shard mutexes and leave the
// predicate attached to both nodes.
func TestReplicateOnSplitAcrossShards(t *testing.T) {
	m := NewManager()
	orig := page.PageID(1)
	sibling := findNodeInOtherShard(t, m, orig)

	p := m.New(1, Search, []byte("q"))
	m.Attach(p, orig, nil)

	if n := m.ReplicateOnSplit(orig, sibling, always); n != 1 {
		t.Fatalf("ReplicateOnSplit = %d, want 1", n)
	}
	if got := m.AttachedTo(sibling); len(got) != 1 || got[0] != p {
		t.Fatalf("sibling attachments = %v", got)
	}
	if nodes := m.NodesOf(p); len(nodes) != 2 {
		t.Fatalf("NodesOf = %v, want both nodes", nodes)
	}

	// Replication is idempotent even across shards.
	if n := m.ReplicateOnSplit(orig, sibling, always); n != 0 {
		t.Fatalf("second ReplicateOnSplit = %d, want 0", n)
	}

	// Percolation in the reverse direction exercises the opposite
	// shard-index ordering of the two-shard lock path.
	q := m.New(2, Search, []byte("r"))
	m.Attach(q, sibling, nil)
	if n := m.Percolate(sibling, orig, always); n != 1 {
		t.Fatalf("reverse Percolate = %d, want 1", n)
	}

	// Release must clean attachments in both shards.
	m.Release(p)
	m.ReleaseTxn(2)
	preds, atts := m.Counts()
	if preds != 0 || atts != 0 {
		t.Fatalf("after release: %d preds, %d attachments", preds, atts)
	}
}

// TestReleaseSpansShards attaches one predicate to many nodes across every
// shard and verifies Release drops all of them.
func TestReleaseSpansShards(t *testing.T) {
	m := NewManager()
	p := m.New(1, Search, nil)
	for id := page.PageID(1); id <= 64; id++ {
		m.Attach(p, id, nil)
	}
	if _, atts := m.Counts(); atts != 64 {
		t.Fatalf("attachments = %d, want 64", atts)
	}
	m.Release(p)
	preds, atts := m.Counts()
	if preds != 0 || atts != 0 {
		t.Fatalf("after release: %d preds, %d attachments", preds, atts)
	}
	// Attach after release must be a no-op.
	if got := m.Attach(p, 5, always); got != nil {
		t.Fatalf("attach after release returned %v", got)
	}
	if _, atts := m.Counts(); atts != 0 {
		t.Fatalf("released predicate re-attached: %d attachments", atts)
	}
}
