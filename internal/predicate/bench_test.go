package predicate

import (
	"sync/atomic"
	"testing"

	"repro/internal/page"
)

// BenchmarkPredicateAttachParallel measures attach/detach on disjoint nodes
// across goroutines: each goroutine works on its own page-id range, so node
// lists never overlap and the benchmark isolates the manager's own
// synchronization cost (run with -cpu 1,4,16 to see scaling).
func BenchmarkPredicateAttachParallel(b *testing.B) {
	m := NewManager()
	var gid atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		id := uint64(gid.Add(1))
		txn := page.TxnID(id)
		p := m.New(txn, Search, []byte("bench"))
		i := uint64(0)
		for pb.Next() {
			node := page.PageID(id<<16 | i%256)
			m.Attach(p, node, nil)
			m.Detach(p, node)
			i++
		}
	})
}
