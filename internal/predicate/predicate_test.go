package predicate

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/page"
)

func always(*Predicate) bool { return true }
func never(*Predicate) bool  { return false }

func TestNewAndAttach(t *testing.T) {
	m := NewManager()
	p := m.New(1, Search, []byte("range[1,5]"))
	if p.Owner != 1 || p.Kind != Search || string(p.Data) != "range[1,5]" {
		t.Errorf("predicate = %+v", p)
	}
	if ahead := m.Attach(p, 10, always); len(ahead) != 0 {
		t.Errorf("ahead on empty node = %v", ahead)
	}
	got := m.AttachedTo(10)
	if len(got) != 1 || got[0] != p {
		t.Errorf("AttachedTo = %v", got)
	}
	// Idempotent.
	m.Attach(p, 10, nil)
	if got := m.AttachedTo(10); len(got) != 1 {
		t.Errorf("double attach duplicated: %v", got)
	}
	if nodes := m.NodesOf(p); len(nodes) != 1 || nodes[0] != 10 {
		t.Errorf("NodesOf = %v", nodes)
	}
}

func TestAttachReportsConflictsAheadFIFO(t *testing.T) {
	m := NewManager()
	s1 := m.New(1, Search, []byte("s1"))
	ins := m.New(2, Insert, []byte("k"))
	s2 := m.New(3, Search, []byte("s2"))

	m.Attach(s1, 5, nil)
	aheadOfInsert := m.Attach(ins, 5, always)
	if len(aheadOfInsert) != 1 || aheadOfInsert[0] != s1 {
		t.Errorf("insert sees ahead = %v, want [s1]", aheadOfInsert)
	}
	// A later scan must see the insert predicate ahead of it (fairness:
	// it queues behind the blocked insert rather than starving it).
	aheadOfS2 := m.Attach(s2, 5, always)
	if len(aheadOfS2) != 2 {
		t.Errorf("s2 sees %d ahead, want 2", len(aheadOfS2))
	}
	// Own predicates are never conflicts.
	own := m.New(1, Insert, []byte("own"))
	ahead := m.Attach(own, 5, always)
	for _, p := range ahead {
		if p.Owner == 1 {
			t.Errorf("own predicate reported as conflict: %v", p)
		}
	}
}

func TestConflictingChecksOnlyNodeList(t *testing.T) {
	m := NewManager()
	for i := 0; i < 10; i++ {
		p := m.New(page.TxnID(100+i), Search, []byte{byte(i)})
		m.Attach(p, page.PageID(i%2), nil) // half on node 0, half on node 1
	}
	m.ResetStats()
	got := m.Conflicting(0, 999, always)
	if len(got) != 5 {
		t.Errorf("Conflicting on node 0 = %d, want 5", len(got))
	}
	_, examined := m.Stats()
	if examined != 5 {
		t.Errorf("examined %d predicates, want 5 (hybrid checks only the leaf list)", examined)
	}

	m.ResetStats()
	all := m.ConflictingGlobal(999, always)
	if len(all) != 10 {
		t.Errorf("global = %d, want 10", len(all))
	}
	_, examined = m.Stats()
	if examined != 10 {
		t.Errorf("global examined %d, want 10", examined)
	}
}

func TestConflictingSkipsSelfAndFiltered(t *testing.T) {
	m := NewManager()
	mine := m.New(7, Search, []byte("mine"))
	other := m.New(8, Search, []byte("other"))
	m.Attach(mine, 3, nil)
	m.Attach(other, 3, nil)
	if got := m.Conflicting(3, 7, always); len(got) != 1 || got[0] != other {
		t.Errorf("got %v", got)
	}
	if got := m.Conflicting(3, 7, never); len(got) != 0 {
		t.Errorf("filter ignored: %v", got)
	}
	if got := m.Conflicting(99, 7, always); got != nil {
		t.Errorf("empty node: %v", got)
	}
}

func TestReplicateOnSplit(t *testing.T) {
	m := NewManager()
	pa := m.New(1, Search, []byte("a"))
	pb := m.New(2, Search, []byte("b"))
	m.Attach(pa, 10, nil)
	m.Attach(pb, 10, nil)

	n := m.ReplicateOnSplit(10, 11, func(p *Predicate) bool { return bytes.Equal(p.Data, []byte("a")) })
	if n != 1 {
		t.Errorf("replicated %d, want 1", n)
	}
	got := m.AttachedTo(11)
	if len(got) != 1 || got[0] != pa {
		t.Errorf("sibling predicates = %v", got)
	}
	// Original attachments intact.
	if len(m.AttachedTo(10)) != 2 {
		t.Error("original attachments lost")
	}
	// Re-replication is idempotent.
	if n := m.ReplicateOnSplit(10, 11, always); n != 1 {
		t.Errorf("second replication added %d, want 1 (only pb)", n)
	}
}

func TestPercolate(t *testing.T) {
	m := NewManager()
	p := m.New(1, Search, []byte("wide"))
	m.Attach(p, 2, nil) // parent
	if n := m.Percolate(2, 5, always); n != 1 {
		t.Errorf("percolated %d, want 1", n)
	}
	if got := m.AttachedTo(5); len(got) != 1 || got[0] != p {
		t.Errorf("child predicates = %v", got)
	}
}

func TestReleaseSinglePredicate(t *testing.T) {
	m := NewManager()
	p := m.New(1, Insert, []byte("=k"))
	q := m.New(1, Search, []byte("s"))
	m.Attach(p, 1, nil)
	m.Attach(p, 2, nil)
	m.Attach(q, 1, nil)
	m.Release(p)
	if got := m.AttachedTo(1); len(got) != 1 || got[0] != q {
		t.Errorf("node 1 after release = %v", got)
	}
	if got := m.AttachedTo(2); len(got) != 0 {
		t.Errorf("node 2 after release = %v", got)
	}
	if preds := m.PredicatesOf(1); len(preds) != 1 || preds[0] != q {
		t.Errorf("txn predicates = %v", preds)
	}
	// Releasing again is harmless.
	m.Release(p)
	// Attaching a released predicate is a no-op.
	if ahead := m.Attach(p, 3, always); ahead != nil {
		t.Errorf("attach after release returned %v", ahead)
	}
	if got := m.AttachedTo(3); len(got) != 0 {
		t.Error("released predicate attached")
	}
}

func TestReleaseTxn(t *testing.T) {
	m := NewManager()
	for i := 0; i < 3; i++ {
		p := m.New(5, Search, []byte{byte(i)})
		m.Attach(p, page.PageID(i), nil)
		m.Attach(p, 100, nil)
	}
	other := m.New(6, Search, []byte("other"))
	m.Attach(other, 100, nil)

	m.ReleaseTxn(5)
	if got := m.PredicatesOf(5); len(got) != 0 {
		t.Errorf("txn 5 predicates remain: %v", got)
	}
	if got := m.AttachedTo(100); len(got) != 1 || got[0] != other {
		t.Errorf("node 100 = %v", got)
	}
	preds, attaches := m.Counts()
	if preds != 1 || attaches != 1 {
		t.Errorf("counts = %d preds %d attachments", preds, attaches)
	}
}

func TestDetachAndDropNode(t *testing.T) {
	m := NewManager()
	p := m.New(1, Search, []byte("p"))
	m.Attach(p, 1, nil)
	m.Attach(p, 2, nil)
	m.Detach(p, 1)
	if len(m.AttachedTo(1)) != 0 || len(m.AttachedTo(2)) != 1 {
		t.Error("detach wrong")
	}
	m.Detach(p, 1) // idempotent

	q := m.New(2, Search, []byte("q"))
	m.Attach(q, 2, nil)
	m.DropNode(2)
	if len(m.AttachedTo(2)) != 0 {
		t.Error("DropNode left attachments")
	}
	// Predicates survive for their owners.
	if len(m.PredicatesOf(1)) != 1 || len(m.PredicatesOf(2)) != 1 {
		t.Error("DropNode destroyed predicates")
	}
}

func TestConcurrentAttachRelease(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := page.TxnID(g + 1)
			for i := 0; i < 100; i++ {
				p := m.New(txn, Search, []byte{byte(i)})
				for n := 0; n < 4; n++ {
					m.Attach(p, page.PageID(n), always)
				}
				m.Conflicting(page.PageID(i%4), txn, always)
				if i%3 == 0 {
					m.Release(p)
				}
			}
			m.ReleaseTxn(txn)
		}(g)
	}
	wg.Wait()
	preds, attaches := m.Counts()
	if preds != 0 || attaches != 0 {
		t.Errorf("leftover state: %d preds, %d attachments", preds, attaches)
	}
}

func TestKindString(t *testing.T) {
	if Search.String() != "search" || Insert.String() != "insert" {
		t.Error("kind strings")
	}
}
