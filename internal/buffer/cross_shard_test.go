package buffer

import (
	"errors"
	"testing"

	"repro/internal/page"
	"repro/internal/storage"
)

// TestSaturatedShardStealsFromSiblings pins more pages of one shard than
// that shard owns frames while the rest of the pool is idle: the shard must
// steal frames from its siblings instead of reporting exhaustion.
func TestSaturatedShardStealsFromSiblings(t *testing.T) {
	disk := storage.NewMemDisk()
	pool := New(disk, 64, nil)
	if len(pool.shards) < 2 {
		t.Fatalf("pool has %d shards, test needs > 1", len(pool.shards))
	}

	var ids []page.PageID
	for i := 0; i < 400; i++ {
		id, err := disk.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	target := pool.shardOf(ids[0])
	var inTarget, others []page.PageID
	for _, id := range ids {
		if pool.shardOf(id) == target {
			inTarget = append(inTarget, id)
		} else {
			others = append(others, id)
		}
	}
	perShard := pool.Capacity() / len(pool.shards)
	want := perShard * 2 // twice the shard's own frames
	if len(inTarget) < want {
		t.Fatalf("only %d of %d pages hash to the target shard, need %d", len(inTarget), len(ids), want)
	}

	var pinned []*Frame
	for _, id := range inTarget[:want] {
		f, err := pool.Fetch(id)
		if err != nil {
			t.Fatalf("fetch %d into saturated shard: %v", id, err)
		}
		pinned = append(pinned, f)
	}
	if pool.steals.Load() == 0 {
		t.Error("no frame steals recorded while over-filling one shard")
	}

	// Keep pinning until the pool genuinely runs out. Nearly the whole
	// capacity must be reachable; the never-drain-below-one-frame rule may
	// strand at most one frame per shard.
	var exhausted bool
	for _, id := range others {
		f, err := pool.Fetch(id)
		if err != nil {
			if !errors.Is(err, ErrPoolExhausted) {
				t.Fatalf("fetch %d: %v", id, err)
			}
			exhausted = true
			break
		}
		pinned = append(pinned, f)
		if len(pinned) == pool.Capacity() {
			break
		}
	}
	if !exhausted {
		if len(pinned) != pool.Capacity() {
			t.Fatalf("pinned %d of %d without exhaustion", len(pinned), pool.Capacity())
		}
		if _, err := pool.Fetch(others[len(others)-1]); !errors.Is(err, ErrPoolExhausted) {
			t.Fatalf("fetch beyond capacity: %v, want ErrPoolExhausted", err)
		}
	}
	if min := pool.Capacity() - len(pool.shards); len(pinned) < min {
		t.Errorf("only %d frames pinnable, want >= %d", len(pinned), min)
	}

	// After unpinning, the pool must be fully usable again.
	for _, f := range pinned {
		pool.Unpin(f, false, 0)
	}
	f, err := pool.Fetch(others[len(others)-1])
	if err != nil {
		t.Fatalf("fetch after unpin: %v", err)
	}
	pool.Unpin(f, false, 0)
}

// TestStealPreservesDirtyPages saturates one shard so it steals a dirty
// frame from a sibling; the WAL rule write-back must preserve the page
// image.
func TestStealPreservesDirtyPages(t *testing.T) {
	disk := storage.NewMemDisk()
	pool := New(disk, 64, nil)
	if len(pool.shards) < 2 {
		t.Fatalf("pool has %d shards, test needs > 1", len(pool.shards))
	}

	// Dirty one page in every shard so any steal hits a dirty victim.
	var dirtied []page.PageID
	for i := 0; i < 64; i++ {
		id, err := disk.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		f, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		f.Page.Bytes()[0] = byte(id)
		pool.Unpin(f, true, 1)
		dirtied = append(dirtied, id)
	}

	// Saturate one shard far past its own frames: steals must write the
	// dirty victims back, not lose them.
	target := pool.shardOf(dirtied[0])
	var extra []page.PageID
	for len(extra) < pool.Capacity()/len(pool.shards)*2 {
		id, err := disk.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if pool.shardOf(id) != target {
			continue
		}
		extra = append(extra, id)
	}
	var pinned []*Frame
	for _, id := range extra {
		f, err := pool.Fetch(id)
		if err != nil {
			t.Fatalf("fetch %d: %v", id, err)
		}
		pinned = append(pinned, f)
	}
	for _, f := range pinned {
		pool.Unpin(f, false, 0)
	}

	// Every dirtied page must read back with its marker byte, whether it
	// is still cached or was evicted by a steal.
	for _, id := range dirtied {
		f, err := pool.Fetch(id)
		if err != nil {
			t.Fatalf("refetch %d: %v", id, err)
		}
		if f.Page.Bytes()[0] != byte(id) {
			t.Errorf("page %d lost its update across steal/evict", id)
		}
		pool.Unpin(f, false, 0)
	}
}
