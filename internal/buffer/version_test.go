package buffer

import (
	"testing"

	"repro/internal/storage"
)

// TestFrameRemapPoisonsVersion pins the eviction/recycle ABA defense: a
// version captured while a frame held page A must never validate once the
// frame has been remapped to page B, on either remap path (NewPage claim
// and fetch-miss claim). Without the poison a reader that unpinned, lost
// the frame to eviction, and re-validated could bless a copy of the wrong
// page.
func TestFrameRemapPoisonsVersion(t *testing.T) {
	d := storage.NewMemDisk()
	p := New(d, 1, nil) // one frame: every new page recycles it

	fa, err := p.NewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	idA := fa.ID()
	vA, ok := fa.Latch.TryOptimistic()
	if !ok {
		t.Fatal("TryOptimistic failed on an unlatched frame")
	}
	p.Unpin(fa, true, 1)

	// NewPage path: claims the sole frame for a fresh page.
	fb, err := p.NewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if fb != fa {
		t.Fatalf("expected frame recycle with capacity 1 (got %p vs %p)", fb, fa)
	}
	if fa.Latch.Validate(vA) {
		t.Fatal("version captured against page A validated after NewPage remap")
	}
	vB, ok := fb.Latch.TryOptimistic()
	if !ok {
		t.Fatal("remapped frame not optimistically readable")
	}
	p.Unpin(fb, true, 2)

	// Fetch-miss path: reloading page A recycles the frame again.
	fc, err := p.Fetch(idA)
	if err != nil {
		t.Fatal(err)
	}
	if fc != fa {
		t.Fatalf("expected frame recycle on fetch miss (got %p vs %p)", fc, fa)
	}
	if fc.Latch.Validate(vB) {
		t.Fatal("version captured against page B validated after fetch-miss remap")
	}
	if _, ok := fc.Latch.TryOptimistic(); !ok {
		t.Fatal("frame version parity broken after two remaps")
	}
	p.Unpin(fc, false, 0)
}
