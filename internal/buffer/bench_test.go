package buffer

import (
	"sync/atomic"
	"testing"

	"repro/internal/page"
	"repro/internal/storage"
)

// BenchmarkPoolFetchParallel measures the all-hits fetch/unpin path across
// goroutines: the pool is larger than the working set, so every Fetch is a
// table hit and the benchmark isolates the pool's synchronization cost
// (run with -cpu 1,4,16 to see scaling).
func BenchmarkPoolFetchParallel(b *testing.B) {
	d := storage.NewMemDisk()
	p := New(d, 1024, nil)
	const pages = 512
	ids := make([]page.PageID, pages)
	for i := range ids {
		f, err := p.NewPage(0)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = f.ID()
		p.Unpin(f, false, 0)
	}
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine walks the id space from its own offset so that
		// concurrent fetches mostly touch distinct pages.
		i := int(gid.Add(1)) * 37
		for pb.Next() {
			f, err := p.Fetch(ids[i%pages])
			if err != nil {
				b.Error(err)
				return
			}
			p.Unpin(f, false, 0)
			i++
		}
	})
}
