package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/latch"
	"repro/internal/page"
	"repro/internal/storage"
)

// recordingFlusher records the highest LSN the pool asked to be flushed.
type recordingFlusher struct {
	mu  sync.Mutex
	max page.LSN
}

func (r *recordingFlusher) FlushTo(l page.LSN) error {
	r.mu.Lock()
	if l > r.max {
		r.max = l
	}
	r.mu.Unlock()
	return nil
}

// FlushedLSN reports nothing durable, so the pool's fast path never skips
// FlushTo and the recorder observes every WAL-rule flush.
func (r *recordingFlusher) FlushedLSN() page.LSN { return 0 }

func newPoolDisk(t *testing.T, capacity int) (*Pool, *storage.MemDisk) {
	t.Helper()
	d := storage.NewMemDisk()
	return New(d, capacity, nil), d
}

func TestNewPageFetchUnpin(t *testing.T) {
	p, _ := newPoolDisk(t, 4)
	f, err := p.NewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	if !f.Page.IsLeaf() {
		t.Error("NewPage(0) not a leaf")
	}
	if _, err := f.Page.InsertBytes([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, true, 1)

	g, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Error("cached fetch returned a different frame")
	}
	b, err := g.Page.SlotBytes(0)
	if err != nil || string(b) != "hello" {
		t.Errorf("content lost: %q %v", b, err)
	}
	p.Unpin(g, false, 0)
}

func TestEvictionWritesBackAndReloads(t *testing.T) {
	d := storage.NewMemDisk()
	p := New(d, 2, nil)
	var ids []page.PageID
	for i := 0; i < 4; i++ {
		f, err := p.NewPage(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Page.InsertBytes([]byte{byte('A' + i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		p.Unpin(f, true, page.LSN(i+1))
	}
	// All four pages must round-trip through the 2-frame pool.
	for i, id := range ids {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("refetch %d: %v", id, err)
		}
		b, err := f.Page.SlotBytes(0)
		if err != nil || b[0] != byte('A'+i) {
			t.Errorf("page %d content = %v, %v", id, b, err)
		}
		p.Unpin(f, false, 0)
	}
	if _, misses, _ := p.Stats(); misses == 0 {
		t.Error("expected misses with capacity 2")
	}
}

func TestWALRuleOnEviction(t *testing.T) {
	d := storage.NewMemDisk()
	fl := &recordingFlusher{}
	p := New(d, 1, fl)
	f, err := p.NewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Page.SetLSN(777)
	p.Unpin(f, true, 777)
	// Force eviction by allocating another page into the only frame.
	g, err := p.NewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(g, false, 0)
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.max < 777 {
		t.Errorf("log flushed to %d before steal, want >= 777", fl.max)
	}
}

func TestPoolExhausted(t *testing.T) {
	p, _ := newPoolDisk(t, 2)
	a, _ := p.NewPage(0)
	b, _ := p.NewPage(0)
	if _, err := p.NewPage(0); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("err = %v, want ErrPoolExhausted", err)
	}
	p.Unpin(a, false, 0)
	if _, err := p.Fetch(b.ID()); err != nil { // re-pin cached page still fine
		t.Fatal(err)
	}
	p.Unpin(b, false, 0)
	p.Unpin(b, false, 0)
}

func TestFetchInvalidPage(t *testing.T) {
	p, _ := newPoolDisk(t, 2)
	if _, err := p.Fetch(page.InvalidPage); err == nil {
		t.Error("fetch of invalid page succeeded")
	}
	if _, err := p.Fetch(999); err == nil {
		t.Error("fetch of unallocated page succeeded")
	}
}

func TestFlushPageAndAll(t *testing.T) {
	d := storage.NewMemDisk()
	p := New(d, 4, nil)
	f, _ := p.NewPage(0)
	if _, err := f.Page.InsertBytes([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	p.Unpin(f, true, 5)

	if got := p.DirtyPages(); got[id] != 5 {
		t.Errorf("DirtyPages = %v, want {%d:5}", got, id)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := p.DirtyPages(); len(got) != 0 {
		t.Errorf("DirtyPages after flush = %v", got)
	}
	// Verify durable content directly from disk.
	buf := make([]byte, page.Size)
	if err := d.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	var pg page.Page
	pg.CopyFrom(buf)
	b, err := pg.SlotBytes(0)
	if err != nil || string(b) != "durable" {
		t.Errorf("disk content %q %v", b, err)
	}
	// FlushPage of uncached page is a no-op.
	if err := p.FlushPage(4242); err != nil {
		t.Errorf("flush uncached: %v", err)
	}
}

func TestResetLosesUnflushed(t *testing.T) {
	d := storage.NewMemDisk()
	p := New(d, 4, nil)
	f, _ := p.NewPage(0)
	id := f.ID()
	if _, err := f.Page.InsertBytes([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, true, 1)
	p.Reset() // crash: buffer contents lost
	g, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Unpin(g, false, 0)
	if g.Page.NumSlots() != 0 {
		t.Error("unflushed update survived Reset")
	}
}

func TestDeallocateDropsCache(t *testing.T) {
	d := storage.NewMemDisk()
	p := New(d, 4, nil)
	f, _ := p.NewPage(0)
	id := f.ID()
	if err := p.Deallocate(id); err == nil {
		t.Error("deallocate of pinned page should fail")
	}
	p.Unpin(f, false, 0)
	if err := p.Deallocate(id); err != nil {
		t.Fatal(err)
	}
	if d.NumAllocated() != 0 {
		t.Error("disk still has the page")
	}
	if _, err := p.Fetch(id); err == nil {
		t.Error("fetch of deallocated page succeeded")
	}
}

func TestDiscardAbandonsFreshPage(t *testing.T) {
	d := storage.NewMemDisk()
	p := New(d, 2, nil)
	f, _ := p.NewPage(0)
	p.Discard(f)
	r, w := d.Stats()
	_ = r
	if w != 0 {
		t.Errorf("discarded page was written (%d writes)", w)
	}
}

func TestConcurrentFetchersSamePage(t *testing.T) {
	d := storage.NewMemDisk()
	p := New(d, 8, nil)
	f, _ := p.NewPage(0)
	id := f.ID()
	if _, err := f.Page.InsertBytes([]byte("shared")); err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, true, 1)
	p.FlushAll()
	p.Reset()

	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fr, err := p.Fetch(id)
			if err != nil {
				errs <- err
				return
			}
			fr.Latch.Acquire(latch.S)
			b, err := fr.Page.SlotBytes(0)
			if err != nil || string(b) != "shared" {
				errs <- fmt.Errorf("bad content %q %v", b, err)
			}
			fr.Latch.Release(latch.S)
			p.Unpin(fr, false, 0)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if hits, misses, _ := p.Stats(); misses != 1 || hits != n-1 {
		t.Logf("hits=%d misses=%d (timing-dependent, informational)", hits, misses)
	}
}

func TestConcurrentThrash(t *testing.T) {
	// Many goroutines fetching a working set larger than the pool; every
	// page must retain its distinct content through repeated evictions.
	d := storage.NewMemDisk()
	p := New(d, 4, nil)
	const pages = 16
	ids := make([]page.PageID, pages)
	for i := range ids {
		f, err := p.NewPage(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Page.InsertBytes([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		p.Unpin(f, true, page.LSN(i+1))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				idx := (seed*31 + i*17) % pages
				f, err := p.Fetch(ids[idx])
				if err != nil {
					errs <- err
					return
				}
				f.Latch.Acquire(latch.S)
				b, err := f.Page.SlotBytes(0)
				if err != nil || b[0] != byte(idx) {
					errs <- fmt.Errorf("page %d content %v %v", ids[idx], b, err)
				}
				f.Latch.Release(latch.S)
				p.Unpin(f, false, 0)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentWritersDistinctPages(t *testing.T) {
	d := storage.NewMemDisk()
	p := New(d, 3, nil)
	const pages = 8
	ids := make([]page.PageID, pages)
	for i := range ids {
		f, err := p.NewPage(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Page.InsertBytes(make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		p.Unpin(f, true, 1)
	}
	var wg sync.WaitGroup
	for w := 0; w < pages; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f, err := p.Fetch(ids[w])
				if err != nil {
					t.Error(err)
					return
				}
				f.Latch.Acquire(latch.X)
				b, _ := f.Page.SlotBytes(0)
				b[0]++ // increment under X latch
				f.Page.SetLSN(f.Page.LSN() + 1)
				f.Latch.Release(latch.X)
				p.Unpin(f, true, f.Page.LSN())
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < pages; w++ {
		f, err := p.Fetch(ids[w])
		if err != nil {
			t.Fatal(err)
		}
		b, _ := f.Page.SlotBytes(0)
		if b[0] != 100 {
			t.Errorf("page %d counter = %d, want 100 (lost update through eviction)", ids[w], b[0])
		}
		p.Unpin(f, false, 0)
	}
}

func TestUnpinUnderflowPanics(t *testing.T) {
	p, _ := newPoolDisk(t, 2)
	f, _ := p.NewPage(0)
	p.Unpin(f, false, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on pin underflow")
		}
	}()
	p.Unpin(f, false, 0)
}

func TestNewPageStealsDirtyVictim(t *testing.T) {
	// A pool of 1 frame whose only page is dirty: NewPage must write the
	// victim back (honoring the WAL rule) before reusing the frame.
	d := storage.NewMemDisk()
	fl := &recordingFlusher{}
	p := New(d, 1, fl)
	a, err := p.NewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Page.InsertBytes([]byte("victim-content")); err != nil {
		t.Fatal(err)
	}
	a.Page.SetLSN(99)
	aID := a.ID()
	p.Unpin(a, true, 99)

	b, err := p.NewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(b, false, 0)
	fl.mu.Lock()
	flushed := fl.max
	fl.mu.Unlock()
	if flushed < 99 {
		t.Errorf("WAL flushed to %d before steal, want >= 99", flushed)
	}
	// Victim content durable on disk.
	buf := make([]byte, page.Size)
	if err := d.ReadPage(aID, buf); err != nil {
		t.Fatal(err)
	}
	var pg page.Page
	pg.CopyFrom(buf)
	if got, err := pg.SlotBytes(0); err != nil || string(got) != "victim-content" {
		t.Errorf("victim content = %q %v", got, err)
	}
}

// blockingDisk stalls WritePage until released, so tests can race an
// update against an in-flight flush.
type blockingDisk struct {
	storage.Manager
	entered chan struct{} // signaled once when WritePage begins
	release chan struct{} // WritePage waits here before writing
	armed   bool
}

func (d *blockingDisk) WritePage(id page.PageID, buf []byte) error {
	if d.armed {
		d.armed = false
		close(d.entered)
		<-d.release
	}
	return d.Manager.WritePage(id, buf)
}

// TestFlushPageKeepsDirtyBitOnRacingUpdate pins the lost-dirty-bit fix:
// FlushPage copies the page image, writes it, and must NOT clear the
// dirty bit if an update landed between the copy and the write's
// completion — that update exists only in memory and would be lost to the
// next clean eviction.
func TestFlushPageKeepsDirtyBitOnRacingUpdate(t *testing.T) {
	bd := &blockingDisk{
		Manager: storage.NewMemDisk(),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	p := New(bd, 4, nil)
	f, err := p.NewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	if _, err := f.Page.InsertBytes([]byte("v1")); err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, true, 5)

	bd.armed = true
	done := make(chan error, 1)
	go func() { done <- p.FlushPage(id) }()
	<-bd.entered

	// The flush has copied the image and is stalled in WritePage. Land
	// another update on the page.
	g, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	g.Latch.Acquire(latch.X)
	if _, err := g.Page.InsertBytes([]byte("v2")); err != nil {
		t.Fatal(err)
	}
	g.Latch.Release(latch.X)
	p.Unpin(g, true, 9)

	close(bd.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The racing update must keep the frame dirty (recLSN 5 is still the
	// first unflushed update the checkpoint DPT needs to cover).
	if got := p.DirtyPages(); got[id] != 5 {
		t.Errorf("DirtyPages after raced flush = %v, want {%d:5}", got, id)
	}
}

// levelFlusher reports a settable durable watermark, for exercising the
// fixLSN conservative floor.
type levelFlusher struct{ lsn atomic.Uint64 }

func (l *levelFlusher) FlushTo(page.LSN) error { return nil }
func (l *levelFlusher) FlushedLSN() page.LSN   { return page.LSN(l.lsn.Load()) }
func (l *levelFlusher) set(v page.LSN)         { l.lsn.Store(uint64(v)) }

// TestDirtyPagesPinnedFloor pins the checkpoint-DPT conservative floor: a
// frame born dirty with no recLSN yet, and a clean frame held pinned by a
// would-be updater, must both appear in DirtyPages at fixLSN+1 — the
// durable watermark when the pin was taken, above which any update the
// pin holder logs must land. Dropping either leaves a checkpoint's DPT
// with a hole below its redo point.
func TestDirtyPagesPinnedFloor(t *testing.T) {
	fl := &levelFlusher{}
	fl.set(7)
	p := New(storage.NewMemDisk(), 4, fl)

	// Born dirty, recLSN not yet assigned: reported at the floor.
	f, err := p.NewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	if got := p.DirtyPages(); got[id] != 8 {
		t.Errorf("DirtyPages for fresh page = %v, want {%d:8}", got, id)
	}

	// First real update pins the true recLSN.
	p.Unpin(f, true, 12)
	if got := p.DirtyPages(); got[id] != 12 {
		t.Errorf("DirtyPages after update = %v, want {%d:12}", got, id)
	}

	fl.set(12)
	if err := p.FlushPage(id); err != nil {
		t.Fatal(err)
	}
	if got := p.DirtyPages(); len(got) != 0 {
		t.Errorf("DirtyPages after flush = %v, want empty", got)
	}

	// Clean but pinned: a checkpoint between this pin and the holder's
	// MarkDirty must still cover the page, at the new watermark's floor.
	fl.set(20)
	g, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.DirtyPages(); got[id] != 21 {
		t.Errorf("DirtyPages for pinned-clean page = %v, want {%d:21}", got, id)
	}
	p.Unpin(g, false, 0)
	if got := p.DirtyPages(); len(got) != 0 {
		t.Errorf("DirtyPages after unpin = %v, want empty", got)
	}
}

// TestGroupEvictionStealsBatches pins the group-eviction behavior: when one
// shard's miss burst exhausts its local frames while siblings hold plenty of
// clean ones, a single steal operation migrates a batch (up to stealBatch
// frames), not one frame per sibling-lock round trip.
func TestGroupEvictionStealsBatches(t *testing.T) {
	p, _ := newPoolDisk(t, 64) // 64 frames -> 8 shards of 8
	if len(p.shards) < 2 {
		t.Skip("single-shard pool cannot steal")
	}

	// Over-fill the pool with pages, flushing each so every cached frame
	// ends up clean — the write-behind flusher's steady state, which is
	// exactly when group eviction is supposed to pay off.
	byShard := make(map[*shard][]page.PageID)
	for i := 0; i < 192; i++ {
		f, err := p.NewPage(0)
		if err != nil {
			t.Fatal(err)
		}
		id := f.ID()
		p.Unpin(f, false, 0)
		if err := p.FlushPage(id); err != nil {
			t.Fatal(err)
		}
		byShard[p.shardOf(id)] = append(byShard[p.shardOf(id)], id)
	}

	// Direct check: one steal away from a full clean pool yields a full
	// batch, and no sibling is drained below its last frame.
	victim := p.shards[0]
	got := p.stealFrames(victim)
	if len(got) != stealBatch {
		t.Fatalf("stealFrames migrated %d frames, want a full batch of %d", len(got), stealBatch)
	}
	for _, f := range got {
		if f.state != stateFree || f.pins != 0 {
			t.Fatalf("stolen frame in state %d with %d pins", f.state, f.pins)
		}
	}
	for _, s := range p.shards {
		if s == victim {
			continue
		}
		s.lock()
		n := len(s.frames)
		s.mu.Unlock()
		if n < 1 {
			t.Fatal("steal drained a sibling shard bare")
		}
	}
	// Adopt the orphans so the pool stays consistent for part two.
	victim.lock()
	for _, f := range got {
		f.home = victim
		victim.frames = append(victim.frames, f)
	}
	victim.mu.Unlock()

	// End-to-end check: pin every cached page of one other shard, then
	// fetch an uncached page that hashes to it. With no local victim the
	// miss must be served by one steal operation migrating several frames.
	var busy *shard
	var uncached page.PageID
	for _, s := range p.shards[1:] {
		s.lock()
		var miss page.PageID
		for _, id := range byShard[s] {
			if _, ok := s.table[id]; !ok {
				miss = id
				break
			}
		}
		s.mu.Unlock()
		if miss != 0 {
			busy, uncached = s, miss
			break
		}
	}
	if busy == nil {
		t.Fatal("no shard has an evicted page to re-fetch")
	}
	busy.lock()
	cached := make([]page.PageID, 0, len(busy.table))
	for id := range busy.table {
		cached = append(cached, id)
	}
	busy.mu.Unlock()
	var pinned []*Frame
	for _, id := range cached {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, f)
	}

	f, err := p.Fetch(uncached)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, false, 0)
	for _, pf := range pinned {
		p.Unpin(pf, false, 0)
	}

	snap := p.Metrics().Snapshot()
	steals, batches := snap["buffer.frame_steals"], snap["buffer.steal_batches"]
	if batches == 0 {
		t.Fatal("pinned-shard miss never triggered a steal")
	}
	if steals <= batches {
		t.Errorf("steals %d / batches %d: group eviction never migrated more than one frame per operation", steals, batches)
	}
}
