package buffer

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/page"
	"repro/internal/storage"
)

// stallDisk blocks one ReadPage of a chosen page until released, optionally
// failing it, so tests can park waiters behind an in-flight load.
type stallDisk struct {
	storage.Manager
	mu      sync.Mutex
	target  page.PageID
	armed   bool
	fail    error
	entered chan struct{}
	release chan struct{}
}

func (d *stallDisk) ReadPage(id page.PageID, buf []byte) error {
	d.mu.Lock()
	hit := d.armed && id == d.target
	if hit {
		d.armed = false
	}
	d.mu.Unlock()
	if hit {
		close(d.entered)
		<-d.release
		d.mu.Lock()
		err := d.fail
		d.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return d.Manager.ReadPage(id, buf)
}

// seedPage creates one page on d and returns its id, using a throwaway pool.
func seedPage(t *testing.T, d *storage.MemDisk) page.PageID {
	t.Helper()
	seed := New(d, 2, nil)
	f, err := seed.NewPage(0)
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	seed.Unpin(f, true, 1)
	if err := seed.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return id
}

// TestFetchCtxCancelWhileLoadFails parks a cancellable waiter behind a
// loader whose disk read is stalled, cancels the waiter, then fails the
// load. The waiter must return context.Canceled without leaking its pin,
// the loader must surface the read error and unmap the frame, and the pool
// must stay fully usable.
func TestFetchCtxCancelWhileLoadFails(t *testing.T) {
	d := storage.NewMemDisk()
	id := seedPage(t, d)
	sd := &stallDisk{
		Manager: d,
		target:  id,
		armed:   true,
		fail:    errors.New("injected read failure"),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	p := New(sd, 4, nil)

	loaderErr := make(chan error, 1)
	go func() { _, err := p.Fetch(id); loaderErr <- err }()
	<-sd.entered // the loader is inside the stalled ReadPage

	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() { _, err := p.FetchCtx(ctx, id); waiterErr <- err }()
	time.Sleep(20 * time.Millisecond) // the waiter is parked on the loading frame

	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter = %v, want context.Canceled", err)
	}
	close(sd.release)
	if err := <-loaderErr; err == nil {
		t.Fatal("loader succeeded, want injected read failure")
	}

	if got := p.Metrics().Value("buffer.pinned_frames"); got != 0 {
		t.Errorf("pinned_frames = %d after cancel + failed load, want 0", got)
	}
	// The frame was unmapped; a fresh fetch reloads from the (now working)
	// disk and succeeds.
	f, err := p.Fetch(id)
	if err != nil {
		t.Fatalf("refetch after failed load: %v", err)
	}
	p.Unpin(f, false, 0)
}

// TestFetchCtxCancelRacesFailedLoad releases the failing load and fires the
// cancellation at the same moment, repeatedly. The waiter must always
// terminate — with context.Canceled, with the loader's propagated absence
// (a fresh successful load), but never a hang or a bogus frame — and the
// pool's pin gauge must drain to zero.
func TestFetchCtxCancelRacesFailedLoad(t *testing.T) {
	d := storage.NewMemDisk()
	id := seedPage(t, d)
	for i := 0; i < 100; i++ {
		sd := &stallDisk{
			Manager: d,
			target:  id,
			armed:   true,
			fail:    errors.New("injected read failure"),
			entered: make(chan struct{}),
			release: make(chan struct{}),
		}
		p := New(sd, 4, nil)
		loaderErr := make(chan error, 1)
		go func() { _, err := p.Fetch(id); loaderErr <- err }()
		<-sd.entered

		ctx, cancel := context.WithCancel(context.Background())
		waiterRes := make(chan error, 1)
		go func() {
			f, err := p.FetchCtx(ctx, id)
			if err == nil {
				p.Unpin(f, false, 0)
			}
			waiterRes <- err
		}()
		if i%2 == 0 {
			time.Sleep(time.Millisecond) // some iterations: parked before the race
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); close(sd.release) }()
		go func() { defer wg.Done(); cancel() }()
		wg.Wait()

		if err := <-loaderErr; err == nil {
			t.Fatalf("iter %d: loader succeeded, want failure", i)
		}
		select {
		case err := <-waiterRes:
			// Canceled, the waiter's own retry failing against the still-
			// failing disk is impossible (fail consumed by the loader), so
			// a nil error means the retry reloaded successfully before
			// noticing ctx. Both are correct; hanging is not.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("iter %d: waiter = %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("iter %d: waiter hung", i)
		}
		if got := p.Metrics().Value("buffer.pinned_frames"); got != 0 {
			t.Fatalf("iter %d: pinned_frames = %d, want 0", i, got)
		}
	}
}

// TestFetchCtxAlreadyCancelled returns immediately without touching the
// frame table.
func TestFetchCtxAlreadyCancelled(t *testing.T) {
	d := storage.NewMemDisk()
	id := seedPage(t, d)
	p := New(d, 4, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.FetchCtx(ctx, id); !errors.Is(err, context.Canceled) {
		t.Fatalf("FetchCtx = %v, want context.Canceled", err)
	}
	if got := p.Metrics().Value("buffer.pinned_frames"); got != 0 {
		t.Errorf("pinned_frames = %d, want 0", got)
	}
}
