// Package buffer implements the buffer pool: a fixed set of frames caching
// disk pages, with pin/unpin reference counting, per-frame S/X latches,
// clock eviction, and the write-ahead-log protocol (the log is flushed up
// to a dirty page's pageLSN before the page is stolen to disk).
//
// The GiST concurrency protocol never holds a node latch across an I/O
// (§12 of the paper); structurally this package supports that by separating
// Fetch (which may perform I/O and must be called while holding no latches)
// from Frame.Latch (which is cheap and never performs I/O). The pool keeps
// counters that the experiments use to verify the property.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/latch"
	"repro/internal/page"
	"repro/internal/storage"
)

// ErrPoolExhausted is returned when every frame is pinned and no victim can
// be found after retrying.
var ErrPoolExhausted = errors.New("buffer: all frames pinned")

type frameState int

const (
	stateFree frameState = iota
	stateLoading
	stateReady
	stateWriting
)

// Frame is a buffer-pool frame holding one page. The embedded latch is the
// node latch the tree operations acquire; it protects the page content, not
// the frame bookkeeping (which the pool mutex protects).
type Frame struct {
	Latch latch.Latch
	Page  page.Page

	id     page.PageID
	state  frameState
	pins   int
	dirty  bool
	recLSN page.LSN // LSN of the first update since the page was last clean
	refbit bool     // clock reference bit
}

// ID returns the id of the page currently held by the frame.
func (f *Frame) ID() page.PageID { return f.id }

// LogFlusher is the WAL dependency of the pool: FlushTo must make the log
// durable up to and including the given LSN before a dirty page with that
// pageLSN may be written to disk.
type LogFlusher interface {
	FlushTo(page.LSN) error
}

// nopFlusher is used when the pool runs without a WAL (plain index usage).
type nopFlusher struct{}

func (nopFlusher) FlushTo(page.LSN) error { return nil }

// Pool is a buffer pool over a storage.Manager.
type Pool struct {
	disk storage.Manager
	wal  LogFlusher

	mu     sync.Mutex
	cond   *sync.Cond
	table  map[page.PageID]*Frame
	frames []*Frame
	hand   int

	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
}

// New creates a pool with the given number of frames over disk. If wal is
// nil the pool applies no WAL flush rule (suitable only for non-logged use).
func New(disk storage.Manager, capacity int, wal LogFlusher) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	if wal == nil {
		wal = nopFlusher{}
	}
	p := &Pool{
		disk:   disk,
		wal:    wal,
		table:  make(map[page.PageID]*Frame, capacity),
		frames: make([]*Frame, capacity),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.frames {
		p.frames[i] = &Frame{state: stateFree}
	}
	return p
}

// Capacity returns the number of frames.
func (p *Pool) Capacity() int { return len(p.frames) }

// Stats returns cumulative hit/miss/eviction counts.
func (p *Pool) Stats() (hits, misses, evicts int64) {
	return p.hits.Load(), p.misses.Load(), p.evicts.Load()
}

// Fetch pins the page with the given id, reading it from disk on a miss,
// and returns its frame. The caller must not hold any latch while calling
// Fetch (the call may block on I/O) and must eventually call Unpin.
func (p *Pool) Fetch(id page.PageID) (*Frame, error) {
	f, _, err := p.FetchEx(id)
	return f, err
}

// FetchEx is Fetch with an exact per-call miss indicator: missed is true
// iff this call performed a disk read. The no-latch-across-I/O experiment
// uses it to attribute I/Os to the calling operation precisely.
func (p *Pool) FetchEx(id page.PageID) (*Frame, bool, error) {
	if id == page.InvalidPage {
		return nil, false, fmt.Errorf("buffer: fetch of invalid page")
	}
	p.mu.Lock()
	for {
		if f, ok := p.table[id]; ok {
			f.pins++
			f.refbit = true
			for f.state == stateLoading || f.state == stateWriting {
				p.cond.Wait()
			}
			// The pin taken above prevents the frame from being
			// stolen for another page, so f.id is still id.
			p.mu.Unlock()
			p.hits.Add(1)
			return f, false, nil
		}
		// Miss: claim a victim frame.
		f, err := p.victimLocked()
		if err != nil {
			p.mu.Unlock()
			return nil, false, err
		}
		if f.state == stateReady && f.dirty {
			// Steal: write back under the WAL rule without
			// holding the pool mutex.
			f.state = stateWriting
			f.pins++
			oldID := f.id
			pageLSN := f.Page.LSN()
			img := make([]byte, page.Size)
			copy(img, f.Page.Bytes())
			p.mu.Unlock()

			werr := p.wal.FlushTo(pageLSN)
			if werr == nil {
				werr = p.disk.WritePage(oldID, img)
			}

			p.mu.Lock()
			f.pins--
			f.state = stateReady
			if werr != nil {
				p.cond.Broadcast()
				p.mu.Unlock()
				return nil, false, fmt.Errorf("buffer: evict %d: %w", oldID, werr)
			}
			f.dirty = false
			f.recLSN = 0
			p.cond.Broadcast()
			if f.pins > 0 {
				// Someone re-pinned the old page during the
				// write; it stays cached. Retry.
				continue
			}
			// Fall through to reuse the now-clean frame — but the
			// target page might have been loaded by a concurrent
			// fetch while we were writing; re-check the table.
			if _, ok := p.table[id]; ok {
				continue
			}
		}
		// Reuse frame for the new page.
		if f.state == stateReady || f.state == stateFree {
			if f.state == stateReady {
				delete(p.table, f.id)
				p.evicts.Add(1)
			}
			f.id = id
			f.state = stateLoading
			f.pins = 1
			f.dirty = false
			f.recLSN = 0
			f.refbit = true
			p.table[id] = f
			p.mu.Unlock()

			rerr := p.disk.ReadPage(id, f.Page.Bytes())

			p.mu.Lock()
			if rerr != nil {
				f.pins--
				f.state = stateFree
				delete(p.table, id)
				p.cond.Broadcast()
				p.mu.Unlock()
				return nil, false, rerr
			}
			f.state = stateReady
			p.cond.Broadcast()
			p.mu.Unlock()
			p.misses.Add(1)
			return f, true, nil
		}
		// Victim raced into another state; retry.
	}
}

// victimLocked selects an unpinned frame using the clock algorithm. The
// pool mutex must be held.
func (p *Pool) victimLocked() (*Frame, error) {
	n := len(p.frames)
	// Two full sweeps: the first clears reference bits, the second takes
	// any unpinned ready/free frame.
	for pass := 0; pass < 2*n; pass++ {
		f := p.frames[p.hand]
		p.hand = (p.hand + 1) % n
		if f.state == stateFree {
			return f, nil
		}
		if f.state != stateReady || f.pins > 0 {
			continue
		}
		if f.refbit {
			f.refbit = false
			continue
		}
		return f, nil
	}
	// Last resort: any unpinned ready frame regardless of refbit.
	for _, f := range p.frames {
		if (f.state == stateReady && f.pins == 0) || f.state == stateFree {
			return f, nil
		}
	}
	return nil, ErrPoolExhausted
}

// NewPage allocates a fresh disk page, formats it as a node at the given
// level, and returns it pinned. No disk read happens — the page content is
// created in the frame — so NewPage is safe to call with latches held (a
// split formats its new sibling while the original stays latched).
// Allocation is made recoverable by the caller via a Get-Page log record.
func (p *Pool) NewPage(level uint16) (*Frame, error) {
	id, err := p.disk.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	for {
		f, err := p.victimLocked()
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		if f.state == stateReady && f.dirty {
			// Steal path: reuse the fetch machinery by releasing
			// the mutex through FetchEx semantics is overkill;
			// write back inline under the same protocol.
			f.state = stateWriting
			f.pins++
			oldID := f.id
			pageLSN := f.Page.LSN()
			img := make([]byte, page.Size)
			copy(img, f.Page.Bytes())
			p.mu.Unlock()
			werr := p.wal.FlushTo(pageLSN)
			if werr == nil {
				werr = p.disk.WritePage(oldID, img)
			}
			p.mu.Lock()
			f.pins--
			f.state = stateReady
			if werr != nil {
				p.cond.Broadcast()
				p.mu.Unlock()
				return nil, fmt.Errorf("buffer: evict %d: %w", oldID, werr)
			}
			f.dirty = false
			f.recLSN = 0
			p.cond.Broadcast()
			if f.pins > 0 {
				continue
			}
		}
		if f.state == stateReady || f.state == stateFree {
			if f.state == stateReady {
				delete(p.table, f.id)
				p.evicts.Add(1)
			}
			f.id = id
			f.state = stateReady
			f.pins = 1
			f.dirty = true
			f.recLSN = 0
			f.refbit = true
			p.table[id] = f
			f.Page.Init(id, level)
			p.mu.Unlock()
			return f, nil
		}
	}
}

// Unpin releases one pin on the frame. If dirty is true the page is marked
// dirty with updateLSN as its first-dirtying LSN (for the dirty-page table
// in checkpoints); pass 0 when no WAL is in use.
func (p *Pool) Unpin(f *Frame, dirty bool, updateLSN page.LSN) {
	p.mu.Lock()
	if dirty {
		if !f.dirty || f.recLSN == 0 {
			f.recLSN = updateLSN
		}
		f.dirty = true
	}
	f.pins--
	if f.pins < 0 {
		p.mu.Unlock()
		panic(fmt.Sprintf("buffer: negative pin count on page %d", f.id))
	}
	p.mu.Unlock()
}

// MarkDirty marks a pinned frame dirty with the given update LSN without
// changing its pin count.
func (p *Pool) MarkDirty(f *Frame, updateLSN page.LSN) {
	p.mu.Lock()
	if !f.dirty || f.recLSN == 0 {
		f.recLSN = updateLSN
	}
	f.dirty = true
	p.mu.Unlock()
}

// FlushPage writes the named page to disk if cached and dirty, honoring the
// WAL rule. It is a no-op for uncached pages.
func (p *Pool) FlushPage(id page.PageID) error {
	p.mu.Lock()
	f, ok := p.table[id]
	if !ok || !f.dirty || f.state != stateReady {
		p.mu.Unlock()
		return nil
	}
	f.pins++
	p.mu.Unlock()

	// Shared latch so no concurrent modification tears the image.
	f.Latch.Acquire(latch.S)
	img := make([]byte, page.Size)
	copy(img, f.Page.Bytes())
	lsn := f.Page.LSN()
	f.Latch.Release(latch.S)

	err := p.wal.FlushTo(lsn)
	if err == nil {
		err = p.disk.WritePage(id, img)
	}

	p.mu.Lock()
	if err == nil {
		f.dirty = false
		f.recLSN = 0
	}
	f.pins--
	p.mu.Unlock()
	return err
}

// FlushAll writes every dirty cached page to disk (used at checkpoint and
// clean shutdown).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	ids := make([]page.PageID, 0, len(p.table))
	for id, f := range p.table {
		if f.dirty {
			ids = append(ids, id)
		}
	}
	p.mu.Unlock()
	for _, id := range ids {
		if err := p.FlushPage(id); err != nil {
			return err
		}
	}
	return p.disk.Sync()
}

// DirtyPages returns the (pageID, recLSN) of every dirty cached page — the
// dirty page table recorded by fuzzy checkpoints.
func (p *Pool) DirtyPages() map[page.PageID]page.LSN {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[page.PageID]page.LSN)
	for id, f := range p.table {
		if f.dirty {
			out[id] = f.recLSN
		}
	}
	return out
}

// Discard drops a cached page without writing it back, used when a freshly
// allocated page is abandoned. The page must be pinned exactly once by the
// caller; the pin is consumed.
func (p *Pool) Discard(f *Frame) {
	p.mu.Lock()
	f.pins--
	if f.pins == 0 {
		delete(p.table, f.id)
		f.state = stateFree
		f.dirty = false
	}
	p.mu.Unlock()
}

// EnsureAllocated forwards to the disk manager; restart undo of a Free-Page
// record uses it to resurrect the page before reconstructing its content.
func (p *Pool) EnsureAllocated(id page.PageID) error {
	return p.disk.EnsureAllocated(id)
}

// Deallocate returns the page to the disk manager's free pool, dropping any
// cached copy. The caller must guarantee (via the drain protocol, §7.2)
// that no operation still holds a pointer to the page.
func (p *Pool) Deallocate(id page.PageID) error {
	p.mu.Lock()
	if f, ok := p.table[id]; ok {
		if f.pins > 0 {
			p.mu.Unlock()
			return fmt.Errorf("buffer: deallocate pinned page %d", id)
		}
		delete(p.table, id)
		f.state = stateFree
		f.dirty = false
	}
	p.mu.Unlock()
	return p.disk.Deallocate(id)
}

// Reset empties the pool without writing anything back — the simulated
// "loss of buffer pool contents" at a crash.
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.table = make(map[page.PageID]*Frame, len(p.frames))
	for _, f := range p.frames {
		f.state = stateFree
		f.pins = 0
		f.dirty = false
		f.recLSN = 0
		f.refbit = false
	}
}
