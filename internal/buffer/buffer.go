// Package buffer implements the buffer pool: a fixed set of frames caching
// disk pages, with pin/unpin reference counting, per-frame S/X latches,
// clock eviction, and the write-ahead-log protocol (the log is flushed up
// to a dirty page's pageLSN before the page is stolen to disk).
//
// The GiST concurrency protocol never holds a node latch across an I/O
// (§12 of the paper); structurally this package supports that by separating
// Fetch (which may perform I/O and must be called while holding no latches)
// from Frame.Latch (which is cheap and never performs I/O). The pool keeps
// counters that the experiments use to verify the property.
//
// The page table is partitioned into shards hashed by PageID, each with its
// own mutex, condition variable, frame set and clock hand, so concurrent
// operations on different pages do not serialize on a pool-wide lock. A
// shard whose frames are all pinned steals an evictable frame from a
// sibling shard (migrating it permanently), so the pool's full capacity
// remains reachable from every shard; ErrPoolExhausted means every frame of
// every shard is pinned.
package buffer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/latch"
	"repro/internal/page"
	"repro/internal/shards"
	"repro/internal/stats"
	"repro/internal/storage"
)

// ErrPoolExhausted is returned when every frame is pinned and no victim can
// be found after retrying.
var ErrPoolExhausted = errors.New("buffer: all frames pinned")

// ErrPinned is returned by Deallocate when the page's frame is pinned. The
// pin can be transient — eviction write-back pins the victim frame around
// its I/O — so concurrent callers that know no durable pin exists (restart's
// parallel redo) may retry on it.
var ErrPinned = errors.New("buffer: deallocate pinned page")

type frameState int

const (
	stateFree frameState = iota
	stateLoading
	stateReady
	stateWriting
)

// The page-table shard ceiling adapts to GOMAXPROCS (see package shards);
// small pools still get fewer shards (at least eight frames each) so
// eviction behavior stays sane. The buffer.shards gauge reports the choice.

// Frame is a buffer-pool frame holding one page. The embedded latch is the
// node latch the tree operations acquire; it protects the page content, not
// the frame bookkeeping (which the owning shard's mutex protects).
type Frame struct {
	Latch latch.Latch
	Page  page.Page

	id     page.PageID
	state  frameState
	pins   int
	dirty  bool
	recLSN page.LSN // LSN of the first update since the page was last clean
	refbit bool     // clock reference bit

	// fixLSN is the WAL's durable watermark when the frame was last pinned
	// from zero (or flushed clean while pinned). Any update a pin holder
	// logs has an LSN strictly above it, so fixLSN+1 is a safe recLSN for
	// a checkpoint that catches the frame mid-update: pinned (or freshly
	// allocated) but with its first-dirtying LSN not yet recorded. Without
	// this floor a fuzzy checkpoint's dirty page table can miss a page
	// whose update is logged but whose dirty marking lands just after the
	// snapshot, and restart redo then starts past the update and loses it.
	fixLSN page.LSN

	// mods counts dirtying events. FlushPage snapshots it before copying
	// the image and may clear the dirty bit after its write only if no
	// dirtying raced the unlatched I/O window — otherwise a concurrent
	// update would be marked clean while present only in memory, and a
	// later eviction would silently drop it.
	mods uint64

	// home is the shard whose mutex protects this frame's bookkeeping. It
	// changes only when an unpinned frame is stolen by another shard, so
	// it is stable for as long as the caller holds a pin.
	home *shard
}

// ID returns the id of the page currently held by the frame.
func (f *Frame) ID() page.PageID { return f.id }

// LogFlusher is the WAL dependency of the pool: FlushTo must make the log
// durable up to and including the given LSN before a dirty page with that
// pageLSN may be written to disk. FlushedLSN reports the current durable
// watermark; it must be cheap (the pipelined WAL serves it from a single
// atomic load), because the pool consults it on every dirty write-back to
// skip the FlushTo call when the WAL rule is already satisfied.
type LogFlusher interface {
	FlushTo(page.LSN) error
	FlushedLSN() page.LSN
}

// nopFlusher is used when the pool runs without a WAL (plain index usage).
type nopFlusher struct{}

func (nopFlusher) FlushTo(page.LSN) error { return nil }
func (nopFlusher) FlushedLSN() page.LSN   { return ^page.LSN(0) }

// flushFor applies the WAL rule for a page with the given pageLSN: a no-op
// when the durable watermark already covers it.
func (p *Pool) flushFor(pageLSN page.LSN) error {
	if pageLSN <= p.wal.FlushedLSN() {
		return nil
	}
	return p.wal.FlushTo(pageLSN)
}

// shard is one partition of the page table with its own frames and clock.
type shard struct {
	mu        sync.Mutex
	cond      *sync.Cond
	table     map[page.PageID]*Frame
	frames    []*Frame
	hand      int
	contended *stats.Counter

	// idx is the shard's position in the pool's shard ring; lastStolen is
	// the pool-wide steal clock's value when a frame was last stolen from
	// this shard. Together they order the neighbor ring a steal walks.
	idx        int
	lastStolen atomic.Int64
}

// lock acquires the shard mutex, counting acquisitions that had to block.
func (s *shard) lock() {
	if s.mu.TryLock() {
		return
	}
	s.contended.Add(1)
	s.mu.Lock()
}

// Pool is a buffer pool over a storage.Manager.
type Pool struct {
	disk storage.Manager
	wal  LogFlusher

	shards   []*shard
	capacity int

	reg           *stats.Registry
	hits          *stats.Counter
	misses        *stats.Counter
	evicts        *stats.Counter
	steals        *stats.Counter // frames migrated between shards
	stealBatches  *stats.Counter // steal operations (steals ÷ batches = batch size)
	contended     *stats.Counter // shard mutex acquisitions that blocked
	ringHits      *stats.Counter // steals satisfied by the preferred ring neighbor
	loadWaitNanos *stats.Counter // time spent parked on Loading/Writing frames
	loadHist      *stats.Histogram // per-fetch off-fast-path latency (parks + disk reads)
	stealHist     *stats.Histogram // cross-shard steal walk latency

	// stealClock orders cross-shard steals so the neighbor ring can prefer
	// the shards stolen from least recently.
	stealClock atomic.Int64
}

// New creates a pool with the given number of frames over disk. If wal is
// nil the pool applies no WAL flush rule (suitable only for non-logged use).
func New(disk storage.Manager, capacity int, wal LogFlusher) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	if wal == nil {
		wal = nopFlusher{}
	}
	maxShards := shards.Count(0)
	nshards := 1
	for nshards < maxShards && nshards*8 <= capacity {
		nshards <<= 1
	}
	p := &Pool{
		disk:     disk,
		wal:      wal,
		capacity: capacity,
		reg:      stats.NewRegistry(),
	}
	p.hits = p.reg.Counter("buffer.hits")
	p.misses = p.reg.Counter("buffer.misses")
	p.evicts = p.reg.Counter("buffer.evictions")
	p.steals = p.reg.Counter("buffer.frame_steals")
	p.stealBatches = p.reg.Counter("buffer.steal_batches")
	p.contended = p.reg.Counter("buffer.shard_contention")
	p.ringHits = p.reg.Counter("buffer.steal_ring_hits")
	p.loadWaitNanos = p.reg.Counter("buffer.load_wait_nanos")
	p.loadHist = p.reg.Histogram("buffer.load")
	p.stealHist = p.reg.Histogram("buffer.steal")
	p.reg.Gauge("buffer.shards", func() int64 { return int64(nshards) })
	p.reg.Gauge("buffer.capacity", func() int64 { return int64(capacity) })
	p.reg.Gauge("buffer.pinned_frames", func() int64 {
		var total int64
		for _, s := range p.shards {
			s.mu.Lock()
			for _, f := range s.frames {
				total += int64(f.pins)
			}
			s.mu.Unlock()
		}
		return total
	})

	p.shards = make([]*shard, nshards)
	for i := range p.shards {
		s := &shard{
			table:     make(map[page.PageID]*Frame, capacity/nshards+1),
			contended: p.contended,
			idx:       i,
		}
		s.cond = sync.NewCond(&s.mu)
		p.shards[i] = s
	}
	for i := 0; i < capacity; i++ {
		s := p.shards[i%nshards]
		s.frames = append(s.frames, &Frame{state: stateFree, home: s})
	}
	return p
}

// shardOf maps a page id to its home shard (Fibonacci hashing; the high
// bits spread sequential ids well).
func (p *Pool) shardOf(id page.PageID) *shard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return p.shards[(h>>32)%uint64(len(p.shards))]
}

// Capacity returns the number of frames.
func (p *Pool) Capacity() int { return p.capacity }

// Metrics exposes the pool's counter registry.
func (p *Pool) Metrics() *stats.Registry { return p.reg }

// Stats returns cumulative hit/miss/eviction counts (read through the
// stats registry).
func (p *Pool) Stats() (hits, misses, evicts int64) {
	return p.hits.Load(), p.misses.Load(), p.evicts.Load()
}

// Fetch pins the page with the given id, reading it from disk on a miss,
// and returns its frame. The caller must not hold any latch while calling
// Fetch (the call may block on I/O) and must eventually call Unpin.
func (p *Pool) Fetch(id page.PageID) (*Frame, error) {
	f, _, err := p.FetchExCtx(nil, id)
	return f, err
}

// FetchCtx is Fetch with a cancellable wait: if ctx fires while the call is
// parked on a frame another goroutine is loading or writing back, the pin is
// released and ctx.Err() returned. A nil ctx never cancels. In-flight disk
// I/O started by this call itself is not interrupted — the no-latch-across-
// I/O discipline means callers are free to simply not wait for it.
func (p *Pool) FetchCtx(ctx context.Context, id page.PageID) (*Frame, error) {
	f, _, err := p.FetchExCtx(ctx, id)
	return f, err
}

// FetchEx is Fetch with an exact per-call miss indicator: missed is true
// iff this call performed a disk read. The no-latch-across-I/O experiment
// uses it to attribute I/Os to the calling operation precisely.
func (p *Pool) FetchEx(id page.PageID) (*Frame, bool, error) {
	return p.FetchExCtx(nil, id)
}

// ctxErr returns ctx.Err(), tolerating a nil ctx.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// wakeOnDone arranges for the shard's cond to be broadcast when ctx fires,
// so a fetch parked in cond.Wait observes the cancellation. The broadcast
// takes the shard mutex, so a waiter that checked ctx and is about to park
// cannot miss the wakeup. Returns nil when ctx can never fire; otherwise
// the returned stop function must be called once the wait loop exits.
func wakeOnDone(ctx context.Context, s *shard) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
}

// FetchExCtx is FetchEx with FetchCtx's cancellation contract.
func (p *Pool) FetchExCtx(ctx context.Context, id page.PageID) (*Frame, bool, error) {
	f, missed, _, err := p.fetchEx(ctx, id)
	return f, missed, err
}

// FetchExStats is FetchExCtx additionally reporting the nanoseconds this
// call spent off the fast path: parked on a frame another goroutine was
// loading or writing back, plus this call's own disk read on a miss. A
// buffer hit returns 0 without ever reading the clock. Operations use it to
// attribute buffer-load time to themselves.
func (p *Pool) FetchExStats(ctx context.Context, id page.PageID) (f *Frame, missed bool, waitNanos int64, err error) {
	return p.fetchEx(ctx, id)
}

func (p *Pool) fetchEx(ctx context.Context, id page.PageID) (_ *Frame, missed bool, waitNanos int64, err error) {
	if id == page.InvalidPage {
		return nil, false, 0, fmt.Errorf("buffer: fetch of invalid page")
	}
	s := p.shardOf(id)
	s.lock()
	for {
		if err := ctxErr(ctx); err != nil {
			s.mu.Unlock()
			return nil, false, waitNanos, err
		}
		if f, ok := s.table[id]; ok {
			f.pins++
			if f.pins == 1 {
				f.fixLSN = p.wal.FlushedLSN()
			}
			f.refbit = true
			stale := false
			var cancelled error
			if f.state == stateLoading || f.state == stateWriting {
				waitStart := time.Now()
				stop := wakeOnDone(ctx, s)
				for f.state == stateLoading || f.state == stateWriting {
					if err := ctxErr(ctx); err != nil {
						cancelled = err
						break
					}
					s.cond.Wait()
					// A loader whose disk read failed unmaps the frame; the
					// wait must notice, or it would return a frame with no
					// valid content (and a pin that makes a free frame look
					// permanently busy).
					if s.table[id] != f {
						stale = true
						break
					}
				}
				if stop != nil {
					stop()
				}
				parked := time.Since(waitStart).Nanoseconds()
				p.loadWaitNanos.Add(parked)
				waitNanos += parked
			}
			if cancelled != nil {
				// Give back the pin taken above; the loader (or writer)
				// owns its own pin and finishes undisturbed.
				f.pins--
				s.mu.Unlock()
				return nil, false, waitNanos, cancelled
			}
			if stale {
				f.pins--
				continue
			}
			// The pin taken above prevents the frame from being
			// stolen for another page, so f.id is still id.
			s.mu.Unlock()
			p.hits.Add(1)
			if waitNanos > 0 {
				p.loadHist.Observe(waitNanos)
			}
			return f, false, waitNanos, nil
		}
		// Miss: claim a reusable frame in this shard.
		f, dropped, err := p.claimLocked(s)
		if err != nil {
			s.mu.Unlock()
			return nil, false, waitNanos, err
		}
		if f == nil || (dropped && s.table[id] != nil) {
			// The shard mutex was dropped along the way (write-back
			// or steal) and the world may have changed — in
			// particular a concurrent fetch may have loaded the
			// target page. Retry from the top; any frame claimed
			// stays clean and evictable in this shard.
			continue
		}
		// Reuse frame for the new page. Poison the latch version first:
		// an optimistic reader that captured a version against the old
		// resident page must never validate a copy of the new one
		// (eviction/recycle ABA). Pins already exclude remap during a
		// visit, so this is the fail-closed backstop, not the first line.
		if f.state == stateReady {
			delete(s.table, f.id)
			p.evicts.Add(1)
		}
		f.Latch.BumpVersion()
		f.id = id
		f.state = stateLoading
		f.pins = 1
		f.fixLSN = p.wal.FlushedLSN()
		f.dirty = false
		f.recLSN = 0
		f.refbit = true
		s.table[id] = f
		s.mu.Unlock()

		var readStart time.Time
		if stats.Enabled {
			readStart = time.Now()
		}
		rerr := p.disk.ReadPage(id, f.Page.Bytes())
		if stats.Enabled {
			waitNanos += time.Since(readStart).Nanoseconds()
		}

		s.lock()
		if rerr != nil {
			f.pins--
			f.state = stateFree
			delete(s.table, id)
			s.cond.Broadcast()
			s.mu.Unlock()
			return nil, false, waitNanos, rerr
		}
		f.state = stateReady
		s.cond.Broadcast()
		s.mu.Unlock()
		p.misses.Add(1)
		p.loadHist.Observe(waitNanos)
		return f, true, waitNanos, nil
	}
}

// claimLocked obtains a clean, unpinned, reusable frame belonging to s
// (stateFree, or stateReady holding an evictable page the caller must
// unmap). Called and returns with s.mu held; dropped reports whether the
// mutex was released at any point, in which case the caller must
// re-validate its own preconditions. A nil frame with nil error means a
// race consumed the claim and the caller should retry.
func (p *Pool) claimLocked(s *shard) (f *Frame, dropped bool, err error) {
	stole := false
	for {
		if f := s.victimLocked(); f != nil {
			if f.state == stateReady && f.dirty {
				ok, werr := p.writeBackLocked(s, f)
				dropped = true
				if werr != nil {
					return nil, dropped, werr
				}
				if !ok {
					// Re-pinned during the write; rescan.
					continue
				}
			}
			return f, dropped, nil
		}
		if stole {
			return nil, dropped, ErrPoolExhausted
		}
		stole = true
		// Local shard exhausted: steal a batch of evictable frames from
		// sibling shards and adopt them. Group eviction — taking several
		// clean frames per sibling-lock acquisition — amortizes the
		// cross-shard locking during warm-up bursts; the extras beyond the
		// first become local victims for the rescan (and for the next
		// misses on this shard).
		s.mu.Unlock()
		var stealStart time.Time
		if stats.Enabled {
			stealStart = time.Now()
		}
		stolen := p.stealFrames(s)
		if stats.Enabled {
			p.stealHist.Observe(time.Since(stealStart).Nanoseconds())
		}
		s.lock()
		dropped = true
		if len(stolen) > 0 {
			for _, f := range stolen {
				f.home = s
				s.frames = append(s.frames, f)
			}
			p.steals.Add(int64(len(stolen)))
			p.stealBatches.Inc()
		}
		// Rescan even when the steal failed: a local frame may have
		// been unpinned while the mutex was dropped.
	}
}

// writeBackLocked writes f's dirty page to disk under the WAL rule. Called
// and returns with s.mu held (released around the I/O). ok reports that the
// frame is clean and unpinned on return, i.e. immediately reusable.
func (p *Pool) writeBackLocked(s *shard, f *Frame) (ok bool, err error) {
	f.state = stateWriting
	f.pins++
	oldID := f.id
	pageLSN := f.Page.LSN()
	img := make([]byte, page.Size)
	copy(img, f.Page.Bytes())
	s.mu.Unlock()

	werr := p.flushFor(pageLSN)
	if werr == nil {
		werr = p.disk.WritePage(oldID, img)
	}

	s.lock()
	f.pins--
	f.state = stateReady
	if werr != nil {
		s.cond.Broadcast()
		return false, fmt.Errorf("buffer: evict %d: %w", oldID, werr)
	}
	f.dirty = false
	f.recLSN = 0
	s.cond.Broadcast()
	return f.pins == 0, nil
}

// stealBatch is the group-eviction width: the most clean frames one steal
// operation migrates. Small enough that a burst of misses on one shard does
// not strip its siblings bare, large enough to amortize the sibling-lock
// round trips (the write-behind flusher keeps clean frames plentiful).
const stealBatch = 4

// stealFrames removes up to stealBatch evictable clean frames from shards
// other than s and returns them orphaned (stateFree, in no shard's frame
// list). If no sibling has a clean evictable frame, it falls back to
// writing back and stealing a single dirty one. Empty when every other
// frame in the pool is pinned. No locks are held on entry.
//
// Candidates are visited over the static neighbor ring starting after s,
// reordered so the shards stolen from least recently come first: under a
// skewed workload this stops two hot shards from ping-ponging the same
// frames back and forth while cold shards keep their surplus. A steal
// satisfied by the first-preference neighbor counts toward
// buffer.steal_ring_hits.
func (p *Pool) stealFrames(s *shard) []*Frame {
	order := p.stealOrder(s)
	var out []*Frame
	for i, t := range order {
		got := p.stealFrom(t, false, stealBatch-len(out))
		if len(got) > 0 {
			t.lastStolen.Store(p.stealClock.Add(1))
			if i == 0 {
				p.ringHits.Inc()
			}
		}
		out = append(out, got...)
		if len(out) >= stealBatch {
			return out
		}
	}
	if len(out) > 0 {
		return out
	}
	for _, t := range order {
		if got := p.stealFrom(t, true, 1); len(got) > 0 {
			t.lastStolen.Store(p.stealClock.Add(1))
			return got
		}
	}
	return nil
}

// stealOrder returns every shard but s in steal-preference order: the ring
// neighbors after s, stably resorted so least recently stolen-from wins
// ties toward ring proximity.
func (p *Pool) stealOrder(s *shard) []*shard {
	n := len(p.shards)
	order := make([]*shard, 0, n-1)
	for i := 1; i < n; i++ {
		order = append(order, p.shards[(s.idx+i)%n])
	}
	sort.SliceStable(order, func(a, b int) bool {
		return order[a].lastStolen.Load() < order[b].lastStolen.Load()
	})
	return order
}

// stealFrom extracts up to max evictable clean frames from t, writing back
// a dirty victim if allowDirty and none is clean. A shard is never drained
// below one frame.
func (p *Pool) stealFrom(t *shard, allowDirty bool, max int) []*Frame {
	if max <= 0 {
		return nil
	}
	t.lock()
	defer t.mu.Unlock()
	var out []*Frame
	for attempts := 0; attempts < 3; attempts++ {
		if len(t.frames) <= 1 {
			return out
		}
		// Sweep for clean victims first, then extract, so the removals do
		// not disturb the iteration.
		var clean []*Frame
		var dirtyCand *Frame
		for _, f := range t.frames {
			if f.pins > 0 {
				continue
			}
			if f.state == stateFree || (f.state == stateReady && !f.dirty) {
				if len(clean) < max && len(t.frames)-len(clean) > 1 {
					clean = append(clean, f)
				}
			} else if allowDirty && dirtyCand == nil && f.state == stateReady && f.dirty {
				dirtyCand = f
			}
		}
		for _, f := range clean {
			if f.state == stateReady {
				delete(t.table, f.id)
				p.evicts.Add(1)
			}
			t.removeFrameLocked(f)
			f.state = stateFree
			f.dirty = false
			f.recLSN = 0
			f.refbit = false
			out = append(out, f)
		}
		if len(out) > 0 || dirtyCand == nil {
			return out
		}
		if ok, err := p.writeBackLocked(t, dirtyCand); err != nil || !ok {
			continue // the world changed during the write; rescan
		}
		// The candidate is clean now; the next sweep extracts it.
	}
	return out
}

// removeFrameLocked drops f from the shard's frame list (t.mu held).
func (t *shard) removeFrameLocked(f *Frame) {
	for i, g := range t.frames {
		if g == f {
			t.frames = append(t.frames[:i], t.frames[i+1:]...)
			if t.hand > i {
				t.hand--
			}
			if t.hand >= len(t.frames) {
				t.hand = 0
			}
			return
		}
	}
}

// victimLocked selects an unpinned frame using the clock algorithm over the
// shard's frames, or nil when all are pinned or busy. The shard mutex must
// be held.
func (s *shard) victimLocked() *Frame {
	n := len(s.frames)
	if n == 0 {
		return nil
	}
	// Two full sweeps: the first clears reference bits, the second takes
	// any unpinned ready/free frame.
	for pass := 0; pass < 2*n; pass++ {
		f := s.frames[s.hand]
		s.hand = (s.hand + 1) % n
		if f.state == stateFree && f.pins == 0 {
			return f
		}
		if f.state != stateReady || f.pins > 0 {
			continue
		}
		if f.refbit {
			f.refbit = false
			continue
		}
		return f
	}
	// Last resort: any unpinned ready frame regardless of refbit.
	for _, f := range s.frames {
		if (f.state == stateReady || f.state == stateFree) && f.pins == 0 {
			return f
		}
	}
	return nil
}

// NewPage allocates a fresh disk page, formats it as a node at the given
// level, and returns it pinned. No disk read happens — the page content is
// created in the frame — so NewPage is safe to call with latches held (a
// split formats its new sibling while the original stays latched).
// Allocation is made recoverable by the caller via a Get-Page log record.
func (p *Pool) NewPage(level uint16) (*Frame, error) {
	id, err := p.disk.Allocate()
	if err != nil {
		return nil, err
	}
	s := p.shardOf(id)
	s.lock()
	for {
		f, _, err := p.claimLocked(s)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if f == nil {
			continue
		}
		if f.state == stateReady {
			delete(s.table, f.id)
			p.evicts.Add(1)
		}
		// Same remap poison as the fetch miss path: the frame is about to
		// hold a different page, so outstanding optimistic versions die.
		f.Latch.BumpVersion()
		f.id = id
		f.state = stateReady
		f.pins = 1
		f.fixLSN = p.wal.FlushedLSN()
		f.dirty = true
		f.recLSN = 0
		f.refbit = true
		s.table[id] = f
		f.Page.Init(id, level)
		s.mu.Unlock()
		return f, nil
	}
}

// Unpin releases one pin on the frame. If dirty is true the page is marked
// dirty with updateLSN as its first-dirtying LSN (for the dirty-page table
// in checkpoints); pass 0 when no WAL is in use.
func (p *Pool) Unpin(f *Frame, dirty bool, updateLSN page.LSN) {
	s := f.home
	s.lock()
	if dirty {
		if !f.dirty || f.recLSN == 0 {
			f.recLSN = updateLSN
		}
		f.dirty = true
		f.mods++
	}
	f.pins--
	if f.pins < 0 {
		s.mu.Unlock()
		panic(fmt.Sprintf("buffer: negative pin count on page %d", f.id))
	}
	s.mu.Unlock()
}

// MarkDirty marks a pinned frame dirty with the given update LSN without
// changing its pin count.
func (p *Pool) MarkDirty(f *Frame, updateLSN page.LSN) {
	s := f.home
	s.lock()
	if !f.dirty || f.recLSN == 0 {
		f.recLSN = updateLSN
	}
	f.dirty = true
	f.mods++
	s.mu.Unlock()
}

// FlushPage writes the named page to disk if cached and dirty, honoring the
// WAL rule. It is a no-op for uncached pages.
func (p *Pool) FlushPage(id page.PageID) error {
	_, err := p.FlushWrote(id)
	return err
}

// FlushWrote is FlushPage plus a report of whether a disk write actually
// happened: false for uncached or already-clean pages (the DPT lists
// pinned-clean frames conservatively, and those need no I/O). The
// write-behind flusher paces its batches by real writes, not no-ops.
func (p *Pool) FlushWrote(id page.PageID) (bool, error) {
	s := p.shardOf(id)
	s.lock()
	f, ok := s.table[id]
	if !ok || !f.dirty || f.state != stateReady {
		s.mu.Unlock()
		return false, nil
	}
	f.pins++
	if f.pins == 1 {
		f.fixLSN = p.wal.FlushedLSN()
	}
	mods := f.mods
	s.mu.Unlock()

	// Shared latch so no concurrent modification tears the image.
	f.Latch.Acquire(latch.S)
	img := make([]byte, page.Size)
	copy(img, f.Page.Bytes())
	lsn := f.Page.LSN()
	f.Latch.Release(latch.S)

	err := p.flushFor(lsn)
	if err == nil {
		err = p.disk.WritePage(id, img)
	}

	s.lock()
	if err == nil && f.mods == mods {
		// No dirtying raced the I/O: the written image is the current one.
		// If f.mods moved, an update landed during (or after) the copy and
		// the page must stay dirty — clearing the bit here would strand
		// that update in memory, to be lost by the next clean eviction.
		// The durable image also resets the conservative floor: anything a
		// surviving pin holder logs from here on is above today's
		// watermark. Without the refresh, a permanently pinned frame (the
		// tree anchor) would pin every future checkpoint's redo point at
		// its original fix-time LSN.
		f.fixLSN = p.wal.FlushedLSN()
		f.dirty = false
		f.recLSN = 0
	}
	f.pins--
	s.mu.Unlock()
	return true, err
}

// FlushAll writes every dirty cached page to disk (used at checkpoint and
// clean shutdown).
func (p *Pool) FlushAll() error {
	var ids []page.PageID
	for _, s := range p.shards {
		s.lock()
		for id, f := range s.table {
			if f.dirty {
				ids = append(ids, id)
			}
		}
		s.mu.Unlock()
	}
	for _, id := range ids {
		if err := p.FlushPage(id); err != nil {
			return err
		}
	}
	return p.disk.Sync()
}

// DirtyPages returns the (pageID, recLSN) of every dirty cached page — the
// dirty page table recorded by fuzzy checkpoints. Frames whose first-update
// LSN is not yet known are reported conservatively at their pin-time floor:
// a freshly allocated page whose creation record is still being written, or
// a pinned clean frame whose holder may have logged an update without yet
// marking the frame dirty. Restart redo starting at the floor re-reads a
// few already-durable records (skipped by their page LSNs) but can never
// start past a logged update.
func (p *Pool) DirtyPages() map[page.PageID]page.LSN {
	noWAL := p.wal.FlushedLSN() == ^page.LSN(0)
	out := make(map[page.PageID]page.LSN)
	for _, s := range p.shards {
		s.lock()
		for id, f := range s.table {
			floor := f.fixLSN + 1
			if noWAL {
				floor = 0
			}
			switch {
			case f.dirty && f.recLSN != 0:
				out[id] = f.recLSN
			case f.dirty:
				out[id] = floor
			case f.pins > 0 && f.state != stateFree:
				out[id] = floor
			}
		}
		s.mu.Unlock()
	}
	return out
}

// Discard drops a cached page without writing it back, used when a freshly
// allocated page is abandoned. The page must be pinned exactly once by the
// caller; the pin is consumed.
func (p *Pool) Discard(f *Frame) {
	s := f.home
	s.lock()
	f.pins--
	if f.pins == 0 {
		delete(s.table, f.id)
		f.state = stateFree
		f.dirty = false
	}
	s.mu.Unlock()
}

// EnsureAllocated forwards to the disk manager; restart undo of a Free-Page
// record uses it to resurrect the page before reconstructing its content.
func (p *Pool) EnsureAllocated(id page.PageID) error {
	return p.disk.EnsureAllocated(id)
}

// Deallocate returns the page to the disk manager's free pool, dropping any
// cached copy. The caller must guarantee (via the drain protocol, §7.2)
// that no operation still holds a pointer to the page.
func (p *Pool) Deallocate(id page.PageID) error {
	s := p.shardOf(id)
	s.lock()
	if f, ok := s.table[id]; ok {
		if f.pins > 0 {
			s.mu.Unlock()
			return fmt.Errorf("%w %d", ErrPinned, id)
		}
		delete(s.table, id)
		f.state = stateFree
		f.dirty = false
	}
	s.mu.Unlock()
	return p.disk.Deallocate(id)
}

// Reset empties the pool without writing anything back — the simulated
// "loss of buffer pool contents" at a crash.
func (p *Pool) Reset() {
	for _, s := range p.shards {
		s.lock()
		s.table = make(map[page.PageID]*Frame, len(s.frames))
		for _, f := range s.frames {
			f.state = stateFree
			f.pins = 0
			f.dirty = false
			f.recLSN = 0
			f.refbit = false
		}
		s.mu.Unlock()
	}
}
